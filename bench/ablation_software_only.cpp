//===- bench/ablation_software_only.cpp ------------------------------------===//
///
/// The paper's closing claim (section 5.4): a pure software implementation
/// of the Class Cache — a lookup and update executed with ordinary
/// instructions on every profiling store — costs more than the checks it
/// removes. Supports the shared harness flags; the HW and SW sweeps fan
/// out over --jobs threads.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Ablation: hardware Class Cache vs software-only "
              "implementation",
              "section 5.4");

  std::vector<const Workload *> Set = {
      findWorkload("ai-astar"),  findWorkload("richards"),
      findWorkload("box2d"),     findWorkload("access-nbody"),
      findWorkload("deltablue"), findWorkload("splay")};

  EngineConfig HwCfg = Engine::Options().build();
  EngineConfig SwCfg = Engine::Options().withSoftwareOnlyClassCache().build();
  Opt.applyDispatch(HwCfg);
  Opt.applyCheckRemoval(HwCfg);
  Opt.applyDispatch(SwCfg);
  Opt.applyCheckRemoval(SwCfg);
  std::vector<Comparison> HwResults =
      compareWorkloads(Set, HwCfg, Opt.effectiveJobs());
  std::vector<Comparison> SwResults =
      compareWorkloads(Set, SwCfg, Opt.effectiveJobs());

  BenchReport Report("ablation_software_only", HwCfg);
  Table T({"benchmark", "HW speedup (whole app)", "SW-only speedup "
           "(whole app)"});
  Avg Hw, Sw;
  for (size_t I = 0; I < Set.size(); ++I) {
    const Workload *W = Set[I];
    const Comparison &HwC = HwResults[I];
    const Comparison &SwC = SwResults[I];
    if (!HwC.ClassCache.Ok || !SwC.ClassCache.Ok) {
      std::fprintf(stderr, "%s failed\n", W->Name);
      return 1;
    }
    // The software lookups execute as ordinary runtime code, so the
    // honest comparison is whole-application cycles.
    Hw.add(HwC.SpeedupWhole);
    Sw.add(SwC.SpeedupWhole);
    T.addRow({W->Name, fmtPct(HwC.SpeedupWhole), fmtPct(SwC.SpeedupWhole)});
    json::Value Data = json::Value::object();
    Data.set("hw_speedup_whole_pct", json::Value(HwC.SpeedupWhole));
    Data.set("sw_only_speedup_whole_pct", json::Value(SwC.SpeedupWhole));
    Report.addEntry(W->Name, W->Suite, std::move(Data));
  }
  T.addSeparator();
  T.addRow({"average", fmtPct(Hw.valueOpt()), fmtPct(Sw.valueOpt())});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: \"a pure software implementation ... "
              "would result in\nsignificant penalties, which would more "
              "than offset its benefits.\"\n");
  Report.setSummary("hw_avg_speedup_whole_pct", json::Value(Hw.valueOpt()));
  Report.setSummary("sw_only_avg_speedup_whole_pct",
                    json::Value(Sw.valueOpt()));
  return finishReport(Report, Opt) ? 0 : 1;
}
