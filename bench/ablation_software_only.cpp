//===- bench/ablation_software_only.cpp ------------------------------------===//
///
/// The paper's closing claim (section 5.4): a pure software implementation
/// of the Class Cache — a lookup and update executed with ordinary
/// instructions on every profiling store — costs more than the checks it
/// removes.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Ablation: hardware Class Cache vs software-only "
              "implementation",
              "section 5.4");

  std::vector<const Workload *> Set = {
      findWorkload("ai-astar"),  findWorkload("richards"),
      findWorkload("box2d"),     findWorkload("access-nbody"),
      findWorkload("deltablue"), findWorkload("splay")};

  Table T({"benchmark", "HW speedup (whole app)", "SW-only speedup "
           "(whole app)"});
  Avg Hw, Sw;
  for (const Workload *W : Set) {
    Comparison HwC = compareConfigs(W->Source, EngineConfig());
    EngineConfig SwCfg;
    SwCfg.SoftwareOnlyClassCache = true;
    Comparison SwC = compareConfigs(W->Source, SwCfg);
    if (!HwC.ClassCache.Ok || !SwC.ClassCache.Ok) {
      std::fprintf(stderr, "%s failed\n", W->Name);
      return 1;
    }
    // The software lookups execute as ordinary runtime code, so the
    // honest comparison is whole-application cycles.
    Hw.add(HwC.SpeedupWhole);
    Sw.add(SwC.SpeedupWhole);
    T.addRow({W->Name, Table::fmt(HwC.SpeedupWhole, 1) + "%",
              Table::fmt(SwC.SpeedupWhole, 1) + "%"});
  }
  T.addSeparator();
  T.addRow({"average", Table::fmt(Hw.value(), 1) + "%",
            Table::fmt(Sw.value(), 1) + "%"});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: \"a pure software implementation ... "
              "would result in\nsignificant penalties, which would more "
              "than offset its benefits.\"\n");
  return 0;
}
