//===- bench/fig2_object_check_overhead.cpp - Figure 2 --------------------===//
///
/// Overhead produced by checking operations (including pre-untag checks)
/// applied to values obtained from object properties or elements arrays,
/// as a percentage of dynamic instructions — for the whole application and
/// for optimized code only.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Figure 2: Check overhead after object load accesses "
              "(baseline engine)",
              "Figure 2");

  Table T({"benchmark", "suite", "whole application", "optimized code",
           "selected"});

  Avg SelWhole, SelOpt;
  for (const char *Suite : SuiteOrder) {
    Avg SuiteWhole, SuiteOpt;
    for (const Workload *W : workloadsOfSuite(Suite, false)) {
      BenchRun R = runSteadyState(EngineConfig(), W->Source);
      if (!R.Ok) {
        std::fprintf(stderr, "%s failed: %s\n", W->Name, R.Error.c_str());
        return 1;
      }
      uint64_t After = R.Steady.Instrs.checksAfterObjectLoadTotal();
      double Whole = double(After) / double(R.Steady.Instrs.total());
      uint64_t Opt = R.Steady.Instrs.optimizedTotal();
      double OptShare = Opt ? double(After) / double(Opt) : 0;
      SuiteWhole.add(Whole);
      SuiteOpt.add(OptShare);
      if (W->Selected) {
        SelWhole.add(Whole);
        SelOpt.add(OptShare);
      }
      T.addRow({W->Name, Suite, Table::pct(Whole), Table::pct(OptShare),
                W->Selected ? "yes" : ""});
    }
    T.addRow({std::string(Suite) + " average", "",
              Table::pct(SuiteWhole.value()), Table::pct(SuiteOpt.value()),
              ""});
    T.addSeparator();
  }
  T.addRow({"selected-set average", "", Table::pct(SelWhole.value()),
            Table::pct(SelOpt.value()), ""});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: for the 27 selected benchmarks these "
              "checks are 10.7%% of\nwhole-application and 15.9%% of "
              "optimized-code dynamic instructions.\n");
  return 0;
}
