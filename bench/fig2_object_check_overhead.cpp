//===- bench/fig2_object_check_overhead.cpp - Figure 2 --------------------===//
///
/// Overhead produced by checking operations (including pre-untag checks)
/// applied to values obtained from object properties or elements arrays,
/// as a percentage of dynamic instructions — for the whole application and
/// for optimized code only. Supports the shared harness flags
/// (--jobs/--json/--filter).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Figure 2: Check overhead after object load accesses "
              "(baseline engine)",
              "Figure 2");

  std::vector<SuiteGroup> Groups = groupWorkloads(false, Opt.Filter);
  std::vector<const Workload *> Flat = flattenGroups(Groups);
  EngineConfig Cfg = Engine::Options().build();
  Opt.applyDispatch(Cfg);
  Opt.applyCheckRemoval(Cfg);
  std::vector<BenchRun> Results =
      runWorkloadsSteadyState(Flat, Cfg, Opt.effectiveJobs());

  BenchReport Report("fig2_object_check_overhead", Cfg);
  Table T({"benchmark", "suite", "whole application", "optimized code",
           "selected"});

  Avg SelWhole, SelOpt;
  size_t Idx = 0;
  for (const SuiteGroup &G : Groups) {
    Avg SuiteWhole, SuiteOpt;
    for (const Workload *W : G.Ws) {
      const BenchRun &R = Results[Idx++];
      if (!R.Ok) {
        std::fprintf(stderr, "%s failed: %s\n", W->Name, R.Error.c_str());
        return 1;
      }
      uint64_t After = R.Steady.Instrs.checksAfterObjectLoadTotal();
      double Whole = double(After) / double(R.Steady.Instrs.total());
      uint64_t OptInstrs = R.Steady.Instrs.optimizedTotal();
      // A workload that never tiers up has no optimized code to attribute
      // overhead to: report "n/a", not a silent 0%.
      std::optional<double> OptShare;
      if (OptInstrs)
        OptShare = double(After) / double(OptInstrs);
      SuiteWhole.add(Whole);
      SuiteOpt.add(OptShare);
      if (W->Selected) {
        SelWhole.add(Whole);
        SelOpt.add(OptShare);
      }
      T.addRow({W->Name, G.Suite, Table::pct(Whole),
                OptShare ? Table::pct(*OptShare) : "n/a",
                W->Selected ? "yes" : ""});
      Report.addRun(*W, R);
    }
    T.addRow({std::string(G.Suite) + " average", "",
              Table::pct(SuiteWhole.value()), Table::pct(SuiteOpt.value()),
              ""});
    T.addSeparator();
  }
  T.addRow({"selected-set average", "", Table::pct(SelWhole.value()),
            Table::pct(SelOpt.value()), ""});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: for the 27 selected benchmarks these "
              "checks are 10.7%% of\nwhole-application and 15.9%% of "
              "optimized-code dynamic instructions.\n");
  Report.setSummary("selected_whole_avg", SelWhole.value());
  Report.setSummary("selected_optimized_avg",
                    json::Value(SelOpt.valueOpt()));
  return finishReport(Report, Opt) ? 0 : 1;
}
