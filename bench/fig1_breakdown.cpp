//===- bench/fig1_breakdown.cpp - Figure 1 --------------------------------===//
///
/// Breakdown of dynamic instructions into Checks / Tags-Untags / Math
/// Assumptions / Other Optimized / Rest of Code for every workload at
/// steady state, under the state-of-the-art baseline configuration.
/// Supports the shared harness flags (--jobs/--json/--filter).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Figure 1: Breakdown of dynamic instructions (steady state, "
              "baseline engine)",
              "Figure 1");

  std::vector<SuiteGroup> Groups = groupWorkloads(false, Opt.Filter);
  std::vector<const Workload *> Flat = flattenGroups(Groups);
  EngineConfig Cfg = Engine::Options().build();
  Opt.applyDispatch(Cfg);
  Opt.applyCheckRemoval(Cfg);
  std::vector<BenchRun> Results =
      runWorkloadsSteadyState(Flat, Cfg, Opt.effectiveJobs());

  BenchReport Report("fig1_breakdown", Cfg);
  Table T({"benchmark", "suite", "checks", "tags/untags", "math assum.",
           "other optimized", "rest of code"});
  size_t Idx = 0;
  for (const SuiteGroup &G : Groups) {
    Avg A[NumInstrCategories];
    for (const Workload *W : G.Ws) {
      const BenchRun &R = Results[Idx++];
      if (!R.Ok) {
        std::fprintf(stderr, "%s failed: %s\n", W->Name, R.Error.c_str());
        return 1;
      }
      std::vector<std::string> Row = {W->Name, G.Suite};
      for (unsigned C = 0; C < NumInstrCategories; ++C) {
        double Share = R.Steady.categoryShare(static_cast<InstrCategory>(C));
        A[C].add(Share);
        Row.push_back(Table::pct(Share));
      }
      T.addRow(std::move(Row));
      Report.addRun(*W, R);
    }
    std::vector<std::string> AvgRow = {std::string(G.Suite) + " average", ""};
    for (unsigned C = 0; C < NumInstrCategories; ++C)
      AvgRow.push_back(Table::pct(A[C].value()));
    T.addRow(std::move(AvgRow));
    T.addSeparator();
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: checks + tags/untags + math assumptions "
              "average 19.5%%\nof dynamic instructions across suites at "
              "steady state.\n");
  return finishReport(Report, Opt) ? 0 : 1;
}
