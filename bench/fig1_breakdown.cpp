//===- bench/fig1_breakdown.cpp - Figure 1 --------------------------------===//
///
/// Breakdown of dynamic instructions into Checks / Tags-Untags / Math
/// Assumptions / Other Optimized / Rest of Code for every workload at
/// steady state, under the state-of-the-art baseline configuration.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Figure 1: Breakdown of dynamic instructions (steady state, "
              "baseline engine)",
              "Figure 1");

  Table T({"benchmark", "suite", "checks", "tags/untags", "math assum.",
           "other optimized", "rest of code"});

  for (const char *Suite : SuiteOrder) {
    Avg A[NumInstrCategories];
    for (const Workload *W : workloadsOfSuite(Suite, false)) {
      BenchRun R = runSteadyState(EngineConfig(), W->Source);
      if (!R.Ok) {
        std::fprintf(stderr, "%s failed: %s\n", W->Name, R.Error.c_str());
        return 1;
      }
      std::vector<std::string> Row = {W->Name, Suite};
      for (unsigned C = 0; C < NumInstrCategories; ++C) {
        double Share = R.Steady.categoryShare(static_cast<InstrCategory>(C));
        A[C].add(Share);
        Row.push_back(Table::pct(Share));
      }
      T.addRow(std::move(Row));
    }
    std::vector<std::string> AvgRow = {std::string(Suite) + " average", ""};
    for (unsigned C = 0; C < NumInstrCategories; ++C)
      AvgRow.push_back(Table::pct(A[C].value()));
    T.addRow(std::move(AvgRow));
    T.addSeparator();
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: checks + tags/untags + math assumptions "
              "average 19.5%%\nof dynamic instructions across suites at "
              "steady state.\n");
  return 0;
}
