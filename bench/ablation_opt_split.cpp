//===- bench/ablation_opt_split.cpp ----------------------------------------===//
///
/// Contribution of the three optimizations of section 4.3, enabled
/// separately: Check Maps elimination (4.3.1), Check SMI elimination
/// (4.3.3) and Check Non-SMI elimination (4.3.2, the pre-untag HeapNumber
/// checks). Supports the shared harness flags; each mode fans its
/// workloads out over --jobs threads.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Ablation: section 4.3 optimizations enabled independently",
              "sections 4.3.1-4.3.3");

  struct Mode {
    const char *Name;
    bool Maps, Smi, NonSmi;
  };
  const Mode Modes[] = {
      {"check maps only (4.3.1)", true, false, false},
      {"check SMI only (4.3.3)", false, true, false},
      {"check non-SMI only (4.3.2)", false, false, true},
      {"all three (paper)", true, true, true},
  };

  std::vector<const Workload *> Set = {
      findWorkload("ai-astar"),      findWorkload("access-nbody"),
      findWorkload("richards"),      findWorkload("earley-boyer"),
      findWorkload("3d-cube"),       findWorkload("box2d"),
      findWorkload("stanford-crypto-sha256")};

  BenchReport Report("ablation_opt_split", Engine::Options().build());
  Table T({"configuration", "avg speedup (optimized)",
           "avg speedup (whole app)"});
  for (const Mode &M : Modes) {
    EngineConfig Cfg =
        Engine::Options().withElision(M.Maps, M.Smi, M.NonSmi).build();
    Opt.applyDispatch(Cfg);
    Opt.applyCheckRemoval(Cfg);
    std::vector<Comparison> Results =
        compareWorkloads(Set, Cfg, Opt.effectiveJobs());
    Avg OptAvg, Whole;
    for (size_t I = 0; I < Set.size(); ++I) {
      const Comparison &C = Results[I];
      if (!C.valid()) {
        std::fprintf(stderr, "%s failed\n", Set[I]->Name);
        return 1;
      }
      OptAvg.add(C.SpeedupOptimized);
      Whole.add(C.SpeedupWhole);
    }
    T.addRow({M.Name, fmtPct(OptAvg.valueOpt()), fmtPct(Whole.valueOpt())});
    json::Value Data = json::Value::object();
    Data.set("elide_check_maps", M.Maps);
    Data.set("elide_check_smi", M.Smi);
    Data.set("elide_check_non_smi", M.NonSmi);
    Data.set("avg_speedup_optimized_pct", json::Value(OptAvg.valueOpt()));
    Data.set("avg_speedup_whole_pct", json::Value(Whole.valueOpt()));
    Report.addEntry(M.Name, "ablation", std::move(Data));
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: Check Maps are the most common checking "
              "operation\n(section 3.3), so 4.3.1 contributes most; ai-astar"
              "'s removed checks are more\nthan half Check Maps (section "
              "5.1).\n");
  return finishReport(Report, Opt) ? 0 : 1;
}
