//===- bench/ablation_opt_split.cpp ----------------------------------------===//
///
/// Contribution of the three optimizations of section 4.3, enabled
/// separately: Check Maps elimination (4.3.1), Check SMI elimination
/// (4.3.3) and Check Non-SMI elimination (4.3.2, the pre-untag HeapNumber
/// checks).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Ablation: section 4.3 optimizations enabled independently",
              "sections 4.3.1-4.3.3");

  struct Mode {
    const char *Name;
    bool Maps, Smi, NonSmi;
  };
  const Mode Modes[] = {
      {"check maps only (4.3.1)", true, false, false},
      {"check SMI only (4.3.3)", false, true, false},
      {"check non-SMI only (4.3.2)", false, false, true},
      {"all three (paper)", true, true, true},
  };

  std::vector<const Workload *> Set = {
      findWorkload("ai-astar"),      findWorkload("access-nbody"),
      findWorkload("richards"),      findWorkload("earley-boyer"),
      findWorkload("3d-cube"),       findWorkload("box2d"),
      findWorkload("stanford-crypto-sha256")};

  Table T({"configuration", "avg speedup (optimized)",
           "avg speedup (whole app)"});
  for (const Mode &M : Modes) {
    EngineConfig Cfg;
    Cfg.ElideCheckMaps = M.Maps;
    Cfg.ElideCheckSmi = M.Smi;
    Cfg.ElideCheckNonSmi = M.NonSmi;
    Avg Opt, Whole;
    for (const Workload *W : Set) {
      Comparison C = compareConfigs(W->Source, Cfg);
      if (!C.Baseline.Ok || !C.ClassCache.Ok) {
        std::fprintf(stderr, "%s failed\n", W->Name);
        return 1;
      }
      Opt.add(C.SpeedupOptimized);
      Whole.add(C.SpeedupWhole);
    }
    T.addRow({M.Name, Table::fmt(Opt.value(), 1) + "%",
              Table::fmt(Whole.value(), 1) + "%"});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: Check Maps are the most common checking "
              "operation\n(section 3.3), so 4.3.1 contributes most; ai-astar"
              "'s removed checks are more\nthan half Check Maps (section "
              "5.1).\n");
  return 0;
}
