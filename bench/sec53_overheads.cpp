//===- bench/sec53_overheads.cpp - Section 5.3 ----------------------------===//
///
/// The paper's overhead analysis: warm-up (number of hidden classes per
/// benchmark, 5.3.1), Class Cache hit rate (5.3.2/5.3.3) and object size
/// increase / first-line access share (5.3.4). Supports the shared harness
/// flags (--jobs/--json/--filter).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Section 5.3: Incurred overheads", "section 5.3");

  EngineConfig Cfg = Engine::Options().withClassCache().build();
  Opt.applyDispatch(Cfg);
  Opt.applyCheckRemoval(Cfg);
  std::vector<SuiteGroup> Groups = groupWorkloads(true, Opt.Filter);
  std::vector<const Workload *> Flat = flattenGroups(Groups);
  std::vector<BenchRun> Results =
      runWorkloadsSteadyState(Flat, Cfg, Opt.effectiveJobs());

  BenchReport Report("sec53_overheads", Cfg);
  Table T({"benchmark", "hidden classes", "cc hit rate", "cc accesses",
           "exceptions", "multi-line obj size +%", "first-line loads"});

  Avg HitRate, FirstLine;
  unsigned Above32 = 0;
  size_t Rows = 0;
  for (size_t I = 0; I < Flat.size(); ++I) {
    const Workload *W = Flat[I];
    const BenchRun &R = Results[I];
    if (!R.Ok) {
      std::fprintf(stderr, "%s failed: %s\n", W->Name, R.Error.c_str());
      return 1;
    }
    const RunStats &S = R.Steady;
    if (S.NumHiddenClasses > 32)
      ++Above32;
    if (S.CcAccesses > 0)
      HitRate.add(S.CcHitRate);
    double FirstShare =
        S.Loads.TotalPropertyLoads
            ? double(S.Loads.FirstLineLoads) / S.Loads.TotalPropertyLoads
            : 1.0;
    FirstLine.add(FirstShare);
    // Size increase of multi-line objects: extra per-line header words
    // relative to their total size.
    double SizeInc =
        S.Heap.ObjectBytes
            ? double(S.Heap.ExtraHeaderBytes) /
                  double(S.Heap.ObjectBytes - S.Heap.ExtraHeaderBytes) * 100
            : 0;
    T.addRow({W->Name, std::to_string(S.NumHiddenClasses),
              S.CcAccesses ? Table::pct(S.CcHitRate, 3) : "-",
              std::to_string(S.CcAccesses),
              std::to_string(S.CcExceptions), Table::fmt(SizeInc, 2),
              Table::pct(FirstShare)});
    Report.addRun(*W, R);
    ++Rows;
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nSummary: average Class Cache hit rate %s (paper: >99.9%% "
              "at 128 entries,\n2-way); %u of %zu benchmarks exceed 32 "
              "hidden classes (paper: 2 of 54);\nfirst-line property loads "
              "average %s (paper: 79%%).\n",
              Table::pct(HitRate.value(), 3).c_str(), Above32, Rows,
              Table::pct(FirstLine.value()).c_str());
  Report.setSummary("avg_cc_hit_rate", json::Value(HitRate.valueOpt()));
  Report.setSummary("benchmarks_above_32_classes", Above32);
  Report.setSummary("avg_first_line_share", FirstLine.value());
  return finishReport(Report, Opt) ? 0 : 1;
}
