//===- bench/micro_primitives.cpp - google-benchmark micro suite ----------===//
///
/// Host-side microbenchmarks of the simulator's hot primitives: shape
/// lookup, the Class Cache access protocol, the cache hierarchy model,
/// value tagging and whole-engine steady-state iterations. These guard the
/// simulator's own performance (a slow simulator limits how much workload
/// the figures can afford).
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "hw/ClassCache.h"
#include "hw/MemorySystem.h"
#include "runtime/Heap.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace ccjs;

static void BM_ValueTagging(benchmark::State &State) {
  int32_t I = 0;
  for (auto _ : State) {
    Value V = Value::makeSmi(I++);
    benchmark::DoNotOptimize(V.asSmi());
  }
}
BENCHMARK(BM_ValueTagging);

static void BM_ShapeTransitionLookup(benchmark::State &State) {
  ShapeTable Shapes;
  StringInterner Names;
  InternedString P[8];
  ShapeId S = Shapes.plainRoot();
  for (int I = 0; I < 8; ++I) {
    P[I] = Names.intern("p" + std::to_string(I));
    S = Shapes.transition(S, P[I]);
  }
  unsigned K = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Shapes.lookup(S, P[K & 7]));
    ++K;
  }
}
BENCHMARK(BM_ShapeTransitionLookup);

static void BM_HeapPropertyAccess(benchmark::State &State) {
  SimMemory Mem;
  ShapeTable Shapes;
  StringInterner Names;
  Heap H(Mem, Shapes, Names);
  Value O = H.allocObject(Shapes.plainRoot(), 8);
  uint64_t Addr = O.asPointer();
  for (int I = 0; I < 8; ++I)
    H.addProperty(Addr, Names.intern("f" + std::to_string(I)),
                  Value::makeSmi(I));
  unsigned K = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(H.getSlot(Addr, K & 7));
    ++K;
  }
}
BENCHMARK(BM_HeapPropertyAccess);

static void BM_ClassCacheHit(benchmark::State &State) {
  SimMemory Mem;
  ClassList List(Mem);
  List.write(3, 0, ClassListEntry());
  ClassCache CC(List, 128, 2);
  CC.accessStore(3, 0, 4, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(CC.accessStore(3, 0, 4, 7));
}
BENCHMARK(BM_ClassCacheHit);

static void BM_ClassCacheMissRefill(benchmark::State &State) {
  SimMemory Mem;
  ClassList List(Mem);
  for (uint8_t C = 0; C < 64; ++C)
    List.write(C, 0, ClassListEntry());
  ClassCache CC(List, 8, 2); // Tiny: most accesses miss.
  uint8_t C = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(CC.accessStore(C, 0, 4, 7));
    C = (C + 17) & 63;
  }
}
BENCHMARK(BM_ClassCacheMissRefill);

static void BM_MemoryHierarchyAccess(benchmark::State &State) {
  HwConfig Cfg;
  MemorySystem M(Cfg);
  uint64_t A = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(M.access(A));
    A = (A + 64) & 0xFFFFF;
  }
}
BENCHMARK(BM_MemoryHierarchyAccess);

static void BM_SteadyIteration(benchmark::State &State) {
  const Workload *W = findWorkload("richards");
  Engine E(Engine::Options().withClassCache());
  if (!E.load(W->Source) || !E.runTopLevel())
    State.SkipWithError("load failed");
  for (int I = 0; I < 10; ++I)
    E.callGlobal("run");
  for (auto _ : State)
    E.callGlobal("run");
  State.SetLabel("one steady-state richards iteration (full simulation)");
}
BENCHMARK(BM_SteadyIteration)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
