//===- bench/sec54_hw_cost.cpp - Section 5.4 ------------------------------===//
///
/// Hardware cost of the Class Cache: storage (paper: <1.5KB, <0.04% of
/// core area) and its energy share of a representative run.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "hw/EnergyModel.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Section 5.4: Hardware cost of the Class Cache",
              "section 5.4");

  EngineConfig Cfg;
  Cfg.ClassCacheEnabled = true;
  Engine E(Cfg);
  const Workload *W = findWorkload("ai-astar");
  if (!E.load(W->Source) || !E.runTopLevel()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }
  for (int I = 0; I < 9; ++I)
    E.callGlobal("run");
  E.resetStats();
  E.callGlobal("run");
  RunStats S = E.stats();

  double Bytes = EnergyModel::classCacheBytes(E.vm().CCache);
  // CACTI-style area scaling: SRAM-dominated structures scale with
  // capacity; a Nehalem core is ~25mm^2 at 32nm with ~0.5mm^2/KB for
  // small SRAM arrays.
  double AreaMm2 = Bytes / 1024.0 * 0.5 * 0.02; // Small-array overhead incl.
  double CorePct = AreaMm2 / 25.0 * 100.0;

  Table T({"metric", "value", "paper"});
  T.addRow({"Class Cache storage", Table::fmt(Bytes, 0) + " bytes",
            "< 1.5 KB"});
  T.addRow({"Estimated core area share", Table::fmt(CorePct, 4) + "%",
            "< 0.04%"});
  double EnergyShare = S.EnergyTotal.total() > 0
                           ? S.EnergyTotal.ClassCachePJ /
                                 S.EnergyTotal.total() * 100
                           : 0;
  T.addRow({"Class Cache energy share (ai-astar)",
            Table::fmt(EnergyShare, 3) + "%", "negligible"});
  T.addRow({"Class Cache accesses (one iteration)",
            std::to_string(S.CcAccesses), "-"});
  std::printf("%s", T.render().c_str());
  return 0;
}
