//===- bench/sec54_hw_cost.cpp - Section 5.4 ------------------------------===//
///
/// Hardware cost of the Class Cache: storage (paper: <1.5KB, <0.04% of
/// core area) and its energy share of a representative run. Accepts the
/// shared harness flags; --json emits the cost metrics and the run stats.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "hw/EnergyModel.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Section 5.4: Hardware cost of the Class Cache",
              "section 5.4");

  EngineConfig Cfg = Engine::Options().withClassCache().build();
  Opt.applyDispatch(Cfg);
  Opt.applyCheckRemoval(Cfg);
  Engine E(Cfg);
  const Workload *W = findWorkload("ai-astar");
  if (!E.load(W->Source) || !E.runTopLevel()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }
  for (int I = 0; I < 9; ++I)
    E.callGlobal("run");
  E.resetStats();
  E.callGlobal("run");
  if (E.halted()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }
  RunStats S = E.stats();

  double Bytes = EnergyModel::classCacheBytes(E.vm().CCache);
  // CACTI-style area scaling: SRAM-dominated structures scale with
  // capacity; a Nehalem core is ~25mm^2 at 32nm with ~0.5mm^2/KB for
  // small SRAM arrays.
  double AreaMm2 = Bytes / 1024.0 * 0.5 * 0.02; // Small-array overhead incl.
  double CorePct = AreaMm2 / 25.0 * 100.0;

  Table T({"metric", "value", "paper"});
  T.addRow({"Class Cache storage", Table::fmt(Bytes, 0) + " bytes",
            "< 1.5 KB"});
  T.addRow({"Estimated core area share", Table::fmt(CorePct, 4) + "%",
            "< 0.04%"});
  std::optional<double> EnergyShare;
  if (S.EnergyTotal.total() > 0)
    EnergyShare = S.EnergyTotal.ClassCachePJ / S.EnergyTotal.total() * 100;
  T.addRow({"Class Cache energy share (ai-astar)", fmtPct(EnergyShare, 3),
            "negligible"});
  T.addRow({"Class Cache accesses (one iteration)",
            std::to_string(S.CcAccesses), "-"});
  std::printf("%s", T.render().c_str());

  BenchReport Report("sec54_hw_cost", Cfg);
  BenchRun R;
  R.Ok = true;
  R.Steady = S;
  Report.addRun(*W, R);
  Report.setSummary("class_cache_storage_bytes", Bytes);
  Report.setSummary("core_area_share_pct", CorePct);
  Report.setSummary("energy_share_pct", json::Value(EnergyShare));
  return finishReport(Report, Opt) ? 0 : 1;
}
