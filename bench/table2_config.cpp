//===- bench/table2_config.cpp - Table 2 ----------------------------------===//
///
/// Prints the simulated micro-architecture configuration (the paper's
/// Table 2: a Nehalem-like core) plus the timing/energy model constants
/// this reproduction adds.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "hw/EnergyModel.h"
#include "hw/HwConfig.h"
#include "support/Table.h"

#include <cstdio>

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;
  HwConfig Cfg;
  std::printf("Table 2: Simulated micro-architecture configuration\n");
  std::printf("---------------------------------------------------\n");
  Table T({"parameter", "value"});
  auto N = [](unsigned V) { return std::to_string(V); };
  T.addRow({"Issue width", N(Cfg.IssueWidth)});
  T.addRow({"Instruction issue queue", N(Cfg.InstrQueue) + " entries"});
  T.addRow({"Window size", N(Cfg.WindowSize)});
  T.addRow({"Outstanding load/stores", N(Cfg.OutstandingLoadStores)});
  T.addRow({"L1 load latency", N(Cfg.L1LoadLatency) + " cycles"});
  T.addRow({"Itlb", N(Cfg.ItlbEntries) + " entries"});
  T.addRow({"Dtlb", N(Cfg.DtlbEntries) + " entries"});
  T.addRow({"Il1 cache", N(Cfg.Il1SizeKB) + " KB, " + N(Cfg.Il1Ways) +
                             "-way"});
  T.addRow({"Dl1 cache", N(Cfg.Dl1SizeKB) + " KB, " + N(Cfg.Dl1Ways) +
                             "-way"});
  T.addRow({"L2 cache", N(Cfg.L2SizeKB) + " KB, " + N(Cfg.L2Ways) + "-way"});
  T.addRow({"Class Cache", N(Cfg.ClassCacheEntries) + " entries, " +
                               N(Cfg.ClassCacheWays) + "-way"});
  T.addSeparator();
  T.addRow({"L2 latency (model)", N(Cfg.L2Latency) + " cycles"});
  T.addRow({"Memory latency (model)", N(Cfg.MemLatency) + " cycles"});
  T.addRow({"TLB miss penalty (model)", N(Cfg.TlbMissPenalty) + " cycles"});
  T.addRow({"Branch mispredict penalty", N(Cfg.BranchMispredictPenalty) +
                                             " cycles"});
  T.addRow({"OoO stall overlap factor", Table::fmt(Cfg.StallOverlap, 2)});
  std::printf("%s", T.render().c_str());

  EngineConfig EngineCfg = Engine::Options().withHw(Cfg).build();
  Opt.applyDispatch(EngineCfg);
  Opt.applyCheckRemoval(EngineCfg);
  BenchReport Report("table2_config", EngineCfg);
  json::Value Data = json::Value::object();
  Data.set("issue_width", Cfg.IssueWidth);
  Data.set("window_size", Cfg.WindowSize);
  Data.set("dl1_size_kb", Cfg.Dl1SizeKB);
  Data.set("dl1_ways", Cfg.Dl1Ways);
  Data.set("l2_size_kb", Cfg.L2SizeKB);
  Data.set("l2_ways", Cfg.L2Ways);
  Data.set("dtlb_entries", Cfg.DtlbEntries);
  Data.set("class_cache_entries", Cfg.ClassCacheEntries);
  Data.set("class_cache_ways", Cfg.ClassCacheWays);
  Data.set("l2_latency", Cfg.L2Latency);
  Data.set("mem_latency", Cfg.MemLatency);
  Data.set("tlb_miss_penalty", Cfg.TlbMissPenalty);
  Data.set("branch_mispredict_penalty", Cfg.BranchMispredictPenalty);
  Data.set("stall_overlap", Cfg.StallOverlap);
  Report.addEntry("hw-config", "config", std::move(Data));
  return finishReport(Report, Opt) ? 0 : 1;
}
