//===- bench/table2_config.cpp - Table 2 ----------------------------------===//
///
/// Prints the simulated micro-architecture configuration (the paper's
/// Table 2: a Nehalem-like core) plus the timing/energy model constants
/// this reproduction adds.
///
//===----------------------------------------------------------------------===//

#include "hw/EnergyModel.h"
#include "hw/HwConfig.h"
#include "support/Table.h"

#include <cstdio>

using namespace ccjs;

int main() {
  HwConfig Cfg;
  std::printf("Table 2: Simulated micro-architecture configuration\n");
  std::printf("---------------------------------------------------\n");
  Table T({"parameter", "value"});
  auto N = [](unsigned V) { return std::to_string(V); };
  T.addRow({"Issue width", N(Cfg.IssueWidth)});
  T.addRow({"Instruction issue queue", N(Cfg.InstrQueue) + " entries"});
  T.addRow({"Window size", N(Cfg.WindowSize)});
  T.addRow({"Outstanding load/stores", N(Cfg.OutstandingLoadStores)});
  T.addRow({"L1 load latency", N(Cfg.L1LoadLatency) + " cycles"});
  T.addRow({"Itlb", N(Cfg.ItlbEntries) + " entries"});
  T.addRow({"Dtlb", N(Cfg.DtlbEntries) + " entries"});
  T.addRow({"Il1 cache", N(Cfg.Il1SizeKB) + " KB, " + N(Cfg.Il1Ways) +
                             "-way"});
  T.addRow({"Dl1 cache", N(Cfg.Dl1SizeKB) + " KB, " + N(Cfg.Dl1Ways) +
                             "-way"});
  T.addRow({"L2 cache", N(Cfg.L2SizeKB) + " KB, " + N(Cfg.L2Ways) + "-way"});
  T.addRow({"Class Cache", N(Cfg.ClassCacheEntries) + " entries, " +
                               N(Cfg.ClassCacheWays) + "-way"});
  T.addSeparator();
  T.addRow({"L2 latency (model)", N(Cfg.L2Latency) + " cycles"});
  T.addRow({"Memory latency (model)", N(Cfg.MemLatency) + " cycles"});
  T.addRow({"TLB miss penalty (model)", N(Cfg.TlbMissPenalty) + " cycles"});
  T.addRow({"Branch mispredict penalty", N(Cfg.BranchMispredictPenalty) +
                                             " cycles"});
  T.addRow({"OoO stall overlap factor", Table::fmt(Cfg.StallOverlap, 2)});
  std::printf("%s", T.render().c_str());
  return 0;
}
