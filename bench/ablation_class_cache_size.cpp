//===- bench/ablation_class_cache_size.cpp --------------------------------===//
///
/// Ablation for the paper's configuration choice (section 5.3.2/5.3.3):
/// Class Cache hit rate and speedup across sizes and associativities. The
/// paper picks 128 entries / 2-way because it already exceeds 99.9% hit
/// rate at very low cost. Supports the shared harness flags; each geometry
/// point fans its workloads out over --jobs threads.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Ablation: Class Cache geometry sweep", "sections 5.3.2-5.3.3");

  struct Geometry {
    unsigned Entries, Ways;
  };
  const Geometry Sweeps[] = {{8, 1},  {16, 2}, {32, 2},
                             {64, 2}, {128, 2}, {128, 4}, {256, 2}};

  std::vector<const Workload *> Set = {
      findWorkload("ai-astar"), findWorkload("richards"),
      findWorkload("access-nbody"), findWorkload("box2d"),
      findWorkload("deltablue")};

  BenchReport Report("ablation_class_cache_size", Engine::Options().build());
  Table T({"geometry", "avg hit rate", "avg speedup (optimized code)",
           "storage bytes"});
  for (const Geometry &G : Sweeps) {
    HwConfig Hw;
    Hw.ClassCacheEntries = G.Entries;
    Hw.ClassCacheWays = G.Ways;
    EngineConfig Cfg = Engine::Options().withClassCache().withHw(Hw).build();
    Opt.applyDispatch(Cfg);
    Opt.applyCheckRemoval(Cfg);
    std::vector<Comparison> Results =
        compareWorkloads(Set, Cfg, Opt.effectiveJobs());
    Avg Hit, Speed;
    for (size_t I = 0; I < Set.size(); ++I) {
      const Comparison &C = Results[I];
      if (!C.valid()) {
        std::fprintf(stderr, "%s failed\n", Set[I]->Name);
        return 1;
      }
      Hit.add(C.ClassCache.Steady.CcHitRate);
      Speed.add(C.SpeedupOptimized);
    }
    // Storage from a scratch cache with this geometry.
    SimMemory Mem;
    ClassList List(Mem);
    ClassCache CC(List, G.Entries, G.Ways);
    double Bytes = CC.storageBits() / 8.0;
    std::string Name = std::to_string(G.Entries) + " entries, " +
                       std::to_string(G.Ways) + "-way";
    T.addRow({Name, Table::pct(Hit.value(), 3), fmtPct(Speed.valueOpt()),
              Table::fmt(Bytes, 0)});
    json::Value Data = json::Value::object();
    Data.set("entries", G.Entries);
    Data.set("ways", G.Ways);
    Data.set("avg_hit_rate", Hit.value());
    Data.set("avg_speedup_optimized_pct", json::Value(Speed.valueOpt()));
    Data.set("storage_bytes", Bytes);
    Report.addEntry(Name, "ablation", std::move(Data));
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nThe paper's 128-entry 2-way point reaches the hit-rate "
              "plateau at minimal storage.\n");
  return finishReport(Report, Opt) ? 0 : 1;
}
