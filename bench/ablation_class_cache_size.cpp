//===- bench/ablation_class_cache_size.cpp --------------------------------===//
///
/// Ablation for the paper's configuration choice (section 5.3.2/5.3.3):
/// Class Cache hit rate and speedup across sizes and associativities. The
/// paper picks 128 entries / 2-way because it already exceeds 99.9% hit
/// rate at very low cost.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Ablation: Class Cache geometry sweep", "sections 5.3.2-5.3.3");

  struct Geometry {
    unsigned Entries, Ways;
  };
  const Geometry Sweeps[] = {{8, 1},  {16, 2}, {32, 2},
                             {64, 2}, {128, 2}, {128, 4}, {256, 2}};

  std::vector<const Workload *> Set = {
      findWorkload("ai-astar"), findWorkload("richards"),
      findWorkload("access-nbody"), findWorkload("box2d"),
      findWorkload("deltablue")};

  Table T({"geometry", "avg hit rate", "avg speedup (optimized code)",
           "storage bytes"});
  for (const Geometry &G : Sweeps) {
    EngineConfig Cfg;
    Cfg.ClassCacheEnabled = true;
    Cfg.Hw.ClassCacheEntries = G.Entries;
    Cfg.Hw.ClassCacheWays = G.Ways;
    Avg Hit, Speed;
    double Bytes = 0;
    for (const Workload *W : Set) {
      EngineConfig Base = Cfg;
      Comparison C = compareConfigs(W->Source, Base);
      if (!C.Baseline.Ok || !C.ClassCache.Ok) {
        std::fprintf(stderr, "%s failed\n", W->Name);
        return 1;
      }
      Hit.add(C.ClassCache.Steady.CcHitRate);
      Speed.add(C.SpeedupOptimized);
      // Storage from a scratch engine with this geometry.
      SimMemory Mem;
      ClassList List(Mem);
      ClassCache CC(List, G.Entries, G.Ways);
      Bytes = CC.storageBits() / 8.0;
    }
    T.addRow({std::to_string(G.Entries) + " entries, " +
                  std::to_string(G.Ways) + "-way",
              Table::pct(Hit.value(), 3),
              Table::fmt(Speed.value(), 1) + "%", Table::fmt(Bytes, 0)});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nThe paper's 128-entry 2-way point reaches the hit-rate "
              "plateau at minimal storage.\n");
  return 0;
}
