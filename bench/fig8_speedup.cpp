//===- bench/fig8_speedup.cpp - Figure 8 ----------------------------------===//
///
/// Cycle-count improvement of the Class Cache configuration over the
/// state-of-the-art baseline, for the whole application and for optimized
/// code, across the selected benchmark set. With --detail=<name>, also
/// prints the per-structure hit-rate changes the paper discusses for
/// ai-astar (DL1 / L2 / DTLB).
///
/// Harness flags: --jobs=N fans the per-workload comparisons out over N
/// threads (output stays byte-identical to the serial run); --json=<path>
/// emits the structured report; --filter restricts the sweep. All flags —
/// including --detail — are validated before any benchmark work runs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

static bool printDetail(const char *Name, unsigned Jobs) {
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name);
    return false;
  }
  Comparison C = compareWorkloads({W}, Engine::Options().build(), Jobs).front();
  if (!C.valid()) {
    std::fprintf(stderr, "%s failed: %s%s\n", Name,
                 C.Baseline.Error.c_str(), C.ClassCache.Error.c_str());
    return false;
  }
  const RunStats &B = C.Baseline.Steady;
  const RunStats &N = C.ClassCache.Steady;
  std::printf("\n--- %s memory-system detail (paper section 5.1) ---\n",
              Name);
  Table T({"structure", "baseline hit rate", "class cache hit rate",
           "miss-rate reduction"});
  auto Row = [&](const char *S, double HB, double HN) {
    double MissB = 1 - HB, MissN = 1 - HN;
    std::optional<double> Red;
    if (MissB > 0)
      Red = (1 - MissN / MissB) * 100;
    T.addRow({S, Table::pct(HB, 2), Table::pct(HN, 2), fmtPct(Red, 1)});
  };
  Row("DL1", B.Dl1HitRate, N.Dl1HitRate);
  Row("L2", B.L2HitRate, N.L2HitRate);
  Row("DTLB", B.DtlbHitRate, N.DtlbHitRate);
  std::printf("%s", T.render().c_str());
  std::printf("DL1 accesses: %llu -> %llu (removed Check-Map loads)\n",
              static_cast<unsigned long long>(B.Dl1Accesses),
              static_cast<unsigned long long>(N.Dl1Accesses));
  return true;
}

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  std::string Detail;
  bool HaveDetail = false;
  auto Extra = [&](std::string_view A) {
    if (A.rfind("--detail=", 0) == 0) {
      Detail = A.substr(9);
      HaveDetail = true;
      return true;
    }
    return false;
  };
  // Dispatch selection (--dispatch, --fused-mask) is the shared harness
  // flag (DESIGN.md 4.6/4.8): every mode must reproduce the committed
  // baseline byte-for-byte, and the CI byte-identity gate runs all three.
  if (!Opt.parse(Argc, Argv, Extra, "[--detail=<workload>]"))
    return 2;
  // A typo'd --detail name must fail *before* the full sweep runs.
  if (HaveDetail && !findWorkload(Detail)) {
    std::fprintf(stderr, "fig8_speedup: --detail='%s' is not a workload\n",
                 Detail.c_str());
    return 2;
  }

  printHeader("Figure 8: Improvement in number of cycles (Class Cache vs "
              "baseline)",
              "Figure 8");

  std::vector<SuiteGroup> Groups = groupWorkloads(true, Opt.Filter);
  std::vector<const Workload *> Flat = flattenGroups(Groups);
  EngineConfig Base = Engine::Options().build();
  Opt.applyDispatch(Base);
  Opt.applyCheckRemoval(Base);
  HostTimer Timer;
  std::vector<Comparison> Results =
      compareWorkloads(Flat, Base, Opt.effectiveJobs());
  HostMeasurement HostM = Timer.measure(Results, Opt.effectiveJobs());
  HostM.Dispatch = Opt.Dispatch;

  BenchReport Report("fig8_speedup", Base);
  Table T({"benchmark", "suite", "whole application", "optimized code"});
  Avg AllWhole, AllOpt;
  size_t Idx = 0;
  for (const SuiteGroup &G : Groups) {
    Avg SW, SO;
    for (const Workload *W : G.Ws) {
      const Comparison &C = Results[Idx++];
      if (!C.valid()) {
        std::fprintf(stderr, "%s failed: %s%s\n", W->Name,
                     C.Baseline.Error.c_str(), C.ClassCache.Error.c_str());
        return 1;
      }
      if (!C.OutputsMatch) {
        std::fprintf(stderr, "%s: OUTPUT MISMATCH\n", W->Name);
        return 1;
      }
      SW.add(C.SpeedupWhole);
      SO.add(C.SpeedupOptimized);
      AllWhole.add(C.SpeedupWhole);
      AllOpt.add(C.SpeedupOptimized);
      T.addRow({W->Name, G.Suite, fmtPct(C.SpeedupWhole),
                fmtPct(C.SpeedupOptimized)});
      Report.addComparison(*W, C);
    }
    T.addRow({std::string(G.Suite) + " average", "", fmtPct(SW.valueOpt()),
              fmtPct(SO.valueOpt())});
    T.addSeparator();
  }
  T.addRow({"overall average", "", fmtPct(AllWhole.valueOpt()),
            fmtPct(AllOpt.valueOpt())});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: 7.1%% average speedup for optimized code "
              "(up to 34%% for\nai-astar) and 5%% for the whole "
              "application.\n");
  Report.setSummary("speedup_whole_avg_pct",
                    json::Value(AllWhole.valueOpt()));
  Report.setSummary("speedup_optimized_avg_pct",
                    json::Value(AllOpt.valueOpt()));
  if (Opt.Host) {
    Report.setHost(hostToJson(HostM));
    std::printf("\nHost throughput: %.2fs wall (%.2fs engine), %.3g "
                "simulated instructions/s\n",
                HostM.WallSeconds, HostM.EngineSeconds,
                HostM.WallSeconds > 0
                    ? static_cast<double>(HostM.SimInstructions) /
                          HostM.WallSeconds
                    : 0.0);
    std::printf("Dispatch (%s): %llu executor dispatches, %llu absorbed by "
                "fusion\n",
                dispatchModeName(HostM.Dispatch),
                static_cast<unsigned long long>(HostM.Dispatches),
                static_cast<unsigned long long>(HostM.FusedSavedDispatches));
  }

  if (HaveDetail && !printDetail(Detail.c_str(), Opt.effectiveJobs()))
    return 1;
  return finishReport(Report, Opt) ? 0 : 1;
}
