//===- bench/fig8_speedup.cpp - Figure 8 ----------------------------------===//
///
/// Cycle-count improvement of the Class Cache configuration over the
/// state-of-the-art baseline, for the whole application and for optimized
/// code, across the selected benchmark set. With --detail=<name>, also
/// prints the per-structure hit-rate changes the paper discusses for
/// ai-astar (DL1 / L2 / DTLB).
///
/// Harness flags: --jobs=N fans the per-workload comparisons out over N
/// threads (output stays byte-identical to the serial run); --json=<path>
/// emits the structured report; --filter restricts the sweep. All flags —
/// including --detail — are validated before any benchmark work runs.
///
/// --warm-start (requires --host) appends the profile-snapshot warm-start
/// measurement: each workload runs cold and again from a fresh engine
/// restoring the cold run's captured profile snapshot, and the host
/// section gains a "warm_start" object comparing time-to-peak-tier (the
/// simulated instruction position of the first successful tier-up) across
/// the two. The warmup counts are simulated quantities — deterministic,
/// unlike the wall-clock fields around them.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

namespace {

/// Warms one engine to steady state and captures its profile snapshot
/// (empty on failure). The same protocol runSteadyState measures, so the
/// snapshot holds exactly the profile a continuously-warmed engine owns.
std::vector<uint8_t> trainSnapshot(const EngineConfig &Cfg,
                                   std::string_view Source) {
  Engine E(Cfg);
  if (!E.load(Source) || !E.runTopLevel())
    return {};
  for (int I = 0; I < DefaultIterations; ++I) {
    E.callGlobal("run");
    if (E.halted())
      return {};
  }
  return E.snapshotProfile();
}

} // namespace

static bool printDetail(const char *Name, unsigned Jobs) {
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name);
    return false;
  }
  Comparison C = compareWorkloads({W}, Engine::Options().build(), Jobs).front();
  if (!C.valid()) {
    std::fprintf(stderr, "%s failed: %s%s\n", Name,
                 C.Baseline.Error.c_str(), C.ClassCache.Error.c_str());
    return false;
  }
  const RunStats &B = C.Baseline.Steady;
  const RunStats &N = C.ClassCache.Steady;
  std::printf("\n--- %s memory-system detail (paper section 5.1) ---\n",
              Name);
  Table T({"structure", "baseline hit rate", "class cache hit rate",
           "miss-rate reduction"});
  auto Row = [&](const char *S, double HB, double HN) {
    double MissB = 1 - HB, MissN = 1 - HN;
    std::optional<double> Red;
    if (MissB > 0)
      Red = (1 - MissN / MissB) * 100;
    T.addRow({S, Table::pct(HB, 2), Table::pct(HN, 2), fmtPct(Red, 1)});
  };
  Row("DL1", B.Dl1HitRate, N.Dl1HitRate);
  Row("L2", B.L2HitRate, N.L2HitRate);
  Row("DTLB", B.DtlbHitRate, N.DtlbHitRate);
  std::printf("%s", T.render().c_str());
  std::printf("DL1 accesses: %llu -> %llu (removed Check-Map loads)\n",
              static_cast<unsigned long long>(B.Dl1Accesses),
              static_cast<unsigned long long>(N.Dl1Accesses));
  return true;
}

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  std::string Detail;
  bool HaveDetail = false, WarmStart = false;
  auto Extra = [&](std::string_view A) {
    if (A.rfind("--detail=", 0) == 0) {
      Detail = A.substr(9);
      HaveDetail = true;
      return true;
    }
    if (A == "--warm-start") {
      WarmStart = true;
      return true;
    }
    return false;
  };
  // Dispatch selection (--dispatch, --fused-mask) is the shared harness
  // flag (DESIGN.md 4.6/4.8): every mode must reproduce the committed
  // baseline byte-for-byte, and the CI byte-identity gate runs all three.
  if (!Opt.parse(Argc, Argv, Extra, "[--detail=<workload>] [--warm-start]"))
    return 2;
  // A typo'd --detail name must fail *before* the full sweep runs.
  if (HaveDetail && !findWorkload(Detail)) {
    std::fprintf(stderr, "fig8_speedup: --detail='%s' is not a workload\n",
                 Detail.c_str());
    return 2;
  }
  if (WarmStart && !Opt.Host) {
    // The measurement lands in the host section; without --host it would
    // silently run and report nowhere.
    std::fprintf(stderr, "fig8_speedup: --warm-start requires --host\n");
    return 2;
  }

  printHeader("Figure 8: Improvement in number of cycles (Class Cache vs "
              "baseline)",
              "Figure 8");

  std::vector<SuiteGroup> Groups = groupWorkloads(true, Opt.Filter);
  std::vector<const Workload *> Flat = flattenGroups(Groups);
  EngineConfig Base = Engine::Options().build();
  Opt.applyDispatch(Base);
  Opt.applyCheckRemoval(Base);
  HostTimer Timer;
  std::vector<Comparison> Results =
      compareWorkloads(Flat, Base, Opt.effectiveJobs());
  HostMeasurement HostM = Timer.measure(Results, Opt.effectiveJobs());
  HostM.Dispatch = Opt.Dispatch;

  BenchReport Report("fig8_speedup", Base);
  Table T({"benchmark", "suite", "whole application", "optimized code"});
  Avg AllWhole, AllOpt;
  size_t Idx = 0;
  for (const SuiteGroup &G : Groups) {
    Avg SW, SO;
    for (const Workload *W : G.Ws) {
      const Comparison &C = Results[Idx++];
      if (!C.valid()) {
        std::fprintf(stderr, "%s failed: %s%s\n", W->Name,
                     C.Baseline.Error.c_str(), C.ClassCache.Error.c_str());
        return 1;
      }
      if (!C.OutputsMatch) {
        std::fprintf(stderr, "%s: OUTPUT MISMATCH\n", W->Name);
        return 1;
      }
      SW.add(C.SpeedupWhole);
      SO.add(C.SpeedupOptimized);
      AllWhole.add(C.SpeedupWhole);
      AllOpt.add(C.SpeedupOptimized);
      T.addRow({W->Name, G.Suite, fmtPct(C.SpeedupWhole),
                fmtPct(C.SpeedupOptimized)});
      Report.addComparison(*W, C);
    }
    T.addRow({std::string(G.Suite) + " average", "", fmtPct(SW.valueOpt()),
              fmtPct(SO.valueOpt())});
    T.addSeparator();
  }
  T.addRow({"overall average", "", fmtPct(AllWhole.valueOpt()),
            fmtPct(AllOpt.valueOpt())});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: 7.1%% average speedup for optimized code "
              "(up to 34%% for\nai-astar) and 5%% for the whole "
              "application.\n");
  Report.setSummary("speedup_whole_avg_pct",
                    json::Value(AllWhole.valueOpt()));
  Report.setSummary("speedup_optimized_avg_pct",
                    json::Value(AllOpt.valueOpt()));
  if (Opt.Host) {
    json::Value HostJson = hostToJson(HostM);
    std::printf("\nHost throughput: %.2fs wall (%.2fs engine), %.3g "
                "simulated instructions/s\n",
                HostM.WallSeconds, HostM.EngineSeconds,
                HostM.WallSeconds > 0
                    ? static_cast<double>(HostM.SimInstructions) /
                          HostM.WallSeconds
                    : 0.0);
    std::printf("Dispatch (%s): %llu executor dispatches, %llu absorbed by "
                "fusion\n",
                dispatchModeName(HostM.Dispatch),
                static_cast<unsigned long long>(HostM.Dispatches),
                static_cast<unsigned long long>(HostM.FusedSavedDispatches));
    if (WarmStart) {
      // Cold vs warm time-to-peak-tier: every workload once from a cold
      // engine and once from a fresh engine restoring the cold engine's
      // captured profile snapshot. Identical config on both legs (the
      // mechanism leg's backend, profile persistence on) — only the
      // starting profile differs, so the instruction-position delta is
      // exactly the warmup tax the snapshot skips.
      EngineConfig WarmBase = Base;
      CheckRemovalBackend Backend = Base.effectiveCheckRemoval();
      if (Backend == CheckRemovalBackend::None)
        Backend = CheckRemovalBackend::ClassCache;
      WarmBase.CheckRemoval = Backend;
      WarmBase.ClassCacheEnabled =
          Backend == CheckRemovalBackend::ClassCache ||
          Backend == CheckRemovalBackend::Both;
      WarmBase.ProfilePersistence = true;
      unsigned ColdTiered = 0, WarmTiered = 0, Failed = 0;
      uint64_t ColdInstr = 0, WarmInstr = 0;
      double ColdCycles = 0, WarmCycles = 0;
      for (const Workload *W : Flat) {
        BenchRun Cold = runSteadyState(WarmBase, W->Source);
        std::vector<uint8_t> Snap = trainSnapshot(WarmBase, W->Source);
        if (!Cold.Ok || Snap.empty()) {
          ++Failed;
          continue;
        }
        EngineConfig WarmCfg = WarmBase;
        WarmCfg.ProfileSnapshot =
            std::make_shared<const std::vector<uint8_t>>(std::move(Snap));
        BenchRun Warm = runSteadyState(WarmCfg, W->Source);
        if (!Warm.Ok || Warm.Output != Cold.Output) {
          ++Failed;
          continue;
        }
        if (Cold.TieredUp) {
          ++ColdTiered;
          ColdInstr += Cold.FirstTierUpInstr;
          ColdCycles += Cold.FirstTierUpCycles;
        }
        if (Warm.TieredUp) {
          ++WarmTiered;
          WarmInstr += Warm.FirstTierUpInstr;
          WarmCycles += Warm.FirstTierUpCycles;
        }
      }
      json::Value WS = json::Value::object();
      WS.set("workloads", static_cast<unsigned>(Flat.size()));
      WS.set("failed", Failed);
      WS.set("cold_runs_tiered_up", ColdTiered);
      WS.set("cold_warmup_instructions", ColdInstr);
      WS.set("cold_warmup_cycles", ColdCycles);
      WS.set("warm_runs_tiered_up", WarmTiered);
      WS.set("warm_warmup_instructions", WarmInstr);
      WS.set("warm_warmup_cycles", WarmCycles);
      WS.set("warmup_instructions_skipped_pct",
             ColdInstr > 0
                 ? json::Value((1.0 - static_cast<double>(WarmInstr) /
                                          static_cast<double>(ColdInstr)) *
                               100.0)
                 : json::Value());
      HostJson.set("warm_start", std::move(WS));
      double ColdAvg = ColdTiered ? double(ColdInstr) / ColdTiered : 0;
      double WarmAvg = WarmTiered ? double(WarmInstr) / WarmTiered : 0;
      std::printf("Warm start: first tier-up after %.0f simulated "
                  "instructions cold (avg of %u)\n            vs %.0f warm "
                  "(avg of %u) — %.1f%% of the warmup tax skipped\n",
                  ColdAvg, ColdTiered, WarmAvg, WarmTiered,
                  ColdInstr ? (1.0 - double(WarmInstr) / double(ColdInstr)) *
                                  100.0
                            : 0.0);
      if (Failed)
        std::printf("Warm start: %u workload(s) failed the round trip\n",
                    Failed);
    }
    Report.setHost(std::move(HostJson));
  }

  if (HaveDetail && !printDetail(Detail.c_str(), Opt.effectiveJobs()))
    return 1;
  return finishReport(Report, Opt) ? 0 : 1;
}
