//===- bench/fig8_speedup.cpp - Figure 8 ----------------------------------===//
///
/// Cycle-count improvement of the Class Cache configuration over the
/// state-of-the-art baseline, for the whole application and for optimized
/// code, across the selected benchmark set. With --detail=<name>, also
/// prints the per-structure hit-rate changes the paper discusses for
/// ai-astar (DL1 / L2 / DTLB).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstring>

using namespace ccjs;
using namespace ccjs::bench;

static void printDetail(const char *Name) {
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name);
    return;
  }
  Comparison C = compareConfigs(W->Source, EngineConfig());
  if (!C.Baseline.Ok || !C.ClassCache.Ok)
    return;
  const RunStats &B = C.Baseline.Steady;
  const RunStats &N = C.ClassCache.Steady;
  std::printf("\n--- %s memory-system detail (paper section 5.1) ---\n",
              Name);
  Table T({"structure", "baseline hit rate", "class cache hit rate",
           "miss-rate reduction"});
  auto Row = [&](const char *S, double HB, double HN) {
    double MissB = 1 - HB, MissN = 1 - HN;
    double Red = MissB > 0 ? (1 - MissN / MissB) * 100 : 0;
    T.addRow({S, Table::pct(HB, 2), Table::pct(HN, 2),
              Table::fmt(Red, 1) + "%"});
  };
  Row("DL1", B.Dl1HitRate, N.Dl1HitRate);
  Row("L2", B.L2HitRate, N.L2HitRate);
  Row("DTLB", B.DtlbHitRate, N.DtlbHitRate);
  std::printf("%s", T.render().c_str());
  std::printf("DL1 accesses: %llu -> %llu (removed Check-Map loads)\n",
              static_cast<unsigned long long>(B.Dl1Accesses),
              static_cast<unsigned long long>(N.Dl1Accesses));
}

int main(int Argc, char **Argv) {
  printHeader("Figure 8: Improvement in number of cycles (Class Cache vs "
              "baseline)",
              "Figure 8");

  Table T({"benchmark", "suite", "whole application", "optimized code"});
  Avg AllWhole, AllOpt;
  for (const char *Suite : SuiteOrder) {
    Avg SW, SO;
    for (const Workload *W : workloadsOfSuite(Suite, true)) {
      Comparison C = compareConfigs(W->Source, EngineConfig());
      if (!C.Baseline.Ok || !C.ClassCache.Ok) {
        std::fprintf(stderr, "%s failed: %s%s\n", W->Name,
                     C.Baseline.Error.c_str(), C.ClassCache.Error.c_str());
        return 1;
      }
      if (!C.OutputsMatch) {
        std::fprintf(stderr, "%s: OUTPUT MISMATCH\n", W->Name);
        return 1;
      }
      SW.add(C.SpeedupWhole);
      SO.add(C.SpeedupOptimized);
      AllWhole.add(C.SpeedupWhole);
      AllOpt.add(C.SpeedupOptimized);
      T.addRow({W->Name, Suite, Table::fmt(C.SpeedupWhole, 1) + "%",
                Table::fmt(C.SpeedupOptimized, 1) + "%"});
    }
    T.addRow({std::string(Suite) + " average", "",
              Table::fmt(SW.value(), 1) + "%",
              Table::fmt(SO.value(), 1) + "%"});
    T.addSeparator();
  }
  T.addRow({"overall average", "", Table::fmt(AllWhole.value(), 1) + "%",
            Table::fmt(AllOpt.value(), 1) + "%"});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: 7.1%% average speedup for optimized code "
              "(up to 34%% for\nai-astar) and 5%% for the whole "
              "application.\n");

  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--detail=", 9) == 0)
      printDetail(Argv[I] + 9);
  return 0;
}
