//===- bench/BenchUtil.h - Shared benchmark-harness helpers -----*- C++ -*-===//

#ifndef CCJS_BENCH_BENCHUTIL_H
#define CCJS_BENCH_BENCHUTIL_H

#include "core/Runner.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>
#include <vector>

namespace ccjs::bench {

inline std::vector<const Workload *> workloadsOfSuite(const char *Suite,
                                                      bool SelectedOnly) {
  std::vector<const Workload *> Out;
  size_t N = 0;
  const Workload *All = allWorkloads(&N);
  for (size_t I = 0; I < N; ++I) {
    if (Suite && std::string_view(All[I].Suite) != Suite)
      continue;
    if (SelectedOnly && !All[I].Selected)
      continue;
    Out.push_back(&All[I]);
  }
  return Out;
}

/// Running average helper for per-suite rows.
class Avg {
public:
  void add(double V) {
    Sum += V;
    ++N;
  }
  double value() const { return N ? Sum / N : 0; }
  bool empty() const { return N == 0; }

private:
  double Sum = 0;
  size_t N = 0;
};

inline void printHeader(const char *Title, const char *PaperRef) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", Title);
  std::printf("(reproduces %s of \"Removing Checks in Dynamically Typed "
              "Languages\nthrough Efficient Profiling\", CGO 2017)\n",
              PaperRef);
  std::printf("==============================================================="
              "=========\n");
}

inline const char *const SuiteOrder[] = {"octane", "sunspider", "kraken"};

} // namespace ccjs::bench

#endif // CCJS_BENCH_BENCHUTIL_H
