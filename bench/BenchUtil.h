//===- bench/BenchUtil.h - Shared benchmark-harness helpers -----*- C++ -*-===//
///
/// \file
/// Bench-binary-side conveniences on top of the core harness
/// (core/BenchHarness.h): suite grouping honoring --filter, running
/// averages that skip unmeasurable metrics, and table formatting for
/// optional percentages.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_BENCH_BENCHUTIL_H
#define CCJS_BENCH_BENCHUTIL_H

#include "core/BenchHarness.h"
#include "core/Runner.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace ccjs::bench {

inline const char *const SuiteOrder[] = {"octane", "sunspider", "kraken"};

inline std::vector<const Workload *>
workloadsOfSuite(const char *Suite, bool SelectedOnly,
                 const std::string &Filter = "") {
  std::vector<const Workload *> Out;
  size_t N = 0;
  const Workload *All = allWorkloads(&N);
  for (size_t I = 0; I < N; ++I) {
    if (Suite && std::string_view(All[I].Suite) != Suite)
      continue;
    if (SelectedOnly && !All[I].Selected)
      continue;
    if (!Filter.empty() && Filter != All[I].Suite && Filter != All[I].Name)
      continue;
    Out.push_back(&All[I]);
  }
  return Out;
}

/// One suite's (filtered) workloads, in registry order.
struct SuiteGroup {
  const char *Suite;
  std::vector<const Workload *> Ws;
};

/// The benchmark sweep in canonical suite order, restricted by \p Filter
/// (already validated by HarnessOptions::parse). Suites emptied by the
/// filter are dropped.
inline std::vector<SuiteGroup> groupWorkloads(bool SelectedOnly,
                                              const std::string &Filter) {
  std::vector<SuiteGroup> Groups;
  for (const char *Suite : SuiteOrder) {
    SuiteGroup G{Suite, workloadsOfSuite(Suite, SelectedOnly, Filter)};
    if (!G.Ws.empty())
      Groups.push_back(std::move(G));
  }
  return Groups;
}

/// Flattens suite groups into the deterministic job order the harness
/// indexes results by.
inline std::vector<const Workload *>
flattenGroups(const std::vector<SuiteGroup> &Groups) {
  std::vector<const Workload *> Flat;
  for (const SuiteGroup &G : Groups)
    Flat.insert(Flat.end(), G.Ws.begin(), G.Ws.end());
  return Flat;
}

/// Running average helper for per-suite rows. Absent (unmeasurable)
/// samples are skipped, never counted as zero.
class Avg {
public:
  void add(double V) {
    Sum += V;
    ++N;
  }
  void add(const std::optional<double> &V) {
    if (V)
      add(*V);
  }
  double value() const { return N ? Sum / N : 0; }
  /// The average, or nullopt when every sample was unmeasurable.
  std::optional<double> valueOpt() const {
    return N ? std::optional<double>(Sum / N) : std::nullopt;
  }
  bool empty() const { return N == 0; }

private:
  double Sum = 0;
  size_t N = 0;
};

/// Formats an optional percentage metric: "n/a" when unmeasurable.
inline std::string fmtPct(const std::optional<double> &V, int Digits = 1) {
  return V ? Table::fmt(*V, Digits) + "%" : "n/a";
}

inline void printHeader(const char *Title, const char *PaperRef) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", Title);
  std::printf("(reproduces %s of \"Removing Checks in Dynamically Typed "
              "Languages\nthrough Efficient Profiling\", CGO 2017)\n",
              PaperRef);
  std::printf("==============================================================="
              "=========\n");
}

/// Wall-clock stopwatch for the --host throughput section: construct
/// before the sweep, ask for the HostMeasurement after.
class HostTimer {
public:
  HostTimer() : Start(std::chrono::steady_clock::now()) {}

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  /// Measurement over a comparison sweep: engine time and simulated
  /// instructions sum over both runs of every comparison.
  HostMeasurement measure(const std::vector<Comparison> &Results,
                          unsigned Jobs) const {
    HostMeasurement H;
    H.WallSeconds = seconds();
    H.Jobs = Jobs;
    for (const Comparison &C : Results)
      for (const BenchRun *R : {&C.Baseline, &C.ClassCache}) {
        H.EngineSeconds += R->HostSeconds;
        H.Dispatches += R->HostDispatches;
        H.FusedSavedDispatches += R->HostFusedSaved;
        if (R->TieredUp) {
          ++H.RunsTieredUp;
          H.WarmupInstructions += R->FirstTierUpInstr;
          H.WarmupCycles += R->FirstTierUpCycles;
        }
        if (R->Ok)
          H.SimInstructions += R->Steady.Instrs.total();
      }
    return H;
  }

  /// Measurement over a single-config sweep.
  HostMeasurement measure(const std::vector<BenchRun> &Results,
                          unsigned Jobs) const {
    HostMeasurement H;
    H.WallSeconds = seconds();
    H.Jobs = Jobs;
    for (const BenchRun &R : Results) {
      H.EngineSeconds += R.HostSeconds;
      H.Dispatches += R.HostDispatches;
      H.FusedSavedDispatches += R.HostFusedSaved;
      if (R.TieredUp) {
        ++H.RunsTieredUp;
        H.WarmupInstructions += R.FirstTierUpInstr;
        H.WarmupCycles += R.FirstTierUpCycles;
      }
      if (R.Ok)
        H.SimInstructions += R.Steady.Instrs.total();
    }
    return H;
  }

private:
  std::chrono::steady_clock::time_point Start;
};

/// Writes the report when --json was given. Returns false (after printing
/// to stderr) on I/O failure so main() can exit non-zero.
inline bool finishReport(const BenchReport &Report,
                         const HarnessOptions &Opt) {
  if (Opt.JsonPath.empty())
    return true;
  std::string Err;
  if (!Report.write(Opt.JsonPath, &Err)) {
    std::fprintf(stderr, "error writing JSON report: %s\n", Err.c_str());
    return false;
  }
  return true;
}

} // namespace ccjs::bench

#endif // CCJS_BENCH_BENCHUTIL_H
