//===- bench/ablation_hoisting.cpp -----------------------------------------===//
///
/// Ablation for the movClassIDArray loop hoisting of section 4.2.1.3 and
/// the choice of four regArrayObjectClassId registers. Supports the shared
/// harness flags; each mode fans its workloads out over --jobs threads.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Ablation: movClassIDArray hoisting and register count",
              "section 4.2.1.3");

  struct Mode {
    const char *Name;
    bool Hoist;
    unsigned Regs;
  };
  const Mode Modes[] = {
      {"no hoisting", false, 0},
      {"hoisting, 1 register", true, 1},
      {"hoisting, 2 registers", true, 2},
      {"hoisting, 4 registers (paper)", true, 4},
  };

  // Elements-store-heavy workloads benefit from the hoisting.
  std::vector<const Workload *> Set = {
      findWorkload("imaging-gaussian-blur"), findWorkload("audio-oscillator"),
      findWorkload("mandreel"), findWorkload("imaging-desaturate"),
      findWorkload("navier-stokes"), findWorkload("gbemu")};

  BenchReport Report("ablation_hoisting", Engine::Options().build());
  Table T({"configuration", "avg speedup (optimized)",
           "avg CC-store overhead instrs"});
  for (const Mode &M : Modes) {
    EngineConfig Cfg =
        Engine::Options().withHoisting(M.Hoist, M.Regs).build();
    Opt.applyDispatch(Cfg);
    Opt.applyCheckRemoval(Cfg);
    std::vector<Comparison> Results =
        compareWorkloads(Set, Cfg, Opt.effectiveJobs());
    Avg OptAvg;
    double OverheadInstrs = 0;
    for (size_t I = 0; I < Set.size(); ++I) {
      const Comparison &C = Results[I];
      if (!C.valid()) {
        std::fprintf(stderr, "%s failed\n", Set[I]->Name);
        return 1;
      }
      OptAvg.add(C.SpeedupOptimized);
      // The mechanism's instruction overhead shows up as extra
      // OtherOptimized instructions relative to the baseline run.
      double Extra =
          double(C.ClassCache.Steady.Instrs.PerCategory[unsigned(
              InstrCategory::OtherOptimized)]) -
          double(C.Baseline.Steady.Instrs.PerCategory[unsigned(
              InstrCategory::OtherOptimized)]);
      OverheadInstrs += Extra / Set.size();
    }
    T.addRow({M.Name, fmtPct(OptAvg.valueOpt(), 2),
              Table::fmt(OverheadInstrs, 0)});
    json::Value Data = json::Value::object();
    Data.set("hoist", M.Hoist);
    Data.set("registers", M.Regs);
    Data.set("avg_speedup_optimized_pct", json::Value(OptAvg.valueOpt()));
    Data.set("avg_cc_store_overhead_instrs", OverheadInstrs);
    Report.addEntry(M.Name, "ablation", std::move(Data));
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nHoisting removes the per-store movClassIDArray header load "
              "for loop-invariant\narrays; four registers cover loops that "
              "write several arrays.\n");
  return finishReport(Report, Opt) ? 0 : 1;
}
