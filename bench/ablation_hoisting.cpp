//===- bench/ablation_hoisting.cpp -----------------------------------------===//
///
/// Ablation for the movClassIDArray loop hoisting of section 4.2.1.3 and
/// the choice of four regArrayObjectClassId registers.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Ablation: movClassIDArray hoisting and register count",
              "section 4.2.1.3");

  struct Mode {
    const char *Name;
    bool Hoist;
    unsigned Regs;
  };
  const Mode Modes[] = {
      {"no hoisting", false, 0},
      {"hoisting, 1 register", true, 1},
      {"hoisting, 2 registers", true, 2},
      {"hoisting, 4 registers (paper)", true, 4},
  };

  // Elements-store-heavy workloads benefit from the hoisting.
  std::vector<const Workload *> Set = {
      findWorkload("imaging-gaussian-blur"), findWorkload("audio-oscillator"),
      findWorkload("mandreel"), findWorkload("imaging-desaturate"),
      findWorkload("navier-stokes"), findWorkload("gbemu")};

  Table T({"configuration", "avg speedup (optimized)",
           "avg CC-store overhead instrs"});
  for (const Mode &M : Modes) {
    EngineConfig Cfg;
    Cfg.HoistClassIdArray = M.Hoist;
    Cfg.NumArrayClassRegs = M.Regs;
    Avg Opt;
    double OverheadInstrs = 0;
    for (const Workload *W : Set) {
      Comparison C = compareConfigs(W->Source, Cfg);
      if (!C.Baseline.Ok || !C.ClassCache.Ok) {
        std::fprintf(stderr, "%s failed\n", W->Name);
        return 1;
      }
      Opt.add(C.SpeedupOptimized);
      // The mechanism's instruction overhead shows up as extra
      // OtherOptimized instructions relative to the baseline run.
      double Extra =
          double(C.ClassCache.Steady.Instrs.PerCategory[unsigned(
              InstrCategory::OtherOptimized)]) -
          double(C.Baseline.Steady.Instrs.PerCategory[unsigned(
              InstrCategory::OtherOptimized)]);
      OverheadInstrs += Extra / Set.size();
    }
    T.addRow({M.Name, Table::fmt(Opt.value(), 2) + "%",
              Table::fmt(OverheadInstrs, 0)});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nHoisting removes the per-store movClassIDArray header load "
              "for loop-invariant\narrays; four registers cover loops that "
              "write several arrays.\n");
  return 0;
}
