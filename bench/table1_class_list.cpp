//===- bench/table1_class_list.cpp - Table 1 ------------------------------===//
///
/// Reconstructs the paper's Table 1: the Class List contents for the
/// GraphNode / NodeList example — GraphNode objects spanning two cache
/// lines, a NodeList whose elements array holds GraphNodes, and a
/// findGraphNode function speculatively optimized on GraphNode's position
/// property and on NodeList's elements array.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Engine.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ccjs;
using namespace ccjs::bench;

static const char Source[] = R"js(
function Position(x, y) { this.x = x; this.y = y; }
function GraphNode(id) {
  // Nine properties: the object spans two cache lines (paper Table 1).
  this.id = id;
  this.weight = id * 2;
  this.flags = 0;
  this.cost = id + 1;
  this.visited = 0;
  this.position = new Position(id, id * 3);
  this.extra1 = id;
  this.extra2 = id;
  this.extra3 = id;
}
function NodeList(n) {
  this.count = n;
  this.capacity = n;
  this.generation = 0;
  this.tag = 1;
}
var list = null;
function fillList(n) {
  list = new NodeList(0);
  var i;
  for (i = 0; i < n; i++) list[i] = new GraphNode(i);
  list.count = n;
}
function findGraphNode(x) {
  var i;
  for (i = 0; i < list.count; i++) {
    var node = list[i];
    if (node.position.x == x) return node.id;
  }
  return -1;
}
function run() {
  var found = 0;
  var q;
  for (q = 0; q < 64; q++) found += findGraphNode(q % 40);
  print(found);
}
fillList(40);
)js";

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;
  EngineConfig Cfg = Engine::Options().withClassCache().build();
  Opt.applyDispatch(Cfg);
  Opt.applyCheckRemoval(Cfg);
  Engine E(Cfg);
  if (!E.load(Source) || !E.runTopLevel()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }
  for (int I = 0; I < 10; ++I)
    E.callGlobal("run");
  if (E.halted()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }
  // Write every dirty Class Cache entry back so the List shows the full
  // profile.
  E.vm().CCache.flushDirty();

  VMState &VM = E.vm();
  auto ClassName = [&VM](uint8_t ClassId) -> std::string {
    if (ClassId == SmiClassId)
      return "SMI";
    if (ClassId == UntrackedClassId)
      return "untracked";
    const std::vector<ShapeId> &Shapes = VM.CList.shapesForClass(ClassId);
    if (Shapes.empty())
      return "class" + std::to_string(ClassId);
    const Shape &S = VM.Shapes.get(Shapes.front());
    if (Shapes.front() == VM.Shapes.heapNumberShape())
      return "HeapNumber";
    std::string Props;
    ShapeId Cur = Shapes.front();
    // Name the class by its property chain tail.
    if (S.AddedName != 0)
      return "{..." + std::string(VM.Names.text(S.AddedName)) + "}#" +
             std::to_string(ClassId);
    (void)Cur;
    return "class" + std::to_string(ClassId);
  };
  auto FuncName = [&VM](uint32_t F) -> std::string {
    return F < VM.Funcs.size() ? VM.Funcs[F].Fn->Name
                               : "fn" + std::to_string(F);
  };

  std::printf("Table 1: Class List contents for the GraphNode / NodeList "
              "example\n");
  std::printf("--------------------------------------------------------------"
              "--\n");

  // Find the final GraphNode and NodeList classes: the shape of the first
  // element of the list, and of the list itself.
  Value List = VM.readGlobal(VM.Module.GlobalIndexOf.at("list"));
  uint64_t ListAddr = List.asPointer();
  ShapeId ListShape = VM.Heap_.shapeOf(ListAddr);
  Value First = VM.Heap_.getElement(ListAddr, 0);
  ShapeId NodeShape = VM.Heap_.shapeOfValue(First);

  std::printf("GraphNode (ClassID %u, %u properties, 2 cache lines):\n",
              VM.Shapes.get(NodeShape).ClassId,
              VM.Shapes.get(NodeShape).NumSlots);
  std::printf("%s\n",
              VM.CList
                  .dumpClass(VM.Shapes.get(NodeShape).ClassId, 2, ClassName,
                             FuncName)
                  .c_str());
  std::printf("NodeList (ClassID %u; position 2 of line 0 profiles the "
              "elements array):\n",
              VM.Shapes.get(ListShape).ClassId);
  std::printf("%s\n",
              VM.CList
                  .dumpClass(VM.Shapes.get(ListShape).ClassId, 1, ClassName,
                             FuncName)
                  .c_str());
  std::printf("Output checksum: %s",
              E.output().substr(0, E.output().find('\n') + 1).c_str());
  std::printf("\nPaper reference: Table 1 shows findGraphNode registered in "
              "the FunctionList\nof GraphNode's position property and of "
              "NodeList's elements array, with all\ninitialized properties "
              "still valid (monomorphic).\n");

  BenchReport Report("table1_class_list", Cfg);
  json::Value Data = json::Value::object();
  Data.set("graphnode_class_id", VM.Shapes.get(NodeShape).ClassId);
  Data.set("graphnode_num_properties", VM.Shapes.get(NodeShape).NumSlots);
  Data.set("nodelist_class_id", VM.Shapes.get(ListShape).ClassId);
  Data.set("output_checksum",
           E.output().substr(0, E.output().find('\n')));
  Report.addEntry("graph-node-example", "example", std::move(Data));
  return finishReport(Report, Opt) ? 0 : 1;
}
