//===- bench/fig3_monomorphic_loads.cpp - Figure 3 ------------------------===//
///
/// Fraction of object load accesses that target monomorphic properties and
/// monomorphic elements arrays (classified against the whole execution's
/// store profile).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Figure 3: Object load accesses to monomorphic properties / "
              "elements arrays",
              "Figure 3");

  Table T({"benchmark", "suite", "mono properties", "mono elements",
           "non-mono properties", "non-mono elements"});

  Avg AllMono;
  for (const char *Suite : SuiteOrder) {
    Avg SuiteMono;
    for (const Workload *W : workloadsOfSuite(Suite, true)) {
      BenchRun R = runSteadyState(EngineConfig(), W->Source);
      if (!R.Ok) {
        std::fprintf(stderr, "%s failed: %s\n", W->Name, R.Error.c_str());
        return 1;
      }
      const ObjectLoadCounters &L = R.Steady.Loads;
      double Total = double(L.total());
      if (Total == 0)
        Total = 1;
      double Mono =
          double(L.MonomorphicProperty + L.MonomorphicElements) / Total;
      SuiteMono.add(Mono);
      AllMono.add(Mono);
      T.addRow({W->Name, Suite,
                Table::pct(L.MonomorphicProperty / Total),
                Table::pct(L.MonomorphicElements / Total),
                Table::pct(L.NonMonomorphicProperty / Total),
                Table::pct(L.NonMonomorphicElements / Total)});
    }
    T.addRow({std::string(Suite) + " average (mono total)", "",
              Table::pct(SuiteMono.value()), "", "", ""});
    T.addSeparator();
  }
  T.addRow({"overall average (mono total)", "",
            Table::pct(AllMono.value()), "", "", ""});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: 66%% of object load accesses target "
              "monomorphic properties\nor monomorphic elements arrays.\n");
  return 0;
}
