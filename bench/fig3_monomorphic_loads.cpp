//===- bench/fig3_monomorphic_loads.cpp - Figure 3 ------------------------===//
///
/// Fraction of object load accesses that target monomorphic properties and
/// monomorphic elements arrays (classified against the whole execution's
/// store profile). Supports the shared harness flags (--jobs/--json/
/// --filter).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Figure 3: Object load accesses to monomorphic properties / "
              "elements arrays",
              "Figure 3");

  std::vector<SuiteGroup> Groups = groupWorkloads(true, Opt.Filter);
  std::vector<const Workload *> Flat = flattenGroups(Groups);
  EngineConfig Cfg = Engine::Options().build();
  Opt.applyDispatch(Cfg);
  Opt.applyCheckRemoval(Cfg);
  std::vector<BenchRun> Results =
      runWorkloadsSteadyState(Flat, Cfg, Opt.effectiveJobs());

  BenchReport Report("fig3_monomorphic_loads", Cfg);
  Table T({"benchmark", "suite", "mono properties", "mono elements",
           "non-mono properties", "non-mono elements"});

  Avg AllMono;
  size_t Idx = 0;
  for (const SuiteGroup &G : Groups) {
    Avg SuiteMono;
    for (const Workload *W : G.Ws) {
      const BenchRun &R = Results[Idx++];
      if (!R.Ok) {
        std::fprintf(stderr, "%s failed: %s\n", W->Name, R.Error.c_str());
        return 1;
      }
      const ObjectLoadCounters &L = R.Steady.Loads;
      double Total = double(L.total());
      if (Total == 0)
        Total = 1;
      double Mono =
          double(L.MonomorphicProperty + L.MonomorphicElements) / Total;
      SuiteMono.add(Mono);
      AllMono.add(Mono);
      T.addRow({W->Name, G.Suite,
                Table::pct(L.MonomorphicProperty / Total),
                Table::pct(L.MonomorphicElements / Total),
                Table::pct(L.NonMonomorphicProperty / Total),
                Table::pct(L.NonMonomorphicElements / Total)});
      Report.addRun(*W, R);
    }
    T.addRow({std::string(G.Suite) + " average (mono total)", "",
              Table::pct(SuiteMono.value()), "", "", ""});
    T.addSeparator();
  }
  T.addRow({"overall average (mono total)", "",
            Table::pct(AllMono.value()), "", "", ""});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: 66%% of object load accesses target "
              "monomorphic properties\nor monomorphic elements arrays.\n");
  Report.setSummary("monomorphic_share_avg", AllMono.value());
  return finishReport(Report, Opt) ? 0 : 1;
}
