//===- bench/fig9_energy.cpp - Figure 9 -----------------------------------===//
///
/// Energy reduction of the Class Cache configuration over the baseline
/// (dynamic energy from fewer executed instructions and memory accesses,
/// leakage from fewer cycles), for the whole application and optimized
/// code.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main() {
  printHeader("Figure 9: Energy reduction (Class Cache vs baseline)",
              "Figure 9");

  Table T({"benchmark", "suite", "whole application", "optimized code"});
  Avg AllWhole, AllOpt;
  for (const char *Suite : SuiteOrder) {
    Avg SW, SO;
    for (const Workload *W : workloadsOfSuite(Suite, true)) {
      Comparison C = compareConfigs(W->Source, EngineConfig());
      if (!C.Baseline.Ok || !C.ClassCache.Ok) {
        std::fprintf(stderr, "%s failed: %s%s\n", W->Name,
                     C.Baseline.Error.c_str(), C.ClassCache.Error.c_str());
        return 1;
      }
      SW.add(C.EnergyReductionWhole);
      SO.add(C.EnergyReductionOptimized);
      AllWhole.add(C.EnergyReductionWhole);
      AllOpt.add(C.EnergyReductionOptimized);
      T.addRow({W->Name, Suite,
                Table::fmt(C.EnergyReductionWhole, 1) + "%",
                Table::fmt(C.EnergyReductionOptimized, 1) + "%"});
    }
    T.addRow({std::string(Suite) + " average", "",
              Table::fmt(SW.value(), 1) + "%",
              Table::fmt(SO.value(), 1) + "%"});
    T.addSeparator();
  }
  T.addRow({"overall average", "", Table::fmt(AllWhole.value(), 1) + "%",
            Table::fmt(AllOpt.value(), 1) + "%"});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: 4.5%% average energy reduction for the "
              "whole application\nand 6.5%% for optimized code; Kraken "
              "saves the most (8.8%% optimized code).\n");
  return 0;
}
