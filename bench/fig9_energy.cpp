//===- bench/fig9_energy.cpp - Figure 9 -----------------------------------===//
///
/// Energy reduction of the Class Cache configuration over the baseline
/// (dynamic energy from fewer executed instructions and memory accesses,
/// leakage from fewer cycles), for the whole application and optimized
/// code. Supports the shared harness flags (--jobs/--json/--filter).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace ccjs;
using namespace ccjs::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opt;
  if (!Opt.parse(Argc, Argv))
    return 2;

  printHeader("Figure 9: Energy reduction (Class Cache vs baseline)",
              "Figure 9");

  std::vector<SuiteGroup> Groups = groupWorkloads(true, Opt.Filter);
  std::vector<const Workload *> Flat = flattenGroups(Groups);
  EngineConfig Base = Engine::Options().build();
  Opt.applyDispatch(Base);
  Opt.applyCheckRemoval(Base);
  std::vector<Comparison> Results =
      compareWorkloads(Flat, Base, Opt.effectiveJobs());

  BenchReport Report("fig9_energy", Base);
  Table T({"benchmark", "suite", "whole application", "optimized code"});
  Avg AllWhole, AllOpt;
  size_t Idx = 0;
  for (const SuiteGroup &G : Groups) {
    Avg SW, SO;
    for (const Workload *W : G.Ws) {
      const Comparison &C = Results[Idx++];
      if (!C.valid()) {
        std::fprintf(stderr, "%s failed: %s%s\n", W->Name,
                     C.Baseline.Error.c_str(), C.ClassCache.Error.c_str());
        return 1;
      }
      SW.add(C.EnergyReductionWhole);
      SO.add(C.EnergyReductionOptimized);
      AllWhole.add(C.EnergyReductionWhole);
      AllOpt.add(C.EnergyReductionOptimized);
      T.addRow({W->Name, G.Suite, fmtPct(C.EnergyReductionWhole),
                fmtPct(C.EnergyReductionOptimized)});
      Report.addComparison(*W, C);
    }
    T.addRow({std::string(G.Suite) + " average", "", fmtPct(SW.valueOpt()),
              fmtPct(SO.valueOpt())});
    T.addSeparator();
  }
  T.addRow({"overall average", "", fmtPct(AllWhole.valueOpt()),
            fmtPct(AllOpt.valueOpt())});
  std::printf("%s", T.render().c_str());
  std::printf("\nPaper reference: 4.5%% average energy reduction for the "
              "whole application\nand 6.5%% for optimized code; Kraken "
              "saves the most (8.8%% optimized code).\n");
  Report.setSummary("energy_reduction_whole_avg_pct",
                    json::Value(AllWhole.valueOpt()));
  Report.setSummary("energy_reduction_optimized_avg_pct",
                    json::Value(AllOpt.valueOpt()));
  return finishReport(Report, Opt) ? 0 : 1;
}
