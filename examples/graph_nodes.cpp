//===- examples/graph_nodes.cpp - The paper's Table 1 example -------------===//
///
/// Builds the GraphNode / NodeList scenario of the paper's Table 1 and
/// prints the resulting Class List entries: which properties are
/// initialized, which are still monomorphic, which carry speculative
/// optimizations, and which functions depend on them.
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include <cstdio>

using namespace ccjs;

static const char Source[] = R"js(
function Position(x, y) { this.x = x; this.y = y; }
function GraphNode(id) {
  this.id = id;
  this.weight = id * 2;
  this.flags = 0;
  this.cost = id + 1;
  this.visited = 0;
  this.position = new Position(id, id * 3);
  this.extra1 = id;
  this.extra2 = id;
  this.extra3 = id;   // 9 properties: the object spans two cache lines.
}
function NodeList() {
  this.count = 0;
  this.generation = 0;
}
var list = new NodeList();
function fill(n) {
  var i;
  for (i = 0; i < n; i++) list[i] = new GraphNode(i);
  list.count = n;
}
function findGraphNode(x) {
  var i;
  for (i = 0; i < list.count; i++) {
    var node = list[i];
    if (node.position.x == x) return node.id;
  }
  return -1;
}
fill(48);
function run() {
  var acc = 0;
  var q;
  for (q = 0; q < 96; q++) acc += findGraphNode(q % 48);
  print(acc);
}
)js";

int main() {
  EngineConfig Cfg;
  Cfg.ClassCacheEnabled = true;
  Engine E(Cfg);
  if (!E.load(Source) || !E.runTopLevel()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }
  for (int I = 0; I < 10; ++I)
    E.callGlobal("run");
  if (E.halted()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }
  VMState &VM = E.vm();
  VM.CCache.flushDirty();

  Value List = VM.readGlobal(VM.Module.GlobalIndexOf.at("list"));
  ShapeId ListShape = VM.Heap_.shapeOf(List.asPointer());
  Value First = VM.Heap_.getElement(List.asPointer(), 0);
  ShapeId NodeShape = VM.Heap_.shapeOfValue(First);

  auto ClassName = [&VM, NodeShape, ListShape](uint8_t C) -> std::string {
    if (C == SmiClassId)
      return "SMI";
    if (C == VM.Shapes.get(NodeShape).ClassId)
      return "GraphNode";
    if (C == VM.Shapes.get(ListShape).ClassId)
      return "NodeList";
    const std::vector<ShapeId> &Sh = VM.CList.shapesForClass(C);
    if (!Sh.empty() && Sh.front() == VM.Shapes.heapNumberShape())
      return "HeapNumber";
    if (!Sh.empty()) {
      const Shape &S = VM.Shapes.get(Sh.front());
      if (S.AddedName != 0)
        return "{..." + std::string(VM.Names.text(S.AddedName)) + "}";
    }
    return "class" + std::to_string(C);
  };
  auto FuncName = [&VM](uint32_t F) {
    return F < VM.Funcs.size() ? VM.Funcs[F].Fn->Name
                               : "fn" + std::to_string(F);
  };

  std::printf("Class List after steady state (paper Table 1):\n\n");
  std::printf("GraphNode — %u properties over 2 cache lines:\n%s\n",
              VM.Shapes.get(NodeShape).NumSlots,
              VM.CList
                  .dumpClass(VM.Shapes.get(NodeShape).ClassId, 2, ClassName,
                             FuncName)
                  .c_str());
  std::printf("NodeList — elements array profiled at line 0, position 2:\n"
              "%s\n",
              VM.CList
                  .dumpClass(VM.Shapes.get(ListShape).ClassId, 1, ClassName,
                             FuncName)
                  .c_str());
  std::printf("findGraphNode appears in the FunctionLists of the slots it "
              "speculates on,\nexactly as the paper's Table 1 shows.\n");
  return 0;
}
