//===- examples/astar_demo.cpp - The paper's showcase workload ------------===//
///
/// Runs the ai-astar workload (the paper's best case) under the baseline
/// and the Class Cache configuration and reports exactly the quantities
/// the paper's section 5.1 discusses: dynamic check instructions, cycles,
/// and the memory-structure hit rates that improve when Check-Map loads
/// disappear.
///
//===----------------------------------------------------------------------===//

#include "core/Runner.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <optional>

using namespace ccjs;

// Speedup/energy metrics can be unmeasurable (zero denominator); render those
// as "n/a" rather than a fabricated 0%.
static std::string fmtOpt(const std::optional<double> &V,
                          const char *Prefix, const char *Suffix) {
  if (!V)
    return "n/a";
  return Prefix + Table::fmt(*V, 1) + Suffix;
}

int main() {
  const Workload *W = findWorkload("ai-astar");
  std::printf("Running %s (suite %s) to steady state under both "
              "configurations...\n\n",
              W->Name, W->Suite);
  Comparison C = compareConfigs(W->Source, EngineConfig());
  if (!C.Baseline.Ok || !C.ClassCache.Ok) {
    std::fprintf(stderr, "error: %s%s\n", C.Baseline.Error.c_str(),
                 C.ClassCache.Error.c_str());
    return 1;
  }

  const RunStats &B = C.Baseline.Steady;
  const RunStats &N = C.ClassCache.Steady;
  Table T({"metric", "baseline", "class cache", "change"});
  auto U64 = [](uint64_t V) { return std::to_string(V); };
  uint64_t BC = B.Instrs.PerCategory[unsigned(InstrCategory::Checks)];
  uint64_t NC = N.Instrs.PerCategory[unsigned(InstrCategory::Checks)];
  T.addRow({"check instructions", U64(BC), U64(NC),
            Table::fmt((1.0 - double(NC) / double(BC)) * 100, 1) +
                "% fewer"});
  T.addRow({"dynamic instructions (optimized)",
            U64(B.Instrs.optimizedTotal()), U64(N.Instrs.optimizedTotal()),
            ""});
  T.addRow({"cycles (optimized code)", Table::fmt(B.CyclesOptimized, 0),
            Table::fmt(N.CyclesOptimized, 0),
            fmtOpt(C.SpeedupOptimized, "+", "% speedup")});
  T.addRow({"cycles (whole application)", Table::fmt(B.CyclesTotal, 0),
            Table::fmt(N.CyclesTotal, 0),
            fmtOpt(C.SpeedupWhole, "+", "% speedup")});
  T.addRow({"DL1 accesses", U64(B.Dl1Accesses), U64(N.Dl1Accesses),
            "Check-Map loads removed"});
  T.addRow({"DL1 hit rate", Table::pct(B.Dl1HitRate, 2),
            Table::pct(N.Dl1HitRate, 2), ""});
  T.addRow({"DTLB hit rate", Table::pct(B.DtlbHitRate, 3),
            Table::pct(N.DtlbHitRate, 3), ""});
  T.addRow({"Class Cache hit rate", "-", Table::pct(N.CcHitRate, 3), ""});
  T.addRow({"energy (whole app, uJ)",
            Table::fmt(B.EnergyTotal.total() / 1e6, 2),
            Table::fmt(N.EnergyTotal.total() / 1e6, 2),
            fmtOpt(C.EnergyReductionWhole, "", "% saved")});
  std::printf("%s", T.render().c_str());
  std::printf("\noutputs match: %s\n", C.OutputsMatch ? "yes" : "NO");
  std::printf("path checksum: %s",
              C.Baseline.Output
                  .substr(0, C.Baseline.Output.find('\n') + 1)
                  .c_str());
  return 0;
}
