// fused_triple.js - committed regression workload for the
// ldloc+ldloc+smibinop fused triple (fusion table pattern 0, mask bit 1):
//
//   ccjs --dispatch=fused --fused-mask=1 --metrics examples/fused_triple.js
//
// The triple only fires when *both* CheckSmis between the local loads and
// the binop are classically elided, which requires the IR builder's
// abstract interpretation to already know both locals are Smis. The first
// `a + b` below proves that (its operands flow through ensureSmi); the
// second `a + b` then compiles to the bare LdLocal/LdLocal/SmiBinOp
// sequence the pattern matches. A simpler `s + a` shape never fuses: its
// first read is check-guarded on entry. This program pins the pattern as
// dynamically live — if a builder change re-inserts a check between the
// loads, the fused-dispatch saving drops to zero and FusionPassTest's
// TripleWorkloadKeepsPatternDynamicallyLive fails.

function run(n) {
  var s = 0;
  var a = 3;
  var b = 4;
  var i;
  for (i = 0; i < n; i++) {
    s = (a + b) + (a + b) + s;
  }
  return s;
}

var j;
for (j = 0; j < 10; j++) {
  print(run(500));
}
