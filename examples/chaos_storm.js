// chaos_storm.js - exercise every speculation mechanism at once, as a target
// for the fault-injection sweep:
//
//   ccjs --class-cache --chaos-seed=N --audit --iterations=3 examples/chaos_storm.js
//
// Monomorphic constructor-initialized loads (Class Cache speculation), a
// mid-run shape break (invalidation + descendant walk), polymorphic call
// sites, SMI and double kernels (CheckSmi/CheckNumber elision), array
// growth, and string building. Output is deterministic, so any divergence
// under chaos is a transparency violation.

function Point(x, y) {
  this.x = x;
  this.y = y;
}

function Particle(p, vx, vy) {
  this.p = p;
  this.vx = vx;
  this.vy = vy;
}

function step(ps, n) {
  var i;
  for (i = 0; i < n; i++) {
    var q = ps[i];
    q.p.x = q.p.x + q.vx;
    q.p.y = q.p.y + q.vy;
  }
}

function checksum(ps, n) {
  var s = 0;
  var i;
  for (i = 0; i < n; i++) {
    s += ps[i].p.x * 3 + ps[i].p.y;
  }
  return s;
}

function smiKernel(n) {
  var acc = 0;
  var i;
  for (i = 0; i < n; i++) {
    acc = (acc + i * 7) % 100000;
  }
  return acc;
}

function doubleKernel(n) {
  var acc = 0.5;
  var i;
  for (i = 0; i < n; i++) {
    acc = acc * 1.0000001 + 0.25;
  }
  return acc;
}

function describe(k) {
  var s = "";
  var i;
  for (i = 0; i < k; i++) {
    s = s + "r" + i + ";";
  }
  return s;
}

function run() {
  var n = 64;
  var ps = [];
  var i;
  for (i = 0; i < n; i++) {
    ps[i] = new Particle(new Point(i, n - i), 1, -1);
  }
  for (i = 0; i < 30; i++) {
    step(ps, n);
  }
  print(checksum(ps, n));

  // Break the monomorphism mid-run: later Points grow an extra property,
  // invalidating inherited profiles through the transition chain.
  for (i = 0; i < n; i++) {
    if (i % 3 == 0) {
      ps[i].p.tag = i;
    }
  }
  for (i = 0; i < 30; i++) {
    step(ps, n);
  }
  print(checksum(ps, n));

  print(smiKernel(4000));
  print(doubleKernel(2000));
  print(describe(12));
  return 0;
}

run();
