// recursion_depth.js - a deep self-recursion for exercising the call-depth
// budget (service-mode resource governance, DESIGN.md 4.9):
//
//   ccjs --serve --budget-depth=30 examples/recursion_depth.js   # exit 3
//   ccjs --budget-depth=30 examples/recursion_depth.js
//
// With no budget armed the program completes normally (100 frames is well
// inside the engine's own recursion limit); with --budget-depth=N for
// N < 100 it halts with "BudgetExceeded: call-depth used=N+1 limit=N
// (safepoint=call-entry)" and the engine stays reusable.

function down(n, acc) {
  if (n <= 0) { return acc; }
  return down(n - 1, acc + n);
}

print(down(100, 0));
