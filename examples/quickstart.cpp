//===- examples/quickstart.cpp - Minimal end-to-end tour ------------------===//
///
/// Loads a small MiniJS program, runs it to steady state under both the
/// baseline and the Class Cache configuration, and prints the headline
/// numbers: dynamic instruction breakdown, cycles, speedup and energy.
///
//===----------------------------------------------------------------------===//

#include "core/Runner.h"
#include "support/Table.h"

#include <cstdio>
#include <optional>
#include <string>

using namespace ccjs;

static const char Source[] = R"js(
function Point(x, y) {
  this.x = x;
  this.y = y;
}

function dist2(a, b) {
  var dx = a.x - b.x;
  var dy = a.y - b.y;
  return dx * dx + dy * dy;
}

var points = new Array(0);

function setup() {
  var i;
  for (i = 0; i < 512; i = i + 1)
    points[i] = new Point(i % 64, (i * 7) % 64);
}

function run() {
  var sum = 0;
  var i, j;
  for (i = 0; i < 512; i = i + 1)
    for (j = 0; j < 64; j = j + 1)
      sum = sum + dist2(points[i], points[(i + j) % 512]);
  print(sum);
}

setup();
)js";

int main() {
  EngineConfig Base;
  Comparison C = compareConfigs(Source, Base);
  if (!C.Baseline.Ok || !C.ClassCache.Ok) {
    std::fprintf(stderr, "error: %s%s\n", C.Baseline.Error.c_str(),
                 C.ClassCache.Error.c_str());
    return 1;
  }

  std::printf("outputs match: %s\n", C.OutputsMatch ? "yes" : "NO");
  std::printf("checksum (one iteration): %s\n",
              C.Baseline.Output.substr(0, C.Baseline.Output.find('\n'))
                  .c_str());

  Table T({"metric", "baseline", "class cache"});
  const RunStats &B = C.Baseline.Steady;
  const RunStats &CC = C.ClassCache.Steady;
  T.addRow({"dynamic instructions", std::to_string(B.Instrs.total()),
            std::to_string(CC.Instrs.total())});
  T.addRow({"  checks", std::to_string(B.Instrs.PerCategory[0]),
            std::to_string(CC.Instrs.PerCategory[0])});
  T.addRow({"  tags/untags", std::to_string(B.Instrs.PerCategory[1]),
            std::to_string(CC.Instrs.PerCategory[1])});
  T.addRow({"cycles (whole app)", Table::fmt(B.CyclesTotal, 0),
            Table::fmt(CC.CyclesTotal, 0)});
  T.addRow({"cycles (optimized)", Table::fmt(B.CyclesOptimized, 0),
            Table::fmt(CC.CyclesOptimized, 0)});
  T.addRow({"energy (uJ, whole app)",
            Table::fmt(B.EnergyTotal.total() / 1e6, 2),
            Table::fmt(CC.EnergyTotal.total() / 1e6, 2)});
  T.addRow({"class cache hit rate", "-",
            Table::pct(CC.CcHitRate, 2)});
  std::printf("%s", T.render().c_str());

  // The speedup metrics are optional: absent (zero denominator) prints as
  // "n/a", never as 0%.
  auto Pct = [](const std::optional<double> &V) -> std::string {
    return V ? Table::fmt(*V, 1) + "%" : "n/a";
  };
  std::printf("speedup: %s whole app, %s optimized code\n",
              Pct(C.SpeedupWhole).c_str(), Pct(C.SpeedupOptimized).c_str());
  std::printf("energy reduction: %s whole app, %s optimized code\n",
              Pct(C.EnergyReductionWhole).c_str(),
              Pct(C.EnergyReductionOptimized).c_str());
  return 0;
}
