//===- examples/deopt_demo.cpp - Misspeculation and recovery --------------===//
///
/// Demonstrates the full life cycle of a Class Cache speculation
/// (section 4.2.2): profile -> optimize with checks removed -> a store
/// breaks the monomorphism -> hardware exception -> the runtime
/// deoptimizes the dependent function -> execution continues correctly and
/// the function is recompiled without the broken assumption.
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include <cstdio>

using namespace ccjs;

static const char Source[] = R"js(
function Particle(v) { this.v = v; }
var parts = [];
var i;
for (i = 0; i < 64; i++) parts[i] = new Particle(i);

function total() {
  var s = 0;
  var k;
  for (k = 0; k < 64; k++) s += parts[k].v;  // v profiled as SMI.
  return s;
}
function run() { print(total()); }
function breakIt() {
  parts[13].v = 0.5;  // The SMI slot receives a double: HW exception.
}
)js";

int main() {
  EngineConfig Cfg;
  Cfg.ClassCacheEnabled = true;
  Cfg.HotInvocationThreshold = 3;
  Engine E(Cfg);
  if (!E.load(Source) || !E.runTopLevel()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }

  std::printf("Phase 1: warm up; `total` is optimized with its Check SMI "
              "on parts[k].v elided.\n");
  for (int I = 0; I < 8; ++I)
    E.callGlobal("run");
  const FunctionInfo &Total = E.vm().Funcs[2];
  std::printf("  total: optimized=%s, exceptions so far=%llu\n",
              Total.OptValid ? "yes" : "no",
              static_cast<unsigned long long>(E.vm().CCache.exceptions()));

  std::printf("\nPhase 2: a store writes a HeapNumber into the profiled "
              "SMI slot.\n");
  E.callGlobal("breakIt");
  std::printf("  Class Cache exceptions=%llu, total still optimized=%s\n",
              static_cast<unsigned long long>(E.vm().CCache.exceptions()),
              Total.OptValid ? "yes" : "no");

  std::printf("\nPhase 3: execution continues correctly and `total` "
              "recompiles without\nthe broken assumption.\n");
  for (int I = 0; I < 6; ++I)
    E.callGlobal("run");
  if (E.halted()) {
    std::fprintf(stderr, "error: %s\n", E.lastError().c_str());
    return 1;
  }
  std::printf("  total: optimized again=%s\n",
              Total.OptValid ? "yes" : "no");

  std::printf("\nprint() trace (the sum gains 0.5-13=-12.5 after the "
              "mutation):\n%s",
              E.output().c_str());
  return 0;
}
