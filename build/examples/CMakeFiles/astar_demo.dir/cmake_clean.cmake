file(REMOVE_RECURSE
  "CMakeFiles/astar_demo.dir/astar_demo.cpp.o"
  "CMakeFiles/astar_demo.dir/astar_demo.cpp.o.d"
  "astar_demo"
  "astar_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astar_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
