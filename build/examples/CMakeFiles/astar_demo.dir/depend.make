# Empty dependencies file for astar_demo.
# This may be replaced when dependencies are built.
