file(REMOVE_RECURSE
  "CMakeFiles/graph_nodes.dir/graph_nodes.cpp.o"
  "CMakeFiles/graph_nodes.dir/graph_nodes.cpp.o.d"
  "graph_nodes"
  "graph_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
