# Empty dependencies file for graph_nodes.
# This may be replaced when dependencies are built.
