file(REMOVE_RECURSE
  "CMakeFiles/deopt_demo.dir/deopt_demo.cpp.o"
  "CMakeFiles/deopt_demo.dir/deopt_demo.cpp.o.d"
  "deopt_demo"
  "deopt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deopt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
