# Empty dependencies file for deopt_demo.
# This may be replaced when dependencies are built.
