file(REMOVE_RECURSE
  "CMakeFiles/fig3_monomorphic_loads.dir/fig3_monomorphic_loads.cpp.o"
  "CMakeFiles/fig3_monomorphic_loads.dir/fig3_monomorphic_loads.cpp.o.d"
  "fig3_monomorphic_loads"
  "fig3_monomorphic_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_monomorphic_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
