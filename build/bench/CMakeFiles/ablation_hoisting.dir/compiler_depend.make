# Empty compiler generated dependencies file for ablation_hoisting.
# This may be replaced when dependencies are built.
