# Empty dependencies file for table1_class_list.
# This may be replaced when dependencies are built.
