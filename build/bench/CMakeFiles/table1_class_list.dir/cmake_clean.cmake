file(REMOVE_RECURSE
  "CMakeFiles/table1_class_list.dir/table1_class_list.cpp.o"
  "CMakeFiles/table1_class_list.dir/table1_class_list.cpp.o.d"
  "table1_class_list"
  "table1_class_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_class_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
