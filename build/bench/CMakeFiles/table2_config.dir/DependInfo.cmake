
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_config.cpp" "bench/CMakeFiles/table2_config.dir/table2_config.cpp.o" "gcc" "bench/CMakeFiles/table2_config.dir/table2_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ccjs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ccjs_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/ccjs_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/ccjs_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ccjs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccjs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ccjs_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
