# Empty dependencies file for ablation_software_only.
# This may be replaced when dependencies are built.
