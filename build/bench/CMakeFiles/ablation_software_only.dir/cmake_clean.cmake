file(REMOVE_RECURSE
  "CMakeFiles/ablation_software_only.dir/ablation_software_only.cpp.o"
  "CMakeFiles/ablation_software_only.dir/ablation_software_only.cpp.o.d"
  "ablation_software_only"
  "ablation_software_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_software_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
