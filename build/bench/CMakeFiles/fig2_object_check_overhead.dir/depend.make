# Empty dependencies file for fig2_object_check_overhead.
# This may be replaced when dependencies are built.
