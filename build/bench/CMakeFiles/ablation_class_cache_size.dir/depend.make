# Empty dependencies file for ablation_class_cache_size.
# This may be replaced when dependencies are built.
