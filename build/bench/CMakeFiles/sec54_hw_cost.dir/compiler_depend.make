# Empty compiler generated dependencies file for sec54_hw_cost.
# This may be replaced when dependencies are built.
