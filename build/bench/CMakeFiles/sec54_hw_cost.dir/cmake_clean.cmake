file(REMOVE_RECURSE
  "CMakeFiles/sec54_hw_cost.dir/sec54_hw_cost.cpp.o"
  "CMakeFiles/sec54_hw_cost.dir/sec54_hw_cost.cpp.o.d"
  "sec54_hw_cost"
  "sec54_hw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_hw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
