file(REMOVE_RECURSE
  "CMakeFiles/sec53_overheads.dir/sec53_overheads.cpp.o"
  "CMakeFiles/sec53_overheads.dir/sec53_overheads.cpp.o.d"
  "sec53_overheads"
  "sec53_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
