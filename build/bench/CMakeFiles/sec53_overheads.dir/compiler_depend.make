# Empty compiler generated dependencies file for sec53_overheads.
# This may be replaced when dependencies are built.
