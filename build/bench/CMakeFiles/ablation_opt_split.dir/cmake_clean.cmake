file(REMOVE_RECURSE
  "CMakeFiles/ablation_opt_split.dir/ablation_opt_split.cpp.o"
  "CMakeFiles/ablation_opt_split.dir/ablation_opt_split.cpp.o.d"
  "ablation_opt_split"
  "ablation_opt_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_opt_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
