# Empty dependencies file for ablation_opt_split.
# This may be replaced when dependencies are built.
