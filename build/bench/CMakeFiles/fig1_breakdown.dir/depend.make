# Empty dependencies file for fig1_breakdown.
# This may be replaced when dependencies are built.
