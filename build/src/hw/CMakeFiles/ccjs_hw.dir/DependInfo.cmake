
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/ClassCache.cpp" "src/hw/CMakeFiles/ccjs_hw.dir/ClassCache.cpp.o" "gcc" "src/hw/CMakeFiles/ccjs_hw.dir/ClassCache.cpp.o.d"
  "/root/repo/src/hw/ClassList.cpp" "src/hw/CMakeFiles/ccjs_hw.dir/ClassList.cpp.o" "gcc" "src/hw/CMakeFiles/ccjs_hw.dir/ClassList.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccjs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccjs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ccjs_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
