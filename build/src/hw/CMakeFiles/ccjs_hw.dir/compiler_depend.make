# Empty compiler generated dependencies file for ccjs_hw.
# This may be replaced when dependencies are built.
