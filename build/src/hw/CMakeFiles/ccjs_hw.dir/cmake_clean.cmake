file(REMOVE_RECURSE
  "CMakeFiles/ccjs_hw.dir/ClassCache.cpp.o"
  "CMakeFiles/ccjs_hw.dir/ClassCache.cpp.o.d"
  "CMakeFiles/ccjs_hw.dir/ClassList.cpp.o"
  "CMakeFiles/ccjs_hw.dir/ClassList.cpp.o.d"
  "libccjs_hw.a"
  "libccjs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
