file(REMOVE_RECURSE
  "libccjs_hw.a"
)
