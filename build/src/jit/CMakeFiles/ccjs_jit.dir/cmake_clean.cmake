file(REMOVE_RECURSE
  "CMakeFiles/ccjs_jit.dir/Executor.cpp.o"
  "CMakeFiles/ccjs_jit.dir/Executor.cpp.o.d"
  "CMakeFiles/ccjs_jit.dir/IrBuilder.cpp.o"
  "CMakeFiles/ccjs_jit.dir/IrBuilder.cpp.o.d"
  "libccjs_jit.a"
  "libccjs_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
