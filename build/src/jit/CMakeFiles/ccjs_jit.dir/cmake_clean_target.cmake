file(REMOVE_RECURSE
  "libccjs_jit.a"
)
