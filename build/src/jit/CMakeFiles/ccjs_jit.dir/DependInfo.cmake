
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/Executor.cpp" "src/jit/CMakeFiles/ccjs_jit.dir/Executor.cpp.o" "gcc" "src/jit/CMakeFiles/ccjs_jit.dir/Executor.cpp.o.d"
  "/root/repo/src/jit/IrBuilder.cpp" "src/jit/CMakeFiles/ccjs_jit.dir/IrBuilder.cpp.o" "gcc" "src/jit/CMakeFiles/ccjs_jit.dir/IrBuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccjs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ccjs_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccjs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/ccjs_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ccjs_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
