# Empty compiler generated dependencies file for ccjs_jit.
# This may be replaced when dependencies are built.
