file(REMOVE_RECURSE
  "libccjs_bytecode.a"
)
