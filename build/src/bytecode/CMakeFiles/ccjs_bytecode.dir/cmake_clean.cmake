file(REMOVE_RECURSE
  "CMakeFiles/ccjs_bytecode.dir/Compiler.cpp.o"
  "CMakeFiles/ccjs_bytecode.dir/Compiler.cpp.o.d"
  "CMakeFiles/ccjs_bytecode.dir/Disassembler.cpp.o"
  "CMakeFiles/ccjs_bytecode.dir/Disassembler.cpp.o.d"
  "libccjs_bytecode.a"
  "libccjs_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
