# Empty dependencies file for ccjs_bytecode.
# This may be replaced when dependencies are built.
