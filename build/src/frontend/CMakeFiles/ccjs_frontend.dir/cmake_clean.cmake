file(REMOVE_RECURSE
  "CMakeFiles/ccjs_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/ccjs_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/ccjs_frontend.dir/Parser.cpp.o"
  "CMakeFiles/ccjs_frontend.dir/Parser.cpp.o.d"
  "libccjs_frontend.a"
  "libccjs_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
