file(REMOVE_RECURSE
  "libccjs_frontend.a"
)
