# Empty compiler generated dependencies file for ccjs_frontend.
# This may be replaced when dependencies are built.
