file(REMOVE_RECURSE
  "libccjs_support.a"
)
