file(REMOVE_RECURSE
  "CMakeFiles/ccjs_support.dir/StringInterner.cpp.o"
  "CMakeFiles/ccjs_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/ccjs_support.dir/Table.cpp.o"
  "CMakeFiles/ccjs_support.dir/Table.cpp.o.d"
  "libccjs_support.a"
  "libccjs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
