# Empty compiler generated dependencies file for ccjs_support.
# This may be replaced when dependencies are built.
