file(REMOVE_RECURSE
  "CMakeFiles/ccjs_interp.dir/Builtins.cpp.o"
  "CMakeFiles/ccjs_interp.dir/Builtins.cpp.o.d"
  "CMakeFiles/ccjs_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/ccjs_interp.dir/Interpreter.cpp.o.d"
  "libccjs_interp.a"
  "libccjs_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
