# Empty dependencies file for ccjs_interp.
# This may be replaced when dependencies are built.
