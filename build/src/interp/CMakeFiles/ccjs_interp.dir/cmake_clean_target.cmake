file(REMOVE_RECURSE
  "libccjs_interp.a"
)
