file(REMOVE_RECURSE
  "libccjs_core.a"
)
