# Empty compiler generated dependencies file for ccjs_core.
# This may be replaced when dependencies are built.
