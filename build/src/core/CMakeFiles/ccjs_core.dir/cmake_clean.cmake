file(REMOVE_RECURSE
  "CMakeFiles/ccjs_core.dir/Engine.cpp.o"
  "CMakeFiles/ccjs_core.dir/Engine.cpp.o.d"
  "CMakeFiles/ccjs_core.dir/Runner.cpp.o"
  "CMakeFiles/ccjs_core.dir/Runner.cpp.o.d"
  "libccjs_core.a"
  "libccjs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
