
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Heap.cpp" "src/runtime/CMakeFiles/ccjs_runtime.dir/Heap.cpp.o" "gcc" "src/runtime/CMakeFiles/ccjs_runtime.dir/Heap.cpp.o.d"
  "/root/repo/src/runtime/Operations.cpp" "src/runtime/CMakeFiles/ccjs_runtime.dir/Operations.cpp.o" "gcc" "src/runtime/CMakeFiles/ccjs_runtime.dir/Operations.cpp.o.d"
  "/root/repo/src/runtime/Shape.cpp" "src/runtime/CMakeFiles/ccjs_runtime.dir/Shape.cpp.o" "gcc" "src/runtime/CMakeFiles/ccjs_runtime.dir/Shape.cpp.o.d"
  "/root/repo/src/runtime/TypeProfiler.cpp" "src/runtime/CMakeFiles/ccjs_runtime.dir/TypeProfiler.cpp.o" "gcc" "src/runtime/CMakeFiles/ccjs_runtime.dir/TypeProfiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccjs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ccjs_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
