# Empty dependencies file for ccjs_runtime.
# This may be replaced when dependencies are built.
