file(REMOVE_RECURSE
  "CMakeFiles/ccjs_runtime.dir/Heap.cpp.o"
  "CMakeFiles/ccjs_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/ccjs_runtime.dir/Operations.cpp.o"
  "CMakeFiles/ccjs_runtime.dir/Operations.cpp.o.d"
  "CMakeFiles/ccjs_runtime.dir/Shape.cpp.o"
  "CMakeFiles/ccjs_runtime.dir/Shape.cpp.o.d"
  "CMakeFiles/ccjs_runtime.dir/TypeProfiler.cpp.o"
  "CMakeFiles/ccjs_runtime.dir/TypeProfiler.cpp.o.d"
  "libccjs_runtime.a"
  "libccjs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
