file(REMOVE_RECURSE
  "libccjs_runtime.a"
)
