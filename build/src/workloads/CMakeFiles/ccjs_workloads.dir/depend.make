# Empty dependencies file for ccjs_workloads.
# This may be replaced when dependencies are built.
