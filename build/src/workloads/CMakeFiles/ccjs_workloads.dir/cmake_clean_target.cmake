file(REMOVE_RECURSE
  "libccjs_workloads.a"
)
