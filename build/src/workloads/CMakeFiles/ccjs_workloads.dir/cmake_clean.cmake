file(REMOVE_RECURSE
  "CMakeFiles/ccjs_workloads.dir/KrakenSuite.cpp.o"
  "CMakeFiles/ccjs_workloads.dir/KrakenSuite.cpp.o.d"
  "CMakeFiles/ccjs_workloads.dir/OctaneSuite.cpp.o"
  "CMakeFiles/ccjs_workloads.dir/OctaneSuite.cpp.o.d"
  "CMakeFiles/ccjs_workloads.dir/SunSpiderSuite.cpp.o"
  "CMakeFiles/ccjs_workloads.dir/SunSpiderSuite.cpp.o.d"
  "CMakeFiles/ccjs_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/ccjs_workloads.dir/Workloads.cpp.o.d"
  "libccjs_workloads.a"
  "libccjs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
