# Empty dependencies file for ccjs.
# This may be replaced when dependencies are built.
