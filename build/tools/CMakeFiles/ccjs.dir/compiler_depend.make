# Empty compiler generated dependencies file for ccjs.
# This may be replaced when dependencies are built.
