file(REMOVE_RECURSE
  "CMakeFiles/ccjs.dir/ccjs.cpp.o"
  "CMakeFiles/ccjs.dir/ccjs.cpp.o.d"
  "ccjs"
  "ccjs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccjs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
