
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BytecodeTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/BytecodeTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/BytecodeTest.cpp.o.d"
  "/root/repo/tests/ClassCacheTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/ClassCacheTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/ClassCacheTest.cpp.o.d"
  "/root/repo/tests/DifferentialTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/DifferentialTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/DifferentialTest.cpp.o.d"
  "/root/repo/tests/EngineStatsTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/EngineStatsTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/EngineStatsTest.cpp.o.d"
  "/root/repo/tests/HwTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/HwTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/HwTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/JitTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/JitTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/JitTest.cpp.o.d"
  "/root/repo/tests/LayoutTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/LayoutTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/LayoutTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/OperationsTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/OperationsTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/OperationsTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/ShapeHeapTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/ShapeHeapTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/ShapeHeapTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/ValueTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/ValueTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/ValueTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/ccjs_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/ccjs_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ccjs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ccjs_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/ccjs_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/ccjs_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ccjs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccjs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ccjs_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
