# Empty compiler generated dependencies file for ccjs_tests.
# This may be replaced when dependencies are built.
