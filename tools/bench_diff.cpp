//===- tools/bench_diff.cpp - Benchmark report comparator ------------------===//
///
/// Diffs two machine-readable bench reports (the --json output of any bench
/// binary) and flags regressions beyond a tolerance. CI runs it as a perf
/// smoke gate against a committed baseline report:
///
///   bench_diff [--tolerance=PCT] [--verbose] [--ignore-metrics]
///              [--host-time=PCT] old.json new.json
///
/// Tolerance semantics (see core/BenchHarness.h): percentage points for
/// speedup / energy-reduction / hit-rate metrics, relative percent for
/// cycle / energy / instruction totals and for engine metrics counters.
/// Default 0.1. --ignore-metrics skips the report-level "metrics" section
/// (engine counters) entirely, e.g. when diffing a metrics-on run against
/// a baseline recorded without --metrics.
///
/// --host-time=PCT additionally compares the opt-in "host" sections
/// (reports produced with --host): a wall-clock slowdown beyond PCT
/// relative percent is flagged as a host-time regression. Host timings
/// are machine- and load-dependent, so the section is otherwise ignored
/// and CI runs this comparison informationally (non-blocking).
///
/// Exit codes: 0 = no regressions; 1 = regressions found (or the reports
/// are not comparable); 2 = usage or I/O error.
///
//===----------------------------------------------------------------------===//

#include "core/BenchHarness.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace ccjs;

static bool loadReport(const char *Path, json::Value &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_diff: cannot open '%s'\n", Path);
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  std::optional<json::Value> V = json::Value::parse(Buf.str(), &Err);
  if (!V) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", Path, Err.c_str());
    return false;
  }
  if (!validateReport(*V, &Err)) {
    std::fprintf(stderr, "bench_diff: %s: not a bench report: %s\n", Path,
                 Err.c_str());
    return false;
  }
  Out = std::move(*V);
  return true;
}

int main(int Argc, char **Argv) {
  double Tolerance = 0.1;
  double HostTimePct = -1; // < 0: host sections not compared.
  bool Verbose = false, IgnoreMetrics = false;
  const char *Paths[2] = {nullptr, nullptr};
  int NumPaths = 0;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!std::strncmp(A, "--tolerance=", 12)) {
      char *End = nullptr;
      Tolerance = std::strtod(A + 12, &End);
      if (!End || *End || Tolerance < 0) {
        std::fprintf(stderr, "bench_diff: invalid tolerance '%s'\n", A + 12);
        return 2;
      }
    } else if (!std::strncmp(A, "--host-time=", 12)) {
      char *End = nullptr;
      HostTimePct = std::strtod(A + 12, &End);
      if (!End || *End || HostTimePct < 0) {
        std::fprintf(stderr, "bench_diff: invalid --host-time '%s'\n", A + 12);
        return 2;
      }
    } else if (!std::strcmp(A, "--verbose")) {
      Verbose = true;
    } else if (!std::strcmp(A, "--ignore-metrics")) {
      IgnoreMetrics = true;
    } else if (A[0] == '-' && A[1] != '\0') {
      std::fprintf(stderr, "bench_diff: unknown option '%s'\n", A);
      return 2;
    } else if (NumPaths < 2) {
      Paths[NumPaths++] = A;
    } else {
      std::fprintf(stderr, "bench_diff: too many arguments\n");
      return 2;
    }
  }
  if (NumPaths != 2) {
    std::fprintf(stderr, "usage: bench_diff [--tolerance=PCT] [--verbose] "
                         "[--ignore-metrics] [--host-time=PCT] "
                         "old.json new.json\n");
    return 2;
  }

  json::Value Old, New;
  if (!loadReport(Paths[0], Old) || !loadReport(Paths[1], New))
    return 2;

  DiffResult R = diffReports(Old, New, Tolerance, IgnoreMetrics);
  if (!R.Comparable) {
    std::fprintf(stderr, "bench_diff: reports not comparable: %s\n",
                 R.Error.c_str());
    return 1;
  }

  for (const std::string &Note : R.Notes)
    std::printf("note: %s\n", Note.c_str());

  size_t Regressions = 0, Improvements = 0;
  Table T({"workload", "metric", "old", "new", "movement", "verdict"});
  for (const DiffEntry &E : R.Changes) {
    if (E.Regression)
      ++Regressions;
    else if (E.Delta > 0)
      ++Improvements;
    if (!Verbose && !E.Regression)
      continue;
    char Move[32];
    std::snprintf(Move, sizeof(Move), "%+.3f", E.Delta);
    T.addRow({E.Workload, E.Metric, json::formatNumber(E.OldValue),
              json::formatNumber(E.NewValue), Move,
              E.Regression ? "REGRESSION" : (E.Delta > 0 ? "improved"
                                                         : "within tol")});
  }
  if (Regressions || Verbose)
    std::printf("%s", T.render().c_str());
  std::printf("%zu metrics compared, %zu improved, %zu regressed "
              "(tolerance %.3g)\n",
              R.MetricsCompared, Improvements, Regressions, Tolerance);

  // Host-throughput comparison, only on request: wall-clock depends on the
  // machine and its load, so this never runs as part of the default diff.
  if (HostTimePct >= 0) {
    const json::Value *OldH = Old.findPath("host.wall_seconds");
    const json::Value *NewH = New.findPath("host.wall_seconds");
    if (!OldH || !NewH || !OldH->isNumber() || !NewH->isNumber()) {
      std::printf("host time: not compared (section missing from %s report)\n",
                  !OldH || !OldH->isNumber() ? "old" : "new");
    } else {
      double OldS = OldH->asNumber(), NewS = NewH->asNumber();
      double ChangePct = OldS > 0 ? (NewS / OldS - 1.0) * 100.0 : 0.0;
      bool Slower = ChangePct > HostTimePct;
      std::printf("host time: %.3fs -> %.3fs (%+.1f%%, budget +%.1f%%)%s\n",
                  OldS, NewS, ChangePct, HostTimePct,
                  Slower ? " HOST-TIME REGRESSION" : "");
      const json::Value *OldT =
          Old.findPath("host.sim_instructions_per_host_second");
      const json::Value *NewT =
          New.findPath("host.sim_instructions_per_host_second");
      if (OldT && NewT && OldT->isNumber() && NewT->isNumber())
        std::printf("host throughput: %.3g -> %.3g simulated instr/s "
                    "(%+.1f%%)\n",
                    OldT->asNumber(), NewT->asNumber(),
                    OldT->asNumber() > 0
                        ? (NewT->asNumber() / OldT->asNumber() - 1.0) * 100.0
                        : 0.0);
      if (Slower)
        ++Regressions;
    }
  }
  return Regressions ? 1 : 0;
}
