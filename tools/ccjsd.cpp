//===- tools/ccjsd.cpp - Engine-pool service daemon (batch driver) --------===//
///
/// Drives the EnginePool service mode against a synthetic multi-tenant
/// request mix — the soak/fault-drill surface used by CI and EXPERIMENTS.md:
///
///   ccjsd [options]
///     --requests=N       batch size (default 200)
///     --tenants=N        distinct tenants in the mix (default 4)
///     --engines=N        pool slots (default: tenants)
///     --jobs=N           worker threads for the execution stage (default 1;
///                        results are byte-identical for any value)
///     --chaos-seed=N     per-engine deterministic fault injection
///     --audit            run invariant audits on the pooled engines
///     --class-cache      enable the paper's mechanism on the engines
///     --check-removal=B  check-removal backend on the engines: none,
///                        classcache, bbv or both (replaces --class-cache)
///     --trace            arm per-engine TraceRecorder rings; the JSON
///                        summary gains a per-tenant "traces" section with
///                        the wrap-proof per-kind totals
///     --dispatch=M       switch | threaded | fused
///     --budget-instr=N   default per-request instruction budget
///     --budget-heap=N    default per-request heap-bytes budget
///     --budget-depth=N   default per-request call-depth budget
///     --queue-cap=N      admission capacity per batch (default: requests,
///                        i.e. nothing sheds; lower it to exercise shedding)
///     --degrade-at=N     queue depth where graceful degradation starts
///                        (default: queue-cap, i.e. no degradation)
///     --tenant-cap=N     per-tenant admission cap (default: queue-cap)
///     --retries=N        fault-attributed retry cap (default 2)
///     --with-errors      mix in programs with runtime errors (every 23rd
///                        request), exercising retry/quarantine paths
///     --warm-start       pre-train a standalone engine on each tenant's
///                        first program and hand the pool the resulting
///                        profile snapshot: every newly warmed replica
///                        restores it instead of paying the warmup tax
///     --batches=N        split the request mix into N sequential serve()
///                        calls (default 1); slots go batch-idle between
///                        calls, which is what lets recycling fire
///     --tenant-blocks=K  tenants arrive in blocks of K consecutive
///                        requests instead of round-robin, so later
///                        batches introduce new tenants while earlier
///                        ones idle — the slot-recycling drill (evicted
///                        tenants resume warm from parked snapshots)
///     --verify           re-run every completed request on a standalone
///                        budgets-off faults-off control engine and
///                        byte-compare outputs (tenant isolation + chaos
///                        transparency gate); also require that no
///                        invariant-audit failure escaped quarantine.
///                        Exits 1 on any violation.
///     --outputs=<path>   write per-request outputs ('-' = stdout),
///                        byte-stable across jobs counts
///     --json=<path>      write a JSON summary ('-' = stdout)
///     --metrics          print the pool metrics table
///     --quiet            suppress the per-request status lines
///
/// The request mix is generated deterministically from (tenant, index):
/// six program shapes covering smi/double kernels, shape polymorphism with
/// a mid-run transition break, array growth, recursion (call-depth budget
/// fodder), string building, and allocation pressure (heap budget fodder).
/// Every program prints tenant-tagged deterministic output, so any
/// cross-tenant contamination or transparency violation is a byte diff.
///
//===----------------------------------------------------------------------===//

#include "core/EnginePool.h"
#include "support/Json.h"
#include "vm/InvariantAuditor.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace ccjs;

/// Deterministic per-(tenant, request) program. \p Tag flows into every
/// print so outputs are attributable: "t<tenant> r<request> ...".
static std::string makeProgram(unsigned Tenant, unsigned Req, bool WithError) {
  std::string Tag = "t" + std::to_string(Tenant) + " r" + std::to_string(Req);
  // Hash the pair and select on the *high* bits: with round-robin tenant
  // arrival, any parity-preserving form (linear combinations, XOR of
  // low bits) hits only the even kinds.
  unsigned Kind = (((Req * 2654435761u) ^ (Tenant * 2246822519u)) >> 7) % 6;
  // Per-tenant parameter skew: sibling tenants run the same shapes with
  // different constants, so identical outputs across tenants are
  // impossible and any engine cross-talk shows up as a mismatch.
  unsigned P = 100 + Tenant * 17 + (Req % 5) * 3;
  std::string S;
  auto Num = [](unsigned N) { return std::to_string(N); };
  switch (Kind) {
  case 0: // Smi kernel: tiers up, CheckSmi elision in play.
    S = "function k(n) {\n"
        "  var a = 0; var i;\n"
        "  for (i = 0; i < n; i++) { a = (a + i * 7) % 100003; }\n"
        "  return a;\n"
        "}\n"
        "print(\"" + Tag + " smi=\" + k(" + Num(P * 4) + "));\n";
    break;
  case 1: // Shape polymorphism with a mid-run transition break.
    S = "function Pt(x, y) { this.x = x; this.y = y; }\n"
        "function sum(ps, n) {\n"
        "  var s = 0; var i;\n"
        "  for (i = 0; i < n; i++) { s = s + ps[i].x * 3 + ps[i].y; }\n"
        "  return s;\n"
        "}\n"
        "var ps = []; var i;\n"
        "for (i = 0; i < " + Num(32 + Tenant) + "; i++) {\n"
        "  ps[i] = new Pt(i, i * 2 + " + Num(Tenant) + ");\n"
        "}\n"
        "var a = 0;\n"
        "for (i = 0; i < " + Num(P) + "; i++) { a = a + sum(ps, " +
        Num(32 + Tenant) + "); }\n"
        "for (i = 0; i < " + Num(32 + Tenant) + "; i++) {\n"
        "  if (i % 3 == 0) { ps[i].tag = i; }\n"
        "}\n"
        "print(\"" + Tag + " poly=\" + (a + sum(ps, " + Num(32 + Tenant) +
        ")));\n";
    break;
  case 2: // Array growth and element traffic.
    S = "function fill(n) {\n"
        "  var a = []; var i;\n"
        "  for (i = 0; i < n; i++) { a[i] = i * 2 + 1; }\n"
        "  return a;\n"
        "}\n"
        "function total(a, n) {\n"
        "  var s = 0; var i;\n"
        "  for (i = 0; i < n; i++) { s = s + a[i]; }\n"
        "  return s;\n"
        "}\n"
        "var a = fill(" + Num(P) + ");\n"
        "var s = 0; var i;\n"
        "for (i = 0; i < 40; i++) { s = s + total(a, " + Num(P) + "); }\n"
        "print(\"" + Tag + " arr=\" + s);\n";
    break;
  case 3: // Recursion: call-depth budget fodder.
    S = "function down(n, acc) {\n"
        "  if (n <= 0) { return acc; }\n"
        "  return down(n - 1, acc + n);\n"
        "}\n"
        "print(\"" + Tag + " rec=\" + down(" + Num(40 + Tenant * 5) +
        ", 0));\n";
    break;
  case 4: // String building.
    S = "function describe(k) {\n"
        "  var s = \"\"; var i;\n"
        "  for (i = 0; i < k; i++) { s = s + \"x\" + i; }\n"
        "  return s;\n"
        "}\n"
        "print(\"" + Tag + " str=\" + describe(" + Num(8 + Tenant) + "));\n";
    break;
  default: // Allocation pressure: heap budget fodder.
    S = "function Box(v) { this.v = v; }\n"
        "function churn(n) {\n"
        "  var s = 0; var i;\n"
        "  for (i = 0; i < n; i++) { s = s + new Box(i).v; }\n"
        "  return s;\n"
        "}\n"
        "print(\"" + Tag + " alloc=\" + churn(" + Num(P * 2) + "));\n";
    break;
  }
  if (WithError)
    S += "var broken = {}; broken.boom();\n";
  return S;
}

static bool writeText(const std::string &Path, const std::string &Text,
                      const char *What) {
  if (Path == "-") {
    std::printf("%s", Text.c_str());
    return true;
  }
  std::ofstream Out(Path);
  if (!Out || !(Out << Text)) {
    std::fprintf(stderr, "ccjsd: cannot write %s to '%s'\n", What,
                 Path.c_str());
    return false;
  }
  return true;
}

int main(int Argc, char **Argv) {
  unsigned Requests = 200, Tenants = 4, Engines = 0, Jobs = 1, Retries = 2;
  unsigned QueueCap = 0, DegradeAt = 0, TenantCap = 0;
  unsigned Batches = 1, TenantBlocks = 0;
  bool WarmStart = false;
  uint64_t ChaosSeed = 0;
  bool Chaos = false, Audit = false, ClassCache = false, WithErrors = false;
  bool Verify = false, Metrics = false, Quiet = false, Trace = false;
  CheckRemovalBackend CheckRemoval = CheckRemovalBackend::ClassCache;
  bool CheckRemovalSet = false;
  BudgetConfig Budget;
  DispatchMode Dispatch = DispatchMode::Switch;
  std::string OutputsPath, JsonPath;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto num = [&](size_t Prefix) {
      return std::strtoull(A + Prefix, nullptr, 10);
    };
    if (!std::strncmp(A, "--requests=", 11)) {
      Requests = static_cast<unsigned>(num(11));
    } else if (!std::strncmp(A, "--tenants=", 10)) {
      Tenants = static_cast<unsigned>(num(10));
    } else if (!std::strncmp(A, "--engines=", 10)) {
      Engines = static_cast<unsigned>(num(10));
    } else if (!std::strncmp(A, "--jobs=", 7)) {
      Jobs = static_cast<unsigned>(num(7));
    } else if (!std::strncmp(A, "--chaos-seed=", 13)) {
      Chaos = true;
      ChaosSeed = num(13);
    } else if (!std::strcmp(A, "--audit")) {
      Audit = true;
    } else if (!std::strcmp(A, "--class-cache")) {
      ClassCache = true;
    } else if (!std::strncmp(A, "--check-removal=", 16)) {
      if (!checkRemovalBackendFromName(A + 16, CheckRemoval)) {
        std::fprintf(stderr,
                     "ccjsd: --check-removal must be 'none', 'classcache', "
                     "'bbv' or 'both', got '%s'\n",
                     A + 16);
        return 2;
      }
      CheckRemovalSet = true;
    } else if (!std::strcmp(A, "--trace")) {
      Trace = true;
    } else if (!std::strncmp(A, "--dispatch=", 11)) {
      if (!dispatchModeFromName(A + 11, Dispatch)) {
        std::fprintf(stderr, "ccjsd: unknown dispatch mode '%s'\n", A + 11);
        return 2;
      }
    } else if (!std::strncmp(A, "--budget-instr=", 15)) {
      Budget.MaxInstructions = num(15);
    } else if (!std::strncmp(A, "--budget-heap=", 14)) {
      Budget.MaxHeapBytes = num(14);
    } else if (!std::strncmp(A, "--budget-depth=", 15)) {
      Budget.MaxCallDepth = static_cast<uint32_t>(num(15));
    } else if (!std::strncmp(A, "--queue-cap=", 12)) {
      QueueCap = static_cast<unsigned>(num(12));
    } else if (!std::strncmp(A, "--degrade-at=", 13)) {
      DegradeAt = static_cast<unsigned>(num(13));
    } else if (!std::strncmp(A, "--tenant-cap=", 13)) {
      TenantCap = static_cast<unsigned>(num(13));
    } else if (!std::strncmp(A, "--retries=", 10)) {
      Retries = static_cast<unsigned>(num(10));
    } else if (!std::strcmp(A, "--warm-start")) {
      WarmStart = true;
    } else if (!std::strncmp(A, "--batches=", 10)) {
      Batches = static_cast<unsigned>(num(10));
    } else if (!std::strncmp(A, "--tenant-blocks=", 16)) {
      TenantBlocks = static_cast<unsigned>(num(16));
    } else if (!std::strcmp(A, "--with-errors")) {
      WithErrors = true;
    } else if (!std::strcmp(A, "--verify")) {
      Verify = true;
    } else if (!std::strncmp(A, "--outputs=", 10)) {
      OutputsPath = A + 10;
    } else if (!std::strncmp(A, "--json=", 7)) {
      JsonPath = A + 7;
    } else if (!std::strcmp(A, "--metrics")) {
      Metrics = true;
    } else if (!std::strcmp(A, "--quiet")) {
      Quiet = true;
    } else {
      std::fprintf(stderr, "ccjsd: unknown option '%s'\n", A);
      return 2;
    }
  }
  if (Tenants == 0 || Requests == 0) {
    std::fprintf(stderr, "ccjsd: --tenants and --requests must be >= 1\n");
    return 2;
  }
  if (Batches == 0) {
    std::fprintf(stderr, "ccjsd: --batches must be >= 1\n");
    return 2;
  }
  if (CheckRemovalSet && ClassCache) {
    std::fprintf(stderr,
                 "ccjsd: --check-removal cannot be combined with the "
                 "deprecated --class-cache flag\n");
    return 2;
  }
  if (Engines == 0)
    Engines = Tenants;
  if (QueueCap == 0)
    QueueCap = Requests;
  if (DegradeAt == 0)
    DegradeAt = QueueCap;
  if (TenantCap == 0)
    TenantCap = QueueCap;

  Engine::Options Base;
  if (ClassCache)
    Base.withClassCache();
  if (CheckRemovalSet)
    Base.withCheckRemoval(CheckRemoval);
  if (Trace)
    Base.withTrace();
  Base.withDispatch(Dispatch);
  if (Audit)
    Base.withAudit();
  std::string OptErr;
  if (!Base.validate(&OptErr)) {
    std::fprintf(stderr, "ccjsd: invalid configuration: %s\n", OptErr.c_str());
    return 2;
  }

  PoolConfig PC;
  PC.Engines = Engines;
  PC.QueueCapacity = QueueCap;
  PC.DegradeThreshold = DegradeAt;
  PC.MaxQueuedPerTenant = TenantCap;
  PC.MaxRetries = Retries;
  PC.Base = Base.build();
  PC.Base.Budget = Budget; // Default per-request budget.
  PC.Chaos = Chaos;
  PC.ChaosSeed = ChaosSeed;

  // Round-robin tenant arrival (or block arrival with --tenant-blocks);
  // every 23rd request (when enabled) carries a runtime error so the
  // retry/quarantine paths get real traffic.
  auto TenantOf = [&](unsigned I) {
    return TenantBlocks ? (I / TenantBlocks) % Tenants : I % Tenants;
  };
  std::vector<ServiceRequest> Reqs(Requests);
  for (unsigned I = 0; I < Requests; ++I) {
    unsigned T = TenantOf(I);
    Reqs[I].Tenant = "tenant" + std::to_string(T);
    Reqs[I].Source =
        makeProgram(T, I, WithErrors && I % 23 == 22);
  }

  if (WarmStart) {
    // Pre-train a standalone engine on each tenant's first program in the
    // mix and hand the pool the warmed profile as a shared snapshot.
    // Faults and budgets are cleared on the trainer — neither is part of
    // the snapshot config fingerprint, and training must not trip either.
    EngineConfig TC = PC.Base;
    TC.Faults = FaultConfig();
    TC.Budget = BudgetConfig();
    TC.ProfilePersistence = true;
    Engine Trainer(TC);
    for (unsigned T = 0; T < Tenants; ++T) {
      unsigned First = Requests;
      for (unsigned I = 0; I < Requests; ++I)
        if (TenantOf(I) == T) {
          First = I;
          break;
        }
      if (First == Requests)
        continue; // Tenant never appears in this mix.
      if (!Trainer.load(makeProgram(T, First, false)) ||
          !Trainer.runTopLevel()) {
        std::fprintf(stderr, "ccjsd: warm-start training failed (t%u): %s\n",
                     T, Trainer.lastError().c_str());
        return 1;
      }
    }
    PC.WarmStartSnapshot = std::make_shared<const std::vector<uint8_t>>(
        Trainer.snapshotProfile());
    std::fprintf(stderr, "ccjsd: warm-start snapshot: %zu bytes\n",
                 PC.WarmStartSnapshot->size());
  }

  EnginePool Pool(PC);
  std::vector<ServiceResult> Results;
  Results.reserve(Requests);
  unsigned PerBatch = (Requests + Batches - 1) / Batches;
  for (unsigned B = 0; B < Batches; ++B) {
    unsigned Lo = B * PerBatch;
    unsigned Hi = Lo + PerBatch < Requests ? Lo + PerBatch : Requests;
    if (Lo >= Hi)
      break;
    std::vector<ServiceRequest> Chunk(Reqs.begin() + Lo, Reqs.begin() + Hi);
    std::vector<ServiceResult> Part = Pool.serve(Chunk, Jobs);
    Results.insert(Results.end(), Part.begin(), Part.end());
  }

  unsigned Ok = 0, Err = 0, Budgeted = 0, Shed = 0, Degraded = 0, Retried = 0;
  for (size_t I = 0; I < Results.size(); ++I) {
    const ServiceResult &R = Results[I];
    switch (R.Status) {
    case RequestStatus::Ok:
      ++Ok;
      break;
    case RequestStatus::Error:
      ++Err;
      break;
    case RequestStatus::BudgetExceeded:
      ++Budgeted;
      break;
    default:
      ++Shed;
      break;
    }
    if (R.Degraded)
      ++Degraded;
    if (R.Attempts > 1)
      ++Retried;
    if (!Quiet)
      std::fprintf(stderr, "ccjsd: r%zu %s %s slot=%d attempts=%u%s%s%s\n", I,
                   Reqs[I].Tenant.c_str(), requestStatusName(R.Status),
                   R.Slot, R.Attempts, R.Degraded ? " degraded" : "",
                   R.Quarantined ? " quarantined" : "",
                   R.Error.empty() ? "" : (": " + R.Error).c_str());
  }

  uint64_t WarmStarts = 0, WarmRejected = 0, Recycles = 0;
  for (const auto &[Name, V] : Pool.metrics().counters()) {
    if (Name == "host.pool.warm_starts")
      WarmStarts = V;
    else if (Name == "host.pool.warm_start_rejected")
      WarmRejected = V;
    else if (Name == "host.pool.recycles")
      Recycles = V;
  }
  std::fprintf(stderr,
               "ccjsd: %u requests: %u ok, %u error, %u budget-exceeded, "
               "%u shed; %u degraded, %u retried, %zu quarantines, "
               "%u engines warmed, %llu warm starts (%llu rejected), "
               "%llu recycles\n",
               Requests, Ok, Err, Budgeted, Shed, Degraded, Retried,
               Pool.quarantineLog().size(), Pool.enginesWarmed(),
               (unsigned long long)WarmStarts, (unsigned long long)WarmRejected,
               (unsigned long long)Recycles);
  for (const QuarantineRecord &Q : Pool.quarantineLog())
    std::fprintf(stderr, "ccjsd: quarantine slot=%u gen=%u %s req=%zu %s\n",
                 Q.Slot, Q.Generation, Q.Tenant.c_str(), Q.RequestIndex,
                 Q.Reason.c_str());

  if (!OutputsPath.empty()) {
    std::string Text;
    for (size_t I = 0; I < Results.size(); ++I) {
      Text += "=== request " + std::to_string(I) + " " + Reqs[I].Tenant +
              " " + requestStatusName(Results[I].Status) + "\n";
      Text += Results[I].Output;
    }
    if (!writeText(OutputsPath, Text, "outputs"))
      return 1;
  }

  int Rc = 0;
  if (Verify) {
    // Control: the same programs on fresh standalone engines with faults
    // and budgets off. Tenant isolation, chaos transparency and graceful
    // degradation all promise byte-identical output; any diff fails.
    unsigned Mismatches = 0, Compared = 0;
    EngineConfig Control = PC.Base;
    Control.Faults = FaultConfig();
    Control.Budget = BudgetConfig();
    for (size_t I = 0; I < Results.size(); ++I) {
      const ServiceResult &R = Results[I];
      if (R.Status != RequestStatus::Ok && R.Status != RequestStatus::Error)
        continue; // Sheds ran nothing; budget stops are legitimately partial.
      Engine Ref(Control);
      bool RefOk = Ref.load(Reqs[I].Source) && Ref.runTopLevel();
      (void)RefOk;
      ++Compared;
      if (Ref.output() != R.Output) {
        ++Mismatches;
        std::fprintf(stderr,
                     "ccjsd: VERIFY MISMATCH r%zu %s: pooled output "
                     "differs from control\n",
                     I, Reqs[I].Tenant.c_str());
      }
    }
    // No invariant-audit failure may escape quarantine: every engine still
    // in rotation must be clean (tripped ones were replaced), and every
    // audit-reasoned record must carry its failures.
    unsigned Escaped = 0;
    for (unsigned T = 0; T < Tenants; ++T) {
      Engine *E = Pool.tenantEngine("tenant" + std::to_string(T));
      if (E && E->auditor() && E->auditor()->failureCount() > 0)
        ++Escaped;
    }
    for (const QuarantineRecord &Q : Pool.quarantineLog())
      if (Q.Reason == "invariant-audit" && Q.AuditFailures.empty())
        ++Escaped;
    std::fprintf(stderr,
                 "ccjsd: verify: %u compared, %u mismatches, %u escaped "
                 "audit failures\n",
                 Compared, Mismatches, Escaped);
    if (Mismatches || Escaped)
      Rc = 1;
  }

  if (Metrics)
    std::printf("%s", Pool.metrics().render(/*IncludeHost=*/true).c_str());

  if (!JsonPath.empty()) {
    json::Value J = json::Value::object();
    J.set("requests", Requests);
    J.set("tenants", Tenants);
    J.set("engines", Engines);
    J.set("jobs", Jobs);
    J.set("chaos", Chaos);
    J.set("ok", Ok);
    J.set("error", Err);
    J.set("budget_exceeded", Budgeted);
    J.set("shed", Shed);
    J.set("degraded", Degraded);
    J.set("retried", Retried);
    J.set("quarantines", (unsigned long long)Pool.quarantineLog().size());
    J.set("engines_warmed", Pool.enginesWarmed());
    J.set("batches", Batches);
    J.set("tenant_blocks", TenantBlocks);
    J.set("warm_start", WarmStart);
    J.set("warm_starts", (unsigned long long)WarmStarts);
    J.set("warm_start_rejected", (unsigned long long)WarmRejected);
    J.set("recycles", (unsigned long long)Recycles);
    json::Value QL = json::Value::array();
    for (const QuarantineRecord &Q : Pool.quarantineLog()) {
      json::Value E = json::Value::object();
      E.set("slot", Q.Slot);
      E.set("generation", Q.Generation);
      E.set("tenant", Q.Tenant);
      E.set("request", (unsigned long long)Q.RequestIndex);
      E.set("reason", Q.Reason);
      QL.push(std::move(E));
    }
    J.set("quarantine_log", std::move(QL));
    if (Trace) {
      // Per-tenant trace aggregation (slot order, wrap-proof totals).
      // Keyed off the flag, not off non-empty summaries, so the section's
      // presence is configuration-determined and the report is diffable.
      json::Value TR = json::Value::array();
      for (const TenantTraceSummary &S : Pool.traceSummaries()) {
        json::Value E = json::Value::object();
        E.set("tenant", S.Tenant);
        E.set("slot", S.Slot);
        E.set("generation", S.Generation);
        E.set("accepted", (unsigned long long)S.Accepted);
        E.set("dropped", (unsigned long long)S.Dropped);
        json::Value K = json::Value::object();
        for (unsigned KI = 0; KI < NumTraceEventKinds; ++KI)
          K.set(TraceRecorder::kindName(static_cast<TraceEventKind>(KI)),
                (unsigned long long)S.Totals[KI]);
        E.set("totals", std::move(K));
        TR.push(std::move(E));
      }
      J.set("traces", std::move(TR));
    }
    if (!writeText(JsonPath, J.dump(2) + "\n", "json"))
      return 1;
  }

  return Rc;
}
