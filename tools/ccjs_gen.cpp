//===- tools/ccjs_gen.cpp - Generator corpus / oracle / minimizer CLI -----===//
///
/// ccjs-gen drives the seeded MiniJS program generator and the cross-tier
/// differential oracle from the command line:
///
///   ccjs-gen --seed=N            run the oracle on the program for seed N
///   ccjs-gen --seeds=LO..HI      sweep a seed range (the corpus job)
///   ccjs-gen --seed=N --dump     print the generated program and exit
///   ccjs-gen --seed=N --minimize on divergence, greedily shrink the
///                                program to a minimal reproducer
///
/// Knob overrides (--poly/--depth/--churn/--fanout/--fns/--iters/
/// --repeats/--edge) pin individual GenConfig fields instead of deriving
/// them from the seed. --chaos-seeds=K sets the fault-injection sweep
/// width (default 3, 0 disables); --no-dispatch skips the switch vs
/// computed-goto byte comparison; --no-fused skips the switch vs
/// superinstruction-fused byte comparison; --no-bbv skips the
/// lazy-basic-block-versioning legs (bbv, cc+bbv, bbv dispatch images);
/// --no-snapshot skips the warm-start round-trip legs (snapshot restore
/// vs continuous-engine byte comparison).
///
/// Exit code: 0 all seeds clean, 1 at least one divergence or generator
/// failure, 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "gen/DiffOracle.h"
#include "gen/ProgramGen.h"
#include "gen/Reducer.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

using namespace ccjs::gen;

namespace {

struct CliOptions {
  uint64_t SeedLo = 1, SeedHi = 1;
  bool Dump = false;
  bool Minimize = false;
  OracleOptions Oracle;
  // Knob pins: applied on top of GenConfig::fromSeed.
  std::optional<unsigned> Poly, Depth, Churn, FanOut, Fns, Iters, Repeats,
      Edge;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: ccjs-gen (--seed=N | --seeds=LO..HI) [--dump] [--minimize]\n"
      "                [--chaos-seeds=K] [--no-dispatch] [--no-fused] "
      "[--no-bbv]\n"
      "                [--no-snapshot]\n"
      "                [--poly=N] [--depth=N] [--churn=PCT] [--fanout=N]\n"
      "                [--fns=N] [--iters=N] [--repeats=N] [--edge=PCT]\n");
  return 2;
}

/// Parses "--name=value"; returns the value on a name match.
std::optional<std::string> matchArg(const std::string &Arg,
                                    const char *Name) {
  std::string Prefix = std::string(Name) + "=";
  if (Arg.rfind(Prefix, 0) == 0)
    return Arg.substr(Prefix.size());
  return std::nullopt;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 10);
  return End && *End == '\0';
}

bool parseArgs(int Argc, char **Argv, CliOptions &Cli) {
  bool HaveSeed = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (auto V = matchArg(Arg, "--seed")) {
      if (!parseU64(*V, Cli.SeedLo))
        return false;
      Cli.SeedHi = Cli.SeedLo;
      HaveSeed = true;
    } else if (auto V = matchArg(Arg, "--seeds")) {
      size_t Dots = V->find("..");
      if (Dots == std::string::npos)
        return false;
      if (!parseU64(V->substr(0, Dots), Cli.SeedLo) ||
          !parseU64(V->substr(Dots + 2), Cli.SeedHi) ||
          Cli.SeedHi < Cli.SeedLo)
        return false;
      HaveSeed = true;
    } else if (Arg == "--dump") {
      Cli.Dump = true;
    } else if (Arg == "--minimize") {
      Cli.Minimize = true;
    } else if (Arg == "--no-dispatch") {
      Cli.Oracle.CheckDispatch = false;
    } else if (Arg == "--no-fused") {
      Cli.Oracle.CheckFused = false;
    } else if (Arg == "--no-bbv") {
      Cli.Oracle.CheckBbv = false;
    } else if (Arg == "--no-snapshot") {
      Cli.Oracle.CheckSnapshot = false;
    } else if (auto V = matchArg(Arg, "--chaos-seeds")) {
      uint64_t K;
      if (!parseU64(*V, K))
        return false;
      Cli.Oracle.ChaosSeeds = static_cast<unsigned>(K);
    } else {
      bool Matched = false;
      struct Pin {
        const char *Name;
        std::optional<unsigned> &Slot;
      } Pins[] = {{"--poly", Cli.Poly},       {"--depth", Cli.Depth},
                  {"--churn", Cli.Churn},     {"--fanout", Cli.FanOut},
                  {"--fns", Cli.Fns},         {"--iters", Cli.Iters},
                  {"--repeats", Cli.Repeats}, {"--edge", Cli.Edge}};
      for (Pin &P : Pins) {
        if (auto V = matchArg(Arg, P.Name)) {
          uint64_t N;
          if (!parseU64(*V, N))
            return false;
          P.Slot = static_cast<unsigned>(N);
          Matched = true;
          break;
        }
      }
      if (!Matched)
        return false;
    }
  }
  return HaveSeed;
}

GenConfig configFor(const CliOptions &Cli, uint64_t Seed) {
  GenConfig C = GenConfig::fromSeed(Seed);
  if (Cli.Poly)
    C.PolymorphismDegree = *Cli.Poly;
  if (Cli.Depth)
    C.ShapeTransitionDepth = *Cli.Depth;
  if (Cli.Churn)
    C.ElementsKindChurn = *Cli.Churn;
  if (Cli.FanOut)
    C.CallGraphFanOut = *Cli.FanOut;
  if (Cli.Fns)
    C.NumFunctions = *Cli.Fns;
  if (Cli.Iters)
    C.LoopIterations = *Cli.Iters;
  if (Cli.Repeats)
    C.TopLevelRepeats = *Cli.Repeats;
  if (Cli.Edge)
    C.EdgeCaseRate = *Cli.Edge;
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli))
    return usage();

  unsigned Failures = 0;
  for (uint64_t Seed = Cli.SeedLo; Seed <= Cli.SeedHi; ++Seed) {
    std::string Source = generateProgram(configFor(Cli, Seed));
    if (Cli.Dump) {
      std::fputs(Source.c_str(), stdout);
      continue;
    }
    OracleResult R = runOracle(Source, Cli.Oracle);
    if (R.Ok) {
      std::fprintf(stderr, "seed %llu: ok\n",
                   static_cast<unsigned long long>(Seed));
      continue;
    }
    ++Failures;
    std::fprintf(stderr, "seed %llu: %s\n%s",
                 static_cast<unsigned long long>(Seed),
                 R.LoadFailed ? "GENERATOR FAILURE" : "DIVERGENCE",
                 R.Report.c_str());
    if (Cli.Minimize && !R.LoadFailed) {
      ReduceStats Stats;
      std::string Minimal = reduceProgram(
          Source,
          [&](const std::string &Candidate) {
            OracleResult C = runOracle(Candidate, Cli.Oracle);
            return !C.Ok && !C.LoadFailed;
          },
          &Stats);
      std::fprintf(stderr,
                   "minimized %u -> %u lines (%u oracle runs):\n",
                   Stats.LinesBefore, Stats.LinesAfter,
                   Stats.PredicateCalls);
      std::fputs(Minimal.c_str(), stdout);
    }
  }
  if (Failures)
    std::fprintf(stderr, "%u seed(s) diverged\n", Failures);
  return Failures ? 1 : 0;
}
