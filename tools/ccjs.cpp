//===- tools/ccjs.cpp - Command-line driver --------------------------------===//
///
/// Runs a MiniJS file under the simulated engine:
///
///   ccjs [options] file.js
///     --check-removal=B    select the check-removal backend: none,
///                          classcache (the paper's mechanism), bbv (lazy
///                          basic-block versioning) or both
///     --class-cache        deprecated alias for --check-removal=classcache
///     --software-only      model the software-only Class Cache (§5.4)
///     --opt-passes=S       enable optimizer pipeline passes: 'all', 'none'
///                          or a comma list of pass names (rge,checkmotion)
///     --bbv-max-versions=N lazy-BBV per-block version cap (default 4)
///     --ir-dump            print pass-by-pass OptIR to stderr at compile
///                          time (requires a compiling tier, i.e. not
///                          --no-opt)
///     --no-opt             baseline tier only (never optimize)
///     --iterations=N       call run() N times after the top level
///     --stats              print the measurement report
///     --compare            run baseline vs class cache and report speedups
///     --json=<path>        write the measurement report / comparison as a
///                          schema-versioned JSON report ('-' = stdout)
///     --disassemble        dump bytecode instead of executing
///     --chaos-seed=N       enable deterministic fault injection (seed N)
///     --chaos-only=a,b     restrict injection to the named fault points
///     --audit              run invariant audits; exit 1 on any failure
///     --trip-log=<path>    write the replayable fault trip log ('-' = stdout)
///     --trace=<path>       record engine trace events and write them as
///                          Chrome trace-event JSON ('-' = stdout)
///     --trace-events=a,b   restrict the trace to the named event kinds
///                          ("all" = everything, including cc-hit)
///     --metrics            collect named counters/histograms; print them
///                          and embed them in the --json report
///     --dispatch=M         host-side executor dispatch strategy (switch,
///                          threaded or fused); simulated results are
///                          byte-identical across modes
///     --fused-mask=M       fusion-pattern ablation bitmask (requires
///                          --dispatch=fused)
///     --op-hist            record the dynamic opcode-adjacency histogram
///                          and print the hottest pairs (the fusion
///                          candidate-mining tool, EXPERIMENTS.md)
///     --serve              run the file as service requests through a
///                          one-engine pool (the ccjsd machinery): one
///                          request per iteration (at least one), with
///                          budgets, quarantine and pool metrics active
///     --budget-instr=N     per-request simulated-instruction budget
///     --budget-heap=N      per-request simulated-heap-bytes budget
///     --budget-depth=N     per-request call-depth budget
///     --snapshot-save=F    after the run, serialize the warmed profile
///                          state (shapes, type feedback, hotness, BBV
///                          seeds) to F; implies profile persistence
///     --snapshot-load=F    restore a profile snapshot before loading the
///                          program, skipping the warmup tax; a rejected
///                          snapshot (corruption, config mismatch) is a
///                          hard error, never a silent cold start
///
/// Config assembly goes through the validated Engine::Options builder; an
/// inconsistent flag combination exits 2 with a diagnostic before any
/// benchmark work happens.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Compiler.h"
#include "core/BenchHarness.h"
#include "core/EnginePool.h"
#include "core/Runner.h"
#include "frontend/Parser.h"
#include "jit/FusionPass.h"
#include "jit/passes/PassManager.h"
#include "support/FaultInjector.h"
#include "support/Table.h"
#include "vm/InvariantAuditor.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <vector>

using namespace ccjs;

static void printStats(const RunStats &S) {
  Table T({"metric", "value"});
  T.addRow({"dynamic instructions", std::to_string(S.Instrs.total())});
  for (unsigned C = 0; C < NumInstrCategories; ++C)
    T.addRow({std::string("  ") +
                  instrCategoryName(static_cast<InstrCategory>(C)),
              std::to_string(S.Instrs.PerCategory[C]) + "  (" +
                  Table::pct(S.categoryShare(static_cast<InstrCategory>(C))) +
                  ")"});
  T.addRow({"cycles (total)", Table::fmt(S.CyclesTotal, 0)});
  T.addRow({"cycles (optimized code)", Table::fmt(S.CyclesOptimized, 0)});
  T.addRow({"energy (uJ)", Table::fmt(S.EnergyTotal.total() / 1e6, 3)});
  T.addRow({"DL1 hit rate", Table::pct(S.Dl1HitRate, 2)});
  T.addRow({"L2 hit rate", Table::pct(S.L2HitRate, 2)});
  T.addRow({"DTLB hit rate", Table::pct(S.DtlbHitRate, 3)});
  T.addRow({"hidden classes", std::to_string(S.NumHiddenClasses)});
  T.addRow({"optimizing compiles", std::to_string(S.OptCompiles)});
  T.addRow({"deoptimizations", std::to_string(S.Deopts)});
  if (S.CcAccesses) {
    T.addRow({"Class Cache accesses", std::to_string(S.CcAccesses)});
    T.addRow({"Class Cache hit rate", Table::pct(S.CcHitRate, 3)});
    T.addRow({"Class Cache exceptions", std::to_string(S.CcExceptions)});
  }
  std::printf("%s", T.render().c_str());
}

/// Writes \p Report to \p JsonPath when requested; returns false on I/O
/// failure.
static bool writeReport(const BenchReport &Report,
                        const std::string &JsonPath) {
  if (JsonPath.empty())
    return true;
  std::string Err;
  if (!Report.write(JsonPath, &Err)) {
    std::fprintf(stderr, "ccjs: %s\n", Err.c_str());
    return false;
  }
  return true;
}

/// Parses "a,b,c" into fault-point schedule overrides: every listed point
/// keeps its derived schedule, every other point is disabled. Returns false
/// on an unknown name.
static bool applyChaosOnly(Engine::Options &Opts, const char *List) {
  int32_t Schedule[NumFaultPoints];
  for (unsigned P = 0; P < NumFaultPoints; ++P)
    Schedule[P] = -1;
  std::string Name;
  for (const char *C = List;; ++C) {
    if (*C && *C != ',') {
      Name += *C;
      continue;
    }
    FaultPoint Point;
    if (!FaultInjector::pointFromName(Name, Point)) {
      std::fprintf(stderr, "ccjs: unknown fault point '%s' (have:", Name.c_str());
      for (unsigned P = 0; P < NumFaultPoints; ++P)
        std::fprintf(stderr, " %s",
                     FaultInjector::pointName(static_cast<FaultPoint>(P)));
      std::fprintf(stderr, ")\n");
      return false;
    }
    Schedule[static_cast<unsigned>(Point)] = 0; // Keep the derived schedule.
    Name.clear();
    if (!*C)
      break;
  }
  for (unsigned P = 0; P < NumFaultPoints; ++P)
    Opts.withChaosSchedule(static_cast<FaultPoint>(P), Schedule[P]);
  return true;
}

int main(int Argc, char **Argv) {
  Engine::Options Opts;
  bool Stats = false, Compare = false, Disassemble = false, Metrics = false;
  bool OpHist = false, FusedMaskSet = false, Serve = false;
  bool CheckRemovalSet = false, ClassCacheFlag = false;
  bool SoftwareOnlyFlag = false, IrDump = false, NoOpt = false;
  DispatchMode Dispatch = DispatchMode::Switch;
  bool ChaosEnabled = false;
  int Iterations = 0;
  const char *Path = nullptr;
  std::string JsonPath, TripLogPath, TracePath;
  std::string SnapshotSavePath, SnapshotLoadPath;
  uint32_t TraceMask = DefaultTraceMask;
  bool TraceMaskSet = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!std::strcmp(A, "--class-cache")) {
      Opts.withClassCache();
      ClassCacheFlag = true;
    } else if (!std::strcmp(A, "--software-only")) {
      Opts.withSoftwareOnlyClassCache();
      SoftwareOnlyFlag = true;
    } else if (!std::strncmp(A, "--check-removal=", 16)) {
      CheckRemovalBackend B;
      if (!checkRemovalBackendFromName(A + 16, B)) {
        std::fprintf(stderr,
                     "ccjs: --check-removal must be 'none', 'classcache', "
                     "'bbv' or 'both', got '%s'\n",
                     A + 16);
        return 2;
      }
      Opts.withCheckRemoval(B);
      CheckRemovalSet = true;
    } else if (!std::strncmp(A, "--opt-passes=", 13)) {
      uint32_t Mask;
      if (!optPassMaskFromSpec(A + 13, Mask)) {
        std::fprintf(stderr,
                     "ccjs: --opt-passes must be 'all', 'none' or a comma "
                     "list of rge,checkmotion, got '%s'\n",
                     A + 13);
        return 2;
      }
      Opts.withOptPasses(Mask);
    } else if (!std::strncmp(A, "--bbv-max-versions=", 19)) {
      char *End = nullptr;
      unsigned long N = std::strtoul(A + 19, &End, 10);
      if (End == A + 19 || *End) {
        std::fprintf(stderr, "ccjs: invalid --bbv-max-versions value '%s'\n",
                     A + 19);
        return 2;
      }
      Opts.withBbvMaxVersions(static_cast<unsigned>(N));
    } else if (!std::strcmp(A, "--ir-dump")) {
      Opts.withIrDump();
      IrDump = true;
    } else if (!std::strcmp(A, "--no-opt")) {
      Opts.withNoOpt();
      NoOpt = true;
    } else if (!std::strncmp(A, "--iterations=", 13)) {
      Iterations = std::atoi(A + 13);
    } else if (!std::strcmp(A, "--stats")) {
      Stats = true;
    } else if (!std::strcmp(A, "--compare")) {
      Compare = true;
    } else if (!std::strncmp(A, "--json=", 7)) {
      JsonPath = A + 7;
      if (JsonPath.empty()) {
        std::fprintf(stderr, "ccjs: --json needs a path (or '-')\n");
        return 2;
      }
    } else if (!std::strcmp(A, "--disassemble")) {
      Disassemble = true;
    } else if (!std::strncmp(A, "--chaos-seed=", 13)) {
      Opts.withChaosSeed(std::strtoull(A + 13, nullptr, 10));
      ChaosEnabled = true;
    } else if (!std::strncmp(A, "--chaos-only=", 13)) {
      if (!applyChaosOnly(Opts, A + 13))
        return 2;
    } else if (!std::strcmp(A, "--audit")) {
      Opts.withAudit();
    } else if (!std::strncmp(A, "--trip-log=", 11)) {
      TripLogPath = A + 11;
      if (TripLogPath.empty()) {
        std::fprintf(stderr, "ccjs: --trip-log needs a path (or '-')\n");
        return 2;
      }
    } else if (!std::strncmp(A, "--trace=", 8)) {
      TracePath = A + 8;
      if (TracePath.empty()) {
        std::fprintf(stderr, "ccjs: --trace needs a path (or '-')\n");
        return 2;
      }
    } else if (!std::strncmp(A, "--trace-events=", 15)) {
      std::string Err;
      if (!TraceRecorder::parseMask(A + 15, TraceMask, &Err)) {
        std::fprintf(stderr, "ccjs: %s\n", Err.c_str());
        return 2;
      }
      TraceMaskSet = true;
    } else if (!std::strcmp(A, "--metrics")) {
      Metrics = true;
    } else if (!std::strncmp(A, "--dispatch=", 11)) {
      if (!dispatchModeFromName(A + 11, Dispatch)) {
        std::fprintf(stderr,
                     "ccjs: --dispatch must be 'switch', 'threaded' or "
                     "'fused', got '%s'\n",
                     A + 11);
        return 2;
      }
      Opts.withDispatch(Dispatch);
    } else if (!std::strncmp(A, "--fused-mask=", 13)) {
      char *End = nullptr;
      unsigned long Mask = std::strtoul(A + 13, &End, 0);
      if (End == A + 13 || *End || Mask > 0xffffffffUL) {
        std::fprintf(stderr, "ccjs: invalid --fused-mask value '%s'\n",
                     A + 13);
        return 2;
      }
      Opts.withFusedPatternMask(static_cast<uint32_t>(Mask));
      FusedMaskSet = true;
    } else if (!std::strcmp(A, "--op-hist")) {
      OpHist = true;
      Opts.withOpHist();
    } else if (!std::strcmp(A, "--serve")) {
      Serve = true;
    } else if (!std::strncmp(A, "--budget-instr=", 15)) {
      Opts.withInstructionBudget(std::strtoull(A + 15, nullptr, 10));
    } else if (!std::strncmp(A, "--budget-heap=", 14)) {
      Opts.withHeapBudget(std::strtoull(A + 14, nullptr, 10));
    } else if (!std::strncmp(A, "--budget-depth=", 15)) {
      Opts.withCallDepthBudget(
          static_cast<uint32_t>(std::strtoul(A + 15, nullptr, 10)));
    } else if (!std::strncmp(A, "--snapshot-save=", 16)) {
      SnapshotSavePath = A + 16;
      if (SnapshotSavePath.empty()) {
        std::fprintf(stderr, "ccjs: --snapshot-save needs a path\n");
        return 2;
      }
    } else if (!std::strncmp(A, "--snapshot-load=", 16)) {
      SnapshotLoadPath = A + 16;
      if (SnapshotLoadPath.empty()) {
        std::fprintf(stderr, "ccjs: --snapshot-load needs a path\n");
        return 2;
      }
    } else if (A[0] == '-') {
      std::fprintf(stderr, "ccjs: unknown option '%s'\n", A);
      return 2;
    } else {
      Path = A;
    }
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: ccjs [--check-removal=none|classcache|bbv|both] "
                 "[--class-cache]\n            [--software-only] "
                 "[--opt-passes=all|none|rge,checkmotion]\n            "
                 "[--bbv-max-versions=N] [--ir-dump] [--no-opt] "
                 "[--iterations=N]\n            [--stats] [--compare] "
                 "[--json=<path>] [--disassemble]\n            "
                 "[--chaos-seed=N] [--chaos-only=a,b] [--audit] "
                 "[--trip-log=<path>]\n            [--trace=<path>] "
                 "[--trace-events=a,b|all] [--metrics]\n            "
                 "[--dispatch=switch|threaded|fused] [--fused-mask=M] "
                 "[--op-hist]\n            [--serve] [--budget-instr=N] "
                 "[--budget-heap=N] [--budget-depth=N]\n            "
                 "[--snapshot-save=<path>] [--snapshot-load=<path>] "
                 "file.js\n");
    return 2;
  }
  if (CheckRemovalSet && (ClassCacheFlag || SoftwareOnlyFlag)) {
    std::fprintf(stderr,
                 "ccjs: --check-removal cannot be combined with the "
                 "deprecated --class-cache/--software-only flags\n");
    return 2;
  }
  if (IrDump && NoOpt) {
    // --ir-dump prints the optimizer pipeline's pass-by-pass OptIR; with
    // --no-opt no function ever compiles, so there is nothing to dump.
    std::fprintf(stderr,
                 "ccjs: --ir-dump requires a compiling tier; it cannot be "
                 "combined with --no-opt\n");
    return 2;
  }
  if (Serve && (Compare || Disassemble)) {
    std::fprintf(stderr,
                 "ccjs: --serve cannot be combined with --compare or "
                 "--disassemble\n");
    return 2;
  }
  if ((!SnapshotSavePath.empty() || !SnapshotLoadPath.empty()) &&
      (Compare || Disassemble || Serve)) {
    // The snapshot flags operate on the single direct-run engine; --compare
    // and --serve build their own engines internally and --disassemble
    // never runs one.
    std::fprintf(stderr,
                 "ccjs: --snapshot-save/--snapshot-load cannot be combined "
                 "with --compare, --disassemble or --serve\n");
    return 2;
  }
  if (!TripLogPath.empty() && !ChaosEnabled) {
    std::fprintf(stderr, "ccjs: --trip-log requires --chaos-seed=N\n");
    return 2;
  }
  if (TraceMaskSet && TracePath.empty()) {
    std::fprintf(stderr, "ccjs: --trace-events requires --trace=<path>\n");
    return 2;
  }
  if (FusedMaskSet && Dispatch != DispatchMode::Fused) {
    std::fprintf(stderr, "ccjs: --fused-mask requires --dispatch=fused\n");
    return 2;
  }
  if (Compare && (!TracePath.empty() || Metrics)) {
    // compareConfigs builds its own engine pair internally; a trace or
    // metrics request would be silently dropped, so refuse it instead.
    std::fprintf(stderr,
                 "ccjs: --trace/--metrics cannot be combined with --compare\n");
    return 2;
  }
  if (!TracePath.empty())
    Opts.withTrace(TraceMask);
  if (Metrics)
    Opts.withMetrics();
  std::string OptErr;
  if (!Opts.validate(&OptErr)) {
    std::fprintf(stderr, "ccjs: invalid configuration: %s\n", OptErr.c_str());
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "ccjs: cannot open '%s'\n", Path);
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  if (Disassemble) {
    ParseResult P = parseProgram(Source);
    if (!P.Ok) {
      std::fprintf(stderr, "ccjs: syntax error at line %u: %s\n",
                   P.ErrorLine, P.Error.c_str());
      return 1;
    }
    StringInterner Names;
    CompileResult C = compileProgram(P.Prog, Names);
    if (!C.Ok) {
      std::fprintf(stderr, "ccjs: %s\n", C.Error.c_str());
      return 1;
    }
    for (const BytecodeFunction &F : C.Module.Functions)
      std::printf("%s\n", disassemble(F, Names).c_str());
    return 0;
  }

  if (Serve) {
    // One-engine pool: the same admission/budget/quarantine machinery
    // ccjsd runs, scoped to a single tenant. Each iteration is one
    // independent service request on the warmed engine.
    PoolConfig PC;
    PC.Engines = 1;
    PC.Base = Opts.build();
    EnginePool Pool(PC);
    unsigned N = Iterations > 0 ? static_cast<unsigned>(Iterations) : 1;
    std::vector<ServiceRequest> Reqs(N);
    for (ServiceRequest &R : Reqs) {
      R.Tenant = "cli";
      R.Source = Source;
    }
    std::vector<ServiceResult> Rs = Pool.serve(Reqs);
    int Rc = 0;
    for (size_t I = 0; I < Rs.size(); ++I) {
      const ServiceResult &R = Rs[I];
      std::printf("%s", R.Output.c_str());
      std::fprintf(stderr, "ccjs: request %zu: %s%s%s\n", I,
                   requestStatusName(R.Status), R.Error.empty() ? "" : ": ",
                   R.Error.c_str());
      if (R.Status == RequestStatus::BudgetExceeded)
        Rc = Rc ? Rc : 3;
      else if (R.Status != RequestStatus::Ok)
        Rc = 1;
    }
    for (const QuarantineRecord &Q : Pool.quarantineLog())
      std::fprintf(stderr,
                   "ccjs: quarantine slot=%u gen=%u reason=%s\n%s", Q.Slot,
                   Q.Generation, Q.Reason.c_str(), Q.TripLog.c_str());
    if (Metrics)
      std::printf("%s", Pool.metrics().render(/*IncludeHost=*/true).c_str());
    return Rc;
  }

  if (Compare) {
    EngineConfig Config = Opts.build();
    Comparison C = compareConfigs(Source, Config,
                                  Iterations > 0 ? Iterations
                                                 : DefaultIterations);
    if (!C.valid()) {
      std::fprintf(stderr, "ccjs: %s%s\n", C.Baseline.Error.c_str(),
                   C.ClassCache.Error.c_str());
      return 1;
    }
    // Unmeasurable metrics (zero denominator, e.g. nothing ever tiered up)
    // print as "n/a", never as a silent 0%.
    auto Fmt = [](const std::optional<double> &V) -> std::string {
      if (!V)
        return "n/a";
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.1f%%", *V);
      return Buf;
    };
    std::printf("%s", C.Baseline.Output.c_str());
    std::printf("outputs match: %s\n", C.OutputsMatch ? "yes" : "NO");
    std::printf("speedup: %s whole application, %s optimized code\n",
                Fmt(C.SpeedupWhole).c_str(), Fmt(C.SpeedupOptimized).c_str());
    std::printf("energy reduction: %s / %s\n",
                Fmt(C.EnergyReductionWhole).c_str(),
                Fmt(C.EnergyReductionOptimized).c_str());
    BenchReport Report("ccjs_compare", Config);
    Workload W{Path, "cli", "", false};
    Report.addComparison(W, C);
    return writeReport(Report, JsonPath) ? 0 : 1;
  }

  if (!SnapshotSavePath.empty())
    // Capture is only meaningful with persistence on: BBV seed recording
    // and the reload-reinstall path are both gated on it, and the restoring
    // engine runs with it anyway (withProfileSnapshot implies it).
    Opts.withProfilePersistence();
  if (!SnapshotLoadPath.empty()) {
    std::ifstream SnapIn(SnapshotLoadPath, std::ios::binary);
    if (!SnapIn) {
      std::fprintf(stderr, "ccjs: cannot open snapshot '%s'\n",
                   SnapshotLoadPath.c_str());
      return 1;
    }
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(SnapIn)),
                               std::istreambuf_iterator<char>());
    Opts.withProfileSnapshot(std::move(Bytes));
  }

  Engine E(Opts);
  if (!E.snapshotRestoreError().empty()) {
    std::fprintf(stderr, "ccjs: %s\n", E.snapshotRestoreError().c_str());
    return 1;
  }
  E.vm().EchoOutput = true;

  // Always write the trip log and the trace when requested, even after a
  // halt: the log is the repro recipe for the failure and the trace is the
  // flight recording leading up to it.
  auto WriteTripLog = [&]() -> bool {
    if (TripLogPath.empty() || !E.faultInjector())
      return true;
    std::string Log = E.faultInjector()->renderTripLog();
    if (TripLogPath == "-") {
      std::printf("%s", Log.c_str());
      return true;
    }
    std::ofstream Out(TripLogPath);
    if (!Out || !(Out << Log)) {
      std::fprintf(stderr, "ccjs: cannot write '%s'\n", TripLogPath.c_str());
      return false;
    }
    return true;
  };
  auto WriteTrace = [&]() -> bool {
    if (TracePath.empty() || !E.trace())
      return true;
    std::string Err;
    if (!E.trace()->writeChromeJson(TracePath, &Err)) {
      std::fprintf(stderr, "ccjs: %s\n", Err.c_str());
      return false;
    }
    return true;
  };
  auto ReportAudits = [&]() -> int {
    if (!E.auditor())
      return 0;
    E.auditNow("final");
    const InvariantAuditor &A = *E.auditor();
    std::fprintf(stderr, "ccjs: %llu audits, %llu failures\n",
                 (unsigned long long)A.audits(),
                 (unsigned long long)A.failureCount());
    for (const std::string &F : A.failures())
      std::fprintf(stderr, "ccjs: audit failure: %s\n", F.c_str());
    return A.failureCount() ? 1 : 0;
  };

  if (!E.load(Source) || !E.runTopLevel()) {
    std::fprintf(stderr, "ccjs: %s\n", E.lastError().c_str());
    WriteTripLog();
    WriteTrace();
    ReportAudits();
    return 1;
  }
  for (int I = 0; I < Iterations; ++I) {
    if (I == Iterations - 1)
      E.resetStats();
    E.callGlobal("run");
    if (E.halted()) {
      std::fprintf(stderr, "ccjs: %s\n", E.lastError().c_str());
      WriteTripLog();
      WriteTrace();
      ReportAudits();
      return 1;
    }
  }
  int AuditRc = ReportAudits();
  if (!WriteTripLog() || !WriteTrace())
    return 1;
  if (AuditRc)
    return AuditRc;
  if (!SnapshotSavePath.empty()) {
    std::vector<uint8_t> Snap = E.snapshotProfile();
    std::ofstream SnapOut(SnapshotSavePath, std::ios::binary);
    if (!SnapOut ||
        !SnapOut.write(reinterpret_cast<const char *>(Snap.data()),
                       static_cast<std::streamsize>(Snap.size()))) {
      std::fprintf(stderr, "ccjs: cannot write snapshot '%s'\n",
                   SnapshotSavePath.c_str());
      return 1;
    }
  }
  if (Stats)
    printStats(E.stats());
  // ccjs is a measurement surface: it shows the host.-prefixed counters
  // (dispatch accounting, fusion savings, op-pair histogram) that default
  // metric exports omit to keep equivalence images mode-independent.
  E.flushHostMetrics();
  if (Metrics && E.metrics())
    std::printf("%s", E.metrics()->render(/*IncludeHost=*/true).c_str());
  if (OpHist && E.vm().OpHist)
    std::printf("%s", renderOpPairHistogram(*E.vm().OpHist, 32).c_str());
  if (!JsonPath.empty()) {
    BenchReport Report("ccjs_run", Opts.build());
    BenchRun R;
    R.Ok = true;
    R.Steady = E.stats();
    R.Output = E.output();
    Workload W{Path, "cli", "", false};
    Report.addRun(W, R);
    if (Metrics && E.metrics())
      Report.setMetrics(E.metrics()->toJson(/*IncludeHost=*/true));
    if (!writeReport(Report, JsonPath))
      return 1;
  }
  return 0;
}
