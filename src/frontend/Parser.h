//===- frontend/Parser.h - MiniJS parser -----------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser producing a MiniJS AST. Reports the first syntax
/// error with its source line; on error the returned program is empty.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_FRONTEND_PARSER_H
#define CCJS_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"

#include <string>
#include <string_view>

namespace ccjs {

/// Result of parsing a MiniJS source file.
struct ParseResult {
  Program Prog;
  bool Ok = true;
  std::string Error;
  uint32_t ErrorLine = 0;
};

/// Parses \p Source into an AST.
ParseResult parseProgram(std::string_view Source);

class Parser {
public:
  explicit Parser(std::string_view Source) : Lex(Source) { bump(); }

  ParseResult run();

  /// Maximum statement/expression nesting depth. A recursive-descent
  /// parser consumes native stack per nesting level, so unbounded input
  /// (e.g. thousands of nested parentheses) would overflow the host stack;
  /// past this depth the parse fails with a clean error instead.
  static constexpr int MaxNestingDepth = 200;

private:
  /// RAII guard for the recursion paths (statements, assignment chains,
  /// unary chains). Entering past MaxNestingDepth fails the parse; the
  /// caller checks the guard and unwinds without recursing further.
  struct NestingGuard {
    explicit NestingGuard(Parser &P) : P(P) {
      if (++P.NestingDepth > MaxNestingDepth)
        P.fail("nesting too deep (limit " +
               std::to_string(MaxNestingDepth) + ")");
    }
    ~NestingGuard() { --P.NestingDepth; }
    explicit operator bool() const {
      return P.NestingDepth <= MaxNestingDepth && !P.HasError;
    }
    Parser &P;
  };

  /// Bump-allocates an AST node in the result Program's arena. The arena
  /// (set by run()) owns the node; the returned pointer's deleter is a
  /// no-op.
  template <typename T, typename... Args> AstPtr<T> make(Args &&...A) {
    return AstPtr<T>(Nodes->make<T>(std::forward<Args>(A)...));
  }

  // Token plumbing.
  void bump();
  bool at(TokenKind Kind) const { return Cur.Kind == Kind; }
  bool eat(TokenKind Kind);
  void expect(TokenKind Kind, const char *Context);
  void fail(const std::string &Msg);

  // Statements.
  StmtPtr parseStatement();
  StmtPtr parseBlock();
  StmtPtr parseVarDecl();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDoWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();
  StmtPtr parseFunctionDecl();

  // Expressions, in precedence order.
  ExprPtr parseExpression();
  ExprPtr parseAssignment();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parseCallOrMember(ExprPtr Base);
  ExprPtr parsePrimary();

  Lexer Lex;
  Token Cur;
  Arena *Nodes = nullptr;
  bool HasError = false;
  std::string ErrorMsg;
  uint32_t ErrorLine = 0;
  int FunctionDepth = 0;
  int NestingDepth = 0;
};

} // namespace ccjs

#endif // CCJS_FRONTEND_PARSER_H
