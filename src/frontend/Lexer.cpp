//===- frontend/Lexer.cpp -------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Assert.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>

using namespace ccjs;

const char *ccjs::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "error";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::String:
    return "string";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwUndefined:
    return "'undefined'";
  case TokenKind::KwTypeof:
    return "'typeof'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::StarAssign:
    return "'*='";
  case TokenKind::SlashAssign:
    return "'/='";
  case TokenKind::PercentAssign:
    return "'%='";
  case TokenKind::AmpAssign:
    return "'&='";
  case TokenKind::PipeAssign:
    return "'|='";
  case TokenKind::CaretAssign:
    return "'^='";
  case TokenKind::ShlAssign:
    return "'<<='";
  case TokenKind::SarAssign:
    return "'>>='";
  case TokenKind::ShrAssign:
    return "'>>>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::Sar:
    return "'>>'";
  case TokenKind::Shr:
    return "'>>>'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::EqEqEq:
    return "'==='";
  case TokenKind::NotEqEq:
    return "'!=='";
  }
  CCJS_UNREACHABLE("unknown token kind");
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r') {
      ++Pos;
    } else if (C == '\n') {
      ++Pos;
      ++Line;
    } else if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        ++Pos;
    } else if (C == '/' && peek(1) == '*') {
      Pos += 2;
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0')
          return;
        if (peek() == '\n')
          ++Line;
        ++Pos;
      }
      Pos += 2;
    } else {
      return;
    }
  }
}

Token Lexer::makeToken(TokenKind Kind) const {
  Token T;
  T.Kind = Kind;
  T.Line = Line;
  return T;
}

Token Lexer::errorToken(const char *Msg) const {
  Token T;
  T.Kind = TokenKind::Error;
  T.Text = Msg;
  T.Line = Line;
  return T;
}

Token Lexer::lexNumber() {
  size_t Start = Pos;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    Token T = makeToken(TokenKind::Number);
    T.NumValue = static_cast<double>(
        std::strtoull(std::string(Source.substr(Start + 2, Pos - Start - 2))
                          .c_str(),
                      nullptr, 16));
    return T;
  }
  while (std::isdigit(static_cast<unsigned char>(peek())))
    ++Pos;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    ++Pos;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    ++Pos;
    if (peek() == '+' || peek() == '-')
      ++Pos;
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    } else {
      Pos = Save;
    }
  }
  Token T = makeToken(TokenKind::Number);
  T.NumValue = std::strtod(std::string(Source.substr(Start, Pos - Start)).c_str(),
                           nullptr);
  return T;
}

Token Lexer::lexString(char Quote) {
  std::string Decoded;
  while (peek() != Quote) {
    char C = peek();
    if (C == '\0')
      return errorToken("unterminated string literal");
    if (C == '\n')
      return errorToken("newline in string literal");
    ++Pos;
    if (C != '\\') {
      Decoded += C;
      continue;
    }
    char Esc = peek();
    ++Pos;
    switch (Esc) {
    case 'n':
      Decoded += '\n';
      break;
    case 't':
      Decoded += '\t';
      break;
    case 'r':
      Decoded += '\r';
      break;
    case '0':
      Decoded += '\0';
      break;
    case '\\':
    case '\'':
    case '"':
      Decoded += Esc;
      break;
    case 'x': {
      char Hi = peek(), Lo = peek(1);
      if (!std::isxdigit(static_cast<unsigned char>(Hi)) ||
          !std::isxdigit(static_cast<unsigned char>(Lo)))
        return errorToken("invalid \\x escape");
      Pos += 2;
      auto HexVal = [](char C) {
        return C <= '9' ? C - '0' : (C | 0x20) - 'a' + 10;
      };
      Decoded += static_cast<char>(HexVal(Hi) * 16 + HexVal(Lo));
      break;
    }
    default:
      return errorToken("unsupported escape sequence");
    }
  }
  ++Pos; // Closing quote.
  Token T = makeToken(TokenKind::String);
  T.Text = std::move(Decoded);
  return T;
}

Token Lexer::lexIdentifier() {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
         peek() == '$')
    ++Pos;
  std::string_view Word = Source.substr(Start, Pos - Start);

  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"var", TokenKind::KwVar},
      {"function", TokenKind::KwFunction},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"new", TokenKind::KwNew},
      {"this", TokenKind::KwThis},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"null", TokenKind::KwNull},
      {"undefined", TokenKind::KwUndefined},
      {"typeof", TokenKind::KwTypeof},
  };

  auto It = Keywords.find(Word);
  Token T = makeToken(It != Keywords.end() ? It->second
                                           : TokenKind::Identifier);
  T.Text = std::string(Word);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  if (Pos >= Source.size())
    return makeToken(TokenKind::Eof);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentifier();
  if (C == '"' || C == '\'') {
    ++Pos;
    return lexString(C);
  }

  ++Pos;
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case '[':
    return makeToken(TokenKind::LBracket);
  case ']':
    return makeToken(TokenKind::RBracket);
  case ';':
    return makeToken(TokenKind::Semicolon);
  case ',':
    return makeToken(TokenKind::Comma);
  case '.':
    return makeToken(TokenKind::Dot);
  case ':':
    return makeToken(TokenKind::Colon);
  case '?':
    return makeToken(TokenKind::Question);
  case '~':
    return makeToken(TokenKind::Tilde);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus);
    if (match('='))
      return makeToken(TokenKind::PlusAssign);
    return makeToken(TokenKind::Plus);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus);
    if (match('='))
      return makeToken(TokenKind::MinusAssign);
    return makeToken(TokenKind::Minus);
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarAssign);
    return makeToken(TokenKind::Star);
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashAssign);
    return makeToken(TokenKind::Slash);
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentAssign);
    return makeToken(TokenKind::Percent);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp);
    if (match('='))
      return makeToken(TokenKind::AmpAssign);
    return makeToken(TokenKind::Amp);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe);
    if (match('='))
      return makeToken(TokenKind::PipeAssign);
    return makeToken(TokenKind::Pipe);
  case '^':
    if (match('='))
      return makeToken(TokenKind::CaretAssign);
    return makeToken(TokenKind::Caret);
  case '!':
    if (match('=')) {
      if (match('='))
        return makeToken(TokenKind::NotEqEq);
      return makeToken(TokenKind::NotEq);
    }
    return makeToken(TokenKind::Bang);
  case '=':
    if (match('=')) {
      if (match('='))
        return makeToken(TokenKind::EqEqEq);
      return makeToken(TokenKind::EqEq);
    }
    return makeToken(TokenKind::Assign);
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(TokenKind::ShlAssign);
      return makeToken(TokenKind::Shl);
    }
    if (match('='))
      return makeToken(TokenKind::Le);
    return makeToken(TokenKind::Lt);
  case '>':
    if (match('>')) {
      if (match('>')) {
        if (match('='))
          return makeToken(TokenKind::ShrAssign);
        return makeToken(TokenKind::Shr);
      }
      if (match('='))
        return makeToken(TokenKind::SarAssign);
      return makeToken(TokenKind::Sar);
    }
    if (match('='))
      return makeToken(TokenKind::Ge);
    return makeToken(TokenKind::Gt);
  default:
    return errorToken("unexpected character");
  }
}
