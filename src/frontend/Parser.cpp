//===- frontend/Parser.cpp ------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/Assert.h"

using namespace ccjs;

ParseResult ccjs::parseProgram(std::string_view Source) {
  Parser P(Source);
  return P.run();
}

void Parser::bump() {
  Cur = Lex.next();
  if (Cur.Kind == TokenKind::Error && !HasError)
    fail(Cur.Text);
}

bool Parser::eat(TokenKind Kind) {
  if (!at(Kind))
    return false;
  bump();
  return true;
}

void Parser::expect(TokenKind Kind, const char *Context) {
  if (HasError)
    return;
  if (!eat(Kind))
    fail(std::string("expected ") + tokenKindName(Kind) + " " + Context +
         ", found " + tokenKindName(Cur.Kind));
}

void Parser::fail(const std::string &Msg) {
  if (HasError)
    return;
  HasError = true;
  ErrorMsg = Msg;
  ErrorLine = Cur.Line;
}

ParseResult Parser::run() {
  ParseResult Result;
  Nodes = &Result.Prog.Nodes;
  while (!at(TokenKind::Eof) && !HasError) {
    StmtPtr S = parseStatement();
    if (HasError)
      break;
    Result.Prog.Body.push_back(std::move(S));
  }
  if (HasError) {
    Result.Ok = false;
    Result.Error = ErrorMsg;
    Result.ErrorLine = ErrorLine;
    Result.Prog.Body.clear();
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseStatement() {
  if (HasError)
    return nullptr;
  NestingGuard Guard(*this);
  if (!Guard)
    return nullptr;
  uint32_t Line = Cur.Line;
  StmtPtr S;
  switch (Cur.Kind) {
  case TokenKind::LBrace:
    S = parseBlock();
    break;
  case TokenKind::KwVar:
    S = parseVarDecl();
    break;
  case TokenKind::KwIf:
    S = parseIf();
    break;
  case TokenKind::KwWhile:
    S = parseWhile();
    break;
  case TokenKind::KwDo:
    S = parseDoWhile();
    break;
  case TokenKind::KwFor:
    S = parseFor();
    break;
  case TokenKind::KwReturn:
    S = parseReturn();
    break;
  case TokenKind::KwBreak:
    bump();
    eat(TokenKind::Semicolon);
    S = make<BreakStmt>();
    break;
  case TokenKind::KwContinue:
    bump();
    eat(TokenKind::Semicolon);
    S = make<ContinueStmt>();
    break;
  case TokenKind::KwFunction:
    S = parseFunctionDecl();
    break;
  case TokenKind::Semicolon:
    bump();
    S = make<BlockStmt>(); // Empty statement.
    break;
  default: {
    ExprPtr E = parseExpression();
    eat(TokenKind::Semicolon);
    S = make<ExprStmt>(std::move(E));
    break;
  }
  }
  if (S)
    S->Line = Line;
  return S;
}

StmtPtr Parser::parseBlock() {
  expect(TokenKind::LBrace, "to open block");
  auto Block = make<BlockStmt>();
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof) && !HasError)
    Block->Body.push_back(parseStatement());
  expect(TokenKind::RBrace, "to close block");
  return Block;
}

StmtPtr Parser::parseVarDecl() {
  expect(TokenKind::KwVar, "in variable declaration");
  auto Decl = make<VarDeclStmt>();
  do {
    if (!at(TokenKind::Identifier)) {
      fail("expected identifier in var declaration");
      break;
    }
    std::string Name = Cur.Text;
    bump();
    ExprPtr Init;
    if (eat(TokenKind::Assign))
      Init = parseAssignment();
    Decl->Decls.emplace_back(std::move(Name), std::move(Init));
  } while (eat(TokenKind::Comma) && !HasError);
  eat(TokenKind::Semicolon);
  return Decl;
}

StmtPtr Parser::parseIf() {
  expect(TokenKind::KwIf, "in if statement");
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseStatement();
  StmtPtr Else;
  if (eat(TokenKind::KwElse))
    Else = parseStatement();
  return make<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseWhile() {
  expect(TokenKind::KwWhile, "in while statement");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr Body = parseStatement();
  return make<WhileStmt>(std::move(Cond), std::move(Body));
}

StmtPtr Parser::parseDoWhile() {
  expect(TokenKind::KwDo, "in do-while statement");
  StmtPtr Body = parseStatement();
  expect(TokenKind::KwWhile, "after do-while body");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "after do-while condition");
  eat(TokenKind::Semicolon);
  return make<DoWhileStmt>(std::move(Body), std::move(Cond));
}

StmtPtr Parser::parseFor() {
  expect(TokenKind::KwFor, "in for statement");
  expect(TokenKind::LParen, "after 'for'");
  auto For = make<ForStmt>();
  if (at(TokenKind::KwVar)) {
    For->Init = parseVarDecl(); // Consumes the ';'.
  } else if (!at(TokenKind::Semicolon)) {
    For->Init = make<ExprStmt>(parseExpression());
    expect(TokenKind::Semicolon, "after for initializer");
  } else {
    bump();
  }
  if (!at(TokenKind::Semicolon))
    For->Cond = parseExpression();
  expect(TokenKind::Semicolon, "after for condition");
  if (!at(TokenKind::RParen))
    For->Step = parseExpression();
  expect(TokenKind::RParen, "after for step");
  For->Body = parseStatement();
  return For;
}

StmtPtr Parser::parseReturn() {
  expect(TokenKind::KwReturn, "in return statement");
  if (FunctionDepth == 0)
    fail("'return' outside of a function");
  ExprPtr Value;
  if (!at(TokenKind::Semicolon) && !at(TokenKind::RBrace))
    Value = parseExpression();
  eat(TokenKind::Semicolon);
  return make<ReturnStmt>(std::move(Value));
}

StmtPtr Parser::parseFunctionDecl() {
  expect(TokenKind::KwFunction, "in function declaration");
  if (FunctionDepth > 0)
    fail("MiniJS supports function declarations only at the top level");
  auto Fn = make<FunctionDeclStmt>();
  if (!at(TokenKind::Identifier)) {
    fail("expected function name");
    return Fn;
  }
  Fn->Name = Cur.Text;
  bump();
  expect(TokenKind::LParen, "after function name");
  if (!at(TokenKind::RParen)) {
    do {
      if (!at(TokenKind::Identifier)) {
        fail("expected parameter name");
        break;
      }
      Fn->Params.push_back(Cur.Text);
      bump();
    } while (eat(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameter list");
  ++FunctionDepth;
  StmtPtr Body = parseBlock();
  --FunctionDepth;
  if (Body) {
    assert(Body->Kind == StmtKind::Block && "function body must be a block");
    Fn->Body.reset(static_cast<BlockStmt *>(Body.release()));
  }
  return Fn;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpression() { return parseAssignment(); }

static bool isAssignTarget(const Expr &E) {
  return E.Kind == ExprKind::Ident || E.Kind == ExprKind::Member ||
         E.Kind == ExprKind::Index;
}

ExprPtr Parser::parseAssignment() {
  if (HasError)
    return make<UndefinedLitExpr>();
  NestingGuard Guard(*this);
  if (!Guard)
    return make<UndefinedLitExpr>();
  uint32_t Line = Cur.Line;
  ExprPtr Lhs = parseConditional();

  struct CompoundMap {
    TokenKind Tok;
    BinaryOp Op;
  };
  static const CompoundMap Compounds[] = {
      {TokenKind::PlusAssign, BinaryOp::Add},
      {TokenKind::MinusAssign, BinaryOp::Sub},
      {TokenKind::StarAssign, BinaryOp::Mul},
      {TokenKind::SlashAssign, BinaryOp::Div},
      {TokenKind::PercentAssign, BinaryOp::Mod},
      {TokenKind::AmpAssign, BinaryOp::BitAnd},
      {TokenKind::PipeAssign, BinaryOp::BitOr},
      {TokenKind::CaretAssign, BinaryOp::BitXor},
      {TokenKind::ShlAssign, BinaryOp::Shl},
      {TokenKind::SarAssign, BinaryOp::Sar},
      {TokenKind::ShrAssign, BinaryOp::Shr},
  };

  if (at(TokenKind::Assign)) {
    if (!Lhs || !isAssignTarget(*Lhs))
      fail("invalid assignment target");
    bump();
    ExprPtr Rhs = parseAssignment();
    auto A = make<AssignExpr>(std::move(Lhs), std::move(Rhs));
    A->Line = Line;
    return A;
  }
  for (const CompoundMap &C : Compounds) {
    if (!at(C.Tok))
      continue;
    if (!Lhs || !isAssignTarget(*Lhs))
      fail("invalid assignment target");
    bump();
    ExprPtr Rhs = parseAssignment();
    auto A = make<AssignExpr>(std::move(Lhs), std::move(Rhs));
    A->IsCompound = true;
    A->Op = C.Op;
    A->Line = Line;
    return A;
  }
  return Lhs;
}

ExprPtr Parser::parseConditional() {
  ExprPtr Cond = parseBinary(0);
  if (!eat(TokenKind::Question))
    return Cond;
  ExprPtr Then = parseAssignment();
  expect(TokenKind::Colon, "in conditional expression");
  ExprPtr Else = parseAssignment();
  return make<ConditionalExpr>(std::move(Cond), std::move(Then),
                                           std::move(Else));
}

namespace {
/// Binary operator precedence table entry.
struct BinOpInfo {
  TokenKind Tok;
  BinaryOp Op;
  bool IsLogical;
  LogicalOp LOp;
  int Prec;
};
} // namespace

static const BinOpInfo *lookupBinOp(TokenKind Kind) {
  static const BinOpInfo Table[] = {
      {TokenKind::PipePipe, BinaryOp::Add, true, LogicalOp::Or, 1},
      {TokenKind::AmpAmp, BinaryOp::Add, true, LogicalOp::And, 2},
      {TokenKind::Pipe, BinaryOp::BitOr, false, LogicalOp::Or, 3},
      {TokenKind::Caret, BinaryOp::BitXor, false, LogicalOp::Or, 4},
      {TokenKind::Amp, BinaryOp::BitAnd, false, LogicalOp::Or, 5},
      {TokenKind::EqEq, BinaryOp::Eq, false, LogicalOp::Or, 6},
      {TokenKind::NotEq, BinaryOp::Ne, false, LogicalOp::Or, 6},
      {TokenKind::EqEqEq, BinaryOp::StrictEq, false, LogicalOp::Or, 6},
      {TokenKind::NotEqEq, BinaryOp::StrictNe, false, LogicalOp::Or, 6},
      {TokenKind::Lt, BinaryOp::Lt, false, LogicalOp::Or, 7},
      {TokenKind::Le, BinaryOp::Le, false, LogicalOp::Or, 7},
      {TokenKind::Gt, BinaryOp::Gt, false, LogicalOp::Or, 7},
      {TokenKind::Ge, BinaryOp::Ge, false, LogicalOp::Or, 7},
      {TokenKind::Shl, BinaryOp::Shl, false, LogicalOp::Or, 8},
      {TokenKind::Sar, BinaryOp::Sar, false, LogicalOp::Or, 8},
      {TokenKind::Shr, BinaryOp::Shr, false, LogicalOp::Or, 8},
      {TokenKind::Plus, BinaryOp::Add, false, LogicalOp::Or, 9},
      {TokenKind::Minus, BinaryOp::Sub, false, LogicalOp::Or, 9},
      {TokenKind::Star, BinaryOp::Mul, false, LogicalOp::Or, 10},
      {TokenKind::Slash, BinaryOp::Div, false, LogicalOp::Or, 10},
      {TokenKind::Percent, BinaryOp::Mod, false, LogicalOp::Or, 10},
  };
  for (const BinOpInfo &Info : Table)
    if (Info.Tok == Kind)
      return &Info;
  return nullptr;
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  for (;;) {
    const BinOpInfo *Info = lookupBinOp(Cur.Kind);
    if (!Info || Info->Prec < MinPrec || HasError)
      return Lhs;
    uint32_t Line = Cur.Line;
    bump();
    ExprPtr Rhs = parseBinary(Info->Prec + 1);
    if (Info->IsLogical) {
      auto E = make<LogicalExpr>(Info->LOp, std::move(Lhs),
                                             std::move(Rhs));
      E->Line = Line;
      Lhs = std::move(E);
    } else {
      auto E = make<BinaryExpr>(Info->Op, std::move(Lhs),
                                            std::move(Rhs));
      E->Line = Line;
      Lhs = std::move(E);
    }
  }
}

ExprPtr Parser::parseUnary() {
  if (HasError)
    return make<UndefinedLitExpr>();
  NestingGuard Guard(*this);
  if (!Guard)
    return make<UndefinedLitExpr>();
  uint32_t Line = Cur.Line;
  UnaryOp Op;
  if (eat(TokenKind::Minus))
    Op = UnaryOp::Neg;
  else if (eat(TokenKind::Plus))
    Op = UnaryOp::Plus;
  else if (eat(TokenKind::Bang))
    Op = UnaryOp::Not;
  else if (eat(TokenKind::Tilde))
    Op = UnaryOp::BitNot;
  else if (eat(TokenKind::KwTypeof))
    Op = UnaryOp::Typeof;
  else if (at(TokenKind::PlusPlus) || at(TokenKind::MinusMinus)) {
    bool IsInc = at(TokenKind::PlusPlus);
    bump();
    ExprPtr Target = parseUnary();
    if (!Target || !isAssignTarget(*Target))
      fail("invalid increment/decrement target");
    auto E = make<UpdateExpr>(std::move(Target), IsInc,
                                          /*IsPrefix=*/true);
    E->Line = Line;
    return E;
  } else {
    return parsePostfix();
  }
  ExprPtr Operand = parseUnary();
  auto E = make<UnaryExpr>(Op, std::move(Operand));
  E->Line = Line;
  return E;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parseCallOrMember(parsePrimary());
  if (at(TokenKind::PlusPlus) || at(TokenKind::MinusMinus)) {
    bool IsInc = at(TokenKind::PlusPlus);
    uint32_t Line = Cur.Line;
    bump();
    if (!E || !isAssignTarget(*E))
      fail("invalid increment/decrement target");
    auto U = make<UpdateExpr>(std::move(E), IsInc,
                                          /*IsPrefix=*/false);
    U->Line = Line;
    return U;
  }
  return E;
}

ExprPtr Parser::parseCallOrMember(ExprPtr Base) {
  for (;;) {
    if (HasError)
      return Base;
    uint32_t Line = Cur.Line;
    if (eat(TokenKind::Dot)) {
      if (!at(TokenKind::Identifier)) {
        fail("expected property name after '.'");
        return Base;
      }
      auto M = make<MemberExpr>(std::move(Base), Cur.Text);
      M->Line = Line;
      bump();
      Base = std::move(M);
    } else if (eat(TokenKind::LBracket)) {
      ExprPtr Idx = parseExpression();
      expect(TokenKind::RBracket, "after index expression");
      auto I = make<IndexExpr>(std::move(Base), std::move(Idx));
      I->Line = Line;
      Base = std::move(I);
    } else if (at(TokenKind::LParen)) {
      bump();
      std::vector<ExprPtr> Args;
      if (!at(TokenKind::RParen)) {
        do {
          Args.push_back(parseAssignment());
        } while (eat(TokenKind::Comma) && !HasError);
      }
      expect(TokenKind::RParen, "after call arguments");
      auto C = make<CallExpr>(std::move(Base), std::move(Args));
      C->Line = Line;
      Base = std::move(C);
    } else {
      return Base;
    }
  }
}

ExprPtr Parser::parsePrimary() {
  if (HasError)
    return make<UndefinedLitExpr>();
  uint32_t Line = Cur.Line;
  ExprPtr E;
  switch (Cur.Kind) {
  case TokenKind::Number:
    E = make<NumberLitExpr>(Cur.NumValue);
    bump();
    break;
  case TokenKind::String:
    E = make<StringLitExpr>(Cur.Text);
    bump();
    break;
  case TokenKind::KwTrue:
    E = make<BoolLitExpr>(true);
    bump();
    break;
  case TokenKind::KwFalse:
    E = make<BoolLitExpr>(false);
    bump();
    break;
  case TokenKind::KwNull:
    E = make<NullLitExpr>();
    bump();
    break;
  case TokenKind::KwUndefined:
    E = make<UndefinedLitExpr>();
    bump();
    break;
  case TokenKind::KwThis:
    E = make<ThisExpr>();
    bump();
    break;
  case TokenKind::Identifier:
    E = make<IdentExpr>(Cur.Text);
    bump();
    break;
  case TokenKind::LParen: {
    bump();
    E = parseExpression();
    expect(TokenKind::RParen, "after parenthesized expression");
    break;
  }
  case TokenKind::KwNew: {
    bump();
    if (!at(TokenKind::Identifier)) {
      fail("expected constructor name after 'new'");
      return make<UndefinedLitExpr>();
    }
    ExprPtr Callee = make<IdentExpr>(Cur.Text);
    bump();
    std::vector<ExprPtr> Args;
    if (eat(TokenKind::LParen)) {
      if (!at(TokenKind::RParen)) {
        do {
          Args.push_back(parseAssignment());
        } while (eat(TokenKind::Comma) && !HasError);
      }
      expect(TokenKind::RParen, "after constructor arguments");
    }
    auto N = make<NewExpr>(std::move(Callee), std::move(Args));
    // A 'new' expression may be followed by member/index/call accesses.
    N->Line = Line;
    return parseCallOrMember(std::move(N));
  }
  case TokenKind::LBrace: {
    bump();
    auto Obj = make<ObjectLitExpr>();
    if (!at(TokenKind::RBrace)) {
      do {
        if (at(TokenKind::RBrace))
          break; // Trailing comma.
        std::string Key;
        if (at(TokenKind::Identifier) || at(TokenKind::String)) {
          Key = Cur.Text;
          bump();
        } else if (at(TokenKind::Number)) {
          fail("numeric object literal keys are not supported in MiniJS");
          break;
        } else {
          fail("expected property key in object literal");
          break;
        }
        expect(TokenKind::Colon, "after object literal key");
        Obj->Properties.emplace_back(std::move(Key), parseAssignment());
      } while (eat(TokenKind::Comma) && !HasError);
    }
    expect(TokenKind::RBrace, "to close object literal");
    E = std::move(Obj);
    break;
  }
  case TokenKind::LBracket: {
    bump();
    auto Arr = make<ArrayLitExpr>();
    if (!at(TokenKind::RBracket)) {
      do {
        if (at(TokenKind::RBracket))
          break; // Trailing comma.
        Arr->Elements.push_back(parseAssignment());
      } while (eat(TokenKind::Comma) && !HasError);
    }
    expect(TokenKind::RBracket, "to close array literal");
    E = std::move(Arr);
    break;
  }
  default:
    fail(std::string("unexpected token ") + tokenKindName(Cur.Kind));
    return make<UndefinedLitExpr>();
  }
  if (E)
    E->Line = Line;
  return E;
}
