//===- frontend/Lexer.h - MiniJS lexer -------------------------*- C++ -*-===//
///
/// \file
/// Hand-written lexer for the MiniJS language (the JavaScript subset the
/// engine executes). Supports line/block comments, decimal and hex number
/// literals, and single- or double-quoted strings with common escapes.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_FRONTEND_LEXER_H
#define CCJS_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string_view>

namespace ccjs {

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Scans and returns the next token. Returns an Eof token at end of input
  /// and an Error token (with a message in Text) on invalid input.
  Token next();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() { return Source[Pos++]; }
  bool match(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  void skipTrivia();
  Token makeToken(TokenKind Kind) const;
  Token errorToken(const char *Msg) const;
  Token lexNumber();
  Token lexString(char Quote);
  Token lexIdentifier();

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
};

} // namespace ccjs

#endif // CCJS_FRONTEND_LEXER_H
