//===- frontend/Ast.h - MiniJS abstract syntax tree ------------*- C++ -*-===//
///
/// \file
/// AST node definitions for MiniJS. Nodes form a small class hierarchy with
/// an explicit kind tag. Storage is bump-allocated from the owning
/// Program's Arena; edge ownership is still expressed with unique_ptr, but
/// with a no-op deleter — the Arena destroys every node (in reverse
/// allocation order) when the Program dies, so tree teardown is one linear
/// sweep instead of a pointer-chasing recursive delete.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_FRONTEND_AST_H
#define CCJS_FRONTEND_AST_H

#include "support/Arena.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ccjs {

enum class ExprKind : uint8_t {
  NumberLit,
  StringLit,
  BoolLit,
  NullLit,
  UndefinedLit,
  ThisExpr,
  Ident,
  Assign,
  Conditional,
  Binary,
  Logical,
  Unary,
  Update,
  Call,
  New,
  Member,
  Index,
  ObjectLit,
  ArrayLit,
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Sar,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  StrictEq,
  StrictNe,
};

enum class LogicalOp : uint8_t { And, Or };

enum class UnaryOp : uint8_t { Neg, Plus, Not, BitNot, Typeof };

/// Deleter for arena-owned AST nodes: intentionally does nothing. The
/// Program's Arena registered the node's destructor at allocation time
/// and runs it when the Program is destroyed.
struct AstArenaDeleter {
  template <typename T> void operator()(T *) const noexcept {}
};

template <typename T> using AstPtr = std::unique_ptr<T, AstArenaDeleter>;

struct Expr {
  ExprKind Kind;
  uint32_t Line = 0;

  explicit Expr(ExprKind Kind) : Kind(Kind) {}
  virtual ~Expr() = default;
};

using ExprPtr = AstPtr<Expr>;

struct NumberLitExpr : Expr {
  double Value;
  explicit NumberLitExpr(double Value)
      : Expr(ExprKind::NumberLit), Value(Value) {}
};

struct StringLitExpr : Expr {
  std::string Value;
  explicit StringLitExpr(std::string Value)
      : Expr(ExprKind::StringLit), Value(std::move(Value)) {}
};

struct BoolLitExpr : Expr {
  bool Value;
  explicit BoolLitExpr(bool Value) : Expr(ExprKind::BoolLit), Value(Value) {}
};

struct NullLitExpr : Expr {
  NullLitExpr() : Expr(ExprKind::NullLit) {}
};

struct UndefinedLitExpr : Expr {
  UndefinedLitExpr() : Expr(ExprKind::UndefinedLit) {}
};

struct ThisExpr : Expr {
  ThisExpr() : Expr(ExprKind::ThisExpr) {}
};

struct IdentExpr : Expr {
  std::string Name;
  explicit IdentExpr(std::string Name)
      : Expr(ExprKind::Ident), Name(std::move(Name)) {}
};

/// Assignment, including compound forms. For compound assignment, Op holds
/// the arithmetic operator; for plain '=', Op is unset.
struct AssignExpr : Expr {
  ExprPtr Target; // Ident, Member or Index expression.
  ExprPtr Value;
  bool IsCompound = false;
  BinaryOp Op = BinaryOp::Add;
  AssignExpr(ExprPtr Target, ExprPtr Value)
      : Expr(ExprKind::Assign), Target(std::move(Target)),
        Value(std::move(Value)) {}
};

struct ConditionalExpr : Expr {
  ExprPtr Cond, Then, Else;
  ConditionalExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else)
      : Expr(ExprKind::Conditional), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
};

struct BinaryExpr : Expr {
  BinaryOp Op;
  ExprPtr Lhs, Rhs;
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(ExprKind::Binary), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
};

struct LogicalExpr : Expr {
  LogicalOp Op;
  ExprPtr Lhs, Rhs;
  LogicalExpr(LogicalOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(ExprKind::Logical), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
};

struct UnaryExpr : Expr {
  UnaryOp Op;
  ExprPtr Operand;
  UnaryExpr(UnaryOp Op, ExprPtr Operand)
      : Expr(ExprKind::Unary), Op(Op), Operand(std::move(Operand)) {}
};

/// Prefix or postfix ++/--.
struct UpdateExpr : Expr {
  ExprPtr Target; // Ident, Member or Index expression.
  bool IsIncrement;
  bool IsPrefix;
  UpdateExpr(ExprPtr Target, bool IsIncrement, bool IsPrefix)
      : Expr(ExprKind::Update), Target(std::move(Target)),
        IsIncrement(IsIncrement), IsPrefix(IsPrefix) {}
};

struct CallExpr : Expr {
  ExprPtr Callee; // Ident (direct call) or Member (method call).
  std::vector<ExprPtr> Args;
  CallExpr(ExprPtr Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
};

struct NewExpr : Expr {
  ExprPtr Callee;
  std::vector<ExprPtr> Args;
  NewExpr(ExprPtr Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::New), Callee(std::move(Callee)), Args(std::move(Args)) {}
};

struct MemberExpr : Expr {
  ExprPtr Object;
  std::string Property;
  MemberExpr(ExprPtr Object, std::string Property)
      : Expr(ExprKind::Member), Object(std::move(Object)),
        Property(std::move(Property)) {}
};

struct IndexExpr : Expr {
  ExprPtr Object, Index;
  IndexExpr(ExprPtr Object, ExprPtr Index)
      : Expr(ExprKind::Index), Object(std::move(Object)),
        Index(std::move(Index)) {}
};

struct ObjectLitExpr : Expr {
  std::vector<std::pair<std::string, ExprPtr>> Properties;
  ObjectLitExpr() : Expr(ExprKind::ObjectLit) {}
};

struct ArrayLitExpr : Expr {
  std::vector<ExprPtr> Elements;
  ArrayLitExpr() : Expr(ExprKind::ArrayLit) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  VarDecl,
  ExprStmt,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  FunctionDecl,
};

struct Stmt {
  StmtKind Kind;
  uint32_t Line = 0;
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}
  virtual ~Stmt() = default;
};

using StmtPtr = AstPtr<Stmt>;

struct BlockStmt : Stmt {
  std::vector<StmtPtr> Body;
  BlockStmt() : Stmt(StmtKind::Block) {}
};

struct VarDeclStmt : Stmt {
  /// Declared names with optional initializers (null when absent).
  std::vector<std::pair<std::string, ExprPtr>> Decls;
  VarDeclStmt() : Stmt(StmtKind::VarDecl) {}
};

struct ExprStmt : Stmt {
  ExprPtr E;
  explicit ExprStmt(ExprPtr E) : Stmt(StmtKind::ExprStmt), E(std::move(E)) {}
};

struct IfStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(StmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
};

struct WhileStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Body;
  WhileStmt(ExprPtr Cond, StmtPtr Body)
      : Stmt(StmtKind::While), Cond(std::move(Cond)), Body(std::move(Body)) {}
};

struct DoWhileStmt : Stmt {
  StmtPtr Body;
  ExprPtr Cond;
  DoWhileStmt(StmtPtr Body, ExprPtr Cond)
      : Stmt(StmtKind::DoWhile), Body(std::move(Body)), Cond(std::move(Cond)) {}
};

struct ForStmt : Stmt {
  StmtPtr Init; // VarDecl or ExprStmt; may be null.
  ExprPtr Cond; // May be null (infinite).
  ExprPtr Step; // May be null.
  StmtPtr Body;
  ForStmt() : Stmt(StmtKind::For) {}
};

struct ReturnStmt : Stmt {
  ExprPtr Value; // May be null.
  explicit ReturnStmt(ExprPtr Value)
      : Stmt(StmtKind::Return), Value(std::move(Value)) {}
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::Break) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::Continue) {}
};

/// Top-level function declaration. MiniJS supports functions only at the
/// program top level (no closures); see DESIGN.md for the language subset.
struct FunctionDeclStmt : Stmt {
  std::string Name;
  std::vector<std::string> Params;
  AstPtr<BlockStmt> Body;
  FunctionDeclStmt() : Stmt(StmtKind::FunctionDecl) {}
};

/// A parsed program: top-level statements, including function declarations.
/// Owns the Arena all nodes live in; move-only. Declared before Body so it
/// is destroyed after — the no-op deleters in Body never touch the nodes.
struct Program {
  Arena Nodes;
  std::vector<StmtPtr> Body;
};

} // namespace ccjs

#endif // CCJS_FRONTEND_AST_H
