//===- frontend/Token.h - MiniJS tokens ------------------------*- C++ -*-===//
///
/// \file
/// Token kinds and token values produced by the MiniJS lexer.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_FRONTEND_TOKEN_H
#define CCJS_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace ccjs {

enum class TokenKind : uint8_t {
  Eof,
  Error,
  Identifier,
  Number,
  String,

  // Keywords.
  KwVar,
  KwFunction,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwNew,
  KwThis,
  KwTrue,
  KwFalse,
  KwNull,
  KwUndefined,
  KwTypeof,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Colon,
  Question,

  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  SlashAssign,   // /=
  PercentAssign, // %=
  AmpAssign,     // &=
  PipeAssign,    // |=
  CaretAssign,   // ^=
  ShlAssign,     // <<=
  SarAssign,     // >>=
  ShrAssign,     // >>>=

  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,

  Amp,
  Pipe,
  Caret,
  Tilde,
  Shl, // <<
  Sar, // >>
  Shr, // >>>

  AmpAmp,
  PipePipe,
  Bang,

  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  EqEqEq,
  NotEqEq,
};

/// A single token with its source position.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  /// Identifier or keyword spelling, or decoded string literal contents.
  std::string Text;
  /// Value for TokenKind::Number.
  double NumValue = 0;
  uint32_t Line = 0;
};

/// Returns a human-readable name for a token kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

} // namespace ccjs

#endif // CCJS_FRONTEND_TOKEN_H
