//===- vm/Feedback.h - Inline caches & type feedback ------------*- C++ -*-===//
///
/// \file
/// Per-site inline caches and type feedback recorded by the baseline tier
/// (section 3.2: Full Codegen's Inline Caching) and consumed by the
/// optimizing tier to generate specialized code with explicit checks.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_FEEDBACK_H
#define CCJS_VM_FEEDBACK_H

#include "runtime/Shape.h"

#include <cstdint>
#include <vector>

namespace ccjs {

/// Operand-type lattice for arithmetic sites.
enum class NumberHint : uint8_t { None, Smi, Double, String, Generic };

inline NumberHint mergeHint(NumberHint Old, NumberHint New) {
  if (Old == NumberHint::None)
    return New;
  if (Old == New)
    return Old;
  // Smi and Double merge to Double; anything else is generic.
  bool Numeric = (Old == NumberHint::Smi || Old == NumberHint::Double) &&
                 (New == NumberHint::Smi || New == NumberHint::Double);
  return Numeric ? NumberHint::Double : NumberHint::Generic;
}

/// One inline-cache entry for a property or element site.
struct PropEntry {
  ShapeId Shape = InvalidShape;
  uint16_t Slot = 0;
  /// For transitioning stores: the destination shape (InvalidShape for
  /// in-place stores and loads).
  ShapeId NewShape = InvalidShape;
};

/// What `.length` resolved to at a GetLength site.
enum class LengthKind : uint8_t { None, Elements, String, NamedSlot, Mixed };

/// Feedback for one bytecode site. A site is used for exactly one purpose
/// (property IC, arithmetic hint, call target, ...), so the fields overlay
/// harmlessly.
struct SiteFeedback {
  // Property / element ICs.
  static constexpr unsigned MaxEntries = 4;
  PropEntry Entries[MaxEntries];
  uint8_t NumEntries = 0;
  bool Megamorphic = false;

  // Arithmetic.
  NumberHint Hint = NumberHint::None;

  // Calls: monomorphic callee (function-table or builtin index).
  static constexpr uint32_t NoTarget = ~uint32_t(0);
  uint32_t CallTarget = NoTarget;
  bool PolymorphicCall = false;

  // GetLength.
  LengthKind Length = LengthKind::None;
  /// Slot of a named `length` property (LengthKind::NamedSlot).
  uint16_t LengthSlot = 0;

  // Element sites.
  bool SawOutOfBounds = false;

  /// Finds the IC entry for \p Shape, or null.
  const PropEntry *find(ShapeId Shape) const {
    for (unsigned I = 0; I < NumEntries; ++I)
      if (Entries[I].Shape == Shape)
        return &Entries[I];
    return nullptr;
  }

  /// Inserts an IC entry, going megamorphic beyond MaxEntries. Returns
  /// false when the site is megamorphic.
  bool insert(ShapeId Shape, uint16_t Slot, ShapeId NewShape = InvalidShape) {
    if (Megamorphic)
      return false;
    if (NumEntries == MaxEntries) {
      Megamorphic = true;
      return false;
    }
    Entries[NumEntries++] = PropEntry{Shape, Slot, NewShape};
    return true;
  }

  bool isMonomorphic() const { return !Megamorphic && NumEntries == 1; }

  void recordCallTarget(uint32_t Target) {
    if (CallTarget == NoTarget)
      CallTarget = Target;
    else if (CallTarget != Target)
      PolymorphicCall = true;
  }
};

using FeedbackVector = std::vector<SiteFeedback>;

} // namespace ccjs

#endif // CCJS_VM_FEEDBACK_H
