//===- vm/Feedback.h - Inline caches & type feedback ------------*- C++ -*-===//
///
/// \file
/// Per-site inline caches and type feedback recorded by the baseline tier
/// (section 3.2: Full Codegen's Inline Caching) and consumed by the
/// optimizing tier to generate specialized code with explicit checks.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_FEEDBACK_H
#define CCJS_VM_FEEDBACK_H

#include "runtime/Shape.h"

#include <cstdint>
#include <vector>

namespace ccjs {

/// Operand-type lattice for arithmetic sites.
enum class NumberHint : uint8_t { None, Smi, Double, String, Generic };

inline NumberHint mergeHint(NumberHint Old, NumberHint New) {
  if (Old == NumberHint::None)
    return New;
  if (Old == New)
    return Old;
  // Smi and Double merge to Double; anything else is generic.
  bool Numeric = (Old == NumberHint::Smi || Old == NumberHint::Double) &&
                 (New == NumberHint::Smi || New == NumberHint::Double);
  return Numeric ? NumberHint::Double : NumberHint::Generic;
}

/// One inline-cache entry for a property or element site.
struct PropEntry {
  ShapeId Shape = InvalidShape;
  uint16_t Slot = 0;
  /// For transitioning stores: the destination shape (InvalidShape for
  /// in-place stores and loads).
  ShapeId NewShape = InvalidShape;
};

/// What `.length` resolved to at a GetLength site.
enum class LengthKind : uint8_t { None, Elements, String, NamedSlot, Mixed };

/// Feedback for one bytecode site. A site is used for exactly one purpose
/// (property IC, arithmetic hint, call target, ...), so the fields overlay
/// harmlessly.
struct SiteFeedback {
  // Property / element ICs.
  static constexpr unsigned MaxEntries = 4;
  PropEntry Entries[MaxEntries];
  uint8_t NumEntries = 0;
  bool Megamorphic = false;

  // Arithmetic.
  NumberHint Hint = NumberHint::None;

  // Calls: monomorphic callee (function-table or builtin index).
  static constexpr uint32_t NoTarget = ~uint32_t(0);
  uint32_t CallTarget = NoTarget;
  bool PolymorphicCall = false;

  // GetLength.
  LengthKind Length = LengthKind::None;
  /// Slot of a named `length` property (LengthKind::NamedSlot).
  uint16_t LengthSlot = 0;

  // Element sites.
  bool SawOutOfBounds = false;

  /// Finds the IC entry for \p Shape, or null.
  const PropEntry *find(ShapeId Shape) const {
    for (unsigned I = 0; I < NumEntries; ++I)
      if (Entries[I].Shape == Shape)
        return &Entries[I];
    return nullptr;
  }

  /// Inserts an IC entry, going megamorphic beyond MaxEntries. Returns
  /// false when the site is megamorphic.
  bool insert(ShapeId Shape, uint16_t Slot, ShapeId NewShape = InvalidShape) {
    if (Megamorphic)
      return false;
    if (NumEntries == MaxEntries) {
      Megamorphic = true;
      return false;
    }
    Entries[NumEntries++] = PropEntry{Shape, Slot, NewShape};
    return true;
  }

  bool isMonomorphic() const { return !Megamorphic && NumEntries == 1; }

  void recordCallTarget(uint32_t Target) {
    if (CallTarget == NoTarget)
      CallTarget = Target;
    else if (CallTarget != Target)
      PolymorphicCall = true;
  }
};

using FeedbackVector = std::vector<SiteFeedback>;

/// Chaos-engine helper: perturbs one site's feedback the way real staleness
/// would — facts are dropped or over-generalized, never fabricated. Every
/// perturbation leaves the site in a state the optimizing tier either
/// guards (wrong Hint ⇒ failing CheckSmi/CheckNumber ⇒ deopt) or compiles
/// generically (no entries, no target, megamorphic), so a compile from
/// poisoned feedback can mis-speculate but never mis-execute.
///
/// The one coupling rule: clearing IC entries must also reset CallTarget,
/// because a monomorphic builtin-method call guards the receiver through
/// its IC entry — keeping the target without the entry would drop that
/// guard.
inline void poisonSiteFeedback(SiteFeedback &FB, uint64_t Rnd) {
  switch (Rnd % 6) {
  case 0: // Forget all but the first IC entry (site re-records later).
    if (FB.NumEntries > 1)
      FB.NumEntries = 1;
    break;
  case 1: // Forget the site entirely.
    FB.NumEntries = 0;
    FB.CallTarget = SiteFeedback::NoTarget;
    FB.PolymorphicCall = false;
    break;
  case 2: // Pessimize to megamorphic (absorbing, but only costs speed).
    FB.Megamorphic = true;
    break;
  case 3: // Wrong arithmetic hint: the Smi path is fully guarded.
    FB.Hint = NumberHint::Smi;
    break;
  case 4: // Wrong arithmetic hint: the Double path is fully guarded.
    FB.Hint = NumberHint::Double;
    break;
  case 5: // Forget the call target (site compiles a deopt fallback).
    FB.CallTarget = SiteFeedback::NoTarget;
    FB.PolymorphicCall = false;
    break;
  }
}

} // namespace ccjs

#endif // CCJS_VM_FEEDBACK_H
