//===- vm/Builtins.h - Built-in function ids ---------------------*- C++ -*-===//
///
/// \file
/// Identifiers for the built-in functions the engine installs (print, the
/// Math and String namespace objects, string and array methods). Built-in
/// function values carry `BuiltinBase + id` as their function index.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_BUILTINS_H
#define CCJS_VM_BUILTINS_H

#include <cstdint>

namespace ccjs {

inline constexpr uint32_t BuiltinBase = 0x40000000;

enum class BuiltinId : uint32_t {
  Print,
  // Math.*
  MathFloor,
  MathCeil,
  MathRound,
  MathSqrt,
  MathAbs,
  MathMin,
  MathMax,
  MathPow,
  MathSin,
  MathCos,
  MathTan,
  MathAtan,
  MathAtan2,
  MathExp,
  MathLog,
  MathRandom,
  // String.*
  StringFromCharCode,
  // String.prototype.*
  StrCharCodeAt,
  StrCharAt,
  StrSubstring,
  StrIndexOf,
  StrSplit,
  StrToUpperCase,
  StrToLowerCase,
  // Array.prototype.*
  ArrPush,
  ArrPop,
  ArrJoin,
  ArrIndexOf,
  /// The `Array` constructor (used with `new Array(n)`).
  ArrayCtor,

  NumBuiltins,
};

inline bool isBuiltinIndex(uint32_t FuncIndex) {
  return FuncIndex >= BuiltinBase;
}
inline BuiltinId builtinFromIndex(uint32_t FuncIndex) {
  return static_cast<BuiltinId>(FuncIndex - BuiltinBase);
}
inline uint32_t indexOfBuiltin(BuiltinId Id) {
  return BuiltinBase + static_cast<uint32_t>(Id);
}

} // namespace ccjs

#endif // CCJS_VM_BUILTINS_H
