//===- vm/VMState.h - Shared VM state ---------------------------*- C++ -*-===//
///
/// \file
/// The state shared by the two execution tiers and the engine facade:
/// heap, shapes, globals, the per-function metadata (feedback, optimized
/// code, hotness), the hardware models, and the tier-dispatch hooks.
///
/// The hooks (Invoke, InterpretFrom, CallBuiltin, InvalidationService) are
/// function pointers installed by the engine so the interpreter and the
/// OptIR executor can call across tiers without a link-time cycle.
///
/// Event *notification* is separate from tier dispatch: boundary events
/// (tier-up, deopt, invalidation, fault trip) fan out to the registered
/// EngineObservers — see vm/EngineObserver.h.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_VMSTATE_H
#define CCJS_VM_VMSTATE_H

#include "bytecode/Bytecode.h"
#include "core/Metrics.h"
#include "hw/ClassCache.h"
#include "hw/ClassList.h"
#include "hw/ExecContext.h"
#include "hw/HwConfig.h"
#include "runtime/Heap.h"
#include "runtime/TypeProfiler.h"
#include "support/Dispatch.h"
#include "support/FaultInjector.h"
#include "support/PairHistogram.h"
#include "support/StringInterner.h"
#include "support/Trace.h"
#include "vm/EngineObserver.h"
#include "vm/EngineTracer.h"
#include "vm/Feedback.h"
#include "vm/InvariantAuditor.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace ccjs {

struct OptCode; // Defined by the jit library; owned by the engine.

/// Host-side dispatch strategy for the interpreter and OptIR executor main
/// loops. All strategies run the same handler code and emit identical
/// simulated events (held so by tests/DispatchEquivalenceTest.cpp and the
/// generated-corpus oracle), so the knob is excluded from config
/// fingerprints — like Trace, it can never perturb a measurement.
enum class DispatchMode : uint8_t {
  /// Portable hot switch (the default; fastest on current hosts, see
  /// DESIGN.md §4.6).
  Switch,
  /// Computed-goto token threading, available when the build supports it.
  Threaded,
  /// Switch dispatch over superinstruction-fused OptIR: hot op pairs and
  /// triples collapse into one dispatch with batched event charging (see
  /// DESIGN.md §4.8).
  Fused,
};

inline const char *dispatchModeName(DispatchMode M) {
  switch (M) {
  case DispatchMode::Switch:
    return "switch";
  case DispatchMode::Threaded:
    return "threaded";
  case DispatchMode::Fused:
    return "fused";
  }
  return "switch";
}

/// Parses a --dispatch= flag value; returns false on an unknown name.
inline bool dispatchModeFromName(const std::string &Name, DispatchMode &Out) {
  if (Name == "switch") {
    Out = DispatchMode::Switch;
    return true;
  }
  if (Name == "threaded") {
    Out = DispatchMode::Threaded;
    return true;
  }
  if (Name == "fused") {
    Out = DispatchMode::Fused;
    return true;
  }
  return false;
}

/// Which check-removal mechanism the optimizing tier runs. The paper's
/// mechanism (ClassCache) and lazy basic-block versioning (Bbv, after
/// Chevalier-Boisvert & Feeley, ECOOP 2015) are independent: one elides
/// checks at compile time from monomorphic profiles, the other at run
/// time from proven block-entry type contexts, so Both composes them.
/// Selection replaces the old boolean knob sprawl (withClassCache /
/// withSoftwareOnlyClassCache remain as deprecated shims, DESIGN.md
/// §4.10).
enum class CheckRemovalBackend : uint8_t {
  /// State-of-the-art baseline: every check executes.
  None,
  /// The paper's profile-guided mechanism (the previous default-on path).
  ClassCache,
  /// Lazy basic-block versioning: specialize block versions on the
  /// observed entry type context.
  Bbv,
  /// Both mechanisms composed.
  Both,
};

inline const char *checkRemovalBackendName(CheckRemovalBackend B) {
  switch (B) {
  case CheckRemovalBackend::None:
    return "none";
  case CheckRemovalBackend::ClassCache:
    return "classcache";
  case CheckRemovalBackend::Bbv:
    return "bbv";
  case CheckRemovalBackend::Both:
    return "both";
  }
  return "none";
}

/// Parses a --check-removal= flag value; returns false on an unknown name.
inline bool checkRemovalBackendFromName(const std::string &Name,
                                        CheckRemovalBackend &Out) {
  if (Name == "none") {
    Out = CheckRemovalBackend::None;
    return true;
  }
  if (Name == "classcache") {
    Out = CheckRemovalBackend::ClassCache;
    return true;
  }
  if (Name == "bbv") {
    Out = CheckRemovalBackend::Bbv;
    return true;
  }
  if (Name == "both") {
    Out = CheckRemovalBackend::Both;
    return true;
  }
  return false;
}

/// Per-request resource budgets for service mode (EnginePool / ccjsd).
/// A zero limit means unlimited; with every limit zero the engine never
/// arms the budget machinery and the hot paths pay exactly one host-side
/// bool test per safepoint — budgets-off runs are byte-identical to a
/// build without the feature (no simulated events are charged by the
/// checks either way; tripping halts through the ordinary error path).
///
/// Budgets are checked at safepoints (loop back-edges, call entries,
/// tier-up boundaries) against counters the engine already maintains:
/// the ExecContext instruction total, the SimMemory allocation watermark
/// and the call-depth guard.
struct BudgetConfig {
  /// Simulated instructions one request may execute.
  uint64_t MaxInstructions = 0;
  /// Simulated heap bytes one request may allocate.
  uint64_t MaxHeapBytes = 0;
  /// JS call depth one request may reach (must sit below the engine's
  /// hard stack guard to be meaningful; validated by Engine::Options).
  uint32_t MaxCallDepth = 0;

  bool any() const { return MaxInstructions || MaxHeapBytes || MaxCallDepth; }
};

/// Engine configuration: which parts of the paper's mechanism are active.
struct EngineConfig {
  /// Master switch for the proposed mechanism (profiling stores, Class
  /// Cache accesses, check elision). Off = the state-of-the-art baseline.
  bool ClassCacheEnabled = false;

  // Section 4.3 optimizations, individually togglable for ablations.
  bool ElideCheckMaps = true;
  bool ElideCheckSmi = true;
  bool ElideCheckNonSmi = true;

  /// Hoist movClassIDArray out of loops (section 4.2.1.3).
  bool HoistClassIdArray = true;
  /// Number of regArrayObjectClassId registers (the paper uses 4).
  unsigned NumArrayClassRegs = 4;

  /// Model a software-only implementation (section 5.4): every profiling
  /// store pays a software lookup instead of the parallel HW access.
  bool SoftwareOnlyClassCache = false;

  /// Requested check-removal backend (see CheckRemovalBackend). The
  /// ClassCache component is still carried by ClassCacheEnabled above so
  /// legacy direct writes and the existing config fingerprints stay
  /// coherent; this field carries the BBV request and is excluded from
  /// fingerprints — a BBV run's simulated stream is compared against the
  /// matching ClassCacheEnabled setting, not a distinct configuration.
  CheckRemovalBackend CheckRemoval = CheckRemovalBackend::None;
  /// Lazy-BBV: specialized versions one block may grow before new entry
  /// contexts fall back to the generic (no-elision) version.
  unsigned BbvMaxVersions = 4;

  /// Optimizer pass-pipeline enable mask (bit i enables pass i in
  /// PassManager registration order; see src/jit/passes/). 0 = pipeline
  /// structurally off: the emitted OptIR is byte-identical to the bare
  /// IrBuilder output, which PassPipelineTest pins.
  uint32_t OptPassMask = 0;
  /// Dump pass-by-pass OptIR to stderr at compile time (ccjs --ir-dump).
  /// Host-side observation only; stdout byte-compare gates are unaffected.
  bool IrDump = false;

  /// True when lazy basic-block versioning runs (Bbv or Both).
  bool bbvOn() const {
    return CheckRemoval == CheckRemovalBackend::Bbv ||
           CheckRemoval == CheckRemovalBackend::Both;
  }
  /// The backend actually in effect, reconciling the legacy
  /// ClassCacheEnabled bool with the CheckRemoval request (a direct bool
  /// write composes with a BBV request the same way withClassCache does).
  CheckRemovalBackend effectiveCheckRemoval() const {
    if (ClassCacheEnabled)
      return bbvOn() ? CheckRemovalBackend::Both
                     : CheckRemovalBackend::ClassCache;
    return bbvOn() ? CheckRemovalBackend::Bbv : CheckRemovalBackend::None;
  }

  /// Tiering thresholds.
  uint32_t HotInvocationThreshold = 6;
  uint32_t HotLoopThreshold = 1000;
  /// Deopts of one function before optimization is disabled for it.
  uint32_t MaxDeoptsPerFunction = 8;

  /// Per-request resource budgets (service mode; all-zero = off).
  /// Excluded from config fingerprints like Trace: with no limit hit a
  /// budgeted run emits a byte-identical event stream.
  BudgetConfig Budget;

  /// Chaos engine: deterministic fault injection (off by default).
  FaultConfig Faults;
  /// Run the InvariantAuditor at deopt and tier-up boundaries.
  bool AuditInvariants = false;

  /// Structured trace recording (off by default). Observational: never
  /// perturbs the simulation and is excluded from config fingerprints.
  TraceConfig Trace;
  /// Maintain the named counter/histogram registry (off by default;
  /// observational, same contract as Trace).
  bool MetricsEnabled = false;

  /// Warm profile state captured by Engine::snapshotProfile() to restore
  /// at construction (null = cold start). Shared, immutable bytes: a pool
  /// hands the same snapshot to many replicas. Excluded from config
  /// fingerprints — the snapshot itself embeds the fingerprint it was
  /// taken under and restore validates it.
  std::shared_ptr<const std::vector<uint8_t>> ProfileSnapshot;

  /// Carry per-function profiles (type feedback, hotness, BBV seeds)
  /// across load() boundaries when the next module hashes identically —
  /// the warm-replica contract (off by default: a plain engine's reload
  /// behaviour is unchanged). Snapshot capture/restore implies it; both
  /// sides of an equivalence comparison must agree on it, so it is
  /// excluded from fingerprints like Trace.
  bool ProfilePersistence = false;

  /// Host-side dispatch strategy (see DispatchMode above). Switch by
  /// default: on current deep-indirect-predictor hosts the single switch
  /// dispatch measures faster than replicated computed gotos (DESIGN.md
  /// §4.6); Fused trades dispatches for superinstructions (§4.8).
  DispatchMode Dispatch = DispatchMode::Switch;
  /// Ablation mask over the fusion pattern table (bit i enables pattern i,
  /// see src/jit/FusionPass.h). Only consulted in Fused mode.
  uint32_t FusedPatternMask = ~0u;
  /// Record the dynamic opcode-adjacency histogram in the OptIR executor
  /// (host-side observation feeding `ccjs --op-hist`; off by default).
  bool OpHistEnabled = false;

  HwConfig Hw;
};

/// One recorded BBV block-version materialization: enough to replay
/// bbvSelectVersion deterministically after a recompile (profile
/// persistence / warm start). See DESIGN.md §4.11.
struct BbvSeed {
  uint32_t BlockIdx = 0;
  std::vector<uint32_t> EntryTags;
};

/// Per-function runtime metadata.
struct FunctionInfo {
  const BytecodeFunction *Fn = nullptr;
  FeedbackVector Feedback;
  uint32_t InvocationCount = 0;
  uint32_t BackEdgeTrips = 0;
  uint32_t DeoptCount = 0;
  bool OptDisabled = false;
  /// Entry contexts whose block versions materialized in this function's
  /// current optimized code, in materialization order. Only maintained
  /// under Config.ProfilePersistence; replayed after each compile.
  std::vector<BbvSeed> BbvSeeds;
  /// Optimized code, owned by the engine; valid only while OptValid.
  OptCode *Opt = nullptr;
  bool OptValid = false;
  /// Materialized constant pool (heap values for the ConstEntries).
  std::vector<Value> ConstPool;
  bool ConstsMaterialized = false;
};

struct VMState {
  explicit VMState(const EngineConfig &Config)
      : Config(Config), Mem(1u << 22), Shapes(), Heap_(Mem, Shapes, Names),
        CList(Mem), CCache(CList, Config.Hw.ClassCacheEntries,
                           Config.Hw.ClassCacheWays),
        Ctx(this->Config.Hw, &CCache) {
    if (this->Config.Trace.Enabled) {
      TraceRec = std::make_unique<TraceRecorder>(this->Config.Trace);
      // Timestamps are simulated cycles, so traces are deterministic.
      TraceRec->setClock([this] { return Ctx.totalCycles(); });
      Ctx.setTrace(TraceRec.get());
      Shapes.setTrace(TraceRec.get());
      Tracer = std::make_unique<EngineTracer>(*TraceRec);
      Observers.push_back(Tracer.get());
    }
    if (this->Config.MetricsEnabled) {
      Metrics = std::make_unique<MetricsRegistry>();
      Shapes.setMetrics(Metrics.get());
    }
    if (this->Config.Faults.Enabled) {
      FaultInj = std::make_unique<FaultInjector>(this->Config.Faults);
      CCache.setFaultInjector(FaultInj.get());
      Heap_.setFaultInjector(FaultInj.get());
      FaultInj->setTripHook([this](const FaultTrip &Trip) {
        if (Metrics)
          ++Metrics->counter("fault_trips");
        notifyFaultTrip(Trip);
      });
    }
    if (this->Config.AuditInvariants) {
      Auditor = std::make_unique<InvariantAuditor>();
      Observers.push_back(Auditor.get());
    }
    BudgetArmed = this->Config.Budget.any();
  }

  EngineConfig Config;
  StringInterner Names;
  SimMemory Mem;
  ShapeTable Shapes;
  Heap Heap_;
  TypeProfiler Profiler;
  ClassList CList;
  ClassCache CCache;
  ExecContext Ctx;

  /// Chaos engine (null unless Config.Faults.Enabled). Hot paths test the
  /// pointer and nothing else, so the fault-off cost is a branch on the
  /// host — no simulated events.
  std::unique_ptr<FaultInjector> FaultInj;
  /// Invariant auditor (null unless Config.AuditInvariants); registered as
  /// an EngineObserver so it audits at deopt and tier-up boundaries.
  std::unique_ptr<InvariantAuditor> Auditor;
  /// Trace ring (null unless Config.Trace.Enabled) and its observer
  /// adapter. Same zero-cost-when-off contract as the FaultInjector.
  std::unique_ptr<TraceRecorder> TraceRec;
  std::unique_ptr<EngineTracer> Tracer;
  /// Metrics registry (null unless Config.MetricsEnabled).
  std::unique_ptr<MetricsRegistry> Metrics;
  /// Dynamic opcode-adjacency histogram for the OptIR executor (null
  /// unless Config.OpHistEnabled; constructed by the engine, which knows
  /// the opcode count). Host-side observation only — recording it emits
  /// no simulated events.
  std::unique_ptr<PairHistogram> OpHist;
  /// Host-side dispatch accounting for the OptIR executor: dispatches
  /// actually performed, and dispatches a superinstruction absorbed
  /// (flushed by each executor on frame exit; zeroed by
  /// Engine::resetStats). Reported through `host.`-prefixed metrics and
  /// the bench host-measurement block, never through simulated stats.
  uint64_t HostDispatches = 0;
  uint64_t HostFusedSaved = 0;
  /// Registered event observers, notified in registration order. The
  /// engine-owned tracer and auditor come first; Engine::addObserver
  /// appends user observers.
  std::vector<EngineObserver *> Observers;

  BytecodeModule Module;
  std::vector<FunctionInfo> Funcs;

  /// Globals live in simulated memory as tagged values.
  uint64_t GlobalsAddr = 0;
  uint32_t NumGlobals = 0;

  /// Deterministic Math.random state.
  uint64_t RandomState = 0x9E3779B97F4A7C15ull;

  /// Number of optimizing-tier compilations performed.
  uint64_t OptCompiles = 0;

  /// Runtime error handling: execution unwinds when Halted.
  bool Halted = false;
  std::string Error;

  /// True when any per-request budget limit is configured (cached so the
  /// safepoints pay one bool test when budgets are off — the FaultInjector
  /// discipline). Set once in the constructor; Config is immutable.
  bool BudgetArmed = false;
  /// Latched when a budget trips, so callers can tell a BudgetExceeded
  /// halt from an ordinary runtime error without parsing the message.
  bool BudgetTripped = false;
  BudgetKind BudgetTrippedKind = BudgetKind::Instructions;
  /// Consumption baselines: budgets meter usage since the last rebase
  /// (request start), not since engine construction, so a pooled engine's
  /// warm history never counts against the current request.
  uint64_t BudgetBaseInstrs = 0;
  uint64_t BudgetBaseHeapBytes = 0;

  /// Service-mode graceful degradation: while pinned, dispatch neither
  /// tiers up nor enters existing optimized code — every call runs in the
  /// baseline interpreter (cheap, predictable). Host-side knob owned by
  /// the pool; not part of EngineConfig or fingerprints.
  bool TierPinned = false;

  /// True while compileOptimized replays recorded BBV seeds; suppresses
  /// re-recording them (the replayed selection must not append duplicates).
  bool BbvReplaying = false;

  /// One function's persisted profile (Config.ProfilePersistence): the
  /// state load() would otherwise reset. OptIR is deliberately absent —
  /// it is recompiled deterministically from this.
  struct FunctionProfile {
    std::vector<SiteFeedback> Feedback;
    uint32_t InvocationCount = 0;
    uint32_t BackEdgeTrips = 0;
    uint32_t DeoptCount = 0;
    bool OptDisabled = false;
    std::vector<BbvSeed> BbvSeeds;
  };
  /// Module-keyed pending profile: captured from the outgoing module at
  /// load() (or seeded by snapshot restore) and installed into the next
  /// module's FunctionInfos when its hash matches.
  struct ModuleProfile {
    uint64_t ModuleHash = 0;
    std::vector<FunctionProfile> PerFunction; // Indexed by function index.
  };
  ModuleProfile PendingProfile;

  /// print() output (benchmarks verify checksums through it).
  std::string Output;
  /// When true, print() also writes to stdout.
  bool EchoOutput = false;

  /// Call depth guard. Sanitizer builds inflate native frames severalfold,
  /// so the guarded depth shrinks to trip before the real stack does.
  uint32_t CallDepth = 0;
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CCJS_ASAN_ENABLED 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define CCJS_ASAN_ENABLED 1
#endif
#ifdef CCJS_ASAN_ENABLED
  static constexpr uint32_t MaxCallDepth = 800;
#elif !defined(__OPTIMIZE__)
  // -O0 interpreter/executor frames measure ~4-5 KB each (vs ~1 KB
  // optimized): 4000 of them need ~16 MB and blow the default 8 MB
  // thread stack before the guard trips.
  static constexpr uint32_t MaxCallDepth = 1200;
#else
  static constexpr uint32_t MaxCallDepth = 4000;
#endif

  /// Optimized code replaced while activations of it may still be on the
  /// C++ stack (a recursive function re-tiering mid-recursion). Deleting
  /// eagerly would free code an outer frame is executing; retired code is
  /// reclaimed at the next top-level quiescent point instead.
  std::vector<OptCode *> RetiredOpt;

  //===--------------------------------------------------------------------===//
  // Tier dispatch hooks (installed by the engine)
  //===--------------------------------------------------------------------===//

  Value (*Invoke)(VMState &, uint32_t FuncIndex, Value ThisV,
                  const Value *Args, uint32_t Argc) = nullptr;
  Value (*InterpretFrom)(VMState &, uint32_t FuncIndex, Value ThisV,
                         std::vector<Value> &&Locals,
                         std::vector<Value> &&Stack, uint32_t Pc) = nullptr;
  Value (*CallBuiltinFn)(VMState &, uint32_t BuiltinIdx, Value ThisV,
                         const Value *Args, uint32_t Argc) = nullptr;
  /// Runtime service invoked when a profiling store cleared a ValidMap bit:
  /// propagates the invalidation to descendant classes and deoptimizes
  /// dependent functions (the HW exception routine of section 4.2.2).
  /// A *service*, not a notification — observers watch it through
  /// EngineObserver::onInvalidation, which the service dispatches after
  /// the walk completes.
  void (*InvalidationService)(VMState &, uint8_t ClassId, uint8_t Line,
                              uint8_t Pos) = nullptr;
  /// Generic (megamorphic) method-call dispatch shared with the baseline
  /// tier's semantics.
  Value (*GenericCallMethod)(VMState &, Value Receiver, uint32_t Name,
                             const Value *Args, uint32_t Argc) = nullptr;

  //===--------------------------------------------------------------------===//
  // Event notification (EngineObserver fan-out)
  //===--------------------------------------------------------------------===//

  void addObserver(EngineObserver *O) { Observers.push_back(O); }
  void removeObserver(EngineObserver *O) {
    Observers.erase(std::remove(Observers.begin(), Observers.end(), O),
                    Observers.end());
  }

  // Notification sites pay one empty-vector test when nobody listens; the
  // engine finishes the event's bookkeeping before notifying.
  void notifyDeopt(const DeoptEvent &E) {
    for (EngineObserver *O : Observers)
      O->onDeopt(*this, E);
  }
  void notifyTierUp(const TierUpEvent &E) {
    for (EngineObserver *O : Observers)
      O->onTierUp(*this, E);
  }
  void notifyInvalidation(const InvalidationEvent &E) {
    for (EngineObserver *O : Observers)
      O->onInvalidation(*this, E);
  }
  void notifyFaultTrip(const FaultTrip &Trip) {
    for (EngineObserver *O : Observers)
      O->onFaultTrip(*this, Trip);
  }
  void notifyBudgetExceeded(const BudgetEvent &E) {
    for (EngineObserver *O : Observers)
      O->onBudgetExceeded(*this, E);
  }
  void notifyBbvSpecialize(const BbvSpecializeEvent &E) {
    for (EngineObserver *O : Observers)
      O->onBbvSpecialize(*this, E);
  }

  void halt(std::string Msg) {
    if (Halted)
      return;
    Halted = true;
    Error = std::move(Msg);
  }

  //===--------------------------------------------------------------------===//
  // Per-request resource budgets (service mode)
  //===--------------------------------------------------------------------===//

  /// Error-message prefix of every budget halt; callers that cannot see
  /// BudgetTripped (CLI exit paths) match on it.
  static constexpr const char *BudgetErrorPrefix = "BudgetExceeded";

  uint64_t budgetInstrsUsed() const {
    uint64_t T = Ctx.instrs().total();
    // resetStats() may zero the counters under a live baseline; meter
    // from zero then rather than wrapping.
    return T >= BudgetBaseInstrs ? T - BudgetBaseInstrs : T;
  }
  uint64_t budgetHeapBytesUsed() const {
    uint64_t B = Mem.bytesAllocated();
    return B >= BudgetBaseHeapBytes ? B - BudgetBaseHeapBytes : B;
  }

  /// Restarts budget metering from the current counters and clears the
  /// trip latch. Called at engine construction, load() and request start.
  void rebaseBudget() {
    BudgetBaseInstrs = Ctx.instrs().total();
    BudgetBaseHeapBytes = Mem.bytesAllocated();
    BudgetTripped = false;
  }

  /// Safepoint body: tests every configured limit and halts with a
  /// BudgetExceeded error on the first one exceeded. Returns true when it
  /// tripped (execution must unwind). Host-side only: charges no simulated
  /// events, so a budgeted run that never trips is byte-identical to a
  /// budgets-off run. Callers gate on BudgetArmed so budgets-off pays one
  /// bool test.
  bool checkBudgetAt(BudgetSafepoint SP) {
    const BudgetConfig &B = Config.Budget;
    BudgetKind Kind;
    uint64_t Used, Limit;
    if (B.MaxInstructions && budgetInstrsUsed() > B.MaxInstructions) {
      Kind = BudgetKind::Instructions;
      Used = budgetInstrsUsed();
      Limit = B.MaxInstructions;
    } else if (B.MaxHeapBytes && budgetHeapBytesUsed() > B.MaxHeapBytes) {
      Kind = BudgetKind::HeapBytes;
      Used = budgetHeapBytesUsed();
      Limit = B.MaxHeapBytes;
    } else if (B.MaxCallDepth && CallDepth > B.MaxCallDepth) {
      Kind = BudgetKind::CallDepth;
      Used = CallDepth;
      Limit = B.MaxCallDepth;
    } else {
      return false;
    }
    BudgetTripped = true;
    BudgetTrippedKind = Kind;
    halt(std::string(BudgetErrorPrefix) + ": " + budgetKindName(Kind) +
         " used=" + std::to_string(Used) + " limit=" + std::to_string(Limit) +
         " (safepoint=" + budgetSafepointName(SP) + ")");
    if (Metrics) {
      ++Metrics->counter("budget_exceeded");
      ++Metrics->counter(std::string("budget.") + budgetKindName(Kind));
    }
    notifyBudgetExceeded(BudgetEvent{Kind, SP, Used, Limit});
    return true;
  }

  /// Reads/writes a global variable's tagged value.
  Value readGlobal(uint32_t Index) const {
    return Value::fromBits(Mem.read64(GlobalsAddr + uint64_t(Index) * 8));
  }
  void writeGlobal(uint32_t Index, Value V) {
    Mem.write64(GlobalsAddr + uint64_t(Index) * 8, V.bits());
  }
  uint64_t globalAddr(uint32_t Index) const {
    return GlobalsAddr + uint64_t(Index) * 8;
  }

  /// Deterministic xorshift for Math.random.
  double nextRandom() {
    RandomState ^= RandomState << 13;
    RandomState ^= RandomState >> 7;
    RandomState ^= RandomState << 17;
    return static_cast<double>(RandomState >> 11) /
           static_cast<double>(1ull << 53);
  }
};

} // namespace ccjs

#endif // CCJS_VM_VMSTATE_H
