//===- vm/VMState.h - Shared VM state ---------------------------*- C++ -*-===//
///
/// \file
/// The state shared by the two execution tiers and the engine facade:
/// heap, shapes, globals, the per-function metadata (feedback, optimized
/// code, hotness), the hardware models, and the tier-dispatch hooks.
///
/// The hooks (Invoke, InterpretFrom, CallBuiltin, OnClassCacheInvalidation)
/// are function pointers installed by the engine so the interpreter and the
/// OptIR executor can call across tiers without a link-time cycle.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_VMSTATE_H
#define CCJS_VM_VMSTATE_H

#include "bytecode/Bytecode.h"
#include "hw/ClassCache.h"
#include "hw/ClassList.h"
#include "hw/ExecContext.h"
#include "hw/HwConfig.h"
#include "runtime/Heap.h"
#include "runtime/TypeProfiler.h"
#include "support/FaultInjector.h"
#include "support/StringInterner.h"
#include "vm/Feedback.h"
#include "vm/InvariantAuditor.h"

#include <memory>
#include <string>
#include <vector>

namespace ccjs {

struct OptCode; // Defined by the jit library; owned by the engine.

/// Engine configuration: which parts of the paper's mechanism are active.
struct EngineConfig {
  /// Master switch for the proposed mechanism (profiling stores, Class
  /// Cache accesses, check elision). Off = the state-of-the-art baseline.
  bool ClassCacheEnabled = false;

  // Section 4.3 optimizations, individually togglable for ablations.
  bool ElideCheckMaps = true;
  bool ElideCheckSmi = true;
  bool ElideCheckNonSmi = true;

  /// Hoist movClassIDArray out of loops (section 4.2.1.3).
  bool HoistClassIdArray = true;
  /// Number of regArrayObjectClassId registers (the paper uses 4).
  unsigned NumArrayClassRegs = 4;

  /// Model a software-only implementation (section 5.4): every profiling
  /// store pays a software lookup instead of the parallel HW access.
  bool SoftwareOnlyClassCache = false;

  /// Tiering thresholds.
  uint32_t HotInvocationThreshold = 6;
  uint32_t HotLoopThreshold = 1000;
  /// Deopts of one function before optimization is disabled for it.
  uint32_t MaxDeoptsPerFunction = 8;

  /// Chaos engine: deterministic fault injection (off by default).
  FaultConfig Faults;
  /// Run the InvariantAuditor at deopt and tier-up boundaries.
  bool AuditInvariants = false;

  HwConfig Hw;
};

/// Per-function runtime metadata.
struct FunctionInfo {
  const BytecodeFunction *Fn = nullptr;
  FeedbackVector Feedback;
  uint32_t InvocationCount = 0;
  uint32_t BackEdgeTrips = 0;
  uint32_t DeoptCount = 0;
  bool OptDisabled = false;
  /// Optimized code, owned by the engine; valid only while OptValid.
  OptCode *Opt = nullptr;
  bool OptValid = false;
  /// Materialized constant pool (heap values for the ConstEntries).
  std::vector<Value> ConstPool;
  bool ConstsMaterialized = false;
};

/// One deoptimization, reported through the VMState::OnDeopt trace hook.
struct DeoptEvent {
  uint32_t FuncIndex;
  /// OptIR index of the op that deoptimized.
  uint32_t IrIndex;
  /// Bytecode pc execution resumes at in the baseline tier.
  uint32_t ResumeBcPc;
  /// True for speculation failures (counted against MaxDeoptsPerFunction),
  /// false for planned DeoptOp fallbacks.
  bool Failure;
  /// The function's failure-deopt count before this event.
  uint32_t PriorDeoptCount;
};

struct VMState {
  explicit VMState(const EngineConfig &Config)
      : Config(Config), Mem(1u << 22), Shapes(), Heap_(Mem, Shapes, Names),
        CList(Mem), CCache(CList, Config.Hw.ClassCacheEntries,
                           Config.Hw.ClassCacheWays),
        Ctx(this->Config.Hw, &CCache) {
    if (this->Config.Faults.Enabled) {
      FaultInj = std::make_unique<FaultInjector>(this->Config.Faults);
      CCache.setFaultInjector(FaultInj.get());
      Heap_.setFaultInjector(FaultInj.get());
    }
    if (this->Config.AuditInvariants)
      Auditor = std::make_unique<InvariantAuditor>();
  }

  EngineConfig Config;
  StringInterner Names;
  SimMemory Mem;
  ShapeTable Shapes;
  Heap Heap_;
  TypeProfiler Profiler;
  ClassList CList;
  ClassCache CCache;
  ExecContext Ctx;

  /// Chaos engine (null unless Config.Faults.Enabled). Hot paths test the
  /// pointer and nothing else, so the fault-off cost is a branch on the
  /// host — no simulated events.
  std::unique_ptr<FaultInjector> FaultInj;
  /// Invariant auditor (null unless Config.AuditInvariants).
  std::unique_ptr<InvariantAuditor> Auditor;

  BytecodeModule Module;
  std::vector<FunctionInfo> Funcs;

  /// Globals live in simulated memory as tagged values.
  uint64_t GlobalsAddr = 0;
  uint32_t NumGlobals = 0;

  /// Deterministic Math.random state.
  uint64_t RandomState = 0x9E3779B97F4A7C15ull;

  /// Number of optimizing-tier compilations performed.
  uint64_t OptCompiles = 0;

  /// Runtime error handling: execution unwinds when Halted.
  bool Halted = false;
  std::string Error;

  /// print() output (benchmarks verify checksums through it).
  std::string Output;
  /// When true, print() also writes to stdout.
  bool EchoOutput = false;

  /// Call depth guard. Sanitizer builds inflate native frames severalfold,
  /// so the guarded depth shrinks to trip before the real stack does.
  uint32_t CallDepth = 0;
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CCJS_ASAN_ENABLED 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define CCJS_ASAN_ENABLED 1
#endif
#ifdef CCJS_ASAN_ENABLED
  static constexpr uint32_t MaxCallDepth = 800;
#else
  static constexpr uint32_t MaxCallDepth = 4000;
#endif

  /// Optimized code replaced while activations of it may still be on the
  /// C++ stack (a recursive function re-tiering mid-recursion). Deleting
  /// eagerly would free code an outer frame is executing; retired code is
  /// reclaimed at the next top-level quiescent point instead.
  std::vector<OptCode *> RetiredOpt;

  //===--------------------------------------------------------------------===//
  // Tier dispatch hooks (installed by the engine)
  //===--------------------------------------------------------------------===//

  Value (*Invoke)(VMState &, uint32_t FuncIndex, Value ThisV,
                  const Value *Args, uint32_t Argc) = nullptr;
  Value (*InterpretFrom)(VMState &, uint32_t FuncIndex, Value ThisV,
                         std::vector<Value> &&Locals,
                         std::vector<Value> &&Stack, uint32_t Pc) = nullptr;
  Value (*CallBuiltinFn)(VMState &, uint32_t BuiltinIdx, Value ThisV,
                         const Value *Args, uint32_t Argc) = nullptr;
  /// Runtime service invoked when a profiling store cleared a ValidMap bit:
  /// propagates the invalidation to descendant classes and deoptimizes
  /// dependent functions (the HW exception routine of section 4.2.2).
  void (*OnClassCacheInvalidation)(VMState &, uint8_t ClassId, uint8_t Line,
                                   uint8_t Pos) = nullptr;
  /// Generic (megamorphic) method-call dispatch shared with the baseline
  /// tier's semantics.
  Value (*GenericCallMethod)(VMState &, Value Receiver, uint32_t Name,
                             const Value *Args, uint32_t Argc) = nullptr;
  /// Deopt trace hook: invoked on every deoptimization when installed.
  /// Replaces the per-deopt getenv("CCJS_DEBUG_DEOPT") lookup — the engine
  /// installs a stderr printer when the env var is set (checked once per
  /// process), and the chaos harness installs its own capture.
  void (*OnDeopt)(VMState &, const DeoptEvent &) = nullptr;

  void halt(std::string Msg) {
    if (Halted)
      return;
    Halted = true;
    Error = std::move(Msg);
  }

  /// Reads/writes a global variable's tagged value.
  Value readGlobal(uint32_t Index) const {
    return Value::fromBits(Mem.read64(GlobalsAddr + uint64_t(Index) * 8));
  }
  void writeGlobal(uint32_t Index, Value V) {
    Mem.write64(GlobalsAddr + uint64_t(Index) * 8, V.bits());
  }
  uint64_t globalAddr(uint32_t Index) const {
    return GlobalsAddr + uint64_t(Index) * 8;
  }

  /// Deterministic xorshift for Math.random.
  double nextRandom() {
    RandomState ^= RandomState << 13;
    RandomState ^= RandomState >> 7;
    RandomState ^= RandomState << 17;
    return static_cast<double>(RandomState >> 11) /
           static_cast<double>(1ull << 53);
  }
};

} // namespace ccjs

#endif // CCJS_VM_VMSTATE_H
