//===- vm/EngineObserver.h - Unified engine event observer ------*- C++ -*-===//
///
/// \file
/// The one way to watch the engine: an EngineObserver receives the
/// speculation machinery's boundary events — tier-ups, deopts, Class Cache
/// slot invalidations and chaos fault trips — through virtual methods with
/// no-op defaults. Observers are registered with Engine::addObserver (the
/// engine's own tracer and invariant auditor are observers too) and are
/// invoked synchronously at the event site, after the engine finished the
/// event's bookkeeping, in registration order.
///
/// This replaces the former ad-hoc VMState::OnDeopt /
/// OnClassCacheInvalidation callback fields: notification is an interface,
/// not a function-pointer slot, so any number of listeners can coexist
/// (tracer + auditor + a test capture) without stealing each other's hook.
///
/// Observers observe: they must not mutate VM state or run JS. Cost when
/// nobody listens is one empty-vector test per event site — the
/// FaultInjector discipline; no simulated events are charged either way.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_ENGINEOBSERVER_H
#define CCJS_VM_ENGINEOBSERVER_H

#include "support/FaultInjector.h"
#include "support/Trace.h"

#include <cstdint>

namespace ccjs {

struct VMState;

/// One deoptimization: optimized code bailed out to the baseline tier.
struct DeoptEvent {
  uint32_t FuncIndex;
  /// OptIR index of the op that deoptimized.
  uint32_t IrIndex;
  /// Bytecode pc execution resumes at in the baseline tier.
  uint32_t ResumeBcPc;
  /// True for speculation failures (counted against MaxDeoptsPerFunction),
  /// false for planned fallbacks and invalidated-code exits.
  bool Failure;
  /// The function's failure-deopt count before this event.
  uint32_t PriorDeoptCount;
  /// Why the code bailed out.
  DeoptReason Reason;
};

/// One tier-up: a hot function was handed to the optimizing compiler.
struct TierUpEvent {
  uint32_t FuncIndex;
  /// Invocation count that crossed the threshold.
  uint32_t InvocationCount;
  /// False when compilation bailed (the function stays in the baseline).
  bool Succeeded;
  /// Checks elided in the compiled code (0 when Succeeded is false).
  uint32_t ChecksElidedClassCache;
  uint32_t ChecksElidedClassic;
};

/// One Class Cache slot invalidation, after the descendant walk completed.
struct InvalidationEvent {
  uint8_t ClassId;
  uint8_t Line;
  uint8_t Pos;
  /// (class, line) entries whose memory image the walk rewrote.
  uint32_t TouchedEntries;
  /// Dependent optimized functions invalidated by the walk.
  uint32_t DeoptimizedFunctions;
};

/// Which per-request resource budget a service-mode engine exhausted.
enum class BudgetKind : uint8_t { Instructions, HeapBytes, CallDepth };

inline const char *budgetKindName(BudgetKind K) {
  switch (K) {
  case BudgetKind::Instructions:
    return "instructions";
  case BudgetKind::HeapBytes:
    return "heap-bytes";
  case BudgetKind::CallDepth:
    return "call-depth";
  }
  return "?";
}

/// Where a budget check runs. Safepoints sit on boundaries the engine
/// already instruments, so the checks read maintained counters instead of
/// adding new accounting.
enum class BudgetSafepoint : uint8_t { LoopBackEdge, TierUp, CallEntry };

inline const char *budgetSafepointName(BudgetSafepoint S) {
  switch (S) {
  case BudgetSafepoint::LoopBackEdge:
    return "loop-backedge";
  case BudgetSafepoint::TierUp:
    return "tier-up";
  case BudgetSafepoint::CallEntry:
    return "call-entry";
  }
  return "?";
}

/// One budget exhaustion: a safepoint found a per-request resource budget
/// exceeded and halted the VM with a BudgetExceeded error. The engine
/// stays reusable (the EngineReuseTest contract): the next load() starts
/// a clean program on the warm profile state.
struct BudgetEvent {
  BudgetKind Kind;
  BudgetSafepoint Safepoint;
  /// Amount consumed since the budget was last rebased.
  uint64_t Used;
  /// The configured limit the consumption exceeded.
  uint64_t Limit;
};

/// One lazy-BBV block specialization: an OptIR block was entered with a
/// type context it had no version for, and a new version (or the generic
/// fallback, once the cap is hit) was materialized.
struct BbvSpecializeEvent {
  uint32_t FuncIndex;
  /// OptIR index of the block leader.
  uint32_t BlockStart;
  /// Version ordinal within the block (0-based), or the cap when the
  /// generic fallback was taken.
  uint32_t VersionIndex;
  /// Checks this version's entry context proved away.
  uint32_t ChecksElided;
  /// True when the version cap forced the generic (no-elision) version.
  bool Generic;
};

class EngineObserver {
public:
  virtual ~EngineObserver() = default;

  virtual void onDeopt(VMState &VM, const DeoptEvent &E) {
    (void)VM;
    (void)E;
  }
  virtual void onTierUp(VMState &VM, const TierUpEvent &E) {
    (void)VM;
    (void)E;
  }
  virtual void onInvalidation(VMState &VM, const InvalidationEvent &E) {
    (void)VM;
    (void)E;
  }
  virtual void onFaultTrip(VMState &VM, const FaultTrip &Trip) {
    (void)VM;
    (void)Trip;
  }
  virtual void onBudgetExceeded(VMState &VM, const BudgetEvent &E) {
    (void)VM;
    (void)E;
  }
  virtual void onBbvSpecialize(VMState &VM, const BbvSpecializeEvent &E) {
    (void)VM;
    (void)E;
  }
};

} // namespace ccjs

#endif // CCJS_VM_ENGINEOBSERVER_H
