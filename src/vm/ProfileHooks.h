//===- vm/ProfileHooks.h - Store profiling helpers ---------------*- C++ -*-===//
///
/// \file
/// The Class Cache side of property and elements stores, shared by both
/// tiers. Every store that writes an object property or an elements array
/// is encoded as a movStoreClassCache / movStoreClassCacheArray instruction
/// (preceded by movClassID / movClassIDArray), which profiles the stored
/// value's class and verifies the compiler's monomorphism assumptions
/// (paper section 4.2).
///
/// The host-side TypeProfiler is updated unconditionally (it feeds the
/// paper's motivation figures); the Class Cache traffic is only modeled
/// when the mechanism is enabled.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_PROFILEHOOKS_H
#define CCJS_VM_PROFILEHOOKS_H

#include "runtime/Layout.h"
#include "vm/VMState.h"

namespace ccjs {

inline uint32_t profilerClassOf(VMState &VM, Value V) {
  return V.isSmi() ? TypeProfiler::SmiClass : VM.Heap_.shapeOfValue(V);
}

/// Emits the movClassID instruction that loads the stored value's ClassID
/// into regObjectClassId: a header load for heap values, one ALU op for
/// SMIs (the tag test plus immediate move).
inline void emitMovClassId(VMState &VM, InstrCategory Cat, Value V) {
  if (V.isPointer())
    VM.Ctx.load(Cat, V.asPointer());
  else
    VM.Ctx.alu(Cat, 1);
}

/// Runs the Class Cache protocol for a store request and dispatches the
/// invalidation/exception service when needed.
inline void runClassCacheRequest(VMState &VM, InstrCategory Cat,
                                 uint8_t ContainerClass, uint8_t Line,
                                 uint8_t Pos, uint8_t ValueClass) {
  if (VM.Config.SoftwareOnlyClassCache) {
    // Section 5.4: a pure software implementation performs the whole
    // protocol with ordinary instructions on every store — compute the
    // entry index, load the entry, compare the profiled class, update the
    // maps, store the entry back.
    VM.Ctx.alu(InstrCategory::RestOfCode, 25);
    VM.Ctx.load(InstrCategory::RestOfCode,
                VM.CList.entryAddr(ContainerClass, Line));
    VM.Ctx.store(InstrCategory::RestOfCode,
                 VM.CList.entryAddr(ContainerClass, Line));
  }
  ClassCacheResult R =
      VM.Ctx.classCacheStore(Cat, ContainerClass, Line, Pos, ValueClass);
  if (R.ValidCleared && VM.InvalidationService)
    VM.InvalidationService(VM, ContainerClass, Line, Pos);
  else if (VM.FaultInj && VM.InvalidationService &&
           VM.FaultInj->fire(FaultPoint::SpuriousInvalidation))
    // Chaos: run the full invalidation service (ValidMap clear, descendant
    // propagation, dependent deopts) for a slot that did NOT mismatch.
    // Invalidation is always a safe over-approximation — the engine only
    // loses elision opportunities — so any output change is a bug.
    VM.InvalidationService(VM, ContainerClass, Line, Pos);
}

/// Profiles a property store. \p HolderShape is the object's shape *after*
/// the store (the destination shape for transitioning stores); \p InObject
/// is false for overflow-property slots, which the mechanism does not
/// track.
inline void profilePropertyStore(VMState &VM, InstrCategory Cat,
                                 ShapeId HolderShape, uint32_t Slot, Value V,
                                 bool InObject) {
  VM.Profiler.recordPropertyStore(HolderShape, Slot, profilerClassOf(VM, V));
  if (!VM.Config.ClassCacheEnabled)
    return;
  const Shape &S = VM.Shapes.get(HolderShape);
  if (S.ClassId >= UntrackedClassId)
    return;
  if (!InObject) {
    // Overflow-property stores bypass the Class Cache (their cache lines
    // carry no ClassID tag bytes), so the runtime conservatively
    // invalidates the slot's profile to keep elision sound.
    layout::SlotLocation Loc = layout::slotLocation(Slot);
    if (VM.InvalidationService)
      VM.InvalidationService(VM, S.ClassId, Loc.Line, Loc.Pos);
    return;
  }
  emitMovClassId(VM, Cat, V);
  layout::SlotLocation Loc = layout::slotLocation(Slot);
  runClassCacheRequest(VM, Cat, S.ClassId, Loc.Line, Loc.Pos,
                       VM.Heap_.classIdOfValue(V));
}

/// Profiles an elements-array store: position 2 (the elements pointer) of
/// line 0 of the containing object's class. \p ArrayClassIdLoaded is true
/// when a hoisted movClassIDArray already loaded the container's ClassID
/// into a regArrayObjectClassId register.
inline void profileElementsStore(VMState &VM, InstrCategory Cat,
                                 ShapeId ContainerShape, uint64_t ObjAddr,
                                 Value V, bool ArrayClassIdLoaded) {
  VM.Profiler.recordElementStore(ContainerShape, profilerClassOf(VM, V));
  if (!VM.Config.ClassCacheEnabled)
    return;
  const Shape &S = VM.Shapes.get(ContainerShape);
  if (S.ClassId >= UntrackedClassId)
    return;
  if (!ArrayClassIdLoaded)
    VM.Ctx.load(Cat, ObjAddr); // movClassIDArray: container header load.
  emitMovClassId(VM, Cat, V);
  runClassCacheRequest(VM, Cat, S.ClassId, 0, layout::ElementsPointerPos,
                       VM.Heap_.classIdOfValue(V));
}

} // namespace ccjs

#endif // CCJS_VM_PROFILEHOOKS_H
