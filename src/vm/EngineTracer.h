//===- vm/EngineTracer.h - Observer -> trace ring adapter -------*- C++ -*-===//
///
/// \file
/// The engine's own EngineObserver: translates observer events into
/// TraceRecorder records (the recorder itself is engine-agnostic and lives
/// in support/). Constructed by VMState when tracing is enabled and
/// registered as the first observer, so trace events are recorded before
/// any user observer runs.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_ENGINETRACER_H
#define CCJS_VM_ENGINETRACER_H

#include "support/Trace.h"
#include "vm/EngineObserver.h"

namespace ccjs {

class EngineTracer : public EngineObserver {
public:
  explicit EngineTracer(TraceRecorder &T) : T(T) {}

  void onTierUp(VMState &, const TierUpEvent &E) override {
    T.record(TraceEventKind::TierUp, E.Succeeded ? 1 : 0, 0, 0, E.FuncIndex,
             E.InvocationCount, E.ChecksElidedClassCache);
  }
  void onDeopt(VMState &, const DeoptEvent &E) override {
    T.record(TraceEventKind::Deopt, static_cast<uint8_t>(E.Reason),
             E.Failure ? 1 : 0,
             static_cast<uint8_t>(
                 E.PriorDeoptCount > 0xFF ? 0xFF : E.PriorDeoptCount),
             E.FuncIndex, E.IrIndex, E.ResumeBcPc);
  }
  void onInvalidation(VMState &, const InvalidationEvent &E) override {
    T.record(TraceEventKind::SlotInvalidation, E.ClassId, E.Line, E.Pos,
             E.TouchedEntries, E.DeoptimizedFunctions);
  }
  void onFaultTrip(VMState &, const FaultTrip &Trip) override {
    T.record(TraceEventKind::FaultTrip, static_cast<uint8_t>(Trip.Point), 0,
             0, static_cast<uint32_t>(Trip.Occurrence),
             static_cast<uint32_t>(Trip.Occurrence >> 32));
  }

private:
  TraceRecorder &T;
};

} // namespace ccjs

#endif // CCJS_VM_ENGINETRACER_H
