//===- vm/InvariantAuditor.h - Speculation invariant audits ----*- C++ -*-===//
///
/// \file
/// Cross-checks the speculation machinery's global invariants at deopt and
/// tier-up boundaries (the two points where the engine commits to, or backs
/// out of, elided checks). The audited invariants are the ones the paper's
/// transparency argument rests on:
///
///   1. Class Cache / Class List coherence: clean cached entries equal the
///      memory image; dirty entries are only ahead in InitMap/Props
///      profiling, never divergent in ValidMap/SpeculateMap.
///   2. SpeculateMap bits agree with the host-side FunctionLists: a set bit
///      has at least one dependent function recorded, a non-empty list has
///      its bit set — and the slot is still valid (speculation only ever
///      rests on monomorphic slots).
///   3. Descendant propagation: a ValidMap bit cleared on a parent class is
///      also cleared on every descendant class for the lines the parent
///      owns (the inherited-profile lines).
///   4. Re-optimization is bounded: DeoptCount never exceeds
///      MaxDeoptsPerFunction; reaching the bound disables optimization;
///      disabled or invalidated functions never run optimized code.
///
/// The auditor is pure observation: it reads VM state and records failures,
/// it never mutates the machine. It is only constructed when
/// EngineConfig::AuditInvariants is set, so normal runs pay nothing. It is
/// an EngineObserver — the VM registers it so the deopt and tier-up
/// boundaries reach it through the standard notification path.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_VM_INVARIANTAUDITOR_H
#define CCJS_VM_INVARIANTAUDITOR_H

#include "vm/EngineObserver.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccjs {

struct VMState;

class InvariantAuditor : public EngineObserver {
public:
  /// Runs every audit family against \p VM. \p When names the boundary
  /// ("tier-up", "deopt", "final") and \p FuncIndex the function involved;
  /// both only flavor the failure messages.
  void audit(const VMState &VM, const char *When, uint32_t FuncIndex);

  void onDeopt(VMState &VM, const DeoptEvent &E) override {
    audit(VM, "deopt", E.FuncIndex);
  }
  void onTierUp(VMState &VM, const TierUpEvent &E) override {
    audit(VM, "tier-up", E.FuncIndex);
  }

  uint64_t audits() const { return Audits; }
  uint64_t failureCount() const { return TotalFailures; }
  /// The first MaxRecorded failure messages, in detection order.
  const std::vector<std::string> &failures() const { return Failures; }

private:
  void auditSpeculationLists(const VMState &VM, const char *When);
  void auditDescendantPropagation(const VMState &VM, const char *When);
  void auditDeoptBounds(const VMState &VM, const char *When);
  void fail(std::string Msg);

  static constexpr size_t MaxRecorded = 64;

  uint64_t Audits = 0;
  uint64_t TotalFailures = 0;
  std::vector<std::string> Failures;
};

} // namespace ccjs

#endif // CCJS_VM_INVARIANTAUDITOR_H
