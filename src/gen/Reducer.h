//===- gen/Reducer.h - Greedy divergence minimizer -------------*- C++ -*-===//
///
/// \file
/// Shrinks a MiniJS program while preserving an arbitrary predicate —
/// typically "the differential oracle still reports a divergence". The
/// generator emits one statement per line with braces on their own lines,
/// so a greedy pass over deletable units converges quickly:
///
///   1. block deletion: a line together with its brace-matched extent
///      (an `if (...) {` line through its closing `}`), largest first,
///   2. single-line deletion,
///
/// repeated to a fixpoint. Every candidate is accepted only if the
/// predicate still holds on the shrunk source, so the result is sound by
/// construction: it ends in the smallest line-subset this greedy order
/// can reach, still exhibiting the original failure.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_GEN_REDUCER_H
#define CCJS_GEN_REDUCER_H

#include <functional>
#include <string>

namespace ccjs {
namespace gen {

/// Returns true when \p Source still exhibits the behavior being chased.
/// The reducer only keeps deletions under which this stays true.
using ReducePredicate = std::function<bool(const std::string &)>;

struct ReduceStats {
  unsigned Rounds = 0;
  unsigned LinesBefore = 0;
  unsigned LinesAfter = 0;
  unsigned PredicateCalls = 0;
};

/// Greedily deletes blocks and lines from \p Source while \p Keep holds.
/// \p Keep must be true of \p Source itself (otherwise Source is returned
/// unchanged). \p OutStats, when non-null, receives reduction telemetry.
std::string reduceProgram(const std::string &Source,
                          const ReducePredicate &Keep,
                          ReduceStats *OutStats = nullptr);

} // namespace gen
} // namespace ccjs

#endif // CCJS_GEN_REDUCER_H
