//===- gen/DiffOracle.h - Cross-tier differential oracle -------*- C++ -*-===//
///
/// \file
/// Runs one MiniJS program through every execution regime the engine has
/// and checks they are observationally equivalent:
///
///   * reference: the pure baseline interpreter (tier-up disabled),
///   * tiered: hot thresholds, Class Cache off (state-of-the-art config),
///   * cc: hot thresholds with the Class Cache mechanism and elisions,
///   * bbv: hot thresholds with the lazy basic-block-versioning backend
///     (--check-removal=bbv), and cc+bbv with both backends stacked,
///   * dispatch: cc (and bbv) under switch vs computed-goto and vs the
///     superinstruction-fused executor — byte-identical output, serialized
///     RunStats, metrics, and fault trip logs,
///   * chaos: cc under a small sweep of fault-injection seeds, with the
///     InvariantAuditor armed,
///   * snapshot: warm-start round trip — a fresh engine restored from a
///     parked profile snapshot (Engine::snapshotProfile) must replay the
///     next run byte-identically to the continuous engine it was cloned
///     from, and re-emit a byte-identical snapshot afterwards.
///
/// Semantic equivalence across tiers means: same halt/ok status, same
/// error message, same print() output, and the same number of hidden
/// classes (shape transitions are program semantics, not an optimization
/// artifact). Full RunStats/metrics byte-identity is only required between
/// dispatch modes of the *same* configuration, where the host-side loop is
/// the only variable.
///
/// Any disagreement, and any auditor failure, is a soundness bug in the
/// tier-up/deopt/invalidation machinery — the oracle renders a report
/// naming the tier, the seed configuration, and the first differing bytes.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_GEN_DIFFORACLE_H
#define CCJS_GEN_DIFFORACLE_H

#include <cstdint>
#include <string>

namespace ccjs {
namespace gen {

struct OracleOptions {
  /// Chaos seeds 1..ChaosSeeds are swept (0 disables the chaos tier).
  unsigned ChaosSeeds = 3;
  /// Compare switch vs computed-goto dispatch byte-for-byte (skipped
  /// automatically in builds without computed-goto support).
  bool CheckDispatch = true;
  /// Compare switch vs the superinstruction-fused executor byte-for-byte.
  /// Unlike CheckDispatch this never depends on a build feature: fused
  /// code runs on the portable switch loop.
  bool CheckFused = true;
  /// Run the lazy-BBV legs: bbv and cc+bbv semantic equivalence against
  /// the reference interpreter, plus a bbv dispatch-image comparison.
  bool CheckBbv = true;
  /// Run the warm-start round-trip legs: park a warmed profile snapshot
  /// (Engine::snapshotProfile), restore it into a fresh engine, and require
  /// the replica's next run to be byte-identical — output, serialized
  /// RunStats, metrics, and its own re-captured snapshot — to the
  /// continuous engine's. Runs for cc always and for cc+bbv when CheckBbv
  /// is on (the snapshot carries BBV version-context seeds).
  bool CheckSnapshot = true;
};

struct OracleResult {
  /// True when every tier agreed and every audit came back clean.
  bool Ok = false;
  /// True when the program failed to parse/compile — a generator bug
  /// rather than an engine divergence (still a failure for the sweep).
  bool LoadFailed = false;
  /// Human-readable description of the first few disagreements.
  std::string Report;
};

/// Runs the full cross-tier comparison on \p Source.
OracleResult runOracle(const std::string &Source,
                       const OracleOptions &Opts = OracleOptions());

} // namespace gen
} // namespace ccjs

#endif // CCJS_GEN_DIFFORACLE_H
