//===- gen/Reducer.cpp - Greedy divergence minimizer ----------------------===//

#include "gen/Reducer.h"

#include <vector>

using namespace ccjs;
using namespace ccjs::gen;

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string::npos) {
      if (Pos < S.size())
        Lines.push_back(S.substr(Pos));
      break;
    }
    Lines.push_back(S.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

std::string joinLive(const std::vector<std::string> &Lines,
                     const std::vector<bool> &Live) {
  std::string Out;
  for (size_t I = 0; I < Lines.size(); ++I)
    if (Live[I]) {
      Out += Lines[I];
      Out += '\n';
    }
  return Out;
}

/// Net brace balance of a line, ignoring brace characters inside string
/// literals (generated strings never contain escapes).
int braceDelta(const std::string &Line) {
  int Delta = 0;
  char Quote = 0;
  for (char C : Line) {
    if (Quote) {
      if (C == Quote)
        Quote = 0;
      continue;
    }
    if (C == '\'' || C == '"')
      Quote = C;
    else if (C == '{')
      ++Delta;
    else if (C == '}')
      --Delta;
  }
  return Delta;
}

/// For a line opening a block, the index of the line whose closing brace
/// rebalances it; npos when the line opens nothing or is unbalanced.
size_t blockEnd(const std::vector<std::string> &Lines,
                const std::vector<bool> &Live, size_t Start) {
  int Depth = braceDelta(Lines[Start]);
  if (Depth <= 0)
    return std::string::npos;
  for (size_t I = Start + 1; I < Lines.size(); ++I) {
    if (!Live[I])
      continue;
    Depth += braceDelta(Lines[I]);
    if (Depth <= 0)
      return I;
  }
  return std::string::npos;
}

} // namespace

std::string ccjs::gen::reduceProgram(const std::string &Source,
                                     const ReducePredicate &Keep,
                                     ReduceStats *OutStats) {
  ReduceStats Stats;
  std::vector<std::string> Lines = splitLines(Source);
  std::vector<bool> Live(Lines.size(), true);
  Stats.LinesBefore = static_cast<unsigned>(Lines.size());

  ++Stats.PredicateCalls;
  if (!Keep(Source)) {
    // The predicate does not hold on the input; nothing to minimize.
    Stats.LinesAfter = Stats.LinesBefore;
    if (OutStats)
      *OutStats = Stats;
    return Source;
  }

  auto tryErase = [&](size_t Lo, size_t Hi) {
    std::vector<bool> Trial = Live;
    for (size_t I = Lo; I <= Hi; ++I)
      Trial[I] = false;
    ++Stats.PredicateCalls;
    if (Keep(joinLive(Lines, Trial))) {
      Live = std::move(Trial);
      return true;
    }
    return false;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Stats.Rounds;
    // Pass 1: whole brace-matched blocks (header line through closer).
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (!Live[I])
        continue;
      size_t End = blockEnd(Lines, Live, I);
      if (End != std::string::npos && tryErase(I, End))
        Changed = true;
    }
    // Pass 2: individual lines (skips block headers/closers — deleting
    // either alone would unbalance braces and trivially fail to parse).
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (!Live[I] || braceDelta(Lines[I]) != 0)
        continue;
      if (tryErase(I, I))
        Changed = true;
    }
  }

  std::string Result = joinLive(Lines, Live);
  for (bool L : Live)
    Stats.LinesAfter += L ? 1u : 0u;
  if (OutStats)
    *OutStats = Stats;
  return Result;
}
