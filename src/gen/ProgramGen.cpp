//===- gen/ProgramGen.cpp - Seeded MiniJS program generator ---------------===//
///
/// Emission strategy: the program is a property graph rendered to source.
/// PolymorphismDegree constructor families share a suffix of property
/// names (s0..s{depth-1}) behind family-specific dummy prefixes (d0..),
/// so the shared names land in different slots of different hidden
/// classes — the polymorphism is structural, not cosmetic. A pool of
/// instances round-robins the families through every hot site; helper
/// functions form a DAG sized by CallGraphFanOut; element stores churn
/// kinds per ElementsKindChurn; and an edge-case pool injects the
/// deterministic nasties (NaN, negative zero, fractional indices,
/// mid-run shape breaks) that differential testing exists to catch.
///
/// Everything is derived from SplitMix64 draws in a fixed order, so the
/// same GenConfig emits byte-identical source on every platform.
///
//===----------------------------------------------------------------------===//

#include "gen/ProgramGen.h"

#include <vector>

using namespace ccjs;
using namespace ccjs::gen;

namespace {

constexpr unsigned PoolSize = 16; // Objects in the instance pool (mask 15).
constexpr unsigned ArrSize = 32;  // Elements in arr/arr2 (mask 31).

class Emitter {
public:
  explicit Emitter(const GenConfig &C)
      : C(C), R(C.Seed ^ 0xA3C59AC2F1E9D7B5ull),
        Degree(C.PolymorphismDegree ? C.PolymorphismDegree : 1),
        Depth(C.ShapeTransitionDepth ? C.ShapeTransitionDepth : 1),
        NumFns(C.NumFunctions ? C.NumFunctions : 1) {}

  std::string run();

private:
  /// Per-function emission context.
  struct FnCtx {
    std::vector<std::string> Locals; ///< Assignable numeric temps.
    std::string IntParam;            ///< Known-integer parameter ("i"/"m").
    bool HasObjParam = false;        ///< Parameter `o` holds a pool object.
    bool InMain = false;
    bool InLoop = false;  ///< Loop variable `i` is live (main's hot loop).
    unsigned FnIndex = 0; ///< Helper index (for call targets).
    unsigned BlockDepth = 0;
    bool UsedInnerLoop = false; ///< At most one nested loop per function.
  };

  void line(const std::string &S) {
    Out += S;
    Out += '\n';
  }

  std::string num(unsigned N) { return std::to_string(N); }

  /// Known-integer atom (safe as a masking operand).
  std::string intAtom(const FnCtx &F) {
    switch (R.range(3)) {
    case 0:
      return F.InLoop ? "i" : F.IntParam;
    case 1:
      return num(1 + R.range(16));
    default:
      return "(" + (F.InLoop ? std::string("i") : F.IntParam) + " + " +
             num(R.range(9)) + ")";
    }
  }

  /// Guaranteed in-bounds, non-negative element index.
  std::string idxExpr(const FnCtx &F, unsigned Mask) {
    std::string A = intAtom(F);
    if (R.chance(50)) {
      static const char *Ops[] = {" + ", " * ", " ^ "};
      A = "(" + A + Ops[R.range(3)] + intAtom(F) + ")";
    }
    return "((" + A + ") & " + num(Mask) + ")";
  }

  std::string poolRecv(const FnCtx &F) {
    return "pool[" + idxExpr(F, PoolSize - 1) + "]";
  }

  std::string sharedField() { return "s" + num(R.range(Depth)); }

  /// Receiver for a property access: the object parameter in helpers, a
  /// pool element in main.
  std::string objExpr(const FnCtx &F) {
    if (F.HasObjParam && !R.chance(25))
      return "o";
    return poolRecv(F);
  }

  /// Numeric-ish expression of bounded depth. May evaluate to a double,
  /// NaN, or (rarely, via churned fields) a string — all deterministic.
  std::string numExpr(const FnCtx &F, unsigned D) {
    if (D == 0 || R.chance(30)) {
      switch (R.range(6)) {
      case 0:
        return F.Locals[R.range(static_cast<uint32_t>(F.Locals.size()))];
      case 1:
        return F.InLoop ? "i" : F.IntParam;
      case 2:
        return num(R.range(64));
      case 3: {
        static const char *Doubles[] = {"0.5", "1.5", "2.25", "1.003",
                                        "0.125"};
        return Doubles[R.range(5)];
      }
      case 4:
        return objExpr(F) + "." + sharedField();
      default:
        return "arr[" + idxExpr(F, ArrSize - 1) + "]";
      }
    }
    switch (R.range(9)) {
    case 0:
      return "(" + numExpr(F, D - 1) + " + " + numExpr(F, D - 1) + ")";
    case 1:
      return "(" + numExpr(F, D - 1) + " - " + numExpr(F, D - 1) + ")";
    case 2:
      return "(" + numExpr(F, D - 1) + " * " + numExpr(F, D - 1) + ")";
    case 3:
      return "(" + numExpr(F, D - 1) + " % (" + num(1 + R.range(16)) + "))";
    case 4: {
      static const char *Bits[] = {" & ", " | ", " ^ "};
      return "(" + numExpr(F, D - 1) + Bits[R.range(3)] +
             numExpr(F, D - 1) + ")";
    }
    case 5: {
      static const char *Shifts[] = {" << ", " >> ", " >>> "};
      return "(" + numExpr(F, D - 1) + Shifts[R.range(3)] + "(" +
             num(R.range(5)) + "))";
    }
    case 6:
      return "(" + numExpr(F, D - 1) + " < " + numExpr(F, D - 1) + " ? " +
             numExpr(F, D - 1) + " : " + numExpr(F, D - 1) + ")";
    case 7: {
      static const char *Fns[] = {"Math.floor", "Math.abs", "Math.round"};
      return Fns[R.range(3)] + std::string("(") + numExpr(F, D - 1) + ")";
    }
    default:
      return "Math." + std::string(R.chance(50) ? "min" : "max") + "(" +
             numExpr(F, D - 1) + ", " + numExpr(F, D - 1) + ")";
    }
  }

  /// Value for an element/field store, honoring the churn knob.
  std::string storeValue(const FnCtx &F) {
    if (R.chance(C.ElementsKindChurn)) {
      if (R.chance(30))
        return "('x' + " + idxExpr(F, 7) + ")"; // Tagged (string) kind.
      return "(" + numExpr(F, 1) + " * 0.5)";   // Double kind.
    }
    return "(" + numExpr(F, 1) + " & 255)"; // Stays SMI.
  }

  std::string localVar(const FnCtx &F) {
    return F.Locals[R.range(static_cast<uint32_t>(F.Locals.size()))];
  }

  /// One statement from the deterministic edge-case pool. Cases 10/11 need
  /// main's invocation counter `m` to flip an index's type only after the
  /// hot loop has tiered up — the regime where an executor fast path can
  /// silently disagree with what the baseline interpreter rejects.
  void emitEdgeStmt(FnCtx &F) {
    std::string T = localVar(F);
    switch (R.range(F.InMain && F.InLoop ? 12 : 10)) {
    case 0: // Fractional element index: reads as undefined.
      line(T + " = arr[" + idxExpr(F, ArrSize - 1) + " + 0.5];");
      break;
    case 1: // Negative zero through the double-negate path.
      line(T + " = (" + T + " - " + T + ") * (0 - 0.5);");
      break;
    case 2: // NaN never compares equal to itself.
      line(T + " = (0 / 0) == (0 / 0) ? 3 : 7;");
      break;
    case 3: // Division: doubles, infinities at a deterministic point.
      line(T + " = 1 / ((" + intAtom(F) + " & 3) - 1);");
      break;
    case 4: // Number -> string -> length round trip.
      line(T + " = ('' + " + numExpr(F, 1) + ").length;");
      break;
    case 5: // Loose string/number comparison.
      line(T + " = ('' + " + intAtom(F) + ") == " + intAtom(F) +
           " ? 1 : 0;");
      break;
    case 6: // SMI-range overflow into doubles.
      line(T + " = " + T + " * 100003 + " + intAtom(F) + " * 31337;");
      break;
    case 7: // Polymorphic element receiver (SMI vs double elements).
      line(T + " = (" + intAtom(F) + " % 2 == 0 ? arr : arr2)[" +
           idxExpr(F, ArrSize - 1) + "];");
      break;
    case 8: // typeof result feeding a string comparison.
      line(T + " = typeof " + objExpr(F) + "." + sharedField() +
           " == 'number' ? 1 : 2;");
      break;
    case 9: // Bitwise ops force toInt32 on possibly-double values.
      line(T + " = ~(" + T + " / 2) ^ (" + T + " >>> 1);");
      break;
    case 10: { // Megamorphic elem site (string + smi keys) whose index
               // turns boolean once tiered up: baseline halts on it.
      std::string W = num(3 + R.range(3));
      line(T + " = ((i & 1) == 0 ? pool[(i & " + num(PoolSize - 1) +
           ")] : arr)[((i & 1) == 0 ? 's" + num(R.range(Depth)) +
           "' : (m < " + W + " ? (i & " + num(ArrSize - 1) +
           ") : (i >= 0)))];");
      break;
    }
    default: { // NaN/Infinity element index once tiered up: index
               // truncation must be range-checked, not cast blindly.
      std::string W = num(3 + R.range(3));
      std::string Bad = R.chance(50) ? "(0 / 0)" : "(1 / 0)";
      line(T + " = arr[(m < " + W + " ? (i & " + num(ArrSize - 1) +
           ") : " + Bad + ")];");
      break;
    }
    }
  }

  /// One body statement; recurses one level into if/for blocks.
  void emitStmt(FnCtx &F) {
    if (R.chance(C.EdgeCaseRate)) {
      emitEdgeStmt(F);
      return;
    }
    uint32_t Kind = R.range(F.BlockDepth == 0 ? 10 : 7);
    switch (Kind) {
    case 0:
      line(localVar(F) + " = " + numExpr(F, 2) + ";");
      break;
    case 1:
      line(localVar(F) + " += " + numExpr(F, 1) + ";");
      break;
    case 2: // Global update, masked so the accumulator stays a SMI.
      line("G0 = ((G0 + " + numExpr(F, 1) + ") & 65535);");
      break;
    case 3: // Property store (may transition or churn a field's type).
      line(objExpr(F) + "." + sharedField() + " = " + storeValue(F) + ";");
      break;
    case 4: // Element store, churn per knob.
      line("arr[" + idxExpr(F, ArrSize - 1) + "] = " + storeValue(F) +
           ";");
      break;
    case 5: // Property load chain.
      line(localVar(F) + " = " + objExpr(F) + "." + sharedField() +
           " + arr[" + idxExpr(F, ArrSize - 1) + "];");
      break;
    case 6: { // Call a helper further down the DAG (if any).
      unsigned Lo = F.InMain ? 0 : F.FnIndex + 1;
      if (Lo < NumFns && C.CallGraphFanOut > 0) {
        unsigned Target = Lo + R.range(NumFns - Lo);
        std::string Recv = F.HasObjParam ? std::string("o") : poolRecv(F);
        line(localVar(F) + " = f" + num(Target) + "(" + Recv + ", (" +
             intAtom(F) + " & 255));");
      } else {
        line(localVar(F) + " = " + numExpr(F, 2) + ";");
      }
      break;
    }
    case 7: { // if/else block.
      line("if (" + numExpr(F, 1) + " < " + numExpr(F, 1) + ") {");
      ++F.BlockDepth;
      emitStmt(F);
      if (R.chance(50))
        emitStmt(F);
      --F.BlockDepth;
      line("}");
      if (R.chance(50)) {
        line("else {");
        ++F.BlockDepth;
        emitStmt(F);
        --F.BlockDepth;
        line("}");
      }
      break;
    }
    case 8: { // Bounded inner loop over a dedicated counter.
      if (F.UsedInnerLoop) {
        line("G1 = ((G1 ^ " + numExpr(F, 1) + ") & 65535);");
        break;
      }
      F.UsedInnerLoop = true;
      line("for (w = 0; w < " + num(2 + R.range(4)) + "; w++) {");
      ++F.BlockDepth;
      emitStmt(F);
      --F.BlockDepth;
      line("}");
      break;
    }
    default: // Length reads keep the GetLength sites hot.
      line(localVar(F) + " = arr.length + " + numExpr(F, 1) + ";");
      break;
    }
  }

  void emitConstructor(unsigned Family) {
    line("function K" + num(Family) + "(i) {");
    // Family-specific dummy prefix: shared names land in distinct slots.
    for (unsigned D = 0; D < Family; ++D)
      line("this.d" + num(D) + " = " + num(R.range(8)) + ";");
    for (unsigned S = 0; S < Depth; ++S) {
      // A family may initialize a shared field as a double (field-type
      // churn decided at generation time, deterministic at runtime).
      if (R.chance(C.ElementsKindChurn / 2))
        line("this.s" + num(S) + " = (i * 0.5 + " + num(S) + ");");
      else
        line("this.s" + num(S) + " = (i + " + num(S * 3) + ");");
    }
    line("}");
  }

  void emitHelper(unsigned Index) {
    FnCtx F;
    F.FnIndex = Index;
    F.HasObjParam = true;
    F.IntParam = "i";
    line("function f" + num(Index) + "(o, i) {");
    unsigned NumLocals = 2 + R.range(2);
    for (unsigned L = 0; L < NumLocals; ++L) {
      F.Locals.push_back("t" + num(L));
      line("var t" + num(L) + " = " + num(R.range(16)) + ";");
    }
    line("var w = 0;");
    unsigned NumStmts = 3 + R.range(4);
    for (unsigned S = 0; S < NumStmts; ++S)
      emitStmt(F);
    std::string Ret = F.Locals[0];
    for (size_t L = 1; L < F.Locals.size(); ++L)
      Ret += " + " + F.Locals[L];
    line("return (" + Ret + ");");
    line("}");
  }

  void emitMethodsAndRecursion() {
    if (C.CallGraphFanOut >= 2) {
      line("function meth0(a) {");
      line("return this.s0 + (a & 7);");
      line("}");
    }
    if (C.CallGraphFanOut >= 3) {
      line("function rec(n) {");
      line("if (n < 2) {");
      line("return n;");
      line("}");
      line("return rec(n - 1) + (rec(n - 2) & 3);");
      line("}");
    }
  }

  void emitSetup() {
    line("var pool = [];");
    line("var arr = [];");
    line("var arr2 = [];");
    line("var i;");
    line("for (i = 0; i < " + num(PoolSize) + "; i++) {");
    for (unsigned Fam = 0; Fam < Degree; ++Fam) {
      std::string Cond = "(i % " + num(Degree) + ") == " + num(Fam);
      if (Fam == 0)
        line("if (" + Cond + ") {");
      else if (Fam + 1 < Degree)
        line("else if (" + Cond + ") {");
      else
        line("else {");
      line("pool[i] = new K" + num(Fam) + "(i);");
      line("}");
    }
    line("}");
    line("for (i = 0; i < " + num(ArrSize) + "; i++) {");
    line("arr[i] = ((i * 7) % 23);");
    line("}");
    line("for (i = 0; i < " + num(ArrSize) + "; i++) {");
    line("arr2[i] = (i + 0.5);");
    line("}");
    if (C.CallGraphFanOut >= 2) {
      line("for (i = 0; i < " + num(PoolSize) + "; i++) {");
      line("pool[i].m0 = meth0;");
      line("}");
    }
    if (C.CallGraphFanOut >= 1)
      line("var fv = f0;");
  }

  void emitMain() {
    FnCtx F;
    F.InMain = true;
    F.IntParam = "m";
    line("function main(m) {");
    line("var s = 0;");
    for (unsigned L = 0; L < 3; ++L) {
      F.Locals.push_back("t" + num(L));
      line("var t" + num(L) + " = " + num(R.range(16)) + ";");
    }
    line("var w = 0;");
    line("var i;");

    // Mid-run perturbations: break a shape or an elements kind once, at a
    // deterministic invocation after the hot loop has tiered up.
    unsigned NumPerturb = R.range(3);
    for (unsigned P = 0; P < NumPerturb; ++P) {
      unsigned When = 3 + R.range(C.TopLevelRepeats > 4
                                      ? C.TopLevelRepeats - 4
                                      : 1);
      line("if (m == " + num(When) + ") {");
      if (R.chance(50))
        line("pool[" + num(R.range(PoolSize)) + "]." + sharedField() +
             " = " + (R.chance(50) ? std::string("0.5")
                                   : "('b' + " + num(R.range(8)) + ")") +
             ";");
      else
        line("arr[" + num(R.range(ArrSize)) + "] = " +
             (R.chance(50) ? std::string("2.5") : std::string("'z'")) +
             ";");
      line("}");
    }

    line("for (i = 0; i < " + num(C.LoopIterations) + "; i++) {");
    F.InLoop = true;
    ++F.BlockDepth;
    if (C.CallGraphFanOut > 0 && NumFns > 0)
      line("s = ((s + f0(" + poolRecv(F) + ", (i & 255))) & 1048575);");
    line("s = ((s + " + poolRecv(F) + "." + sharedField() +
         ") & 1048575);");
    if (C.CallGraphFanOut >= 2)
      line("s = ((s + pool[(i & " + num(PoolSize - 1) + ")].m0((i & 7))) & " +
           "1048575);");
    unsigned NumStmts = 2 + R.range(4);
    for (unsigned S = 0; S < NumStmts; ++S)
      emitStmt(F);
    line("s += " + numExpr(F, 1) + ";");
    --F.BlockDepth;
    F.InLoop = false;
    line("}");
    if (C.CallGraphFanOut >= 3)
      line("s += rec(8 + (m & 3));");
    if (C.CallGraphFanOut >= 1)
      line("s = ((s + fv(pool[(m & " + num(PoolSize - 1) +
           ")], (m & 255))) & 1048575);");
    line("return s + t0 + t1 + t2;");
    line("}");
  }

  void emitDriverAndDump() {
    line("var j;");
    line("for (j = 0; j < " + num(C.TopLevelRepeats) + "; j++) {");
    line("print(main(j));");
    line("}");
    line("print(G0);");
    line("print(G1);");
    line("print(arr.join(','));");
    line("print(arr2[5]);");
    line("print(pool[" + num(R.range(PoolSize)) + "].s0);");
    if (Depth > 1)
      line("print(pool[" + num(R.range(PoolSize)) + "].s" +
           num(Depth - 1) + ");");
  }

  const GenConfig &C;
  SplitMix64 R;
  unsigned Degree, Depth, NumFns;
  std::string Out;
};

std::string Emitter::run() {
  line("// ccjs-gen seed=" + std::to_string(C.Seed) +
       " poly=" + num(Degree) + " depth=" + num(Depth) +
       " churn=" + num(C.ElementsKindChurn) +
       " fanout=" + num(C.CallGraphFanOut) + " fns=" + num(NumFns) +
       " iters=" + num(C.LoopIterations) +
       " repeats=" + num(C.TopLevelRepeats) +
       " edge=" + num(C.EdgeCaseRate));
  line("var G0 = 0;");
  line("var G1 = 0;");
  for (unsigned Fam = 0; Fam < Degree; ++Fam)
    emitConstructor(Fam);
  emitMethodsAndRecursion();
  for (unsigned Fn = 0; Fn < NumFns; ++Fn)
    emitHelper(Fn);
  emitSetup();
  emitMain();
  emitDriverAndDump();
  return std::move(Out);
}

} // namespace

GenConfig GenConfig::fromSeed(uint64_t Seed) {
  SplitMix64 R(Seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  GenConfig C;
  C.Seed = Seed;
  C.PolymorphismDegree = 1 + R.range(6);
  C.ShapeTransitionDepth = 1 + R.range(8);
  C.ElementsKindChurn = R.range(60);
  C.CallGraphFanOut = R.range(4);
  C.NumFunctions = 2 + R.range(4);
  C.LoopIterations = 40 + R.range(80);
  C.TopLevelRepeats = 6 + R.range(6);
  C.EdgeCaseRate = R.range(25);
  return C;
}

std::string ccjs::gen::generateProgram(const GenConfig &Config) {
  Emitter E(Config);
  return E.run();
}
