//===- gen/ProgramGen.h - Seeded MiniJS program generator ------*- C++ -*-===//
///
/// \file
/// A deterministic, property-graph-driven MiniJS program generator. One
/// 64-bit seed fully determines the emitted program; a handful of knobs
/// steer which engine regimes the program exercises:
///
///   * PolymorphismDegree — number of distinct constructors (hidden-class
///     families) flowing into the hot property sites. Degrees beyond the
///     inline-cache capacity drive sites megamorphic (the Poirier et al.
///     "false lead" regime).
///   * ShapeTransitionDepth — properties added per constructor, i.e. the
///     length of each family's shape-transition chain. Deep chains reach
///     the overflow-property (dictionary-mode-like) storage path.
///   * ElementsKindChurn — percentage of element stores whose value breaks
///     the array's elements kind (SMI -> double -> tagged).
///   * CallGraphFanOut — callees per generated helper function, plus
///     method-call and recursion coverage at higher settings.
///
/// Generated programs are valid by construction: every variable is
/// declared before use, all loops are bounded, there is no Math.random,
/// and every receiver of a property access is an object. "Edge" statements
/// (fractional indices, NaN/negative-zero arithmetic, mid-run shape and
/// elements-kind breaks) are deterministic too, so each program has
/// exactly one correct output — the substrate of the cross-tier
/// differential oracle (see gen/DiffOracle.h).
///
/// Emission is one statement per line with braces on their own lines,
/// which is what the greedy line/block-deletion reducer (gen/Reducer.h)
/// operates on.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_GEN_PROGRAMGEN_H
#define CCJS_GEN_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace ccjs {
namespace gen {

/// SplitMix64: the canonical 64-bit seed expander. Deterministic,
/// platform-independent, and stateful only through one word — the whole
/// generator derives from it.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : S(Seed) {}

  uint64_t next() {
    S += 0x9E3779B97F4A7C15ull;
    uint64_t Z = S;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform-enough draw in [0, N); N == 0 returns 0.
  uint32_t range(uint32_t N) {
    return N ? static_cast<uint32_t>(next() % N) : 0;
  }

  /// True with probability Percent/100.
  bool chance(uint32_t Percent) { return range(100) < Percent; }

private:
  uint64_t S;
};

/// Generation knobs. Every field has a sensible explicit default;
/// fromSeed() derives a diverse configuration from the seed itself (what
/// the corpus sweep uses).
struct GenConfig {
  uint64_t Seed = 1;
  /// Distinct constructors feeding the hot property sites (>= 1).
  unsigned PolymorphismDegree = 3;
  /// Properties added per constructor (shape-transition chain length,
  /// >= 1; values above ~8 reach the overflow-property storage).
  unsigned ShapeTransitionDepth = 3;
  /// Percent of element stores that break the elements kind (0..100).
  unsigned ElementsKindChurn = 25;
  /// Call-graph breadth: callees per helper; >= 2 adds method calls,
  /// >= 3 adds bounded recursion.
  unsigned CallGraphFanOut = 2;
  /// Number of generated helper functions (>= 1).
  unsigned NumFunctions = 4;
  /// Hot-loop trip count inside main().
  unsigned LoopIterations = 80;
  /// Invocations of main() (drives tier-up mid-run at hot thresholds).
  unsigned TopLevelRepeats = 8;
  /// Percent of statements drawn from the edge-case pool (NaN, negative
  /// zero, fractional indices, mixed string/number comparisons).
  unsigned EdgeCaseRate = 10;

  /// Derives all knobs from \p Seed (used by the corpus sweep so each
  /// seed explores a different parameter point).
  static GenConfig fromSeed(uint64_t Seed);
};

/// Emits the deterministic MiniJS program for \p Config. Same config
/// (including seed) -> byte-identical source.
std::string generateProgram(const GenConfig &Config);

} // namespace gen
} // namespace ccjs

#endif // CCJS_GEN_PROGRAMGEN_H
