//===- gen/DiffOracle.cpp - Cross-tier differential oracle ----------------===//

#include "gen/DiffOracle.h"

#include "core/BenchHarness.h"
#include "core/Engine.h"
#include "core/Metrics.h"
#include "core/Stats.h"
#include "support/Dispatch.h"
#include "support/FaultInjector.h"
#include "support/Json.h"
#include "vm/InvariantAuditor.h"

#include <cstddef>
#include <cstdint>
#include <vector>

using namespace ccjs;
using namespace ccjs::gen;

namespace {

/// Hot tiering thresholds shared with the test suite's hotConfig(): low
/// enough that generated programs tier up mid-run.
constexpr uint32_t HotInvocations = 2;
constexpr uint32_t HotLoopTrips = 50;

/// Everything observable about one engine run.
struct TierRun {
  bool Loaded = false;
  bool Ok = false;
  std::string Error;
  std::string Output;
  uint64_t Shapes = 0;
  uint64_t AuditFailures = 0;
  std::string FirstAuditMsg;
  // Byte-image fields, only filled when requested (dispatch comparison).
  std::string Stats;
  std::string Metrics;
  std::string TripLog;
};

TierRun runTier(const std::string &Source, const Engine::Options &Opts,
                bool WantImage) {
  Engine E(Opts);
  TierRun R;
  if (!E.load(Source)) {
    R.Error = E.lastError();
    return R;
  }
  R.Loaded = true;
  R.Ok = E.runTopLevel();
  if (!R.Ok)
    R.Error = E.lastError();
  E.auditNow("final");
  R.Output = E.output();
  R.Shapes = E.stats().NumHiddenClasses;
  if (WantImage) {
    R.Stats = statsToJson(E.stats()).dump(2);
    if (const MetricsRegistry *M = E.metrics())
      R.Metrics = M->render();
    if (const FaultInjector *FI = E.faultInjector())
      R.TripLog = FI->renderTripLog();
  }
  if (const InvariantAuditor *A = E.auditor()) {
    R.AuditFailures = A->failureCount();
    if (!A->failures().empty())
      R.FirstAuditMsg = A->failures().front();
  }
  return R;
}

/// Excerpt around the first differing byte of two strings.
std::string firstDiff(const std::string &A, const std::string &B) {
  size_t I = 0;
  while (I < A.size() && I < B.size() && A[I] == B[I])
    ++I;
  size_t Lo = I > 40 ? I - 40 : 0;
  auto Cut = [&](const std::string &S) {
    return S.substr(Lo, std::min<size_t>(80, S.size() - Lo));
  };
  return "at byte " + std::to_string(I) + ": \"..." + Cut(A) +
         "\" vs \"..." + Cut(B) + "\"";
}

class Comparator {
public:
  explicit Comparator(const TierRun &Ref) : Ref(Ref) {}

  /// Semantic equivalence: halt status, error, output, hidden classes.
  void semantics(const TierRun &T, const std::string &Name) {
    if (!T.Loaded) {
      issue(Name + ": failed to load: " + T.Error);
      return;
    }
    if (T.Ok != Ref.Ok || T.Error != Ref.Error)
      issue(Name + ": status diverged (reference " +
            (Ref.Ok ? "ok" : "halt \"" + Ref.Error + "\"") + ", " + Name +
            " " + (T.Ok ? "ok" : "halt \"" + T.Error + "\"") + ")");
    if (T.Output != Ref.Output)
      issue(Name + ": output diverged " + firstDiff(Ref.Output, T.Output));
    if (T.Shapes != Ref.Shapes)
      issue(Name + ": hidden-class count diverged (reference " +
            std::to_string(Ref.Shapes) + ", " + Name + " " +
            std::to_string(T.Shapes) + ")");
    audits(T, Name);
  }

  /// Byte identity between two runs of the same configuration.
  void image(const TierRun &A, const TierRun &B, const std::string &Name) {
    if (A.Output != B.Output)
      issue(Name + ": output diverged " + firstDiff(A.Output, B.Output));
    if (A.Stats != B.Stats)
      issue(Name + ": RunStats diverged " + firstDiff(A.Stats, B.Stats));
    if (A.Metrics != B.Metrics)
      issue(Name + ": metrics diverged " + firstDiff(A.Metrics, B.Metrics));
    if (A.TripLog != B.TripLog)
      issue(Name + ": fault trip log diverged " +
            firstDiff(A.TripLog, B.TripLog));
    if (A.Ok != B.Ok || A.Error != B.Error)
      issue(Name + ": status diverged (\"" + A.Error + "\" vs \"" +
            B.Error + "\")");
  }

  void audits(const TierRun &T, const std::string &Name) {
    if (T.AuditFailures)
      issue(Name + ": " + std::to_string(T.AuditFailures) +
            " invariant-audit failure(s), first: " + T.FirstAuditMsg);
  }

  void issue(const std::string &Msg) {
    ++Issues;
    if (Issues <= MaxReported) {
      Report += Msg;
      Report += '\n';
    }
  }

  const TierRun &Ref;
  unsigned Issues = 0;
  std::string Report;
  static constexpr unsigned MaxReported = 8;
};

/// Warm-start round trip (DESIGN.md §4.11): run the program once to warm
/// the engine, park its profile snapshot, then run the program again on
/// (a) the same engine and (b) a fresh engine restored from the parked
/// snapshot. The two second runs — output, serialized RunStats, metrics,
/// halt status, and the snapshots re-captured afterwards — must be
/// byte-identical: restore must be semantically invisible, differing from
/// process continuity in nothing but the warmup it skipped.
void snapshotLeg(Comparator &Cmp, const std::string &Source,
                 const Engine::Options &Config, const std::string &Name) {
  Engine::Options Base(Config);
  Base.withProfilePersistence().withMetrics();

  auto SecondRun = [&](Engine &E, TierRun &R, std::vector<uint8_t> &Resnap) {
    if (!E.load(Source)) {
      R.Error = E.lastError();
      return;
    }
    E.beginServiceRequest();
    R.Loaded = true;
    R.Ok = E.runTopLevel();
    if (!R.Ok)
      R.Error = E.lastError();
    E.auditNow("final");
    R.Output = E.output();
    R.Shapes = E.stats().NumHiddenClasses;
    R.Stats = statsToJson(E.stats()).dump(2);
    if (const MetricsRegistry *M = E.metrics())
      R.Metrics = M->render();
    if (const InvariantAuditor *A = E.auditor()) {
      R.AuditFailures = A->failureCount();
      if (!A->failures().empty())
        R.FirstAuditMsg = A->failures().front();
    }
    Resnap = E.snapshotProfile();
  };

  Engine Cont(Base);
  if (!Cont.load(Source))
    return; // Parse failures are already reported by the semantic legs.
  Cont.runTopLevel(); // Warmup run; a halt is fine (the replica sees the
                      // profile state the halt left behind).
  std::vector<uint8_t> Snap = Cont.snapshotProfile();

  Engine Warm(Engine::Options(Base).withProfileSnapshot(Snap));
  if (!Warm.snapshotRestoreError().empty()) {
    Cmp.issue(Name + ": restore rejected its own capture: " +
              Warm.snapshotRestoreError());
    return;
  }

  TierRun ContRun, WarmRun;
  std::vector<uint8_t> ContSnap, WarmSnap;
  SecondRun(Cont, ContRun, ContSnap);
  SecondRun(Warm, WarmRun, WarmSnap);

  if (!ContRun.Loaded || !WarmRun.Loaded) {
    Cmp.issue(Name + ": reload failed (continuous \"" + ContRun.Error +
              "\", warm \"" + WarmRun.Error + "\")");
    return;
  }
  Cmp.image(ContRun, WarmRun, Name);
  Cmp.audits(WarmRun, Name + "(warm)");
  if (ContSnap != WarmSnap)
    Cmp.issue(Name + ": re-captured snapshots diverged (" +
              std::to_string(ContSnap.size()) + " vs " +
              std::to_string(WarmSnap.size()) + " bytes)");
}

} // namespace

OracleResult ccjs::gen::runOracle(const std::string &Source,
                                  const OracleOptions &Opts) {
  OracleResult Result;

  // Reference: the pure baseline interpreter, no speculation machinery.
  TierRun Ref = runTier(Source, Engine::Options().withNoOpt(), false);
  if (!Ref.Loaded) {
    Result.LoadFailed = true;
    Result.Report = "load failed: " + Ref.Error;
    return Result;
  }

  Comparator Cmp(Ref);

  // Tiered executor, Class Cache off (the state-of-the-art baseline).
  Cmp.semantics(runTier(Source,
                        Engine::Options()
                            .withTiering(HotInvocations, HotLoopTrips)
                            .withAudit(),
                        false),
                "tiered");

  // Tiered executor with the Class Cache mechanism and check elision.
  Engine::Options CcOpts = Engine::Options()
                               .withClassCache()
                               .withTiering(HotInvocations, HotLoopTrips)
                               .withAudit();
  Cmp.semantics(runTier(Source, CcOpts, false), "cc");

  // Lazy basic-block versioning, alone and stacked on the Class Cache:
  // every check-removal regime must agree with the reference interpreter.
  Engine::Options BbvOpts = Engine::Options()
                                .withCheckRemoval(CheckRemovalBackend::Bbv)
                                .withTiering(HotInvocations, HotLoopTrips)
                                .withAudit();
  if (Opts.CheckBbv) {
    Cmp.semantics(runTier(Source, BbvOpts, false), "bbv");
    Cmp.semantics(runTier(Source,
                          Engine::Options()
                              .withCheckRemoval(CheckRemovalBackend::Both)
                              .withTiering(HotInvocations, HotLoopTrips)
                              .withAudit(),
                          false),
                  "cc+bbv");
  }

  // Dispatch-mode byte identity: the switch image is the reference for the
  // threaded leg (computed-goto builds only) and for the fused leg (always
  // available — fusion rewrites OptIR but executes on the switch loop).
  bool WantThreaded = false;
#if CCJS_THREADED_DISPATCH
  WantThreaded = Opts.CheckDispatch;
#endif
  if (WantThreaded || Opts.CheckFused) {
    Engine::Options ImgOpts = CcOpts;
    ImgOpts.withMetrics();
    TierRun Sw = runTier(Source, ImgOpts, true);
    Cmp.semantics(Sw, "cc+metrics(switch)");
    if (WantThreaded) {
      TierRun Th = runTier(
          Source,
          Engine::Options(ImgOpts).withDispatch(DispatchMode::Threaded),
          true);
      Cmp.image(Sw, Th, "dispatch-threaded");
    }
    if (Opts.CheckFused) {
      TierRun Fu = runTier(
          Source,
          Engine::Options(ImgOpts).withDispatch(DispatchMode::Fused), true);
      Cmp.image(Sw, Fu, "dispatch-fused");
    }
    // The BBV backend must be dispatch-invariant too: the fused executor
    // replays the same per-version elide masks the switch loop consults.
    if (Opts.CheckBbv) {
      Engine::Options BbvImg = Engine::Options(BbvOpts).withMetrics();
      TierRun BSw = runTier(Source, BbvImg, true);
      Cmp.semantics(BSw, "bbv+metrics(switch)");
      if (WantThreaded) {
        TierRun BTh = runTier(
            Source,
            Engine::Options(BbvImg).withDispatch(DispatchMode::Threaded),
            true);
        Cmp.image(BSw, BTh, "bbv-dispatch-threaded");
      }
      if (Opts.CheckFused) {
        TierRun BFu = runTier(
            Source,
            Engine::Options(BbvImg).withDispatch(DispatchMode::Fused), true);
        Cmp.image(BSw, BFu, "bbv-dispatch-fused");
      }
    }
  }

  // Warm-start round trip: a replica restored from a parked snapshot must
  // be byte-indistinguishable from the continuous engine on its next run.
  // Chaos stays off here — the legs assert byte identity, and distinct
  // engines would see distinct fault streams.
  if (Opts.CheckSnapshot) {
    snapshotLeg(Cmp, Source, CcOpts, "snapshot-cc");
    if (Opts.CheckBbv)
      snapshotLeg(Cmp, Source,
                  Engine::Options()
                      .withCheckRemoval(CheckRemovalBackend::Both)
                      .withTiering(HotInvocations, HotLoopTrips)
                      .withAudit(),
                  "snapshot-cc+bbv");
  }

  // Chaos sweep: deterministic fault injection must stay transparent.
  for (uint64_t Seed = 1; Seed <= Opts.ChaosSeeds; ++Seed) {
    TierRun Chaos = runTier(Source,
                            Engine::Options()
                                .withClassCache()
                                .withTiering(HotInvocations, HotLoopTrips)
                                .withChaosSeed(Seed)
                                .withAudit(),
                            false);
    Cmp.semantics(Chaos, "chaos seed " + std::to_string(Seed));
  }

  if (Cmp.Issues > Comparator::MaxReported)
    Cmp.Report += "... and " +
                  std::to_string(Cmp.Issues - Comparator::MaxReported) +
                  " more\n";
  Result.Ok = Cmp.Issues == 0;
  Result.Report = Cmp.Report;
  return Result;
}
