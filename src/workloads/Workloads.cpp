//===- workloads/Workloads.cpp --------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Suites.h"

#include <vector>

using namespace ccjs;
using namespace ccjs::workloads;

static std::vector<Workload> buildAll() {
  std::vector<Workload> All;
  All.insert(All.end(), OctaneWorkloads, OctaneWorkloads + NumOctaneWorkloads);
  All.insert(All.end(), SunSpiderWorkloads,
             SunSpiderWorkloads + NumSunSpiderWorkloads);
  All.insert(All.end(), KrakenWorkloads, KrakenWorkloads + NumKrakenWorkloads);
  return All;
}

const Workload *ccjs::allWorkloads(size_t *Count) {
  static const std::vector<Workload> All = buildAll();
  *Count = All.size();
  return All.data();
}

const Workload *ccjs::findWorkload(std::string_view Name) {
  size_t N = 0;
  const Workload *All = allWorkloads(&N);
  for (size_t I = 0; I < N; ++I)
    if (Name == All[I].Name)
      return &All[I];
  return nullptr;
}
