//===- workloads/Workloads.h - Benchmark registry ---------------*- C++ -*-===//
///
/// \file
/// MiniJS ports of the paper's evaluation workloads (Octane, Kraken,
/// SunSpider), scaled down to simulator-friendly sizes but preserving each
/// benchmark's workload character: object-graph traversal, constructor
/// churn, elements-array numeric kernels, string processing, or pure SMI
/// arithmetic. Every program defines `run()` (one measured iteration) and
/// prints a deterministic checksum, so the tests can verify that every
/// engine configuration computes identical results.
///
/// `Selected` marks the benchmarks of the paper's Figures 8/9 (those with
/// more than 1% check overhead after object loads; section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_WORKLOADS_WORKLOADS_H
#define CCJS_WORKLOADS_WORKLOADS_H

#include <cstddef>
#include <string_view>

namespace ccjs {

struct Workload {
  const char *Name;
  const char *Suite; ///< "octane", "kraken" or "sunspider".
  const char *Source;
  /// In the paper's selected set (the >1%-overhead benchmarks of Figures
  /// 8/9; 26 appear in those figures).
  bool Selected;
};

/// All registered workloads, grouped by suite (octane, sunspider, kraken).
const Workload *allWorkloads(size_t *Count);

/// Finds a workload by name; returns null when unknown.
const Workload *findWorkload(std::string_view Name);

} // namespace ccjs

#endif // CCJS_WORKLOADS_WORKLOADS_H
