//===- workloads/KrakenSuite.cpp - Kraken-style workloads -----------------===//

#include "workloads/Suites.h"

namespace ccjs::workloads {

/// ai-astar: the paper's showcase (34% speedup). Grid pathfinding with a
/// big array of Node objects whose f/g/h/parent fields are read and
/// written in a tight loop — exactly the monomorphic property traffic the
/// Class Cache removes checks from.
const char KrAiAstar[] = R"js(
var W = 24;
var H = 24;
var nodes = [];
function Node(x, y, blocked) {
  this.x = x;
  this.y = y;
  this.blocked = blocked;
  this.g = 0;
  this.h = 0;
  this.f = 0;
  this.parent = -1;
  this.state = 0; // 0 fresh, 1 open, 2 closed.
}
function buildGrid() {
  nodes = [];
  var y, x;
  for (y = 0; y < H; y++)
    for (x = 0; x < W; x++) {
      var blocked = ((x * 13 + y * 7) % 11 == 0) && x != 0 && y != 0 ? 1 : 0;
      nodes[y * W + x] = new Node(x, y, blocked);
    }
}
function heuristic(a, bx, by) {
  var dx = a.x - bx;
  var dy = a.y - by;
  return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}
function findPath(sx, sy, tx, ty) {
  // The open list holds the node objects themselves (as Kraken's astar
  // does), so the inner loop is dominated by object property traffic.
  var open = [];
  var start = nodes[sy * W + sx];
  start.g = 0;
  start.h = heuristic(start, tx, ty);
  start.f = start.h;
  start.state = 1;
  open.push(start);
  var expansions = 0;
  while (open.length > 0) {
    // Find the open node with the lowest f.
    var bestIdx = 0;
    var best = open[0];
    var i;
    for (i = 1; i < open.length; i++) {
      var cand = open[i];
      if (cand.f < best.f) { bestIdx = i; best = cand; }
    }
    var cur = open[bestIdx];
    open[bestIdx] = open[open.length - 1];
    open.pop();
    if (cur.x == tx && cur.y == ty) return cur.g * 1000 + expansions;
    cur.state = 2;
    expansions++;
    var d;
    for (d = 0; d < 4; d++) {
      var nx = cur.x + (d == 0 ? 1 : (d == 1 ? -1 : 0));
      var ny = cur.y + (d == 2 ? 1 : (d == 3 ? -1 : 0));
      if (nx < 0 || ny < 0 || nx >= W || ny >= H) continue;
      var nb = nodes[ny * W + nx];
      if (nb.blocked == 1 || nb.state == 2) continue;
      var ng = cur.g + 1;
      if (nb.state == 0) {
        nb.g = ng;
        nb.h = heuristic(nb, tx, ty);
        nb.f = ng + nb.h;
        nb.parent = cur.x * 1000 + cur.y;
        nb.state = 1;
        open.push(nb);
      } else if (ng < nb.g) {
        nb.g = ng;
        nb.f = ng + nb.h;
        nb.parent = cur.x * 1000 + cur.y;
      }
    }
  }
  return -expansions;
}
function run() {
  buildGrid();
  var r1 = findPath(0, 0, W - 1, H - 1);
  buildGrid();
  var r2 = findPath(0, H - 1, W - 1, 0);
  print(r1 + r2);
}
)js";

/// audio-beat-detection: envelope followers over sample arrays, with
/// detector state objects.
const char KrBeatDetection[] = R"js(
var samples = [];
function Detector() { this.energy = 0.0; this.avg = 0.0; this.beats = 0; this.phase = 0; }
function synthesize() {
  samples = [];
  var i;
  for (i = 0; i < 4096; i++) {
    var t = i / 4096.0;
    var kick = (i % 512) < 24 ? 0.9 : 0.0;
    samples[i] = Math.sin(t * 440.0) * 0.3 + kick;
  }
}
function detect(d) {
  var i;
  for (i = 0; i < samples.length; i++) {
    var s = samples[i];
    var e = s * s;
    d.energy = d.energy * 0.98 + e * 0.02;
    d.avg = d.avg * 0.999 + e * 0.001;
    if (d.energy > d.avg * 1.4 && d.phase == 0) { d.beats = d.beats + 1; d.phase = 1; }
    if (d.energy < d.avg && d.phase == 1) d.phase = 0;
  }
}
function run() {
  synthesize();
  var d = new Detector();
  detect(d);
  print(d.beats * 1000 + Math.floor(d.avg * 100000.0));
}
)js";

/// audio-oscillator: additive synthesis writing double arrays through
/// oscillator objects.
const char KrOscillator[] = R"js(
function Osc(freq, amp) { this.freq = freq; this.amp = amp; this.phase = 0.0; }
var oscs = [];
var buffer = [];
function setupOscs() {
  oscs = [];
  var i;
  for (i = 0; i < 6; i++) oscs[i] = new Osc(0.01 * (i + 1), 1.0 / (i + 1));
  buffer = [];
  for (i = 0; i < 2048; i++) buffer[i] = 0.0;
}
function generate() {
  var i, k;
  for (i = 0; i < buffer.length; i++) buffer[i] = 0.0;
  for (k = 0; k < oscs.length; k++) {
    var o = oscs[k];
    for (i = 0; i < buffer.length; i++) {
      buffer[i] += Math.sin(o.phase) * o.amp;
      o.phase += o.freq;
    }
  }
}
function run() {
  setupOscs();
  generate();
  var s = 0.0;
  var i;
  for (i = 0; i < buffer.length; i += 16) s += buffer[i];
  print(Math.floor(s * 100000.0));
}
)js";

/// imaging-gaussian-blur: 2D convolution over a pixel array.
const char KrGaussianBlur[] = R"js(
var img = [];
var out = [];
var WID = 48;
var HGT = 48;
function loadImage() {
  img = []; out = [];
  var i;
  for (i = 0; i < WID * HGT; i++) { img[i] = (i * 7919) % 256; out[i] = 0; }
}
function blur() {
  var x, y;
  for (y = 2; y < HGT - 2; y++) {
    for (x = 2; x < WID - 2; x++) {
      var acc = 0;
      var dy, dx;
      for (dy = -2; dy <= 2; dy++)
        for (dx = -2; dx <= 2; dx++) {
          var w = 5 - (dx < 0 ? -dx : dx) - (dy < 0 ? -dy : dy);
          acc += img[(y + dy) * WID + (x + dx)] * w;
        }
      out[y * WID + x] = (acc / 65) | 0;
    }
  }
}
function run() {
  loadImage();
  blur();
  var h = 0;
  var i;
  for (i = 0; i < WID * HGT; i += 11) h = (h * 31 + out[i]) % 1000003;
  print(h);
}
)js";

/// stanford-crypto-aes: word-oriented AES-flavoured rounds with a key
/// schedule object.
const char KrStanfordAes[] = R"js(
var sbox = [];
function Key() { this.words = []; this.rounds = 10; }
function buildSbox() {
  var i;
  sbox = [];
  for (i = 0; i < 256; i++) sbox[i] = ((i * 5) ^ (i >> 3) ^ 0x63) & 0xff;
}
function expandKey(k) {
  var i;
  k.words = [];
  for (i = 0; i < 4; i++) k.words[i] = (i * 0x01020304) & 0x7fffffff;
  for (i = 4; i < 44; i++) {
    var t = k.words[i - 1];
    if (i % 4 == 0)
      t = ((sbox[t & 0xff] << 8) ^ sbox[(t >> 8) & 0xff] ^ (t >>> 16)) & 0x7fffffff;
    k.words[i] = (k.words[i - 4] ^ t) & 0x7fffffff;
  }
}
function encrypt(k, b0, b1, b2, b3) {
  var r;
  for (r = 0; r < k.rounds; r++) {
    var base = r * 4;
    b0 = (sbox[b0 & 0xff] ^ (b1 >>> 8) ^ k.words[base]) & 0x7fffffff;
    b1 = (sbox[b1 & 0xff] ^ (b2 >>> 8) ^ k.words[base + 1]) & 0x7fffffff;
    b2 = (sbox[b2 & 0xff] ^ (b3 >>> 8) ^ k.words[base + 2]) & 0x7fffffff;
    b3 = (sbox[b3 & 0xff] ^ (b0 >>> 8) ^ k.words[base + 3]) & 0x7fffffff;
  }
  return (b0 ^ b1 ^ b2 ^ b3) & 0x7fffffff;
}
function run() {
  buildSbox();
  var k = new Key();
  expandKey(k);
  var s = 0;
  var b;
  for (b = 0; b < 120; b++) s = (s + encrypt(k, b, b * 3 + 1, b * 5 + 2, b * 7 + 3)) % 1000003;
  print(s);
}
)js";

/// stanford-crypto-ccm: CBC-MAC + counter mode over word arrays.
const char KrStanfordCcm[] = R"js(
var msg = [];
function Mac() { this.state = 0x13579bdf & 0x7fffffff; this.blocks = 0; }
function fillMsg() {
  var i;
  msg = [];
  for (i = 0; i < 512; i++) msg[i] = (i * 2654435761) & 0x7fffffff;
}
function cipherWord(w, ctr) {
  var x = (w ^ (ctr * 0x9e37)) & 0x7fffffff;
  x = ((x << 7) | (x >>> 24)) & 0x7fffffff;
  return (x + 0x1234567) & 0x7fffffff;
}
function ccm(m) {
  var i;
  for (i = 0; i < msg.length; i++) {
    m.state = cipherWord((m.state ^ msg[i]) & 0x7fffffff, i);
    msg[i] = (msg[i] ^ cipherWord(i, m.state & 0xff)) & 0x7fffffff;
    m.blocks = m.blocks + 1;
  }
  return m.state;
}
function run() {
  fillMsg();
  var m = new Mac();
  var s = 0;
  var r;
  for (r = 0; r < 6; r++) s = (s + ccm(m)) % 1000003;
  print(s + m.blocks);
}
)js";

/// stanford-crypto-pbkdf2: iterated HMAC-flavoured key stretching.
const char KrStanfordPbkdf2[] = R"js(
function prf(key, data) {
  var x = (key ^ data) & 0x7fffffff;
  var r;
  for (r = 0; r < 4; r++)
    x = (((x << 5) | (x >>> 26)) ^ (x * 3 + 0x5c5c)) & 0x7fffffff;
  return x;
}
function pbkdf2(password, salt, iters) {
  var u = prf(password, salt);
  var t = u;
  var i;
  for (i = 1; i < iters; i++) {
    u = prf(password, u);
    t = (t ^ u) & 0x7fffffff;
  }
  return t;
}
function run() {
  var s = 0;
  var p;
  for (p = 0; p < 24; p++) s = (s + pbkdf2(0x1000 + p, 0xbeef ^ p, 220)) % 1000003;
  print(s);
}
)js";

/// stanford-crypto-sha256: message schedule + compression over word
/// arrays, with a hasher state object.
const char KrStanfordSha256[] = R"js(
var sched = [];
function Hasher() { this.h0 = 0x6a09; this.h1 = 0xbb67; this.h2 = 0x3c6e; this.h3 = 0xa54f; this.blocks = 0; }
function schedule(seed) {
  var i;
  sched = [];
  for (i = 0; i < 16; i++) sched[i] = (seed * (i + 1) * 40503) & 0x3fffffff;
  for (i = 16; i < 64; i++) {
    var s0 = ((sched[i - 15] >>> 7) ^ (sched[i - 15] << 3)) & 0x3fffffff;
    var s1 = ((sched[i - 2] >>> 17) ^ (sched[i - 2] << 5)) & 0x3fffffff;
    sched[i] = (sched[i - 16] + s0 + sched[i - 7] + s1) & 0x3fffffff;
  }
}
function compress(h) {
  var a = h.h0, b = h.h1, c = h.h2, d = h.h3;
  var i;
  for (i = 0; i < 64; i++) {
    var ch = (a & b) ^ (~a & c);
    var t = (d + ch + sched[i]) & 0x3fffffff;
    d = c; c = b; b = a;
    a = (t + ((a >>> 2) ^ (a << 4) & 0x3fffffff)) & 0x3fffffff;
  }
  h.h0 = (h.h0 + a) & 0x3fffffff;
  h.h1 = (h.h1 + b) & 0x3fffffff;
  h.h2 = (h.h2 + c) & 0x3fffffff;
  h.h3 = (h.h3 + d) & 0x3fffffff;
  h.blocks = h.blocks + 1;
}
function run() {
  var h = new Hasher();
  var b;
  for (b = 0; b < 40; b++) {
    schedule(b + 1);
    compress(h);
  }
  print((h.h0 ^ h.h1 ^ h.h2 ^ h.h3) + h.blocks);
}
)js";

// --- Kraken benchmarks outside the selected set.

/// audio-dft: direct discrete Fourier transform on double arrays.
const char KrAudioDft[] = R"js(
var signal = [];
function buildSignal() {
  var i;
  signal = [];
  for (i = 0; i < 256; i++)
    signal[i] = Math.sin(i * 0.22) + 0.5 * Math.sin(i * 0.45 + 0.3);
}
function dftBin(k) {
  var re = 0.0, im = 0.0;
  var n;
  for (n = 0; n < signal.length; n++) {
    var ang = -2.0 * Math.PI * k * n / signal.length;
    re += signal[n] * Math.cos(ang);
    im += signal[n] * Math.sin(ang);
  }
  return re * re + im * im;
}
function run() {
  buildSignal();
  var s = 0.0;
  var k;
  for (k = 0; k < 24; k++) s += dftBin(k);
  print(Math.floor(s * 100.0));
}
)js";

/// audio-fft: radix-2 FFT butterflies over double arrays.
const char KrAudioFft[] = R"js(
var re = [];
var im = [];
function buildInput() {
  var i;
  re = []; im = [];
  for (i = 0; i < 256; i++) { re[i] = Math.cos(i * 0.17); im[i] = 0.0; }
}
function fft() {
  var n = re.length;
  var i, j, k;
  j = 0;
  for (i = 0; i < n - 1; i++) {
    if (i < j) {
      var tr = re[i]; re[i] = re[j]; re[j] = tr;
      var ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    k = n >> 1;
    while (k <= j) { j -= k; k >>= 1; }
    j += k;
  }
  var len;
  for (len = 2; len <= n; len <<= 1) {
    var ang = -2.0 * Math.PI / len;
    var half = len >> 1;
    for (i = 0; i < n; i += len) {
      for (k = 0; k < half; k++) {
        var c = Math.cos(ang * k);
        var s = Math.sin(ang * k);
        var xr = re[i + k + half] * c - im[i + k + half] * s;
        var xi = re[i + k + half] * s + im[i + k + half] * c;
        re[i + k + half] = re[i + k] - xr;
        im[i + k + half] = im[i + k] - xi;
        re[i + k] += xr;
        im[i + k] += xi;
      }
    }
  }
}
function run() {
  buildInput();
  fft();
  var s = 0.0;
  var i;
  for (i = 0; i < re.length; i += 8) s += re[i] * re[i] + im[i] * im[i];
  print(Math.floor(s * 1000.0));
}
)js";

/// imaging-darkroom: per-pixel brightness/contrast over an int array.
const char KrDarkroom[] = R"js(
var pixels = [];
function loadPixels() {
  var i;
  pixels = [];
  for (i = 0; i < 4096; i++) pixels[i] = (i * 97) % 256;
}
function adjust(brightness, contrast) {
  var i;
  for (i = 0; i < pixels.length; i++) {
    var p = pixels[i] + brightness;
    p = ((p - 128) * contrast >> 6) + 128;
    if (p < 0) p = 0;
    if (p > 255) p = 255;
    pixels[i] = p;
  }
}
function run() {
  loadPixels();
  adjust(10, 70);
  adjust(-5, 60);
  var h = 0;
  var i;
  for (i = 0; i < pixels.length; i += 17) h = (h * 31 + pixels[i]) % 1000003;
  print(h);
}
)js";

/// imaging-desaturate: RGB -> gray over parallel arrays.
const char KrDesaturate[] = R"js(
var r = [];
var g = [];
var b = [];
function loadRgb() {
  var i;
  r = []; g = []; b = [];
  for (i = 0; i < 4096; i++) { r[i] = (i * 3) % 256; g[i] = (i * 5) % 256; b[i] = (i * 7) % 256; }
}
function desaturate() {
  var i;
  var acc = 0;
  for (i = 0; i < r.length; i++) {
    var gray = (r[i] * 77 + g[i] * 151 + b[i] * 28) >> 8;
    r[i] = gray; g[i] = gray; b[i] = gray;
    acc = (acc + gray) % 1000003;
  }
  return acc;
}
function run() {
  loadRgb();
  print(desaturate());
}
)js";

/// json-parse-financial: parsing a synthetic JSON-ish string into record
/// objects.
const char KrJsonParse[] = R"js(
var doc = '';
function buildDoc() {
  var parts = [];
  var i;
  for (i = 0; i < 50; i++)
    parts[i] = 'id:' + i + ',price:' + (i * 13 % 997) + ',qty:' + (i % 9);
  doc = parts.join(';');
}
function Record() { this.id = 0; this.price = 0; this.qty = 0; }
function parseNumber(s, from) {
  var v = 0;
  var i = from;
  while (i < s.length) {
    var c = s.charCodeAt(i);
    if (c < 48 || c > 57) break;
    v = v * 10 + (c - 48);
    i++;
  }
  return v;
}
function run() {
  buildDoc();
  var records = doc.split(';');
  var total = 0;
  var i;
  for (i = 0; i < records.length; i++) {
    var rec = new Record();
    var s = records[i];
    rec.id = parseNumber(s, s.indexOf('id:') + 3);
    rec.price = parseNumber(s, s.indexOf('price:') + 6);
    rec.qty = parseNumber(s, s.indexOf('qty:') + 4);
    total = (total + rec.price * rec.qty + rec.id) % 1000003;
  }
  print(total);
}
)js";

/// json-stringify-tinderbox: building a JSON-ish string from objects.
const char KrJsonStringify[] = R"js(
function Entry(name, ok, secs) { this.name = name; this.ok = ok; this.secs = secs; }
var entries = [];
function buildEntries() {
  entries = [];
  var i;
  for (i = 0; i < 60; i++)
    entries[i] = new Entry('build' + i, i % 4 != 0, i * 3 + 7);
}
function stringify() {
  var parts = [];
  var i;
  for (i = 0; i < entries.length; i++) {
    var e = entries[i];
    parts[i] = '{"name":"' + e.name + '","ok":' + (e.ok ? 'true' : 'false') +
               ',"secs":' + e.secs + '}';
  }
  return '[' + parts.join(',') + ']';
}
function run() {
  buildEntries();
  var s = stringify();
  var h = 0;
  var i;
  for (i = 0; i < s.length; i += 5) h = (h * 33 + s.charCodeAt(i)) % 1000003;
  print(h + s.length);
}
)js";

const Workload KrakenWorkloads[] = {
    {"ai-astar", "kraken", KrAiAstar, true},
    {"audio-beat-detection", "kraken", KrBeatDetection, true},
    {"audio-dft", "kraken", KrAudioDft, false},
    {"audio-fft", "kraken", KrAudioFft, false},
    {"audio-oscillator", "kraken", KrOscillator, true},
    {"imaging-darkroom", "kraken", KrDarkroom, false},
    {"imaging-desaturate", "kraken", KrDesaturate, false},
    {"imaging-gaussian-blur", "kraken", KrGaussianBlur, true},
    {"json-parse-financial", "kraken", KrJsonParse, false},
    {"json-stringify-tinderbox", "kraken", KrJsonStringify, false},
    {"stanford-crypto-aes", "kraken", KrStanfordAes, true},
    {"stanford-crypto-ccm", "kraken", KrStanfordCcm, true},
    {"stanford-crypto-pbkdf2", "kraken", KrStanfordPbkdf2, true},
    {"stanford-crypto-sha256", "kraken", KrStanfordSha256, true},
};

const size_t NumKrakenWorkloads =
    sizeof(KrakenWorkloads) / sizeof(KrakenWorkloads[0]);

} // namespace ccjs::workloads
