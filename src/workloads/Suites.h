//===- workloads/Suites.h - Per-suite workload tables ----------*- C++ -*-===//
///
/// \file
/// Internal header: the per-suite workload tables assembled by
/// Workloads.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_WORKLOADS_SUITES_H
#define CCJS_WORKLOADS_SUITES_H

#include "workloads/Workloads.h"

namespace ccjs::workloads {

extern const Workload OctaneWorkloads[];
extern const size_t NumOctaneWorkloads;

extern const Workload SunSpiderWorkloads[];
extern const size_t NumSunSpiderWorkloads;

extern const Workload KrakenWorkloads[];
extern const size_t NumKrakenWorkloads;

} // namespace ccjs::workloads

#endif // CCJS_WORKLOADS_SUITES_H
