//===- workloads/SunSpiderSuite.cpp - SunSpider-style workloads -----------===//

#include "workloads/Suites.h"

namespace ccjs::workloads {

/// 3d-cube: rotating a cube; vertex objects with double fields plus a
/// rotation-matrix array.
const char Ss3dCube[] = R"js(
function Vtx(x, y, z) { this.x = x; this.y = y; this.z = z; }
var verts = [];
function buildCube() {
  verts = [];
  var i;
  for (i = 0; i < 64; i++)
    verts[i] = new Vtx((i & 1) * 2.0 - 1.0, ((i >> 1) & 1) * 2.0 - 1.0, ((i >> 2) & 1) * 2.0 - 1.0 + i * 0.01);
}
function rotateAll(ang) {
  var s = Math.sin(ang);
  var c = Math.cos(ang);
  var i;
  for (i = 0; i < verts.length; i++) {
    var v = verts[i];
    var x = v.x * c - v.z * s;
    var z = v.x * s + v.z * c;
    v.x = x;
    v.z = z;
    var y = v.y * c - v.z * s;
    v.z = v.y * s + v.z * c;
    v.y = y;
  }
}
function run() {
  buildCube();
  var f;
  for (f = 0; f < 120; f++) rotateAll(0.05);
  var acc = 0.0;
  var i;
  for (i = 0; i < verts.length; i++) acc += verts[i].x * 2.0 + verts[i].y - verts[i].z;
  print(Math.floor(acc * 100000.0));
}
)js";

/// 3d-raytrace: sphere-grid intersection with vector objects.
const char Ss3dRayTrace[] = R"js(
function Vec(x, y, z) { this.x = x; this.y = y; this.z = z; }
var centers = [];
function buildScene() {
  centers = [];
  var i;
  for (i = 0; i < 12; i++) centers[i] = new Vec(i * 0.7 - 4.0, (i % 4) * 0.9 - 1.5, 3.0 + (i % 3));
}
function hitDistance(ox, oy, oz, dx, dy, dz) {
  var best = 1000.0;
  var i;
  for (i = 0; i < centers.length; i++) {
    var c = centers[i];
    var lx = c.x - ox;
    var ly = c.y - oy;
    var lz = c.z - oz;
    var t = lx * dx + ly * dy + lz * dz;
    if (t < 0.0) continue;
    var d2 = lx * lx + ly * ly + lz * lz - t * t;
    if (d2 < 0.49 && t < best) best = t;
  }
  return best;
}
function run() {
  buildScene();
  var acc = 0.0;
  var px, py;
  for (py = 0; py < 20; py++)
    for (px = 0; px < 20; px++) {
      var dx = (px - 10) * 0.05;
      var dy = (py - 10) * 0.05;
      var inv = 1.0 / Math.sqrt(dx * dx + dy * dy + 1.0);
      acc += hitDistance(0.0, 0.0, 0.0, dx * inv, dy * inv, inv);
    }
  print(Math.floor(acc * 1000.0));
}
)js";

/// access-binary-trees: GC-heavy tree allocation and traversal over
/// monomorphic two-pointer nodes.
const char SsBinaryTrees[] = R"js(
function TreeNode(left, right, item) { this.left = left; this.right = right; this.item = item; }
function bottomUp(item, depth) {
  if (depth <= 0) return new TreeNode(null, null, item);
  return new TreeNode(bottomUp(2 * item - 1, depth - 1), bottomUp(2 * item, depth - 1), item);
}
function itemCheck(n) {
  if (n.left === null) return n.item;
  return n.item + itemCheck(n.left) - itemCheck(n.right);
}
function run() {
  var check = 0;
  var d;
  for (d = 2; d <= 7; d++) {
    var iters = 1 << (8 - d);
    var i;
    for (i = 0; i < iters; i++)
      check += itemCheck(bottomUp(i, d)) + itemCheck(bottomUp(-i, d));
  }
  print(check);
}
)js";

/// access-fannkuch: SMI array permutation flipping; pure element traffic.
const char SsFannkuch[] = R"js(
function fannkuch(n) {
  var perm = [], perm1 = [], count = [];
  var i;
  for (i = 0; i < n; i++) perm1[i] = i;
  var maxFlips = 0;
  var r = n;
  var iters = 0;
  for (;;) {
    iters++;
    if (iters > 400) break;
    while (r != 1) { count[r - 1] = r; r--; }
    for (i = 0; i < n; i++) perm[i] = perm1[i];
    var flips = 0;
    var k = perm[0];
    while (k != 0) {
      var i2;
      for (i2 = 0; i2 * 2 < k; i2++) {
        var t = perm[i2];
        perm[i2] = perm[k - i2];
        perm[k - i2] = t;
      }
      flips++;
      k = perm[0];
    }
    if (flips > maxFlips) maxFlips = flips;
    for (;;) {
      if (r == n) return maxFlips * 1000 + iters;
      var p0 = perm1[0];
      for (i = 0; i < r; i++) perm1[i] = perm1[i + 1];
      perm1[r] = p0;
      count[r] = count[r] - 1;
      if (count[r] > 0) break;
      r++;
    }
  }
  return maxFlips * 1000 + iters;
}
function run() { print(fannkuch(7)); }
)js";

/// access-nbody: the classic planetary simulation — double-valued object
/// fields updated in a tight O(n^2) loop. A prime Class Cache target.
const char SsNBody[] = R"js(
function Body(x, y, z, vx, vy, vz, mass) {
  this.x = x; this.y = y; this.z = z;
  this.vx = vx; this.vy = vy; this.vz = vz;
  this.mass = mass;
}
var bodies = [];
function setupBodies() {
  bodies = [];
  bodies[0] = new Body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 39.47);
  bodies[1] = new Body(4.84, -1.16, -0.10, 0.60, 2.81, -0.02, 0.037);
  bodies[2] = new Body(8.34, 4.12, -0.40, -1.01, 1.82, 0.008, 0.011);
  bodies[3] = new Body(12.89, -15.11, -0.22, 1.08, 0.86, -0.010, 0.0017);
  bodies[4] = new Body(15.37, -25.91, 0.17, 0.97, 0.59, -0.034, 0.0020);
}
function advance(dt) {
  var i, j;
  var n = bodies.length;
  for (i = 0; i < n; i++) {
    var bi = bodies[i];
    for (j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x;
      var dy = bi.y - bj.y;
      var dz = bi.z - bj.z;
      var d2 = dx * dx + dy * dy + dz * dz;
      var mag = dt / (d2 * Math.sqrt(d2));
      bi.vx -= dx * bj.mass * mag; bi.vy -= dy * bj.mass * mag; bi.vz -= dz * bj.mass * mag;
      bj.vx += dx * bi.mass * mag; bj.vy += dy * bi.mass * mag; bj.vz += dz * bi.mass * mag;
    }
  }
  for (i = 0; i < n; i++) {
    var b = bodies[i];
    b.x += dt * b.vx; b.y += dt * b.vy; b.z += dt * b.vz;
  }
}
function energy() {
  var e = 0.0;
  var i, j;
  for (i = 0; i < bodies.length; i++) {
    var bi = bodies[i];
    e += 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz);
    for (j = i + 1; j < bodies.length; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x; var dy = bi.y - bj.y; var dz = bi.z - bj.z;
      e -= bi.mass * bj.mass / Math.sqrt(dx * dx + dy * dy + dz * dz);
    }
  }
  return e;
}
function run() {
  setupBodies();
  var s;
  for (s = 0; s < 220; s++) advance(0.01);
  print(Math.floor(energy() * 1000000.0));
}
)js";

/// access-nsieve: boolean-flag sieve over an elements array (no object
/// checks; context benchmark).
const char SsNsieve[] = R"js(
function sieve(m) {
  var flags = new Array(m + 1);
  var i, k;
  var count = 0;
  for (i = 2; i <= m; i++) flags[i] = true;
  for (i = 2; i <= m; i++) {
    if (flags[i]) {
      for (k = i + i; k <= m; k += i) flags[k] = false;
      count++;
    }
  }
  return count;
}
function run() { print(sieve(4000) + sieve(2000)); }
)js";

/// bitops-bits-in-byte: pure SMI bit twiddling in locals; no objects at
/// all (zero overhead half of Figure 2).
const char SsBitsInByte[] = R"js(
function bitsinbyte(b) {
  var m = 1, c = 0;
  while (m < 0x100) {
    if (b & m) c++;
    m <<= 1;
  }
  return c;
}
function run() {
  var sum = 0;
  var j, k;
  for (j = 0; j < 40; j++)
    for (k = 0; k < 256; k++) sum += bitsinbyte(k);
  print(sum);
}
)js";

/// controlflow-recursive: ackermann/fib/tak recursion, no heap traffic.
const char SsControlFlow[] = R"js(
function ack(m, n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
function tak(x, y, z) {
  if (y >= x) return z;
  return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}
function run() { print(ack(2, 5) * 100 + tak(9, 5, 2)); }
)js";

/// crypto-aes: byte-array substitution/mix rounds with a state object.
const char SsCryptoAes[] = R"js(
var sbox = [];
function Cipher() { this.rounds = 0; this.acc = 0; }
function makeSbox() {
  var i;
  sbox = [];
  for (i = 0; i < 256; i++) sbox[i] = (i * 7 + 99) & 0xff;
}
function encryptBlock(state, c) {
  var r, i;
  for (r = 0; r < 10; r++) {
    for (i = 0; i < 16; i++) state[i] = sbox[state[i]];
    var t = state[0];
    for (i = 0; i < 15; i++) state[i] = state[i + 1] ^ (t & r);
    state[15] = t;
    c.rounds = c.rounds + 1;
  }
  var h = 0;
  for (i = 0; i < 16; i++) h = (h * 31 + state[i]) & 0xffffff;
  c.acc = (c.acc + h) % 1000003;
}
function run() {
  makeSbox();
  var c = new Cipher();
  var state = [];
  var b, i;
  for (i = 0; i < 16; i++) state[i] = i * 11 & 0xff;
  for (b = 0; b < 120; b++) encryptBlock(state, c);
  print(c.acc + c.rounds);
}
)js";

/// crypto-md5: word-array mixing rounds (SMI bitops; modest object use).
const char SsCryptoMd5[] = R"js(
var words = [];
function fillWords() {
  var i;
  words = [];
  for (i = 0; i < 64; i++) words[i] = (i * 0x9e3779b9) & 0x7fffffff;
}
function mix() {
  var a = 0x6745, b = 0xefcd, c = 0x98ba, d = 0x1032;
  var i;
  for (i = 0; i < 64; i++) {
    var f = (b & c) | (~b & d);
    var t = d; d = c; c = b;
    b = (b + ((a + f + words[i]) << (i % 5))) & 0x7fffffff;
    a = t;
  }
  return (a ^ b ^ c ^ d) & 0x7fffffff;
}
function run() {
  fillWords();
  var s = 0;
  var r;
  for (r = 0; r < 150; r++) { s = (s + mix()) % 1000003; words[r % 64] = (words[r % 64] + r) & 0x7fffffff; }
  print(s);
}
)js";

/// crypto-sha1: rotate-and-mix over a word array.
const char SsCryptoSha1[] = R"js(
var block = [];
function fillBlock() {
  var i;
  block = [];
  for (i = 0; i < 80; i++) block[i] = (i * 0x5a82 + 1) & 0x3fffffff;
}
function rounds() {
  var a = 0x6745, b = 0x2301, c = 0xefcd, d = 0xab89, e = 0x98ba;
  var i;
  for (i = 0; i < 80; i++) {
    var f;
    if (i < 20) f = (b & c) | (~b & d);
    else if (i < 40) f = b ^ c ^ d;
    else if (i < 60) f = (b & c) | (b & d) | (c & d);
    else f = b ^ c ^ d;
    var t = (((a << 5) | (a >>> 27)) + f + e + block[i]) & 0x3fffffff;
    e = d; d = c; c = (b << 2) & 0x3fffffff; b = a; a = t;
  }
  return (a + b + c + d + e) & 0x3fffffff;
}
function run() {
  fillBlock();
  var s = 0;
  var r;
  for (r = 0; r < 120; r++) { s = (s + rounds()) % 1000003; block[r % 80] = (block[r % 80] ^ r) & 0x3fffffff; }
  print(s);
}
)js";

/// date-format-tofte: month/day name tables and string assembly.
const char SsDateFormat[] = R"js(
var months = [];
var days = [];
function buildTables() {
  months = ['January','February','March','April','May','June','July',
            'August','September','October','November','December'];
  days = ['Sun','Mon','Tue','Wed','Thu','Fri','Sat'];
}
function pad2(n) { return n < 10 ? '0' + n : '' + n; }
function formatDate(t) {
  var day = days[t % 7];
  var month = months[t % 12];
  var dom = 1 + (t % 28);
  var h = t % 24;
  var m = (t * 7) % 60;
  return day + ' ' + month + ' ' + pad2(dom) + ' ' + pad2(h) + ':' + pad2(m);
}
function run() {
  buildTables();
  var len = 0;
  var t;
  for (t = 0; t < 320; t++) len += formatDate(t * 86377).length;
  print(len);
}
)js";

/// math-cordic: fixed-point rotation, pure local arithmetic.
const char SsMathCordic[] = R"js(
var angles = [];
function setupAngles() {
  angles = [];
  var i;
  var v = 0x4000;
  for (i = 0; i < 14; i++) { angles[i] = v; v = (v / 2) | 0; }
}
function cordic(target) {
  var x = 0x2000, y = 0, acc = 0;
  var i;
  for (i = 0; i < 14; i++) {
    var nx;
    if (acc < target) { nx = x - (y >> i); y = y + (x >> i); acc += angles[i]; }
    else { nx = x + (y >> i); y = y - (x >> i); acc -= angles[i]; }
    x = nx;
  }
  return x ^ y;
}
function run() {
  setupAngles();
  var s = 0;
  var t;
  for (t = 0; t < 900; t++) s = (s + cordic((t * 37) & 0x7fff)) & 0xffffff;
  print(s);
}
)js";

/// math-partial-sums: double accumulation series.
const char SsPartialSums[] = R"js(
function run() {
  var a1 = 0.0, a2 = 0.0, a3 = 0.0, a4 = 0.0;
  var k;
  for (k = 1; k <= 2000; k++) {
    var k2 = k * k;
    var sk = Math.sin(k);
    var ck = Math.cos(k);
    a1 += 1.0 / k;
    a2 += 1.0 / k2;
    a3 += 1.0 / (k2 * (sk * sk + 0.0001));
    a4 += 1.0 / (k2 * (ck * ck + 0.0001));
  }
  print(Math.floor((a1 + a2 + a3 * 0.001 + a4 * 0.001) * 10000.0));
}
)js";

/// math-spectral-norm: matrix-free power iteration with double arrays.
const char SsSpectralNorm[] = R"js(
function A(i, j) { return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1); }
function multAv(v, av) {
  var i, j;
  var n = v.length;
  for (i = 0; i < n; i++) {
    var s = 0.0;
    for (j = 0; j < n; j++) s += A(i, j) * v[j];
    av[i] = s;
  }
}
function multAtv(v, av) {
  var i, j;
  var n = v.length;
  for (i = 0; i < n; i++) {
    var s = 0.0;
    for (j = 0; j < n; j++) s += A(j, i) * v[j];
    av[i] = s;
  }
}
function run() {
  var n = 28;
  var u = [], v = [], w = [];
  var i;
  for (i = 0; i < n; i++) { u[i] = 1.0; v[i] = 0.0; w[i] = 0.0; }
  var it;
  for (it = 0; it < 6; it++) {
    multAv(u, w); multAtv(w, v);
    multAv(v, w); multAtv(w, u);
  }
  var vbv = 0.0, vv = 0.0;
  for (i = 0; i < n; i++) { vbv += u[i] * v[i]; vv += v[i] * v[i]; }
  print(Math.floor(Math.sqrt(vbv / vv) * 1000000.0));
}
)js";

/// regexp-dna-lite: substring counting over a synthetic DNA string.
const char SsRegexpDna[] = R"js(
var dna = '';
function buildDna() {
  var parts = [];
  var i;
  var bases = 'acgt';
  for (i = 0; i < 600; i++) parts[i] = bases.charAt((i * 7 + (i >> 3)) % 4);
  dna = parts.join('');
}
function countPattern(p) {
  var n = 0;
  var i;
  var limit = dna.length - p.length;
  for (i = 0; i <= limit; i++) {
    var k = 0;
    while (k < p.length && dna.charCodeAt(i + k) == p.charCodeAt(k)) k++;
    if (k == p.length) n++;
  }
  return n;
}
function run() {
  buildDna();
  print(countPattern('acgt') * 100 + countPattern('gaa') * 10 + countPattern('tt'));
}
)js";

/// string-base64: base64 encoding through char-code arithmetic.
const char SsStringBase64[] = R"js(
var alphabet = 'ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/';
function encode(len) {
  var out = '';
  var i;
  for (i = 0; i + 2 < len; i += 3) {
    var b0 = (i * 73) & 0xff, b1 = (i * 149 + 1) & 0xff, b2 = (i * 211 + 2) & 0xff;
    var triple = (b0 << 16) | (b1 << 8) | b2;
    out = out + alphabet.charAt((triple >> 18) & 63) + alphabet.charAt((triple >> 12) & 63)
              + alphabet.charAt((triple >> 6) & 63) + alphabet.charAt(triple & 63);
  }
  return out;
}
function run() {
  var s = encode(900);
  var h = 0;
  var i;
  for (i = 0; i < s.length; i += 7) h = (h * 33 + s.charCodeAt(i)) % 1000003;
  print(h + s.length);
}
)js";

/// string-fasta: weighted random sequence generation.
const char SsStringFasta[] = R"js(
var seed = 42;
function rng(max) {
  seed = (seed * 3877 + 29573) % 139968;
  return max * seed / 139968;
}
function makeCumulative(probs) {
  var c = [];
  var acc = 0.0;
  var i;
  for (i = 0; i < probs.length; i++) { acc += probs[i]; c[i] = acc; }
  return c;
}
function run() {
  seed = 42;
  var letters = 'acgtBDHKMNRSVWY';
  var cum = makeCumulative([0.27, 0.12, 0.12, 0.27, 0.02, 0.02, 0.02, 0.02,
                            0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02]);
  var h = 0;
  var n;
  for (n = 0; n < 2500; n++) {
    var r = rng(1.0);
    var i = 0;
    while (i < cum.length - 1 && cum[i] < r) i++;
    h = (h * 31 + letters.charCodeAt(i)) % 1000003;
  }
  print(h);
}
)js";

/// string-unpack-code: splitting and re-joining packed strings.
const char SsStringUnpack[] = R"js(
var packed = '';
function buildPacked() {
  var parts = [];
  var i;
  for (i = 0; i < 80; i++) parts[i] = 'sym' + i;
  packed = parts.join('|');
}
function unpack() {
  var words = packed.split('|');
  var total = 0;
  var i;
  for (i = 0; i < words.length; i++) total += words[i].length + words[i].charCodeAt(0);
  return total + words.length;
}
function run() {
  buildPacked();
  var s = 0;
  var r;
  for (r = 0; r < 10; r++) s += unpack();
  print(s);
}
)js";

/// string-validate-input: checking synthetic user input strings.
const char SsStringValidate[] = R"js(
function isDigit(c) { return c >= 48 && c <= 57; }
function isAlpha(c) { return (c >= 97 && c <= 122) || (c >= 65 && c <= 90); }
function validate(s) {
  var at = s.indexOf('@');
  if (at <= 0) return 0;
  var i;
  for (i = 0; i < s.length; i++) {
    var c = s.charCodeAt(i);
    if (!isDigit(c) && !isAlpha(c) && c != 64 && c != 46) return 0;
  }
  return 1;
}
function run() {
  var good = 0;
  var i;
  for (i = 0; i < 250; i++) {
    var name = 'user' + i;
    var addr = i % 3 == 0 ? name + '@host' + (i % 7) + '.com'
                          : (i % 3 == 1 ? name + '#bad' : name + '@ok.org');
    good += validate(addr);
  }
  print(good);
}
)js";

/// 3d-morph: pure double-array mesh morphing (no object checks).
const char Ss3dMorph[] = R"js(
var mesh = [];
function initMesh() {
  var i;
  mesh = [];
  for (i = 0; i < 900; i++) mesh[i] = 0.0;
}
function morph(f) {
  var i;
  var PI2 = Math.PI * 2.0;
  for (i = 0; i < 900; i++)
    mesh[i] = Math.sin((i % 30) / 30.0 * PI2 + f) * 0.4 + mesh[i] * 0.6;
}
function run() {
  initMesh();
  var f;
  for (f = 0; f < 15; f++) morph(f * 0.2);
  var s = 0.0;
  var i;
  for (i = 0; i < 900; i += 9) s += mesh[i];
  print(Math.floor(s * 1000000.0));
}
)js";

const Workload SunSpiderWorkloads[] = {
    {"3d-cube", "sunspider", Ss3dCube, true},
    {"3d-morph", "sunspider", Ss3dMorph, false},
    {"3d-raytrace", "sunspider", Ss3dRayTrace, true},
    {"access-binary-trees", "sunspider", SsBinaryTrees, true},
    {"access-fannkuch", "sunspider", SsFannkuch, true},
    {"access-nbody", "sunspider", SsNBody, true},
    {"access-nsieve", "sunspider", SsNsieve, false},
    {"bitops-bits-in-byte", "sunspider", SsBitsInByte, false},
    {"controlflow-recursive", "sunspider", SsControlFlow, false},
    {"crypto-aes", "sunspider", SsCryptoAes, true},
    {"crypto-md5", "sunspider", SsCryptoMd5, false},
    {"crypto-sha1", "sunspider", SsCryptoSha1, false},
    {"date-format-tofte", "sunspider", SsDateFormat, true},
    {"math-cordic", "sunspider", SsMathCordic, false},
    {"math-partial-sums", "sunspider", SsPartialSums, false},
    {"math-spectral-norm", "sunspider", SsSpectralNorm, true},
    {"regexp-dna", "sunspider", SsRegexpDna, false},
    {"string-base64", "sunspider", SsStringBase64, false},
    {"string-fasta", "sunspider", SsStringFasta, false},
    {"string-unpack-code", "sunspider", SsStringUnpack, true},
    {"string-validate-input", "sunspider", SsStringValidate, false},
};

const size_t NumSunSpiderWorkloads =
    sizeof(SunSpiderWorkloads) / sizeof(SunSpiderWorkloads[0]);

} // namespace ccjs::workloads
