//===- workloads/OctaneSuite.cpp - Octane-style workloads -----------------===//
///
/// MiniJS ports of the Octane benchmarks the paper evaluates. See
/// Workloads.h for the porting rules.
///
//===----------------------------------------------------------------------===//

#include "workloads/Suites.h"

namespace ccjs::workloads {

/// richards: an OS scheduler simulation. Task and Packet objects with
/// monomorphic fields, queues as elements arrays, light polymorphism in the
/// dispatch loop.
const char OctaneRichards[] = R"js(
var NTASKS = 6;
var tasks = [];
function Task(id, pri) {
  this.id = id;
  this.pri = pri;
  this.queue = [];
  this.head = 0;
  this.processed = 0;
  this.acc = 0;
}
function Packet(dest, val) {
  this.dest = dest;
  this.val = val;
}
function post(task, pkt) { task.queue.push(pkt); }
function setupTasks() {
  var i;
  tasks = [];
  for (i = 0; i < NTASKS; i++) tasks[i] = new Task(i, (i * 7) % 5);
  for (i = 0; i < 24; i++)
    post(tasks[i % NTASKS], new Packet((i + 1) % NTASKS, i * 3 + 1));
}
function schedule(rounds) {
  var r, i;
  for (r = 0; r < rounds; r++) {
    var best = null;
    for (i = 0; i < NTASKS; i++) {
      var t = tasks[i];
      if (t.head < t.queue.length && (best === null || t.pri > best.pri))
        best = t;
    }
    if (best === null) break;
    var pkt = best.queue[best.head];
    best.head = best.head + 1;
    best.processed = best.processed + 1;
    best.acc = (best.acc + pkt.val) % 65521;
    var nv = (pkt.val * 13 + best.id) % 4093;
    if (pkt.val % 3 != 0) post(tasks[pkt.dest], new Packet((pkt.dest + 2) % NTASKS, nv));
  }
}
function run() {
  setupTasks();
  schedule(4000);
  var sum = 0;
  var i;
  for (i = 0; i < NTASKS; i++) sum = (sum + tasks[i].acc * (i + 1) + tasks[i].processed) % 1000000007;
  print(sum);
}
)js";

/// deltablue: one-way constraint solver. Variable/Constraint object graphs
/// with repeated propagation over monomorphic fields.
const char OctaneDeltaBlue[] = R"js(
var variables = [];
var constraints = [];
function Variable(value) {
  this.value = value;
  this.stay = true;
  this.mark = 0;
}
function Constraint(a, b, scale, offset, strength) {
  this.a = a;
  this.b = b;
  this.scale = scale;
  this.offset = offset;
  this.strength = strength;
  this.satisfied = false;
}
function build(n) {
  var i;
  variables = [];
  constraints = [];
  for (i = 0; i <= n; i++) variables[i] = new Variable(i);
  for (i = 0; i < n; i++)
    constraints[i] = new Constraint(variables[i], variables[i + 1], 2, 1, i % 3);
}
function propagate() {
  var i;
  for (i = 0; i < constraints.length; i++) {
    var c = constraints[i];
    if (c.strength > 0) {
      c.b.value = (c.a.value * c.scale + c.offset) % 1000003;
      c.b.stay = c.a.stay;
      c.satisfied = true;
    } else {
      c.satisfied = false;
    }
  }
}
function run() {
  build(60);
  var p;
  for (p = 0; p < 60; p++) {
    variables[0].value = p;
    propagate();
  }
  print(variables[60].value + constraints.length);
}
)js";

/// raytrace: vector math over small objects; constructor-heavy with
/// HeapNumber-valued fields.
const char OctaneRayTrace[] = R"js(
function V3(x, y, z) { this.x = x; this.y = y; this.z = z; }
function Sphere(c, r, col) { this.c = c; this.r = r; this.col = col; }
function Ray(o, d) { this.o = o; this.d = d; }
var scene = [];
function vdot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
function vsub(a, b) { return new V3(a.x - b.x, a.y - b.y, a.z - b.z); }
function setupScene() {
  var i;
  scene = [];
  for (i = 0; i < 8; i++)
    scene[i] = new Sphere(new V3(i * 1.5 - 6.0, (i % 3) - 1.0, 4.0 + i), 0.8 + 0.1 * i, i * 30);
}
function traceRay(ray) {
  var best = 1e9;
  var hit = -1;
  var i;
  for (i = 0; i < scene.length; i++) {
    var s = scene[i];
    var oc = vsub(s.c, ray.o);
    var tca = vdot(oc, ray.d);
    if (tca < 0) continue;
    var d2 = vdot(oc, oc) - tca * tca;
    var r2 = s.r * s.r;
    if (d2 > r2) continue;
    var t = tca - Math.sqrt(r2 - d2);
    if (t < best) { best = t; hit = i; }
  }
  return hit < 0 ? 0 : scene[hit].col + best;
}
function run() {
  setupScene();
  var acc = 0.0;
  var px, py;
  for (py = 0; py < 24; py++) {
    for (px = 0; px < 24; px++) {
      var dx = (px - 12) / 24.0;
      var dy = (py - 12) / 24.0;
      var n = Math.sqrt(dx * dx + dy * dy + 1.0);
      acc += traceRay(new Ray(new V3(0.0, 0.0, 0.0), new V3(dx / n, dy / n, 1.0 / n)));
    }
  }
  print(Math.floor(acc));
}
)js";

/// crypto: modular exponentiation over SMI digit arrays (RSA flavour);
/// dominated by element accesses and tag/untag arithmetic.
const char OctaneCrypto[] = R"js(
var BASE = 16384;
function mulmod(a, b, out, m) {
  var i, j;
  for (i = 0; i < out.length; i++) out[i] = 0;
  for (i = 0; i < a.length; i++) {
    var carry = 0;
    for (j = 0; j < b.length; j++) {
      var t = out[i + j] + a[i] * b[j] + carry;
      out[i + j] = t % BASE;
      carry = (t - out[i + j]) / BASE;
    }
    out[i + b.length] = (out[i + b.length] + carry) % BASE;
  }
  var acc = 0;
  for (i = 0; i < out.length; i++) acc = (acc * 31 + out[i]) % m;
  return acc;
}
function run() {
  var a = [], b = [], out = [];
  var i;
  for (i = 0; i < 24; i++) { a[i] = (i * 2311 + 17) % BASE; b[i] = (i * 4057 + 3) % BASE; }
  for (i = 0; i < 49; i++) out[i] = 0;
  var sum = 0;
  var round;
  for (round = 0; round < 12; round++) {
    sum = (sum + mulmod(a, b, out, 999983)) % 999983;
    a[round % 24] = (a[round % 24] + round) % BASE;
  }
  print(sum);
}
)js";

/// earley-boyer: symbolic list processing with cons cells; deep recursion
/// over monomorphic two-field objects.
const char OctaneEarleyBoyer[] = R"js(
function Cons(car, cdr) { this.car = car; this.cdr = cdr; }
function listLen(l) { var n = 0; while (l !== null) { n++; l = l.cdr; } return n; }
function rewrite(l, depth) {
  if (l === null || depth > 12) return null;
  if (l.car % 2 == 0)
    return new Cons(l.car * 3 + 1, rewrite(l.cdr, depth + 1));
  return new Cons(l.car - 1, rewrite(l.cdr, depth + 1));
}
function sumList(l) { var s = 0; while (l !== null) { s = (s + l.car) % 1000003; l = l.cdr; } return s; }
function makeList(n, seed) {
  var l = null;
  var i;
  for (i = 0; i < n; i++) l = new Cons((seed + i * 7) % 97, l);
  return l;
}
function run() {
  var total = 0;
  var t;
  for (t = 0; t < 120; t++) {
    var l = makeList(12, t);
    var r = l;
    var k;
    for (k = 0; k < 4; k++) r = rewrite(r, 0);
    total = (total + sumList(r) + listLen(l)) % 1000003;
  }
  print(total);
}
)js";

/// gbemu: a toy 8-bit CPU interpreter; a big SMI memory array, opcode
/// dispatch, flag bit twiddling, and a register-file object.
const char OctaneGbEmu[] = R"js(
var mem = [];
function Cpu() { this.a = 0; this.b = 0; this.pc = 0; this.sp = 255; this.flags = 0; this.cycles = 0; }
var cpu = null;
function resetMachine() {
  var i;
  mem = [];
  for (i = 0; i < 4096; i++) mem[i] = (i * 167 + 13) & 0xff;
  cpu = new Cpu();
}
function step() {
  var op = mem[cpu.pc & 4095];
  cpu.pc = (cpu.pc + 1) & 4095;
  var k = op & 7;
  if (k == 0) { cpu.a = (cpu.a + mem[(cpu.pc + op) & 4095]) & 0xff; }
  else if (k == 1) { cpu.b = (cpu.b ^ op) & 0xff; }
  else if (k == 2) { mem[(cpu.sp + op) & 4095] = (cpu.a + cpu.b) & 0xff; }
  else if (k == 3) { cpu.flags = ((cpu.a & 0x80) != 0 ? 1 : 0) | (cpu.b == 0 ? 2 : 0); }
  else if (k == 4) { cpu.a = (cpu.a << 1 | (cpu.flags & 1)) & 0xff; }
  else if (k == 5) { cpu.sp = (cpu.sp + 1) & 4095; }
  else if (k == 6) { cpu.pc = (cpu.pc + (op >> 3)) & 4095; }
  else { cpu.b = (cpu.b + 1) & 0xff; }
  cpu.cycles = cpu.cycles + 1;
}
function run() {
  resetMachine();
  var i;
  for (i = 0; i < 30000; i++) step();
  var h = 0;
  for (i = 0; i < 4096; i += 64) h = (h * 31 + mem[i]) % 1000003;
  print(h + cpu.a * 7 + cpu.b * 3 + cpu.flags);
}
)js";

/// box2d: a tiny rigid-body step with many object classes (the paper notes
/// box2d exceeds 32 hidden classes) and double-valued fields.
const char OctaneBox2d[] = R"js(
function Body(x, y) { this.x = x; this.y = y; this.vx = 0.0; this.vy = 0.0; this.inv = 1.0; }
function AABB(lo, hi) { this.lo = lo; this.hi = hi; }
function Vec(x, y) { this.x = x; this.y = y; }
function Joint(a, b, rest) { this.a = a; this.b = b; this.rest = rest; this.bias = 0.0; }
function Contact(i, j, depth) { this.i = i; this.j = j; this.depth = depth; }
function Fixture(body, w, h) { this.body = body; this.w = w; this.h = h; }
function World() { this.gravity = new Vec(0.0, -10.0); this.steps = 0; }
var bodies = [];
var joints = [];
var world = null;
function setupWorld() {
  var i;
  world = new World();
  bodies = [];
  joints = [];
  for (i = 0; i < 24; i++) bodies[i] = new Body(i * 0.5, 10.0 + (i % 4));
  for (i = 0; i + 1 < 24; i++) joints[i] = new Joint(bodies[i], bodies[i + 1], 0.5);
}
function stepWorld(dt) {
  var i;
  for (i = 0; i < bodies.length; i++) {
    var b = bodies[i];
    b.vy += world.gravity.y * dt * b.inv;
    b.x += b.vx * dt;
    b.y += b.vy * dt;
    if (b.y < 0.0) { b.y = 0.0; b.vy = -b.vy * 0.5; }
  }
  for (i = 0; i < joints.length; i++) {
    var j = joints[i];
    var dx = j.b.x - j.a.x;
    var dy = j.b.y - j.a.y;
    var d = Math.sqrt(dx * dx + dy * dy) + 0.0001;
    var corr = (d - j.rest) * 0.25 / d;
    j.a.vx += dx * corr; j.a.vy += dy * corr;
    j.b.vx -= dx * corr; j.b.vy -= dy * corr;
    j.bias = corr;
  }
  world.steps = world.steps + 1;
}
function run() {
  setupWorld();
  var s;
  for (s = 0; s < 160; s++) stepWorld(0.016);
  var acc = 0.0;
  var i;
  for (i = 0; i < bodies.length; i++) acc += bodies[i].x * 3.0 + bodies[i].y;
  print(Math.floor(acc * 1000.0));
}
)js";

/// pdfjs: token scanning over a byte array, building token objects and a
/// small dictionary of counters.
const char OctanePdfJs[] = R"js(
var bytes = [];
function Token(kind, start, len) { this.kind = kind; this.start = start; this.len = len; }
function Stats() { this.names = 0; this.numbers = 0; this.ops = 0; this.total = 0; }
function fillBytes() {
  var i;
  bytes = [];
  for (i = 0; i < 6000; i++) {
    var r = (i * 1103515245 + 12345) % 100;
    if (r < 30) bytes[i] = 48 + (r % 10);        // digits
    else if (r < 60) bytes[i] = 97 + (r % 26);   // letters
    else if (r < 70) bytes[i] = 47;              // '/'
    else bytes[i] = 32;                          // space
  }
}
function scan(stats) {
  var i = 0;
  var toks = 0;
  while (i < bytes.length) {
    var c = bytes[i];
    if (c == 32) { i++; continue; }
    var start = i;
    var kind;
    if (c == 47) { kind = 1; i++; while (i < bytes.length && bytes[i] >= 97) i++; stats.names++; }
    else if (c >= 48 && c <= 57) { kind = 2; while (i < bytes.length && bytes[i] >= 48 && bytes[i] <= 57) i++; stats.numbers++; }
    else { kind = 3; while (i < bytes.length && bytes[i] >= 97) i++; stats.ops++; }
    var t = new Token(kind, start, i - start);
    stats.total = (stats.total + t.kind * t.len + t.start) % 1000003;
    toks++;
  }
  return toks;
}
function run() {
  fillBytes();
  var stats = new Stats();
  var n = 0;
  var r;
  for (r = 0; r < 6; r++) n += scan(stats);
  print(stats.total + n + stats.names + stats.numbers * 2 + stats.ops * 3);
}
)js";

/// mandreel: compiled-C++ style code — flat arrays as a fake heap, an
/// object-free inner loop mixed with a few state objects.
const char OctaneMandreel[] = R"js(
var heap32 = [];
function Module() { this.hp = 0; this.calls = 0; }
var module = null;
function initHeap() {
  var i;
  heap32 = [];
  for (i = 0; i < 4096; i++) heap32[i] = (i * 2654435761) & 0x3fffffff;
  module = new Module();
}
function kernelAdd(p, q, n) {
  var i;
  for (i = 0; i < n; i++)
    heap32[p + i] = (heap32[p + i] + heap32[q + i]) & 0x3fffffff;
  module.calls = module.calls + 1;
}
function kernelMix(p, n) {
  var i;
  for (i = 1; i < n; i++)
    heap32[p + i] = (heap32[p + i] ^ (heap32[p + i - 1] >> 3)) & 0x3fffffff;
  module.calls = module.calls + 1;
}
function run() {
  initHeap();
  var r;
  for (r = 0; r < 30; r++) {
    kernelAdd(0, 1024, 1024);
    kernelMix(2048, 1024);
  }
  var h = 0;
  var i;
  for (i = 0; i < 4096; i += 32) h = (h * 33 + heap32[i]) % 1000003;
  print(h + module.calls);
}
)js";

// --- Octane benchmarks outside the selected set (low check overhead or
// --- dominated by non-optimized code); used for Figures 1 and 3 context.

/// splay: self-adjusting binary tree; node objects with left/right/key.
const char OctaneSplay[] = R"js(
function Node(key) { this.key = key; this.left = null; this.right = null; }
var root = null;
function insert(key) {
  if (root === null) { root = new Node(key); return; }
  var n = root;
  for (;;) {
    if (key < n.key) { if (n.left === null) { n.left = new Node(key); return; } n = n.left; }
    else if (key > n.key) { if (n.right === null) { n.right = new Node(key); return; } n = n.right; }
    else return;
  }
}
function depthSum(n, d) {
  if (n === null) return 0;
  return d + depthSum(n.left, d + 1) + depthSum(n.right, d + 1);
}
function run() {
  root = null;
  var x = 1;
  var i;
  for (i = 0; i < 600; i++) { x = (x * 1103515245 + 12345) % 2048; insert(x); }
  print(depthSum(root, 1));
}
)js";

/// navier-stokes: double-array fluid kernel; almost no object checks.
const char OctaneNavierStokes[] = R"js(
var u = [];
var v = [];
var SIZE = 34;
function initFields() {
  var i;
  u = []; v = [];
  for (i = 0; i < SIZE * SIZE; i++) { u[i] = 0.0; v[i] = 0.0; }
  u[SIZE * 17 + 17] = 10.0;
}
function diffuse(dst, src) {
  var x, y;
  for (y = 1; y < SIZE - 1; y++) {
    for (x = 1; x < SIZE - 1; x++) {
      var i = y * SIZE + x;
      dst[i] = (src[i] + 0.2 * (src[i - 1] + src[i + 1] + src[i - SIZE] + src[i + SIZE])) / 1.8;
    }
  }
}
function run() {
  initFields();
  var it;
  for (it = 0; it < 14; it++) { diffuse(v, u); diffuse(u, v); }
  var s = 0.0;
  var i;
  for (i = 0; i < SIZE * SIZE; i += 7) s += u[i];
  print(Math.floor(s * 1e6));
}
)js";

/// regexp: string scanning without objects — zero check overhead after
/// object loads (built-in string data only).
const char OctaneRegExp[] = R"js(
var text = '';
function buildText() {
  var parts = [];
  var i;
  for (i = 0; i < 60; i++)
    parts[i] = i % 3 == 0 ? 'foo' + i : (i % 3 == 1 ? 'bar' + i : 'baz' + i);
  text = parts.join(' ');
}
function countMatches(needle) {
  var n = 0;
  var s = text;
  for (;;) {
    var p = s.indexOf(needle);
    if (p < 0) break;
    n++;
    s = s.substring(p + needle.length);
  }
  return n;
}
function run() {
  buildText();
  print(countMatches('ba') * 3 + countMatches('foo') + text.length);
}
)js";

/// code-load: creates many distinct hidden classes and runs each briefly —
/// most time in non-optimized code.
const char OctaneCodeLoad[] = R"js(
function mk0() { return {a0: 1}; }
function mk1() { return {b0: 1, b1: 2}; }
function mk2() { return {c0: 1, c1: 2, c2: 3}; }
function mk3() { return {d0: 1, d1: 2, d2: 3, d3: 4}; }
function mk4() { return {e0: 2, e1: 3}; }
function mk5() { return {f0: 5}; }
function touch(o, k) {
  if (k == 0) return o.a0;
  if (k == 1) return o.b0 + o.b1;
  if (k == 2) return o.c0 + o.c1 + o.c2;
  if (k == 3) return o.d0 + o.d1 + o.d2 + o.d3;
  if (k == 4) return o.e0 * o.e1;
  return o.f0;
}
function run() {
  var s = 0;
  var i;
  for (i = 0; i < 400; i++) {
    var k = i % 6;
    var o;
    if (k == 0) o = mk0(); else if (k == 1) o = mk1(); else if (k == 2) o = mk2();
    else if (k == 3) o = mk3(); else if (k == 4) o = mk4(); else o = mk5();
    s = (s + touch(o, k)) % 65521;
  }
  print(s);
}
)js";

/// typescript: a lexer-flavoured workload over strings and token arrays.
const char OctaneTypescript[] = R"js(
var source = '';
function buildSource() {
  var parts = [];
  var i;
  for (i = 0; i < 40; i++)
    parts[i] = 'var x' + i + ' = ' + i + ' + y' + i + ';';
  source = parts.join(' ');
}
function lex() {
  var count = 0;
  var i = 0;
  var n = source.length;
  while (i < n) {
    var c = source.charCodeAt(i);
    if (c == 32) { i++; continue; }
    if (c >= 97 && c <= 122) { while (i < n && ((source.charCodeAt(i) >= 97 && source.charCodeAt(i) <= 122) || (source.charCodeAt(i) >= 48 && source.charCodeAt(i) <= 57))) i++; count += 2; continue; }
    if (c >= 48 && c <= 57) { while (i < n && source.charCodeAt(i) >= 48 && source.charCodeAt(i) <= 57) i++; count += 3; continue; }
    i++;
    count++;
  }
  return count;
}
function run() {
  buildSource();
  var s = 0;
  var r;
  for (r = 0; r < 8; r++) s += lex();
  print(s);
}
)js";

/// zlib: LZ-style match finding over SMI byte arrays.
const char OctaneZlib[] = R"js(
var data = [];
function fillData() {
  var i;
  data = [];
  for (i = 0; i < 3000; i++) data[i] = (i * 37 + (i >> 4)) & 0xff;
}
function longestMatch(pos, limit) {
  var best = 0;
  var back;
  for (back = 1; back <= 32 && back <= pos; back++) {
    var len = 0;
    while (len < limit && pos + len < data.length && data[pos + len] == data[pos - back + len]) len++;
    if (len > best) best = len;
  }
  return best;
}
function run() {
  fillData();
  var s = 0;
  var pos;
  for (pos = 64; pos < data.length; pos += 13) s = (s + longestMatch(pos, 16)) % 65521;
  print(s);
}
)js";

const Workload OctaneWorkloads[] = {
    {"box2d", "octane", OctaneBox2d, true},
    {"code-load", "octane", OctaneCodeLoad, false},
    {"crypto", "octane", OctaneCrypto, true},
    {"deltablue", "octane", OctaneDeltaBlue, true},
    {"earley-boyer", "octane", OctaneEarleyBoyer, true},
    {"gbemu", "octane", OctaneGbEmu, true},
    {"mandreel", "octane", OctaneMandreel, true},
    {"navier-stokes", "octane", OctaneNavierStokes, false},
    {"pdfjs", "octane", OctanePdfJs, true},
    {"raytrace", "octane", OctaneRayTrace, true},
    {"regexp", "octane", OctaneRegExp, false},
    {"richards", "octane", OctaneRichards, true},
    {"splay", "octane", OctaneSplay, false},
    {"typescript", "octane", OctaneTypescript, false},
    {"zlib", "octane", OctaneZlib, false},
};

const size_t NumOctaneWorkloads =
    sizeof(OctaneWorkloads) / sizeof(OctaneWorkloads[0]);

} // namespace ccjs::workloads
