//===- jit/FusionPass.h - Superinstruction fusion over OptIR ----*- C++ -*-===//
///
/// \file
/// The superinstruction dispatch tier (DESIGN.md §4.8): a post-build pass
/// that rewrites hot op pairs/triples into fused opcodes, trading host
/// dispatches for longer handlers while keeping the simulated event
/// stream byte-identical to unfused switch dispatch.
///
/// Fusion is *slot-preserving*: only the first op of a matched sequence
/// changes opcode; the following slots keep their original ops so jumps
/// into the middle of a sequence still land on valid handlers. The fused
/// handler reads component operands from Ops[Cur+1] / Ops[Cur+2] and
/// skips the intermediate fetches.
///
/// The pattern table is mined from the dynamic opcode-adjacency histogram
/// (`ccjs --op-hist`, EXPERIMENTS.md); EngineConfig::FusedPatternMask
/// ablates individual patterns by table index.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_JIT_FUSIONPASS_H
#define CCJS_JIT_FUSIONPASS_H

#include "jit/OptIr.h"

#include <string>

namespace ccjs {

class MetricsRegistry;
class PairHistogram;
struct VMState;

/// One fusable opcode sequence. Patterns are tried in table order at each
/// position, so longer sequences must precede their prefixes.
struct FusionPattern {
  const char *Name; ///< Stable ablation name (EXPERIMENTS.md recipes).
  IrOpcode Fused;   ///< Superinstruction opcode written into slot 0.
  uint8_t Len;      ///< Number of component ops (2 or 3).
  IrOpcode Seq[3];  ///< Component opcodes, in order.
};

/// The pattern table; \p NumFusionPatterns entries. Bit I of
/// EngineConfig::FusedPatternMask enables fusionPatterns()[I].
const FusionPattern *fusionPatterns();
extern const unsigned NumFusionPatterns;

/// Rewrites fusable sequences of \p C into superinstructions, honoring
/// VM.Config.FusedPatternMask, and fills C.Batches with the per-instance
/// event templates. Returns the number of sequences fused. Never changes
/// Ops.size() or any op's position, operands, or Site.
unsigned fuseSuperinstructions(OptCode &C, const VMState &VM);

/// Renders the top \p TopN cells of the opcode-adjacency histogram as a
/// table (hottest first), for `ccjs --op-hist`.
std::string renderOpPairHistogram(const PairHistogram &Hist, size_t TopN);

/// Exports the top \p TopN cells as `host.op_pair.<prev>+<cur>` counters
/// (host-prefixed: excluded from default metric renderings, so recording
/// the histogram never perturbs equivalence images).
void exportOpPairHistogram(const PairHistogram &Hist, MetricsRegistry &M,
                           size_t TopN);

} // namespace ccjs

#endif // CCJS_JIT_FUSIONPASS_H
