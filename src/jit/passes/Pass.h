//===- jit/passes/Pass.h - OptIR pass interface -----------------*- C++ -*-===//
///
/// \file
/// The OptIR pass framework (cinderx-HIR style): a Pass transforms one
/// function's OptCode in place, the PassManager owns the pipeline and the
/// per-pass enable mask (EngineConfig::OptPassMask), and `--ir-dump`
/// prints the IR after every stage.
///
/// Contract: with every pass disabled, compileOptimized's output is
/// byte-identical to the raw IrBuilder emission (buildOptIr), so the
/// simulated event stream of the seed configuration is preserved exactly.
/// An enabled pass may change the event stream (that is its purpose) but
/// must preserve program semantics; the DiffOracle and PassPipelineTest
/// cross-check both properties.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_JIT_PASSES_PASS_H
#define CCJS_JIT_PASSES_PASS_H

#include "jit/OptIr.h"

#include <cstdint>

namespace ccjs {

struct VMState;

/// Bits of EngineConfig::OptPassMask, one per registered pass.
enum : uint32_t {
  OptPassRedundantGuardElim = 1u << 0,
  OptPassCheckMotion = 1u << 1,
  OptPassAll = OptPassRedundantGuardElim | OptPassCheckMotion,
};

class Pass {
public:
  virtual ~Pass() = default;

  /// Stable pass name (used by --ir-dump headers and --opt-passes specs).
  virtual const char *name() const = 0;

  /// The OptPassMask bit that enables this pass.
  virtual uint32_t maskBit() const = 0;

  /// Transforms \p C in place. Returns true when the IR changed (gates
  /// the --ir-dump print for this stage).
  virtual bool run(OptCode &C, VMState &VM) = 0;
};

/// True for ops after which a previously proven object-shape fact may no
/// longer hold: ops that can run user code or transition an object's
/// shape through an alias. Value-immutable facts (tagged SMI, number,
/// HeapNumber/string shape) survive these. Shared by the redundant-guard
/// pass, check motion and the BBV specializer so the three provers can
/// never disagree about what invalidates a shape.
inline bool irOpKillsShapeFacts(IrOpcode Op) {
  switch (Op) {
  case IrOpcode::CallDirectOp:
  case IrOpcode::CallBuiltinMethodOp:
  case IrOpcode::CallMethodDirectOp:
  case IrOpcode::CallValueOp:
  case IrOpcode::GenericCallMethodOp:
  case IrOpcode::NewObjectOp:
  case IrOpcode::TransitionStorePropOp:
  case IrOpcode::AddPropTransitionOp:
  case IrOpcode::GenericSetPropOp:
  case IrOpcode::GenericSetElemOp:
    return true;
  default:
    return false;
  }
}

} // namespace ccjs

#endif // CCJS_JIT_PASSES_PASS_H
