//===- jit/passes/RedundantGuardElim.cpp - delete re-proven checks --------===//
///
/// \file
/// Redundant-guard elimination: deletes a check whose predicate is already
/// proven by an earlier *passed* check (or a statically known store) on
/// the same local within the same extended basic block.
///
/// The pass reasons over the generation-validated origin annotations the
/// IrBuilder leaves in Check*.Aux: Aux = L means the checked stack slot is
/// a live copy of Loc[L], so a fact proven about Loc[L] transfers to it.
/// Facts are per-local:
///   - ShapeFact(S): a passed CheckMap(S) proved Loc[L]'s shape.
///   - NumberFact:   a passed CheckSmi/CheckNumber proved Loc[L] numeric.
///   - TaggedSmi:    Loc[L] was stored from a statically tagged-SMI
///                   producer (LdaSmi, SMI arithmetic, a depth-0 passed
///                   CheckSmi's normalized top-of-stack).
///
/// Deletion rules mirror the executor's predicates exactly:
///   - CheckMap(S)  deletable iff ShapeFact == S.
///   - CheckNumber  deletable iff NumberFact or TaggedSmi.
///   - CheckSmi     deletable iff TaggedSmi. A passed CheckSmi only proves
///     *integral number* — the value may still be an unboxed double whose
///     in-place tagging (and Tags/Untags charge) a later CheckSmi must
///     perform — so NumberFact alone never deletes a CheckSmi.
///
/// Facts are killed by StLocal of the same local; shape facts (except the
/// immutable HeapNumber/string shapes) additionally die at any op that can
/// run user code or transition a shape (irOpKillsShapeFacts). All facts
/// reset at extended-block boundaries: any jump target, and the op after
/// an unconditional transfer (Jump/JumpLoop/Return/Deopt). Conditional
/// fall-through keeps facts — the checks were passed on every path that
/// reaches the fall-through op.
///
//===----------------------------------------------------------------------===//

#include "frontend/Ast.h"
#include "jit/passes/Pass.h"
#include "jit/passes/PassManager.h"
#include "vm/VMState.h"

#include <algorithm>

namespace ccjs {

namespace {

class RedundantGuardElim final : public Pass {
public:
  const char *name() const override { return "rge"; }
  uint32_t maskBit() const override { return OptPassRedundantGuardElim; }
  bool run(OptCode &C, VMState &VM) override;
};

struct LocalFacts {
  std::vector<uint8_t> TaggedSmi;
  std::vector<uint8_t> IsNumber;
  std::vector<ShapeId> KnownShape;

  explicit LocalFacts(size_t NumLocals)
      : TaggedSmi(NumLocals, 0), IsNumber(NumLocals, 0),
        KnownShape(NumLocals, InvalidShape) {}

  void reset() {
    std::fill(TaggedSmi.begin(), TaggedSmi.end(), 0);
    std::fill(IsNumber.begin(), IsNumber.end(), 0);
    std::fill(KnownShape.begin(), KnownShape.end(), InvalidShape);
  }

  void killLocal(uint32_t L) {
    TaggedSmi[L] = 0;
    IsNumber[L] = 0;
    KnownShape[L] = InvalidShape;
  }

  void killMutableShapes(ShapeId HeapNum, ShapeId Str) {
    for (ShapeId &S : KnownShape)
      if (S != InvalidShape && S != HeapNum && S != Str)
        S = InvalidShape;
  }
};

bool isJump(IrOpcode Op) {
  return Op == IrOpcode::JumpOp || Op == IrOpcode::JumpLoopOp ||
         Op == IrOpcode::JumpIfFalseOp || Op == IrOpcode::JumpIfTrueOp;
}

bool endsRegion(IrOpcode Op) {
  return Op == IrOpcode::JumpOp || Op == IrOpcode::JumpLoopOp ||
         Op == IrOpcode::ReturnOp || Op == IrOpcode::DeoptOp;
}

bool RedundantGuardElim::run(OptCode &C, VMState &VM) {
  const size_t N = C.Ops.size();
  const uint32_t NumLocals =
      C.FuncIndex < VM.Module.Functions.size()
          ? VM.Module.Functions[C.FuncIndex].NumLocals
          : 0;
  if (N == 0 || NumLocals == 0)
    return false;

  std::vector<uint8_t> IsTarget(N + 1, 0);
  for (const OptIrOp &O : C.Ops)
    if (isJump(O.Op) && O.A >= 0 && static_cast<size_t>(O.A) <= N)
      IsTarget[O.A] = 1;

  const ShapeId HeapNum = VM.Shapes.heapNumberShape();
  const ShapeId Str = VM.Shapes.stringShape();

  LocalFacts Facts(NumLocals);
  std::vector<uint8_t> Dead(N, 0);
  uint32_t NumDead = 0;
  // True while the current top-of-stack value is known to be a tagged SMI
  // (set by a static producer, preserved across stack-neutral checks and
  // Dup, consumed by StLocal to seed the TaggedSmi fact).
  bool TosTaggedSmi = false;

  for (size_t I = 0; I < N; ++I) {
    if (IsTarget[I] || (I > 0 && endsRegion(C.Ops[I - 1].Op))) {
      Facts.reset();
      TosTaggedSmi = false;
    }
    OptIrOp &O = C.Ops[I];
    const int32_t L = O.Aux;
    const bool Annotated =
        L >= 0 && static_cast<uint32_t>(L) < NumLocals &&
        (O.Op == IrOpcode::CheckMapOp || O.Op == IrOpcode::CheckSmiOp ||
         O.Op == IrOpcode::CheckNumberOp);

    switch (O.Op) {
    case IrOpcode::CheckMapOp:
      if (Annotated) {
        if (Facts.KnownShape[L] == O.Shape) {
          Dead[I] = 1;
          ++NumDead;
        } else {
          Facts.KnownShape[L] = O.Shape;
        }
      }
      break;
    case IrOpcode::CheckNumberOp:
      if (Annotated) {
        if (Facts.IsNumber[L] || Facts.TaggedSmi[L]) {
          Dead[I] = 1;
          ++NumDead;
        } else {
          Facts.IsNumber[L] = 1;
        }
      }
      break;
    case IrOpcode::CheckSmiOp:
      if (Annotated) {
        if (Facts.TaggedSmi[L]) {
          Dead[I] = 1;
          ++NumDead;
        } else {
          Facts.IsNumber[L] = 1;
        }
      }
      // A surviving depth-0 CheckSmi normalizes the top of stack to a
      // tagged SMI; a deleted one required TaggedSmi, which already
      // implies it.
      if (O.Depth == 0 && !(O.Flags & IrFlagOperandLocal))
        TosTaggedSmi = true;
      break;
    case IrOpcode::StLocalOp:
      if (O.A >= 0 && static_cast<uint32_t>(O.A) < NumLocals) {
        Facts.killLocal(O.A);
        if (TosTaggedSmi) {
          Facts.TaggedSmi[O.A] = 1;
          Facts.IsNumber[O.A] = 1;
        }
      }
      TosTaggedSmi = false; // StLocal pops the known value.
      break;
    default:
      if (irOpKillsShapeFacts(O.Op))
        Facts.killMutableShapes(HeapNum, Str);
      break;
    }

    // Track the statically tagged-SMI top of stack for the next op.
    switch (O.Op) {
    case IrOpcode::LdaSmiOp:
    case IrOpcode::SmiNegOp:
    case IrOpcode::BitNotOp:
      TosTaggedSmi = true;
      break;
    case IrOpcode::SmiBinOpOp:
      // Shr can exceed SMI range and pushes a plain number.
      TosTaggedSmi = O.A != static_cast<int32_t>(BinaryOp::Shr);
      break;
    case IrOpcode::CheckMapOp:
    case IrOpcode::CheckNumberOp:
    case IrOpcode::CheckSmiOp: // handled above; both are stack-neutral
    case IrOpcode::DupOp:      // duplicates the known value
    case IrOpcode::StLocalOp:  // handled above
      break;
    default:
      TosTaggedSmi = false;
      break;
    }
  }

  if (NumDead == 0)
    return false;

  // Compact the op vector; NewIndex[I] = new index of the first surviving
  // op at or after old index I (jump targets are never deleted ops' only
  // landing sites — a deleted check at a leader is impossible since facts
  // reset there — but mapping to the next survivor is safe regardless).
  std::vector<uint32_t> NewIndex(N + 1, 0);
  uint32_t Out = 0;
  for (size_t I = 0; I < N; ++I) {
    NewIndex[I] = Out;
    if (!Dead[I])
      ++Out;
  }
  NewIndex[N] = Out;

  std::vector<OptIrOp> NewOps;
  NewOps.reserve(Out);
  for (size_t I = 0; I < N; ++I)
    if (!Dead[I])
      NewOps.push_back(C.Ops[I]);
  for (OptIrOp &O : NewOps)
    if (isJump(O.Op) && O.A >= 0 && static_cast<size_t>(O.A) <= N)
      O.A = static_cast<int32_t>(NewIndex[O.A]);
  C.Ops = std::move(NewOps);

  if (!C.LoopPreloads.empty()) {
    std::unordered_map<uint32_t, std::vector<uint32_t>> NewPreloads;
    for (auto &KV : C.LoopPreloads)
      NewPreloads[NewIndex[std::min<size_t>(KV.first, N)]] =
          std::move(KV.second);
    C.LoopPreloads = std::move(NewPreloads);
  }
  C.PreloadAt.assign(C.Ops.size(), 0);
  for (const auto &KV : C.LoopPreloads)
    if (KV.first < C.PreloadAt.size())
      C.PreloadAt[KV.first] = 1;

  C.ChecksElidedPass += NumDead;
  if (VM.Metrics)
    VM.Metrics->counter("passes.rge.deleted") += NumDead;
  return true;
}

} // namespace

std::unique_ptr<Pass> createRedundantGuardElimPass() {
  return std::make_unique<RedundantGuardElim>();
}

} // namespace ccjs
