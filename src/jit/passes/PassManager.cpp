//===- jit/passes/PassManager.cpp - OptIR pass pipeline -------------------===//

#include "jit/passes/PassManager.h"

#include "jit/Bbv.h"
#include "jit/FusionPass.h"
#include "jit/Jit.h"
#include "jit/passes/IrPrinter.h"
#include "vm/VMState.h"

namespace ccjs {

PassManager::PassManager() {
  Passes.push_back(createRedundantGuardElimPass());
  Passes.push_back(createCheckMotionPass());
}

void PassManager::run(OptCode &C, VMState &VM) const {
  for (const std::unique_ptr<Pass> &P : Passes) {
    if (!(VM.Config.OptPassMask & P->maskBit()))
      continue;
    if (P->run(C, VM))
      dumpOptIrStage(VM, C, P->name());
  }
}

bool optPassMaskFromSpec(const std::string &Spec, uint32_t &Mask) {
  if (Spec == "none") {
    Mask = 0;
    return true;
  }
  if (Spec == "all") {
    Mask = OptPassAll;
    return true;
  }
  uint32_t M = 0;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Name = Spec.substr(Pos, Comma - Pos);
    if (Name == "rge")
      M |= OptPassRedundantGuardElim;
    else if (Name == "checkmotion")
      M |= OptPassCheckMotion;
    else
      return false;
    Pos = Comma + 1;
  }
  Mask = M;
  return true;
}

OptCode *compileOptimized(VMState &VM, uint32_t FuncIndex) {
  OptCode *Code = buildOptIr(VM, FuncIndex);
  dumpOptIrStage(VM, *Code, "entry");

  // Optimizer passes (all off by default: with OptPassMask == 0 the IR —
  // and therefore the simulated event stream — is byte-identical to the
  // raw IrBuilder emission).
  static const PassManager PM;
  PM.run(*Code, VM);

  // Backend: lazy basic-block versioning. Preparation only partitions the
  // code and records per-block elidable checks; versions materialize at
  // block entry during execution (jit/Bbv.cpp).
  if (VM.Config.bbvOn()) {
    bbvPrepare(*Code, VM);
    if (Code->Bbv)
      // Versioning bookkeeping is part of the compile, charged like the
      // rest of the compile below (deterministic in the block count).
      VM.Ctx.alu(InstrCategory::RestOfCode,
                 20 + 8 * static_cast<unsigned>(Code->Bbv->Blocks.size()));
    dumpOptIrStage(VM, *Code, "bbv-prep");
  }

  // Superinstruction fusion (host-side: changes neither Ops.size() nor
  // any simulated event, see DESIGN.md §4.8).
  if (VM.Config.Dispatch == DispatchMode::Fused) {
    unsigned Fused = fuseSuperinstructions(*Code, VM);
    if (VM.Metrics)
      VM.Metrics->counter("host.fusion.sequences") += Fused;
  }
  // Crankshaft-style compilation cost, charged to the runtime bucket.
  VM.Ctx.alu(InstrCategory::RestOfCode,
             300 + 60 * static_cast<unsigned>(Code->Ops.size()));

  // Warm-replica support: replay the BBV version contexts recorded by
  // earlier compiles of this function (profile persistence / snapshot
  // restore), so the new code materializes the same versions — with the
  // same specialization charges — that lazy execution minted before.
  // Replay goes through bbvSelectVersion itself: a context that no longer
  // fits (block partition changed, tags mismatched) is skipped, and a
  // context selected again during execution hits the charge-free reuse
  // scan, so replay composes idempotently with lazy materialization.
  if (VM.Config.ProfilePersistence && Code->Bbv &&
      !VM.Funcs[FuncIndex].BbvSeeds.empty()) {
    VM.BbvReplaying = true;
    for (const BbvSeed &S : VM.Funcs[FuncIndex].BbvSeeds) {
      if (S.BlockIdx >= Code->Bbv->Blocks.size())
        continue;
      if (S.EntryTags.size() !=
          Code->Bbv->Blocks[S.BlockIdx].RelevantLocals.size())
        continue;
      bbvSelectVersion(VM, *Code, S.BlockIdx, S.EntryTags);
    }
    VM.BbvReplaying = false;
  }
  return Code;
}

} // namespace ccjs
