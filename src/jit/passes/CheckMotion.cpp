//===- jit/passes/CheckMotion.cpp - hoist loop-invariant checks -----------===//
///
/// \file
/// Check motion: hoists loop-invariant guards out of innermost loops.
/// A check on local L inside loop body [Head..Backedge] is invariant when
/// L is never stored in the body; the body's checks are then replaced by
/// one guard per (local, predicate) at the loop head, executed once per
/// loop *entry* instead of once per *iteration*.
///
/// Hoisted guards read Loc[Aux] directly (IrFlagOperandLocal: no stack
/// effect) and deopt to the loop head's bytecode — the operand stack at
/// the head position already matches that resume point, so a failing
/// guard simply runs the whole loop in the interpreter.
///
/// Safety:
///   - Innermost loops only (no other JumpLoop in the body), so a guard
///     verified on entry stays verified: the body cannot store L.
///   - CheckMap additionally requires a transition/call-free body
///     (irOpKillsShapeFacts) — an aliased shape change between
///     iterations would outdate the hoisted shape proof — and a single
///     agreed shape across the body's CheckMaps on L.
///   - No jump from outside the loop may target the middle of the body;
///     entry jumps to Head are redirected to the guards, while inside
///     jumps to Head (the backedge, `continue`) skip them.
///
/// Hoisting strengthens conditionally-executed checks (the guard runs on
/// every entry); a failing guard deopts where the original might not
/// have executed, which is semantically transparent — the interpreter
/// computes the same result — and only costs simulated cycles.
///
//===----------------------------------------------------------------------===//

#include "jit/passes/Pass.h"
#include "jit/passes/PassManager.h"
#include "vm/VMState.h"

#include <algorithm>

namespace ccjs {

namespace {

class CheckMotion final : public Pass {
public:
  const char *name() const override { return "checkmotion"; }
  uint32_t maskBit() const override { return OptPassCheckMotion; }
  bool run(OptCode &C, VMState &VM) override;

private:
  /// Transforms the innermost loop whose backedge is at \p BackIdx.
  /// Returns true when guards were hoisted (indices change; re-scan).
  bool hoistLoop(OptCode &C, VMState &VM, uint32_t BackIdx);
};

bool isJump(IrOpcode Op) {
  return Op == IrOpcode::JumpOp || Op == IrOpcode::JumpLoopOp ||
         Op == IrOpcode::JumpIfFalseOp || Op == IrOpcode::JumpIfTrueOp;
}

bool isCheck(IrOpcode Op) {
  return Op == IrOpcode::CheckMapOp || Op == IrOpcode::CheckSmiOp ||
         Op == IrOpcode::CheckNumberOp;
}

/// Per-local summary of the loop body's hoistable checks.
struct LocalPlan {
  bool HasSmi = false;
  bool HasNumber = false;
  bool HasMap = false;
  bool MapMixed = false; ///< CheckMaps on this local disagree on shape.
  ShapeId MapShape = InvalidShape;
  uint16_t FirstSite = 0;
  uint16_t KeepFlags = 0; ///< PreUntag union of the source checks.
};

bool CheckMotion::run(OptCode &C, VMState &VM) {
  bool Changed = false;
  // Each hoist rewrites indices, so re-scan from scratch after every
  // transformation; a transformed loop yields no further candidates
  // (its body checks are gone), so this terminates.
  bool Again = true;
  while (Again) {
    Again = false;
    // Descending backedge order: inner/later loops first.
    for (uint32_t I = static_cast<uint32_t>(C.Ops.size()); I-- > 0;) {
      if (C.Ops[I].Op != IrOpcode::JumpLoopOp)
        continue;
      if (hoistLoop(C, VM, I)) {
        Changed = true;
        Again = true;
        break;
      }
    }
  }
  return Changed;
}

bool CheckMotion::hoistLoop(OptCode &C, VMState &VM, uint32_t BackIdx) {
  const size_t N = C.Ops.size();
  const uint32_t NumLocals =
      C.FuncIndex < VM.Module.Functions.size()
          ? VM.Module.Functions[C.FuncIndex].NumLocals
          : 0;
  const int32_t HeadA = C.Ops[BackIdx].A;
  if (NumLocals == 0 || HeadA < 0 || static_cast<uint32_t>(HeadA) >= BackIdx)
    return false;
  const uint32_t Head = static_cast<uint32_t>(HeadA);

  // Innermost only: no other loop backedge inside the body.
  for (uint32_t J = Head; J < BackIdx; ++J)
    if (C.Ops[J].Op == IrOpcode::JumpLoopOp)
      return false;

  // No jump from outside the loop may target the middle of the body
  // (such an edge would bypass the guards).
  for (uint32_t J = 0; J < N; ++J) {
    if (J >= Head && J <= BackIdx)
      continue;
    const OptIrOp &O = C.Ops[J];
    if (isJump(O.Op) && O.A > static_cast<int32_t>(Head) &&
        O.A <= static_cast<int32_t>(BackIdx))
      return false;
  }

  // Summarize the body: stored locals, shape-fact killers, candidate
  // checks per local.
  std::vector<uint8_t> Stored(NumLocals, 0);
  bool BodyKillsShapes = false;
  std::vector<LocalPlan> Plans(NumLocals);
  for (uint32_t J = Head; J <= BackIdx; ++J) {
    const OptIrOp &O = C.Ops[J];
    if (O.Op == IrOpcode::StLocalOp && O.A >= 0 &&
        static_cast<uint32_t>(O.A) < NumLocals)
      Stored[O.A] = 1;
    if (irOpKillsShapeFacts(O.Op))
      BodyKillsShapes = true;
    if (!isCheck(O.Op) || (O.Flags & IrFlagOperandLocal) || O.Aux < 0 ||
        static_cast<uint32_t>(O.Aux) >= NumLocals)
      continue;
    LocalPlan &P = Plans[O.Aux];
    if (!P.HasSmi && !P.HasNumber && !P.HasMap)
      P.FirstSite = O.Site;
    P.KeepFlags |= O.Flags & IrFlagPreUntag;
    if (O.Op == IrOpcode::CheckSmiOp)
      P.HasSmi = true;
    else if (O.Op == IrOpcode::CheckNumberOp)
      P.HasNumber = true;
    else {
      if (P.HasMap && P.MapShape != O.Shape)
        P.MapMixed = true;
      P.HasMap = true;
      P.MapShape = O.Shape;
    }
  }

  // Build the guard list (ascending local order: deterministic layout).
  struct Guard {
    IrOpcode Op;
    uint32_t Local;
    ShapeId Shape;
    uint16_t Site;
    uint16_t Flags;
  };
  std::vector<Guard> Guards;
  std::vector<uint8_t> DropSmi(NumLocals, 0), DropNumber(NumLocals, 0);
  std::vector<ShapeId> DropMap(NumLocals, InvalidShape);
  for (uint32_t L = 0; L < NumLocals; ++L) {
    const LocalPlan &P = Plans[L];
    if (Stored[L])
      continue;
    uint16_t GF = static_cast<uint16_t>(IrFlagOperandLocal | P.KeepFlags);
    if (P.HasSmi) {
      Guards.push_back({IrOpcode::CheckSmiOp, L, InvalidShape, P.FirstSite, GF});
      DropSmi[L] = 1;
      DropNumber[L] = 1; // SMI implies number.
    } else if (P.HasNumber) {
      Guards.push_back(
          {IrOpcode::CheckNumberOp, L, InvalidShape, P.FirstSite, GF});
      DropNumber[L] = 1;
    }
    if (P.HasMap && !P.MapMixed && !BodyKillsShapes) {
      Guards.push_back({IrOpcode::CheckMapOp, L, P.MapShape, P.FirstSite, GF});
      DropMap[L] = P.MapShape;
    }
  }
  if (Guards.empty())
    return false;
  const uint32_t K = static_cast<uint32_t>(Guards.size());

  // Mark the body checks the guards replace.
  std::vector<uint8_t> Dead(N, 0);
  uint32_t NumDead = 0;
  for (uint32_t J = Head; J <= BackIdx; ++J) {
    const OptIrOp &O = C.Ops[J];
    if (!isCheck(O.Op) || (O.Flags & IrFlagOperandLocal) || O.Aux < 0 ||
        static_cast<uint32_t>(O.Aux) >= NumLocals)
      continue;
    const uint32_t L = static_cast<uint32_t>(O.Aux);
    bool Drop = (O.Op == IrOpcode::CheckSmiOp && DropSmi[L]) ||
                (O.Op == IrOpcode::CheckNumberOp && DropNumber[L]) ||
                (O.Op == IrOpcode::CheckMapOp && DropMap[L] == O.Shape &&
                 DropMap[L] != InvalidShape);
    if (Drop) {
      Dead[J] = 1;
      ++NumDead;
    }
  }

  // New index of each old op: guards occupy [Head .. Head+K).
  std::vector<uint32_t> NewIndex(N + 1, 0);
  uint32_t Out = 0;
  for (uint32_t J = 0; J < Head; ++J)
    NewIndex[J] = J;
  Out = Head + K;
  for (uint32_t J = Head; J < N; ++J) {
    NewIndex[J] = Out;
    if (!Dead[J])
      ++Out;
  }
  NewIndex[N] = Out;

  std::vector<OptIrOp> NewOps;
  NewOps.reserve(Out);
  for (uint32_t J = 0; J < Head; ++J)
    NewOps.push_back(C.Ops[J]);
  for (const Guard &G : Guards) {
    OptIrOp O;
    O.Op = G.Op;
    O.Shape = G.Shape;
    O.Flags = G.Flags;
    O.Site = G.Site;
    O.Aux = static_cast<int32_t>(G.Local);
    // A failing guard resumes the interpreter at the loop head; the
    // operand stack at this position is exactly the head's.
    O.BcPc = C.Ops[Head].BcPc;
    O.BcNext = C.Ops[Head].BcPc;
    NewOps.push_back(O);
  }
  for (uint32_t J = Head; J < N; ++J)
    if (!Dead[J])
      NewOps.push_back(C.Ops[J]);

  // Remap jumps. An entry edge to Head from outside the loop lands on the
  // guards; the backedge and inside jumps to Head (`continue`) skip them.
  for (uint32_t J = 0; J < N; ++J) {
    if (!isJump(C.Ops[J].Op))
      continue;
    const int32_t T = C.Ops[J].A;
    uint32_t NewA;
    if (T == static_cast<int32_t>(Head) &&
        (J < Head || J > BackIdx))
      NewA = Head;
    else
      NewA = NewIndex[std::min<size_t>(static_cast<size_t>(T), N)];
    NewOps[NewIndex[J]].A = static_cast<int32_t>(NewA);
  }
  C.Ops = std::move(NewOps);

  if (!C.LoopPreloads.empty()) {
    std::unordered_map<uint32_t, std::vector<uint32_t>> NewPreloads;
    for (auto &KV : C.LoopPreloads)
      NewPreloads[NewIndex[std::min<size_t>(KV.first, N)]] =
          std::move(KV.second);
    C.LoopPreloads = std::move(NewPreloads);
  }
  C.PreloadAt.assign(C.Ops.size(), 0);
  for (const auto &KV : C.LoopPreloads)
    if (KV.first < C.PreloadAt.size())
      C.PreloadAt[KV.first] = 1;

  C.ChecksHoisted += K;
  C.ChecksElidedPass += NumDead;
  if (VM.Metrics) {
    VM.Metrics->counter("passes.checkmotion.hoisted") += K;
    VM.Metrics->counter("passes.checkmotion.deleted") += NumDead;
  }
  return true;
}

} // namespace

std::unique_ptr<Pass> createCheckMotionPass() {
  return std::make_unique<CheckMotion>();
}

} // namespace ccjs
