//===- jit/passes/IrPrinter.cpp - OptIR textual dump ----------------------===//

#include "jit/passes/IrPrinter.h"

#include "jit/OptIr.h"
#include "vm/VMState.h"

#include <cinttypes>
#include <cstdio>

namespace ccjs {

std::string renderOptIr(const OptCode &C) {
  std::string Out;
  Out.reserve(C.Ops.size() * 48);
  char Line[192];
  for (size_t I = 0; I < C.Ops.size(); ++I) {
    const OptIrOp &O = C.Ops[I];
    int N = std::snprintf(Line, sizeof(Line), "  %4zu: %-28s", I,
                          irOpcodeName(O.Op));
    Out.append(Line, static_cast<size_t>(N));
    // Print only the fields that differ from their defaults so the common
    // ops stay one short line and diffs between stages are readable.
    auto Field = [&](const char *Fmt, auto V) {
      int M = std::snprintf(Line, sizeof(Line), Fmt, V);
      Out.append(Line, static_cast<size_t>(M));
    };
    if (O.A != 0)
      Field(" A=%" PRId32, O.A);
    if (O.B != 0)
      Field(" B=%" PRIu32, O.B);
    if (O.Shape != InvalidShape)
      Field(" shape=%u", static_cast<unsigned>(O.Shape));
    if (O.Shape2 != InvalidShape)
      Field(" shape2=%u", static_cast<unsigned>(O.Shape2));
    if (O.Depth != 0)
      Field(" depth=%u", static_cast<unsigned>(O.Depth));
    if (O.Flags != 0)
      Field(" flags=0x%x", static_cast<unsigned>(O.Flags));
    if (O.Aux != -1)
      Field(" aux=%" PRId32, O.Aux);
    Field(" @bc=%" PRIu32, O.BcPc);
    Out.push_back('\n');
  }
  if (!C.LoopPreloads.empty()) {
    // Deterministic order: scan by op index, not by hash-map order.
    Out += "  preloads:";
    for (size_t I = 0; I < C.Ops.size(); ++I) {
      auto It = C.LoopPreloads.find(static_cast<uint32_t>(I));
      if (It == C.LoopPreloads.end())
        continue;
      int N = std::snprintf(Line, sizeof(Line), " [%zu:", I);
      Out.append(Line, static_cast<size_t>(N));
      for (uint32_t L : It->second) {
        N = std::snprintf(Line, sizeof(Line), " L%" PRIu32, L);
        Out.append(Line, static_cast<size_t>(N));
      }
      Out += " ]";
    }
    Out.push_back('\n');
  }
  return Out;
}

void dumpOptIrStage(const VMState &VM, const OptCode &C, const char *Stage) {
  if (!VM.Config.IrDump)
    return;
  const char *Name = "?";
  if (C.FuncIndex < VM.Module.Functions.size())
    Name = VM.Module.Functions[C.FuncIndex].Name.c_str();
  std::fprintf(stderr, "; ir-dump %s (func %" PRIu32 ") after %s — %zu ops\n",
               Name, C.FuncIndex, Stage, C.Ops.size());
  std::string Text = renderOptIr(C);
  std::fwrite(Text.data(), 1, Text.size(), stderr);
}

} // namespace ccjs
