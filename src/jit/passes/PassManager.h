//===- jit/passes/PassManager.h - OptIR pass pipeline -----------*- C++ -*-===//
///
/// \file
/// The compile pipeline: IrBuilder entry stage, then the registered OptIR
/// passes gated by EngineConfig::OptPassMask, then the backend stages
/// (BBV block preparation, superinstruction fusion) and the compile-cost
/// charge. compileOptimized (Jit.h) is a thin wrapper over PassManager.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_JIT_PASSES_PASSMANAGER_H
#define CCJS_JIT_PASSES_PASSMANAGER_H

#include "jit/passes/Pass.h"

#include <memory>
#include <string>
#include <vector>

namespace ccjs {

struct VMState;

class PassManager {
public:
  /// Registers the standard pipeline (redundant-guard elimination, then
  /// check motion) in its fixed run order.
  PassManager();

  /// Runs every registered pass whose maskBit is set in
  /// VM.Config.OptPassMask over \p C, printing the IR after each pass
  /// that changed it when --ir-dump is on.
  void run(OptCode &C, VMState &VM) const;

  const std::vector<std::unique_ptr<Pass>> &passes() const { return Passes; }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// Factories for the registered passes (defined alongside each pass).
std::unique_ptr<Pass> createRedundantGuardElimPass();
std::unique_ptr<Pass> createCheckMotionPass();

/// Parses an --opt-passes spec into an OptPassMask: "none", "all", or a
/// comma-separated list of pass names ("rge", "checkmotion"). Returns
/// false (mask untouched) on an unknown name.
bool optPassMaskFromSpec(const std::string &Spec, uint32_t &Mask);

} // namespace ccjs

#endif // CCJS_JIT_PASSES_PASSMANAGER_H
