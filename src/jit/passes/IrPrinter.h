//===- jit/passes/IrPrinter.h - OptIR textual dump --------------*- C++ -*-===//
///
/// \file
/// Renders one function's OptIR as stable, diffable text: one line per op
/// with its index, opcode name and the operand fields that are set. Used
/// by the --ir-dump pass-by-pass printer (stderr, so stdout comparisons
/// between runs stay clean) and by tests that assert pipeline identity.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_JIT_PASSES_IRPRINTER_H
#define CCJS_JIT_PASSES_IRPRINTER_H

#include <string>

namespace ccjs {

struct OptCode;
struct VMState;

/// Renders \p C as text with stable op-index numbering. Deterministic:
/// depends only on the IR, never on host pointers or iteration order.
std::string renderOptIr(const OptCode &C);

/// Prints a stage header ("; ir-dump <func> after <stage>") plus the
/// rendered IR to stderr. No-op unless EngineConfig::IrDump is set.
void dumpOptIrStage(const VMState &VM, const OptCode &C, const char *Stage);

} // namespace ccjs

#endif // CCJS_JIT_PASSES_IRPRINTER_H
