//===- jit/IrBuilder.cpp - Bytecode + feedback -> OptIR -------------------===//
///
/// Translates a hot function's bytecode into OptIR using the inline-cache
/// feedback, inserting explicit checks, and applying three optimizations:
///
///   1. Classic redundant-check elimination: an abstract interpretation of
///      the stack and locals tracks what is already known about each value
///      within extended basic blocks, so repeated checks disappear (the
///      state of the art; always on).
///   2. Class Cache check elision (the paper's section 4.3): a check on a
///      value whose provenance is a monomorphic property/elements slot is
///      removed; the function registers in the slot's FunctionList and the
///      SpeculateMap bit is set.
///   3. movClassIDArray hoisting (section 4.2.1.3): the container-class
///      load of elements-store profiling moves to the loop preheader when
///      the array local is loop-invariant and the loop body is call-free.
///
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "frontend/Ast.h"
#include "runtime/Layout.h"
#include "support/Assert.h"
#include "vm/Builtins.h"

#include <algorithm>

using namespace ccjs;

namespace {

/// Compile-time knowledge about one value.
struct AbsVal {
  enum KindTy : uint8_t {
    Unknown,
    Smi,
    Number, ///< SMI or HeapNumber (post CheckNumber).
    UnboxedDouble,
    Obj,
    Str,
    Boolean,
  } K = Unknown;
  ShapeId Shape = InvalidShape; // For Obj.

  // Provenance: the value was loaded from a property/elements slot.
  bool HasProv = false;
  bool ProvElements = false;
  ShapeId ProvHolder = InvalidShape;
  uint32_t ProvSlot = 0;

  /// Which local the value came from unmodified (-1 none, -2 `this`).
  int OriginLocal = -1;
  /// Which global the value came from unmodified (-1 none).
  int OriginGlobal = -1;
  /// Store generation of OriginLocal at the load. Assignments are
  /// expressions in MiniJS, so a stack copy can outlive a later StLocal
  /// to the same local within a fall-through region; the copy is a live,
  /// bitwise copy of the local only while the generations still match.
  uint32_t OriginGen = 0;
};

/// OriginGen value that can never match a real store generation: stamps a
/// copy whose representation may have diverged from its origin local (an
/// emitted CheckSmi retags the checked copy in place, not the local).
inline constexpr uint32_t StaleOriginGen = ~0u;

/// Encoding of hoisted movClassIDArray sources in OptCode::LoopPreloads:
/// locals are stored directly; globals carry this bit plus their index.
inline constexpr uint32_t PreloadGlobalBit = 1u << 31;

/// Meet of the provenance facts of every value stored into one local.
/// Provenance is structural ("loaded from slot X of class Y"), so when all
/// assignment sites agree, the fact holds for the local's value at any
/// definitely-assigned point regardless of control flow.
struct LocalProvFact {
  bool Seen = false;
  bool Valid = true;
  bool ProvElements = false;
  ShapeId ProvHolder = InvalidShape;
  uint32_t ProvSlot = 0;

  void meet(const AbsVal &V) {
    if (!Valid)
      return;
    if (!V.HasProv) {
      Valid = false;
      return;
    }
    if (!Seen) {
      Seen = true;
      ProvElements = V.ProvElements;
      ProvHolder = V.ProvHolder;
      ProvSlot = V.ProvSlot;
      return;
    }
    if (ProvElements != V.ProvElements || ProvHolder != V.ProvHolder ||
        (!ProvElements && ProvSlot != V.ProvSlot))
      Valid = false;
  }
};

class IrBuilder {
public:
  IrBuilder(VMState &VM, uint32_t FuncIndex,
            const std::vector<LocalProvFact> *PriorFacts = nullptr)
      : VM(VM), FI(VM.Funcs[FuncIndex]), F(*FI.Fn), FuncIndex(FuncIndex),
        PriorFacts(PriorFacts) {}

  OptCode *build();

  /// Per-local provenance facts collected during this build (input for a
  /// second, more precise pass).
  std::vector<LocalProvFact> takeFacts() { return std::move(Facts); }

private:
  //===------------------------------------------------------------------===//
  // Emission helpers
  //===------------------------------------------------------------------===//

  OptIrOp &emit(IrOpcode Op) {
    OptIrOp O;
    O.Op = Op;
    O.BcPc = CurBc;
    O.BcNext = CurBc + 1;
    O.Site = CurSite;
    Code->Ops.push_back(O);
    return Code->Ops.back();
  }

  AbsVal &tos(unsigned Depth = 0) {
    assert(St.size() > Depth && "abstract stack underflow");
    return St[St.size() - 1 - Depth];
  }
  AbsVal pop() {
    assert(!St.empty() && "abstract stack underflow");
    AbsVal V = St.back();
    St.pop_back();
    return V;
  }
  void push(AbsVal V) {
    St.push_back(std::move(V));
    noteDepth();
  }
  void push(AbsVal::KindTy K) {
    AbsVal V;
    V.K = K;
    St.push_back(V);
    noteDepth();
  }

  /// Tracks the peak abstract operand-stack depth. The abstract stack
  /// mirrors the runtime stack op-for-op, so the peak bounds the runtime
  /// depth; the executor pre-reserves it (a hint — push_back still grows
  /// correctly if the bound were ever short).
  void noteDepth() {
    if (St.size() > MaxDepth)
      MaxDepth = St.size();
  }

  void clearAbstractState() {
    for (AbsVal &V : St)
      V = AbsVal();
    for (AbsVal &V : Loc)
      V = AbsVal();
    AbsThis = AbsVal();
    AbsThis.OriginLocal = -2;
  }

  /// Conservative join at a merge point: stack values and `this` tracking
  /// reset, but a local keeps its abstract fact when it has a single
  /// static assignment site and is definitely assigned here — the fact is
  /// then exactly the assignment-site fact on every incoming path.
  /// (Check-driven refinements never write back into locals, so kept
  /// facts are path-independent.)
  void joinAtMerge(uint32_t BcIndex) {
    for (AbsVal &V : St)
      V = AbsVal();
    AbsThis = AbsVal();
    AbsThis.OriginLocal = -2;
    killGlobals();
    for (uint32_t L = 0; L < Loc.size(); ++L) {
      bool Keep = L < 64 && StLocalCount.size() > L &&
                  StLocalCount[L] == 1 &&
                  (DefAssigned[BcIndex] >> L) & 1;
      if (!Keep) {
        Loc[L] = AbsVal();
        Loc[L].OriginLocal = static_cast<int>(L);
        // Multi-assignment locals whose stores all carry the same
        // provenance (pass-1 fact) keep that provenance when definitely
        // assigned: the accumulator pattern `best = open[i]` stays
        // elidable.
        if (PriorFacts && L < PriorFacts->size() &&
            (*PriorFacts)[L].Seen && (*PriorFacts)[L].Valid &&
            ((DefAssigned[BcIndex] >> L) & 1) && StLocalCount[L] > 0) {
          const LocalProvFact &F2 = (*PriorFacts)[L];
          Loc[L].HasProv = true;
          Loc[L].ProvElements = F2.ProvElements;
          Loc[L].ProvHolder = F2.ProvHolder;
          Loc[L].ProvSlot = F2.ProvSlot;
        }
      }
    }
  }

  /// Forgets everything known about global bindings. Called at merge
  /// points and whenever user code could run (calls) or object shapes
  /// could change (transitions): a known global shape is only valid while
  /// nothing can rebind the global or transition the object it holds.
  void killGlobals() { AbsGlobals.clear(); }

  /// Propagates a check-driven refinement back to the global binding it
  /// was loaded from (valid until the next kill point).
  void noteRefined(AbsVal &V) {
    if (V.OriginGlobal >= 0)
      AbsGlobals[static_cast<uint32_t>(V.OriginGlobal)] = V;
  }

  /// Updates the tracked shape of whatever \p Origin refers to.
  void retrackOrigin(int Origin, ShapeId NewShape) {
    AbsVal *T = nullptr;
    if (Origin == -2)
      T = &AbsThis;
    else if (Origin >= 0)
      T = &Loc[Origin];
    if (!T)
      return;
    T->K = AbsVal::Obj;
    T->Shape = NewShape;
  }

  //===------------------------------------------------------------------===//
  // Check insertion / elision (the heart of the mechanism)
  //===------------------------------------------------------------------===//

  /// Attempts to prove, from the Class List profile, that the value's
  /// provenance slot always holds class \p WantClassId. On success the
  /// dependency is registered (SpeculateMap + FunctionList). \p ElideFlag
  /// gates which of the section 4.3 optimizations this is.
  bool profileProves(const AbsVal &V, uint8_t WantClassId, bool ElideFlag) {
    if (!VM.Config.ClassCacheEnabled || !ElideFlag || !V.HasProv)
      return false;
    const Shape &Holder = VM.Shapes.get(V.ProvHolder);
    if (Holder.ClassId >= UntrackedClassId)
      return false;
    uint8_t Line, Pos;
    if (V.ProvElements) {
      Line = 0;
      Pos = layout::ElementsPointerPos;
    } else {
      layout::SlotLocation L = layout::slotLocation(V.ProvSlot);
      Line = L.Line;
      Pos = L.Pos;
    }
    int Profiled = VM.CCache.monomorphicClassAt(Holder.ClassId, Line, Pos);
    if (Profiled < 0 || Profiled != WantClassId)
      return false;
    VM.CCache.setSpeculate(Holder.ClassId, Line, Pos);
    VM.CList.addFunctionDependency(Holder.ClassId, Line, Pos, FuncIndex);
    ++Code->ChecksElidedClassCache;
    return true;
  }

  /// Stamps an emitted check with its generation-validated origin local:
  /// Aux = L records that the checked slot is a live, bitwise copy of
  /// Loc[L] at the check. The pass pipeline (redundant-guard elimination,
  /// check motion) and the lazy-BBV specializer key their elision proofs
  /// on this annotation; a check without it is never touched by them.
  void noteCheckOrigin(OptIrOp &O, const AbsVal &V) {
    if (V.OriginLocal >= 0 &&
        static_cast<size_t>(V.OriginLocal) < StoreGen.size() &&
        V.OriginGen == StoreGen[V.OriginLocal])
      O.Aux = V.OriginLocal;
  }

  /// Ensures the value at \p Depth has shape \p S (Check Map).
  void ensureShape(unsigned Depth, ShapeId S, bool PreUntag = false) {
    AbsVal &V = tos(Depth);
    if (V.K == AbsVal::Obj && V.Shape == S) {
      ++Code->ChecksElidedClassic;
      return;
    }
    if (V.K == AbsVal::Str && S == VM.Shapes.stringShape()) {
      ++Code->ChecksElidedClassic;
      return;
    }
    bool ElideFlag = PreUntag ? VM.Config.ElideCheckNonSmi
                              : VM.Config.ElideCheckMaps;
    if (profileProves(V, VM.Shapes.get(S).ClassId, ElideFlag)) {
      V.K = AbsVal::Obj;
      V.Shape = S;
      noteRefined(V);
      return;
    }
    OptIrOp &O = emit(IrOpcode::CheckMapOp);
    O.Depth = static_cast<uint8_t>(Depth);
    O.Shape = S;
    if (V.HasProv)
      O.Flags |= IrFlagAfterObjectLoad;
    if (PreUntag)
      O.Flags |= IrFlagPreUntag;
    noteCheckOrigin(O, V);
    ++Code->ChecksEmitted;
    V.K = AbsVal::Obj;
    V.Shape = S;
    noteRefined(V);
  }

  /// Ensures the value at \p Depth is a SMI (Check SMI).
  void ensureSmi(unsigned Depth) {
    AbsVal &V = tos(Depth);
    if (V.K == AbsVal::Smi) {
      ++Code->ChecksElidedClassic;
      return;
    }
    if (profileProves(V, SmiClassId, VM.Config.ElideCheckSmi)) {
      V.K = AbsVal::Smi;
      noteRefined(V);
      return;
    }
    OptIrOp &O = emit(IrOpcode::CheckSmiOp);
    O.Depth = static_cast<uint8_t>(Depth);
    if (V.HasProv)
      O.Flags |= IrFlagAfterObjectLoad;
    noteCheckOrigin(O, V);
    ++Code->ChecksEmitted;
    V.K = AbsVal::Smi;
    // The executed check retags an unboxed-integral copy in place; the
    // copy is no longer guaranteed bitwise-equal to its origin local.
    V.OriginGen = StaleOriginGen;
    noteRefined(V);
  }

  /// Ensures the value at \p Depth is a SMI or HeapNumber (the checking
  /// operations performed before untagging a number).
  void ensureNumber(unsigned Depth) {
    AbsVal &V = tos(Depth);
    if (V.K == AbsVal::Smi || V.K == AbsVal::Number ||
        V.K == AbsVal::UnboxedDouble) {
      ++Code->ChecksElidedClassic;
      return;
    }
    uint8_t HeapNumClass =
        VM.Shapes.get(VM.Shapes.heapNumberShape()).ClassId;
    if (profileProves(V, HeapNumClass, VM.Config.ElideCheckNonSmi) ||
        profileProves(V, SmiClassId, VM.Config.ElideCheckSmi)) {
      V.K = AbsVal::Number;
      noteRefined(V);
      return;
    }
    OptIrOp &O = emit(IrOpcode::CheckNumberOp);
    O.Depth = static_cast<uint8_t>(Depth);
    O.Flags |= IrFlagPreUntag;
    if (V.HasProv)
      O.Flags |= IrFlagAfterObjectLoad;
    noteCheckOrigin(O, V);
    ++Code->ChecksEmitted;
    V.K = AbsVal::Number;
    noteRefined(V);
  }

  /// True when the slot's ValidMap bit is still set, i.e. the paper's
  /// criterion for emitting a movStoreClassCache instead of a plain store.
  bool slotStillMono(ShapeId Holder, uint8_t Line, uint8_t Pos) {
    if (!VM.Config.ClassCacheEnabled)
      return false;
    const Shape &S = VM.Shapes.get(Holder);
    if (S.ClassId >= UntrackedClassId)
      return false;
    ClassListEntry E = VM.CList.read(S.ClassId, Line);
    return (E.ValidMap & (uint8_t(1) << Pos)) != 0;
  }

  //===------------------------------------------------------------------===//
  // Bytecode translation
  //===------------------------------------------------------------------===//

  void scanControlFlow();
  void translate(const Instr &In);
  void translateGetProp(const Instr &In);
  void translateSetProp(const Instr &In);
  void translateGetElem(const Instr &In);
  void translateSetElem(const Instr &In);
  void translateGetLength(const Instr &In);
  void translateBinOp(const Instr &In);
  void translateUnaOp(const Instr &In);
  void translateCallGlobal(const Instr &In);
  void translateCallMethod(const Instr &In);
  void translateNew(const Instr &In);
  void hoistClassIdLoads();

  static bool isMathInline(BuiltinId Id) {
    switch (Id) {
    case BuiltinId::MathFloor:
    case BuiltinId::MathCeil:
    case BuiltinId::MathRound:
    case BuiltinId::MathSqrt:
    case BuiltinId::MathAbs:
    case BuiltinId::MathMin:
    case BuiltinId::MathMax:
    case BuiltinId::MathSin:
    case BuiltinId::MathCos:
    case BuiltinId::MathPow:
    case BuiltinId::MathExp:
    case BuiltinId::MathLog:
    case BuiltinId::MathRandom:
      return true;
    default:
      return false;
    }
  }

  VMState &VM;
  FunctionInfo &FI;
  const BytecodeFunction &F;
  uint32_t FuncIndex;
  OptCode *Code = nullptr;

  std::vector<AbsVal> St;
  size_t MaxDepth = 0;
  std::vector<AbsVal> Loc;
  AbsVal AbsThis;
  /// Known abstract values of global bindings within the current
  /// call-free, transition-free straight-line region.
  std::unordered_map<uint32_t, AbsVal> AbsGlobals;

  // Control-flow metadata.
  std::vector<uint8_t> PredCount;
  std::vector<uint8_t> IsBackedgeTarget;
  std::vector<int32_t> DepthAtTarget;
  std::vector<int32_t> BcToIr;
  /// Number of StLocal sites per local (index capped at 64).
  std::vector<uint32_t> StLocalCount;
  /// Store generation per local, bumped at each translated StLocal; pairs
  /// with AbsVal::OriginGen to validate origin-local check annotations.
  std::vector<uint32_t> StoreGen;
  /// Definite-assignment bitmask (locals 0..63) at each bytecode index.
  std::vector<uint64_t> DefAssigned;

  uint32_t CurBc = 0;
  uint16_t CurSite = 0;
  const std::vector<LocalProvFact> *PriorFacts;
  std::vector<LocalProvFact> Facts;
};

} // namespace

void IrBuilder::scanControlFlow() {
  size_t N = F.Code.size();
  PredCount.assign(N + 1, 0);
  IsBackedgeTarget.assign(N + 1, 0);
  DepthAtTarget.assign(N + 1, -1);
  BcToIr.assign(N + 1, -1);
  StLocalCount.assign(F.NumLocals, 0);
  for (size_t I = 0; I < N; ++I) {
    const Instr &In = F.Code[I];
    if (In.Op == Opcode::StLocal)
      ++StLocalCount[In.A];
    switch (In.Op) {
    case Opcode::Jump:
      ++PredCount[In.A];
      break;
    case Opcode::JumpLoop:
      ++PredCount[In.A];
      IsBackedgeTarget[In.A] = 1;
      break;
    case Opcode::JumpIfFalse:
    case Opcode::JumpIfTrue:
      ++PredCount[In.A];
      ++PredCount[I + 1];
      break;
    case Opcode::Return:
      break;
    default:
      ++PredCount[I + 1];
      break;
    }
  }

  // Definite-assignment dataflow: DefAssigned[I] = mask of locals assigned
  // on *every* path from entry to instruction I. Parameters count as
  // assigned at entry; the meet over incoming edges is intersection.
  uint64_t ParamMask =
      F.NumParams >= 64 ? ~uint64_t(0) : (uint64_t(1) << F.NumParams) - 1;
  DefAssigned.assign(N + 1, ~uint64_t(0));
  DefAssigned[0] = ParamMask;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < N; ++I) {
      uint64_t Out = DefAssigned[I];
      const Instr &In = F.Code[I];
      if (In.Op == Opcode::StLocal && In.A < 64)
        Out |= uint64_t(1) << In.A;
      auto Flow = [&](size_t To) {
        uint64_t Meet = DefAssigned[To] & Out;
        if (Meet != DefAssigned[To]) {
          DefAssigned[To] = Meet;
          Changed = true;
        }
      };
      switch (In.Op) {
      case Opcode::Jump:
      case Opcode::JumpLoop:
        Flow(In.A);
        break;
      case Opcode::JumpIfFalse:
      case Opcode::JumpIfTrue:
        Flow(In.A);
        Flow(I + 1);
        break;
      case Opcode::Return:
        break;
      default:
        Flow(I + 1);
        break;
      }
    }
  }
}

void IrBuilder::translateGetProp(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  if (FB.Megamorphic || FB.NumEntries == 0) {
    pop();
    OptIrOp &O = emit(IrOpcode::GenericGetPropOp);
    O.B = In.B;
    push(AbsVal::Unknown);
    return;
  }
  if (FB.isMonomorphic()) {
    const PropEntry &E = FB.Entries[0];
    ensureShape(0, E.Shape);
    pop();
    OptIrOp &O = emit(IrOpcode::LoadPropOp);
    O.B = E.Slot;
    O.Shape = E.Shape;
    AbsVal V;
    V.HasProv = true;
    V.ProvHolder = E.Shape;
    V.ProvSlot = E.Slot;
    push(std::move(V));
    return;
  }
  // Polymorphic: a Check Map chain that also selects the slot.
  pop();
  OptIrOp &O = emit(IrOpcode::PolyLoadPropOp);
  O.Aux = static_cast<int32_t>(Code->PolyTables.size());
  Code->PolyTables.emplace_back(FB.Entries, FB.Entries + FB.NumEntries);
  push(AbsVal::Unknown);
}

void IrBuilder::translateSetProp(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  // Stack: [obj, value].
  if (!FB.isMonomorphic()) {
    AbsVal V = pop();
    pop();
    killGlobals();
    OptIrOp &O = emit(IrOpcode::GenericSetPropOp);
    O.B = In.B;
    push(std::move(V));
    return;
  }
  const PropEntry &E = FB.Entries[0];
  ensureShape(1, E.Shape);
  int RecvOrigin = tos(1).OriginLocal;
  AbsVal V = pop();
  pop();
  if (E.NewShape == InvalidShape) {
    layout::SlotLocation L = layout::slotLocation(E.Slot);
    OptIrOp &O = emit(IrOpcode::StorePropOp);
    O.B = E.Slot;
    O.Shape = E.Shape;
    if (slotStillMono(E.Shape, L.Line, L.Pos)) {
      O.Flags |= IrFlagCcStore;
      ++Code->CcStores;
    }
  } else {
    killGlobals();
    layout::SlotLocation L = layout::slotLocation(E.Slot);
    OptIrOp &O = emit(IrOpcode::TransitionStorePropOp);
    O.B = E.Slot;
    O.Shape = E.Shape;
    O.Shape2 = E.NewShape;
    if (slotStillMono(E.NewShape, L.Line, L.Pos)) {
      O.Flags |= IrFlagCcStore;
      ++Code->CcStores;
    }
    retrackOrigin(RecvOrigin, E.NewShape);
  }
  V.OriginLocal = -1;
  push(std::move(V));
}

void IrBuilder::translateGetElem(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  if (!FB.isMonomorphic()) {
    pop();
    pop();
    emit(IrOpcode::GenericGetElemOp);
    push(AbsVal::Unknown);
    return;
  }
  const PropEntry &E = FB.Entries[0];
  ensureShape(1, E.Shape);
  ensureSmi(0);
  pop();
  pop();
  OptIrOp &O = emit(IrOpcode::LoadElemOp);
  O.Shape = E.Shape;
  if (FB.SawOutOfBounds)
    O.Flags |= IrFlagSafeElem;
  AbsVal V;
  V.HasProv = true;
  V.ProvElements = true;
  V.ProvHolder = E.Shape;
  push(std::move(V));
}

void IrBuilder::translateSetElem(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  // Stack: [obj, idx, value].
  if (!FB.isMonomorphic()) {
    AbsVal V = pop();
    pop();
    pop();
    emit(IrOpcode::GenericSetElemOp);
    push(std::move(V));
    return;
  }
  const PropEntry &E = FB.Entries[0];
  ensureShape(2, E.Shape);
  ensureSmi(1);
  int RecvLocal = tos(2).OriginLocal;
  int RecvGlobal = tos(2).OriginGlobal;
  AbsVal V = pop();
  pop();
  pop();
  OptIrOp &O = emit(IrOpcode::StoreElemOp);
  O.Shape = E.Shape;
  O.A = RecvLocal;
  O.Aux = RecvGlobal;
  if (slotStillMono(E.Shape, 0, layout::ElementsPointerPos)) {
    O.Flags |= IrFlagCcStore;
    ++Code->CcStores;
  }
  V.OriginLocal = -1;
  push(std::move(V));
}

void IrBuilder::translateGetLength(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  switch (FB.Length) {
  case LengthKind::String:
    ensureShape(0, VM.Shapes.stringShape());
    pop();
    emit(IrOpcode::LoadStrLengthOp);
    push(AbsVal::Smi);
    return;
  case LengthKind::Elements:
    if (FB.isMonomorphic())
      ensureShape(0, FB.Entries[0].Shape);
    pop();
    emit(IrOpcode::LoadElemsLengthOp);
    push(AbsVal::Smi);
    return;
  case LengthKind::NamedSlot: {
    if (!FB.isMonomorphic())
      break;
    const PropEntry &E = FB.Entries[0];
    ensureShape(0, E.Shape);
    pop();
    OptIrOp &O = emit(IrOpcode::LoadNamedLengthOp);
    O.B = E.Slot;
    AbsVal V;
    V.HasProv = true;
    V.ProvHolder = E.Shape;
    V.ProvSlot = E.Slot;
    push(std::move(V));
    return;
  }
  case LengthKind::None:
  case LengthKind::Mixed:
    break;
  }
  pop();
  emit(IrOpcode::DeoptOp);
  push(AbsVal::Unknown);
}

void IrBuilder::translateBinOp(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  BinaryOp Op = static_cast<BinaryOp>(In.A);
  bool IsCompare = Op >= BinaryOp::Lt;
  bool IsDiv = Op == BinaryOp::Div;

  NumberHint Hint = FB.Hint;
  if (Hint == NumberHint::Smi && IsDiv)
    Hint = NumberHint::Double; // JS division produces doubles.

  if (Hint == NumberHint::Smi) {
    ensureSmi(1);
    ensureSmi(0);
    pop();
    pop();
    OptIrOp &O = emit(IsCompare ? IrOpcode::SmiCompareOp
                                : IrOpcode::SmiBinOpOp);
    O.A = In.A;
    if (IsCompare) {
      push(AbsVal::Boolean);
    } else if (Op == BinaryOp::Shr) {
      push(AbsVal::Number); // >>> may exceed the SMI range.
    } else {
      push(AbsVal::Smi);
    }
    return;
  }
  if (Hint == NumberHint::Double) {
    ensureNumber(1);
    ensureNumber(0);
    pop();
    pop();
    OptIrOp &O = emit(IsCompare ? IrOpcode::DoubleCompareOp
                                : IrOpcode::DoubleBinOpOp);
    O.A = In.A;
    push(IsCompare ? AbsVal::Boolean : AbsVal::UnboxedDouble);
    return;
  }
  if (Hint == NumberHint::String && Op == BinaryOp::Add) {
    pop();
    pop();
    emit(IrOpcode::StringAddOp);
    push(AbsVal::Str);
    return;
  }
  pop();
  pop();
  OptIrOp &O = emit(IrOpcode::GenericBinOpOp);
  O.A = In.A;
  push(IsCompare ? AbsVal::Boolean : AbsVal::Unknown);
}

void IrBuilder::translateUnaOp(const Instr &In) {
  UnaryOp Op = static_cast<UnaryOp>(In.A);
  AbsVal &V = tos();
  // A recorded deopt reason (result left the SMI domain) forces the
  // double path even for SMI-typed operands.
  bool ForceDouble = FI.Feedback[In.Site].Hint == NumberHint::Double;
  switch (Op) {
  case UnaryOp::Neg:
    if (ForceDouble && (V.K == AbsVal::Smi || V.K == AbsVal::Number ||
                        V.K == AbsVal::UnboxedDouble)) {
      pop();
      emit(IrOpcode::DoubleNegOp);
      push(AbsVal::UnboxedDouble);
      return;
    }
    if (V.K == AbsVal::Smi) {
      pop();
      emit(IrOpcode::SmiNegOp);
      push(AbsVal::Smi);
      return;
    }
    if (V.K == AbsVal::Number || V.K == AbsVal::UnboxedDouble) {
      pop();
      emit(IrOpcode::DoubleNegOp);
      push(AbsVal::UnboxedDouble);
      return;
    }
    break;
  case UnaryOp::Plus:
    if (V.K == AbsVal::Smi || V.K == AbsVal::Number ||
        V.K == AbsVal::UnboxedDouble)
      return; // Already a number.
    break;
  case UnaryOp::Not:
    pop();
    emit(IrOpcode::NotOp);
    push(AbsVal::Boolean);
    return;
  case UnaryOp::BitNot:
    if (V.K == AbsVal::Smi) {
      pop();
      emit(IrOpcode::BitNotOp);
      push(AbsVal::Smi);
      return;
    }
    break;
  case UnaryOp::Typeof:
    break;
  }
  pop();
  OptIrOp &O = emit(IrOpcode::GenericUnaOpOp);
  O.A = In.A;
  push(Op == UnaryOp::Not ? AbsVal::Boolean : AbsVal::Unknown);
}

void IrBuilder::translateCallGlobal(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  uint32_t Argc = In.B;
  if (FB.CallTarget != SiteFeedback::NoTarget && !FB.PolymorphicCall) {
    uint32_t Target = FB.CallTarget;
    if (isBuiltinIndex(Target) && isMathInline(builtinFromIndex(Target))) {
      for (uint32_t I = 0; I < Argc; ++I)
        pop();
      OptIrOp &O = emit(IrOpcode::CallBuiltinInlineOp);
      O.A = static_cast<int32_t>(Argc);
      O.B = Target;
      push(AbsVal::Unknown);
      return;
    }
    if (!isBuiltinIndex(Target)) {
      killGlobals();
      for (uint32_t I = 0; I < Argc; ++I)
        pop();
      OptIrOp &O = emit(IrOpcode::CallDirectOp);
      O.A = static_cast<int32_t>(Argc);
      O.B = Target;
      O.Aux = In.A; // Global slot (for the cell check event).
      push(AbsVal::Unknown);
      return;
    }
  }
  // Unknown or polymorphic target: load the global and call it as a value.
  {
    OptIrOp &O = emit(IrOpcode::LdGlobalOp);
    O.A = In.A;
  }
  // The callee must sit *under* the arguments for CallValueOp; since the
  // arguments are already on the stack, use the generic path instead.
  // (Bytecode pushes arguments before CallGlobal resolves the callee, so
  // fall back to a deopt for this rare polymorphic-global case.)
  Code->Ops.pop_back();
  for (uint32_t I = 0; I < Argc; ++I)
    pop();
  OptIrOp &O = emit(IrOpcode::DeoptOp);
  O.A = 1;
  push(AbsVal::Unknown);
}

void IrBuilder::translateCallMethod(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  uint32_t Argc = static_cast<uint32_t>(In.A);
  // Stack: [recv, args...]; receiver at depth Argc.
  bool MonoTarget =
      FB.CallTarget != SiteFeedback::NoTarget && !FB.PolymorphicCall;

  if (MonoTarget && isBuiltinIndex(FB.CallTarget)) {
    BuiltinId Id = builtinFromIndex(FB.CallTarget);
    // String methods: check the receiver is a string; array methods and
    // Math-object methods: check the receiver shape when known.
    if (FB.NumEntries == 1)
      ensureShape(Argc, FB.Entries[0].Shape);
    else if (Id >= BuiltinId::StrCharCodeAt && Id <= BuiltinId::StrToLowerCase)
      ensureShape(Argc, VM.Shapes.stringShape());
    for (uint32_t I = 0; I <= Argc; ++I)
      pop();
    OptIrOp &O = emit(isMathInline(Id) ? IrOpcode::CallBuiltinInlineOp
                                       : IrOpcode::CallBuiltinMethodOp);
    O.A = static_cast<int32_t>(Argc);
    O.B = FB.CallTarget;
    O.Flags |= IrFlagInObject; // Marks "receiver present" for inline ops.
    push(AbsVal::Unknown);
    return;
  }

  if (MonoTarget && FB.NumEntries == 1) {
    // User method, monomorphic receiver: map check + constant target.
    killGlobals();
    ensureShape(Argc, FB.Entries[0].Shape);
    for (uint32_t I = 0; I <= Argc; ++I)
      pop();
    OptIrOp &O = emit(IrOpcode::CallMethodDirectOp);
    O.A = static_cast<int32_t>(Argc);
    O.B = FB.CallTarget;
    push(AbsVal::Unknown);
    return;
  }

  killGlobals();
  for (uint32_t I = 0; I <= Argc; ++I)
    pop();
  OptIrOp &O = emit(IrOpcode::GenericCallMethodOp);
  O.A = static_cast<int32_t>(Argc);
  O.B = In.B;
  push(AbsVal::Unknown);
}

void IrBuilder::translateNew(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  killGlobals();
  uint32_t Argc = In.B;
  for (uint32_t I = 0; I < Argc; ++I)
    pop();
  if (FB.CallTarget == SiteFeedback::NoTarget || FB.PolymorphicCall) {
    OptIrOp &O = emit(IrOpcode::DeoptOp);
    O.A = 2;
    push(AbsVal::Unknown);
    return;
  }
  if (isBuiltinIndex(FB.CallTarget)) {
    OptIrOp &O = emit(IrOpcode::NewArrayOp);
    O.A = static_cast<int32_t>(Argc);
    push(AbsVal::Unknown);
    return;
  }
  OptIrOp &O = emit(IrOpcode::NewObjectOp);
  O.A = static_cast<int32_t>(Argc);
  O.B = FB.CallTarget;
  push(AbsVal::Unknown);
}

void IrBuilder::translate(const Instr &In) {
  switch (In.Op) {
  case Opcode::LdaConst: {
    OptIrOp &O = emit(IrOpcode::Const);
    O.A = In.A;
    const ConstEntry &C = F.Consts[In.A];
    if (C.Kind == ConstEntry::String)
      push(AbsVal::Str);
    else
      push(AbsVal::Number);
    return;
  }
  case Opcode::LdaSmi: {
    OptIrOp &O = emit(IrOpcode::LdaSmiOp);
    O.A = In.A;
    push(AbsVal::Smi);
    return;
  }
  case Opcode::LdaUndefined:
    emit(IrOpcode::LdaUndef);
    push(AbsVal::Unknown);
    return;
  case Opcode::LdaNull:
    emit(IrOpcode::LdaNull);
    push(AbsVal::Unknown);
    return;
  case Opcode::LdaTrue:
    emit(IrOpcode::LdaTrue);
    push(AbsVal::Boolean);
    return;
  case Opcode::LdaFalse:
    emit(IrOpcode::LdaFalse);
    push(AbsVal::Boolean);
    return;
  case Opcode::LdaThis: {
    emit(IrOpcode::LdaThisOp);
    AbsVal V = AbsThis;
    push(std::move(V));
    return;
  }
  case Opcode::LdLocal: {
    OptIrOp &O = emit(IrOpcode::LdLocalOp);
    O.A = In.A;
    AbsVal V = Loc[In.A];
    V.OriginLocal = In.A;
    V.OriginGen = StoreGen[In.A];
    push(std::move(V));
    return;
  }
  case Opcode::StLocal: {
    OptIrOp &O = emit(IrOpcode::StLocalOp);
    O.A = In.A;
    AbsVal V = pop();
    if (static_cast<size_t>(In.A) < Facts.size())
      Facts[In.A].meet(V);
    ++StoreGen[In.A];
    V.OriginLocal = In.A;
    V.OriginGen = StoreGen[In.A];
    Loc[In.A] = std::move(V);
    return;
  }
  case Opcode::LdGlobal: {
    OptIrOp &O = emit(IrOpcode::LdGlobalOp);
    O.A = In.A;
    auto It = AbsGlobals.find(static_cast<uint32_t>(In.A));
    AbsVal V = It != AbsGlobals.end() ? It->second : AbsVal();
    V.OriginGlobal = In.A;
    V.OriginLocal = -1;
    push(std::move(V));
    return;
  }
  case Opcode::StGlobal: {
    OptIrOp &O = emit(IrOpcode::StGlobalOp);
    O.A = In.A;
    AbsVal V = pop();
    V.OriginGlobal = In.A;
    AbsGlobals[static_cast<uint32_t>(In.A)] = std::move(V);
    return;
  }
  case Opcode::Pop:
    emit(IrOpcode::PopOp);
    pop();
    return;
  case Opcode::Dup: {
    emit(IrOpcode::DupOp);
    AbsVal V = tos();
    push(std::move(V));
    return;
  }
  case Opcode::BinOp:
    translateBinOp(In);
    return;
  case Opcode::UnaOp:
    translateUnaOp(In);
    return;
  case Opcode::Jump: {
    OptIrOp &O = emit(IrOpcode::JumpOp);
    O.A = In.A; // Bytecode target; fixed up at the end.
    DepthAtTarget[In.A] = static_cast<int32_t>(St.size());
    return;
  }
  case Opcode::JumpLoop: {
    OptIrOp &O = emit(IrOpcode::JumpLoopOp);
    O.A = In.A;
    return;
  }
  case Opcode::JumpIfFalse:
  case Opcode::JumpIfTrue: {
    pop();
    OptIrOp &O = emit(In.Op == Opcode::JumpIfFalse ? IrOpcode::JumpIfFalseOp
                                                   : IrOpcode::JumpIfTrueOp);
    O.A = In.A;
    DepthAtTarget[In.A] = static_cast<int32_t>(St.size());
    return;
  }
  case Opcode::GetProp:
    translateGetProp(In);
    return;
  case Opcode::SetProp:
    translateSetProp(In);
    return;
  case Opcode::GetElem:
    translateGetElem(In);
    return;
  case Opcode::SetElem:
    translateSetElem(In);
    return;
  case Opcode::GetLength:
    translateGetLength(In);
    return;
  case Opcode::CreateObject: {
    OptIrOp &O = emit(IrOpcode::CreateObjectOp);
    O.A = In.A;
    AbsVal V;
    V.K = AbsVal::Obj;
    V.Shape = VM.Shapes.plainRoot();
    push(std::move(V));
    return;
  }
  case Opcode::CreateArray: {
    OptIrOp &O = emit(IrOpcode::CreateArrayOp);
    O.A = In.A;
    AbsVal V;
    V.K = AbsVal::Obj;
    V.Shape = VM.Shapes.rootForArraySite((uint64_t(FuncIndex) << 32) | CurBc);
    push(std::move(V));
    return;
  }
  case Opcode::AddPropLit: {
    killGlobals();
    // The literal object's shape is statically known; follow (or create)
    // the transition at compile time.
    AbsVal V = pop();
    AbsVal &Obj = tos();
    assert(Obj.K == AbsVal::Obj && "literal target shape must be known");
    ShapeId Old = Obj.Shape;
    ShapeId New = VM.Shapes.transition(Old, In.B);
    uint32_t Slot = VM.Shapes.get(New).NumSlots - 1;
    OptIrOp &O = emit(IrOpcode::AddPropTransitionOp);
    O.B = Slot;
    O.Shape = Old;
    O.Shape2 = New;
    layout::SlotLocation L = layout::slotLocation(Slot);
    if (slotStillMono(New, L.Line, L.Pos)) {
      O.Flags |= IrFlagCcStore;
      ++Code->CcStores;
    }
    Obj.Shape = New;
    (void)V;
    return;
  }
  case Opcode::StElemInit: {
    OptIrOp &O = emit(IrOpcode::StElemInitOp);
    O.A = In.A;
    AbsVal &Arr = tos(1);
    if (Arr.K == AbsVal::Obj &&
        slotStillMono(Arr.Shape, 0, layout::ElementsPointerPos)) {
      O.Flags |= IrFlagCcStore;
      ++Code->CcStores;
    }
    O.Shape = Arr.K == AbsVal::Obj ? Arr.Shape : InvalidShape;
    pop();
    return;
  }
  case Opcode::CallGlobal:
    translateCallGlobal(In);
    return;
  case Opcode::CallMethod:
    translateCallMethod(In);
    return;
  case Opcode::CallValue: {
    uint32_t Argc = static_cast<uint32_t>(In.A);
    killGlobals();
    ensureShape(Argc, VM.Shapes.functionShape());
    for (uint32_t I = 0; I <= Argc; ++I)
      pop();
    OptIrOp &O = emit(IrOpcode::CallValueOp);
    O.A = In.A;
    push(AbsVal::Unknown);
    return;
  }
  case Opcode::New:
    translateNew(In);
    return;
  case Opcode::Return:
    emit(IrOpcode::ReturnOp);
    pop();
    return;
  }
  CCJS_UNREACHABLE("unknown opcode in IR builder");
}

void IrBuilder::hoistClassIdLoads() {
  if (!VM.Config.ClassCacheEnabled || !VM.Config.HoistClassIdArray)
    return;
  for (uint32_t I = 0; I < Code->Ops.size(); ++I) {
    if (Code->Ops[I].Op != IrOpcode::JumpLoopOp)
      continue;
    uint32_t Head = static_cast<uint32_t>(Code->Ops[I].A);
    if (Head >= I)
      continue;

    // The loop body must be call-free (calls clobber the special regs).
    bool HasCall = false;
    for (uint32_t J = Head; J <= I && !HasCall; ++J) {
      switch (Code->Ops[J].Op) {
      case IrOpcode::CallDirectOp:
      case IrOpcode::CallBuiltinMethodOp:
      case IrOpcode::CallMethodDirectOp:
      case IrOpcode::CallValueOp:
      case IrOpcode::GenericCallMethodOp:
      case IrOpcode::NewObjectOp:
      case IrOpcode::NewArrayOp:
        HasCall = true;
        break;
      default:
        break;
      }
    }
    if (HasCall)
      continue;

    // Locals and globals written inside the loop are not invariant.
    std::vector<uint32_t> WrittenLocals, WrittenGlobals;
    for (uint32_t J = Head; J <= I; ++J) {
      if (Code->Ops[J].Op == IrOpcode::StLocalOp)
        WrittenLocals.push_back(static_cast<uint32_t>(Code->Ops[J].A));
      if (Code->Ops[J].Op == IrOpcode::StGlobalOp)
        WrittenGlobals.push_back(static_cast<uint32_t>(Code->Ops[J].A));
    }
    auto Contains = [](const std::vector<uint32_t> &V, uint32_t X) {
      return std::find(V.begin(), V.end(), X) != V.end();
    };

    std::vector<uint32_t> &Preloads = Code->LoopPreloads[Head];
    for (uint32_t J = Head; J <= I; ++J) {
      OptIrOp &O = Code->Ops[J];
      if (O.Op != IrOpcode::StoreElemOp || !(O.Flags & IrFlagCcStore))
        continue;
      uint32_t Key;
      if (O.A >= 0 && !Contains(WrittenLocals, static_cast<uint32_t>(O.A)))
        Key = static_cast<uint32_t>(O.A);
      else if (O.Aux >= 0 &&
               !Contains(WrittenGlobals, static_cast<uint32_t>(O.Aux)))
        Key = PreloadGlobalBit | static_cast<uint32_t>(O.Aux);
      else
        continue;
      if (!Contains(Preloads, Key)) {
        if (Preloads.size() >= VM.Config.NumArrayClassRegs)
          continue; // Out of regArrayObjectClassId registers.
        Preloads.push_back(Key);
      }
      O.Flags |= IrFlagHoistedClassId;
      ++Code->HoistedStores;
    }
    if (Preloads.empty())
      Code->LoopPreloads.erase(Head);
  }
}

OptCode *IrBuilder::build() {
  Code = new OptCode();
  Code->FuncIndex = FuncIndex;
  // OptIR expands each bytecode into a handful of ops (checks, untags,
  // the operation itself); 4x covers virtually every function, so the op
  // stream grows without repeated reallocation-and-copy cycles.
  Code->Ops.reserve(F.Code.size() * 4);
  scanControlFlow();
  Facts.assign(F.NumLocals, LocalProvFact());
  StoreGen.assign(F.NumLocals, 0);
  Loc.assign(F.NumLocals, AbsVal());
  AbsThis.OriginLocal = -2;

  bool Reachable = true;
  for (size_t I = 0; I < F.Code.size(); ++I) {
    CurBc = static_cast<uint32_t>(I);
    CurSite = F.Code[I].Site;
    if (!Reachable) {
      if (DepthAtTarget[I] < 0 && PredCount[I] == 0) {
        // Dead code. PredCount was computed statically, so retract this
        // instruction's outgoing edges: code reachable only from dead code
        // is dead too (e.g. the compiler's implicit `undefined; return`
        // epilogue after a function whose every path already returned —
        // translating it would pop an empty abstract stack).
        const Instr &Dead = F.Code[I];
        switch (Dead.Op) {
        case Opcode::Jump:
        case Opcode::JumpLoop:
          --PredCount[Dead.A];
          break;
        case Opcode::JumpIfFalse:
        case Opcode::JumpIfTrue:
          --PredCount[Dead.A];
          --PredCount[I + 1];
          break;
        case Opcode::Return:
          break;
        default:
          --PredCount[I + 1];
          break;
        }
        continue;
      }
      int32_t D = DepthAtTarget[I] >= 0 ? DepthAtTarget[I] : 0;
      St.assign(static_cast<size_t>(D), AbsVal());
      noteDepth();
      clearAbstractState();
      Reachable = true;
    } else if (PredCount[I] > 1 || IsBackedgeTarget[I]) {
      // Merge point: conservative join.
      joinAtMerge(static_cast<uint32_t>(I));
    }
    BcToIr[I] = static_cast<int32_t>(Code->Ops.size());
    translate(F.Code[I]);
    Opcode Op = F.Code[I].Op;
    if (Op == Opcode::Jump || Op == Opcode::JumpLoop || Op == Opcode::Return)
      Reachable = false;
  }
  BcToIr[F.Code.size()] = static_cast<int32_t>(Code->Ops.size());

  // Fix up jump targets from bytecode indices to IR indices.
  for (OptIrOp &O : Code->Ops) {
    if (O.Op != IrOpcode::JumpOp && O.Op != IrOpcode::JumpLoopOp &&
        O.Op != IrOpcode::JumpIfFalseOp && O.Op != IrOpcode::JumpIfTrueOp)
      continue;
    int32_t Target = O.A;
    while (Target <= static_cast<int32_t>(F.Code.size()) &&
           BcToIr[Target] < 0)
      ++Target;
    assert(BcToIr[Target] >= 0 && "jump to untranslated bytecode");
    O.A = BcToIr[Target];
  }

  hoistClassIdLoads();

  // Dense executor-side index of LoopPreloads: the dispatch prologue
  // tests one byte per op instead of probing the hash map (which it
  // otherwise does for every op of any function containing a loop).
  Code->PreloadAt.assign(Code->Ops.size(), 0);
  for (const auto &KV : Code->LoopPreloads)
    Code->PreloadAt[KV.first] = 1;

  Code->MaxStack = static_cast<uint32_t>(MaxDepth);

  return Code;
}

OptCode *ccjs::buildOptIr(VMState &VM, uint32_t FuncIndex) {
  // Two passes: the first collects per-local provenance facts; the second
  // uses them to keep multi-assignment locals' provenance across merges.
  // This is the entry stage of the compile pipeline; the pass pipeline,
  // fusion and the compile-cost charge live in jit/passes/PassManager.cpp.
  IrBuilder Pass1(VM, FuncIndex);
  OptCode *Scratch = Pass1.build();
  delete Scratch;
  std::vector<LocalProvFact> Facts = Pass1.takeFacts();
  IrBuilder Pass2(VM, FuncIndex, &Facts);
  return Pass2.build();
}
