//===- jit/Executor.cpp - OptIR execution with deoptimization -------------===//
///
/// Runs optimized code. Every op performs its semantics against the heap
/// and expands into the machine events its compiled form would execute,
/// categorized per the paper's Figure 1 (Checks / Tags-Untags / Math
/// Assumptions / Other Optimized). Deoptimization materializes the frame
/// and resumes the interpreter; stores that trigger a Class Cache
/// exception complete first and deoptimize *after* (no recovery needed,
/// section 4.2.2).
///
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "runtime/Layout.h"
#include "runtime/Operations.h"
#include "support/Assert.h"
#include "vm/Builtins.h"
#include "vm/ProfileHooks.h"

#include <cmath>
#include <cstdlib>

using namespace ccjs;

static constexpr InstrCategory CH = InstrCategory::Checks;
static constexpr InstrCategory TU = InstrCategory::TagsUntags;
static constexpr InstrCategory MA = InstrCategory::MathAssumptions;
static constexpr InstrCategory OO = InstrCategory::OtherOptimized;
static constexpr InstrCategory RC = InstrCategory::RestOfCode;

namespace {

/// A stack slot: a tagged value or an unboxed double kept in a register.
struct OptValue {
  bool Unboxed = false;
  Value V;
  double D = 0;

  static OptValue tagged(Value V) {
    OptValue O;
    O.V = V;
    return O;
  }
  static OptValue unboxed(double D) {
    OptValue O;
    O.Unboxed = true;
    O.D = D;
    return O;
  }
};

class OptExecutor {
public:
  OptExecutor(VMState &VM, uint32_t FuncIndex, Value ThisV)
      : VM(VM), H(VM.Heap_), FI(VM.Funcs[FuncIndex]), C(*FI.Opt),
        FuncIndex(FuncIndex), ThisV(ThisV) {}

  Value run(const Value *Args, uint32_t Argc);

private:
  OptValue pop() {
    OptValue V = St.back();
    St.pop_back();
    return V;
  }
  OptValue &peek(unsigned Depth = 0) { return St[St.size() - 1 - Depth]; }
  void push(OptValue V) { St.push_back(V); }
  void pushTagged(Value V) { St.push_back(OptValue::tagged(V)); }

  /// Boxes an unboxed double, charging the tag events.
  Value materialize(OptValue &V, InstrCategory Cat) {
    if (!V.Unboxed)
      return V.V;
    Value Tagged = H.number(V.D);
    VM.Ctx.alu(Cat, Tagged.isSmi() ? 1 : 4);
    if (!Tagged.isSmi())
      VM.Ctx.store(Cat, Tagged.asPointer() + 8);
    V.Unboxed = false;
    V.V = Tagged;
    return Tagged;
  }

  /// Numeric view of a (known-number) value, with untag events.
  double untagNumber(const OptValue &V, InstrCategory Cat) {
    if (V.Unboxed)
      return V.D;
    if (V.V.isSmi()) {
      VM.Ctx.alu(Cat, 1);
      return V.V.asSmi();
    }
    VM.Ctx.load(Cat, V.V.asPointer() + 8);
    return H.heapNumberValue(V.V.asPointer());
  }

  bool truthy(const OptValue &V) {
    if (V.Unboxed)
      return V.D != 0 && !std::isnan(V.D);
    return toBoolean(H, V.V);
  }

  uint32_t site(uint32_t Ir) const { return (FuncIndex << 16) ^ Ir ^ 0x40000000u; }

  /// Deoptimizes: materializes the frame and resumes the interpreter at
  /// bytecode \p ResumeBc. \p Failure marks a broken speculation (stale
  /// feedback), which invalidates this code. \p Reason records why for
  /// observers and metrics.
  Value deopt(uint32_t ResumeBc, bool Failure, DeoptReason Reason) {
    DeoptEvent Ev{FuncIndex, CurOpIndex, ResumeBc, Failure, FI.DeoptCount,
                  Reason};
    if (Failure) {
      FI.OptValid = false;
      // Let the baseline tier refresh the feedback before re-optimizing.
      FI.InvocationCount = 0;
      if (++FI.DeoptCount >= VM.Config.MaxDeoptsPerFunction)
        FI.OptDisabled = true;
    }
    if (VM.Metrics) {
      ++VM.Metrics->counter(Failure ? "deopts_failure" : "deopts_planned");
      ++VM.Metrics->counter(std::string("deopts.") + deoptReasonName(Reason));
    }
    // Bookkeeping first, then notify: observers (tracer, auditor, test
    // captures) see the post-event state the invariants describe.
    VM.notifyDeopt(Ev);
    VM.Ctx.alu(RC, 60); // Frame reconstruction in the deoptimizer.
    std::vector<Value> Locals(Loc.size());
    for (size_t I = 0; I < Loc.size(); ++I)
      Locals[I] = materialize(Loc[I], RC);
    std::vector<Value> Stack(St.size());
    for (size_t I = 0; I < St.size(); ++I)
      Stack[I] = materialize(St[I], RC);
    return VM.InterpretFrom(VM, FuncIndex, ThisV, std::move(Locals),
                            std::move(Stack), ResumeBc);
  }

  Value invoke(uint32_t Target, Value This, const Value *Args,
               uint32_t Argc) {
    if (isBuiltinIndex(Target))
      return VM.CallBuiltinFn(VM, Target, This, Args, Argc);
    return VM.Invoke(VM, Target, This, Args, Argc);
  }

  /// Pops argc arguments (materializing unboxed doubles) into ArgBuf.
  const Value *popArgs(uint32_t Argc) {
    assert(Argc <= MaxArgs && "too many call arguments");
    for (uint32_t I = 0; I < Argc; ++I) {
      OptValue V = pop();
      ArgBuf[Argc - 1 - I] = materialize(V, TU);
    }
    return ArgBuf;
  }

  double argOrNaN(const Value *Args, uint32_t Argc, uint32_t I) {
    if (I >= Argc)
      return std::nan("");
    Value V = Args[I];
    if (V.isSmi()) {
      VM.Ctx.alu(TU, 1);
      return V.asSmi();
    }
    if (H.isHeapNumber(V)) {
      VM.Ctx.load(TU, V.asPointer() + 8);
      return H.heapNumberValue(V.asPointer());
    }
    return toNumber(H, V);
  }

  VMState &VM;
  Heap &H;
  FunctionInfo &FI;
  OptCode &C;
  uint32_t FuncIndex;
  Value ThisV;
  std::vector<OptValue> St;
  std::vector<OptValue> Loc;
  uint32_t CurOpIndex = 0;

  static constexpr uint32_t MaxArgs = 16;
  Value ArgBuf[MaxArgs];
};

} // namespace

Value OptExecutor::run(const Value *Args, uint32_t Argc) {
  const BytecodeFunction &F = *FI.Fn;
  Loc.assign(F.NumLocals, OptValue::tagged(H.undefined()));
  for (uint32_t I = 0; I < Argc && I < F.NumParams; ++I)
    Loc[I] = OptValue::tagged(Args[I]);
  St.reserve(16);

  uint32_t PC = 0;
  bool FromBackedge = false;

  for (;;) {
    if (VM.Halted)
      return H.undefined();
    assert(PC < C.Ops.size() && "OptIR pc out of range");
    const OptIrOp &O = C.Ops[PC];
    uint32_t Cur = PC;
    CurOpIndex = Cur;
    ++PC;

    // Hoisted movClassIDArray loads fire on loop entry (not per back edge).
    if (!C.LoopPreloads.empty() && !FromBackedge) {
      auto It = C.LoopPreloads.find(Cur);
      if (It != C.LoopPreloads.end()) {
        for (uint32_t Key : It->second) {
          Value V;
          if (Key & (1u << 31)) {
            uint32_t G = Key & ~(1u << 31);
            VM.Ctx.load(OO, VM.globalAddr(G));
            V = VM.readGlobal(G);
          } else {
            OptValue &LV = Loc[Key];
            if (LV.Unboxed)
              continue;
            V = LV.V;
          }
          if (V.isPointer())
            VM.Ctx.load(OO, V.asPointer()); // movClassIDArray header load.
        }
      }
    }
    if (O.Op != IrOpcode::JumpLoopOp)
      FromBackedge = false;

    switch (O.Op) {
    case IrOpcode::Const:
      VM.Ctx.alu(OO, 1);
      pushTagged(FI.ConstPool[O.A]);
      break;
    case IrOpcode::LdaSmiOp:
      VM.Ctx.alu(OO, 1);
      pushTagged(Value::makeSmi(O.A));
      break;
    case IrOpcode::LdaUndef:
      VM.Ctx.alu(OO, 1);
      pushTagged(H.undefined());
      break;
    case IrOpcode::LdaNull:
      VM.Ctx.alu(OO, 1);
      pushTagged(H.null());
      break;
    case IrOpcode::LdaTrue:
      VM.Ctx.alu(OO, 1);
      pushTagged(H.trueValue());
      break;
    case IrOpcode::LdaFalse:
      VM.Ctx.alu(OO, 1);
      pushTagged(H.falseValue());
      break;
    case IrOpcode::LdaThisOp:
      VM.Ctx.alu(OO, 1);
      pushTagged(ThisV);
      break;
    case IrOpcode::LdLocalOp:
      VM.Ctx.alu(OO, 1);
      push(Loc[O.A]);
      break;
    case IrOpcode::StLocalOp:
      VM.Ctx.alu(OO, 1);
      Loc[O.A] = pop();
      break;
    case IrOpcode::LdGlobalOp:
      VM.Ctx.load(OO, VM.globalAddr(static_cast<uint32_t>(O.A)));
      pushTagged(VM.readGlobal(static_cast<uint32_t>(O.A)));
      break;
    case IrOpcode::StGlobalOp: {
      OptValue V = pop();
      Value T = materialize(V, TU);
      VM.Ctx.store(OO, VM.globalAddr(static_cast<uint32_t>(O.A)));
      VM.writeGlobal(static_cast<uint32_t>(O.A), T);
      break;
    }
    case IrOpcode::PopOp:
      VM.Ctx.alu(OO, 1);
      pop();
      break;
    case IrOpcode::DupOp:
      VM.Ctx.alu(OO, 1);
      push(peek());
      break;

    //===------------------------------------------------------------------===//
    // Checks
    //===------------------------------------------------------------------===//

    case IrOpcode::CheckMapOp: {
      InstrCategory Cat = (O.Flags & IrFlagPreUntag) ? TU : CH;
      bool AOL = (O.Flags & IrFlagAfterObjectLoad) != 0;
      OptValue &V = peek(O.Depth);
      // An unboxed double satisfies a HeapNumber map check by
      // representation (no materialization needed until a tagged use).
      bool Pass = V.Unboxed
                      ? O.Shape == VM.Shapes.heapNumberShape()
                      : V.V.isPointer() && H.shapeOfValue(V.V) == O.Shape;
      // Chaos: pretend the check failed; the deopt path must recover.
      if (Pass && VM.FaultInj && VM.FaultInj->fire(FaultPoint::ForcedGuardFail))
        Pass = false;
      if (Pass && !V.Unboxed)
        VM.Ctx.load(Cat, V.V.asPointer(), AOL);
      else
        VM.Ctx.alu(Cat, 1, AOL);
      VM.Ctx.alu(Cat, 1, AOL);
      VM.Ctx.branch(Cat, site(Cur), !Pass, AOL);
      if (!Pass)
        return deopt(O.BcPc, /*Failure=*/true, DeoptReason::CheckMap);
      break;
    }
    case IrOpcode::CheckSmiOp: {
      bool AOL = (O.Flags & IrFlagAfterObjectLoad) != 0;
      OptValue &V = peek(O.Depth);
      bool Pass;
      if (V.Unboxed) {
        // Representation change: an unboxed double that holds an exact
        // SMI value converts in place (cvttsd2si); otherwise deopt.
        int32_t I = static_cast<int32_t>(V.D);
        if (static_cast<double>(I) == V.D &&
            !(V.D == 0 && std::signbit(V.D))) {
          VM.Ctx.alu(TU, 1, AOL);
          V.Unboxed = false;
          V.V = Value::makeSmi(I);
          Pass = true;
        } else {
          Pass = false;
        }
      } else {
        Pass = V.V.isSmi();
      }
      // Chaos: a forced failure after the in-place conversion is still
      // transparent — the interpreter re-executes on the tagged SMI.
      if (Pass && VM.FaultInj && VM.FaultInj->fire(FaultPoint::ForcedGuardFail))
        Pass = false;
      VM.Ctx.alu(CH, 1, AOL);
      VM.Ctx.branch(CH, site(Cur), !Pass, AOL);
      if (!Pass)
        return deopt(O.BcPc, /*Failure=*/true, DeoptReason::CheckSmi);
      break;
    }
    case IrOpcode::CheckNumberOp: {
      bool AOL = (O.Flags & IrFlagAfterObjectLoad) != 0;
      OptValue &V = peek(O.Depth);
      bool Pass = V.Unboxed || V.V.isSmi() ||
                  (V.V.isPointer() && H.isHeapNumber(V.V));
      if (Pass && VM.FaultInj && VM.FaultInj->fire(FaultPoint::ForcedGuardFail))
        Pass = false;
      VM.Ctx.alu(TU, 1, AOL);
      if (!V.Unboxed && V.V.isPointer())
        VM.Ctx.load(TU, V.V.asPointer(), AOL);
      VM.Ctx.branch(TU, site(Cur), !Pass, AOL);
      if (!Pass)
        return deopt(O.BcPc, /*Failure=*/true, DeoptReason::CheckNumber);
      break;
    }

    //===------------------------------------------------------------------===//
    // Named properties
    //===------------------------------------------------------------------===//

    case IrOpcode::LoadPropOp: {
      OptValue Obj = pop();
      uint64_t Addr = Obj.V.asPointer();
      bool InObject = false;
      uint64_t SlotAddr = H.slotAddress(Addr, O.B, &InObject);
      VM.Ctx.load(OO, SlotAddr);
      VM.Profiler.recordPropertyLoad(
          O.Shape, O.B, InObject && layout::slotLocation(O.B).Line == 0);
      pushTagged(H.getSlot(Addr, O.B));
      break;
    }
    case IrOpcode::PolyLoadPropOp: {
      OptValue Obj = pop();
      if (Obj.Unboxed || !Obj.V.isPointer() || !H.isPlainObject(Obj.V)) {
        push(Obj);
        return deopt(O.BcPc, true, DeoptReason::PolyMiss);
      }
      uint64_t Addr = Obj.V.asPointer();
      ShapeId Shape = H.shapeOf(Addr);
      const std::vector<PropEntry> &Table = C.PolyTables[O.Aux];
      VM.Ctx.load(CH, Addr);
      const PropEntry *Hit = nullptr;
      for (size_t K = 0; K < Table.size(); ++K) {
        VM.Ctx.alu(CH, 1);
        VM.Ctx.branch(CH, site(Cur) + static_cast<uint32_t>(K),
                      Table[K].Shape != Shape);
        if (Table[K].Shape == Shape) {
          Hit = &Table[K];
          break;
        }
      }
      if (!Hit) {
        push(Obj);
        return deopt(O.BcPc, true, DeoptReason::PolyMiss);
      }
      bool InObject = false;
      uint64_t SlotAddr = H.slotAddress(Addr, Hit->Slot, &InObject);
      VM.Ctx.load(OO, SlotAddr);
      VM.Profiler.recordPropertyLoad(
          Shape, Hit->Slot,
          InObject && layout::slotLocation(Hit->Slot).Line == 0);
      pushTagged(H.getSlot(Addr, Hit->Slot));
      break;
    }
    case IrOpcode::GenericGetPropOp: {
      OptValue Obj = pop();
      Value T = materialize(Obj, TU);
      if (!T.isPointer() || !H.isPlainObject(T)) {
        push(OptValue::tagged(T));
        return deopt(O.BcPc, true, DeoptReason::GenericReceiver);
      }
      uint64_t Addr = T.asPointer();
      ShapeId Shape = H.shapeOf(Addr);
      VM.Ctx.alu(OO, 2);
      VM.Ctx.alu(RC, 10);
      VM.Ctx.load(RC, Addr);
      std::optional<uint32_t> Found = VM.Shapes.lookup(Shape, O.B);
      if (!Found) {
        pushTagged(H.undefined());
        break;
      }
      bool InObject = false;
      uint64_t SlotAddr = H.slotAddress(Addr, *Found, &InObject);
      VM.Ctx.load(RC, SlotAddr);
      VM.Profiler.recordPropertyLoad(
          Shape, *Found, InObject && layout::slotLocation(*Found).Line == 0);
      pushTagged(H.getSlot(Addr, *Found));
      break;
    }
    case IrOpcode::StorePropOp: {
      OptValue V = pop();
      OptValue Obj = pop();
      Value T = materialize(V, TU);
      uint64_t Addr = Obj.V.asPointer();
      bool InObject = false;
      uint64_t SlotAddr = H.slotAddress(Addr, O.B, &InObject);
      H.setSlot(Addr, O.B, T);
      VM.Ctx.store(OO, SlotAddr);
      if (O.Flags & IrFlagCcStore) {
        profilePropertyStore(VM, OO, O.Shape, O.B, T, InObject);
      } else {
        VM.Profiler.recordPropertyStore(O.Shape, O.B,
                                        profilerClassOf(VM, T));
      }
      pushTagged(T);
      if (!FI.OptValid)
        return deopt(O.BcNext, /*Failure=*/false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::TransitionStorePropOp: {
      OptValue V = pop();
      OptValue Obj = pop();
      Value T = materialize(V, TU);
      uint64_t Addr = Obj.V.asPointer();
      uint32_t Slot = H.addProperty(Addr, VM.Shapes.get(O.Shape2).AddedName,
                                    T);
      assert(Slot == O.B && "transition produced an unexpected slot");
      assert(H.shapeOf(Addr) == O.Shape2 &&
             "transition produced an unexpected shape");
      VM.Ctx.alu(OO, 3);
      VM.Ctx.store(OO, Addr); // Header rewrite.
      bool InObject = false;
      uint64_t SlotAddr = H.slotAddress(Addr, Slot, &InObject);
      VM.Ctx.store(OO, SlotAddr);
      if (!InObject)
        VM.Ctx.alu(RC, 40); // Overflow-properties slow path.
      if (O.Flags & IrFlagCcStore) {
        profilePropertyStore(VM, OO, O.Shape2, Slot, T, InObject);
      } else {
        VM.Profiler.recordPropertyStore(O.Shape2, Slot,
                                        profilerClassOf(VM, T));
      }
      pushTagged(T);
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::GenericSetPropOp: {
      OptValue V = pop();
      OptValue Obj = pop();
      Value T = materialize(V, TU);
      if (Obj.Unboxed || !Obj.V.isPointer() || !H.isPlainObject(Obj.V)) {
        push(Obj);
        pushTagged(T);
        return deopt(O.BcPc, true, DeoptReason::GenericReceiver);
      }
      uint64_t Addr = Obj.V.asPointer();
      ShapeId Shape = H.shapeOf(Addr);
      VM.Ctx.alu(OO, 2);
      VM.Ctx.alu(RC, 12);
      std::optional<uint32_t> Found = VM.Shapes.lookup(Shape, O.B);
      uint32_t Slot;
      ShapeId PostShape = Shape;
      if (Found) {
        Slot = *Found;
        H.setSlot(Addr, Slot, T);
      } else {
        Slot = H.addProperty(Addr, O.B, T);
        PostShape = H.shapeOf(Addr);
        VM.Ctx.alu(RC, 20);
      }
      bool InObject = false;
      uint64_t SlotAddr = H.slotAddress(Addr, Slot, &InObject);
      VM.Ctx.store(RC, SlotAddr);
      profilePropertyStore(VM, RC, PostShape, Slot, T, InObject);
      pushTagged(T);
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }

    //===------------------------------------------------------------------===//
    // Elements
    //===------------------------------------------------------------------===//

    case IrOpcode::LoadElemOp: {
      OptValue Idx = pop();
      OptValue Obj = pop();
      uint64_t Addr = Obj.V.asPointer();
      int64_t I = Idx.V.asSmi();
      VM.Ctx.load(OO, Addr + layout::ElementsLengthPos * 8);
      VM.Ctx.alu(OO, 1);
      VM.Ctx.branch(OO, site(Cur), false);
      VM.Profiler.recordElementLoad(O.Shape);
      if (I < 0 || I >= H.elementsLength(Addr)) {
        if (O.Flags & IrFlagSafeElem) {
          VM.Ctx.alu(OO, 1);
          pushTagged(H.undefined());
          break;
        }
        push(Obj);
        push(Idx);
        return deopt(O.BcPc, true, DeoptReason::ElemBounds);
      }
      VM.Ctx.load(OO, Addr + layout::ElementsPointerPos * 8);
      VM.Ctx.load(OO, H.elementAddress(Addr, static_cast<uint32_t>(I)));
      pushTagged(H.getElement(Addr, I));
      break;
    }
    case IrOpcode::StoreElemOp: {
      OptValue V = pop();
      OptValue Idx = pop();
      OptValue Obj = pop();
      Value T = materialize(V, TU);
      uint64_t Addr = Obj.V.asPointer();
      int64_t I = Idx.V.asSmi();
      if (I < 0) {
        push(Obj);
        push(Idx);
        pushTagged(T);
        return deopt(O.BcPc, true, DeoptReason::ElemBounds);
      }
      VM.Ctx.load(OO, Addr + layout::ElementsLengthPos * 8);
      VM.Ctx.alu(OO, 1);
      VM.Ctx.branch(OO, site(Cur), false);
      VM.Ctx.load(OO, Addr + layout::ElementsPointerPos * 8);
      bool Slow = H.setElement(Addr, I, T);
      if (Slow)
        VM.Ctx.alu(RC, 40);
      VM.Ctx.store(OO, H.elementAddress(Addr, static_cast<uint32_t>(I)));
      VM.Profiler.recordElementStore(O.Shape, profilerClassOf(VM, T));
      if ((O.Flags & IrFlagCcStore) && VM.Config.ClassCacheEnabled) {
        const Shape &S = VM.Shapes.get(O.Shape);
        if (S.ClassId < UntrackedClassId) {
          if (!(O.Flags & IrFlagHoistedClassId))
            VM.Ctx.load(OO, Addr); // movClassIDArray.
          emitMovClassId(VM, OO, T);
          runClassCacheRequest(VM, OO, S.ClassId, 0,
                               layout::ElementsPointerPos,
                               H.classIdOfValue(T));
        }
      }
      pushTagged(T);
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::GenericGetElemOp: {
      OptValue Idx = pop();
      OptValue Obj = pop();
      Value TI = materialize(Idx, TU);
      Value TO = materialize(Obj, TU);
      if (!TO.isPointer() || !H.isPlainObject(TO)) {
        pushTagged(TO);
        pushTagged(TI);
        return deopt(O.BcPc, true, DeoptReason::GenericReceiver);
      }
      uint64_t Addr = TO.asPointer();
      ShapeId Shape = H.shapeOf(Addr);
      VM.Ctx.alu(OO, 2);
      VM.Ctx.alu(RC, 15);
      if (TI.isPointer() && H.isString(TI)) {
        InternedString Name =
            VM.Names.intern(H.stringContents(TI.asPointer()));
        std::optional<uint32_t> Found = VM.Shapes.lookup(Shape, Name);
        pushTagged(Found ? H.getSlot(Addr, *Found) : H.undefined());
        break;
      }
      double DI = toNumber(H, TI);
      int64_t I = static_cast<int64_t>(DI);
      VM.Profiler.recordElementLoad(Shape);
      if (DI != static_cast<double>(I) || I < 0 ||
          I >= H.elementsLength(Addr)) {
        pushTagged(H.undefined());
        break;
      }
      VM.Ctx.load(RC, H.elementAddress(Addr, static_cast<uint32_t>(I)));
      pushTagged(H.getElement(Addr, I));
      break;
    }
    case IrOpcode::GenericSetElemOp: {
      OptValue V = pop();
      OptValue Idx = pop();
      OptValue Obj = pop();
      Value T = materialize(V, TU);
      Value TI = materialize(Idx, TU);
      Value TO = materialize(Obj, TU);
      if (!TO.isPointer() || !H.isPlainObject(TO) ||
          !(TI.isSmi() || H.isHeapNumber(TI))) {
        pushTagged(TO);
        pushTagged(TI);
        pushTagged(T);
        return deopt(O.BcPc, true, DeoptReason::GenericReceiver);
      }
      uint64_t Addr = TO.asPointer();
      int64_t I = static_cast<int64_t>(toNumber(H, TI));
      if (I < 0) {
        pushTagged(TO);
        pushTagged(TI);
        pushTagged(T);
        return deopt(O.BcPc, true, DeoptReason::ElemBounds);
      }
      ShapeId Shape = H.shapeOf(Addr);
      VM.Ctx.alu(OO, 2);
      VM.Ctx.alu(RC, 15);
      bool Slow = H.setElement(Addr, I, T);
      if (Slow)
        VM.Ctx.alu(RC, 40);
      VM.Ctx.store(RC, H.elementAddress(Addr, static_cast<uint32_t>(I)));
      profileElementsStore(VM, RC, Shape, Addr, T, false);
      pushTagged(T);
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }

    //===------------------------------------------------------------------===//
    // Lengths
    //===------------------------------------------------------------------===//

    case IrOpcode::LoadElemsLengthOp: {
      OptValue Obj = pop();
      uint64_t Addr = Obj.V.asPointer();
      VM.Ctx.load(OO, Addr + layout::ElementsLengthPos * 8);
      int64_t Len = H.elementsLength(Addr);
      pushTagged(Value::fitsSmi(Len) ? Value::makeSmi(int32_t(Len))
                                     : H.number(double(Len)));
      break;
    }
    case IrOpcode::LoadStrLengthOp: {
      OptValue Obj = pop();
      VM.Ctx.load(OO, Obj.V.asPointer() + 8);
      pushTagged(Value::makeSmi(
          static_cast<int32_t>(H.stringLength(Obj.V.asPointer()))));
      break;
    }
    case IrOpcode::LoadNamedLengthOp: {
      OptValue Obj = pop();
      uint64_t Addr = Obj.V.asPointer();
      VM.Ctx.load(OO, H.slotAddress(Addr, O.B, nullptr));
      pushTagged(H.getSlot(Addr, O.B));
      break;
    }

    //===------------------------------------------------------------------===//
    // Arithmetic
    //===------------------------------------------------------------------===//

    case IrOpcode::SmiBinOpOp: {
      int64_t B = peek(0).V.asSmi();
      int64_t A = peek(1).V.asSmi();
      BinaryOp Op = static_cast<BinaryOp>(O.A);
      int64_t R = 0;
      bool Deopt = false;
      bool PushDouble = false;
      double RD = 0;
      switch (Op) {
      case BinaryOp::Add:
        R = A + B;
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 1);
        VM.Ctx.branch(MA, site(Cur), false);
        Deopt = !Value::fitsSmi(R);
        break;
      case BinaryOp::Sub:
        R = A - B;
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 1);
        VM.Ctx.branch(MA, site(Cur), false);
        Deopt = !Value::fitsSmi(R);
        break;
      case BinaryOp::Mul:
        R = A * B;
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 2);
        VM.Ctx.branch(MA, site(Cur), false);
        // -0 results also bail out of the SMI representation.
        Deopt = !Value::fitsSmi(R) || (R == 0 && (A < 0 || B < 0));
        break;
      case BinaryOp::Mod:
        VM.Ctx.alu(OO, 2);
        VM.Ctx.alu(MA, 2);
        if (B == 0 || (A < 0 && A % B == 0)) {
          Deopt = true;
        } else {
          R = A % B;
        }
        break;
      case BinaryOp::BitAnd:
        R = A & B;
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 1);
        break;
      case BinaryOp::BitOr:
        R = A | B;
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 1);
        break;
      case BinaryOp::BitXor:
        R = A ^ B;
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 1);
        break;
      case BinaryOp::Shl:
        R = static_cast<int32_t>(static_cast<uint32_t>(A)
                                 << (static_cast<uint32_t>(B) & 31));
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 2);
        break;
      case BinaryOp::Sar:
        R = static_cast<int32_t>(A) >> (static_cast<uint32_t>(B) & 31);
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 2);
        break;
      case BinaryOp::Shr: {
        uint32_t U = static_cast<uint32_t>(static_cast<int32_t>(A)) >>
                     (static_cast<uint32_t>(B) & 31);
        VM.Ctx.alu(OO, 1);
        VM.Ctx.alu(TU, 2);
        VM.Ctx.branch(MA, site(Cur), U > uint32_t(INT32_MAX));
        if (U > uint32_t(INT32_MAX)) {
          PushDouble = true;
          RD = static_cast<double>(U);
        } else {
          R = static_cast<int32_t>(U);
        }
        break;
      }
      default:
        CCJS_UNREACHABLE("non-arithmetic op in SmiBinOp");
      }
      if (Deopt) {
        // Record the reason: operands were SMIs but the result left the
        // SMI domain, so the interpreter's operand-based feedback would
        // never learn. Force the double path for the next compile.
        FI.Feedback[O.Site].Hint = NumberHint::Double;
        return deopt(O.BcPc, true, DeoptReason::SmiOverflow);
      }
      pop();
      pop();
      if (PushDouble)
        push(OptValue::unboxed(RD));
      else
        pushTagged(Value::makeSmi(static_cast<int32_t>(R)));
      break;
    }
    case IrOpcode::SmiCompareOp: {
      OptValue B = pop();
      OptValue A = pop();
      int32_t X = A.V.asSmi(), Y = B.V.asSmi();
      VM.Ctx.alu(OO, 1);
      bool R = false;
      switch (static_cast<BinaryOp>(O.A)) {
      case BinaryOp::Lt:
        R = X < Y;
        break;
      case BinaryOp::Le:
        R = X <= Y;
        break;
      case BinaryOp::Gt:
        R = X > Y;
        break;
      case BinaryOp::Ge:
        R = X >= Y;
        break;
      case BinaryOp::Eq:
      case BinaryOp::StrictEq:
        R = X == Y;
        break;
      case BinaryOp::Ne:
      case BinaryOp::StrictNe:
        R = X != Y;
        break;
      default:
        CCJS_UNREACHABLE("non-compare op in SmiCompare");
      }
      pushTagged(H.boolean(R));
      break;
    }
    case IrOpcode::DoubleBinOpOp: {
      OptValue B = pop();
      OptValue A = pop();
      double X = untagNumber(A, TU);
      double Y = untagNumber(B, TU);
      double R = 0;
      switch (static_cast<BinaryOp>(O.A)) {
      case BinaryOp::Add:
        VM.Ctx.alu(OO, 1);
        R = X + Y;
        break;
      case BinaryOp::Sub:
        VM.Ctx.alu(OO, 1);
        R = X - Y;
        break;
      case BinaryOp::Mul:
        VM.Ctx.alu(OO, 1);
        R = X * Y;
        break;
      case BinaryOp::Div:
        VM.Ctx.alu(OO, 10);
        R = X / Y;
        break;
      case BinaryOp::Mod:
        VM.Ctx.alu(OO, 14);
        R = std::fmod(X, Y);
        break;
      case BinaryOp::BitAnd:
      case BinaryOp::BitOr:
      case BinaryOp::BitXor:
      case BinaryOp::Shl:
      case BinaryOp::Sar: {
        VM.Ctx.alu(OO, 3);
        int32_t XI = toInt32(X), YI = toInt32(Y);
        int32_t RI = 0;
        switch (static_cast<BinaryOp>(O.A)) {
        case BinaryOp::BitAnd:
          RI = XI & YI;
          break;
        case BinaryOp::BitOr:
          RI = XI | YI;
          break;
        case BinaryOp::BitXor:
          RI = XI ^ YI;
          break;
        case BinaryOp::Shl:
          RI = static_cast<int32_t>(static_cast<uint32_t>(XI)
                                    << (static_cast<uint32_t>(YI) & 31));
          break;
        default:
          RI = XI >> (static_cast<uint32_t>(YI) & 31);
          break;
        }
        pushTagged(Value::makeSmi(RI));
        goto DoubleBinDone;
      }
      case BinaryOp::Shr: {
        VM.Ctx.alu(OO, 3);
        uint32_t U = static_cast<uint32_t>(toInt32(X)) >>
                     (static_cast<uint32_t>(toInt32(Y)) & 31);
        push(OptValue::unboxed(static_cast<double>(U)));
        goto DoubleBinDone;
      }
      default:
        CCJS_UNREACHABLE("non-arithmetic op in DoubleBinOp");
      }
      push(OptValue::unboxed(R));
    DoubleBinDone:
      break;
    }
    case IrOpcode::DoubleCompareOp: {
      OptValue B = pop();
      OptValue A = pop();
      double X = untagNumber(A, TU);
      double Y = untagNumber(B, TU);
      VM.Ctx.alu(OO, 1);
      bool R = false;
      switch (static_cast<BinaryOp>(O.A)) {
      case BinaryOp::Lt:
        R = X < Y;
        break;
      case BinaryOp::Le:
        R = X <= Y;
        break;
      case BinaryOp::Gt:
        R = X > Y;
        break;
      case BinaryOp::Ge:
        R = X >= Y;
        break;
      case BinaryOp::Eq:
      case BinaryOp::StrictEq:
        R = X == Y;
        break;
      case BinaryOp::Ne:
      case BinaryOp::StrictNe:
        R = X != Y;
        break;
      default:
        CCJS_UNREACHABLE("non-compare op in DoubleCompare");
      }
      pushTagged(H.boolean(R));
      break;
    }
    case IrOpcode::StringAddOp: {
      OptValue B = pop();
      OptValue A = pop();
      Value TA = materialize(A, TU);
      Value TB = materialize(B, TU);
      uint32_t La = H.isString(TA) ? H.stringLength(TA.asPointer()) : 8;
      uint32_t Lb = H.isString(TB) ? H.stringLength(TB.asPointer()) : 8;
      VM.Ctx.alu(OO, 2);
      VM.Ctx.alu(RC, 10 + (La + Lb) / 4);
      pushTagged(genericBinary(H, BinaryOp::Add, TA, TB));
      break;
    }
    case IrOpcode::GenericBinOpOp: {
      OptValue B = pop();
      OptValue A = pop();
      Value TA = materialize(A, TU);
      Value TB = materialize(B, TU);
      VM.Ctx.alu(OO, 2);
      VM.Ctx.alu(RC, 8);
      pushTagged(genericBinary(H, static_cast<BinaryOp>(O.A), TA, TB));
      break;
    }

    //===------------------------------------------------------------------===//
    // Unary
    //===------------------------------------------------------------------===//

    case IrOpcode::SmiNegOp: {
      int32_t A = peek().V.asSmi();
      VM.Ctx.alu(OO, 1);
      VM.Ctx.alu(MA, 1);
      if (A == 0 || A == INT32_MIN) {
        // -0 / overflow leave the SMI domain.
        FI.Feedback[O.Site].Hint = NumberHint::Double;
        return deopt(O.BcPc, true, DeoptReason::SmiOverflow);
      }
      pop();
      pushTagged(Value::makeSmi(-A));
      break;
    }
    case IrOpcode::DoubleNegOp: {
      OptValue A = pop();
      double X = untagNumber(A, TU);
      VM.Ctx.alu(OO, 1);
      push(OptValue::unboxed(-X));
      break;
    }
    case IrOpcode::NotOp: {
      OptValue A = pop();
      VM.Ctx.alu(OO, 2);
      pushTagged(H.boolean(!truthy(A)));
      break;
    }
    case IrOpcode::BitNotOp: {
      OptValue A = pop();
      VM.Ctx.alu(OO, 2);
      pushTagged(Value::makeSmi(~A.V.asSmi()));
      break;
    }
    case IrOpcode::GenericUnaOpOp: {
      OptValue A = pop();
      Value T = materialize(A, TU);
      VM.Ctx.alu(OO, 1);
      VM.Ctx.alu(RC, 6);
      pushTagged(genericUnary(H, static_cast<UnaryOp>(O.A), T));
      break;
    }

    //===------------------------------------------------------------------===//
    // Control flow
    //===------------------------------------------------------------------===//

    case IrOpcode::JumpOp:
      VM.Ctx.alu(OO, 1);
      PC = static_cast<uint32_t>(O.A);
      break;
    case IrOpcode::JumpLoopOp:
      VM.Ctx.branch(OO, site(Cur), true);
      PC = static_cast<uint32_t>(O.A);
      FromBackedge = true;
      break;
    case IrOpcode::JumpIfFalseOp: {
      OptValue Cond = pop();
      bool T = truthy(Cond);
      VM.Ctx.alu(OO, 1);
      VM.Ctx.branch(OO, site(Cur), !T);
      if (!T)
        PC = static_cast<uint32_t>(O.A);
      break;
    }
    case IrOpcode::JumpIfTrueOp: {
      OptValue Cond = pop();
      bool T = truthy(Cond);
      VM.Ctx.alu(OO, 1);
      VM.Ctx.branch(OO, site(Cur), T);
      if (T)
        PC = static_cast<uint32_t>(O.A);
      break;
    }

    //===------------------------------------------------------------------===//
    // Calls
    //===------------------------------------------------------------------===//

    case IrOpcode::CallDirectOp: {
      uint32_t Argc = static_cast<uint32_t>(O.A);
      const Value *Args = popArgs(Argc);
      VM.Ctx.alu(OO, 3); // Cell check + frame setup + call.
      pushTagged(invoke(O.B, H.undefined(), Args, Argc));
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::CallBuiltinInlineOp: {
      uint32_t Argc = static_cast<uint32_t>(O.A);
      const Value *Args = popArgs(Argc);
      if (O.Flags & IrFlagInObject)
        pop(); // Method-style inline call: drop the receiver (e.g. Math).
      BuiltinId Id = builtinFromIndex(O.B);
      double R = 0;
      switch (Id) {
      case BuiltinId::MathFloor:
        VM.Ctx.alu(OO, 2);
        R = std::floor(argOrNaN(Args, Argc, 0));
        break;
      case BuiltinId::MathCeil:
        VM.Ctx.alu(OO, 2);
        R = std::ceil(argOrNaN(Args, Argc, 0));
        break;
      case BuiltinId::MathRound:
        VM.Ctx.alu(OO, 3);
        R = std::floor(argOrNaN(Args, Argc, 0) + 0.5);
        break;
      case BuiltinId::MathSqrt:
        VM.Ctx.alu(OO, 5);
        R = std::sqrt(argOrNaN(Args, Argc, 0));
        break;
      case BuiltinId::MathAbs:
        VM.Ctx.alu(OO, 2);
        R = std::fabs(argOrNaN(Args, Argc, 0));
        break;
      case BuiltinId::MathMin:
        VM.Ctx.alu(OO, 2);
        R = std::fmin(argOrNaN(Args, Argc, 0), argOrNaN(Args, Argc, 1));
        break;
      case BuiltinId::MathMax:
        VM.Ctx.alu(OO, 2);
        R = std::fmax(argOrNaN(Args, Argc, 0), argOrNaN(Args, Argc, 1));
        break;
      case BuiltinId::MathSin:
        VM.Ctx.alu(OO, 15);
        R = std::sin(argOrNaN(Args, Argc, 0));
        break;
      case BuiltinId::MathCos:
        VM.Ctx.alu(OO, 15);
        R = std::cos(argOrNaN(Args, Argc, 0));
        break;
      case BuiltinId::MathPow:
        VM.Ctx.alu(OO, 20);
        R = std::pow(argOrNaN(Args, Argc, 0), argOrNaN(Args, Argc, 1));
        break;
      case BuiltinId::MathExp:
        VM.Ctx.alu(OO, 15);
        R = std::exp(argOrNaN(Args, Argc, 0));
        break;
      case BuiltinId::MathLog:
        VM.Ctx.alu(OO, 15);
        R = std::log(argOrNaN(Args, Argc, 0));
        break;
      case BuiltinId::MathRandom:
        VM.Ctx.alu(OO, 8);
        R = VM.nextRandom();
        break;
      default:
        CCJS_UNREACHABLE("non-inlinable builtin");
      }
      push(OptValue::unboxed(R));
      break;
    }
    case IrOpcode::CallBuiltinMethodOp: {
      uint32_t Argc = static_cast<uint32_t>(O.A);
      const Value *Args = popArgs(Argc);
      OptValue Recv = pop();
      Value TR = materialize(Recv, TU);
      BuiltinId Id = builtinFromIndex(O.B);
      bool NeedsString =
          Id >= BuiltinId::StrCharCodeAt && Id <= BuiltinId::StrToLowerCase;
      bool NeedsObject = Id >= BuiltinId::ArrPush && Id <= BuiltinId::ArrIndexOf;
      if ((NeedsString && !(TR.isPointer() && H.isString(TR))) ||
          (NeedsObject && !(TR.isPointer() && H.isPlainObject(TR)))) {
        pushTagged(TR);
        for (uint32_t I = 0; I < Argc; ++I)
          pushTagged(Args[I]);
        return deopt(O.BcPc, true, DeoptReason::BuiltinReceiver);
      }
      VM.Ctx.alu(OO, 2);
      pushTagged(VM.CallBuiltinFn(VM, O.B, TR, Args, Argc));
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::CallMethodDirectOp: {
      uint32_t Argc = static_cast<uint32_t>(O.A);
      const Value *Args = popArgs(Argc);
      OptValue Recv = pop();
      VM.Ctx.alu(OO, 2);
      pushTagged(invoke(O.B, Recv.V, Args, Argc));
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::CallValueOp: {
      uint32_t Argc = static_cast<uint32_t>(O.A);
      const Value *Args = popArgs(Argc);
      OptValue Callee = pop();
      uint64_t Addr = Callee.V.asPointer();
      VM.Ctx.load(OO, Addr + 8);
      VM.Ctx.alu(OO, 2);
      pushTagged(invoke(H.functionIndex(Addr), H.undefined(), Args, Argc));
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::GenericCallMethodOp: {
      uint32_t Argc = static_cast<uint32_t>(O.A);
      const Value *Args = popArgs(Argc);
      OptValue Recv = pop();
      Value TR = materialize(Recv, TU);
      VM.Ctx.alu(OO, 2);
      VM.Ctx.alu(RC, 15);
      pushTagged(VM.GenericCallMethod(VM, TR, O.B, Args, Argc));
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::NewObjectOp: {
      uint32_t Argc = static_cast<uint32_t>(O.A);
      const Value *Args = popArgs(Argc);
      ShapeId Root = VM.Shapes.rootForConstructor(O.B);
      Value Obj = H.allocObject(Root, H.constructorCapacityHint(O.B));
      uint64_t Addr = Obj.asPointer();
      uint32_t Lines = layout::linesForSlots(H.capacityOf(Addr));
      VM.Ctx.alu(OO, 8);
      for (uint32_t L = 0; L < Lines; ++L)
        VM.Ctx.store(OO, Addr + L * layout::CacheLineBytes);
      VM.Ctx.alu(OO, 2);
      Value Result = invoke(O.B, Obj, Args, Argc);
      H.observeConstructed(O.B, VM.Shapes.get(H.shapeOf(Addr)).NumSlots);
      pushTagged(Result.isPointer() && H.isPlainObject(Result) ? Result
                                                               : Obj);
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::NewArrayOp: {
      uint32_t Argc = static_cast<uint32_t>(O.A);
      const Value *Args = popArgs(Argc);
      uint32_t N = Argc >= 1 && Args[0].isSmi() && Args[0].asSmi() >= 0
                       ? static_cast<uint32_t>(Args[0].asSmi())
                       : 0;
      VM.Ctx.alu(OO, 10 + N / 16);
      uint64_t Site = (uint64_t(FuncIndex) << 32) | O.BcPc;
      Value Arr = H.allocArray(N, VM.Shapes.rootForArraySite(Site));
      VM.Ctx.store(OO, Arr.asPointer());
      pushTagged(Arr);
      break;
    }

    //===------------------------------------------------------------------===//
    // Literals
    //===------------------------------------------------------------------===//

    case IrOpcode::CreateObjectOp: {
      VM.Ctx.alu(OO, 6);
      Value Obj = H.allocObject(
          VM.Shapes.plainRoot(),
          static_cast<uint32_t>(std::max<int32_t>(O.A, 0)));
      VM.Ctx.store(OO, Obj.asPointer());
      pushTagged(Obj);
      break;
    }
    case IrOpcode::CreateArrayOp: {
      VM.Ctx.alu(OO, 8 + static_cast<uint32_t>(O.A) / 16);
      uint64_t Site = (uint64_t(FuncIndex) << 32) | O.BcPc;
      Value Arr = H.allocArray(static_cast<uint32_t>(O.A),
                               VM.Shapes.rootForArraySite(Site));
      VM.Ctx.store(OO, Arr.asPointer());
      pushTagged(Arr);
      break;
    }
    case IrOpcode::AddPropTransitionOp: {
      OptValue V = pop();
      Value T = materialize(V, TU);
      OptValue &Obj = peek();
      uint64_t Addr = Obj.V.asPointer();
      if (H.shapeOf(Addr) != O.Shape)
        return deopt(O.BcPc, true, DeoptReason::ShapeMismatch);
      uint32_t Slot = H.addProperty(Addr, VM.Shapes.get(O.Shape2).AddedName,
                                    T);
      VM.Ctx.alu(OO, 3);
      VM.Ctx.store(OO, Addr);
      bool InObject = false;
      uint64_t SlotAddr = H.slotAddress(Addr, Slot, &InObject);
      VM.Ctx.store(OO, SlotAddr);
      if (!InObject)
        VM.Ctx.alu(RC, 40);
      if (O.Flags & IrFlagCcStore) {
        profilePropertyStore(VM, OO, O.Shape2, Slot, T, InObject);
      } else {
        VM.Profiler.recordPropertyStore(O.Shape2, Slot,
                                        profilerClassOf(VM, T));
      }
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }
    case IrOpcode::StElemInitOp: {
      OptValue V = pop();
      Value T = materialize(V, TU);
      OptValue &Arr = peek();
      uint64_t Addr = Arr.V.asPointer();
      H.setElement(Addr, O.A, T);
      VM.Ctx.store(OO, H.elementAddress(Addr, static_cast<uint32_t>(O.A)));
      ShapeId ArrShape = H.shapeOf(Addr);
      VM.Profiler.recordElementStore(ArrShape, profilerClassOf(VM, T));
      if ((O.Flags & IrFlagCcStore) && VM.Config.ClassCacheEnabled) {
        const Shape &S = VM.Shapes.get(ArrShape);
        if (S.ClassId < UntrackedClassId) {
          VM.Ctx.load(OO, Addr);
          emitMovClassId(VM, OO, T);
          runClassCacheRequest(VM, OO, S.ClassId, 0,
                               layout::ElementsPointerPos,
                               H.classIdOfValue(T));
        }
      }
      if (!FI.OptValid)
        return deopt(O.BcNext, false, DeoptReason::CodeInvalidated);
      break;
    }

    case IrOpcode::ReturnOp: {
      OptValue V = pop();
      VM.Ctx.alu(OO, 2);
      return materialize(V, TU);
    }
    case IrOpcode::DeoptOp:
      return deopt(O.BcPc, true, DeoptReason::UnsupportedOp);
    }
  }
}

Value ccjs::runOptimized(VMState &VM, uint32_t FuncIndex, Value ThisV,
                         const Value *Args, uint32_t Argc) {
  FunctionInfo &FI = VM.Funcs[FuncIndex];
  assert(FI.Opt && FI.OptValid && "runOptimized without valid code");
  if (++VM.CallDepth > VMState::MaxCallDepth) {
    VM.halt("stack overflow");
    --VM.CallDepth;
    return VM.Heap_.undefined();
  }
  OptExecutor Ex(VM, FuncIndex, ThisV);
  Value R = Ex.run(Args, Argc);
  --VM.CallDepth;
  return R;
}
