//===- jit/Executor.cpp - OptIR execution with deoptimization -------------===//
///
/// Runs optimized code. Every op performs its semantics against the heap
/// and expands into the machine events its compiled form would execute,
/// categorized per the paper's Figure 1 (Checks / Tags-Untags / Math
/// Assumptions / Other Optimized). Deoptimization materializes the frame
/// and resumes the interpreter; stores that trigger a Class Cache
/// exception complete first and deoptimize *after* (no recovery needed,
/// section 4.2.2).
///
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "jit/Bbv.h"
#include "runtime/Layout.h"
#include "runtime/Operations.h"
#include "support/Assert.h"
#include "support/Dispatch.h"
#include "vm/Builtins.h"
#include "vm/ProfileHooks.h"

#include <cmath>
#include <cstdlib>
#include <memory>

using namespace ccjs;

static constexpr InstrCategory CH = InstrCategory::Checks;
static constexpr InstrCategory TU = InstrCategory::TagsUntags;
static constexpr InstrCategory MA = InstrCategory::MathAssumptions;
static constexpr InstrCategory OO = InstrCategory::OtherOptimized;
static constexpr InstrCategory RC = InstrCategory::RestOfCode;

namespace {

/// A stack slot: a tagged value or an unboxed double kept in a register.
struct OptValue {
  bool Unboxed = false;
  Value V;
  double D = 0;

  static OptValue tagged(Value V) {
    OptValue O;
    O.V = V;
    return O;
  }
  static OptValue unboxed(double D) {
    OptValue O;
    O.Unboxed = true;
    O.D = D;
    return O;
  }
};

/// Reusable operand-stack and locals storage for one executor frame.
/// Optimized calls are frequent and short-lived; recycling the vectors'
/// capacity across invocations removes two heap allocations per call. A
/// free-list (rather than one static buffer) keeps nested invocations —
/// optimized code calling back into optimized code — on distinct buffers,
/// and thread_local keeps bench-harness jobs independent. Host-only
/// storage reuse: the simulated events are untouched.
struct FrameBufs {
  std::vector<OptValue> St, Loc;
};

class FrameBufPool {
public:
  std::unique_ptr<FrameBufs> acquire() {
    if (Free.empty())
      return std::make_unique<FrameBufs>();
    std::unique_ptr<FrameBufs> B = std::move(Free.back());
    Free.pop_back();
    return B;
  }
  void release(std::unique_ptr<FrameBufs> B) {
    B->St.clear();
    B->Loc.clear();
    Free.push_back(std::move(B));
  }

private:
  std::vector<std::unique_ptr<FrameBufs>> Free;
};

FrameBufPool &frameBufPool() {
  static thread_local FrameBufPool Pool;
  return Pool;
}

class OptExecutor {
public:
  OptExecutor(VMState &VM, uint32_t FuncIndex, Value ThisV)
      : VM(VM), H(VM.Heap_), FI(VM.Funcs[FuncIndex]), C(*FI.Opt),
        FuncIndex(FuncIndex), ThisV(ThisV), Bufs(frameBufPool().acquire()),
        St(Bufs->St), Loc(Bufs->Loc) {}
  ~OptExecutor() {
    // Host-side dispatch accounting drains on frame exit (normal return
    // and deopt paths alike); Engine::resetStats zeroes the VM totals.
    VM.HostDispatches += Dispatches;
    VM.HostFusedSaved += FusedSaved;
    frameBufPool().release(std::move(Bufs));
  }

  Value run(const Value *Args, uint32_t Argc);

private:
  /// The main loop, stamped out twice from jit/ExecutorLoop.inc: a
  /// portable switch (the differential-test oracle) and a computed-goto
  /// threaded variant. Identical handler text, identical simulated events.
  Value runSwitch();
#if CCJS_THREADED_DISPATCH
  Value runThreaded();
#endif
  /// Hoisted movClassIDArray loads for a loop header reached by entry or
  /// fall-through (not via its own back edge).
  void runLoopPreloads(uint32_t Cur);

  /// BBV backend: ground-truth entry tag of one live slot, mirroring the
  /// check handlers' runtime predicates exactly (an elided check is one
  /// the full check would provably have passed).
  uint32_t bbvTag(const OptValue &V) const {
    if (V.Unboxed)
      return BbvInfo::TagHeapNum;
    if (V.V.isSmi())
      return BbvInfo::TagSmi;
    if (V.V.isPointer())
      return BbvInfo::TagShapeBase + H.shapeOfValue(V.V);
    return BbvInfo::TagOtherHeap;
  }

  /// Entered a registered BBV block: project the relevant locals' entry
  /// tags from the live frame and install the matching version's elision
  /// mask (materializing the version on first encounter).
  void bbvEnterBlock(uint32_t Cur) {
    const BbvInfo::Block &B = C.Bbv->Blocks[C.Bbv->BlockIndexAt[Cur]];
    TagScratch.clear();
    for (uint32_t L : B.RelevantLocals)
      TagScratch.push_back(L < Loc.size() ? bbvTag(Loc[L])
                                          : BbvInfo::TagUnknown);
    BbvElide = bbvSelectVersion(VM, C, C.Bbv->BlockIndexAt[Cur], TagScratch);
  }

  OptValue pop() {
    OptValue V = St.back();
    St.pop_back();
    return V;
  }
  OptValue &peek(unsigned Depth = 0) { return St[St.size() - 1 - Depth]; }
  void push(OptValue V) { St.push_back(V); }
  void pushTagged(Value V) { St.push_back(OptValue::tagged(V)); }

  /// Boxes an unboxed double, charging the tag events.
  Value materialize(OptValue &V, InstrCategory Cat) {
    if (!V.Unboxed)
      return V.V;
    Value Tagged = H.number(V.D);
    VM.Ctx.alu(Cat, Tagged.isSmi() ? 1 : 4);
    if (!Tagged.isSmi())
      VM.Ctx.store(Cat, Tagged.asPointer() + 8);
    V.Unboxed = false;
    V.V = Tagged;
    return Tagged;
  }

  /// Numeric view of a (known-number) value, with untag events.
  double untagNumber(const OptValue &V, InstrCategory Cat) {
    if (V.Unboxed)
      return V.D;
    if (V.V.isSmi()) {
      VM.Ctx.alu(Cat, 1);
      return V.V.asSmi();
    }
    VM.Ctx.load(Cat, V.V.asPointer() + 8);
    return H.heapNumberValue(V.V.asPointer());
  }

  bool truthy(const OptValue &V) {
    if (V.Unboxed)
      return V.D != 0 && !std::isnan(V.D);
    return toBoolean(H, V.V);
  }

  uint32_t site(uint32_t Ir) const { return (FuncIndex << 16) ^ Ir ^ 0x40000000u; }

  /// Deoptimizes: materializes the frame and resumes the interpreter at
  /// bytecode \p ResumeBc. \p Failure marks a broken speculation (stale
  /// feedback), which invalidates this code. \p Reason records why for
  /// observers and metrics.
  Value deopt(uint32_t ResumeBc, bool Failure, DeoptReason Reason) {
    DeoptEvent Ev{FuncIndex, CurOpIndex, ResumeBc, Failure, FI.DeoptCount,
                  Reason};
    if (Failure) {
      FI.OptValid = false;
      // Let the baseline tier refresh the feedback before re-optimizing.
      FI.InvocationCount = 0;
      if (++FI.DeoptCount >= VM.Config.MaxDeoptsPerFunction)
        FI.OptDisabled = true;
    }
    if (VM.Metrics) {
      ++VM.Metrics->counter(Failure ? "deopts_failure" : "deopts_planned");
      ++VM.Metrics->counter(std::string("deopts.") + deoptReasonName(Reason));
    }
    // Bookkeeping first, then notify: observers (tracer, auditor, test
    // captures) see the post-event state the invariants describe.
    VM.notifyDeopt(Ev);
    VM.Ctx.alu(RC, 60); // Frame reconstruction in the deoptimizer.
    std::vector<Value> Locals(Loc.size());
    for (size_t I = 0; I < Loc.size(); ++I)
      Locals[I] = materialize(Loc[I], RC);
    std::vector<Value> Stack(St.size());
    for (size_t I = 0; I < St.size(); ++I)
      Stack[I] = materialize(St[I], RC);
    return VM.InterpretFrom(VM, FuncIndex, ThisV, std::move(Locals),
                            std::move(Stack), ResumeBc);
  }

  Value invoke(uint32_t Target, Value This, const Value *Args,
               uint32_t Argc) {
    if (isBuiltinIndex(Target))
      return VM.CallBuiltinFn(VM, Target, This, Args, Argc);
    return VM.Invoke(VM, Target, This, Args, Argc);
  }

  /// Pops argc arguments (materializing unboxed doubles) into ArgBuf.
  const Value *popArgs(uint32_t Argc) {
    assert(Argc <= MaxArgs && "too many call arguments");
    for (uint32_t I = 0; I < Argc; ++I) {
      OptValue V = pop();
      ArgBuf[Argc - 1 - I] = materialize(V, TU);
    }
    return ArgBuf;
  }

  double argOrNaN(const Value *Args, uint32_t Argc, uint32_t I) {
    if (I >= Argc)
      return std::nan("");
    Value V = Args[I];
    if (V.isSmi()) {
      VM.Ctx.alu(TU, 1);
      return V.asSmi();
    }
    if (H.isHeapNumber(V)) {
      VM.Ctx.load(TU, V.asPointer() + 8);
      return H.heapNumberValue(V.asPointer());
    }
    return toNumber(H, V);
  }

  VMState &VM;
  Heap &H;
  FunctionInfo &FI;
  OptCode &C;
  uint32_t FuncIndex;
  Value ThisV;
  std::unique_ptr<FrameBufs> Bufs; // Pooled; must precede the St/Loc refs.
  std::vector<OptValue> &St;
  std::vector<OptValue> &Loc;
  uint32_t CurOpIndex = 0;

  // BBV backend state. BbvBlockAt is the dense leader test (null when the
  // BBV backend is off or this function has no registered block); the
  // prologue consults one byte per dispatch. BbvElide is the current
  // version's elision mask — bits outside the block that installed it are
  // zero, so a stale mask carried across an unregistered block boundary
  // can never elide anything. The mask's heap buffer is owned by a
  // BbvInfo::Version whose storage is stable across Versions growth.
  const uint8_t *BbvBlockAt = nullptr;
  const uint8_t *BbvElide = nullptr;
  std::vector<uint32_t> TagScratch;

  // Host-side observation (see CCJS_EXEC_OBSERVE in ExecutorLoop.inc):
  // dispatches performed, dispatches a superinstruction absorbed, and the
  // previous opcode for the adjacency histogram (sentinel = none yet).
  uint64_t Dispatches = 0;
  uint64_t FusedSaved = 0;
  unsigned PrevOp = NumIrOpcodes;

  static constexpr uint32_t MaxArgs = 16;
  Value ArgBuf[MaxArgs];
};

} // namespace

void OptExecutor::runLoopPreloads(uint32_t Cur) {
  // Hoisted movClassIDArray loads fire on loop entry (not per back edge).
  auto It = C.LoopPreloads.find(Cur);
  if (It == C.LoopPreloads.end())
    return;
  for (uint32_t Key : It->second) {
    Value V;
    if (Key & (1u << 31)) {
      uint32_t G = Key & ~(1u << 31);
      VM.Ctx.load(OO, VM.globalAddr(G));
      V = VM.readGlobal(G);
    } else {
      OptValue &LV = Loc[Key];
      if (LV.Unboxed)
        continue;
      V = LV.V;
    }
    if (V.isPointer())
      VM.Ctx.load(OO, V.asPointer()); // movClassIDArray header load.
  }
}

Value OptExecutor::run(const Value *Args, uint32_t Argc) {
  const BytecodeFunction &F = *FI.Fn;
  Loc.assign(F.NumLocals, OptValue::tagged(H.undefined()));
  for (uint32_t I = 0; I < Argc && I < F.NumParams; ++I)
    Loc[I] = OptValue::tagged(Args[I]);
  St.reserve(C.MaxStack > 16 ? C.MaxStack : 16);
  BbvBlockAt = C.Bbv ? C.Bbv->BlockAt.data() : nullptr;

#if CCJS_THREADED_DISPATCH
  if (VM.Config.Dispatch == DispatchMode::Threaded)
    return runThreaded();
#endif
  // Fused code runs on the switch loop: superinstruction handlers exist
  // in both expansions (the X-macro keeps the threaded label table in
  // sync), but fusion only rewrites OptIR when Dispatch == Fused.
  return runSwitch();
}

Value OptExecutor::runSwitch() {
#define CCJS_DISPATCH_THREADED 0
#include "jit/ExecutorLoop.inc"
#undef CCJS_DISPATCH_THREADED
}

#if CCJS_THREADED_DISPATCH
Value OptExecutor::runThreaded() {
#define CCJS_DISPATCH_THREADED 1
#include "jit/ExecutorLoop.inc"
#undef CCJS_DISPATCH_THREADED
}
#endif

Value ccjs::runOptimized(VMState &VM, uint32_t FuncIndex, Value ThisV,
                         const Value *Args, uint32_t Argc) {
  FunctionInfo &FI = VM.Funcs[FuncIndex];
  assert(FI.Opt && FI.OptValid && "runOptimized without valid code");
  if (++VM.CallDepth > VMState::MaxCallDepth) {
    VM.halt("stack overflow");
    --VM.CallDepth;
    return VM.Heap_.undefined();
  }
  // Budget safepoint (service mode), mirroring interpretCall: the depth
  // budget must trip no matter which tier the recursion runs in.
  if (VM.BudgetArmed && VM.checkBudgetAt(BudgetSafepoint::CallEntry)) {
    --VM.CallDepth;
    return VM.Heap_.undefined();
  }
  OptExecutor Ex(VM, FuncIndex, ThisV);
  Value R = Ex.run(Args, Argc);
  --VM.CallDepth;
  return R;
}
