//===- jit/Bbv.h - Lazy basic-block versioning backend ----------*- C++ -*-===//
///
/// \file
/// Lazy basic-block versioning (Chevalier-Boisvert & Feeley, ECOOP 2015)
/// as an alternative check-removal backend: instead of consuming
/// monomorphic profiles at compile time (the Class Cache mechanism),
/// blocks are specialized *at execution time* on the type context that
/// actually arrives. bbvPrepare partitions a function's OptIR into basic
/// blocks at compile time; the executor calls bbvSelectVersion at each
/// registered block entry, which lazily materializes (or reuses) a
/// version keyed on the entry tags of the block's relevant locals and
/// returns that version's check-elision mask.
///
/// Version cap: at most EngineConfig::BbvMaxVersions per block; past the
/// cap the block falls back to a shared generic version that elides
/// nothing. Elided checks never re-validate — soundness comes from the
/// entry tags being ground truth (read from the live frame, not a
/// profile), so a BBV-elided check can never deopt where the full check
/// would have; mis-speculation is impossible by construction and the
/// existing DeoptReason sites cover every remaining check.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_JIT_BBV_H
#define CCJS_JIT_BBV_H

#include "jit/OptIr.h"

#include <cstdint>
#include <vector>

namespace ccjs {

struct VMState;

/// Compile-time half: partitions \p C into blocks, records per-block
/// elidable checks (generation-validated Aux annotations) and their
/// relevant locals, and fills C.Bbv. Leaves C.Bbv null when no block has
/// an elidable check (the executor then skips all BBV work).
void bbvPrepare(OptCode &C, VMState &VM);

/// Execution-time half: returns the elision mask (Ops-sized, indexed by
/// op index) of the version of block \p BlockIdx matching \p Tags — the
/// entry tags of the block's RelevantLocals, in order, as projected by
/// the executor from the live frame. Materializes the version on first
/// encounter (charging the specialization cost); returns nullptr for the
/// generic fallback once the block's version cap is hit.
const uint8_t *bbvSelectVersion(VMState &VM, OptCode &C, uint32_t BlockIdx,
                                const std::vector<uint32_t> &Tags);

} // namespace ccjs

#endif // CCJS_JIT_BBV_H
