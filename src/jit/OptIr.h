//===- jit/OptIr.h - Optimizing-tier IR -------------------------*- C++ -*-===//
///
/// \file
/// OptIR: the check-explicit linear IR of the optimizing tier (the
/// Crankshaft analogue). It keeps the bytecode's stack discipline so every
/// op maps back to a bytecode position for deoptimization, but all type
/// checks (Check Map / Check SMI / Check Number), tag/untag operations and
/// math-assumption guards are explicit ops the optimizer can reason about
/// and — with the Class Cache — remove.
///
/// Deopt contract: an op either deoptimizes with the operand stack
/// untouched (resuming the interpreter at BcPc) or completes its stack
/// effect; stores that complete but invalidate the running code resume at
/// BcNext.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_JIT_OPTIR_H
#define CCJS_JIT_OPTIR_H

#include "hw/EventBatch.h"
#include "runtime/Shape.h"
#include "vm/Feedback.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace ccjs {

// The OptIR opcode list as an X-macro: the enum and the executor's
// computed-goto handler table both expand from this single list, so they
// cannot fall out of order with each other.
//
// Operand meaning (abridged; see the executor for exact semantics):
// - Checks peek at Depth, have no stack effect and deopt on failure.
// - LoadPropOp: B = slot. PolyLoadPropOp: Aux = poly table.
//   Generic{Get,Set}PropOp: B = name. {Transition,}StorePropOp: B = slot,
//   Shape = holder (Shape2 = post-transition shape).
// - StoreElemOp: A = receiver local or -1.
// - Arithmetic / unary: A = BinaryOp / UnaryOp.
// - Control flow: A = target ir index.
// - Calls: A = argc; B = callee function index / builtin id / name.
// - CreateObjectOp: A = capacity hint. CreateArrayOp: A = initial length.
//   AddPropTransitionOp: B = slot, Shape = old, Shape2 = new;
//   [obj, v] -> [obj]. StElemInitOp: A = index; [arr, v] -> [arr].
// - DeoptOp: unconditional bailout (unsupported situation).
#define CCJS_FOR_EACH_IR_OPCODE(X)                                             \
  X(Const)                                                                     \
  X(LdaSmiOp)                                                                  \
  X(LdaUndef)                                                                  \
  X(LdaNull)                                                                   \
  X(LdaTrue)                                                                   \
  X(LdaFalse)                                                                  \
  X(LdaThisOp)                                                                 \
  X(LdLocalOp)                                                                 \
  X(StLocalOp)                                                                 \
  X(LdGlobalOp)                                                                \
  X(StGlobalOp)                                                                \
  X(PopOp)                                                                     \
  X(DupOp)                                                                     \
  X(CheckMapOp)                                                                \
  X(CheckSmiOp)                                                                \
  X(CheckNumberOp)                                                             \
  X(LoadPropOp)                                                                \
  X(PolyLoadPropOp)                                                            \
  X(GenericGetPropOp)                                                          \
  X(StorePropOp)                                                               \
  X(TransitionStorePropOp)                                                     \
  X(GenericSetPropOp)                                                          \
  X(LoadElemOp)                                                                \
  X(StoreElemOp)                                                               \
  X(GenericGetElemOp)                                                          \
  X(GenericSetElemOp)                                                          \
  X(LoadElemsLengthOp)                                                         \
  X(LoadStrLengthOp)                                                           \
  X(LoadNamedLengthOp)                                                         \
  X(SmiBinOpOp)                                                                \
  X(DoubleBinOpOp)                                                             \
  X(SmiCompareOp)                                                              \
  X(DoubleCompareOp)                                                           \
  X(StringAddOp)                                                               \
  X(GenericBinOpOp)                                                            \
  X(SmiNegOp)                                                                  \
  X(DoubleNegOp)                                                               \
  X(NotOp)                                                                     \
  X(BitNotOp)                                                                  \
  X(GenericUnaOpOp)                                                            \
  X(JumpOp)                                                                    \
  X(JumpLoopOp)                                                                \
  X(JumpIfFalseOp)                                                             \
  X(JumpIfTrueOp)                                                              \
  X(CallDirectOp)                                                              \
  X(CallBuiltinInlineOp)                                                       \
  X(CallBuiltinMethodOp)                                                       \
  X(CallMethodDirectOp)                                                        \
  X(CallValueOp)                                                               \
  X(GenericCallMethodOp)                                                       \
  X(NewObjectOp)                                                               \
  X(NewArrayOp)                                                                \
  X(CreateObjectOp)                                                            \
  X(CreateArrayOp)                                                             \
  X(AddPropTransitionOp)                                                       \
  X(StElemInitOp)                                                              \
  X(ReturnOp)                                                                  \
  X(DeoptOp)                                                                   \
  CCJS_FOR_EACH_FUSED_IR_OPCODE(X)

// Superinstruction opcodes appended by the fusion pass (src/jit/FusionPass)
// when EngineConfig::Dispatch == Fused. Fusion is *slot-preserving*: the
// fused opcode overwrites the first op of the matched sequence while the
// remaining slots keep their original ops (still reachable by jumps into
// the middle), and the fused handler reads the component operands from
// Ops[Cur+1] / Ops[Cur+2]. Appending at the end keeps every existing
// opcode's enum value stable.
#define CCJS_FOR_EACH_FUSED_IR_OPCODE(X)                                       \
  X(FusedLdLocalLdLocalSmiBinOpOp)                                             \
  X(FusedLdLocalLdaSmiSmiBinOpOp)                                              \
  X(FusedLdLocalLdLocalOp)                                                     \
  X(FusedLdLocalLdaSmiOp)                                                      \
  X(FusedCheckMapLoadPropOp)                                                   \
  X(FusedCheckSmiCheckSmiOp)                                                   \
  X(FusedSmiCompareJumpIfFalseOp)

enum class IrOpcode : uint8_t {
#define CCJS_IR_OPCODE_ENUMERATOR(Name) Name,
  CCJS_FOR_EACH_IR_OPCODE(CCJS_IR_OPCODE_ENUMERATOR)
#undef CCJS_IR_OPCODE_ENUMERATOR
};

inline constexpr unsigned NumIrOpcodes = 0
#define CCJS_IR_OPCODE_COUNT(Name) +1
    CCJS_FOR_EACH_IR_OPCODE(CCJS_IR_OPCODE_COUNT)
#undef CCJS_IR_OPCODE_COUNT
    ;

inline const char *irOpcodeName(IrOpcode Op) {
  switch (Op) {
#define CCJS_IR_OPCODE_NAME(Name)                                              \
  case IrOpcode::Name:                                                         \
    return #Name;
    CCJS_FOR_EACH_IR_OPCODE(CCJS_IR_OPCODE_NAME)
#undef CCJS_IR_OPCODE_NAME
  }
  return "?";
}

/// Flag bits for OptIrOp::Flags.
enum : uint16_t {
  IrFlagAfterObjectLoad = 1 << 0, ///< Check guards a property/element value.
  IrFlagInObject = 1 << 1,        ///< Slot is in-object (trackable).
  IrFlagCcStore = 1 << 2,         ///< Store is a movStoreClassCache[Array].
  IrFlagHoistedClassId = 1 << 3,  ///< movClassIDArray was hoisted.
  IrFlagSafeElem = 1 << 4,        ///< Element access tolerates out-of-bounds.
  IrFlagPreUntag = 1 << 5,        ///< Check precedes an untag (Tags/Untags).
  IrFlagOperandLocal = 1 << 6,    ///< Check reads Loc[Aux], not the stack
                                  ///< (hoisted loop guards; no stack effect).
};

struct OptIrOp {
  IrOpcode Op;
  int32_t A = 0;
  uint32_t B = 0;
  ShapeId Shape = InvalidShape;
  ShapeId Shape2 = InvalidShape;
  uint8_t Depth = 0;
  uint16_t Flags = 0;
  uint16_t Site = 0;
  int32_t Aux = -1;
  uint32_t BcPc = 0;   ///< Bytecode index to resume at (pre-effect deopt).
  uint32_t BcNext = 0; ///< Bytecode index after this op's bytecode.
};

/// Lazy basic-block versioning state for one function's OptIR (null unless
/// the BBV backend is selected). Built by the BbvPrep pass (block
/// partition, per-block relevant locals); versions are materialized lazily
/// at block entry by the executor (see jit/Bbv.h).
///
/// A check op is BBV-elidable when its Aux carries a generation-validated
/// origin local (the checked stack slot is a live copy of Loc[Aux]); the
/// specializer proves such checks from the entry context's ground-truth
/// tags and flips their Elide bit for that version.
struct BbvInfo {
  /// Entry-context tag per local: a small lattice over the value actually
  /// held at block entry. Smi is *strictly tagged* smi — an unboxed
  /// integral double tags as HeapNum so CheckSmi's in-place conversion
  /// (and its Tags/Untags charge) is never skipped.
  enum Tag : uint32_t {
    TagUnknown = 0,
    TagSmi = 1,
    TagHeapNum = 2,
    TagOtherHeap = 3,
    /// Shape tags: TagShapeBase + ShapeId of a plain object.
    TagShapeBase = 8,
  };

  /// One materialized version of one block.
  struct Version {
    /// Projected entry tags for this block's relevant locals (same order
    /// as Block::RelevantLocals).
    std::vector<uint32_t> EntryTags;
    /// Elide[I] != 0 => the check at op index I is proven by this
    /// version's entry context (full Ops-sized mask so the executor
    /// indexes it with Cur directly). Null/empty for the generic version.
    std::vector<uint8_t> Elide;
    uint32_t ChecksElided = 0;
    bool Generic = false;
  };

  struct Block {
    uint32_t Start = 0; ///< Op index of the leader.
    uint32_t End = 0;   ///< One past the last op of the block.
    /// Locals whose entry tags this block's elidable checks depend on
    /// (sorted). Versions are keyed on these only, so irrelevant-local
    /// churn cannot multiply versions.
    std::vector<uint32_t> RelevantLocals;
    std::vector<Version> Versions;
  };

  /// BlockAt[I] != 0 iff op I is the leader of a block with at least one
  /// elidable check (dense, Ops-sized — the executor's per-dispatch test
  /// is one byte load); BlockIndexAt[I] is then the index into Blocks.
  std::vector<uint8_t> BlockAt;
  std::vector<uint32_t> BlockIndexAt;
  std::vector<Block> Blocks;

  // Runtime statistics (surface through bbv.* metrics).
  uint32_t VersionsCreated = 0;
  uint32_t GenericFallbacks = 0;
  uint32_t ChecksElidedTotal = 0;
};

/// Compiled optimized code for one function.
struct OptCode {
  uint32_t FuncIndex = 0;
  std::vector<OptIrOp> Ops;
  /// Polymorphic IC tables referenced by Aux.
  std::vector<std::vector<PropEntry>> PolyTables;
  /// Loop-preheader movClassIDArray loads: ir index of the loop head ->
  /// locals whose ClassID is loaded into regArrayObjectClassId registers.
  std::unordered_map<uint32_t, std::vector<uint32_t>> LoopPreloads;
  /// PreloadAt[I] != 0 iff LoopPreloads contains I. Host-side dispatch
  /// accelerator only; derived from LoopPreloads at the end of build().
  std::vector<uint8_t> PreloadAt;
  /// Peak abstract operand-stack depth observed while building. The
  /// executor pre-reserves this, so the operand stack never reallocates
  /// mid-run (host-side sizing hint; never affects simulated events).
  uint32_t MaxStack = 0;
  /// Precomputed machine-event templates for superinstructions whose
  /// event mix depends on per-instance operands (a fused op's Aux indexes
  /// this table). Filled by the fusion pass; empty in unfused code.
  std::vector<EventBatch> Batches;

  /// Lazy-BBV versioning state (null unless EngineConfig::bbvOn()).
  /// Owned by the OptCode; mutated lazily at block entry.
  std::unique_ptr<BbvInfo> Bbv;

  // Compile-time statistics (for the ablation benches).
  uint32_t ChecksEmitted = 0;
  uint32_t ChecksElidedClassic = 0;
  uint32_t ChecksElidedClassCache = 0;
  uint32_t CcStores = 0;
  uint32_t HoistedStores = 0;
  /// Checks removed by the optimizer pass pipeline (redundant-guard
  /// elimination) and loop-invariant guards hoisted by check motion.
  uint32_t ChecksElidedPass = 0;
  uint32_t ChecksHoisted = 0;
};

} // namespace ccjs

#endif // CCJS_JIT_OPTIR_H
