//===- jit/OptIr.h - Optimizing-tier IR -------------------------*- C++ -*-===//
///
/// \file
/// OptIR: the check-explicit linear IR of the optimizing tier (the
/// Crankshaft analogue). It keeps the bytecode's stack discipline so every
/// op maps back to a bytecode position for deoptimization, but all type
/// checks (Check Map / Check SMI / Check Number), tag/untag operations and
/// math-assumption guards are explicit ops the optimizer can reason about
/// and — with the Class Cache — remove.
///
/// Deopt contract: an op either deoptimizes with the operand stack
/// untouched (resuming the interpreter at BcPc) or completes its stack
/// effect; stores that complete but invalidate the running code resume at
/// BcNext.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_JIT_OPTIR_H
#define CCJS_JIT_OPTIR_H

#include "runtime/Shape.h"
#include "vm/Feedback.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ccjs {

enum class IrOpcode : uint8_t {
  // Constants, locals, globals.
  Const,
  LdaSmiOp,
  LdaUndef,
  LdaNull,
  LdaTrue,
  LdaFalse,
  LdaThisOp,
  LdLocalOp,
  StLocalOp,
  LdGlobalOp,
  StGlobalOp,
  PopOp,
  DupOp,

  // Checks (peek at Depth; no stack effect; deopt on failure).
  CheckMapOp,    ///< Value must be a pointer with the expected shape.
  CheckSmiOp,    ///< Value must be a SMI.
  CheckNumberOp, ///< Value must be a SMI or a HeapNumber (pre-untag check).

  // Named properties.
  LoadPropOp,           ///< B = slot. [obj] -> [value].
  PolyLoadPropOp,       ///< Aux = poly table. [obj] -> [value].
  GenericGetPropOp,     ///< B = name.
  StorePropOp,          ///< B = slot, Shape = holder. [obj, v] -> [v].
  TransitionStorePropOp,///< B = slot, Shape = old, Shape2 = new.
  GenericSetPropOp,     ///< B = name.

  // Elements.
  LoadElemOp,        ///< [obj, idx] -> [value].
  StoreElemOp,       ///< [obj, idx, v] -> [v]. A = receiver local or -1.
  GenericGetElemOp,
  GenericSetElemOp,

  // Lengths.
  LoadElemsLengthOp,
  LoadStrLengthOp,
  LoadNamedLengthOp, ///< B = slot.

  // Arithmetic (A = BinaryOp).
  SmiBinOpOp,
  DoubleBinOpOp,
  SmiCompareOp,
  DoubleCompareOp,
  StringAddOp,
  GenericBinOpOp,

  // Unary.
  SmiNegOp,
  DoubleNegOp,
  NotOp,
  BitNotOp,
  GenericUnaOpOp, ///< A = UnaryOp.

  // Control flow (A = target ir index).
  JumpOp,
  JumpLoopOp,
  JumpIfFalseOp,
  JumpIfTrueOp,

  // Calls.
  CallDirectOp,        ///< A = argc, B = callee function index.
  CallBuiltinInlineOp, ///< A = argc, B = builtin id (inlined Math ops).
  CallBuiltinMethodOp, ///< A = argc, B = builtin id; receiver under args.
  CallMethodDirectOp,  ///< A = argc, B = target; receiver under args.
  CallValueOp,         ///< A = argc; callee under args.
  GenericCallMethodOp, ///< A = argc, B = name; receiver under args.
  NewObjectOp,         ///< A = argc, B = constructor function index.
  NewArrayOp,          ///< A = argc (Array built-in constructor).

  // Literals.
  CreateObjectOp,      ///< A = capacity hint.
  CreateArrayOp,       ///< A = initial length.
  AddPropTransitionOp, ///< B = slot, Shape = old, Shape2 = new. [obj,v]->[obj].
  StElemInitOp,        ///< A = index. [arr, v] -> [arr].

  ReturnOp,
  DeoptOp, ///< Unconditional bailout (unsupported situation).
};

/// Flag bits for OptIrOp::Flags.
enum : uint16_t {
  IrFlagAfterObjectLoad = 1 << 0, ///< Check guards a property/element value.
  IrFlagInObject = 1 << 1,        ///< Slot is in-object (trackable).
  IrFlagCcStore = 1 << 2,         ///< Store is a movStoreClassCache[Array].
  IrFlagHoistedClassId = 1 << 3,  ///< movClassIDArray was hoisted.
  IrFlagSafeElem = 1 << 4,        ///< Element access tolerates out-of-bounds.
  IrFlagPreUntag = 1 << 5,        ///< Check precedes an untag (Tags/Untags).
};

struct OptIrOp {
  IrOpcode Op;
  int32_t A = 0;
  uint32_t B = 0;
  ShapeId Shape = InvalidShape;
  ShapeId Shape2 = InvalidShape;
  uint8_t Depth = 0;
  uint16_t Flags = 0;
  uint16_t Site = 0;
  int32_t Aux = -1;
  uint32_t BcPc = 0;   ///< Bytecode index to resume at (pre-effect deopt).
  uint32_t BcNext = 0; ///< Bytecode index after this op's bytecode.
};

/// Compiled optimized code for one function.
struct OptCode {
  uint32_t FuncIndex = 0;
  std::vector<OptIrOp> Ops;
  /// Polymorphic IC tables referenced by Aux.
  std::vector<std::vector<PropEntry>> PolyTables;
  /// Loop-preheader movClassIDArray loads: ir index of the loop head ->
  /// locals whose ClassID is loaded into regArrayObjectClassId registers.
  std::unordered_map<uint32_t, std::vector<uint32_t>> LoopPreloads;

  // Compile-time statistics (for the ablation benches).
  uint32_t ChecksEmitted = 0;
  uint32_t ChecksElidedClassic = 0;
  uint32_t ChecksElidedClassCache = 0;
  uint32_t CcStores = 0;
  uint32_t HoistedStores = 0;
};

} // namespace ccjs

#endif // CCJS_JIT_OPTIR_H
