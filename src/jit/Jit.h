//===- jit/Jit.h - Optimizing tier entry points ------------------*- C++ -*-===//
///
/// \file
/// Public interface of the optimizing tier: compile a hot function's
/// bytecode + feedback into OptCode, and execute OptCode (with
/// deoptimization back into the interpreter).
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_JIT_JIT_H
#define CCJS_JIT_JIT_H

#include "jit/OptIr.h"
#include "vm/VMState.h"

namespace ccjs {

/// Compiles function \p FuncIndex with its current feedback. When the
/// Class Cache mechanism is enabled, monomorphic-slot profiles are
/// consumed to elide checks; every consumed profile registers the function
/// in the slot's FunctionList and sets its SpeculateMap bit.
/// Returns nullptr when the function cannot be optimized.
OptCode *compileOptimized(VMState &VM, uint32_t FuncIndex);

/// The compile pipeline's entry stage: the two-pass IrBuilder emission
/// (facts pass + precise pass), with no optimizer passes, no fusion and no
/// compile-cost charge. compileOptimized (jit/passes/PassManager.cpp) runs
/// this, then the enabled OptIR passes, then the backend stages; with
/// every pass disabled its output is byte-identical to this function's.
OptCode *buildOptIr(VMState &VM, uint32_t FuncIndex);

/// Executes a function's optimized code. Deoptimization (check failure,
/// SMI overflow, Class Cache exception) transparently resumes in the
/// interpreter; the returned value is always the completed call's result.
Value runOptimized(VMState &VM, uint32_t FuncIndex, Value ThisV,
                   const Value *Args, uint32_t Argc);

} // namespace ccjs

#endif // CCJS_JIT_JIT_H
