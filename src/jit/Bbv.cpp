//===- jit/Bbv.cpp - Lazy basic-block versioning backend ------------------===//

#include "jit/Bbv.h"

#include "jit/passes/Pass.h"
#include "vm/VMState.h"

#include <algorithm>

using namespace ccjs;

namespace {

bool isJump(IrOpcode Op) {
  return Op == IrOpcode::JumpOp || Op == IrOpcode::JumpLoopOp ||
         Op == IrOpcode::JumpIfFalseOp || Op == IrOpcode::JumpIfTrueOp;
}

bool isCheck(IrOpcode Op) {
  return Op == IrOpcode::CheckMapOp || Op == IrOpcode::CheckSmiOp ||
         Op == IrOpcode::CheckNumberOp;
}

/// Superinstruction fusion rewrites a head CheckSmi's *opcode* in place
/// (every operand field is untouched) after bbvPrepare ran. The runtime
/// walk must see through the rewrite, or fused code would mint weaker
/// versions than the switch executor and break cross-dispatch event
/// identity. FusedCheckMapLoadPropOp needs no case: it never forms under
/// a BBV backend (see checkMapLoadPropFusable).
IrOpcode effectiveOp(IrOpcode Op) {
  return Op == IrOpcode::FusedCheckSmiCheckSmiOp ? IrOpcode::CheckSmiOp : Op;
}

/// True when entry tag \p T of the checked local proves the check with
/// effective opcode \p Op and operands \p O. Mirrors the executor's
/// runtime predicates exactly (ExecutorLoop.inc): an elided check can
/// never be one the full check would have failed.
bool tagProvesCheck(IrOpcode Op, const OptIrOp &O, uint32_t T,
                    ShapeId HeapNum) {
  switch (Op) {
  case IrOpcode::CheckSmiOp:
    // Strictly tagged SMI only: an unboxed integral double tags as
    // TagHeapNum, so the in-place conversion (and its Tags/Untags
    // charge) is never skipped.
    return T == BbvInfo::TagSmi;
  case IrOpcode::CheckNumberOp:
    return T == BbvInfo::TagSmi || T == BbvInfo::TagHeapNum ||
           T == BbvInfo::TagShapeBase + HeapNum;
  case IrOpcode::CheckMapOp:
    // An unboxed double (TagHeapNum) passes CheckMap(heapNumberShape).
    return T == BbvInfo::TagShapeBase + O.Shape ||
           (O.Shape == HeapNum && T == BbvInfo::TagHeapNum);
  default:
    return false;
  }
}

} // namespace

void ccjs::bbvPrepare(OptCode &C, VMState &VM) {
  (void)VM;
  const size_t N = C.Ops.size();
  if (N == 0)
    return;

  // Leaders: op 0, every jump target, and the op after any control
  // transfer (including conditional fall-through — the two successors of
  // a branch must version independently).
  std::vector<uint8_t> Leader(N, 0);
  Leader[0] = 1;
  for (size_t I = 0; I < N; ++I) {
    const OptIrOp &O = C.Ops[I];
    if (isJump(O.Op) && O.A >= 0 && static_cast<size_t>(O.A) < N)
      Leader[O.A] = 1;
    if ((isJump(O.Op) || O.Op == IrOpcode::ReturnOp ||
         O.Op == IrOpcode::DeoptOp) &&
        I + 1 < N)
      Leader[I + 1] = 1;
  }

  auto Info = std::make_unique<BbvInfo>();
  Info->BlockAt.assign(N, 0);
  Info->BlockIndexAt.assign(N, 0);

  size_t Start = 0;
  for (size_t I = 1; I <= N; ++I) {
    if (I < N && !Leader[I])
      continue;
    // Block [Start, I). Register it only when it contains at least one
    // elidable check: a Check* whose Aux carries a generation-validated
    // origin local (set by the IrBuilder, or a hoisted OperandLocal
    // guard from check motion).
    BbvInfo::Block B;
    B.Start = static_cast<uint32_t>(Start);
    B.End = static_cast<uint32_t>(I);
    for (size_t J = Start; J < I; ++J) {
      const OptIrOp &O = C.Ops[J];
      if (isCheck(O.Op) && O.Aux >= 0)
        B.RelevantLocals.push_back(static_cast<uint32_t>(O.Aux));
    }
    if (!B.RelevantLocals.empty()) {
      std::sort(B.RelevantLocals.begin(), B.RelevantLocals.end());
      B.RelevantLocals.erase(
          std::unique(B.RelevantLocals.begin(), B.RelevantLocals.end()),
          B.RelevantLocals.end());
      Info->BlockAt[Start] = 1;
      Info->BlockIndexAt[Start] = static_cast<uint32_t>(Info->Blocks.size());
      Info->Blocks.push_back(std::move(B));
    }
    Start = I;
  }

  if (!Info->Blocks.empty())
    C.Bbv = std::move(Info);
}

const uint8_t *ccjs::bbvSelectVersion(VMState &VM, OptCode &C,
                                      uint32_t BlockIdx,
                                      const std::vector<uint32_t> &Tags) {
  BbvInfo &Info = *C.Bbv;
  BbvInfo::Block &B = Info.Blocks[BlockIdx];

  // Reuse: linear scan — the cap keeps version counts tiny.
  for (BbvInfo::Version &V : B.Versions)
    if (V.EntryTags == Tags)
      return V.Generic ? nullptr : V.Elide.data();

  const uint32_t Cap = VM.Config.BbvMaxVersions;
  BbvInfo::Version V;
  V.EntryTags = Tags;
  V.Generic = B.Versions.size() >= Cap;

  if (!V.Generic) {
    // Abstract walk over the block: project each relevant local's tag
    // forward from the measured entry context and flip the Elide bit of
    // every check the current tag proves. The walk's kill rules mirror
    // the optimizer's (shared irOpKillsShapeFacts), so a stale tag can
    // never survive past an op that could invalidate it.
    const ShapeId HeapNum = VM.Shapes.heapNumberShape();
    const ShapeId Str = VM.Shapes.stringShape();
    V.Elide.assign(C.Ops.size(), 0);
    std::vector<uint32_t> Cur = Tags;
    auto TagOf = [&](int32_t L) -> uint32_t * {
      auto It = std::lower_bound(B.RelevantLocals.begin(),
                                 B.RelevantLocals.end(),
                                 static_cast<uint32_t>(L));
      if (It == B.RelevantLocals.end() ||
          *It != static_cast<uint32_t>(L))
        return nullptr;
      return &Cur[static_cast<size_t>(It - B.RelevantLocals.begin())];
    };
    for (uint32_t J = B.Start; J < B.End; ++J) {
      const OptIrOp &O = C.Ops[J];
      const IrOpcode Op = effectiveOp(O.Op);
      if (Op == IrOpcode::StLocalOp) {
        if (uint32_t *T = TagOf(O.A))
          *T = BbvInfo::TagUnknown;
        continue;
      }
      if (irOpKillsShapeFacts(Op)) {
        // Mutable shape tags die; value tags (SMI, unboxed double) and
        // the immutable HeapNumber/string shapes survive.
        for (uint32_t &T : Cur)
          if (T >= BbvInfo::TagShapeBase &&
              T != BbvInfo::TagShapeBase + HeapNum &&
              T != BbvInfo::TagShapeBase + Str)
            T = BbvInfo::TagUnknown;
        continue;
      }
      if (!isCheck(Op) || O.Aux < 0)
        continue;
      uint32_t *T = TagOf(O.Aux);
      if (!T)
        continue;
      if (tagProvesCheck(Op, O, *T, HeapNum)) {
        V.Elide[J] = 1;
        ++V.ChecksElided;
        continue;
      }
      // The check runs and passes (or deopts, ending this code's
      // execution) — refine the tag with what a pass proves.
      if (Op == IrOpcode::CheckSmiOp && (O.Flags & IrFlagOperandLocal)) {
        // An OperandLocal CheckSmi normalizes Loc[L] itself in place.
        *T = BbvInfo::TagSmi;
      } else if (Op == IrOpcode::CheckMapOp && O.Shape != HeapNum) {
        // Passing CheckMap(S) for S != HeapNumber pins a pointer with
        // shape S (the HeapNumber case is ambiguous with an unboxed
        // double, which must keep TagHeapNum).
        *T = BbvInfo::TagShapeBase + O.Shape;
      }
    }
  } else {
    ++Info.GenericFallbacks;
  }

  VM.Ctx.chargeBbvSpecialization(V.Generic, B.End - B.Start);
  if (!V.Generic) {
    ++Info.VersionsCreated;
    Info.ChecksElidedTotal += V.ChecksElided;
  }
  if (VM.Metrics) {
    ++VM.Metrics->counter(V.Generic ? "bbv.generic_fallbacks"
                                    : "bbv.versions");
    VM.Metrics->counter("bbv.checks_elided") += V.ChecksElided;
  }
  // Warm-replica support: log the materialized entry context so a later
  // compile of this function (after reload or snapshot restore) can replay
  // the same versions at compile time. Suppressed during replay itself —
  // the replayed selection must not append duplicates.
  if (VM.Config.ProfilePersistence && !VM.BbvReplaying)
    VM.Funcs[C.FuncIndex].BbvSeeds.push_back({BlockIdx, Tags});

  BbvSpecializeEvent E;
  E.FuncIndex = C.FuncIndex;
  E.BlockStart = B.Start;
  E.VersionIndex = static_cast<uint32_t>(B.Versions.size());
  E.ChecksElided = V.ChecksElided;
  E.Generic = V.Generic;
  VM.notifyBbvSpecialize(E);

  B.Versions.push_back(std::move(V));
  BbvInfo::Version &Stored = B.Versions.back();
  return Stored.Generic ? nullptr : Stored.Elide.data();
}
