//===- jit/FusionPass.cpp - Superinstruction fusion over OptIR ------------===//

#include "jit/FusionPass.h"

#include "core/Metrics.h"
#include "support/PairHistogram.h"
#include "vm/VMState.h"

#include <cstdio>

using namespace ccjs;

// Triples precede the pairs they extend so the greedy scan prefers the
// longer match; order is otherwise the mined hotness order (EXPERIMENTS.md
// "Mining fusion candidates").
static const FusionPattern Patterns[] = {
    {"ldloc+ldloc+smibinop",
     IrOpcode::FusedLdLocalLdLocalSmiBinOpOp,
     3,
     {IrOpcode::LdLocalOp, IrOpcode::LdLocalOp, IrOpcode::SmiBinOpOp}},
    {"ldloc+ldasmi+smibinop",
     IrOpcode::FusedLdLocalLdaSmiSmiBinOpOp,
     3,
     {IrOpcode::LdLocalOp, IrOpcode::LdaSmiOp, IrOpcode::SmiBinOpOp}},
    {"ldloc+ldloc",
     IrOpcode::FusedLdLocalLdLocalOp,
     2,
     {IrOpcode::LdLocalOp, IrOpcode::LdLocalOp, IrOpcode::Const}},
    {"ldloc+ldasmi",
     IrOpcode::FusedLdLocalLdaSmiOp,
     2,
     {IrOpcode::LdLocalOp, IrOpcode::LdaSmiOp, IrOpcode::Const}},
    {"checkmap+loadprop",
     IrOpcode::FusedCheckMapLoadPropOp,
     2,
     {IrOpcode::CheckMapOp, IrOpcode::LoadPropOp, IrOpcode::Const}},
    {"checksmi+checksmi",
     IrOpcode::FusedCheckSmiCheckSmiOp,
     2,
     {IrOpcode::CheckSmiOp, IrOpcode::CheckSmiOp, IrOpcode::Const}},
    {"smicompare+jumpiffalse",
     IrOpcode::FusedSmiCompareJumpIfFalseOp,
     2,
     {IrOpcode::SmiCompareOp, IrOpcode::JumpIfFalseOp, IrOpcode::Const}},
};

const FusionPattern *ccjs::fusionPatterns() { return Patterns; }
const unsigned ccjs::NumFusionPatterns =
    sizeof(Patterns) / sizeof(Patterns[0]);

namespace {

/// Guard+load fusion is only sound when the fused handler's single Pass
/// computation is equivalent to CheckMapOp's two-representation test and
/// the checked value is the object LoadPropOp pops:
/// - no PreUntag: the check targets an object map (Cat is Checks), and
///   the guarded shape cannot be HeapNumber's, so an unboxed double can
///   never pass — the fused `!Unboxed && isPointer && shapeOf == Shape`
///   test matches the unfused one exactly;
/// - Depth 0: CheckMap peeks at what LoadProp pops (a hoisted
///   IrFlagOperandLocal guard reads a local instead, so it never fuses);
/// - no BBV: the fused op repurposes Aux as the event-batch index, which
///   would clobber the origin-local annotation the BBV specializer keys
///   on, and the fused handler cannot consult a version's elision mask.
bool checkMapLoadPropFusable(const OptIrOp &Check, const VMState &VM) {
  return !(Check.Flags & IrFlagPreUntag) &&
         !(Check.Flags & IrFlagOperandLocal) && Check.Depth == 0 &&
         Check.Shape != VM.Shapes.heapNumberShape() && !VM.Config.bbvOn();
}

} // namespace

unsigned ccjs::fuseSuperinstructions(OptCode &C, const VMState &VM) {
  const size_t N = C.Ops.size();

  // Any op a jump can land on must keep its original opcode: fusion may
  // only swallow an op as a non-first component when control can never
  // enter the sequence in the middle.
  std::vector<uint8_t> JumpTarget(N, 0);
  for (const OptIrOp &Op : C.Ops) {
    switch (Op.Op) {
    case IrOpcode::JumpOp:
    case IrOpcode::JumpLoopOp:
    case IrOpcode::JumpIfFalseOp:
    case IrOpcode::JumpIfTrueOp:
      if (Op.A >= 0 && static_cast<size_t>(Op.A) < N)
        JumpTarget[static_cast<size_t>(Op.A)] = 1;
      break;
    default:
      break;
    }
  }

  const uint32_t Mask = VM.Config.FusedPatternMask;
  unsigned Fused = 0;
  size_t I = 0;
  while (I < N) {
    size_t Advance = 1;
    for (unsigned P = 0; P < NumFusionPatterns; ++P) {
      if (!(Mask & (1u << P)))
        continue;
      const FusionPattern &Pat = Patterns[P];
      if (I + Pat.Len > N)
        continue;
      bool Match = true;
      for (unsigned K = 0; K < Pat.Len && Match; ++K) {
        if (C.Ops[I + K].Op != Pat.Seq[K])
          Match = false;
        // Non-first components must be unreachable from anywhere but the
        // fall-through, and must not carry loop-preheader work (the fused
        // handler skips the component prologues; a first-slot preload is
        // fine because the fused op runs the normal prologue).
        if (K > 0 && (JumpTarget[I + K] || C.PreloadAt[I + K]))
          Match = false;
      }
      if (Match && Pat.Fused == IrOpcode::FusedCheckMapLoadPropOp &&
          !checkMapLoadPropFusable(C.Ops[I], VM))
        Match = false;
      if (!Match)
        continue;

      if (Pat.Fused == IrOpcode::FusedCheckMapLoadPropOp) {
        // Pass-path template: CheckMap's map load + compare + branch,
        // then LoadProp's slot load. Addresses, the branch site and the
        // (never-taken) outcome arrive as operands at execution time.
        const OptIrOp &Check = C.Ops[I];
        const bool AOL = (Check.Flags & IrFlagAfterObjectLoad) != 0;
        EventBatch B;
        B.append({BatchEvKind::Load, InstrCategory::Checks, AOL, 1});
        B.append({BatchEvKind::Alu, InstrCategory::Checks, AOL, 1});
        B.append({BatchEvKind::Branch, InstrCategory::Checks, AOL, 1});
        B.append({BatchEvKind::Load, InstrCategory::OtherOptimized, false,
                  1});
        C.Ops[I].Aux = static_cast<int32_t>(C.Batches.size());
        C.Batches.push_back(B);
      }
      C.Ops[I].Op = Pat.Fused;
      ++Fused;
      Advance = Pat.Len;
      break;
    }
    I += Advance;
  }
  return Fused;
}

std::string ccjs::renderOpPairHistogram(const PairHistogram &Hist,
                                        size_t TopN) {
  std::string Out = "op-pair histogram (dynamic adjacencies, hottest "
                    "first)\n";
  uint64_t Total = Hist.total();
  char Line[160];
  std::snprintf(Line, sizeof(Line), "total adjacencies: %llu\n",
                static_cast<unsigned long long>(Total));
  Out += Line;
  for (const PairHistogram::Entry &E : Hist.top(TopN)) {
    std::snprintf(Line, sizeof(Line), "%12llu  %5.1f%%  %s -> %s\n",
                  static_cast<unsigned long long>(E.Count),
                  Total ? 100.0 * static_cast<double>(E.Count) /
                              static_cast<double>(Total)
                        : 0.0,
                  irOpcodeName(static_cast<IrOpcode>(E.Prev)),
                  irOpcodeName(static_cast<IrOpcode>(E.Cur)));
    Out += Line;
  }
  return Out;
}

void ccjs::exportOpPairHistogram(const PairHistogram &Hist,
                                 MetricsRegistry &M, size_t TopN) {
  for (const PairHistogram::Entry &E : Hist.top(TopN)) {
    std::string Name = std::string("host.op_pair.") +
                       irOpcodeName(static_cast<IrOpcode>(E.Prev)) + "+" +
                       irOpcodeName(static_cast<IrOpcode>(E.Cur));
    M.counter(Name) = E.Count;
  }
}
