//===- core/ProfileSnapshot.h - Warm profile capture/restore ----*- C++ -*-===//
///
/// \file
/// Serialization of an engine's warmed profile state — the cheap-to-collect,
/// expensive-to-rebuild data the paper's check removal feeds on — so fleet
/// replicas can skip the warmup tax (DESIGN.md §4.11):
///
///   * the interned-name table and the full hidden-class transition graph,
///   * the Class List shape index (entry images travel with the memory),
///   * the whole simulated memory image (heap, globals, Class List region),
///   * TypeProfiler store profiles and heap allocation-sizing hints,
///   * warmed machine state (cache tags/LRU, TLB, branch-predictor
///     counters, the same-line memo) and cumulative run counters,
///   * the pending per-function module profile: type feedback, hotness,
///     deopt bookkeeping and BBV version-context seeds.
///
/// OptIR is deliberately NOT serialized: it is recompiled deterministically
/// from the restored profiles, which keeps the format small and the
/// byte-identity story tractable.
///
/// Restore is staged: the snapshot is parsed and validated *completely*
/// (magic, version, CRC, config fingerprint, geometry) into host-side
/// staging before anything touches the VM, so a rejected snapshot leaves
/// the engine in its ordinary cold-start state — usable, never torn.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_PROFILESNAPSHOT_H
#define CCJS_CORE_PROFILESNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccjs {

struct EngineConfig;
struct VMState;

/// Current snapshot format version.
inline constexpr uint32_t ProfileSnapshotVersion = 1;

/// Fingerprint of the *profiled* configuration: everything that shapes the
/// captured state (tiering thresholds, the full hardware geometry and
/// timing/energy model). Knobs that provably do not change what a profile
/// means — dispatch mode, check-removal backend, elision/hoisting
/// ablations, pass masks, budgets, trace/metrics/audit, fault schedules —
/// are excluded on purpose: a snapshot must restore across them
/// (ISSUE satellite: backend and dispatch must NOT invalidate).
std::string snapshotFingerprint(const EngineConfig &Cfg);

/// FNV-1a hash over a module's structure (function names, site counts,
/// bytecode). A persisted per-function profile is only installed into a
/// module that hashes identically.
uint64_t moduleProfileHash(const struct BytecodeModule &M);

/// Serializes \p VM's warm profile state. Deterministic and canonical:
/// every map-backed section is emitted sorted by key, so capturing the
/// same state twice yields byte-identical snapshots (the CI round-trip
/// determinism gate relies on this).
std::vector<uint8_t> captureProfileSnapshot(const VMState &VM);

/// Restores a snapshot into a freshly constructed \p VM (no module loaded,
/// nothing executed). On any validation failure — truncation, bad magic,
/// bad CRC, future version, fingerprint or geometry mismatch — returns
/// false with a one-line reason in \p Err and leaves \p VM untouched.
bool restoreProfileSnapshot(VMState &VM, const std::vector<uint8_t> &Bytes,
                            std::string &Err);

} // namespace ccjs

#endif // CCJS_CORE_PROFILESNAPSHOT_H
