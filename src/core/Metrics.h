//===- core/Metrics.h - Named counters and histograms -----------*- C++ -*-===//
///
/// \file
/// A small registry of named counters and histograms for rare engine
/// events: deopt reasons, invalidation fan-out, per-function check-elision
/// counts. Complements the trace ring: the trace answers *when/why one
/// event* happened, the registry answers *how often* across the run, and
/// both export into the bench harness's schema-v1 JSON reports.
///
/// The registry is only constructed when EngineConfig::MetricsEnabled is
/// set; instrumentation sites test the VMState::Metrics pointer and nothing
/// else (the FaultInjector discipline), so metrics-off runs pay one host
/// branch per site and zero simulated events.
///
/// Everything the instrumentation touches is defined inline in this header:
/// the interpreter/executor headers use it without pulling link-time
/// dependencies on the core library (only toJson/render live in the .cpp).
/// Names are interned on first use and iteration order is insertion order,
/// so exports are byte-stable for deterministic runs.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_METRICS_H
#define CCJS_CORE_METRICS_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ccjs::json {
class Value;
} // namespace ccjs::json

namespace ccjs {

/// Summary histogram: count / sum / min / max. Enough to report fan-out
/// distributions without bucket-boundary bikeshedding.
struct HistogramStats {
  uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;

  void observe(double V) {
    if (Count == 0) {
      Min = Max = V;
    } else {
      Min = std::min(Min, V);
      Max = std::max(Max, V);
    }
    ++Count;
    Sum += V;
  }
  double mean() const { return Count ? Sum / double(Count) : 0; }
};

class MetricsRegistry {
public:
  /// Returns the counter named \p Name, creating it at zero on first use.
  /// The reference stays valid until the registry is destroyed or reset();
  /// instrumentation sites re-fetch by name rather than caching across
  /// events, so reset() between service requests is safe.
  uint64_t &counter(std::string_view Name) {
    for (auto &C : Counters)
      if (C.first == Name)
        return C.second;
    Counters.emplace_back(std::string(Name), 0);
    return Counters.back().second;
  }

  /// Returns the histogram named \p Name, creating it empty on first use.
  HistogramStats &histogram(std::string_view Name) {
    for (auto &H : Histograms)
      if (H.first == Name)
        return H.second;
    Histograms.emplace_back(std::string(Name), HistogramStats());
    return Histograms.back().second;
  }

  const std::vector<std::pair<std::string, uint64_t>> &counters() const {
    return Counters;
  }
  const std::vector<std::pair<std::string, HistogramStats>> &
  histograms() const {
    return Histograms;
  }

  /// True for counters in the `host.` namespace: host-side measurements
  /// (dispatch counts, fusion savings, op-pair histogram) that legally
  /// differ between dispatch modes. Excluded from default exports so the
  /// equivalence oracles can byte-compare metric images across modes;
  /// measurement surfaces (ccjs, bench host blocks) opt in.
  static bool isHostMetric(std::string_view Name) {
    return Name.rfind("host.", 0) == 0;
  }

  /// JSON export: {"counters": {...}, "histograms": {name: {count, sum,
  /// mean, min, max}}}. Insertion-ordered, byte-stable. `host.` counters
  /// are omitted unless \p IncludeHost.
  json::Value toJson(bool IncludeHost = false) const;

  /// Human-readable table for ccjs --metrics; same IncludeHost contract.
  std::string render(bool IncludeHost = false) const;

  /// Forgets every counter and histogram (names included), returning the
  /// registry to its freshly-constructed state. Exports after reset() are
  /// byte-identical to a new engine's, which is what the pooled service
  /// path needs between requests. Invalidates references previously
  /// returned by counter()/histogram().
  void reset() {
    Counters.clear();
    Histograms.clear();
  }

private:
  // Linear-scan vectors, not maps: the site count is tens, lookups happen
  // on rare events only, and insertion order must be preserved for
  // byte-stable exports.
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, HistogramStats>> Histograms;
};

} // namespace ccjs

#endif // CCJS_CORE_METRICS_H
