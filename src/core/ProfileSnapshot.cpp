//===- core/ProfileSnapshot.cpp -------------------------------------------===//

#include "core/ProfileSnapshot.h"

#include "bytecode/Bytecode.h"
#include "support/Snapshot.h"
#include "vm/VMState.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace ccjs;

namespace {

/// Payload section ids, in serialization order.
enum SectionId : uint32_t {
  SecNames = 1,
  SecShapes = 2,
  SecClassList = 3,
  SecMemory = 4,
  SecProfiler = 5,
  SecHeap = 6,
  SecMachine = 7,
  SecModule = 8,
};

/// The ShapeTable constructor creates nine well-known shapes; snapshots
/// serialize only the program-driven shapes after them, relying on every
/// engine minting the same nine roots.
constexpr uint32_t NumWellKnownShapes = 9;

void fnvMix(uint64_t &H, const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
}

void fnvMixU64(uint64_t &H, uint64_t V) { fnvMix(H, &V, sizeof(V)); }

template <typename K, typename V>
std::vector<std::pair<K, V>> sortedPairs(const std::unordered_map<K, V> &M) {
  std::vector<std::pair<K, V>> Out(M.begin(), M.end());
  std::sort(Out.begin(), Out.end());
  return Out;
}

void writeSiteFeedback(SnapshotWriter &W, const SiteFeedback &FB) {
  for (unsigned E = 0; E < SiteFeedback::MaxEntries; ++E) {
    W.u32(FB.Entries[E].Shape);
    W.u16(FB.Entries[E].Slot);
    W.u32(FB.Entries[E].NewShape);
  }
  W.u8(FB.NumEntries);
  W.u8(FB.Megamorphic ? 1 : 0);
  W.u8(static_cast<uint8_t>(FB.Hint));
  W.u32(FB.CallTarget);
  W.u8(FB.PolymorphicCall ? 1 : 0);
  W.u8(static_cast<uint8_t>(FB.Length));
  W.u16(FB.LengthSlot);
  W.u8(FB.SawOutOfBounds ? 1 : 0);
}

bool readSiteFeedback(SnapshotReader &R, SiteFeedback &FB) {
  uint8_t B;
  for (unsigned E = 0; E < SiteFeedback::MaxEntries; ++E) {
    if (!R.u32(FB.Entries[E].Shape) || !R.u16(FB.Entries[E].Slot) ||
        !R.u32(FB.Entries[E].NewShape))
      return false;
  }
  if (!R.u8(FB.NumEntries) || FB.NumEntries > SiteFeedback::MaxEntries)
    return false;
  if (!R.u8(B))
    return false;
  FB.Megamorphic = B != 0;
  if (!R.u8(B) || B > static_cast<uint8_t>(NumberHint::Generic))
    return false;
  FB.Hint = static_cast<NumberHint>(B);
  if (!R.u32(FB.CallTarget))
    return false;
  if (!R.u8(B))
    return false;
  FB.PolymorphicCall = B != 0;
  if (!R.u8(B) || B > static_cast<uint8_t>(LengthKind::Mixed))
    return false;
  FB.Length = static_cast<LengthKind>(B);
  if (!R.u16(FB.LengthSlot))
    return false;
  if (!R.u8(B))
    return false;
  FB.SawOutOfBounds = B != 0;
  return true;
}

void writeCache(SnapshotWriter &W, const CacheSim &C) {
  W.u64(C.lastBlock());
  W.u64(C.lines().size());
  for (uint64_t L : C.lines())
    W.u64(L);
}

struct CacheImage {
  std::vector<uint64_t> Lines;
  uint64_t LastBlock = ~uint64_t(0);
};

bool readCache(SnapshotReader &R, CacheImage &Img) {
  uint64_t N;
  if (!R.u64(Img.LastBlock) || !R.u64(N))
    return false;
  Img.Lines.clear();
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t L;
    if (!R.u64(L))
      return false;
    Img.Lines.push_back(L);
  }
  return true;
}

/// Fully parsed and validated snapshot contents, staged host-side before
/// anything is applied to the VM.
struct StagedSnapshot {
  std::vector<std::string> Names; // ids 1..N-1 in id order.
  /// Outgoing transitions of the nine well-known shapes (rebuilt by the
  /// ShapeTable constructor, so only their edges travel), in id order.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> RootTransitions;
  std::vector<Shape> Shapes;      // ids NumWellKnownShapes.. in id order.
  uint32_t NumShapesTotal = 0;
  uint32_t NextClassId = 0;
  std::vector<std::pair<uint32_t, ShapeId>> CtorRoots;
  std::vector<std::pair<uint64_t, ShapeId>> ArrayRoots;
  bool HadClassList = false;
  std::vector<std::vector<ShapeId>> ClassShapes;
  std::vector<uint8_t> MemImage;
  std::vector<TypeProfiler::SavedProfile> Profiles;
  HeapStats HStats;
  std::vector<std::pair<uint32_t, uint32_t>> SlotHints;
  uint64_t RandomState = 0;
  uint64_t OptCompiles = 0;
  uint64_t LastLine = ~uint64_t(0);
  std::vector<uint8_t> Predictor;
  CacheImage Dl1, L2, Dtlb;
  VMState::ModuleProfile Module;
};

} // namespace

std::string ccjs::snapshotFingerprint(const EngineConfig &Cfg) {
  const HwConfig &Hw = Cfg.Hw;
  char Buf[768];
  std::snprintf(
      Buf, sizeof(Buf),
      "snap-v%u:hotinv=%u,hotloop=%u,maxdeopt=%u,"
      "core=%u/%u/%u/%u,line=%u,dl1=%u/%u,il1=%u/%u,l2=%u/%u,"
      "tlb=%u/%u/%u,page=%u,lat=%u/%u/%u/%u/%u,ov=%.4f,cc=%u/%u/%u/%u,"
      "pj=%.3f/%.3f/%.3f/%.3f/%.3f/%.3f/%.3f/%.3f",
      ProfileSnapshotVersion, Cfg.HotInvocationThreshold,
      Cfg.HotLoopThreshold, Cfg.MaxDeoptsPerFunction, Hw.IssueWidth,
      Hw.InstrQueue, Hw.WindowSize, Hw.OutstandingLoadStores, Hw.LineBytes,
      Hw.Dl1SizeKB, Hw.Dl1Ways, Hw.Il1SizeKB, Hw.Il1Ways, Hw.L2SizeKB,
      Hw.L2Ways, Hw.ItlbEntries, Hw.DtlbEntries, Hw.DtlbWays, Hw.PageBytes,
      Hw.L1LoadLatency, Hw.L2Latency, Hw.MemLatency, Hw.TlbMissPenalty,
      Hw.BranchMispredictPenalty, Hw.StallOverlap, Hw.ClassCacheEntries,
      Hw.ClassCacheWays, Hw.ClassCacheExceptionCost,
      Hw.ClassCacheExceptionFlush, Hw.AluOpPJ, Hw.L1AccessPJ, Hw.L2AccessPJ,
      Hw.MemAccessPJ, Hw.TlbAccessPJ, Hw.BranchPJ, Hw.ClassCachePJ,
      Hw.LeakagePJPerCycle);
  return Buf;
}

uint64_t ccjs::moduleProfileHash(const BytecodeModule &M) {
  uint64_t H = 14695981039346656037ull; // FNV-1a offset basis.
  fnvMixU64(H, M.Functions.size());
  for (const BytecodeFunction &F : M.Functions) {
    fnvMix(H, F.Name.data(), F.Name.size());
    fnvMixU64(H, F.NumParams);
    fnvMixU64(H, F.NumLocals);
    fnvMixU64(H, F.NumSites);
    fnvMixU64(H, F.Code.size());
    for (const Instr &I : F.Code) {
      fnvMixU64(H, static_cast<uint64_t>(I.Op));
      fnvMixU64(H, static_cast<uint64_t>(static_cast<uint32_t>(I.A)));
      fnvMixU64(H, I.B);
      fnvMixU64(H, I.Site);
    }
    fnvMixU64(H, F.Consts.size());
    for (const ConstEntry &C : F.Consts) {
      fnvMixU64(H, static_cast<uint64_t>(C.Kind));
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(C.Num));
      std::memcpy(&Bits, &C.Num, sizeof(Bits));
      fnvMixU64(H, Bits);
      fnvMix(H, C.Str.data(), C.Str.size());
    }
  }
  fnvMixU64(H, M.GlobalNames.size());
  for (const std::string &G : M.GlobalNames)
    fnvMix(H, G.data(), G.size());
  // 0 means "no profile pending"; remap the (astronomically unlikely)
  // real hash 0 so it can never masquerade as that.
  return H == 0 ? 1 : H;
}

std::vector<uint8_t> ccjs::captureProfileSnapshot(const VMState &VM) {
  SnapshotWriter W;
  W.str(snapshotFingerprint(VM.Config));

  // Interned names, ids 1..N-1 in id order (id 0 is the empty string every
  // interner starts with).
  size_t Sec = W.beginSection(SecNames);
  W.u32(static_cast<uint32_t>(VM.Names.size()));
  for (uint32_t Id = 1; Id < VM.Names.size(); ++Id)
    W.str(VM.Names.text(Id));
  W.endSection(Sec);

  // The hidden-class graph: every program-driven shape record in creation
  // order, plus the root maps and the ClassID counter. Map contents are
  // emitted sorted by key — canonical bytes for the determinism gate.
  Sec = W.beginSection(SecShapes);
  W.u32(static_cast<uint32_t>(VM.Shapes.size()));
  // The nine well-known shapes are rebuilt deterministically by the
  // ShapeTable constructor (ids, ClassIds, slot maps), but their
  // *outgoing* transitions are program state — the first property added
  // to a plain object transitions out of plainRoot. Serialize just those
  // edges; losing them would make a warm replica re-mint whole transition
  // chains its donor already owns.
  for (ShapeId Id = 0; Id < NumWellKnownShapes; ++Id) {
    auto RootTrans = sortedPairs(VM.Shapes.get(Id).Transitions);
    W.u32(static_cast<uint32_t>(RootTrans.size()));
    for (const auto &[Name, Child] : RootTrans) {
      W.u32(Name);
      W.u32(Child);
    }
  }
  for (ShapeId Id = NumWellKnownShapes; Id < VM.Shapes.size(); ++Id) {
    const Shape &S = VM.Shapes.get(Id);
    W.u8(static_cast<uint8_t>(S.Kind));
    W.u8(S.ClassId);
    W.u32(S.Parent);
    W.u32(S.AddedName);
    W.u32(S.NumSlots);
    auto Slots = sortedPairs(S.SlotOf);
    W.u32(static_cast<uint32_t>(Slots.size()));
    for (const auto &[Name, Slot] : Slots) {
      W.u32(Name);
      W.u32(Slot);
    }
    auto Trans = sortedPairs(S.Transitions);
    W.u32(static_cast<uint32_t>(Trans.size()));
    for (const auto &[Name, Child] : Trans) {
      W.u32(Name);
      W.u32(Child);
    }
  }
  W.u32(VM.Shapes.nextClassId());
  auto Ctors = sortedPairs(VM.Shapes.constructorRoots());
  W.u32(static_cast<uint32_t>(Ctors.size()));
  for (const auto &[Fn, Root] : Ctors) {
    W.u32(Fn);
    W.u32(Root);
  }
  auto Arrays = sortedPairs(VM.Shapes.arraySiteRoots());
  W.u32(static_cast<uint32_t>(Arrays.size()));
  for (const auto &[Site, Root] : Arrays) {
    W.u64(Site);
    W.u32(Root);
  }
  W.endSection(Sec);

  // Class List host-side index. The entry *images* live in simulated
  // memory and travel with the SecMemory image; HadClassList records
  // whether those images were ever maintained (ClassCache active), so a
  // cross-backend restore knows to rebuild them instead.
  Sec = W.beginSection(SecClassList);
  W.u8(VM.Config.ClassCacheEnabled ? 1 : 0);
  const auto &CS = VM.CList.classShapes();
  W.u32(static_cast<uint32_t>(CS.size()));
  for (const std::vector<ShapeId> &Ids : CS) {
    W.u32(static_cast<uint32_t>(Ids.size()));
    for (ShapeId Id : Ids)
      W.u32(Id);
  }
  W.endSection(Sec);

  // The whole simulated address space, wholesale. Selective capture would
  // *break* byte-identity: a continuously-warmed engine carries the dead
  // bytes of earlier runs, and heap layout (hence cache behaviour) depends
  // on every allocation that ever happened.
  // Dirty resident Class Cache entries are overlaid onto the *copy*: they
  // are logically part of the Class List (the next reload would flush them
  // before invalidating the cache, so a continuously-warmed engine keeps
  // this profiling), but capture must not flush for real — clearing Dirty
  // bits would change the engine's later writeback charges.
  Sec = W.beginSection(SecMemory);
  std::vector<uint8_t> MemImage = VM.Mem.raw();
  VM.CCache.forEachDirty(
      [&](uint8_t ClassId, uint8_t Line, const ClassListEntry &E) {
        uint64_t Off = VM.CList.entryAddr(ClassId, Line) - SimMemory::BaseAddr;
        ClassList::encodeEntry(E, &MemImage[static_cast<size_t>(Off)]);
      });
  W.blob(MemImage.data(), MemImage.size());
  W.endSection(Sec);

  Sec = W.beginSection(SecProfiler);
  auto Profiles = VM.Profiler.captureProfiles();
  W.u64(Profiles.size());
  for (const TypeProfiler::SavedProfile &P : Profiles) {
    W.u64(P.Key);
    W.u8(P.Initialized);
    W.u8(P.Polymorphic);
    W.u32(P.FirstClass);
  }
  W.endSection(Sec);

  // Heap: cumulative allocation stats (in RunStats, never reset) and the
  // constructor slack-tracking hints (they size future allocations).
  Sec = W.beginSection(SecHeap);
  const HeapStats &HS = VM.Heap_.stats();
  W.u64(HS.ObjectsAllocated);
  W.u64(HS.MultiLineObjects);
  W.u64(HS.ObjectBytes);
  W.u64(HS.ExtraHeaderBytes);
  W.u64(HS.HeapNumbersAllocated);
  W.u64(HS.StringsAllocated);
  auto Hints = sortedPairs(VM.Heap_.constructorSlotHints());
  W.u32(static_cast<uint32_t>(Hints.size()));
  for (const auto &[Fn, Slots] : Hints) {
    W.u32(Fn);
    W.u32(Slots);
  }
  W.endSection(Sec);

  // Warmed machine plane: deterministic-random state, the cumulative
  // compile counter, cache tag/LRU images, the same-line memo and the
  // branch-predictor counters. Per-request *stats* (accesses, misses,
  // instruction counters) are excluded — beginServiceRequest resets them
  // on both sides of any comparison.
  Sec = W.beginSection(SecMachine);
  W.u64(VM.RandomState);
  W.u64(VM.OptCompiles);
  W.u64(VM.Ctx.lastLine());
  const auto &Counters = VM.Ctx.predictor().counters();
  W.blob(Counters.data(), Counters.size());
  writeCache(W, VM.Ctx.memory().dl1());
  writeCache(W, VM.Ctx.memory().l2());
  writeCache(W, VM.Ctx.memory().dtlb());
  W.endSection(Sec);

  // Per-function module profile: the state load() resets but profile
  // persistence carries across — type feedback, hotness/tier-up counters,
  // deopt bookkeeping and the BBV version-context seed log. Captured from
  // the live module when one is loaded, else from the pending store a
  // previous restore seeded.
  Sec = W.beginSection(SecModule);
  if (!VM.Funcs.empty()) {
    W.u64(moduleProfileHash(VM.Module));
    W.u32(static_cast<uint32_t>(VM.Funcs.size()));
    for (const FunctionInfo &FI : VM.Funcs) {
      W.u32(static_cast<uint32_t>(FI.Feedback.size()));
      for (const SiteFeedback &FB : FI.Feedback)
        writeSiteFeedback(W, FB);
      W.u32(FI.InvocationCount);
      W.u32(FI.BackEdgeTrips);
      W.u32(FI.DeoptCount);
      W.u8(FI.OptDisabled ? 1 : 0);
      W.u32(static_cast<uint32_t>(FI.BbvSeeds.size()));
      for (const BbvSeed &S : FI.BbvSeeds) {
        W.u32(S.BlockIdx);
        W.u32(static_cast<uint32_t>(S.EntryTags.size()));
        for (uint32_t T : S.EntryTags)
          W.u32(T);
      }
    }
  } else {
    W.u64(VM.PendingProfile.ModuleHash);
    W.u32(static_cast<uint32_t>(VM.PendingProfile.PerFunction.size()));
    for (const VMState::FunctionProfile &P : VM.PendingProfile.PerFunction) {
      W.u32(static_cast<uint32_t>(P.Feedback.size()));
      for (const SiteFeedback &FB : P.Feedback)
        writeSiteFeedback(W, FB);
      W.u32(P.InvocationCount);
      W.u32(P.BackEdgeTrips);
      W.u32(P.DeoptCount);
      W.u8(P.OptDisabled ? 1 : 0);
      W.u32(static_cast<uint32_t>(P.BbvSeeds.size()));
      for (const BbvSeed &S : P.BbvSeeds) {
        W.u32(S.BlockIdx);
        W.u32(static_cast<uint32_t>(S.EntryTags.size()));
        for (uint32_t T : S.EntryTags)
          W.u32(T);
      }
    }
  }
  W.endSection(Sec);

  return W.finish(ProfileSnapshotVersion);
}

bool ccjs::restoreProfileSnapshot(VMState &VM,
                                  const std::vector<uint8_t> &Bytes,
                                  std::string &Err) {
  // Restore composes with a fresh engine only: construction-time state
  // (nine well-known shapes, the empty interned string, the Class List
  // region allocation) must sit exactly where the capturing engine's did.
  if (VM.Names.size() != 1 || VM.Shapes.size() != NumWellKnownShapes ||
      !VM.Funcs.empty()) {
    Err = "snapshot restore requires a freshly constructed engine";
    return false;
  }

  SnapshotReader R;
  if (!R.open(Bytes, ProfileSnapshotVersion, Err))
    return false;

  auto Malformed = [&Err](const char *What) {
    Err = std::string("snapshot rejected: malformed ") + What + " section";
    return false;
  };

  std::string Fingerprint;
  if (!R.str(Fingerprint))
    return Malformed("header");
  std::string Want = snapshotFingerprint(VM.Config);
  if (Fingerprint != Want) {
    Err = "snapshot rejected: config fingerprint mismatch (snapshot '" +
          Fingerprint + "' vs engine '" + Want + "')";
    return false;
  }

  StagedSnapshot St;

  // --- Parse everything into staging; nothing touches the VM yet. ---
  if (!R.enterSection(SecNames))
    return Malformed("names");
  uint32_t NumNames;
  if (!R.u32(NumNames) || NumNames < 1)
    return Malformed("names");
  for (uint32_t Id = 1; Id < NumNames; ++Id) {
    std::string Text;
    if (!R.str(Text))
      return Malformed("names");
    St.Names.push_back(std::move(Text));
  }

  if (!R.enterSection(SecShapes))
    return Malformed("shapes");
  if (!R.u32(St.NumShapesTotal) || St.NumShapesTotal < NumWellKnownShapes)
    return Malformed("shapes");
  St.RootTransitions.resize(NumWellKnownShapes);
  for (uint32_t Id = 0; Id < NumWellKnownShapes; ++Id) {
    uint32_t NumTrans;
    if (!R.u32(NumTrans))
      return Malformed("shapes");
    for (uint32_t I = 0; I < NumTrans; ++I) {
      uint32_t Name, Child;
      if (!R.u32(Name) || !R.u32(Child))
        return Malformed("shapes");
      // Well-known shapes only transition to program-created children.
      if (Child < NumWellKnownShapes || Child >= St.NumShapesTotal)
        return Malformed("shapes");
      St.RootTransitions[Id].emplace_back(Name, Child);
    }
  }
  for (uint32_t Id = NumWellKnownShapes; Id < St.NumShapesTotal; ++Id) {
    Shape S;
    S.Id = Id;
    uint8_t Kind;
    if (!R.u8(Kind) || Kind > static_cast<uint8_t>(ObjectKind::Oddball))
      return Malformed("shapes");
    S.Kind = static_cast<ObjectKind>(Kind);
    uint32_t NumSlots, NumTrans;
    if (!R.u8(S.ClassId) || !R.u32(S.Parent) || !R.u32(S.AddedName) ||
        !R.u32(S.NumSlots))
      return Malformed("shapes");
    if (S.Parent != InvalidShape && S.Parent >= Id)
      return Malformed("shapes"); // Parents precede children.
    if (!R.u32(NumSlots))
      return Malformed("shapes");
    for (uint32_t I = 0; I < NumSlots; ++I) {
      uint32_t Name, Slot;
      if (!R.u32(Name) || !R.u32(Slot))
        return Malformed("shapes");
      S.SlotOf.emplace(Name, Slot);
    }
    if (!R.u32(NumTrans))
      return Malformed("shapes");
    for (uint32_t I = 0; I < NumTrans; ++I) {
      uint32_t Name, Child;
      if (!R.u32(Name) || !R.u32(Child))
        return Malformed("shapes");
      if (Child >= St.NumShapesTotal)
        return Malformed("shapes");
      S.Transitions.emplace(Name, Child);
    }
    St.Shapes.push_back(std::move(S));
  }
  uint32_t NumCtors, NumArrays;
  if (!R.u32(St.NextClassId) || !R.u32(NumCtors))
    return Malformed("shapes");
  for (uint32_t I = 0; I < NumCtors; ++I) {
    uint32_t Fn, Root;
    if (!R.u32(Fn) || !R.u32(Root) || Root >= St.NumShapesTotal)
      return Malformed("shapes");
    St.CtorRoots.emplace_back(Fn, Root);
  }
  if (!R.u32(NumArrays))
    return Malformed("shapes");
  for (uint32_t I = 0; I < NumArrays; ++I) {
    uint64_t Site;
    uint32_t Root;
    if (!R.u64(Site) || !R.u32(Root) || Root >= St.NumShapesTotal)
      return Malformed("shapes");
    St.ArrayRoots.emplace_back(Site, Root);
  }

  if (!R.enterSection(SecClassList))
    return Malformed("class-list");
  uint8_t HadCl;
  uint32_t NumClasses;
  if (!R.u8(HadCl) || !R.u32(NumClasses) || NumClasses != 256)
    return Malformed("class-list");
  St.HadClassList = HadCl != 0;
  St.ClassShapes.resize(NumClasses);
  for (uint32_t C = 0; C < NumClasses; ++C) {
    uint32_t N;
    if (!R.u32(N))
      return Malformed("class-list");
    for (uint32_t I = 0; I < N; ++I) {
      uint32_t Id;
      if (!R.u32(Id) || Id >= St.NumShapesTotal)
        return Malformed("class-list");
      St.ClassShapes[C].push_back(Id);
    }
  }

  if (!R.enterSection(SecMemory) || !R.blob(St.MemImage))
    return Malformed("memory");
  if (St.MemImage.size() < VM.Mem.bytesAllocated()) {
    Err = "snapshot rejected: memory image smaller than the fresh engine's";
    return false;
  }

  if (!R.enterSection(SecProfiler))
    return Malformed("profiler");
  uint64_t NumProfiles;
  if (!R.u64(NumProfiles))
    return Malformed("profiler");
  for (uint64_t I = 0; I < NumProfiles; ++I) {
    TypeProfiler::SavedProfile P;
    if (!R.u64(P.Key) || !R.u8(P.Initialized) || !R.u8(P.Polymorphic) ||
        !R.u32(P.FirstClass))
      return Malformed("profiler");
    St.Profiles.push_back(P);
  }

  if (!R.enterSection(SecHeap))
    return Malformed("heap");
  if (!R.u64(St.HStats.ObjectsAllocated) ||
      !R.u64(St.HStats.MultiLineObjects) || !R.u64(St.HStats.ObjectBytes) ||
      !R.u64(St.HStats.ExtraHeaderBytes) ||
      !R.u64(St.HStats.HeapNumbersAllocated) ||
      !R.u64(St.HStats.StringsAllocated))
    return Malformed("heap");
  uint32_t NumHints;
  if (!R.u32(NumHints))
    return Malformed("heap");
  for (uint32_t I = 0; I < NumHints; ++I) {
    uint32_t Fn, Slots;
    if (!R.u32(Fn) || !R.u32(Slots))
      return Malformed("heap");
    St.SlotHints.emplace_back(Fn, Slots);
  }

  if (!R.enterSection(SecMachine))
    return Malformed("machine");
  if (!R.u64(St.RandomState) || !R.u64(St.OptCompiles) ||
      !R.u64(St.LastLine) || !R.blob(St.Predictor))
    return Malformed("machine");
  if (!readCache(R, St.Dl1) || !readCache(R, St.L2) ||
      !readCache(R, St.Dtlb))
    return Malformed("machine");
  // Geometry must agree with this engine's hardware model. The fingerprint
  // already pins HwConfig, so a mismatch here means a corrupted payload
  // that still passed CRC — reject rather than crash.
  if (St.Predictor.size() != VM.Ctx.predictor().counters().size() ||
      St.Dl1.Lines.size() != VM.Ctx.memory().dl1().lines().size() ||
      St.L2.Lines.size() != VM.Ctx.memory().l2().lines().size() ||
      St.Dtlb.Lines.size() != VM.Ctx.memory().dtlb().lines().size()) {
    Err = "snapshot rejected: machine geometry mismatch";
    return false;
  }

  if (!R.enterSection(SecModule))
    return Malformed("module-profile");
  uint32_t NumFuncs;
  if (!R.u64(St.Module.ModuleHash) || !R.u32(NumFuncs))
    return Malformed("module-profile");
  for (uint32_t F = 0; F < NumFuncs; ++F) {
    VMState::FunctionProfile P;
    uint32_t NumSites;
    if (!R.u32(NumSites))
      return Malformed("module-profile");
    for (uint32_t I = 0; I < NumSites; ++I) {
      SiteFeedback FB;
      if (!readSiteFeedback(R, FB))
        return Malformed("module-profile");
      P.Feedback.push_back(FB);
    }
    uint8_t Disabled;
    if (!R.u32(P.InvocationCount) || !R.u32(P.BackEdgeTrips) ||
        !R.u32(P.DeoptCount) || !R.u8(Disabled))
      return Malformed("module-profile");
    P.OptDisabled = Disabled != 0;
    uint32_t NumSeeds;
    if (!R.u32(NumSeeds))
      return Malformed("module-profile");
    for (uint32_t I = 0; I < NumSeeds; ++I) {
      BbvSeed Seed;
      uint32_t NumTags;
      if (!R.u32(Seed.BlockIdx) || !R.u32(NumTags))
        return Malformed("module-profile");
      for (uint32_t T = 0; T < NumTags; ++T) {
        uint32_t Tag;
        if (!R.u32(Tag))
          return Malformed("module-profile");
        Seed.EntryTags.push_back(Tag);
      }
      P.BbvSeeds.push_back(std::move(Seed));
    }
    St.Module.PerFunction.push_back(std::move(P));
  }

  if (!R.done()) {
    Err = "snapshot rejected: trailing bytes after the last section";
    return false;
  }

  // --- Everything validated; apply. No step below can fail. ---
  for (const std::string &Text : St.Names)
    VM.Names.intern(Text);
  for (Shape &S : St.Shapes)
    VM.Shapes.restoreShape(std::move(S));
  for (uint32_t Id = 0; Id < NumWellKnownShapes; ++Id)
    for (const auto &[Name, Child] : St.RootTransitions[Id])
      VM.Shapes.restoreTransition(Id, Name, Child);
  VM.Shapes.restoreNextClassId(St.NextClassId);
  for (const auto &[Fn, Root] : St.CtorRoots)
    VM.Shapes.restoreConstructorRoot(Fn, Root);
  for (const auto &[Site, Root] : St.ArrayRoots)
    VM.Shapes.restoreArraySiteRoot(Site, Root);

  VM.Mem.restoreRaw(St.MemImage);

  if (VM.Config.ClassCacheEnabled) {
    if (St.HadClassList) {
      // The restored memory already holds the maintained entry images;
      // reattach the host-side index over them.
      VM.CList.restoreClassShapes(std::move(St.ClassShapes));
    } else {
      // Cross-backend restore (snapshot taken without the ClassCache): the
      // restored region holds no entry images. Rebuild them by replaying
      // registration over the whole shape graph in creation order —
      // profile inheritance then sees freshly initialized parents, which
      // is sound (worst case: fewer elisions; the exception mechanism
      // guards anything the replayed profile gets wrong).
      VM.CList.restoreClassShapes(
          std::vector<std::vector<ShapeId>>(St.ClassShapes.size()));
      for (ShapeId Id = 0; Id < VM.Shapes.size(); ++Id)
        VM.CList.onShapeCreated(VM.Shapes, Id);
    }
  }

  VM.Profiler.restoreProfiles(St.Profiles);

  VM.Heap_.restoreStats(St.HStats);
  for (const auto &[Fn, Slots] : St.SlotHints)
    VM.Heap_.restoreConstructorSlotHint(Fn, Slots);

  VM.RandomState = St.RandomState;
  VM.OptCompiles = St.OptCompiles;
  VM.Ctx.setLastLine(St.LastLine);
  VM.Ctx.predictor().restoreCounters(St.Predictor);
  VM.Ctx.memory().dl1().restoreLines(St.Dl1.Lines, St.Dl1.LastBlock);
  VM.Ctx.memory().l2().restoreLines(St.L2.Lines, St.L2.LastBlock);
  VM.Ctx.memory().dtlb().restoreLines(St.Dtlb.Lines, St.Dtlb.LastBlock);

  VM.PendingProfile = std::move(St.Module);
  VM.rebaseBudget();
  return true;
}
