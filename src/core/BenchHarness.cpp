//===- core/BenchHarness.cpp ----------------------------------------------===//
///
/// Thread-safety audit for the parallel fan-out (runIndexed):
///
///  * Engine owns its entire world: one VMState per Engine holds the
///    StringInterner, SimMemory, ShapeTable, Heap, TypeProfiler, ClassList,
///    ClassCache and ExecContext — nothing is shared between instances.
///  * The only function-local static in the measurement path is the
///    workload registry (Workloads.cpp: `static const std::vector<Workload>
///    All`), which is const after its (thread-safe, C++11) initialization.
///    The harness still touches it once up front, before any worker thread
///    starts, so workers only ever read it.
///  * All other statics in src/ are constexpr/const tables.
///
/// Consequently (workload x config) jobs are embarrassingly parallel, and
/// because each job writes only its own result slot and the table/JSON
/// rendering happens serially afterwards in workload order, parallel output
/// is byte-identical to the serial run (asserted by BenchHarnessTest).
///
//===----------------------------------------------------------------------===//

#include "core/BenchHarness.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace ccjs;

//===----------------------------------------------------------------------===//
// Flag parsing
//===----------------------------------------------------------------------===//

static bool parseUnsigned(std::string_view Text, unsigned &Out) {
  if (Text.empty())
    return false;
  unsigned V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + unsigned(C - '0');
  }
  Out = V;
  return true;
}

/// Accepts decimal or 0x-prefixed hex (the natural spelling for a bitmask).
static bool parseMask(std::string_view Text, uint32_t &Out) {
  if (Text.empty() || Text.size() >= 16)
    return false;
  char Buf[16];
  std::memcpy(Buf, Text.data(), Text.size());
  Buf[Text.size()] = '\0';
  char *End = nullptr;
  unsigned long V = std::strtoul(Buf, &End, 0);
  if (End != Buf + Text.size() || V > 0xffffffffUL)
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

bool HarnessOptions::parse(int Argc, char **Argv,
                           const std::function<bool(std::string_view)> &Extra,
                           const char *ExtraUsage) {
  auto Usage = [&](const char *Prog) {
    std::fprintf(stderr,
                 "usage: %s [--jobs=N] [--json=<path>|--json=-] "
                 "[--filter=<suite|workload>] [--host]\n"
                 "          [--dispatch=switch|threaded|fused] "
                 "[--fused-mask=M] [--check-removal=B]%s%s\n"
                 "  --jobs=N    run benchmark jobs on N threads (0 = one per "
                 "hardware thread;\n              output is byte-identical "
                 "to --jobs=1)\n"
                 "  --json=P    also write a machine-readable report "
                 "(schema v%d) to P\n"
                 "  --filter=F  restrict to one suite or one workload "
                 "(exact name)\n"
                 "  --host      attach a host-throughput section (wall-clock, "
                 "simulated\n              instructions per host second) to "
                 "the JSON report\n"
                 "  --dispatch=M  host-side executor dispatch strategy "
                 "(simulated results are\n              byte-identical "
                 "across modes)\n"
                 "  --fused-mask=M  fusion-pattern ablation bitmask (decimal "
                 "or 0x hex;\n              requires --dispatch=fused)\n"
                 "  --check-removal=B  check-removal backend for mechanism "
                 "configs:\n              none|classcache|bbv|both (default: "
                 "each binary's recipe)\n",
                 Prog, *ExtraUsage ? " " : "", ExtraUsage,
                 BenchReportSchemaVersion);
  };
  bool FusedMaskSet = false;
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    if (A.rfind("--jobs=", 0) == 0) {
      if (!parseUnsigned(A.substr(7), Jobs)) {
        std::fprintf(stderr, "%s: invalid --jobs value '%s'\n", Argv[0],
                     Argv[I] + 7);
        return false;
      }
    } else if (A.rfind("--json=", 0) == 0) {
      JsonPath = A.substr(7);
      if (JsonPath.empty()) {
        std::fprintf(stderr, "%s: --json needs a path (or '-')\n", Argv[0]);
        return false;
      }
    } else if (A.rfind("--filter=", 0) == 0) {
      Filter = A.substr(9);
    } else if (A == "--host") {
      Host = true;
    } else if (A.rfind("--dispatch=", 0) == 0) {
      if (!dispatchModeFromName(std::string(A.substr(11)), Dispatch)) {
        std::fprintf(stderr,
                     "%s: --dispatch must be 'switch', 'threaded' or "
                     "'fused', got '%s'\n",
                     Argv[0], Argv[I] + 11);
        return false;
      }
    } else if (A.rfind("--fused-mask=", 0) == 0) {
      if (!parseMask(A.substr(13), FusedMask)) {
        std::fprintf(stderr, "%s: invalid --fused-mask value '%s'\n",
                     Argv[0], Argv[I] + 13);
        return false;
      }
      FusedMaskSet = true;
    } else if (A.rfind("--check-removal=", 0) == 0) {
      if (!checkRemovalBackendFromName(std::string(A.substr(16)),
                                       CheckRemoval)) {
        std::fprintf(stderr,
                     "%s: --check-removal must be 'none', 'classcache', "
                     "'bbv' or 'both', got '%s'\n",
                     Argv[0], Argv[I] + 16);
        return false;
      }
      CheckRemovalSet = true;
    } else if (A == "--help" || A == "-h") {
      Usage(Argv[0]);
      return false;
    } else if (Extra && Extra(A)) {
      // Consumed by the binary-specific handler.
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", Argv[0], Argv[I]);
      Usage(Argv[0]);
      return false;
    }
  }
  // A mask without fused dispatch would be silently inert; refuse it so an
  // ablation sweep cannot accidentally measure the switch loop.
  if (FusedMaskSet && Dispatch != DispatchMode::Fused) {
    std::fprintf(stderr, "%s: --fused-mask requires --dispatch=fused\n",
                 Argv[0]);
    return false;
  }
  // Validate the filter against the registry *now*: a typo must fail before
  // any benchmark work is spent (satellite fix for the old --detail bug).
  if (!Filter.empty()) {
    bool Known = false;
    size_t N = 0;
    const Workload *All = allWorkloads(&N);
    for (size_t I = 0; I < N && !Known; ++I)
      Known = Filter == All[I].Name || Filter == All[I].Suite;
    if (!Known) {
      std::fprintf(stderr,
                   "%s: --filter='%s' matches no suite and no workload\n",
                   Argv[0], Filter.c_str());
      return false;
    }
  }
  return true;
}

unsigned HarnessOptions::effectiveJobs() const {
  if (Jobs != 0)
    return Jobs;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

//===----------------------------------------------------------------------===//
// Parallel execution
//===----------------------------------------------------------------------===//

void ccjs::runIndexed(size_t N, unsigned Jobs,
                      const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  // Touch the workload registry before spawning workers so its one-time
  // initialization happens on this thread (see the audit note above).
  size_t RegistryCount = 0;
  (void)allWorkloads(&RegistryCount);

  if (Jobs <= 1 || N == 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1))
      Fn(I);
  };
  size_t NumThreads = std::min<size_t>(Jobs, N);
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (size_t T = 0; T < NumThreads; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();
}

std::vector<Comparison>
ccjs::compareWorkloads(const std::vector<const Workload *> &Ws,
                       const EngineConfig &Base, unsigned Jobs,
                       int Iterations) {
  std::vector<Comparison> Results(Ws.size());
  runIndexed(Ws.size(), Jobs, [&](size_t I) {
    Results[I] = compareConfigs(Ws[I]->Source, Base, Iterations);
  });
  return Results;
}

std::vector<BenchRun>
ccjs::runWorkloadsSteadyState(const std::vector<const Workload *> &Ws,
                              const EngineConfig &Cfg, unsigned Jobs,
                              int Iterations) {
  std::vector<BenchRun> Results(Ws.size());
  runIndexed(Ws.size(), Jobs, [&](size_t I) {
    Results[I] = runSteadyState(Cfg, Ws[I]->Source, Iterations);
  });
  return Results;
}

//===----------------------------------------------------------------------===//
// Structured reports
//===----------------------------------------------------------------------===//

std::string ccjs::configFingerprint(const EngineConfig &Cfg) {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "v%d:cc=%d,maps=%d,smi=%d,nonsmi=%d,hoist=%d,regs=%u,sw=%d,"
                "hotinv=%u,hotloop=%u,maxdeopt=%u,ccent=%u,ccways=%u",
                BenchReportSchemaVersion, Cfg.ClassCacheEnabled,
                Cfg.ElideCheckMaps, Cfg.ElideCheckSmi, Cfg.ElideCheckNonSmi,
                Cfg.HoistClassIdArray, Cfg.NumArrayClassRegs,
                Cfg.SoftwareOnlyClassCache, Cfg.HotInvocationThreshold,
                Cfg.HotLoopThreshold, Cfg.MaxDeoptsPerFunction,
                Cfg.Hw.ClassCacheEntries, Cfg.Hw.ClassCacheWays);
  return Buf;
}

json::Value ccjs::configToJson(const EngineConfig &Cfg) {
  json::Value J = json::Value::object();
  J.set("fingerprint", configFingerprint(Cfg));
  J.set("class_cache_enabled", Cfg.ClassCacheEnabled);
  J.set("elide_check_maps", Cfg.ElideCheckMaps);
  J.set("elide_check_smi", Cfg.ElideCheckSmi);
  J.set("elide_check_non_smi", Cfg.ElideCheckNonSmi);
  J.set("hoist_class_id_array", Cfg.HoistClassIdArray);
  J.set("num_array_class_regs", Cfg.NumArrayClassRegs);
  J.set("software_only_class_cache", Cfg.SoftwareOnlyClassCache);
  J.set("hot_invocation_threshold", Cfg.HotInvocationThreshold);
  J.set("hot_loop_threshold", Cfg.HotLoopThreshold);
  J.set("class_cache_entries", Cfg.Hw.ClassCacheEntries);
  J.set("class_cache_ways", Cfg.Hw.ClassCacheWays);
  return J;
}

json::Value ccjs::hostToJson(const HostMeasurement &H) {
  json::Value J = json::Value::object();
  J.set("wall_seconds", H.WallSeconds);
  J.set("engine_seconds", H.EngineSeconds);
  J.set("sim_instructions", H.SimInstructions);
  // The headline throughput figure: unmeasurable (null) when the sweep
  // finished too fast for the clock, never a division by zero.
  J.set("sim_instructions_per_host_second",
        H.WallSeconds > 0
            ? json::Value(static_cast<double>(H.SimInstructions) /
                          H.WallSeconds)
            : json::Value());
  J.set("jobs", H.Jobs);
  J.set("dispatch", dispatchModeName(H.Dispatch));
  J.set("executor_dispatches", H.Dispatches);
  J.set("fused_saved_dispatches", H.FusedSavedDispatches);
  J.set("runs_tiered_up", H.RunsTieredUp);
  J.set("warmup_instructions", H.WarmupInstructions);
  J.set("warmup_cycles", H.WarmupCycles);
  return J;
}

json::Value ccjs::statsToJson(const RunStats &S) {
  json::Value J = json::Value::object();

  json::Value Instr = json::Value::object();
  Instr.set("total", S.Instrs.total());
  static const char *const CategoryKeys[NumInstrCategories] = {
      "checks", "tags_untags", "math_assumptions", "other_optimized",
      "rest_of_code"};
  for (unsigned C = 0; C < NumInstrCategories; ++C)
    Instr.set(CategoryKeys[C], S.Instrs.PerCategory[C]);
  Instr.set("optimized_total", S.Instrs.optimizedTotal());
  Instr.set("checks_after_object_load",
            S.Instrs.checksAfterObjectLoadTotal());
  J.set("instructions", std::move(Instr));

  json::Value Cycles = json::Value::object();
  Cycles.set("total", S.CyclesTotal);
  Cycles.set("optimized", S.CyclesOptimized);
  Cycles.set("rest", S.CyclesRest);
  J.set("cycles", std::move(Cycles));

  json::Value Energy = json::Value::object();
  Energy.set("total", S.EnergyTotal.total());
  Energy.set("optimized_total", S.EnergyOptimized.total());
  Energy.set("core", S.EnergyTotal.CorePJ);
  Energy.set("l1", S.EnergyTotal.L1PJ);
  Energy.set("l2", S.EnergyTotal.L2PJ);
  Energy.set("mem", S.EnergyTotal.MemPJ);
  Energy.set("class_cache", S.EnergyTotal.ClassCachePJ);
  Energy.set("leakage", S.EnergyTotal.LeakagePJ);
  J.set("energy_pj", std::move(Energy));

  json::Value Mem = json::Value::object();
  Mem.set("dl1_hit_rate", S.Dl1HitRate);
  Mem.set("l2_hit_rate", S.L2HitRate);
  Mem.set("dtlb_hit_rate", S.DtlbHitRate);
  Mem.set("dl1_accesses", S.Dl1Accesses);
  Mem.set("l2_accesses", S.L2Accesses);
  J.set("mem", std::move(Mem));

  json::Value Cc = json::Value::object();
  Cc.set("accesses", S.CcAccesses);
  Cc.set("misses", S.CcMisses);
  Cc.set("exceptions", S.CcExceptions);
  Cc.set("hit_rate", S.CcHitRate);
  J.set("class_cache", std::move(Cc));

  json::Value Loads = json::Value::object();
  Loads.set("monomorphic_property", S.Loads.MonomorphicProperty);
  Loads.set("non_monomorphic_property", S.Loads.NonMonomorphicProperty);
  Loads.set("monomorphic_elements", S.Loads.MonomorphicElements);
  Loads.set("non_monomorphic_elements", S.Loads.NonMonomorphicElements);
  Loads.set("first_line_loads", S.Loads.FirstLineLoads);
  Loads.set("total_property_loads", S.Loads.TotalPropertyLoads);
  J.set("loads", std::move(Loads));

  json::Value Heap = json::Value::object();
  Heap.set("objects_allocated", S.Heap.ObjectsAllocated);
  Heap.set("multi_line_objects", S.Heap.MultiLineObjects);
  Heap.set("object_bytes", S.Heap.ObjectBytes);
  Heap.set("extra_header_bytes", S.Heap.ExtraHeaderBytes);
  Heap.set("heap_numbers_allocated", S.Heap.HeapNumbersAllocated);
  Heap.set("strings_allocated", S.Heap.StringsAllocated);
  J.set("heap", std::move(Heap));

  J.set("hidden_classes", S.NumHiddenClasses);
  J.set("opt_compiles", S.OptCompiles);
  J.set("deopts", S.Deopts);
  return J;
}

json::Value ccjs::comparisonToJson(const Comparison &C, bool IncludeRuns) {
  json::Value J = json::Value::object();
  J.set("ok", C.valid());
  J.set("outputs_match", C.OutputsMatch);
  // Unmeasurable metrics (zero denominator) serialize as null, never 0.
  J.set("speedup_whole_pct", json::Value(C.SpeedupWhole));
  J.set("speedup_optimized_pct", json::Value(C.SpeedupOptimized));
  J.set("energy_reduction_whole_pct", json::Value(C.EnergyReductionWhole));
  J.set("energy_reduction_optimized_pct",
        json::Value(C.EnergyReductionOptimized));
  if (!C.Baseline.Ok)
    J.set("baseline_error", C.Baseline.Error);
  if (!C.ClassCache.Ok)
    J.set("class_cache_error", C.ClassCache.Error);
  if (IncludeRuns && C.Baseline.Ok)
    J.set("baseline", statsToJson(C.Baseline.Steady));
  if (IncludeRuns && C.ClassCache.Ok)
    J.set("class_cache", statsToJson(C.ClassCache.Steady));
  return J;
}

BenchReport::BenchReport(std::string Generator, const EngineConfig &Cfg)
    : Generator(std::move(Generator)), Config(configToJson(Cfg)) {}

void BenchReport::addComparison(const Workload &W, const Comparison &C,
                                bool IncludeRuns) {
  json::Value E = json::Value::object();
  E.set("name", W.Name);
  E.set("suite", W.Suite);
  E.set("selected", W.Selected);
  E.set("comparison", comparisonToJson(C, IncludeRuns));
  Workloads.push(std::move(E));
}

void BenchReport::addRun(const Workload &W, const BenchRun &R) {
  json::Value E = json::Value::object();
  E.set("name", W.Name);
  E.set("suite", W.Suite);
  E.set("selected", W.Selected);
  E.set("ok", R.Ok);
  if (!R.Ok)
    E.set("error", R.Error);
  else
    E.set("stats", statsToJson(R.Steady));
  Workloads.push(std::move(E));
}

void BenchReport::addEntry(std::string Name, std::string Suite,
                           json::Value Payload) {
  json::Value E = json::Value::object();
  E.set("name", std::move(Name));
  E.set("suite", std::move(Suite));
  E.set("data", std::move(Payload));
  Workloads.push(std::move(E));
}

void BenchReport::setSummary(std::string_view Key, json::Value V) {
  Summary.set(Key, std::move(V));
}

void BenchReport::setMetrics(json::Value V) {
  Metrics = std::move(V);
  HasMetrics = true;
}

void BenchReport::setHost(json::Value V) {
  Host = std::move(V);
  HasHost = true;
}

json::Value BenchReport::toJson() const {
  json::Value J = json::Value::object();
  J.set("schema_version", BenchReportSchemaVersion);
  J.set("generator", Generator);
  J.set("config", Config);
  J.set("workloads", Workloads);
  J.set("summary", Summary);
  // Only present when an engine actually collected metrics: reports from
  // metrics-off runs stay byte-identical to pre-metrics reports.
  if (HasMetrics)
    J.set("metrics", Metrics);
  // Same rule for host throughput: --host runs carry it, default runs are
  // byte-identical to pre-host reports (the CI cmp gates rely on this).
  if (HasHost)
    J.set("host", Host);
  return J;
}

bool BenchReport::write(const std::string &Path, std::string *Err) const {
  std::string Text = toJson().dump(2);
  if (Path == "-") {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return true;
  }
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size() && std::fclose(F) == 0;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}

bool ccjs::validateReport(const json::Value &Report, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (!Report.isObject())
    return Fail("report is not a JSON object");
  const json::Value *Schema = Report.find("schema_version");
  if (!Schema || !Schema->isNumber())
    return Fail("missing numeric schema_version");
  const json::Value *Gen = Report.find("generator");
  if (!Gen || !Gen->isString())
    return Fail("missing generator");
  const json::Value *Fp = Report.findPath("config.fingerprint");
  if (!Fp || !Fp->isString())
    return Fail("missing config.fingerprint");
  const json::Value *Ws = Report.find("workloads");
  if (!Ws || !Ws->isArray())
    return Fail("missing workloads array");
  for (const json::Value &W : Ws->elements()) {
    const json::Value *Name = W.find("name");
    if (!Name || !Name->isString())
      return Fail("workload entry without a name");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Report diffing
//===----------------------------------------------------------------------===//

namespace {

enum class MetricKind {
  /// Value is already percentage points; higher is better (speedups,
  /// energy reductions). Movement is measured in points.
  PointsHigherBetter,
  /// Value is a 0..1 rate; higher is better. Movement measured in points
  /// (delta * 100).
  RateHigherBetter,
  /// Absolute quantity; lower is better. Movement measured in relative
  /// percent of the old value.
  RelativeLowerBetter,
};

struct MetricSpec {
  const char *Path;
  MetricKind Kind;
};

/// Improvement of a metric in "tolerance units" (percentage points or
/// relative percent); positive = better.
double improvementOf(const MetricSpec &M, double Old, double New) {
  switch (M.Kind) {
  case MetricKind::PointsHigherBetter:
    return New - Old;
  case MetricKind::RateHigherBetter:
    return (New - Old) * 100.0;
  case MetricKind::RelativeLowerBetter:
    return Old != 0 ? (Old - New) / Old * 100.0 : 0.0;
  }
  return 0;
}

} // namespace

DiffResult ccjs::diffReports(const json::Value &Old, const json::Value &New,
                             double Tolerance, bool IgnoreMetrics) {
  DiffResult R;
  std::string Err;
  if (!validateReport(Old, &Err)) {
    R.Comparable = false;
    R.Error = "old report invalid: " + Err;
    return R;
  }
  if (!validateReport(New, &Err)) {
    R.Comparable = false;
    R.Error = "new report invalid: " + Err;
    return R;
  }
  auto Mismatch = [&](const char *What, const std::string &A,
                      const std::string &B) {
    R.Comparable = false;
    R.Error = std::string(What) + " differs: '" + A + "' vs '" + B + "'";
  };
  std::string OldSchema =
      json::formatNumber(Old.find("schema_version")->asNumber());
  std::string NewSchema =
      json::formatNumber(New.find("schema_version")->asNumber());
  if (OldSchema != NewSchema)
    return Mismatch("schema_version", OldSchema, NewSchema), R;
  if (Old.find("generator")->asString() != New.find("generator")->asString())
    return Mismatch("generator", Old.find("generator")->asString(),
                    New.find("generator")->asString()),
           R;
  if (Old.findPath("config.fingerprint")->asString() !=
      New.findPath("config.fingerprint")->asString())
    return Mismatch("config.fingerprint",
                    Old.findPath("config.fingerprint")->asString(),
                    New.findPath("config.fingerprint")->asString()),
           R;

  // The metrics the perf gate watches. Comparison metrics live under
  // "comparison"; per-run stats under "stats" (single-run reports) or the
  // comparison's embedded runs.
  static const MetricSpec Specs[] = {
      {"comparison.speedup_whole_pct", MetricKind::PointsHigherBetter},
      {"comparison.speedup_optimized_pct", MetricKind::PointsHigherBetter},
      {"comparison.energy_reduction_whole_pct",
       MetricKind::PointsHigherBetter},
      {"comparison.energy_reduction_optimized_pct",
       MetricKind::PointsHigherBetter},
      {"comparison.class_cache.cycles.total",
       MetricKind::RelativeLowerBetter},
      {"comparison.class_cache.energy_pj.total",
       MetricKind::RelativeLowerBetter},
      {"comparison.class_cache.mem.dl1_hit_rate",
       MetricKind::RateHigherBetter},
      {"comparison.class_cache.class_cache.hit_rate",
       MetricKind::RateHigherBetter},
      {"stats.cycles.total", MetricKind::RelativeLowerBetter},
      {"stats.energy_pj.total", MetricKind::RelativeLowerBetter},
      {"stats.instructions.total", MetricKind::RelativeLowerBetter},
      {"stats.mem.dl1_hit_rate", MetricKind::RateHigherBetter},
      {"stats.mem.l2_hit_rate", MetricKind::RateHigherBetter},
      {"stats.mem.dtlb_hit_rate", MetricKind::RateHigherBetter},
      {"stats.class_cache.hit_rate", MetricKind::RateHigherBetter},
  };

  const json::Value &NewWs = *New.find("workloads");
  auto FindNew = [&](const std::string &Name) -> const json::Value * {
    for (const json::Value &W : NewWs.elements())
      if (W.find("name")->asString() == Name)
        return &W;
    return nullptr;
  };

  for (const json::Value &OldW : Old.find("workloads")->elements()) {
    const std::string &Name = OldW.find("name")->asString();
    const json::Value *NewW = FindNew(Name);
    if (!NewW) {
      R.Notes.push_back("workload '" + Name + "' missing from new report");
      continue;
    }
    for (const MetricSpec &M : Specs) {
      const json::Value *OldV = OldW.findPath(M.Path);
      const json::Value *NewV = NewW->findPath(M.Path);
      if (!OldV && !NewV)
        continue;
      // A metric that was measurable and became null (or vanished) is a
      // regression in its own right: the run stopped being measurable.
      bool OldNum = OldV && OldV->isNumber();
      bool NewNum = NewV && NewV->isNumber();
      if (OldNum != NewNum) {
        DiffEntry E;
        E.Workload = Name;
        E.Metric = M.Path;
        E.OldValue = OldNum ? OldV->asNumber() : 0;
        E.NewValue = NewNum ? NewV->asNumber() : 0;
        E.Delta = 0;
        E.Regression = OldNum; // Lost a previously measurable metric.
        if (E.Regression)
          R.Changes.push_back(E);
        else
          R.Notes.push_back("workload '" + Name + "' metric '" + M.Path +
                            "' newly measurable");
        continue;
      }
      if (!OldNum)
        continue;
      ++R.MetricsCompared;
      double Improvement = improvementOf(M, OldV->asNumber(),
                                         NewV->asNumber());
      if (Improvement == 0)
        continue;
      DiffEntry E;
      E.Workload = Name;
      E.Metric = M.Path;
      E.OldValue = OldV->asNumber();
      E.NewValue = NewV->asNumber();
      E.Delta = Improvement;
      E.Regression = Improvement < -Tolerance;
      R.Changes.push_back(E);
    }
  }
  for (const json::Value &NewW : NewWs.elements()) {
    const std::string &Name = NewW.find("name")->asString();
    bool InOld = false;
    for (const json::Value &OldW : Old.find("workloads")->elements())
      if (OldW.find("name")->asString() == Name) {
        InOld = true;
        break;
      }
    if (!InOld)
      R.Notes.push_back("workload '" + Name + "' only in new report");
  }

  // Report-level metrics section (engine counters). Only the failure-shaped
  // counters gate: more deopts or more invalidation work is a behavioral
  // regression even when the headline cycle counts still pass; everything
  // else (tier_ups, elided-check counts...) is informational movement.
  if (!IgnoreMetrics) {
    const json::Value *OldC = Old.findPath("metrics.counters");
    const json::Value *NewC = New.findPath("metrics.counters");
    if ((OldC != nullptr) != (NewC != nullptr)) {
      R.Notes.push_back(std::string("metrics section only in ") +
                        (OldC ? "old" : "new") + " report");
    } else if (OldC && NewC && OldC->isObject() && NewC->isObject()) {
      auto Gates = [](const std::string &Name) {
        return Name.rfind("deopts", 0) == 0 ||
               Name.rfind("invalidation", 0) == 0;
      };
      for (const auto &[Name, OldV] : OldC->members()) {
        const json::Value *NewV = NewC->find(Name);
        if (!OldV.isNumber() || !NewV || !NewV->isNumber())
          continue;
        ++R.MetricsCompared;
        double OldN = OldV.asNumber(), NewN = NewV->asNumber();
        if (OldN == NewN)
          continue;
        DiffEntry E;
        E.Workload = "<metrics>";
        E.Metric = "counters." + Name;
        E.OldValue = OldN;
        E.NewValue = NewN;
        // Counters are lower-is-better for gating purposes; sign-adjust so
        // negative == worse, in relative percent of the old value.
        E.Delta = OldN != 0 ? (OldN - NewN) / OldN * 100.0
                            : (NewN > OldN ? -100.0 : 100.0);
        E.Regression = Gates(Name) && E.Delta < -Tolerance;
        R.Changes.push_back(E);
      }
      for (const auto &[Name, NewV] : NewC->members())
        if (!OldC->find(Name))
          R.Notes.push_back("metrics counter '" + Name +
                            "' only in new report");
    }
  }
  return R;
}
