//===- core/Engine.cpp ----------------------------------------------------===//

#include "core/Engine.h"

#include "bytecode/Compiler.h"
#include "core/ProfileSnapshot.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "jit/FusionPass.h"
#include "jit/Jit.h"
#include "jit/OptIr.h"
#include "runtime/Operations.h"
#include "support/Assert.h"
#include "vm/Builtins.h"

#include <cstdio>
#include <cstdlib>

using namespace ccjs;

namespace {

/// CCJS_DEBUG_DEOPT observer: prints every deopt to stderr. Stateless, so
/// one process-wide instance serves every engine.
struct DebugDeoptPrinter : EngineObserver {
  void onDeopt(VMState &, const DeoptEvent &E) override {
    std::fprintf(stderr, "deopt fn=%u ir=%u bc=%u failure=%d count=%u %s\n",
                 E.FuncIndex, E.IrIndex, E.ResumeBcPc, E.Failure,
                 E.PriorDeoptCount, deoptReasonName(E.Reason));
  }
};

} // namespace

Engine::Engine(const EngineConfig &Config)
    : VM(std::make_unique<VMState>(Config)) {
  VM->Invoke = &Engine::dispatchInvoke;
  VM->InterpretFrom = &ccjs::interpretFrom;
  VM->CallBuiltinFn = &ccjs::callBuiltin;
  VM->InvalidationService = &Engine::handleInvalidation;
  VM->GenericCallMethod = &Engine::genericCallMethod;

  // The environment is consulted once per process (deopts are hot); the
  // printer is an ordinary observer, coexisting with tracer/auditor/test
  // captures instead of stealing a hook slot.
  static const bool DebugDeoptEnv = std::getenv("CCJS_DEBUG_DEOPT") != nullptr;
  static DebugDeoptPrinter DebugPrinter;
  if (DebugDeoptEnv)
    VM->addObserver(&DebugPrinter);

  // The opcode-adjacency histogram is sized by the IR opcode space, which
  // the vm layer cannot see; the engine (which links the jit) constructs it.
  if (VM->Config.OpHistEnabled)
    VM->OpHist = std::make_unique<PairHistogram>(NumIrOpcodes);

  if (VM->Config.ClassCacheEnabled) {
    VM->CList.bootstrapExisting(VM->Shapes);
    ClassList *CL = &VM->CList;
    ClassCache *CC = &VM->CCache;
    ShapeTable *ST = &VM->Shapes;
    VM->Shapes.setCreationHook([CL, CC, ST](ShapeId Id) {
      // Synchronize the parent's (possibly dirty) Class Cache entries to
      // memory before the new class inherits its profile.
      ShapeId Parent = ST->get(Id).Parent;
      if (Parent != InvalidShape &&
          ST->get(Parent).ClassId < UntrackedClassId)
        CC->writebackClass(ST->get(Parent).ClassId);
      CL->onShapeCreated(*ST, Id);
    });
  }

  // Warm start: restore a profile snapshot into the freshly constructed
  // state. Runs last so everything it touches (shapes, Class List, memory,
  // machine models) is fully assembled. Rejection is a clean cold start:
  // restore validates the whole payload before applying anything.
  if (VM->Config.ProfileSnapshot) {
    if (!restoreProfileSnapshot(*VM, *VM->Config.ProfileSnapshot,
                                SnapshotRestoreErr))
      CCJS_ASSERT(!SnapshotRestoreErr.empty(),
                  "snapshot rejection must carry a reason");
  }
}

//===----------------------------------------------------------------------===//
// Engine::Options
//===----------------------------------------------------------------------===//

bool Engine::Options::validate(std::string *Err) const {
  auto Fail = [&](const char *Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (Cfg.SoftwareOnlyClassCache && !Cfg.ClassCacheEnabled)
    return Fail("software-only Class Cache requires the Class Cache");
  if (Cfg.bbvOn() && Cfg.BbvMaxVersions == 0)
    return Fail("BBV version cap must be at least 1");
  // The register budget only matters when hoisting is on (the no-hoisting
  // ablation legitimately runs with zero registers).
  if (Cfg.HoistClassIdArray &&
      (Cfg.NumArrayClassRegs < 1 || Cfg.NumArrayClassRegs > 8))
    return Fail("regArrayObjectClassId register count must be in [1, 8]");
  if (Cfg.MaxDeoptsPerFunction == 0)
    return Fail("MaxDeoptsPerFunction must be at least 1");
  if (Cfg.Hw.IssueWidth < 1)
    return Fail("issue width must be at least 1");
  if (Cfg.Hw.ClassCacheWays == 0 || Cfg.Hw.ClassCacheEntries == 0)
    return Fail("Class Cache geometry must be non-zero");
  if (Cfg.Hw.ClassCacheEntries % Cfg.Hw.ClassCacheWays != 0)
    return Fail("Class Cache entries must be a multiple of the ways");
  for (unsigned P = 0; P < NumFaultPoints; ++P)
    if (Cfg.Faults.Schedule[P] < -1)
      return Fail("fault schedules are -1 (off), 0 (derived) or a period");
  if (Cfg.Trace.Enabled && Cfg.Trace.Capacity == 0)
    return Fail("trace ring capacity must be non-zero");
  if (Cfg.Trace.Enabled &&
      (Cfg.Trace.Mask == 0 ||
       Cfg.Trace.Mask >= (1u << NumTraceEventKinds)))
    return Fail("trace mask selects no known event kind");
  // A call-depth budget at or above the engine's hard recursion guard
  // could never trip before the guard's "stack overflow" halt, which is
  // not the clean reusable BudgetExceeded stop the caller asked for.
  if (Cfg.Budget.MaxCallDepth &&
      Cfg.Budget.MaxCallDepth >= VMState::MaxCallDepth)
    return Fail("call-depth budget must be below the engine recursion limit");
  return true;
}

EngineConfig Engine::Options::build() const {
  std::string Err;
  bool Ok = validate(&Err);
  CCJS_ASSERT(Ok, "invalid Engine::Options");
  (void)Ok;
  return Cfg;
}

Engine::Engine(const Options &Opts) : Engine(Opts.build()) {}

/// Frees optimized code that was replaced while still potentially live on
/// the C++ stack. Only called when no JS frames are active.
static void reclaimRetiredOpt(VMState &VM) {
  assert(VM.CallDepth == 0 && "reclaiming code with frames on the stack");
  for (OptCode *Code : VM.RetiredOpt)
    delete Code;
  VM.RetiredOpt.clear();
}

Engine::~Engine() {
  for (FunctionInfo &FI : VM->Funcs)
    delete FI.Opt;
  reclaimRetiredOpt(*VM);
}

bool Engine::load(std::string_view Source) {
  // A (re)load fully resets program state, making the engine reusable
  // after a runtime error: optimized code, feedback, hotness and deopt
  // bookkeeping, accumulated output and the halt latch all belong to the
  // previous program. Profiled hardware state (shapes, Class List images,
  // caches) persists — except speculation dependencies, which record
  // function indices of the old module and would deoptimize (or index out
  // of bounds in) the new function table.
  // Warm-replica contract: under ProfilePersistence, the outgoing module's
  // per-function profile (feedback, hotness, deopt bookkeeping, BBV seeds)
  // is parked keyed by the module's structural hash, and reinstalled below
  // if the incoming module hashes identically. OptIR is never parked — it
  // is recompiled deterministically from the profile at the next hot call.
  if (VM->Config.ProfilePersistence && !VM->Funcs.empty()) {
    VMState::ModuleProfile Park;
    Park.ModuleHash = moduleProfileHash(VM->Module);
    Park.PerFunction.resize(VM->Funcs.size());
    for (size_t I = 0; I < VM->Funcs.size(); ++I) {
      FunctionInfo &FI = VM->Funcs[I];
      VMState::FunctionProfile &P = Park.PerFunction[I];
      P.Feedback = FI.Feedback;
      P.InvocationCount = FI.InvocationCount;
      P.BackEdgeTrips = FI.BackEdgeTrips;
      P.DeoptCount = FI.DeoptCount;
      P.OptDisabled = FI.OptDisabled;
      P.BbvSeeds = FI.BbvSeeds;
    }
    VM->PendingProfile = std::move(Park);
  }
  for (FunctionInfo &FI : VM->Funcs)
    delete FI.Opt;
  reclaimRetiredOpt(*VM);
  VM->Funcs.clear();
  VM->Module = BytecodeModule();
  VM->Halted = false;
  VM->Error.clear();
  VM->Output.clear();
  VM->CallDepth = 0;
  if (VM->Config.ClassCacheEnabled) {
    VM->CCache.invalidateAll();
    VM->CList.clearSpeculations();
  }

  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.Ok) {
    VM->halt("syntax error at line " + std::to_string(Parsed.ErrorLine) +
             ": " + Parsed.Error);
    return false;
  }
  CompileResult Compiled = compileProgram(Parsed.Prog, VM->Names);
  if (!Compiled.Ok) {
    VM->halt("compile error: " + Compiled.Error);
    return false;
  }
  VM->Module = std::move(Compiled.Module);

  VM->Funcs.resize(VM->Module.Functions.size());
  for (size_t I = 0; I < VM->Module.Functions.size(); ++I)
    VM->Funcs[I].Fn = &VM->Module.Functions[I];

  // Globals live in simulated memory; initialize to undefined.
  VM->NumGlobals = static_cast<uint32_t>(VM->Module.GlobalNames.size());
  VM->GlobalsAddr =
      VM->Mem.allocate(std::max<uint64_t>(VM->NumGlobals, 1) * 8, 64);
  for (uint32_t I = 0; I < VM->NumGlobals; ++I)
    VM->writeGlobal(I, VM->Heap_.undefined());

  // Bind declared functions and the runtime globals.
  for (size_t I = 1; I < VM->Module.Functions.size(); ++I) {
    const BytecodeFunction &F = VM->Module.Functions[I];
    auto It = VM->Module.GlobalIndexOf.find(F.Name);
    assert(It != VM->Module.GlobalIndexOf.end() &&
           "function name missing from globals");
    VM->writeGlobal(It->second,
                    VM->Heap_.allocFunction(static_cast<uint32_t>(I)));
  }
  installRuntimeGlobals(*VM);

  for (FunctionInfo &FI : VM->Funcs)
    FI.Feedback.assign(FI.Fn->NumSites, SiteFeedback());

  // Reinstall the parked profile when the incoming module matches it
  // structurally (same hash, same function count). A mismatch is a cold
  // start for this program — sound, just unwarmed. The parked profile is
  // kept either way: it may match a later load.
  if (VM->Config.ProfilePersistence && VM->PendingProfile.ModuleHash != 0 &&
      VM->PendingProfile.ModuleHash == moduleProfileHash(VM->Module) &&
      VM->PendingProfile.PerFunction.size() == VM->Funcs.size()) {
    for (size_t I = 0; I < VM->Funcs.size(); ++I) {
      const VMState::FunctionProfile &P = VM->PendingProfile.PerFunction[I];
      FunctionInfo &FI = VM->Funcs[I];
      if (P.Feedback.size() != FI.Fn->NumSites)
        continue;
      FI.Feedback = P.Feedback;
      FI.InvocationCount = P.InvocationCount;
      FI.BackEdgeTrips = P.BackEdgeTrips;
      FI.DeoptCount = P.DeoptCount;
      FI.OptDisabled = P.OptDisabled;
      FI.BbvSeeds = P.BbvSeeds;
    }
  }
  // Budgets meter each loaded program from its own start line, not from
  // engine construction — a pooled engine's accumulated counters must not
  // charge earlier requests' work to this one.
  VM->rebaseBudget();
  return true;
}

void Engine::beginServiceRequest() {
  // Measurement counters (simulated and host-side) restart at zero, so the
  // request's stats() describe only its own execution.
  resetStats();
  // The fault stream keeps rolling (occurrence counters and schedules are
  // warm-profile state) but the trip log and fired totals restart: a
  // request's quarantine decision must attribute only its own trips.
  if (VM->FaultInj)
    VM->FaultInj->clearTrips();
  // Metric exports restart byte-identical to a fresh engine's.
  if (VM->Metrics)
    VM->Metrics->reset();
  VM->rebaseBudget();
  // Degradation pins are per-request; the pool re-pins under pressure.
  VM->TierPinned = false;
}

bool Engine::runTopLevel() {
  if (VM->Halted)
    return false;
  interpretCall(*VM, 0, VM->Heap_.undefined(), nullptr, 0);
  VM->CallDepth = 0; // A halt may have unwound without popping frames.
  reclaimRetiredOpt(*VM);
  return !VM->Halted;
}

Value Engine::callGlobal(const std::string &Name,
                         const std::vector<Value> &Args) {
  // A halted VM stays halted until the next load(); calling into it is a
  // defined no-op. lastError() is refreshed to say so — previously it kept
  // the *prior* failure verbatim, indistinguishable from this call having
  // failed that way itself. The original error is preserved inside the
  // message (once, not re-wrapped on repeated calls).
  if (VM->Halted) {
    if (VM->Error.rfind("engine halted", 0) != 0)
      VM->Error = "engine halted (was: " + VM->Error + ")";
    return VM->Heap_.undefined();
  }
  auto It = VM->Module.GlobalIndexOf.find(Name);
  if (It == VM->Module.GlobalIndexOf.end()) {
    VM->halt("no global named '" + Name + "'");
    return VM->Heap_.undefined();
  }
  Value Callee = VM->readGlobal(It->second);
  if (!Callee.isPointer() || !VM->Heap_.isFunction(Callee)) {
    VM->halt("global '" + Name + "' is not a function");
    return VM->Heap_.undefined();
  }
  uint32_t Target = VM->Heap_.functionIndex(Callee.asPointer());
  if (isBuiltinIndex(Target))
    return callBuiltin(*VM, Target, VM->Heap_.undefined(), Args.data(),
                       static_cast<uint32_t>(Args.size()));
  return dispatchInvoke(*VM, Target, VM->Heap_.undefined(), Args.data(),
                        static_cast<uint32_t>(Args.size()));
}

//===----------------------------------------------------------------------===//
// Tier dispatch
//===----------------------------------------------------------------------===//

Value Engine::dispatchInvoke(VMState &VM, uint32_t FuncIndex, Value ThisV,
                             const Value *Args, uint32_t Argc) {
  FunctionInfo &FI = VM.Funcs[FuncIndex];
  // Graceful degradation (service mode): a tier-pinned engine neither
  // enters existing optimized code nor tiers up — every call runs in the
  // baseline interpreter. Hotness counters still accumulate, so the
  // function tiers up normally once the pin is lifted.
  if (VM.TierPinned) {
    ++FI.InvocationCount;
    return interpretCall(VM, FuncIndex, ThisV, Args, Argc);
  }
  if (FI.Opt && FI.OptValid)
    return runOptimized(VM, FuncIndex, ThisV, Args, Argc);

  ++FI.InvocationCount;
  bool Hot = FI.InvocationCount > VM.Config.HotInvocationThreshold ||
             FI.BackEdgeTrips > VM.Config.HotLoopThreshold;
  if (Hot && !FI.OptDisabled) {
    // Budget safepoint at the tier-up boundary: optimizing compiles are
    // the most expensive host-side step a request can trigger, so the
    // budgets get one more look before committing to one.
    if (VM.BudgetArmed && VM.checkBudgetAt(BudgetSafepoint::TierUp))
      return VM.Heap_.undefined();
    // Chaos: let recorded feedback go stale right before the compiler
    // consumes it. The poisons only drop or over-generalize facts, so the
    // compiled code may speculate wrongly but its guards must catch it.
    if (VM.FaultInj)
      for (SiteFeedback &FB : FI.Feedback)
        if (VM.FaultInj->fire(FaultPoint::StaleFeedback))
          poisonSiteFeedback(FB, VM.FaultInj->auxRandom());
    // Outer recursive activations may still be executing the replaced
    // code; retire it instead of freeing under their feet.
    if (FI.Opt)
      VM.RetiredOpt.push_back(FI.Opt);
    FI.Opt = compileOptimized(VM, FuncIndex);
    FI.OptValid = FI.Opt != nullptr;
    ++VM.OptCompiles;
    TierUpEvent Ev{FuncIndex, FI.InvocationCount, FI.OptValid,
                   FI.Opt ? FI.Opt->ChecksElidedClassCache : 0,
                   FI.Opt ? FI.Opt->ChecksElidedClassic : 0};
    if (VM.Metrics) {
      ++VM.Metrics->counter("tier_ups");
      VM.Metrics->counter("checks_elided_class_cache") +=
          Ev.ChecksElidedClassCache;
      VM.Metrics->counter("checks_elided_classic") += Ev.ChecksElidedClassic;
      const std::string &Name = FI.Fn->Name;
      VM.Metrics->counter("elided_cc.fn." +
                          (Name.empty() ? "<toplevel>" : Name)) +=
          Ev.ChecksElidedClassCache;
    }
    // Tier-up boundary: the compile just registered its speculations, so
    // observers (auditor included) see the committed state.
    VM.notifyTierUp(Ev);
    if (FI.OptValid) {
      // A warm-started function (hotness restored by profile persistence
      // or a snapshot) can reach the optimizing tier on its very first
      // call — the baseline tier, which materializes the constant pool
      // lazily, may never have run it. No-op on cold paths: tier-up
      // otherwise only follows interpreted calls.
      materializeConsts(VM, FI);
      return runOptimized(VM, FuncIndex, ThisV, Args, Argc);
    }
  }
  return interpretCall(VM, FuncIndex, ThisV, Args, Argc);
}

void Engine::handleInvalidation(VMState &VM, uint8_t ClassId, uint8_t Line,
                                uint8_t Pos) {
  // The invalidation walk reads and rewrites Class List *memory* images,
  // but resident Class Cache entries can be ahead of memory in
  // InitMap/Props profiling. Walking stale images and syncing them back
  // would silently drop that profiling, letting a later store
  // re-initialize an already-polymorphic slot as monomorphic — an unsound
  // elision. The exception routine therefore synchronizes the cache first
  // (the triggering entry and any dirty descendants).
  VM.CCache.flushDirty();
  std::vector<std::pair<uint8_t, uint8_t>> Touched;
  std::vector<uint32_t> Deopt = VM.CList.invalidateWithDescendants(
      VM.Shapes, ClassId, Line, Pos, Touched);
  for (const auto &[C, L] : Touched)
    VM.CCache.syncInvalidatedEntry(C, L);
  // The exception routine runs in the runtime; a bare invalidation with no
  // dependent functions is a short interrupt.
  VM.Ctx.alu(InstrCategory::RestOfCode,
             Deopt.empty() ? 30 : VM.Config.Hw.ClassCacheExceptionCost);
  for (uint32_t F : Deopt) {
    FunctionInfo &FI = VM.Funcs[F];
    FI.OptValid = false;
    // Unlike a stale-feedback deopt, the code itself was correct; it will
    // be recompiled immediately without the broken assumption.
  }
  if (VM.Metrics) {
    ++VM.Metrics->counter("invalidations");
    VM.Metrics->counter("invalidation_deopts") += Deopt.size();
    VM.Metrics->histogram("invalidation_fanout")
        .observe(static_cast<double>(Deopt.size()));
  }
  VM.notifyInvalidation(
      InvalidationEvent{ClassId, Line, Pos,
                        static_cast<uint32_t>(Touched.size()),
                        static_cast<uint32_t>(Deopt.size())});
}

Value Engine::genericCallMethod(VMState &VM, Value Receiver, uint32_t Name,
                                const Value *Args, uint32_t Argc) {
  Heap &H = VM.Heap_;
  std::string_view NameText = VM.Names.text(Name);

  if (Receiver.isPointer() && H.isString(Receiver)) {
    static const std::pair<std::string_view, BuiltinId> StringMethods[] = {
        {"charCodeAt", BuiltinId::StrCharCodeAt},
        {"charAt", BuiltinId::StrCharAt},
        {"substring", BuiltinId::StrSubstring},
        {"indexOf", BuiltinId::StrIndexOf},
        {"split", BuiltinId::StrSplit},
        {"toUpperCase", BuiltinId::StrToUpperCase},
        {"toLowerCase", BuiltinId::StrToLowerCase},
    };
    for (const auto &[MName, Id] : StringMethods)
      if (NameText == MName)
        return callBuiltin(VM, indexOfBuiltin(Id), Receiver, Args, Argc);
    VM.halt("unknown string method '" + std::string(NameText) + "'");
    return H.undefined();
  }

  if (!Receiver.isPointer() || !H.isPlainObject(Receiver)) {
    VM.halt("method call on a non-object value");
    return H.undefined();
  }
  uint64_t Addr = Receiver.asPointer();
  std::optional<uint32_t> Found =
      VM.Shapes.lookup(H.shapeOf(Addr), Name);
  if (Found) {
    Value Method = H.getSlot(Addr, *Found);
    if (Method.isPointer() && H.isFunction(Method)) {
      VM.Ctx.load(InstrCategory::RestOfCode,
                  H.slotAddress(Addr, *Found, nullptr));
      uint32_t Target = H.functionIndex(Method.asPointer());
      if (isBuiltinIndex(Target))
        return callBuiltin(VM, Target, Receiver, Args, Argc);
      return VM.Invoke(VM, Target, Receiver, Args, Argc);
    }
  }
  static const std::pair<std::string_view, BuiltinId> ArrayMethods[] = {
      {"push", BuiltinId::ArrPush},
      {"pop", BuiltinId::ArrPop},
      {"join", BuiltinId::ArrJoin},
      {"indexOf", BuiltinId::ArrIndexOf},
  };
  for (const auto &[MName, Id] : ArrayMethods)
    if (NameText == MName)
      return callBuiltin(VM, indexOfBuiltin(Id), Receiver, Args, Argc);
  VM.halt("call of missing method '" + std::string(NameText) + "'");
  return H.undefined();
}

std::vector<uint8_t> Engine::snapshotProfile() const {
  return captureProfileSnapshot(*VM);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

void Engine::resetStats() {
  VM->Ctx.resetStats();
  VM->Profiler.resetLoadCounts();
  // Host-side observation resets with the simulated counters so a
  // warm-up/measure split reports dispatch counts for the measured
  // iteration only.
  VM->HostDispatches = 0;
  VM->HostFusedSaved = 0;
  if (VM->OpHist)
    VM->OpHist->reset();
}

void Engine::flushHostMetrics() {
  if (!VM->Metrics)
    return;
  // `host.` counters are excluded from default metric exports (see
  // MetricsRegistry::isHostMetric), so flushing them never perturbs the
  // cross-mode equivalence images; surfaces that want them pass
  // IncludeHost=true when rendering.
  VM->Metrics->counter("host.dispatch.executor") = VM->HostDispatches;
  VM->Metrics->counter("host.dispatch.fused_saved") = VM->HostFusedSaved;
  if (VM->OpHist)
    exportOpPairHistogram(*VM->OpHist, *VM->Metrics, 32);
}

RunStats Engine::stats() const {
  RunStats S;
  const ExecContext &Ctx = VM->Ctx;
  S.Instrs = Ctx.instrs();
  S.CyclesOptimized = Ctx.optimizedCycles();
  S.CyclesRest = Ctx.restCycles();
  S.CyclesTotal = Ctx.totalCycles();
  S.EnergyTotal = EnergyModel::total(Ctx);
  S.EnergyOptimized = EnergyModel::optimizedOnly(Ctx);
  S.Loads = VM->Profiler.summarize();

  S.Dl1HitRate = Ctx.memory().dl1().hitRate();
  S.L2HitRate = Ctx.memory().l2().hitRate();
  S.DtlbHitRate = Ctx.memory().dtlb().hitRate();
  S.Dl1Accesses = Ctx.memory().dl1().accesses();
  S.L2Accesses = Ctx.memory().l2().accesses();

  S.CcAccesses = VM->CCache.accesses();
  S.CcMisses = VM->CCache.misses();
  S.CcExceptions = VM->CCache.exceptions();
  S.CcHitRate = VM->CCache.hitRate();

  S.NumHiddenClasses = VM->Shapes.numPlainShapes();
  S.Heap = VM->Heap_.stats();
  S.OptCompiles = VM->OptCompiles;
  for (const FunctionInfo &FI : VM->Funcs)
    S.Deopts += FI.DeoptCount;
  return S;
}
