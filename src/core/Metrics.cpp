//===- core/Metrics.cpp ---------------------------------------------------===//

#include "core/Metrics.h"

#include "support/Json.h"
#include "support/Table.h"

using namespace ccjs;

json::Value MetricsRegistry::toJson(bool IncludeHost) const {
  json::Value Counters = json::Value::object();
  for (const auto &[Name, N] : this->Counters) {
    if (!IncludeHost && isHostMetric(Name))
      continue;
    Counters.set(Name, N);
  }
  json::Value Histograms = json::Value::object();
  for (const auto &[Name, H] : this->Histograms) {
    json::Value HV = json::Value::object();
    HV.set("count", H.Count);
    HV.set("sum", H.Sum);
    HV.set("mean", H.mean());
    HV.set("min", H.Min);
    HV.set("max", H.Max);
    Histograms.set(Name, std::move(HV));
  }
  json::Value Root = json::Value::object();
  Root.set("counters", std::move(Counters));
  Root.set("histograms", std::move(Histograms));
  return Root;
}

std::string MetricsRegistry::render(bool IncludeHost) const {
  Table T({"metric", "value"});
  for (const auto &[Name, N] : Counters) {
    if (!IncludeHost && isHostMetric(Name))
      continue;
    T.addRow({Name, std::to_string(N)});
  }
  for (const auto &[Name, H] : Histograms)
    T.addRow({Name, "n=" + std::to_string(H.Count) +
                        " mean=" + Table::fmt(H.mean(), 2) +
                        " min=" + Table::fmt(H.Min, 0) +
                        " max=" + Table::fmt(H.Max, 0)});
  return T.render();
}
