//===- core/BenchHarness.h - Shared benchmark harness -----------*- C++ -*-===//
///
/// \file
/// The shared layer every bench binary (and `ccjs --compare`) runs on:
///
///  * **Parallel fan-out** — independent runSteadyState/compareConfigs jobs
///    (workload x config) execute on a std::thread pool (`--jobs=N`) and
///    results are collected in deterministic workload order, so tables,
///    averages and JSON reports are byte-identical to the serial run.
///    Engine state is instance-owned (one VMState per Engine) and the only
///    static in the measurement path is the const workload registry, so
///    runs are embarrassingly parallel; see the audit note in
///    BenchHarness.cpp.
///
///  * **Machine-readable reports** — `--json=<path>` emits per-workload
///    RunStats (instruction breakdown by category, cycles, energy,
///    DL1/L2/DTLB/Class-Cache hit rates, deopts) and comparison metrics
///    through one serializer, with a schema version and a config
///    fingerprint, so the perf trajectory of the repo can be tracked by
///    `tools/bench_diff` (and by CI, which gates on it).
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_BENCHHARNESS_H
#define CCJS_CORE_BENCHHARNESS_H

#include "core/Runner.h"
#include "support/Json.h"
#include "workloads/Workloads.h"

#include <functional>
#include <string>
#include <vector>

namespace ccjs {

//===----------------------------------------------------------------------===//
// Common flags
//===----------------------------------------------------------------------===//

/// Flags shared by every bench binary: --jobs=N, --json=<path>,
/// --filter=<suite|workload>. Binary-specific flags are handled by the
/// \p Extra callback.
struct HarnessOptions {
  /// Worker threads for the benchmark fan-out. 1 = serial (the default);
  /// 0 = one per hardware thread.
  unsigned Jobs = 1;
  /// When non-empty, write the structured report here ("-" = stdout).
  std::string JsonPath;
  /// When non-empty, restrict the sweep to one suite (exact suite name) or
  /// one workload (exact workload name).
  std::string Filter;
  /// --host: attach a host-throughput section (wall-clock, simulated
  /// instructions per host second) to the JSON report. Off by default —
  /// host timings are machine-dependent and would break the byte-identity
  /// gates that cmp reports across runs.
  bool Host = false;
  /// --dispatch=switch|threaded|fused: host-side executor dispatch
  /// strategy for every engine the binary constructs (see applyDispatch).
  /// Host-only: simulated results are byte-identical across modes, which
  /// the CI byte-identity gate enforces by running all of them.
  DispatchMode Dispatch = DispatchMode::Switch;
  /// --fused-mask=M: restricts superinstruction fusion to the patterns
  /// whose table bit is set (per-pattern ablation). Only meaningful — and
  /// only accepted — together with --dispatch=fused.
  uint32_t FusedMask = ~0u;
  /// --check-removal=none|classcache|bbv|both: overrides the check-removal
  /// backend of every *mechanism* config the binary builds (baseline legs
  /// keep their binary-defined configuration). Unset by default so each
  /// binary's published recipe is untouched unless the sweep asks.
  CheckRemovalBackend CheckRemoval = CheckRemovalBackend::ClassCache;
  bool CheckRemovalSet = false;

  /// Copies the dispatch selection into an engine config. Bench binaries
  /// call this on every config they build so the flag has uniform effect.
  void applyDispatch(EngineConfig &Cfg) const {
    Cfg.Dispatch = Dispatch;
    Cfg.FusedPatternMask = FusedMask;
  }

  /// Applies an explicit --check-removal selection to a mechanism config;
  /// no-op when the flag was not passed, so default runs are byte-identical
  /// to the pre-flag harness. Mirrors Engine::Options::withCheckRemoval.
  void applyCheckRemoval(EngineConfig &Cfg) const {
    if (!CheckRemovalSet)
      return;
    Cfg.CheckRemoval = CheckRemoval;
    Cfg.ClassCacheEnabled = CheckRemoval == CheckRemovalBackend::ClassCache ||
                            CheckRemoval == CheckRemovalBackend::Both;
    if (!Cfg.ClassCacheEnabled)
      Cfg.SoftwareOnlyClassCache = false;
  }

  /// Parses argv. Unknown flags are offered to \p Extra first (return true
  /// to consume); anything left over prints a usage message listing
  /// \p ExtraUsage and fails. Returns false on any parse error — callers
  /// must exit non-zero *before* doing any benchmark work.
  bool parse(int Argc, char **Argv,
             const std::function<bool(std::string_view)> &Extra = nullptr,
             const char *ExtraUsage = "");

  /// Jobs with 0 resolved to std::thread::hardware_concurrency().
  unsigned effectiveJobs() const;
};

//===----------------------------------------------------------------------===//
// Parallel execution
//===----------------------------------------------------------------------===//

/// Invokes \p Fn(I) exactly once for every I in [0, N) across \p Jobs
/// threads (serially when Jobs <= 1). Blocks until all indices completed.
/// \p Fn must only touch state owned by its index slot.
void runIndexed(size_t N, unsigned Jobs, const std::function<void(size_t)> &Fn);

/// compareConfigs for each workload, fanned out over \p Jobs threads;
/// results are indexed exactly like \p Ws (deterministic order).
std::vector<Comparison>
compareWorkloads(const std::vector<const Workload *> &Ws,
                 const EngineConfig &Base, unsigned Jobs,
                 int Iterations = DefaultIterations);

/// runSteadyState for each workload under one configuration, fanned out
/// over \p Jobs threads; results are indexed exactly like \p Ws.
std::vector<BenchRun>
runWorkloadsSteadyState(const std::vector<const Workload *> &Ws,
                        const EngineConfig &Cfg, unsigned Jobs,
                        int Iterations = DefaultIterations);

//===----------------------------------------------------------------------===//
// Structured reports (schema v1)
//===----------------------------------------------------------------------===//

/// Version of the report layout documented in EXPERIMENTS.md. Bump when
/// renaming/removing fields; bench_diff refuses to compare across versions.
inline constexpr int BenchReportSchemaVersion = 1;

/// Compact deterministic one-line fingerprint of an EngineConfig, embedded
/// in every report so diffs across different configurations are rejected.
std::string configFingerprint(const EngineConfig &Cfg);

/// Full config serialization (fingerprint plus individual fields).
json::Value configToJson(const EngineConfig &Cfg);

/// Host-throughput measurement of one sweep: how fast the simulator
/// itself ran, as opposed to what it simulated. Everything here is a
/// property of the host machine and build, so it lives in its own opt-in
/// report section ("host") that diffing ignores unless explicitly asked
/// (tools/bench_diff --host-time).
struct HostMeasurement {
  /// Wall-clock seconds for the whole sweep (includes harness overhead).
  double WallSeconds = 0;
  /// Sum of the per-run BenchRun::HostSeconds (engine time only).
  double EngineSeconds = 0;
  /// Total simulated instructions executed across all measured runs.
  uint64_t SimInstructions = 0;
  /// Thread count the sweep ran with (throughput is only comparable
  /// between runs at the same --jobs).
  unsigned Jobs = 1;
  /// Dispatch strategy the sweep ran with, and its executor dispatch
  /// accounting summed over the measured iterations (see
  /// Engine::hostDispatches): how many main-loop dispatches actually
  /// happened and how many superinstruction fusion absorbed.
  DispatchMode Dispatch = DispatchMode::Switch;
  uint64_t Dispatches = 0;
  uint64_t FusedSavedDispatches = 0;
  /// Time-to-peak-tier aggregation (warmup tax): how many measured runs
  /// reached the optimizing tier at all, and the summed simulated
  /// instruction/cycle positions of each run's first successful tier-up
  /// (BenchRun::FirstTierUpInstr). Dividing the sums by RunsTieredUp
  /// gives the average warmup a snapshot warm-start would skip.
  unsigned RunsTieredUp = 0;
  uint64_t WarmupInstructions = 0;
  double WarmupCycles = 0;
};

/// Serializes a HostMeasurement, deriving the headline throughput figure
/// (simulated instructions per host wall-clock second).
json::Value hostToJson(const HostMeasurement &H);

/// Serializes one run's RunStats: instruction breakdown by category,
/// cycles, energy breakdown, memory-hierarchy and Class-Cache hit rates,
/// hidden classes, heap and engine counters.
json::Value statsToJson(const RunStats &S);

/// Serializes a Comparison: the four derived metrics (null when
/// unmeasurable), output match, and both runs' stats.
json::Value comparisonToJson(const Comparison &C, bool IncludeRuns = true);

/// Accumulates one bench binary's per-workload results and renders the
/// versioned report.
class BenchReport {
public:
  /// \p Generator names the emitting binary (e.g. "fig8_speedup").
  BenchReport(std::string Generator, const EngineConfig &Cfg);

  /// Adds a workload entry carrying a baseline-vs-mechanism comparison.
  void addComparison(const Workload &W, const Comparison &C,
                     bool IncludeRuns = true);

  /// Adds a workload entry carrying a single run's stats.
  void addRun(const Workload &W, const BenchRun &R);

  /// Adds a workload entry with a caller-built payload (ablation rows,
  /// geometry sweeps...).
  void addEntry(std::string Name, std::string Suite, json::Value Payload);

  /// Sets a key in the report-level "summary" object (averages etc).
  void setSummary(std::string_view Key, json::Value V);

  /// Attaches the engine's MetricsRegistry export as a report-level
  /// "metrics" section. Observational: the section is not part of the
  /// config fingerprint, so reports with and without it stay comparable,
  /// and a report produced without metrics is byte-identical to one never
  /// offered them.
  void setMetrics(json::Value V);

  /// Attaches a host-throughput section (hostToJson). Opt-in exactly like
  /// setMetrics: absent unless the binary ran with --host, so default
  /// reports stay byte-identical across machines and runs.
  void setHost(json::Value V);

  json::Value toJson() const;

  /// Writes the pretty-printed report to \p Path ("-" = stdout). Returns
  /// false and fills \p Err on I/O failure.
  bool write(const std::string &Path, std::string *Err) const;

private:
  std::string Generator;
  json::Value Config;
  json::Value Workloads = json::Value::array();
  json::Value Summary = json::Value::object();
  json::Value Metrics;
  bool HasMetrics = false;
  json::Value Host;
  bool HasHost = false;
};

/// Validates that \p Report has the schema-v1 required structure
/// (schema_version, generator, config.fingerprint, workloads[].name).
/// Returns false and fills \p Err with the first problem found.
bool validateReport(const json::Value &Report, std::string *Err);

//===----------------------------------------------------------------------===//
// Report diffing (tools/bench_diff, CI perf gate)
//===----------------------------------------------------------------------===//

/// One metric delta between two reports.
struct DiffEntry {
  std::string Workload;
  std::string Metric;     ///< Dotted path inside the workload entry.
  double OldValue = 0;
  double NewValue = 0;
  double Delta = 0;       ///< New - Old, sign-adjusted so negative == worse.
  bool Regression = false;
};

struct DiffResult {
  /// False when the reports cannot be compared at all (schema mismatch,
  /// different generator or config fingerprint).
  bool Comparable = true;
  std::string Error;
  size_t MetricsCompared = 0;
  std::vector<DiffEntry> Changes;      ///< All metric movements beyond noise.
  std::vector<std::string> Notes;      ///< Workloads present on one side only.

  bool hasRegressions() const {
    for (const DiffEntry &E : Changes)
      if (E.Regression)
        return true;
    return false;
  }
};

/// Compares two reports metric-by-metric. \p Tolerance is the movement
/// (percentage points for the speedup/energy/hit-rate metrics, relative
/// percent for cycles/energy totals) beyond which a worsening is flagged
/// as a regression. When both reports carry a "metrics" section its
/// counters are compared too — growth in "deopts*"/"invalidation*"
/// counters beyond \p Tolerance relative percent is a regression, any
/// other counter movement is informational — unless \p IgnoreMetrics
/// suppresses that section entirely (tools/bench_diff --ignore-metrics).
DiffResult diffReports(const json::Value &Old, const json::Value &New,
                       double Tolerance, bool IgnoreMetrics = false);

} // namespace ccjs

#endif // CCJS_CORE_BENCHHARNESS_H
