//===- core/Stats.h - Run statistics ----------------------------*- C++ -*-===//
///
/// \file
/// The measurement report one engine run produces: dynamic instruction
/// breakdown, cycles, energy, monomorphism statistics and hardware
/// counters — everything the paper's tables and figures are built from.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_STATS_H
#define CCJS_CORE_STATS_H

#include "hw/EnergyModel.h"
#include "profile/Categories.h"
#include "runtime/Heap.h"

#include <cstdint>

namespace ccjs {

struct RunStats {
  InstrCounters Instrs;

  double CyclesTotal = 0;
  double CyclesOptimized = 0;
  double CyclesRest = 0;

  EnergyBreakdown EnergyTotal;
  EnergyBreakdown EnergyOptimized;

  // Figure 3 / section 5.3.4.
  ObjectLoadCounters Loads;

  // Memory hierarchy.
  double Dl1HitRate = 1;
  double L2HitRate = 1;
  double DtlbHitRate = 1;
  uint64_t Dl1Accesses = 0;
  uint64_t L2Accesses = 0;

  // Class Cache (sections 5.3.2/5.3.3).
  uint64_t CcAccesses = 0;
  uint64_t CcMisses = 0;
  uint64_t CcExceptions = 0;
  double CcHitRate = 1;

  // Warm-up (section 5.3.1) and object sizes (section 5.3.4).
  size_t NumHiddenClasses = 0;
  HeapStats Heap;

  // Engine-level.
  uint64_t OptCompiles = 0;
  uint64_t Deopts = 0;

  /// Fraction of dynamic instructions in \p Cat relative to the whole run.
  double categoryShare(InstrCategory Cat) const {
    uint64_t T = Instrs.total();
    return T == 0 ? 0
                  : double(Instrs.PerCategory[unsigned(Cat)]) / double(T);
  }
};

} // namespace ccjs

#endif // CCJS_CORE_STATS_H
