//===- core/Runner.h - Steady-state benchmark protocol ----------*- C++ -*-===//
///
/// \file
/// The measurement protocol of the paper (section 5): load a workload, run
/// its top level (setup), execute its `run()` function ten times and take
/// statistics from the tenth iteration only — by then hot functions run as
/// optimized code and the caches are warm.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_RUNNER_H
#define CCJS_CORE_RUNNER_H

#include "core/Engine.h"

#include <optional>
#include <string>
#include <string_view>

namespace ccjs {

/// Result of one steady-state run under one configuration.
struct BenchRun {
  bool Ok = false;
  std::string Error;
  /// Statistics of the measured (last) iteration.
  RunStats Steady;
  /// print() output of all iterations (checksum verification).
  std::string Output;
  /// Host wall-clock seconds spent in this run (engine construction
  /// through the last iteration). A property of the simulator binary and
  /// machine, not of the simulated program: it never enters RunStats, the
  /// tables, or the default JSON report — only the opt-in "host" section
  /// (see BenchReport::setHost).
  double HostSeconds = 0;
  /// Executor main-loop dispatches of the measured iteration, and how many
  /// of them superinstruction fusion absorbed. Host-side like HostSeconds:
  /// these legally differ between dispatch modes and stay out of RunStats
  /// and the default report.
  uint64_t HostDispatches = 0;
  uint64_t HostFusedSaved = 0;
  /// Time-to-peak-tier: the simulated instruction/cycle position of the
  /// run's first *successful* tier-up, counted from engine start. This is
  /// the warmup tax a warm-started replica skips — a profile-snapshot
  /// restore moves it from thousands of interpreted instructions to the
  /// first call. TieredUp is false (positions zero) when nothing ever
  /// reached the optimizing tier. Deterministic simulated quantities, but
  /// reported only through the opt-in "host" section: the measurement is
  /// about engine warmup, not about the program under test.
  bool TieredUp = false;
  uint64_t FirstTierUpInstr = 0;
  double FirstTierUpCycles = 0;
};

inline constexpr int DefaultIterations = 10;

/// Runs \p Source under \p Config: top level once, then `run()`
/// \p Iterations times, measuring the last.
BenchRun runSteadyState(const EngineConfig &Config, std::string_view Source,
                        int Iterations = DefaultIterations);

/// Baseline-vs-mechanism comparison for one workload (figures 8 and 9).
///
/// The four derived metrics are std::optional: a metric is absent
/// (unmeasurable, *not* zero) whenever its denominator is zero — e.g. a
/// workload that never tiers up has CyclesOptimized == 0 in both runs, so
/// no optimized-code speedup exists. Consumers must surface absent metrics
/// distinctly ("n/a" in tables, null in JSON) instead of a silent "0%".
struct Comparison {
  BenchRun Baseline;
  /// The mechanism leg: whichever check-removal backend the comparison's
  /// Base config selected (ClassCache by default; BBV/Both when the sweep
  /// ran with --check-removal). Named for the historical default — the
  /// JSON key derived from it is part of the report schema.
  BenchRun ClassCache;
  /// Speedup percentages ((base/cc - 1) * 100); nullopt when unmeasurable.
  std::optional<double> SpeedupWhole;
  std::optional<double> SpeedupOptimized;
  /// Energy reduction percentages ((1 - cc/base) * 100); nullopt when
  /// unmeasurable.
  std::optional<double> EnergyReductionWhole;
  std::optional<double> EnergyReductionOptimized;
  /// True when both runs completed and printed identical output.
  bool OutputsMatch = false;

  /// True when both runs completed (the metrics above may still be
  /// individually absent).
  bool valid() const { return Baseline.Ok && ClassCache.Ok; }
};

/// Runs \p Source under a no-check-removal baseline and under the
/// check-removal backend \p Base selects (both legs otherwise derived
/// from \p Base; a default Base measures the Class Cache) and reports
/// speedups and energy savings.
Comparison compareConfigs(std::string_view Source, const EngineConfig &Base,
                          int Iterations = DefaultIterations);

} // namespace ccjs

#endif // CCJS_CORE_RUNNER_H
