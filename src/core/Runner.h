//===- core/Runner.h - Steady-state benchmark protocol ----------*- C++ -*-===//
///
/// \file
/// The measurement protocol of the paper (section 5): load a workload, run
/// its top level (setup), execute its `run()` function ten times and take
/// statistics from the tenth iteration only — by then hot functions run as
/// optimized code and the caches are warm.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_RUNNER_H
#define CCJS_CORE_RUNNER_H

#include "core/Engine.h"

#include <string>
#include <string_view>

namespace ccjs {

/// Result of one steady-state run under one configuration.
struct BenchRun {
  bool Ok = false;
  std::string Error;
  /// Statistics of the measured (last) iteration.
  RunStats Steady;
  /// print() output of all iterations (checksum verification).
  std::string Output;
};

inline constexpr int DefaultIterations = 10;

/// Runs \p Source under \p Config: top level once, then `run()`
/// \p Iterations times, measuring the last.
BenchRun runSteadyState(const EngineConfig &Config, std::string_view Source,
                        int Iterations = DefaultIterations);

/// Baseline-vs-mechanism comparison for one workload (figures 8 and 9).
struct Comparison {
  BenchRun Baseline;
  BenchRun ClassCache;
  /// Speedup percentages ((base/cc - 1) * 100).
  double SpeedupWhole = 0;
  double SpeedupOptimized = 0;
  /// Energy reduction percentages ((1 - cc/base) * 100).
  double EnergyReductionWhole = 0;
  double EnergyReductionOptimized = 0;
  /// True when both runs completed and printed identical output.
  bool OutputsMatch = false;
};

/// Runs \p Source under the baseline and the Class Cache configuration
/// (both derived from \p Base) and reports speedups and energy savings.
Comparison compareConfigs(std::string_view Source, const EngineConfig &Base,
                          int Iterations = DefaultIterations);

} // namespace ccjs

#endif // CCJS_CORE_RUNNER_H
