//===- core/Engine.h - Engine facade ----------------------------*- C++ -*-===//
///
/// \file
/// The public entry point of the library: an Engine owns the whole stack
/// (frontend, heap, both execution tiers, hardware models) for one
/// configuration. Typical use:
///
/// \code
///   ccjs::EngineConfig Config;
///   Config.ClassCacheEnabled = true;
///   ccjs::Engine Engine(Config);
///   if (!Engine.load(Source))
///     report(Engine.lastError());
///   Engine.runTopLevel();
///   Engine.resetStats();               // Warm up first, then measure.
///   Engine.callGlobal("run");
///   ccjs::RunStats S = Engine.stats(); // Cycles, energy, breakdowns...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_ENGINE_H
#define CCJS_CORE_ENGINE_H

#include "core/Stats.h"
#include "vm/VMState.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ccjs {

class Engine {
public:
  explicit Engine(const EngineConfig &Config);
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Parses and compiles \p Source; installs runtime globals. Returns
  /// false (see lastError()) on a syntax or compile error.
  bool load(std::string_view Source);

  /// Executes the top-level statements. Returns false on a runtime error.
  bool runTopLevel();

  /// Invokes a global function by name. Halts the VM (see lastError()) if
  /// it does not exist.
  Value callGlobal(const std::string &Name,
                   const std::vector<Value> &Args = {});

  const std::string &lastError() const { return VM->Error; }
  bool halted() const { return VM->Halted; }

  /// Accumulated print() output.
  const std::string &output() const { return VM->Output; }

  /// Zeroes all measurement counters; engine/hardware state stays warm.
  void resetStats();

  /// Collects the current measurement counters into a report.
  RunStats stats() const;

  /// Chaos engine handles (null unless enabled in the config).
  const FaultInjector *faultInjector() const { return VM->FaultInj.get(); }
  const InvariantAuditor *auditor() const { return VM->Auditor.get(); }
  /// Runs an on-demand invariant audit (no-op unless AuditInvariants).
  void auditNow(const char *When = "final") {
    if (VM->Auditor)
      VM->Auditor->audit(*VM, When, 0);
  }

  VMState &vm() { return *VM; }
  const VMState &vm() const { return *VM; }

private:
  static Value dispatchInvoke(VMState &VM, uint32_t FuncIndex, Value ThisV,
                              const Value *Args, uint32_t Argc);
  static void handleInvalidation(VMState &VM, uint8_t ClassId, uint8_t Line,
                                 uint8_t Pos);
  static Value genericCallMethod(VMState &VM, Value Receiver, uint32_t Name,
                                 const Value *Args, uint32_t Argc);

  std::unique_ptr<VMState> VM;
};

} // namespace ccjs

#endif // CCJS_CORE_ENGINE_H
