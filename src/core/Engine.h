//===- core/Engine.h - Engine facade ----------------------------*- C++ -*-===//
///
/// \file
/// The public entry point of the library: an Engine owns the whole stack
/// (frontend, heap, both execution tiers, hardware models) for one
/// configuration. Configurations are assembled with the validated
/// Engine::Options builder:
///
/// \code
///   ccjs::Engine Engine(ccjs::Engine::Options()
///                           .withClassCache()
///                           .withChaosSeed(7)
///                           .withTrace());
///   if (!Engine.load(Source))
///     report(Engine.lastError());
///   Engine.runTopLevel();
///   Engine.resetStats();               // Warm up first, then measure.
///   Engine.callGlobal("run");
///   ccjs::RunStats S = Engine.stats(); // Cycles, energy, breakdowns...
/// \endcode
///
/// The raw Engine(const EngineConfig &) constructor remains for one release
/// for harness plumbing that forwards an existing config (see DESIGN.md
/// deprecation note); new call sites use the builder.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_ENGINE_H
#define CCJS_CORE_ENGINE_H

#include "core/Stats.h"
#include "vm/VMState.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ccjs {

class Engine {
public:
  /// Validated builder for engine construction options. Each with* method
  /// returns *this for chaining; build() asserts validity (use validate()
  /// to get a diagnostic instead). The built EngineConfig is immutable for
  /// the engine's lifetime.
  class Options {
  public:
    /// Selects the check-removal backend: the paper's ClassCache
    /// mechanism, lazy basic-block versioning, both composed, or neither
    /// (DESIGN.md §4.10). This is the one knob that replaces the boolean
    /// sprawl below; withClassCache()/withSoftwareOnlyClassCache() remain
    /// as deprecated shims over it.
    Options &withCheckRemoval(CheckRemovalBackend B) {
      Cfg.CheckRemoval = B;
      Cfg.ClassCacheEnabled = B == CheckRemovalBackend::ClassCache ||
                              B == CheckRemovalBackend::Both;
      if (!Cfg.ClassCacheEnabled)
        Cfg.SoftwareOnlyClassCache = false;
      return *this;
    }
    /// Lazy-BBV version cap: entry contexts beyond the cap share the
    /// generic (no-elision) version of the block.
    Options &withBbvMaxVersions(unsigned N) {
      Cfg.BbvMaxVersions = N;
      return *this;
    }
    /// Deprecated shim (see withCheckRemoval): toggles the ClassCache
    /// component while preserving a BBV selection.
    Options &withClassCache(bool On = true) {
      Cfg.ClassCacheEnabled = On;
      Cfg.CheckRemoval =
          On ? (Cfg.bbvOn() ? CheckRemovalBackend::Both
                            : CheckRemovalBackend::ClassCache)
             : (Cfg.bbvOn() ? CheckRemovalBackend::Bbv
                            : CheckRemovalBackend::None);
      return *this;
    }
    /// Deprecated shim (see withCheckRemoval): models the software-only
    /// implementation (§5.4); implies the ClassCache backend.
    Options &withSoftwareOnlyClassCache() {
      withClassCache();
      Cfg.SoftwareOnlyClassCache = true;
      return *this;
    }
    /// Toggles the §4.3 elision optimizations individually (ablations).
    Options &withElision(bool CheckMaps, bool CheckSmi, bool CheckNonSmi) {
      Cfg.ElideCheckMaps = CheckMaps;
      Cfg.ElideCheckSmi = CheckSmi;
      Cfg.ElideCheckNonSmi = CheckNonSmi;
      return *this;
    }
    /// movClassIDArray hoisting (§4.2.1.3) and its register budget.
    Options &withHoisting(bool Hoist, unsigned ArrayClassRegs = 4) {
      Cfg.HoistClassIdArray = Hoist;
      Cfg.NumArrayClassRegs = ArrayClassRegs;
      return *this;
    }
    /// Tiering thresholds (invocations / back-edge trips before tier-up).
    Options &withTiering(uint32_t HotInvocation, uint32_t HotLoop) {
      Cfg.HotInvocationThreshold = HotInvocation;
      Cfg.HotLoopThreshold = HotLoop;
      return *this;
    }
    /// Baseline tier only: never optimize.
    Options &withNoOpt() { return withTiering(~0u, ~0u); }
    Options &withMaxDeoptsPerFunction(uint32_t N) {
      Cfg.MaxDeoptsPerFunction = N;
      return *this;
    }
    /// Enables deterministic fault injection with \p Seed.
    Options &withChaosSeed(uint64_t Seed) {
      Cfg.Faults.Enabled = true;
      Cfg.Faults.Seed = Seed;
      return *this;
    }
    /// Per-point schedule override (see FaultConfig::Schedule); implies
    /// nothing about Enabled — combine with withChaosSeed().
    Options &withChaosSchedule(FaultPoint P, int32_t Schedule) {
      Cfg.Faults.Schedule[static_cast<unsigned>(P)] = Schedule;
      return *this;
    }
    /// Runs the InvariantAuditor at deopt/tier-up boundaries.
    Options &withAudit(bool On = true) {
      Cfg.AuditInvariants = On;
      return *this;
    }
    /// Enables the trace ring (observational; see TraceConfig).
    Options &withTrace(uint32_t Mask = DefaultTraceMask,
                       uint32_t Capacity = 1u << 16) {
      Cfg.Trace.Enabled = true;
      Cfg.Trace.Mask = Mask;
      Cfg.Trace.Capacity = Capacity;
      return *this;
    }
    /// Enables the named counter/histogram registry (observational).
    Options &withMetrics(bool On = true) {
      Cfg.MetricsEnabled = On;
      return *this;
    }
    /// Replaces the hardware model parameters wholesale.
    Options &withHw(const HwConfig &Hw) {
      Cfg.Hw = Hw;
      return *this;
    }
    /// Selects the main-loop dispatch strategy (host-side only; simulated
    /// results are identical across modes). Threading is silently
    /// unavailable in builds without the GNU computed-goto extension.
    Options &withDispatch(DispatchMode M) {
      Cfg.Dispatch = M;
      return *this;
    }
    /// Legacy spelling of withDispatch(Threaded/Switch).
    Options &withThreadedDispatch(bool On = true) {
      Cfg.Dispatch = On ? DispatchMode::Threaded : DispatchMode::Switch;
      return *this;
    }
    /// Restricts superinstruction fusion to the patterns whose table bit
    /// is set (ablation support; all patterns by default).
    Options &withFusedPatternMask(uint32_t Mask) {
      Cfg.FusedPatternMask = Mask;
      return *this;
    }
    /// Records the dynamic opcode-adjacency histogram (host-side
    /// observation; feeds `ccjs --op-hist`).
    Options &withOpHist(bool On = true) {
      Cfg.OpHistEnabled = On;
      return *this;
    }
    /// Enables optimizer pipeline passes by mask (bit i = pass i in
    /// registration order, see src/jit/passes/PassManager.h). 0 (the
    /// default) emits byte-identical OptIR to the bare IrBuilder.
    Options &withOptPasses(uint32_t Mask) {
      Cfg.OptPassMask = Mask;
      return *this;
    }
    /// Dumps pass-by-pass OptIR to stderr at compile time (ccjs
    /// --ir-dump). Host-side observation only.
    Options &withIrDump(bool On = true) {
      Cfg.IrDump = On;
      return *this;
    }
    /// Per-request resource budgets (service mode). Zero = unlimited.
    /// Checked at safepoints off already-maintained counters, so runs that
    /// never trip are byte-identical to budgets-off runs.
    Options &withBudget(uint64_t MaxInstructions, uint64_t MaxHeapBytes = 0,
                        uint32_t MaxCallDepth = 0) {
      Cfg.Budget.MaxInstructions = MaxInstructions;
      Cfg.Budget.MaxHeapBytes = MaxHeapBytes;
      Cfg.Budget.MaxCallDepth = MaxCallDepth;
      return *this;
    }
    Options &withInstructionBudget(uint64_t N) {
      Cfg.Budget.MaxInstructions = N;
      return *this;
    }
    Options &withHeapBudget(uint64_t Bytes) {
      Cfg.Budget.MaxHeapBytes = Bytes;
      return *this;
    }
    Options &withCallDepthBudget(uint32_t Depth) {
      Cfg.Budget.MaxCallDepth = Depth;
      return *this;
    }
    /// Restores a warm profile snapshot (Engine::snapshotProfile) at
    /// construction, so the first request compiles at peak tier instead of
    /// paying the warmup tax. Implies withProfilePersistence(): the
    /// restored per-function profile must survive the load() that follows.
    /// The snapshot embeds the fingerprint of the configuration it was
    /// taken under; restore validates it and falls back to a cold start
    /// (see Engine::snapshotRestoreError) on any mismatch or corruption.
    Options &withProfileSnapshot(
        std::shared_ptr<const std::vector<uint8_t>> Snapshot) {
      Cfg.ProfileSnapshot = std::move(Snapshot);
      Cfg.ProfilePersistence = true;
      return *this;
    }
    /// Convenience overload: copies the bytes into a shared buffer.
    Options &withProfileSnapshot(std::vector<uint8_t> Snapshot) {
      return withProfileSnapshot(
          std::make_shared<const std::vector<uint8_t>>(std::move(Snapshot)));
    }
    /// Carries per-function profiles (feedback, hotness, BBV seeds) across
    /// load() boundaries when the module hashes identically — the
    /// warm-replica contract (DESIGN.md §4.11). Off by default; both sides
    /// of an equivalence comparison must agree on it.
    Options &withProfilePersistence(bool On = true) {
      Cfg.ProfilePersistence = On;
      return *this;
    }

    /// Checks cross-field consistency; fills \p Err with the first problem.
    bool validate(std::string *Err = nullptr) const;
    /// Returns the validated config; asserts on an invalid combination.
    EngineConfig build() const;

  private:
    EngineConfig Cfg;
  };

  explicit Engine(const EngineConfig &Config);
  explicit Engine(const Options &Opts);
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Parses and compiles \p Source; installs runtime globals. Returns
  /// false (see lastError()) on a syntax or compile error.
  bool load(std::string_view Source);

  /// Executes the top-level statements. Returns false on a runtime error.
  bool runTopLevel();

  /// Invokes a global function by name. Halts the VM (see lastError()) if
  /// it does not exist.
  Value callGlobal(const std::string &Name,
                   const std::vector<Value> &Args = {});

  const std::string &lastError() const { return VM->Error; }
  bool halted() const { return VM->Halted; }
  /// True when the current halt was a per-request budget trip (a clean,
  /// recoverable stop: the engine stays reusable, load() starts fresh).
  bool budgetExceeded() const { return VM->BudgetTripped; }
  /// Which budget tripped; meaningful only while budgetExceeded().
  BudgetKind budgetExceededKind() const { return VM->BudgetTrippedKind; }

  /// Service-mode graceful degradation: while pinned, calls neither tier
  /// up nor enter existing optimized code — everything runs in the
  /// baseline interpreter. Host-side knob (the pool flips it per request
  /// under pressure); deliberately changes simulated behaviour for the
  /// pinned request, never recorded in EngineConfig or fingerprints.
  void pinBaselineTier(bool On = true) { VM->TierPinned = On; }
  bool tierPinned() const { return VM->TierPinned; }

  /// Applies per-request budgets on a pooled engine. The budget block is
  /// the one EngineConfig field that is per-request service state rather
  /// than profiled configuration (it is excluded from fingerprints and
  /// never influences simulated events); every other config field stays
  /// immutable for the engine's lifetime.
  void setRequestBudget(const BudgetConfig &B) {
    VM->Config.Budget = B;
    VM->BudgetArmed = B.any();
    VM->rebaseBudget();
  }
  const BudgetConfig &requestBudget() const { return VM->Config.Budget; }

  /// Prepares a pooled engine for the next independent service request:
  /// clears every piece of per-request observation that load() leaves
  /// alone — measurement counters (resetStats), the fault-injector trip
  /// log, the metrics registry, host dispatch counters — and rebases the
  /// resource budgets. Warm profile state (shapes, Class List images,
  /// caches, fault schedules' occurrence counters) persists: that is the
  /// point of pooling. Extends the EngineReuseTest contract to request
  /// sequences.
  void beginServiceRequest();

  /// Serializes the engine's warm profile state (shapes, memory image,
  /// type feedback, hotness, BBV seeds, warmed machine state — see
  /// core/ProfileSnapshot.h) for Options::withProfileSnapshot. Capture is
  /// canonical: the same state always yields byte-identical snapshots.
  std::vector<uint8_t> snapshotProfile() const;

  /// Empty when construction-time snapshot restore succeeded (or none was
  /// requested); otherwise the one-line rejection reason. A rejected
  /// snapshot never half-restores: the engine is in its ordinary
  /// cold-start state and fully usable.
  const std::string &snapshotRestoreError() const {
    return SnapshotRestoreErr;
  }

  /// Accumulated print() output.
  const std::string &output() const { return VM->Output; }

  /// Zeroes all measurement counters; engine/hardware state stays warm.
  void resetStats();

  /// Collects the current measurement counters into a report.
  RunStats stats() const;

  /// Host-side dispatch accounting (executor main-loop dispatches
  /// performed, and dispatches superinstruction fusion absorbed). These
  /// describe the host, not the simulated machine: byte-identical across
  /// dispatch modes is NOT expected here, by design.
  uint64_t hostDispatches() const { return VM->HostDispatches; }
  uint64_t hostFusedSaved() const { return VM->HostFusedSaved; }
  /// Publishes the host-side counters (and the op-pair histogram when
  /// enabled) into the metrics registry under the `host.` prefix, which
  /// default metric exports omit. No-op without withMetrics().
  void flushHostMetrics();

  /// Chaos engine handles (null unless enabled in the config).
  const FaultInjector *faultInjector() const { return VM->FaultInj.get(); }
  const InvariantAuditor *auditor() const { return VM->Auditor.get(); }
  /// Runs an on-demand invariant audit (no-op unless AuditInvariants).
  void auditNow(const char *When = "final") {
    if (VM->Auditor)
      VM->Auditor->audit(*VM, When, 0);
  }

  /// Observability handles (null unless enabled in the config).
  const TraceRecorder *trace() const { return VM->TraceRec.get(); }
  const MetricsRegistry *metrics() const { return VM->Metrics.get(); }

  /// Registers \p O for boundary-event notification (deopt, tier-up,
  /// invalidation, fault trip), after the engine's own observers. The
  /// caller keeps ownership; remove before destroying the observer.
  void addObserver(EngineObserver *O) { VM->addObserver(O); }
  void removeObserver(EngineObserver *O) { VM->removeObserver(O); }

  VMState &vm() { return *VM; }
  const VMState &vm() const { return *VM; }

private:
  static Value dispatchInvoke(VMState &VM, uint32_t FuncIndex, Value ThisV,
                              const Value *Args, uint32_t Argc);
  static void handleInvalidation(VMState &VM, uint8_t ClassId, uint8_t Line,
                                 uint8_t Pos);
  static Value genericCallMethod(VMState &VM, Value Receiver, uint32_t Name,
                                 const Value *Args, uint32_t Argc);

  std::unique_ptr<VMState> VM;
  std::string SnapshotRestoreErr;
};

} // namespace ccjs

#endif // CCJS_CORE_ENGINE_H
