//===- core/EnginePool.h - Warmed-engine service pool -----------*- C++ -*-===//
///
/// \file
/// Service mode: a pool of N warmed engines dispatching script-execution
/// requests with per-tenant isolation. Each pool slot holds one Engine
/// bound to exactly one tenant at a time — heaps, ShapeTables, Class List
/// images and metrics registries are engine-owned, so the one-tenant-per-
/// engine rule is what makes cross-tenant contamination structurally
/// impossible rather than merely audited.
///
/// Bindings are no longer permanent (the old model shed every new tenant
/// once all slots were bound): when a new tenant arrives with no free slot,
/// the least-recently-served idle slot is recycled — the outgoing tenant's
/// warm profile is parked as a snapshot (Engine::snapshotProfile), the slot
/// rebinds, and a *fresh* engine is constructed for the new tenant
/// (optionally warm-started from a parked or pool-wide snapshot). The
/// evicted tenant resumes warm from its parked snapshot on return.
/// Isolation is preserved because recycling always constructs a fresh
/// engine — no engine ever serves two tenants.
///
/// A batch of requests flows through three deterministic stages:
///
///   1. Admission (serial, arrival order): each request is bound to its
///      tenant's engine (warming one into a free slot on first contact),
///      then checked against the bounded queue, the per-tenant cap, and the
///      degradation threshold. Sheds are decided here, before any engine
///      runs, so the set of shed requests is identical for any Jobs count.
///   2. Execution (parallel across slots, serial within a slot): slots are
///      fanned out over the existing runIndexed thread pool; each slot
///      drains its queue in admission order against exclusively-owned
///      state. A slot whose engine trips quarantine (invariant-audit
///      failure, or a halt with fault trips attributed to the request)
///      pulls the engine from rotation, captures its trip log for replay,
///      and warms a fresh engine in place before the next queued request.
///   3. Recovery (serial, arrival order): fault-attributed failures are
///      retried on the slot's fresh engine with a capped, recorded backoff.
///
/// Because every mutable byte is either slot-owned or written in the serial
/// stages, serve() returns byte-identical results for any Jobs value; tests
/// assert this directly.
///
/// Resource governance rides on the engines' budget machinery (see
/// BudgetConfig): per-request budgets are applied before each request and
/// checked at safepoints inside the dispatch loops. Graceful degradation
/// pins over-threshold requests to the baseline tier (Engine::
/// pinBaselineTier) instead of shedding them.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_CORE_ENGINEPOOL_H
#define CCJS_CORE_ENGINEPOOL_H

#include "core/Engine.h"
#include "core/Metrics.h"
#include "support/Trace.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccjs {

/// Pool-level configuration. Engine-level knobs (Class Cache, dispatch
/// mode, hardware model, default budgets) live in Base; the pool derives
/// each engine's fault seed from ChaosSeed so sibling engines see distinct
/// but individually deterministic fault streams.
struct PoolConfig {
  /// Number of engine slots; also the maximum number of distinct tenants
  /// the pool can serve (engines are tenant-bound, never shared).
  unsigned Engines = 4;
  /// Total requests admitted per batch; arrivals beyond it shed.
  unsigned QueueCapacity = 64;
  /// Queue depth above which admitted requests run pinned to the baseline
  /// tier (graceful degradation) instead of being shed.
  unsigned DegradeThreshold = 48;
  /// Per-tenant admission cap per batch (in-flight bound).
  unsigned MaxQueuedPerTenant = 16;
  /// Retries (on a freshly warmed engine) for fault-attributed failures.
  unsigned MaxRetries = 2;
  /// Per-engine configuration; Base.Budget is the default request budget.
  EngineConfig Base;
  /// Enables per-engine fault injection with seeds derived from ChaosSeed,
  /// the slot index and the slot's warm generation (so a replacement
  /// engine replays a different, but deterministic, fault stream).
  bool Chaos = false;
  uint64_t ChaosSeed = 1;
  /// Script executed once per warmed engine (profile warm-up); empty =
  /// engines enter rotation cold.
  std::string WarmupSource;
  /// Pool-wide warm-start snapshot (Engine::snapshotProfile bytes): every
  /// newly warmed engine restores it at construction unless the tenant has
  /// a parked snapshot of its own. Null = engines warm from WarmupSource
  /// (or cold). Shared immutable bytes — all replicas read the same buffer.
  std::shared_ptr<const std::vector<uint8_t>> WarmStartSnapshot;
};

enum class RequestStatus : uint8_t {
  Ok,
  /// Program halted with a runtime error (after retries, if any).
  Error,
  /// Halted cleanly on a resource budget; engine stays in rotation.
  BudgetExceeded,
  /// Shed: batch queue was at QueueCapacity.
  ShedQueueFull,
  /// Shed: tenant reached MaxQueuedPerTenant.
  ShedTenantCap,
  /// Shed: a new tenant arrived while every slot was serving other
  /// tenants *in this batch* (an idle bound slot would have been recycled
  /// instead — see the slot-recycling notes above).
  ShedNoEngine,
};

const char *requestStatusName(RequestStatus S);

/// One script-execution request. Tenant identity is just a name: requests
/// naming the same tenant share (and only they share) one warmed engine.
struct ServiceRequest {
  std::string Tenant;
  std::string Source;
  /// Optional global function invoked after the top level runs.
  std::string EntryPoint;
  /// Per-request budget override; all-zero means "use PoolConfig::
  /// Base.Budget".
  BudgetConfig Budget;
};

struct ServiceResult {
  RequestStatus Status = RequestStatus::Ok;
  /// Accumulated print() output of the final attempt (empty for sheds).
  std::string Output;
  /// lastError() for Error/BudgetExceeded outcomes.
  std::string Error;
  /// Which budget tripped (meaningful when Status == BudgetExceeded).
  BudgetKind BudgetTripped = BudgetKind::Instructions;
  /// Execution attempts; 0 for sheds, >1 when fault-attributed retries ran.
  unsigned Attempts = 0;
  /// Recorded (not slept) backoff steps across retries: 1+2+...; a drill
  /// can assert the cap without the host actually waiting.
  unsigned BackoffSteps = 0;
  /// Ran pinned to the baseline tier (degradation band).
  bool Degraded = false;
  /// The serving engine was quarantined while (or after) running this.
  bool Quarantined = false;
  /// Slot that served the final attempt; -1 for sheds.
  int Slot = -1;
  /// Fault trips attributed to the final attempt.
  uint64_t FaultTrips = 0;
};

/// Captured when an engine is pulled from rotation; enough to replay the
/// failure (seed + schedules are in the config, the trip log pins the
/// occurrence indices).
struct QuarantineRecord {
  unsigned Slot = 0;
  /// Warm generation of the quarantined engine within its slot.
  unsigned Generation = 0;
  std::string Tenant;
  /// Index into the serve() batch of the triggering request.
  size_t RequestIndex = 0;
  /// "invariant-audit" or "fault-attributed-halt".
  std::string Reason;
  /// FaultInjector::renderTripLog() at the moment of the pull.
  std::string TripLog;
  /// Invariant-audit failure messages new since the request started.
  std::vector<std::string> AuditFailures;
};

/// Aggregated TraceRecorder export of one slot's engine. Slots are
/// tenant-bound, so this is also the per-tenant view. Only the wrap-proof
/// totals are aggregated (the ring contents stay engine-owned and can be
/// exported per engine when needed); summaries exist only when the pool's
/// base config enables tracing, so tracing-off batches are byte-identical
/// to a pool that never heard of traces.
struct TenantTraceSummary {
  unsigned Slot = 0;
  /// Warm generation of the exporting engine within its slot.
  unsigned Generation = 0;
  std::string Tenant;
  /// Accepted events across all kinds (counted even after ring wrap).
  uint64_t Accepted = 0;
  /// Accepted events the ring overwrote.
  uint64_t Dropped = 0;
  /// Per-kind accepted totals, indexed by TraceEventKind.
  uint64_t Totals[NumTraceEventKinds] = {};
};

/// Boundary notifications for the pool itself (admission, shedding,
/// quarantine). Engine-level events still flow through EngineObserver on
/// the pooled engines. All callbacks fire on the serve() caller's thread
/// except onComplete, which fires on the slot's worker thread.
class PoolObserver {
public:
  virtual ~PoolObserver() = default;
  virtual void onAdmit(size_t RequestIndex, unsigned Slot, bool Degraded) {
    (void)RequestIndex;
    (void)Slot;
    (void)Degraded;
  }
  virtual void onShed(size_t RequestIndex, RequestStatus Why) {
    (void)RequestIndex;
    (void)Why;
  }
  virtual void onQuarantine(const QuarantineRecord &R) { (void)R; }
  virtual void onRetry(size_t RequestIndex, unsigned Attempt, unsigned Slot) {
    (void)RequestIndex;
    (void)Attempt;
    (void)Slot;
  }
  virtual void onComplete(size_t RequestIndex, const ServiceResult &R) {
    (void)RequestIndex;
    (void)R;
  }
  /// Fired serially at the end of serve(), once per tenant-bound slot, in
  /// slot order — but only when the base config enables tracing (never
  /// called otherwise, keeping tracing-off behaviour byte-identical).
  virtual void onTraceExport(const TenantTraceSummary &S) { (void)S; }
};

class EnginePool {
public:
  explicit EnginePool(const PoolConfig &Cfg);
  ~EnginePool();

  EnginePool(const EnginePool &) = delete;
  EnginePool &operator=(const EnginePool &) = delete;

  /// Serves one batch: admission in arrival order, execution fanned out
  /// over \p Jobs threads (capped at the slot count), then the serial
  /// recovery pass. Results are indexed exactly like \p Requests and are
  /// byte-identical for any \p Jobs value.
  std::vector<ServiceResult> serve(const std::vector<ServiceRequest> &Requests,
                                   unsigned Jobs = 1);

  /// Manually pulls a tenant's engine from rotation (fault drills); a
  /// fresh engine is warmed in its place immediately. No-op for unknown
  /// tenants.
  void quarantineTenantEngine(const std::string &Tenant, const char *Reason);

  /// Pool-level counters under the `host.pool.` prefix (host-side by
  /// definition; the simulated machines know nothing of the pool).
  const MetricsRegistry &metrics() const { return Metrics; }

  const std::vector<QuarantineRecord> &quarantineLog() const {
    return Quarantines;
  }

  /// Engines warmed since construction (initial binds + replacements).
  unsigned enginesWarmed() const { return TotalWarmed; }

  /// True when \p Tenant's warm profile is parked (its slot was recycled
  /// for another tenant); it will warm-start from the parked snapshot on
  /// its next request.
  bool hasParkedSnapshot(const std::string &Tenant) const {
    return TenantSnapshots.count(Tenant) != 0;
  }

  /// The engine currently bound to \p Tenant, or null. Exposed for tests
  /// and drills; the pool keeps ownership.
  Engine *tenantEngine(const std::string &Tenant);

  /// Per-tenant trace aggregation: one summary per tenant-bound slot, in
  /// slot order. Empty unless the base config enables tracing (each pooled
  /// engine then owns a TraceRecorder ring; this collects their wrap-proof
  /// totals). Current engines only — a quarantined engine's trace dies
  /// with it, its replacement starts a fresh ring at a higher Generation.
  std::vector<TenantTraceSummary> traceSummaries() const;

  void addObserver(PoolObserver *O) { Observers.push_back(O); }
  void removeObserver(PoolObserver *O);

private:
  struct Slot {
    std::unique_ptr<Engine> E;
    std::string Tenant; // Empty until first bound.
    unsigned Generation = 0;
    unsigned Warmed = 0; // Engines warmed in this slot (any thread-safety
                         // aggregation happens serially after execution).
    bool WarmupFailed = false;
    /// Admission sequence number of the slot's most recent request; the
    /// recycling victim is the idle slot with the lowest value. Written
    /// only in the serial admission stage, so eviction order is identical
    /// for any Jobs count.
    uint64_t LastServedSeq = 0;
    std::vector<size_t> Queue; // Request indices, admission order.
    // Written by the slot's worker thread, merged serially afterwards.
    std::vector<QuarantineRecord> PendingQuarantines;
  };

  /// Warms a fresh engine into \p S (seed derived from slot index and
  /// generation) and runs the warm-up script.
  void warmSlot(unsigned SlotIndex);
  /// Runs one admitted request on its slot's engine; fills \p Out and
  /// returns true when the failure is fault-attributed (retry-eligible).
  bool runOn(unsigned SlotIndex, const ServiceRequest &R, bool Degraded,
             size_t RequestIndex, ServiceResult &Out);
  int slotOf(const std::string &Tenant) const;

  PoolConfig Cfg;
  std::vector<Slot> Slots;
  MetricsRegistry Metrics;
  std::vector<QuarantineRecord> Quarantines;
  std::vector<PoolObserver *> Observers;
  unsigned TotalWarmed = 0;
  /// Parked per-tenant warm profiles: filled when a tenant's slot is
  /// recycled, consumed (read, kept) when the tenant is rebound. Touched
  /// only in the serial admission stage.
  std::unordered_map<std::string,
                     std::shared_ptr<const std::vector<uint8_t>>>
      TenantSnapshots;
  /// Monotone admission counter feeding Slot::LastServedSeq.
  uint64_t AdmissionSeq = 0;
};

} // namespace ccjs

#endif // CCJS_CORE_ENGINEPOOL_H
