//===- core/EnginePool.cpp - Warmed-engine service pool -------------------===//
///
/// See EnginePool.h for the three-stage batch model. Implementation notes:
///
///  - Determinism: admission and recovery are serial; execution touches
///    only slot-owned state per worker, and pool-level metrics are
///    aggregated serially from the result vector afterwards. serve() is
///    therefore byte-identical across Jobs values (asserted by tests).
///  - Quarantine happens *inside* the slot's serial drain so a tripped
///    engine never serves the next queued request; the records it produces
///    are buffered per-slot and merged in arrival order afterwards.
///  - Backoff on retries is recorded, not slept: the pool is a simulated
///    service and its tests must not depend on wall-clock time.
///
//===----------------------------------------------------------------------===//

#include "core/EnginePool.h"

#include "core/BenchHarness.h"
#include "support/Assert.h"
#include "vm/InvariantAuditor.h"

#include <algorithm>

using namespace ccjs;

const char *ccjs::requestStatusName(RequestStatus S) {
  switch (S) {
  case RequestStatus::Ok:
    return "ok";
  case RequestStatus::Error:
    return "error";
  case RequestStatus::BudgetExceeded:
    return "budget-exceeded";
  case RequestStatus::ShedQueueFull:
    return "shed-queue-full";
  case RequestStatus::ShedTenantCap:
    return "shed-tenant-cap";
  case RequestStatus::ShedNoEngine:
    return "shed-no-engine";
  }
  return "unknown";
}

EnginePool::EnginePool(const PoolConfig &Cfg) : Cfg(Cfg) {
  CCJS_ASSERT(Cfg.Engines >= 1, "pool needs at least one engine slot");
  Slots.resize(Cfg.Engines);
}

EnginePool::~EnginePool() = default;

int EnginePool::slotOf(const std::string &Tenant) const {
  for (size_t I = 0; I < Slots.size(); ++I)
    if (!Slots[I].Tenant.empty() && Slots[I].Tenant == Tenant)
      return static_cast<int>(I);
  return -1;
}

Engine *EnginePool::tenantEngine(const std::string &Tenant) {
  int S = slotOf(Tenant);
  return S < 0 ? nullptr : Slots[S].E.get();
}

void EnginePool::removeObserver(PoolObserver *O) {
  Observers.erase(std::remove(Observers.begin(), Observers.end(), O),
                  Observers.end());
}

void EnginePool::warmSlot(unsigned SlotIndex) {
  Slot &S = Slots[SlotIndex];
  EngineConfig EC = Cfg.Base;
  if (Cfg.Chaos) {
    EC.Faults.Enabled = true;
    // Distinct deterministic stream per slot and per warm generation: a
    // replacement engine does not replay its predecessor's fault sequence
    // (retrying into the identical trip would defeat recovery), but the
    // same pool configuration always produces the same sequences.
    EC.Faults.Seed =
        Cfg.ChaosSeed + SlotIndex * 0x9E3779B9u + S.Warmed * 7919u;
  }
  // Warm start: a tenant returning to the pool resumes from its parked
  // snapshot; otherwise the pool-wide snapshot (if any) stands in. Either
  // way the engine skips the warmup tax — its first request compiles at
  // peak tier from the restored profiles.
  std::shared_ptr<const std::vector<uint8_t>> Snap;
  auto Parked = TenantSnapshots.find(S.Tenant);
  if (Parked != TenantSnapshots.end())
    Snap = Parked->second;
  else if (Cfg.WarmStartSnapshot)
    Snap = Cfg.WarmStartSnapshot;
  if (Snap) {
    EC.ProfileSnapshot = Snap;
    EC.ProfilePersistence = true;
  }
  S.E = std::make_unique<Engine>(EC);
  if (Snap) {
    if (S.E->snapshotRestoreError().empty()) {
      ++Metrics.counter("host.pool.warm_starts");
    } else {
      // Rejected snapshots cold-start cleanly; record it for operators.
      ++Metrics.counter("host.pool.warm_start_rejected");
    }
  }
  S.Generation = S.Warmed;
  ++S.Warmed;
  S.WarmupFailed = false;
  if (!Cfg.WarmupSource.empty()) {
    if (!S.E->load(Cfg.WarmupSource) || !S.E->runTopLevel())
      S.WarmupFailed = true; // Engine still serves; the next load() resets.
  }
}

bool EnginePool::runOn(unsigned SlotIndex, const ServiceRequest &R,
                       bool Degraded, size_t RequestIndex,
                       ServiceResult &Out) {
  Slot &S = Slots[SlotIndex];
  Engine &E = *S.E;

  E.beginServiceRequest();
  E.setRequestBudget(R.Budget.any() ? R.Budget : Cfg.Base.Budget);
  if (Degraded)
    E.pinBaselineTier(true);

  const uint64_t AuditBefore =
      E.auditor() ? E.auditor()->failureCount() : 0;

  bool Ok = E.load(R.Source) && E.runTopLevel();
  if (Ok && !R.EntryPoint.empty()) {
    E.callGlobal(R.EntryPoint);
    Ok = !E.halted();
  }
  // A final audit catches coherence damage the request caused even when no
  // further deopt/tier-up boundary would have looked.
  E.auditNow("request-final");

  Out.Output = E.output();
  Out.Slot = static_cast<int>(SlotIndex);
  Out.Degraded = Degraded;
  Out.FaultTrips =
      E.faultInjector() ? E.faultInjector()->trips().size() : 0;
  ++Out.Attempts;

  const bool Budgeted = E.budgetExceeded();
  if (Ok) {
    Out.Status = RequestStatus::Ok;
    Out.Error.clear();
  } else if (Budgeted) {
    Out.Status = RequestStatus::BudgetExceeded;
    Out.BudgetTripped = E.budgetExceededKind();
    Out.Error = E.lastError();
  } else {
    Out.Status = RequestStatus::Error;
    Out.Error = E.lastError();
  }

  const uint64_t AuditDelta =
      (E.auditor() ? E.auditor()->failureCount() : 0) - AuditBefore;
  // Fault-attributed: the request failed (not by budget — a budget stop is
  // a deliberate, clean halt) while injected faults fired during it. The
  // transparency contract says faults alone never change output, so this
  // combination means either a genuine program error that happened to
  // coincide with chaos (retry confirms cheaply) or escaped fault damage
  // (retry on a fresh engine recovers).
  const bool FaultAttributed =
      !Ok && !Budgeted && Out.FaultTrips > 0;
  const bool Quarantine = AuditDelta > 0 || FaultAttributed;

  if (Quarantine) {
    QuarantineRecord Rec;
    Rec.Slot = SlotIndex;
    Rec.Generation = S.Generation;
    Rec.Tenant = S.Tenant;
    Rec.RequestIndex = RequestIndex;
    Rec.Reason = AuditDelta > 0 ? "invariant-audit" : "fault-attributed-halt";
    if (E.faultInjector())
      Rec.TripLog = E.faultInjector()->renderTripLog();
    if (E.auditor()) {
      const std::vector<std::string> &Fails = E.auditor()->failures();
      for (size_t I = Fails.size() >= AuditDelta ? Fails.size() - AuditDelta
                                                 : 0;
           I < Fails.size(); ++I)
        Rec.AuditFailures.push_back(Fails[I]);
    }
    S.PendingQuarantines.push_back(std::move(Rec));
    Out.Quarantined = true;
    // Pull from rotation now: the next queued request on this slot must
    // not run on a tripped engine.
    warmSlot(SlotIndex);
  }

  for (PoolObserver *O : Observers)
    O->onComplete(RequestIndex, Out);
  return FaultAttributed;
}

std::vector<ServiceResult>
EnginePool::serve(const std::vector<ServiceRequest> &Requests, unsigned Jobs) {
  std::vector<ServiceResult> Results(Requests.size());

  //===--------------------------------------------------------------------===//
  // Stage 1: admission (serial, arrival order).
  //===--------------------------------------------------------------------===//
  for (Slot &S : Slots)
    S.Queue.clear();

  std::vector<int> AdmittedSlot(Requests.size(), -1);
  std::vector<char> DegradedFlag(Requests.size(), 0);
  unsigned Admitted = 0;
  std::vector<std::pair<std::string, unsigned>> TenantCounts;
  auto tenantCount = [&](const std::string &T) -> unsigned & {
    for (auto &TC : TenantCounts)
      if (TC.first == T)
        return TC.second;
    TenantCounts.emplace_back(T, 0);
    return TenantCounts.back().second;
  };

  for (size_t I = 0; I < Requests.size(); ++I) {
    const ServiceRequest &R = Requests[I];
    auto shed = [&](RequestStatus Why) {
      Results[I].Status = Why;
      ++Metrics.counter(std::string("host.pool.shed.") +
                        requestStatusName(Why));
      for (PoolObserver *O : Observers)
        O->onShed(I, Why);
    };

    if (Admitted >= Cfg.QueueCapacity) {
      shed(RequestStatus::ShedQueueFull);
      continue;
    }
    unsigned &TC = tenantCount(R.Tenant);
    if (TC >= Cfg.MaxQueuedPerTenant) {
      shed(RequestStatus::ShedTenantCap);
      continue;
    }
    int SlotIndex = slotOf(R.Tenant);
    if (SlotIndex < 0) {
      // Bind the first free slot; warm an engine into it.
      for (size_t SI = 0; SI < Slots.size(); ++SI)
        if (Slots[SI].Tenant.empty()) {
          SlotIndex = static_cast<int>(SI);
          Slots[SI].Tenant = R.Tenant;
          warmSlot(static_cast<unsigned>(SI));
          break;
        }
      if (SlotIndex < 0) {
        // No free slot: recycle the least-recently-served slot that is
        // idle this batch. The outgoing tenant's warm profile is parked
        // as a snapshot (it resumes warm on return) and a *fresh* engine
        // is constructed for the new tenant — isolation holds because no
        // engine ever serves two tenants. All serial, so the eviction
        // choice is identical for any Jobs count.
        uint64_t Oldest = ~uint64_t(0);
        for (size_t SI = 0; SI < Slots.size(); ++SI) {
          const Slot &S = Slots[SI];
          if (!S.Queue.empty())
            continue; // Serving another tenant in this very batch.
          if (S.LastServedSeq < Oldest) {
            Oldest = S.LastServedSeq;
            SlotIndex = static_cast<int>(SI);
          }
        }
        if (SlotIndex < 0) {
          shed(RequestStatus::ShedNoEngine);
          continue;
        }
        Slot &Victim = Slots[SlotIndex];
        if (Victim.E)
          TenantSnapshots[Victim.Tenant] =
              std::make_shared<const std::vector<uint8_t>>(
                  Victim.E->snapshotProfile());
        ++Metrics.counter("host.pool.recycles");
        Victim.Tenant = R.Tenant;
        warmSlot(static_cast<unsigned>(SlotIndex));
      }
    }

    ++Admitted;
    ++TC;
    Slots[SlotIndex].LastServedSeq = ++AdmissionSeq;
    // Degradation band: above the threshold but under capacity, serve in
    // the baseline tier rather than shedding.
    bool Degraded = Admitted > Cfg.DegradeThreshold;
    AdmittedSlot[I] = SlotIndex;
    DegradedFlag[I] = Degraded ? 1 : 0;
    Slots[SlotIndex].Queue.push_back(I);
    for (PoolObserver *O : Observers)
      O->onAdmit(I, static_cast<unsigned>(SlotIndex), Degraded);
  }

  //===--------------------------------------------------------------------===//
  // Stage 2: execution (parallel across slots, serial within each slot).
  //===--------------------------------------------------------------------===//
  std::vector<char> RetryEligible(Requests.size(), 0);
  unsigned EffJobs = std::min<unsigned>(std::max(Jobs, 1u),
                                        static_cast<unsigned>(Slots.size()));
  runIndexed(Slots.size(), EffJobs, [&](size_t SI) {
    Slot &S = Slots[SI];
    if (!S.E)
      return;
    for (size_t ReqIdx : S.Queue)
      RetryEligible[ReqIdx] =
          runOn(static_cast<unsigned>(SI), Requests[ReqIdx],
                DegradedFlag[ReqIdx] != 0, ReqIdx, Results[ReqIdx])
              ? 1
              : 0;
  });

  //===--------------------------------------------------------------------===//
  // Stage 3: recovery (serial, arrival order).
  //===--------------------------------------------------------------------===//
  // Merge per-slot quarantine buffers in triggering-request order so the
  // pool log is deterministic regardless of worker interleaving.
  {
    std::vector<QuarantineRecord> Merged;
    for (Slot &S : Slots) {
      for (QuarantineRecord &R : S.PendingQuarantines)
        Merged.push_back(std::move(R));
      S.PendingQuarantines.clear();
    }
    std::sort(Merged.begin(), Merged.end(),
              [](const QuarantineRecord &A, const QuarantineRecord &B) {
                return A.RequestIndex < B.RequestIndex;
              });
    for (QuarantineRecord &R : Merged) {
      for (PoolObserver *O : Observers)
        O->onQuarantine(R);
      Quarantines.push_back(std::move(R));
    }
  }

  for (size_t I = 0; I < Requests.size(); ++I) {
    if (!RetryEligible[I])
      continue;
    int SlotIndex = AdmittedSlot[I];
    for (unsigned Attempt = 1;
         Attempt <= Cfg.MaxRetries &&
         Results[I].Status == RequestStatus::Error && Results[I].Quarantined;
         ++Attempt) {
      Results[I].BackoffSteps += Attempt; // Recorded 1+2+... backoff.
      ++Metrics.counter("host.pool.retries");
      for (PoolObserver *O : Observers)
        O->onRetry(I, Attempt, static_cast<unsigned>(SlotIndex));
      ServiceResult Retry;
      Retry.Attempts = Results[I].Attempts;
      Retry.BackoffSteps = Results[I].BackoffSteps;
      bool StillFaulty = runOn(static_cast<unsigned>(SlotIndex), Requests[I],
                               DegradedFlag[I] != 0, I, Retry);
      Retry.Degraded = DegradedFlag[I] != 0;
      Results[I] = std::move(Retry);
      // Retry-pass quarantines land in the pool log immediately (we are
      // already serial here).
      Slot &S = Slots[SlotIndex];
      for (QuarantineRecord &R : S.PendingQuarantines) {
        for (PoolObserver *O : Observers)
          O->onQuarantine(R);
        Quarantines.push_back(std::move(R));
      }
      S.PendingQuarantines.clear();
      if (!StillFaulty)
        break;
    }
  }

  //===--------------------------------------------------------------------===//
  // Metrics aggregation (serial; deterministic regardless of Jobs).
  //===--------------------------------------------------------------------===//
  Metrics.counter("host.pool.requests") += Requests.size();
  Metrics.counter("host.pool.admitted") += Admitted;
  for (const ServiceResult &R : Results) {
    switch (R.Status) {
    case RequestStatus::Ok:
      ++Metrics.counter("host.pool.ok");
      break;
    case RequestStatus::Error:
      ++Metrics.counter("host.pool.error");
      break;
    case RequestStatus::BudgetExceeded:
      ++Metrics.counter("host.pool.budget_exceeded");
      ++Metrics.counter(std::string("host.pool.budget.") +
                        budgetKindName(R.BudgetTripped));
      break;
    default:
      break; // Shed counters were charged at admission.
    }
    if (R.Degraded && R.Slot >= 0)
      ++Metrics.counter("host.pool.degraded");
  }
  unsigned Warmed = 0;
  for (const Slot &S : Slots)
    Warmed += S.Warmed;
  TotalWarmed = Warmed;
  Metrics.counter("host.pool.engines_warmed") = TotalWarmed;
  Metrics.counter("host.pool.quarantines") = Quarantines.size();

  // Trace export (serial, slot order). Guarded by the config so a
  // tracing-off pool never touches the hook and serves byte-identically
  // to a pool built before traces existed.
  if (Cfg.Base.Trace.Enabled && !Observers.empty())
    for (const TenantTraceSummary &S : traceSummaries())
      for (PoolObserver *O : Observers)
        O->onTraceExport(S);

  return Results;
}

std::vector<TenantTraceSummary> EnginePool::traceSummaries() const {
  std::vector<TenantTraceSummary> Out;
  for (size_t SI = 0; SI < Slots.size(); ++SI) {
    const Slot &S = Slots[SI];
    if (!S.E || S.Tenant.empty())
      continue;
    const TraceRecorder *T = S.E->trace();
    if (!T)
      continue;
    TenantTraceSummary Sum;
    Sum.Slot = static_cast<unsigned>(SI);
    Sum.Generation = S.Generation;
    Sum.Tenant = S.Tenant;
    Sum.Accepted = T->accepted();
    Sum.Dropped = T->dropped();
    for (unsigned K = 0; K < NumTraceEventKinds; ++K)
      Sum.Totals[K] = T->total(static_cast<TraceEventKind>(K));
    Out.push_back(std::move(Sum));
  }
  return Out;
}

void EnginePool::quarantineTenantEngine(const std::string &Tenant,
                                        const char *Reason) {
  int SlotIndex = slotOf(Tenant);
  if (SlotIndex < 0)
    return;
  Slot &S = Slots[SlotIndex];
  QuarantineRecord Rec;
  Rec.Slot = static_cast<unsigned>(SlotIndex);
  Rec.Generation = S.Generation;
  Rec.Tenant = Tenant;
  Rec.RequestIndex = 0;
  Rec.Reason = Reason;
  if (S.E && S.E->faultInjector())
    Rec.TripLog = S.E->faultInjector()->renderTripLog();
  for (PoolObserver *O : Observers)
    O->onQuarantine(Rec);
  Quarantines.push_back(std::move(Rec));
  warmSlot(static_cast<unsigned>(SlotIndex));
  unsigned Warmed = 0;
  for (const Slot &SS : Slots)
    Warmed += SS.Warmed;
  TotalWarmed = Warmed;
  Metrics.counter("host.pool.engines_warmed") = TotalWarmed;
  Metrics.counter("host.pool.quarantines") = Quarantines.size();
}
