//===- core/Runner.cpp ----------------------------------------------------===//

#include "core/Runner.h"

#include "vm/EngineObserver.h"
#include "vm/VMState.h"

#include <chrono>

using namespace ccjs;

namespace {

/// Pins the simulated position of the run's first successful tier-up —
/// the moment the engine reaches peak tier (time-to-peak, BenchRun docs).
struct TierUpWatcher final : public EngineObserver {
  bool Seen = false;
  uint64_t Instr = 0;
  double Cycles = 0;
  void onTierUp(VMState &VM, const TierUpEvent &E) override {
    if (Seen || !E.Succeeded)
      return;
    Seen = true;
    Instr = VM.Ctx.instrs().total();
    Cycles = VM.Ctx.totalCycles();
  }
};

} // namespace

BenchRun ccjs::runSteadyState(const EngineConfig &Config,
                              std::string_view Source, int Iterations) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  };
  BenchRun R;
  TierUpWatcher Watch;
  Engine E(Config);
  E.addObserver(&Watch);
  auto Finish = [&] {
    R.HostSeconds = Elapsed();
    R.TieredUp = Watch.Seen;
    R.FirstTierUpInstr = Watch.Instr;
    R.FirstTierUpCycles = Watch.Cycles;
  };
  if (!E.load(Source) || !E.runTopLevel()) {
    R.Error = E.lastError();
    Finish();
    return R;
  }
  for (int I = 0; I < Iterations; ++I) {
    if (I == Iterations - 1)
      E.resetStats();
    E.callGlobal("run");
    if (E.halted()) {
      R.Error = E.lastError();
      Finish();
      return R;
    }
  }
  R.Ok = true;
  R.Steady = E.stats();
  R.Output = E.output();
  Finish();
  // resetStats() before the last iteration zeroed these too, so they cover
  // exactly the measured iteration.
  R.HostDispatches = E.hostDispatches();
  R.HostFusedSaved = E.hostFusedSaved();
  return R;
}

Comparison ccjs::compareConfigs(std::string_view Source,
                                const EngineConfig &Base, int Iterations) {
  Comparison C;

  // Baseline leg: no check-removal backend at all.
  EngineConfig BaselineCfg = Base;
  BaselineCfg.CheckRemoval = CheckRemovalBackend::None;
  BaselineCfg.ClassCacheEnabled = false;
  C.Baseline = runSteadyState(BaselineCfg, Source, Iterations);

  // Mechanism leg: the backend \p Base requests. A config that predates
  // the CheckRemovalBackend enum (CheckRemoval unset and the Class Cache
  // toggled by bool) resolves through effectiveCheckRemoval; a fully
  // default Base measures the paper's ClassCache mechanism, exactly as
  // before the redesign.
  EngineConfig MechCfg = Base;
  CheckRemovalBackend Backend = Base.effectiveCheckRemoval();
  if (Backend == CheckRemovalBackend::None)
    Backend = CheckRemovalBackend::ClassCache;
  MechCfg.CheckRemoval = Backend;
  MechCfg.ClassCacheEnabled = Backend == CheckRemovalBackend::ClassCache ||
                              Backend == CheckRemovalBackend::Both;
  C.ClassCache = runSteadyState(MechCfg, Source, Iterations);

  if (!C.Baseline.Ok || !C.ClassCache.Ok)
    return C;
  C.OutputsMatch = C.Baseline.Output == C.ClassCache.Output;

  // A zero denominator means the quantity was never measured (e.g. a
  // workload that never tiers up executes no optimized cycles): report the
  // metric as absent rather than a silent 0%.
  auto Pct = [](double Base, double New) -> std::optional<double> {
    if (Base <= 0 || New <= 0)
      return std::nullopt;
    return (Base / New - 1.0) * 100.0;
  };
  C.SpeedupWhole =
      Pct(C.Baseline.Steady.CyclesTotal, C.ClassCache.Steady.CyclesTotal);
  C.SpeedupOptimized = Pct(C.Baseline.Steady.CyclesOptimized,
                           C.ClassCache.Steady.CyclesOptimized);
  auto Red = [](double Base, double New) -> std::optional<double> {
    if (Base <= 0)
      return std::nullopt;
    return (1.0 - New / Base) * 100.0;
  };
  C.EnergyReductionWhole = Red(C.Baseline.Steady.EnergyTotal.total(),
                               C.ClassCache.Steady.EnergyTotal.total());
  C.EnergyReductionOptimized =
      Red(C.Baseline.Steady.EnergyOptimized.total(),
          C.ClassCache.Steady.EnergyOptimized.total());
  return C;
}
