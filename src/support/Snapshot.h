//===- support/Snapshot.h - Versioned binary snapshot codec ---------------===//
//
// Length-prefixed, CRC-guarded container for profile snapshots. The codec
// knows nothing about engine state: it provides little-endian scalar
// primitives, strings, raw blobs, and numbered sections. Readers validate
// the magic, version, declared payload length, and a CRC32 over the payload
// before any field is handed out, so a consumer either sees a fully intact
// payload or a clean failure — never a torn one.
//
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_SNAPSHOT_H
#define CCJS_SUPPORT_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ccjs {

/// CRC32 (reflected, polynomial 0xEDB88320) over \p Data.
uint32_t snapshotCrc32(const uint8_t *Data, size_t Len);

/// Appends scalars, strings, blobs, and numbered sections to a payload
/// buffer; finish() wraps the payload in the magic/version/CRC envelope.
class SnapshotWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) { le(V, 2); }
  void u32(uint32_t V) { le(V, 4); }
  void u64(uint64_t V) { le(V, 8); }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  void blob(const uint8_t *Data, size_t Len) {
    u64(Len);
    Buf.insert(Buf.end(), Data, Data + Len);
  }

  /// Opens a numbered section: writes the id and reserves a u64 length
  /// slot. Returns a token for endSection().
  size_t beginSection(uint32_t Id) {
    u32(Id);
    size_t Patch = Buf.size();
    u64(0);
    return Patch;
  }
  /// Backpatches the section length reserved by beginSection().
  void endSection(size_t Patch) {
    uint64_t Len = Buf.size() - (Patch + 8);
    for (unsigned I = 0; I < 8; ++I)
      Buf[Patch + I] = static_cast<uint8_t>(Len >> (8 * I));
  }

  /// Returns the complete snapshot: magic, format version, payload length,
  /// payload CRC32, payload bytes.
  std::vector<uint8_t> finish(uint32_t Version) const;

private:
  void le(uint64_t V, unsigned Bytes) {
    for (unsigned I = 0; I < Bytes; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  std::vector<uint8_t> Buf;
};

/// Bounds-checked reader over a snapshot produced by SnapshotWriter.
/// open() validates the envelope (magic, version, length, CRC) up front;
/// every accessor returns false on underflow instead of reading past the
/// payload, and a failed accessor leaves the reader permanently failed.
class SnapshotReader {
public:
  /// Validates the envelope of \p Data. On failure returns false and sets
  /// \p Err to a one-line reason; the reader must not be used. Snapshots
  /// with a version newer than \p MaxVersion are rejected (future format).
  bool open(const std::vector<uint8_t> &Data, uint32_t MaxVersion,
            std::string &Err);

  uint32_t version() const { return Version; }

  bool u8(uint8_t &V);
  bool u16(uint16_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  bool str(std::string &S);
  bool blob(std::vector<uint8_t> &B);

  /// Reads a section header and checks it carries \p ExpectedId and a
  /// length that fits in the remaining payload.
  bool enterSection(uint32_t ExpectedId);

  /// True when the whole payload has been consumed without failure.
  bool done() const { return !Failed && Pos == End; }
  bool failed() const { return Failed; }

private:
  bool take(void *Out, size_t Len);
  const uint8_t *Base = nullptr;
  size_t Pos = 0;
  size_t End = 0;
  uint32_t Version = 0;
  bool Failed = true;
};

} // namespace ccjs

#endif // CCJS_SUPPORT_SNAPSHOT_H
