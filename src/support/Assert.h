//===- support/Assert.h - Assertion helpers --------------------*- C++ -*-===//
///
/// \file
/// Assertion and unreachable-code helpers used across the ccjs libraries.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_ASSERT_H
#define CCJS_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace ccjs {

/// Reports an internal invariant violation and aborts.
///
/// Used to mark control flow that must never be reached if the program's
/// invariants hold (e.g. a fully-covered switch over an enum).
[[noreturn]] inline void unreachable(const char *Msg, const char *File,
                                     int Line) {
  std::fprintf(stderr, "ccjs fatal: unreachable executed at %s:%d: %s\n", File,
               Line, Msg);
  std::abort();
}

/// Reports a failed CCJS_ASSERT and aborts.
[[noreturn]] inline void assertFail(const char *Cond, const char *Msg,
                                    const char *File, int Line) {
  std::fprintf(stderr, "ccjs fatal: assertion `%s` failed at %s:%d: %s\n",
               Cond, File, Line, Msg);
  std::abort();
}

} // namespace ccjs

#define CCJS_UNREACHABLE(MSG) ::ccjs::unreachable(MSG, __FILE__, __LINE__)

/// An assertion that stays on in Release builds. Use it for checks that
/// guard simulated-memory indexing (ClassList / ClassCache / CacheSim
/// geometry and address ranges): a silent out-of-range index corrupts the
/// simulated machine state and invalidates every measurement downstream,
/// which is far worse than the cost of the check.
#define CCJS_ASSERT(COND, MSG)                                                 \
  do {                                                                         \
    if (!(COND))                                                               \
      ::ccjs::assertFail(#COND, MSG, __FILE__, __LINE__);                      \
  } while (false)

#endif // CCJS_SUPPORT_ASSERT_H
