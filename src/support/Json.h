//===- support/Json.h - Minimal JSON value, writer and parser ---*- C++ -*-===//
///
/// \file
/// A small JSON library for the benchmark harness: every bench binary
/// serializes its per-workload measurements through it (--json=<path>) and
/// `tools/bench_diff` parses the resulting reports back to compare runs.
///
/// Design points that matter for measurement reports:
///  * Objects preserve insertion order, so emitted reports are byte-stable
///    across runs and thread counts (the harness requires --jobs=N output
///    to be byte-identical to the serial run).
///  * Numbers are written with the shortest round-tripping representation
///    (std::to_chars), so parse(dump(x)) == x exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_JSON_H
#define CCJS_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ccjs::json {

/// A JSON value: null, boolean, number, string, array or (ordered) object.
class Value {
public:
  enum class Kind : uint8_t { Null, Boolean, Number, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(std::nullptr_t) : K(Kind::Null) {}
  Value(bool B) : K(Kind::Boolean), Bool(B) {}
  Value(double N) : K(Kind::Number), Num(N) {}
  Value(int N) : K(Kind::Number), Num(N) {}
  Value(unsigned N) : K(Kind::Number), Num(N) {}
  Value(long N) : K(Kind::Number), Num(static_cast<double>(N)) {}
  Value(unsigned long N) : K(Kind::Number), Num(static_cast<double>(N)) {}
  Value(long long N) : K(Kind::Number), Num(static_cast<double>(N)) {}
  Value(unsigned long long N) : K(Kind::Number), Num(static_cast<double>(N)) {}
  Value(std::string S) : K(Kind::String), Str(std::move(S)) {}
  Value(std::string_view S) : K(Kind::String), Str(S) {}
  Value(const char *S) : K(Kind::String), Str(S) {}
  /// An optional number maps to the number or to JSON null — the harness
  /// uses this for unmeasurable metrics (e.g. speedups with a zero
  /// denominator).
  Value(const std::optional<double> &N)
      : K(N ? Kind::Number : Kind::Null), Num(N ? *N : 0) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Boolean; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return Bool; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }

  //===------------------------------------------------------------------===//
  // Arrays
  //===------------------------------------------------------------------===//

  void push(Value V) { Elems.push_back(std::move(V)); }
  size_t size() const {
    return K == Kind::Array ? Elems.size() : Members.size();
  }
  const Value &at(size_t I) const { return Elems[I]; }
  const std::vector<Value> &elements() const { return Elems; }

  //===------------------------------------------------------------------===//
  // Objects (insertion-ordered)
  //===------------------------------------------------------------------===//

  /// Sets \p Key to \p V, overwriting an existing member in place or
  /// appending a new one.
  void set(std::string_view Key, Value V);

  /// Returns the member value or null when absent.
  const Value *find(std::string_view Key) const;

  /// Member lookup walking a dotted path, e.g. "comparison.speedup_whole".
  /// Returns null when any component is missing or not an object.
  const Value *findPath(std::string_view DottedPath) const;

  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  //===------------------------------------------------------------------===//
  // Serialization
  //===------------------------------------------------------------------===//

  /// Renders the value. \p Indent == 0 emits the compact form; a positive
  /// indent pretty-prints with that many spaces per nesting level. Output
  /// is deterministic: object order is insertion order and numbers use the
  /// shortest round-tripping form.
  std::string dump(unsigned Indent = 0) const;

  /// Parses \p Text; on failure returns std::nullopt and, when \p Err is
  /// non-null, a message with the byte offset of the problem.
  static std::optional<Value> parse(std::string_view Text,
                                    std::string *Err = nullptr);

private:
  void dumpTo(std::string &Out, unsigned Indent, unsigned Depth) const;

  Kind K;
  bool Bool = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Formats a double the way the writer does (shortest round-trip form);
/// exposed so tests and tools can render numbers consistently.
std::string formatNumber(double N);

} // namespace ccjs::json

#endif // CCJS_SUPPORT_JSON_H
