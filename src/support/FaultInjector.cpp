//===- support/FaultInjector.cpp ------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/Assert.h"

#include <cinttypes>
#include <cstdio>

using namespace ccjs;

namespace {

/// Per-point occurrence-period ranges the seed picks from. Ranges are tuned
/// so every point trips many times over a differential-test sized run while
/// leaving enough fault-free stretches for tier-up to happen at all.
struct PointSpec {
  const char *Name;
  uint32_t PeriodMin, PeriodMax;
};

constexpr PointSpec Specs[NumFaultPoints] = {
    {"cc-evict", 13, 211},
    {"spurious-invalidate", 23, 401},
    {"stale-feedback", 3, 17},
    {"guard-fail", 11, 301},
    {"alloc-pressure", 7, 61},
};

uint64_t splitmix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

} // namespace

FaultInjector::FaultInjector(const FaultConfig &Cfg)
    : Seed(Cfg.Seed ? Cfg.Seed : 1) {
  AuxState = Seed ^ 0xA5A5A5A5DEADBEEFull;
  for (unsigned P = 0; P < NumFaultPoints; ++P) {
    PointState &St = Points[P];
    int32_t Override = Cfg.Schedule[P];
    if (Override < 0)
      continue; // Disabled: Period stays 0, fire() never trips.
    if (Override > 0) {
      St.Period = static_cast<uint32_t>(Override);
      St.Phase = 0;
      continue;
    }
    // Give each point its own stream so schedules are independent of the
    // enum ordering staying stable across points that fire.
    uint64_t Stream = Seed + 0x100 * (uint64_t(P) + 1);
    const PointSpec &Spec = Specs[P];
    St.Period =
        Spec.PeriodMin + splitmix64(Stream) % (Spec.PeriodMax - Spec.PeriodMin + 1);
    St.Phase = static_cast<uint32_t>(splitmix64(Stream) % St.Period);
  }
}

bool FaultInjector::fire(FaultPoint P) {
  PointState &St = Points[static_cast<unsigned>(P)];
  uint64_t Occ = ++St.Occurrence;
  if (St.Period == 0 || Occ % St.Period != St.Phase)
    return false;
  ++St.Fired;
  FaultTrip Trip{P, Occ};
  if (Trips.size() < MaxRecordedTrips)
    Trips.push_back(Trip);
  if (TripHook)
    TripHook(Trip);
  return true;
}

uint64_t FaultInjector::auxRandom() { return splitmix64(AuxState); }

const char *FaultInjector::pointName(FaultPoint P) {
  unsigned I = static_cast<unsigned>(P);
  CCJS_ASSERT(I < NumFaultPoints, "invalid fault point");
  return Specs[I].Name;
}

bool FaultInjector::pointFromName(const std::string &Name, FaultPoint &Out) {
  for (unsigned P = 0; P < NumFaultPoints; ++P)
    if (Name == Specs[P].Name) {
      Out = static_cast<FaultPoint>(P);
      return true;
    }
  return false;
}

std::string FaultInjector::renderTripLog() const {
  std::string Out;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "chaos seed=%" PRIu64 "\n", Seed);
  Out += Buf;
  for (const FaultTrip &T : Trips) {
    std::snprintf(Buf, sizeof(Buf), "trip %s occ=%" PRIu64 "\n",
                  pointName(T.Point), T.Occurrence);
    Out += Buf;
  }
  for (unsigned P = 0; P < NumFaultPoints; ++P) {
    const PointState &St = Points[P];
    std::snprintf(Buf, sizeof(Buf),
                  "point %s period=%u phase=%u occurrences=%" PRIu64
                  " fired=%" PRIu64 "\n",
                  Specs[P].Name, St.Period, St.Phase, St.Occurrence, St.Fired);
    Out += Buf;
  }
  return Out;
}
