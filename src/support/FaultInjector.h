//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
///
/// \file
/// The chaos engine: a seeded, deterministic fault injector for the
/// speculation machinery. Hot paths consult named fault points; each point
/// fires on an exact occurrence schedule derived from the seed, so the same
/// seed always produces the same fault sequence (and a byte-identical trip
/// log), making any chaos failure replayable.
///
/// The injector is entirely host-side: it never emits simulated machine
/// events itself. The faults it triggers (evictions, invalidations, guard
/// failures) flow through the production recovery paths, which charge their
/// own events — chaos runs exercise the real machinery, not a mock of it.
///
/// Transparency contract: every fault point may only *degrade* the engine
/// (lose profile state, force the slow path, deopt) — never fabricate a
/// fact the guard machinery would trust. Under any schedule the observable
/// program output must equal the interpreter-only reference.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_FAULTINJECTOR_H
#define CCJS_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ccjs {

/// Named fault points consulted by the speculation stack.
enum class FaultPoint : uint8_t {
  /// ClassCache::accessStore — evict the target entry (writing back dirty
  /// data) before the lookup, forcing the miss/refill path.
  CcForcedEviction,
  /// runClassCacheRequest — raise a spurious invalidation for the stored
  /// slot: ValidMap clear + descendant propagation + dependent deopts, as
  /// if a mismatching store had occurred.
  SpuriousInvalidation,
  /// Tier-up — poison one feedback site before compiling, modeling feedback
  /// that went stale between profiling and optimization.
  StaleFeedback,
  /// Executor check ops — force the guard to fail, taking the deopt exit
  /// with the frame materialization path.
  ForcedGuardFail,
  /// Heap allocation — insert padding allocations, shifting heap layout
  /// and cache behaviour like allocation pressure would.
  AllocPressure,
};

inline constexpr unsigned NumFaultPoints = 5;

/// Chaos configuration, hung off EngineConfig. Disabled by default; when
/// disabled no FaultInjector is created and the hot paths only ever pay a
/// null-pointer test on the host (zero simulated events either way).
struct FaultConfig {
  bool Enabled = false;
  uint64_t Seed = 1;
  /// Per-point schedule override, indexed by FaultPoint:
  ///   0  derive period and phase from the seed (the default),
  ///  -1  disable the point,
  ///  N>0 fire on every Nth occurrence exactly (N=1: every occurrence).
  int32_t Schedule[NumFaultPoints] = {0, 0, 0, 0, 0};
};

/// One fired fault, recorded in occurrence order.
struct FaultTrip {
  FaultPoint Point;
  /// 1-based occurrence index of the point when it fired.
  uint64_t Occurrence;
};

class FaultInjector {
public:
  explicit FaultInjector(const FaultConfig &Cfg);

  /// Counts one occurrence of \p P and returns true when the schedule says
  /// this occurrence trips. A trip is appended to the replayable log.
  bool fire(FaultPoint P);

  /// Installs a callback invoked on every trip (even ones past the recorded
  /// log bound). The VM uses this to forward trips to its EngineObservers,
  /// cross-linking the trip log with trace events.
  void setTripHook(std::function<void(const FaultTrip &)> Hook) {
    TripHook = std::move(Hook);
  }

  /// Deterministic auxiliary stream for fault *parameters* (which poison to
  /// apply, how much padding). Separate from the schedules so consuming
  /// parameters never perturbs when faults fire.
  uint64_t auxRandom();

  uint64_t seed() const { return Seed; }
  const std::vector<FaultTrip> &trips() const { return Trips; }
  uint64_t tripCount(FaultPoint P) const {
    return Points[static_cast<unsigned>(P)].Fired;
  }
  uint64_t occurrences(FaultPoint P) const {
    return Points[static_cast<unsigned>(P)].Occurrence;
  }

  /// Renders the trip log as text: a header, one line per recorded trip,
  /// and per-point totals. Byte-identical for identical seeds and schedules
  /// over a deterministic execution.
  std::string renderTripLog() const;

  /// Clears the recorded trip log and the per-point Fired totals while
  /// leaving the occurrence counters and schedules untouched, so the fault
  /// *stream* continues deterministically across pooled service requests
  /// but each request's log attributes only its own trips.
  void clearTrips() {
    Trips.clear();
    for (PointState &P : Points)
      P.Fired = 0;
  }

  static const char *pointName(FaultPoint P);
  /// Parses a --chaos-only style name; returns false on unknown names.
  static bool pointFromName(const std::string &Name, FaultPoint &Out);

private:
  struct PointState {
    uint64_t Occurrence = 0;
    uint64_t Fired = 0;
    uint32_t Period = 0; // 0 = never fires.
    uint32_t Phase = 0;  // Fires when Occurrence % Period == Phase.
  };

  /// Trips beyond this are still counted but not recorded, bounding log
  /// memory on very long runs.
  static constexpr size_t MaxRecordedTrips = 1u << 16;

  uint64_t Seed;
  PointState Points[NumFaultPoints];
  uint64_t AuxState;
  std::vector<FaultTrip> Trips;
  std::function<void(const FaultTrip &)> TripHook;
};

} // namespace ccjs

#endif // CCJS_SUPPORT_FAULTINJECTOR_H
