//===- support/PairHistogram.h - Dense adjacency histogram ------*- C++ -*-===//
///
/// \file
/// Dense NxN counter matrix for dynamic opcode-adjacency profiling: cell
/// (Prev, Cur) counts how often opcode Cur executed immediately after
/// opcode Prev in the optimized executor. Fusion candidates are mined from
/// the hottest cells (`tools/ccjs --op-hist`) instead of hand-picked.
///
/// Header-only and IR-agnostic — the jit layer instantiates it with
/// NumIrOpcodes and owns the opcode-name rendering.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_PAIRHISTOGRAM_H
#define CCJS_SUPPORT_PAIRHISTOGRAM_H

#include <cstdint>
#include <vector>

namespace ccjs {

class PairHistogram {
public:
  explicit PairHistogram(unsigned NumSymbols)
      : N(NumSymbols), Cells(size_t(NumSymbols) * NumSymbols, 0) {}

  void record(unsigned Prev, unsigned Cur) { ++Cells[size_t(Prev) * N + Cur]; }

  uint64_t count(unsigned Prev, unsigned Cur) const {
    return Cells[size_t(Prev) * N + Cur];
  }

  unsigned numSymbols() const { return N; }

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : Cells)
      Sum += C;
    return Sum;
  }

  /// The (Prev, Cur, Count) cells with nonzero counts, hottest first; ties
  /// broken by (Prev, Cur) so the order is deterministic.
  struct Entry {
    unsigned Prev = 0;
    unsigned Cur = 0;
    uint64_t Count = 0;
  };
  std::vector<Entry> top(size_t MaxEntries) const {
    std::vector<Entry> All;
    for (unsigned P = 0; P < N; ++P)
      for (unsigned C = 0; C < N; ++C)
        if (uint64_t K = count(P, C))
          All.push_back({P, C, K});
    for (size_t I = 0; I < All.size(); ++I) {
      size_t Best = I;
      for (size_t J = I + 1; J < All.size(); ++J)
        if (All[J].Count > All[Best].Count)
          Best = J;
      if (Best != I)
        std::swap(All[I], All[Best]);
    }
    if (All.size() > MaxEntries)
      All.resize(MaxEntries);
    return All;
  }

  void reset() { Cells.assign(Cells.size(), 0); }

private:
  unsigned N;
  std::vector<uint64_t> Cells;
};

} // namespace ccjs

#endif // CCJS_SUPPORT_PAIRHISTOGRAM_H
