//===- support/Snapshot.cpp -----------------------------------------------===//

#include "support/Snapshot.h"

#include <array>
#include <cstring>

using namespace ccjs;

namespace {

constexpr std::array<uint8_t, 8> SnapshotMagic = {'C', 'C', 'J', 'S',
                                                  'S', 'N', 'A', 'P'};

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> T{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    T[I] = C;
  }
  return T;
}

uint64_t readLe(const uint8_t *P, unsigned Bytes) {
  uint64_t V = 0;
  for (unsigned I = 0; I < Bytes; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

} // namespace

uint32_t ccjs::snapshotCrc32(const uint8_t *Data, size_t Len) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ Data[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> SnapshotWriter::finish(uint32_t Version) const {
  std::vector<uint8_t> Out;
  Out.reserve(SnapshotMagic.size() + 16 + Buf.size());
  Out.insert(Out.end(), SnapshotMagic.begin(), SnapshotMagic.end());
  auto Le = [&Out](uint64_t V, unsigned Bytes) {
    for (unsigned I = 0; I < Bytes; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  };
  Le(Version, 4);
  Le(Buf.size(), 8);
  Le(snapshotCrc32(Buf.data(), Buf.size()), 4);
  Out.insert(Out.end(), Buf.begin(), Buf.end());
  return Out;
}

bool SnapshotReader::open(const std::vector<uint8_t> &Data,
                          uint32_t MaxVersion, std::string &Err) {
  Failed = true;
  constexpr size_t HeaderLen = 8 + 4 + 8 + 4;
  if (Data.size() < HeaderLen) {
    Err = "snapshot truncated: shorter than header";
    return false;
  }
  if (std::memcmp(Data.data(), SnapshotMagic.data(), SnapshotMagic.size()) !=
      0) {
    Err = "snapshot rejected: bad magic";
    return false;
  }
  uint32_t V = static_cast<uint32_t>(readLe(Data.data() + 8, 4));
  if (V == 0 || V > MaxVersion) {
    Err = "snapshot rejected: unsupported format version " +
          std::to_string(V);
    return false;
  }
  uint64_t PayloadLen = readLe(Data.data() + 12, 8);
  if (PayloadLen != Data.size() - HeaderLen) {
    Err = "snapshot truncated: payload length mismatch";
    return false;
  }
  uint32_t Crc = static_cast<uint32_t>(readLe(Data.data() + 20, 4));
  if (Crc != snapshotCrc32(Data.data() + HeaderLen, PayloadLen)) {
    Err = "snapshot rejected: payload CRC mismatch";
    return false;
  }
  Base = Data.data() + HeaderLen;
  Pos = 0;
  End = PayloadLen;
  Version = V;
  Failed = false;
  return true;
}

bool SnapshotReader::take(void *Out, size_t Len) {
  if (Failed || Len > End - Pos) {
    Failed = true;
    return false;
  }
  std::memcpy(Out, Base + Pos, Len);
  Pos += Len;
  return true;
}

bool SnapshotReader::u8(uint8_t &V) { return take(&V, 1); }

bool SnapshotReader::u16(uint16_t &V) {
  uint8_t B[2];
  if (!take(B, 2))
    return false;
  V = static_cast<uint16_t>(readLe(B, 2));
  return true;
}

bool SnapshotReader::u32(uint32_t &V) {
  uint8_t B[4];
  if (!take(B, 4))
    return false;
  V = static_cast<uint32_t>(readLe(B, 4));
  return true;
}

bool SnapshotReader::u64(uint64_t &V) {
  uint8_t B[8];
  if (!take(B, 8))
    return false;
  V = readLe(B, 8);
  return true;
}

bool SnapshotReader::str(std::string &S) {
  uint32_t Len;
  if (!u32(Len) || Len > End - Pos) {
    Failed = true;
    return false;
  }
  S.assign(reinterpret_cast<const char *>(Base + Pos), Len);
  Pos += Len;
  return true;
}

bool SnapshotReader::blob(std::vector<uint8_t> &B) {
  uint64_t Len;
  if (!u64(Len) || Len > End - Pos) {
    Failed = true;
    return false;
  }
  B.assign(Base + Pos, Base + Pos + Len);
  Pos += Len;
  return true;
}

bool SnapshotReader::enterSection(uint32_t ExpectedId) {
  uint32_t Id;
  uint64_t Len;
  if (!u32(Id) || !u64(Len))
    return false;
  if (Id != ExpectedId || Len > End - Pos) {
    Failed = true;
    return false;
  }
  return true;
}
