//===- support/StringInterner.h - String uniquing --------------*- C++ -*-===//
///
/// \file
/// A string interner mapping strings to dense 32-bit ids. Property names,
/// global names and other identifiers are interned so the rest of the engine
/// can compare and hash them as integers.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_STRINGINTERNER_H
#define CCJS_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ccjs {

/// Dense id for an interned string. Id 0 is reserved for the empty string.
using InternedString = uint32_t;

/// Uniques strings and hands out dense InternedString ids.
///
/// Ids are stable for the lifetime of the interner and index into a
/// contiguous table, so clients can use them as vector indices.
class StringInterner {
public:
  StringInterner() { (void)intern(""); }

  /// Returns the id for \p Text, interning it on first use.
  InternedString intern(std::string_view Text);

  /// Returns the text for a previously interned id.
  std::string_view text(InternedString Id) const {
    assert(Id < Strings.size() && "interned string id out of range");
    return Strings[Id];
  }

  /// Number of distinct strings interned so far.
  size_t size() const { return Strings.size(); }

private:
  // A deque keeps element addresses stable, so the map may key on views into
  // the stored strings.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, InternedString> Ids;
};

} // namespace ccjs

#endif // CCJS_SUPPORT_STRINGINTERNER_H
