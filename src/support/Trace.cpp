//===- support/Trace.cpp --------------------------------------------------===//

#include "support/Trace.h"

#include "support/Assert.h"
#include "support/FaultInjector.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace ccjs;

namespace {

constexpr const char *KindNames[NumTraceEventKinds] = {
    "tier-up",    "deopt",      "cc-hit",    "cc-miss",
    "cc-exception", "invalidate", "shape-new", "fault-trip",
};

constexpr const char *ReasonNames[] = {
    "check-map",     "check-smi",       "check-number", "smi-overflow",
    "poly-miss",     "generic-receiver", "elem-bounds",  "shape-mismatch",
    "builtin-receiver", "unsupported-op", "code-invalidated",
};

} // namespace

const char *ccjs::deoptReasonName(DeoptReason R) {
  unsigned I = static_cast<unsigned>(R);
  CCJS_ASSERT(I < NumDeoptReasons, "invalid deopt reason");
  return ReasonNames[I];
}

TraceRecorder::TraceRecorder(const TraceConfig &Cfg)
    : Mask(Cfg.Mask), Capacity(Cfg.Capacity ? Cfg.Capacity : 1) {
  Ring.reserve(std::min<size_t>(Capacity, 1u << 12));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> Out;
  Out.reserve(Ring.size());
  // Once the ring wrapped, Next points at the oldest event.
  for (size_t I = 0; I < Ring.size(); ++I)
    Out.push_back(Ring[(Next + I) % Ring.size()]);
  return Out;
}

json::Value TraceRecorder::toChromeJson() const {
  json::Value Events = json::Value::array();
  for (const TraceEvent &E : snapshot()) {
    json::Value Ev = json::Value::object();
    Ev.set("name", kindName(E.Kind));
    Ev.set("ph", "i"); // Instant event.
    Ev.set("s", "t");  // Thread-scoped.
    Ev.set("ts", E.Ts);
    Ev.set("pid", 1);
    Ev.set("tid", 1);
    json::Value Args = json::Value::object();
    switch (E.Kind) {
    case TraceEventKind::TierUp:
      Args.set("fn", E.A);
      Args.set("invocations", E.B);
      Args.set("checks_elided_cc", E.C);
      Args.set("ok", E.A8 != 0);
      break;
    case TraceEventKind::Deopt:
      Args.set("fn", E.A);
      Args.set("ir", E.B);
      Args.set("resume_bc", E.C);
      Args.set("reason", deoptReasonName(static_cast<DeoptReason>(E.A8)));
      Args.set("failure", E.B8 != 0);
      Args.set("prior_deopts", E.C8);
      break;
    case TraceEventKind::CcHit:
    case TraceEventKind::CcException:
      Args.set("class", E.A8);
      Args.set("line", E.B8);
      Args.set("pos", E.C8);
      break;
    case TraceEventKind::CcMiss:
      Args.set("class", E.A8);
      Args.set("line", E.B8);
      Args.set("pos", E.C8);
      Args.set("writeback", E.A != 0);
      break;
    case TraceEventKind::SlotInvalidation:
      Args.set("class", E.A8);
      Args.set("line", E.B8);
      Args.set("pos", E.C8);
      Args.set("touched", E.A);
      Args.set("deopted", E.B);
      break;
    case TraceEventKind::ShapeCreated:
      Args.set("shape", E.A);
      // ~0u marks a root shape (no parent).
      if (E.B != ~0u)
        Args.set("parent", E.B);
      break;
    case TraceEventKind::FaultTrip:
      Args.set("point",
               FaultInjector::pointName(static_cast<FaultPoint>(E.A8)));
      Args.set("occurrence",
               (static_cast<uint64_t>(E.B) << 32) | E.A);
      break;
    }
    Ev.set("args", std::move(Args));
    Events.push(std::move(Ev));
  }

  json::Value TotalsJson = json::Value::object();
  for (unsigned K = 0; K < NumTraceEventKinds; ++K)
    TotalsJson.set(KindNames[K], Totals[K]);
  json::Value Meta = json::Value::object();
  Meta.set("totals", std::move(TotalsJson));
  Meta.set("dropped", dropped());
  Meta.set("mask", Mask);

  json::Value Root = json::Value::object();
  Root.set("traceEvents", std::move(Events));
  Root.set("displayTimeUnit", "ns");
  Root.set("ccjs", std::move(Meta));
  return Root;
}

bool TraceRecorder::writeChromeJson(const std::string &Path,
                                    std::string *Err) const {
  std::string Text = toChromeJson().dump(2);
  Text += '\n';
  if (Path == "-") {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return true;
  }
  std::ofstream Out(Path);
  if (!Out || !(Out << Text)) {
    if (Err)
      *Err = "cannot write trace file '" + Path + "'";
    return false;
  }
  return true;
}

const char *TraceRecorder::kindName(TraceEventKind K) {
  unsigned I = static_cast<unsigned>(K);
  CCJS_ASSERT(I < NumTraceEventKinds, "invalid trace event kind");
  return KindNames[I];
}

bool TraceRecorder::kindFromName(std::string_view Name, TraceEventKind &Out) {
  for (unsigned K = 0; K < NumTraceEventKinds; ++K)
    if (Name == KindNames[K]) {
      Out = static_cast<TraceEventKind>(K);
      return true;
    }
  return false;
}

bool TraceRecorder::parseMask(std::string_view List, uint32_t &MaskOut,
                              std::string *Err) {
  if (List == "all") {
    MaskOut = (1u << NumTraceEventKinds) - 1;
    return true;
  }
  uint32_t Mask = 0;
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    std::string_view Name = List.substr(
        Pos, Comma == std::string_view::npos ? List.size() - Pos
                                             : Comma - Pos);
    TraceEventKind K;
    if (!kindFromName(Name, K)) {
      if (Err) {
        *Err = "unknown trace event '" + std::string(Name) + "' (have: all";
        for (unsigned I = 0; I < NumTraceEventKinds; ++I)
          *Err += std::string(" ") + KindNames[I];
        *Err += ")";
      }
      return false;
    }
    Mask |= traceBit(K);
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  if (!Mask) {
    if (Err)
      *Err = "empty trace event list";
    return false;
  }
  MaskOut = Mask;
  return true;
}
