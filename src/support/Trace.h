//===- support/Trace.h - Structured engine trace events ---------*- C++ -*-===//
///
/// \file
/// A fixed-capacity ring-buffer recorder for timestamped engine events:
/// tier-ups, deopts, Class Cache hits/misses/exceptions, slot invalidations,
/// shape creations and chaos fault trips. Timestamps are *simulated* cycles
/// (supplied by a clock callback the VM installs), so traces are
/// deterministic: the same program and seed produce a byte-identical trace.
///
/// Cost discipline matches the FaultInjector: when tracing is off no
/// recorder exists and every instrumentation site pays only a null-pointer
/// test on the host — zero simulated events either way. When the buffer
/// wraps, the oldest events are overwritten but the per-kind totals keep
/// counting, so end-of-run reconciliation against RunStats stays exact.
///
/// The recorder exports Chrome trace-event JSON ("chrome://tracing" /
/// Perfetto "JSON" format): a top-level object with a "traceEvents" array
/// of instant events plus a "ccjs" metadata object carrying the per-kind
/// totals, the drop count and the active mask.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_TRACE_H
#define CCJS_SUPPORT_TRACE_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ccjs::json {
class Value;
} // namespace ccjs::json

namespace ccjs {

/// The trace event catalog. Every instrumented engine boundary records one
/// of these kinds; the mask selects which kinds are accepted.
enum class TraceEventKind : uint8_t {
  /// A function crossed the hotness threshold and was (re)compiled.
  TierUp,
  /// Optimized code bailed out to the baseline tier.
  Deopt,
  /// Class Cache store request that hit (voluminous; masked by default).
  CcHit,
  /// Class Cache store request that missed and refilled from the List.
  CcMiss,
  /// Class Cache store raised the invalidation exception.
  CcException,
  /// The invalidation service cleared a slot and walked descendants.
  SlotInvalidation,
  /// A hidden class (shape) was created.
  ShapeCreated,
  /// The chaos engine fired a fault point.
  FaultTrip,
};

inline constexpr unsigned NumTraceEventKinds = 8;

/// Why optimized code deoptimized. Carried in DeoptEvent and in Deopt trace
/// events; lives here (not in the jit) so the recorder can export stable
/// reason names without depending on upper layers.
enum class DeoptReason : uint8_t {
  CheckMap,        ///< checkMaps guard saw an unexpected shape.
  CheckSmi,        ///< checkSmi guard saw a non-SMI.
  CheckNumber,     ///< checkNumber guard saw a non-number.
  SmiOverflow,     ///< SMI arithmetic overflowed (or hit a sign corner).
  PolyMiss,        ///< Polymorphic inline cache missed all its shapes.
  GenericReceiver, ///< Generic op saw a receiver it cannot handle inline.
  ElemBounds,      ///< Element access out of bounds / negative index.
  ShapeMismatch,   ///< Transitioning store saw an unexpected source shape.
  BuiltinReceiver, ///< Specialized builtin call saw a foreign receiver.
  UnsupportedOp,   ///< Planned DeoptOp for bytecode the compiler skips.
  CodeInvalidated, ///< Code was invalidated mid-invocation (not a failure).
};

inline constexpr unsigned NumDeoptReasons = 11;

/// Stable name of \p R, as exported in traces and metrics.
const char *deoptReasonName(DeoptReason R);

inline constexpr uint32_t traceBit(TraceEventKind K) {
  return 1u << static_cast<unsigned>(K);
}

/// All kinds except CcHit: hits dominate event volume (every profiled store)
/// while carrying the least information, so they are opt-in.
inline constexpr uint32_t DefaultTraceMask =
    ((1u << NumTraceEventKinds) - 1) & ~traceBit(TraceEventKind::CcHit);

/// Trace configuration, hung off EngineConfig. Observational only: it is
/// excluded from the benchmark config fingerprint and never perturbs the
/// simulation.
struct TraceConfig {
  bool Enabled = false;
  /// Bitmask of accepted TraceEventKinds (see traceBit / parseTraceMask).
  uint32_t Mask = DefaultTraceMask;
  /// Ring capacity in events; older events are overwritten on wrap.
  uint32_t Capacity = 1u << 16;
};

/// One recorded event. The payload fields are kind-specific (documented in
/// TraceRecorder::toChromeJson, which names them in the exported args).
struct TraceEvent {
  double Ts = 0; ///< Simulated cycles at record time.
  TraceEventKind Kind = TraceEventKind::TierUp;
  uint8_t A8 = 0, B8 = 0, C8 = 0;
  uint32_t A = 0, B = 0, C = 0;
};

class TraceRecorder {
public:
  explicit TraceRecorder(const TraceConfig &Cfg);

  /// Installs the simulated-cycle clock. Unset, timestamps are 0.
  void setClock(std::function<double()> Fn) { Clock = std::move(Fn); }

  bool wants(TraceEventKind K) const { return (Mask >> unsigned(K)) & 1u; }
  uint32_t mask() const { return Mask; }

  /// Records one event when the mask accepts its kind: stamps the clock,
  /// bumps the kind's total and appends to the ring (overwriting the oldest
  /// event when full).
  void record(TraceEventKind K, uint8_t A8 = 0, uint8_t B8 = 0,
              uint8_t C8 = 0, uint32_t A = 0, uint32_t B = 0,
              uint32_t C = 0) {
    if (!wants(K))
      return;
    TraceEvent E;
    E.Ts = Clock ? Clock() : 0;
    E.Kind = K;
    E.A8 = A8;
    E.B8 = B8;
    E.C8 = C8;
    E.A = A;
    E.B = B;
    E.C = C;
    if (Ring.size() < Capacity) {
      Ring.push_back(E);
    } else {
      Ring[Next] = E;
      Next = (Next + 1) % Capacity;
    }
    ++Totals[static_cast<unsigned>(K)];
    ++Accepted;
  }

  /// Total accepted events of kind \p K, counted even after the ring
  /// wrapped — reconciliation against RunStats uses these, never the
  /// buffer occupancy.
  uint64_t total(TraceEventKind K) const {
    return Totals[static_cast<unsigned>(K)];
  }
  /// Accepted events across all kinds.
  uint64_t accepted() const { return Accepted; }
  /// Accepted events that were overwritten by the ring wrapping.
  uint64_t dropped() const { return Accepted - Ring.size(); }

  /// The buffered events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// Exports the trace in Chrome trace-event JSON ("JSON Array Format"
  /// with metadata): loadable in chrome://tracing and Perfetto.
  json::Value toChromeJson() const;

  /// Writes toChromeJson() to \p Path ('-' = stdout). Returns false and
  /// fills \p Err on I/O failure.
  bool writeChromeJson(const std::string &Path,
                       std::string *Err = nullptr) const;

  /// Stable event-kind name used in exports and --trace-events parsing.
  static const char *kindName(TraceEventKind K);
  static bool kindFromName(std::string_view Name, TraceEventKind &Out);

  /// Parses a --trace-events mask: "all" or a comma-separated list of kind
  /// names ("deopt,tier-up,fault-trip"). Returns false and fills \p Err on
  /// an unknown name or empty list.
  static bool parseMask(std::string_view List, uint32_t &MaskOut,
                        std::string *Err = nullptr);

private:
  uint32_t Mask;
  size_t Capacity;
  std::vector<TraceEvent> Ring; ///< Ring storage; wraps at Capacity.
  size_t Next = 0;              ///< Overwrite cursor once full.
  uint64_t Accepted = 0;
  uint64_t Totals[NumTraceEventKinds] = {};
  std::function<double()> Clock;
};

} // namespace ccjs

#endif // CCJS_SUPPORT_TRACE_H
