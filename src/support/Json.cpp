//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ccjs;
using namespace ccjs::json;

//===----------------------------------------------------------------------===//
// Object accessors
//===----------------------------------------------------------------------===//

void Value::set(std::string_view Key, Value V) {
  assert(K == Kind::Object && "set() requires an object");
  for (auto &M : Members) {
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  }
  Members.emplace_back(std::string(Key), std::move(V));
}

const Value *Value::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

const Value *Value::findPath(std::string_view DottedPath) const {
  const Value *Cur = this;
  while (!DottedPath.empty()) {
    size_t Dot = DottedPath.find('.');
    std::string_view Head = DottedPath.substr(0, Dot);
    Cur = Cur->find(Head);
    if (!Cur)
      return nullptr;
    if (Dot == std::string_view::npos)
      break;
    DottedPath.remove_prefix(Dot + 1);
  }
  return Cur;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string ccjs::json::formatNumber(double N) {
  if (std::isnan(N) || std::isinf(N))
    return "null"; // JSON has no NaN/Inf; unmeasurable values map to null.
  char Buf[64];
  // Exactly-representable integers (counters, byte sizes...) print in plain
  // decimal — to_chars' shortest form would turn 1000000 into "1e+06",
  // which is valid JSON but needlessly hostile to grep and diffs.
  std::to_chars_result R;
  if (N == std::floor(N) && std::abs(N) < 9007199254740992.0 /* 2^53 */)
    R = std::to_chars(Buf, Buf + sizeof(Buf), static_cast<long long>(N));
  else
    R = std::to_chars(Buf, Buf + sizeof(Buf), N);
  assert(R.ec == std::errc() && "number formatting cannot fail");
  return std::string(Buf, R.ptr);
}

static void escapeString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C; // UTF-8 bytes pass through unchanged.
      }
    }
  }
  Out += '"';
}

void Value::dumpTo(std::string &Out, unsigned Indent, unsigned Depth) const {
  auto Newline = [&](unsigned D) {
    if (Indent == 0)
      return;
    Out += '\n';
    Out.append(size_t(Indent) * D, ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Boolean:
    Out += Bool ? "true" : "false";
    break;
  case Kind::Number:
    Out += formatNumber(Num);
    break;
  case Kind::String:
    escapeString(Out, Str);
    break;
  case Kind::Array:
    if (Elems.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        Out += ',';
      Newline(Depth + 1);
      Elems[I].dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += ']';
    break;
  case Kind::Object:
    if (Members.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I < Members.size(); ++I) {
      if (I)
        Out += ',';
      Newline(Depth + 1);
      escapeString(Out, Members[I].first);
      Out += Indent ? ": " : ":";
      Members[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += '}';
    break;
  }
}

/// Close upper estimate of the rendered size of \p V, so dump() can
/// reserve once instead of growing the output string through repeated
/// reallocation (full bench reports run to hundreds of kilobytes of
/// small appends).
static size_t estimateDumpSize(const Value &V, unsigned Indent,
                               unsigned Depth) {
  switch (V.kind()) {
  case Value::Kind::Null:
    return 4;
  case Value::Kind::Boolean:
    return 5;
  case Value::Kind::Number:
    return 24; // Shortest round-trip double is at most 24 chars.
  case Value::Kind::String:
    return V.asString().size() + 8; // Quotes plus a few escapes.
  case Value::Kind::Array: {
    // Per element: separator plus newline-and-indent (pretty mode).
    size_t PerElem = 1 + (Indent ? 1 + size_t(Indent) * (Depth + 1) : 0);
    size_t N = 2 + (Indent ? 1 + size_t(Indent) * Depth : 0);
    for (const Value &E : V.elements())
      N += PerElem + estimateDumpSize(E, Indent, Depth + 1);
    return N;
  }
  case Value::Kind::Object: {
    size_t PerMember = 4 + (Indent ? 1 + size_t(Indent) * (Depth + 1) : 0);
    size_t N = 2 + (Indent ? 1 + size_t(Indent) * Depth : 0);
    for (const auto &[Key, Member] : V.members())
      N += PerMember + Key.size() + estimateDumpSize(Member, Indent,
                                                     Depth + 1);
    return N;
  }
  }
  return 0;
}

std::string Value::dump(unsigned Indent) const {
  std::string Out;
  Out.reserve(estimateDumpSize(*this, Indent, 0) + 2);
  dumpTo(Out, Indent, 0);
  if (Indent)
    Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::optional<Value> run(std::string *Err) {
    std::optional<Value> V = parseValue();
    if (V) {
      skipWs();
      if (Pos != Text.size()) {
        fail("trailing content after JSON value");
        V.reset();
      }
    }
    if (!V && Err)
      *Err = Error;
    return V;
  }

private:
  void fail(const char *Msg) {
    if (Error.empty())
      Error = std::string(Msg) + " at byte " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) == Lit) {
      Pos += Lit.size();
      return true;
    }
    return false;
  }

  std::optional<Value> parseValue() {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char C = Text[Pos];
    if (C == 'n')
      return literal("null") ? std::optional<Value>(Value(nullptr))
                             : (fail("invalid literal"), std::nullopt);
    if (C == 't')
      return literal("true") ? std::optional<Value>(Value(true))
                             : (fail("invalid literal"), std::nullopt);
    if (C == 'f')
      return literal("false") ? std::optional<Value>(Value(false))
                              : (fail("invalid literal"), std::nullopt);
    if (C == '"')
      return parseString();
    if (C == '[')
      return parseArray();
    if (C == '{')
      return parseObject();
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    fail("unexpected character");
    return std::nullopt;
  }

  std::optional<Value> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    double N = 0;
    auto [End, Ec] = std::from_chars(Text.data() + Start, Text.data() + Pos, N);
    if (Ec != std::errc() || End != Text.data() + Pos) {
      fail("malformed number");
      return std::nullopt;
    }
    return Value(N);
  }

  std::optional<Value> parseString() {
    std::optional<std::string> S = parseRawString();
    if (!S)
      return std::nullopt;
    return Value(std::move(*S));
  }

  std::optional<std::string> parseRawString() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return std::nullopt;
        }
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += H - '0';
          else if (H >= 'a' && H <= 'f')
            Code += H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code += H - 'A' + 10;
          else {
            fail("invalid \\u escape");
            return std::nullopt;
          }
        }
        // Encode the code point as UTF-8 (BMP only; surrogate pairs are not
        // produced by our writer).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        fail("invalid escape");
        return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parseArray() {
    consume('[');
    Value A = Value::array();
    skipWs();
    if (consume(']'))
      return A;
    while (true) {
      std::optional<Value> V = parseValue();
      if (!V)
        return std::nullopt;
      A.push(std::move(*V));
      if (consume(']'))
        return A;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> parseObject() {
    consume('{');
    Value O = Value::object();
    skipWs();
    if (consume('}'))
      return O;
    while (true) {
      skipWs();
      std::optional<std::string> Key = parseRawString();
      if (!Key)
        return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Value> V = parseValue();
      if (!V)
        return std::nullopt;
      O.set(*Key, std::move(*V));
      if (consume('}'))
        return O;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Error;
};

} // namespace

std::optional<Value> Value::parse(std::string_view Text, std::string *Err) {
  return Parser(Text).run(Err);
}
