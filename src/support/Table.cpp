//===- support/Table.cpp --------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace ccjs;

// Sentinel cell text marking a separator row.
static const char *const SeparatorTag = "\x01--";

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void Table::addSeparator() { Rows.push_back({SeparatorTag}); }

std::string Table::fmt(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string Table::pct(double Value, int Digits) {
  return fmt(Value * 100.0, Digits) + "%";
}

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows) {
    if (!Row.empty() && Row[0] == SeparatorTag)
      continue;
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I >= Widths.size())
        Widths.resize(I + 1, 0);
      Widths[I] = std::max(Widths[I], Row[I].size());
    }
  }

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Out;
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string &Cell = I < Cells.size() ? Cells[I] : std::string();
      Out += "| ";
      Out += Cell;
      Out.append(Widths[I] > Cell.size() ? Widths[I] - Cell.size() : 0, ' ');
      Out += ' ';
    }
    Out += "|\n";
    return Out;
  };

  auto RenderSep = [&]() {
    std::string Out;
    for (size_t W : Widths) {
      Out += "|";
      Out.append(W + 2, '-');
    }
    Out += "|\n";
    return Out;
  };

  std::string Out = RenderRow(Header);
  Out += RenderSep();
  for (const auto &Row : Rows) {
    if (!Row.empty() && Row[0] == SeparatorTag)
      Out += RenderSep();
    else
      Out += RenderRow(Row);
  }
  return Out;
}
