//===- support/Arena.h - Bump allocator ------------------------*- C++ -*-===//
///
/// \file
/// A bump allocator for allocation-heavy build phases (AST construction,
/// OptIR compilation). Objects are carved out of large slabs, so a parse
/// that would otherwise perform one `new` per node performs one `malloc`
/// per ~64KB. Objects with non-trivial destructors are registered and
/// destroyed (in reverse allocation order) when the arena dies; trivially
/// destructible objects cost nothing beyond the bump.
///
/// The arena never frees individual objects — lifetime is the arena's
/// lifetime. That matches both clients: an AST lives exactly as long as
/// its Program, and OptIR scratch lives exactly as long as one compile.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_ARENA_H
#define CCJS_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace ccjs {

class Arena {
public:
  Arena() = default;
  Arena(Arena &&) = default;
  Arena &operator=(Arena &&Other) {
    if (this != &Other) {
      destroyAll();
      Slabs = std::move(Other.Slabs);
      Dtors = std::move(Other.Dtors);
      Cur = Other.Cur;
      End = Other.End;
      Other.Cur = Other.End = nullptr;
    }
    return *this;
  }
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena() { destroyAll(); }

  /// Raw aligned allocation. \p Align must be a power of two.
  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) &
                  ~(uintptr_t(Align) - 1);
    if (P + Size > reinterpret_cast<uintptr_t>(End)) {
      newSlab(Size + Align);
      P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) &
          ~(uintptr_t(Align) - 1);
    }
    Cur = reinterpret_cast<char *>(P + Size);
    return reinterpret_cast<void *>(P);
  }

  /// Constructs a \p T in the arena. Non-trivially-destructible types are
  /// registered for destruction when the arena is destroyed.
  template <typename T, typename... Args> T *make(Args &&...A) {
    void *P = allocate(sizeof(T), alignof(T));
    T *Obj = new (P) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({[](void *O) { static_cast<T *>(O)->~T(); }, Obj});
    return Obj;
  }

  /// Bytes currently reserved across all slabs (diagnostics).
  size_t bytesReserved() const {
    size_t N = 0;
    for (const Slab &S : Slabs)
      N += S.Bytes;
    return N;
  }

private:
  static constexpr size_t SlabBytes = 1 << 16;

  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Bytes = 0;
  };
  struct Destructor {
    void (*Fn)(void *);
    void *Obj;
  };

  void newSlab(size_t AtLeast) {
    size_t Bytes = AtLeast > SlabBytes ? AtLeast : SlabBytes;
    Slabs.push_back({std::make_unique<char[]>(Bytes), Bytes});
    Cur = Slabs.back().Mem.get();
    End = Cur + Bytes;
  }

  void destroyAll() {
    // Reverse allocation order: parents (allocated last, bottom-up
    // construction) run their no-op member releases before children die.
    for (auto It = Dtors.rbegin(); It != Dtors.rend(); ++It)
      It->Fn(It->Obj);
    Dtors.clear();
    Slabs.clear();
    Cur = End = nullptr;
  }

  std::vector<Slab> Slabs;
  std::vector<Destructor> Dtors;
  char *Cur = nullptr;
  char *End = nullptr;
};

} // namespace ccjs

#endif // CCJS_SUPPORT_ARENA_H
