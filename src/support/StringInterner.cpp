//===- support/StringInterner.cpp -----------------------------------------===//

#include "support/StringInterner.h"

using namespace ccjs;

InternedString StringInterner::intern(std::string_view Text) {
  auto It = Ids.find(Text);
  if (It != Ids.end())
    return It->second;

  InternedString Id = static_cast<InternedString>(Strings.size());
  Strings.emplace_back(Text);
  Ids.emplace(std::string_view(Strings.back()), Id);
  return Id;
}
