//===- support/Table.h - Plain-text table formatting -----------*- C++ -*-===//
///
/// \file
/// A small helper for printing aligned plain-text tables. The benchmark
/// harness uses it to print the rows/series of every paper table and figure.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_TABLE_H
#define CCJS_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace ccjs {

/// Accumulates rows of cells and prints them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; missing trailing cells print as empty.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table to a string (header, separator, rows).
  std::string render() const;

  /// Formats \p Value as a fixed-point decimal with \p Digits fraction
  /// digits, e.g. fmt(7.13, 1) == "7.1".
  static std::string fmt(double Value, int Digits = 1);

  /// Formats \p Value as a percentage string, e.g. pct(0.071) == "7.1%".
  static std::string pct(double Value, int Digits = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ccjs

#endif // CCJS_SUPPORT_TABLE_H
