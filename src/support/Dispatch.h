//===- support/Dispatch.h - Threaded-dispatch feature macro ----*- C++ -*-===//
///
/// \file
/// CCJS_THREADED_DISPATCH gates the computed-goto (token-threaded)
/// variants of the interpreter and OptIR executor main loops. It defaults
/// to on for compilers with the GNU `&&label` extension and can be forced
/// either way with -DCCJS_THREADED_DISPATCH=0/1.
///
/// This is a *host-side* knob: all dispatch strategies execute the same
/// handler code and emit identical simulated machine events, so it is
/// deliberately excluded from config fingerprints (reports from any mode
/// diff cleanly against each other). The runtime selection lives in
/// EngineConfig::Dispatch (switch / threaded / fused);
/// tests/DispatchEquivalenceTest.cpp holds the modes byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_DISPATCH_H
#define CCJS_SUPPORT_DISPATCH_H

#ifndef CCJS_THREADED_DISPATCH
#if defined(__GNUC__) || defined(__clang__)
#define CCJS_THREADED_DISPATCH 1
#else
#define CCJS_THREADED_DISPATCH 0
#endif
#endif

#endif // CCJS_SUPPORT_DISPATCH_H
