//===- support/FlatMap.h - Open-addressing u64 hash map ---------*- C++ -*-===//
///
/// \file
/// A minimal linear-probing hash map with 64-bit keys and POD-ish values,
/// for host-side instrumentation tallies on the simulator's hottest paths
/// (TypeProfiler records every property/elements load and store). A
/// single flat array probe replaces std::unordered_map's bucket-chain
/// walk; the map is a pure host data structure, so swapping it in cannot
/// perturb any simulated statistic (aggregations over it are
/// order-independent sums and point lookups).
///
/// Constraints, chosen for the instrumentation use case: keys must never
/// equal the reserved EmptyKey sentinel (~0), entries cannot be erased
/// individually, and value references are invalidated by any insertion
/// (the table rehashes in place by doubling).
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_SUPPORT_FLATMAP_H
#define CCJS_SUPPORT_FLATMAP_H

#include "support/Assert.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ccjs {

template <typename V> class FlatMap64 {
public:
  static constexpr uint64_t EmptyKey = ~uint64_t(0);

  /// Returns the value for \p Key, default-constructing it on first use.
  /// May rehash: references returned earlier are invalidated.
  V &operator[](uint64_t Key) {
    CCJS_ASSERT(Key != EmptyKey, "FlatMap64 key collides with the sentinel");
    // Load factor cap 1/2: linear probing degrades sharply past ~2/3.
    if ((Count + 1) * 2 > Keys.size())
      grow();
    size_t I = probe(Key);
    if (Keys[I] != Key) {
      Keys[I] = Key;
      Vals[I] = V();
      ++Count;
    }
    return Vals[I];
  }

  const V *find(uint64_t Key) const {
    if (Count == 0)
      return nullptr;
    size_t I = probe(Key);
    return Keys[I] == Key ? &Vals[I] : nullptr;
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Bumped every time the table rehashes or clears; callers caching a
  /// value pointer must revalidate against this before dereferencing.
  uint64_t generation() const { return Generation; }

  /// Grows the table so \p N entries fit without further rehashing
  /// (capacity is the next power of two keeping the load factor under
  /// 1/2). Existing entries are rehashed at most once; no-op when the
  /// table is already large enough.
  void reserve(size_t N) {
    size_t Need = std::max<size_t>(64, 2 * N);
    if (Need <= Keys.size())
      return;
    size_t NewCap = 64;
    while (NewCap < Need)
      NewCap *= 2;
    ++Generation;
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<V> OldVals = std::move(Vals);
    Keys.assign(NewCap, EmptyKey);
    Vals.assign(NewCap, V());
    for (size_t I = 0; I < OldKeys.size(); ++I) {
      if (OldKeys[I] == EmptyKey)
        continue;
      size_t J = probe(OldKeys[I]);
      Keys[J] = OldKeys[I];
      Vals[J] = std::move(OldVals[I]);
    }
  }

  /// Drops all entries but keeps the table storage.
  void clear() {
    std::fill(Keys.begin(), Keys.end(), EmptyKey);
    Count = 0;
    ++Generation;
  }

  /// Calls \p Fn(key, value) for every entry, in unspecified order.
  template <typename F> void forEach(F &&Fn) const {
    for (size_t I = 0; I < Keys.size(); ++I)
      if (Keys[I] != EmptyKey)
        Fn(Keys[I], Vals[I]);
  }

private:
  size_t probe(uint64_t Key) const {
    // Fibonacci mixing spreads the packed (shape, slot) keys, which
    // differ mostly in their low bits, across the whole table.
    size_t Mask = Keys.size() - 1;
    size_t I = static_cast<size_t>((Key * 0x9E3779B97F4A7C15ull) >> 32) & Mask;
    while (Keys[I] != EmptyKey && Keys[I] != Key)
      I = (I + 1) & Mask;
    return I;
  }

  void grow() {
    ++Generation;
    size_t NewCap = Keys.empty() ? 64 : Keys.size() * 2;
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<V> OldVals = std::move(Vals);
    Keys.assign(NewCap, EmptyKey);
    Vals.assign(NewCap, V());
    for (size_t I = 0; I < OldKeys.size(); ++I) {
      if (OldKeys[I] == EmptyKey)
        continue;
      size_t J = probe(OldKeys[I]);
      Keys[J] = OldKeys[I];
      Vals[J] = std::move(OldVals[I]);
    }
  }

  std::vector<uint64_t> Keys;
  std::vector<V> Vals;
  size_t Count = 0;
  uint64_t Generation = 0;
};

} // namespace ccjs

#endif // CCJS_SUPPORT_FLATMAP_H
