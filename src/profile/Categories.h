//===- profile/Categories.h - Dynamic instruction categories ---*- C++ -*-===//
///
/// \file
/// The dynamic-instruction categories of the paper's Figure 1, plus counter
/// structures used to account every simulated machine instruction.
///
/// Every machine-level event the interpreter (baseline tier) and the OptIR
/// executor (optimizing tier) emit carries one of these categories, so the
/// breakdown of Figure 1 and the overhead analysis of Figure 2 fall directly
/// out of the counters.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_PROFILE_CATEGORIES_H
#define CCJS_PROFILE_CATEGORIES_H

#include <array>
#include <cstdint>

namespace ccjs {

/// Categories of dynamic instructions (paper Figure 1).
enum class InstrCategory : uint8_t {
  /// Standalone checking operations in optimized code: Check Map,
  /// Check SMI, Check Non-SMI.
  Checks,
  /// Boxing/unboxing of number values, including the checking operations
  /// performed before a value is untagged.
  TagsUntags,
  /// Runtime verification of math assumptions (SMI overflow, division by
  /// zero, ToInt32 range).
  MathAssumptions,
  /// All other instructions executed by optimized (Crankshaft-tier) code.
  OtherOptimized,
  /// Everything else: baseline (Full Codegen-tier) code, inline cache
  /// stubs, runtime helpers and housekeeping.
  RestOfCode,
};

inline constexpr unsigned NumInstrCategories = 5;

inline const char *instrCategoryName(InstrCategory Cat) {
  switch (Cat) {
  case InstrCategory::Checks:
    return "Checks";
  case InstrCategory::TagsUntags:
    return "Tags/Untags";
  case InstrCategory::MathAssumptions:
    return "Math Assumptions";
  case InstrCategory::OtherOptimized:
    return "Other Optimized Code";
  case InstrCategory::RestOfCode:
    return "Rest of Code";
  }
  return "?";
}

/// Aggregated dynamic instruction counters for one engine run.
struct InstrCounters {
  /// Instructions per category.
  std::array<uint64_t, NumInstrCategories> PerCategory{};
  /// Of the category counts above, the subset that are *checking
  /// operations applied to values obtained from object properties or
  /// elements arrays* (paper Figure 2: includes the pre-untag checks).
  std::array<uint64_t, NumInstrCategories> ChecksAfterObjectLoad{};

  uint64_t total() const {
    uint64_t Sum = 0;
    for (uint64_t C : PerCategory)
      Sum += C;
    return Sum;
  }

  /// Instructions executed inside optimized code (all categories except
  /// RestOfCode).
  uint64_t optimizedTotal() const {
    return total() -
           PerCategory[static_cast<unsigned>(InstrCategory::RestOfCode)];
  }

  uint64_t checksAfterObjectLoadTotal() const {
    uint64_t Sum = 0;
    for (uint64_t C : ChecksAfterObjectLoad)
      Sum += C;
    return Sum;
  }

  void add(InstrCategory Cat, uint64_t N, bool AfterObjectLoad = false) {
    PerCategory[static_cast<unsigned>(Cat)] += N;
    if (AfterObjectLoad)
      ChecksAfterObjectLoad[static_cast<unsigned>(Cat)] += N;
  }
};

/// Counters for object load accesses, classified by whether the accessed
/// slot turned out to be monomorphic over the whole run (paper Figure 3).
struct ObjectLoadCounters {
  uint64_t MonomorphicProperty = 0;
  uint64_t NonMonomorphicProperty = 0;
  uint64_t MonomorphicElements = 0;
  uint64_t NonMonomorphicElements = 0;
  /// Property loads that hit the first cache line of the object
  /// (paper section 5.3.4 reports 79%).
  uint64_t FirstLineLoads = 0;
  uint64_t TotalPropertyLoads = 0;

  uint64_t total() const {
    return MonomorphicProperty + NonMonomorphicProperty +
           MonomorphicElements + NonMonomorphicElements;
  }
};

} // namespace ccjs

#endif // CCJS_PROFILE_CATEGORIES_H
