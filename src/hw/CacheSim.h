//===- hw/CacheSim.h - Set-associative cache model --------------*- C++ -*-===//
///
/// \file
/// A generic set-associative cache model with true-LRU replacement, used
/// for the DL1, the L2 and (with page-granularity "lines") the DTLB.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_CACHESIM_H
#define CCJS_HW_CACHESIM_H

#include "support/Assert.h"

#include <cstdint>
#include <vector>

namespace ccjs {

class CacheSim {
public:
  /// \p NumSets and \p Ways define the geometry; \p BlockBytes is the line
  /// (or page) size. All must be powers of two except Ways.
  CacheSim(unsigned NumSets, unsigned Ways, unsigned BlockBytes)
      : NumSets(NumSets), Ways(Ways), BlockBytes(BlockBytes),
        Lines(size_t(NumSets) * Ways, InvalidTag) {
    // NumSets == 0 would pass the power-of-two check (0 & -1 == 0) and then
    // `Block & (NumSets - 1)` masks with all-ones, indexing Lines out of
    // bounds — reject degenerate geometry explicitly, in every build type.
    CCJS_ASSERT(NumSets >= 1, "cache must have at least one set");
    CCJS_ASSERT(Ways >= 1, "cache must have at least one way");
    CCJS_ASSERT((NumSets & (NumSets - 1)) == 0, "sets must be a power of two");
    CCJS_ASSERT((BlockBytes & (BlockBytes - 1)) == 0,
                "block size must be a power of two");
  }

  /// Convenience constructor from a total capacity in bytes. The capacity
  /// must hold at least one full way-set (Ways * BlockBytes) and divide
  /// into a power-of-two number of sets.
  static CacheSim fromCapacity(unsigned CapacityBytes, unsigned Ways,
                               unsigned BlockBytes) {
    CCJS_ASSERT(Ways >= 1 && BlockBytes >= 1, "degenerate way/block geometry");
    unsigned WaySetBytes = Ways * BlockBytes;
    CCJS_ASSERT(CapacityBytes >= WaySetBytes,
                "capacity smaller than one way-set yields zero sets");
    CCJS_ASSERT(CapacityBytes % WaySetBytes == 0,
                "capacity must be a multiple of ways * block size");
    return CacheSim(CapacityBytes / WaySetBytes, Ways, BlockBytes);
  }

  /// Simulates an access; returns true on hit. Allocates on miss and
  /// updates LRU order.
  bool access(uint64_t Addr) {
    ++Accesses;
    uint64_t Block = Addr / BlockBytes;
    unsigned Set = static_cast<unsigned>(Block & (NumSets - 1));
    uint64_t Tag = Block; // Full block number as the tag.
    uint64_t *Base = &Lines[size_t(Set) * Ways];
    // Way 0 is MRU; search and move-to-front.
    for (unsigned W = 0; W < Ways; ++W) {
      if (Base[W] == Tag) {
        for (unsigned I = W; I > 0; --I)
          Base[I] = Base[I - 1];
        Base[0] = Tag;
        return true;
      }
    }
    ++Misses;
    for (unsigned I = Ways - 1; I > 0; --I)
      Base[I] = Base[I - 1];
    Base[0] = Tag;
    return false;
  }

  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }
  double hitRate() const {
    return Accesses == 0 ? 1.0
                         : 1.0 - static_cast<double>(Misses) / Accesses;
  }

  void resetStats() { Accesses = Misses = 0; }
  void flush() { std::fill(Lines.begin(), Lines.end(), InvalidTag); }

private:
  static constexpr uint64_t InvalidTag = ~uint64_t(0);

  unsigned NumSets, Ways, BlockBytes;
  std::vector<uint64_t> Lines;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
};

} // namespace ccjs

#endif // CCJS_HW_CACHESIM_H
