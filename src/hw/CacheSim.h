//===- hw/CacheSim.h - Set-associative cache model --------------*- C++ -*-===//
///
/// \file
/// A generic set-associative cache model with true-LRU replacement, used
/// for the DL1, the L2 and (with page-granularity "lines") the DTLB.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_CACHESIM_H
#define CCJS_HW_CACHESIM_H

#include "support/Assert.h"

#include <bit>
#include <cstdint>
#include <vector>

namespace ccjs {

class CacheSim {
public:
  /// \p NumSets and \p Ways define the geometry; \p BlockBytes is the line
  /// (or page) size. All must be powers of two except Ways.
  CacheSim(unsigned NumSets, unsigned Ways, unsigned BlockBytes)
      : NumSets(NumSets), Ways(Ways), BlockBytes(BlockBytes),
        BlockShift(static_cast<unsigned>(std::countr_zero(BlockBytes))),
        Lines(size_t(NumSets) * Ways, InvalidTag) {
    // NumSets == 0 would pass the power-of-two check (0 & -1 == 0) and then
    // `Block & (NumSets - 1)` masks with all-ones, indexing Lines out of
    // bounds — reject degenerate geometry explicitly, in every build type.
    CCJS_ASSERT(NumSets >= 1, "cache must have at least one set");
    CCJS_ASSERT(Ways >= 1, "cache must have at least one way");
    CCJS_ASSERT((NumSets & (NumSets - 1)) == 0, "sets must be a power of two");
    CCJS_ASSERT((BlockBytes & (BlockBytes - 1)) == 0,
                "block size must be a power of two");
  }

  /// Convenience constructor from a total capacity in bytes. The capacity
  /// must hold at least one full way-set (Ways * BlockBytes) and divide
  /// into a power-of-two number of sets.
  static CacheSim fromCapacity(unsigned CapacityBytes, unsigned Ways,
                               unsigned BlockBytes) {
    CCJS_ASSERT(Ways >= 1 && BlockBytes >= 1, "degenerate way/block geometry");
    unsigned WaySetBytes = Ways * BlockBytes;
    CCJS_ASSERT(CapacityBytes >= WaySetBytes,
                "capacity smaller than one way-set yields zero sets");
    CCJS_ASSERT(CapacityBytes % WaySetBytes == 0,
                "capacity must be a multiple of ways * block size");
    return CacheSim(CapacityBytes / WaySetBytes, Ways, BlockBytes);
  }

  /// Simulates an access; returns true on hit. Allocates on miss and
  /// updates LRU order.
  bool access(uint64_t Addr) {
    ++Accesses;
    // BlockBytes is asserted to be a power of two, so the shift divides
    // exactly — and unlike `Addr / BlockBytes` with a runtime divisor it
    // costs no hardware divide on the hottest path of the simulation.
    uint64_t Block = Addr >> BlockShift;
    // One-entry memo: whatever block the previous access touched sits at
    // the MRU position of its set afterwards (hit or miss), so a repeat
    // of that block is a guaranteed way-0 hit and the move-to-front loop
    // is a no-op. Returning early is observably identical to the full
    // probe — same counters, same replacement state — and for the DTLB
    // (page-granularity blocks) it also catches runs of accesses to
    // *different* cache lines on the same page, which the caller-side
    // same-line memo cannot. Invalidated only by flush().
    if (Block == LastBlock)
      return true;
    LastBlock = Block;
    unsigned Set = static_cast<unsigned>(Block & (NumSets - 1));
    uint64_t Tag = Block; // Full block number as the tag.
    uint64_t *Base = &Lines[size_t(Set) * Ways];
    // MRU short-circuit: a hit in way 0 makes the move-to-front loop a
    // no-op, so returning early is observably identical to the full
    // search — same counters, same replacement state.
    if (Base[0] == Tag)
      return true;
    // Way 0 is MRU; search and move-to-front.
    for (unsigned W = 1; W < Ways; ++W) {
      if (Base[W] == Tag) {
        for (unsigned I = W; I > 0; --I)
          Base[I] = Base[I - 1];
        Base[0] = Tag;
        return true;
      }
    }
    ++Misses;
    for (unsigned I = Ways - 1; I > 0; --I)
      Base[I] = Base[I - 1];
    Base[0] = Tag;
    return false;
  }

  /// Counts a hit the caller has proven without consulting the tag
  /// arrays (an immediately repeated access to the MRU block). Identical
  /// to access() on a way-0 hit: one more access, no replacement change.
  void countRepeatHit() { ++Accesses; }

  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }
  double hitRate() const {
    return Accesses == 0 ? 1.0
                         : 1.0 - static_cast<double>(Misses) / Accesses;
  }

  void resetStats() { Accesses = Misses = 0; }
  void flush() {
    std::fill(Lines.begin(), Lines.end(), InvalidTag);
    LastBlock = InvalidTag;
  }

  /// Warm-state capture for profile snapshots: the full tag/LRU image plus
  /// the one-entry memo. Accesses/Misses are stats, reset per request, and
  /// deliberately excluded.
  const std::vector<uint64_t> &lines() const { return Lines; }
  uint64_t lastBlock() const { return LastBlock; }
  /// Restores a captured image. Rejects (returns false, state untouched)
  /// when \p NewLines does not match this cache's geometry.
  bool restoreLines(const std::vector<uint64_t> &NewLines,
                    uint64_t NewLastBlock) {
    if (NewLines.size() != Lines.size())
      return false;
    Lines = NewLines;
    LastBlock = NewLastBlock;
    return true;
  }

private:
  static constexpr uint64_t InvalidTag = ~uint64_t(0);

  unsigned NumSets, Ways, BlockBytes;
  unsigned BlockShift;
  std::vector<uint64_t> Lines;
  uint64_t LastBlock = InvalidTag;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
};

} // namespace ccjs

#endif // CCJS_HW_CACHESIM_H
