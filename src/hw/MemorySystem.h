//===- hw/MemorySystem.h - DL1/L2/DTLB hierarchy ----------------*- C++ -*-===//
///
/// \file
/// The data-side memory hierarchy: DTLB, DL1 and L2 in front of main
/// memory. Every architecturally visible load and store of both tiers goes
/// through here; the Class Cache's miss refills and writebacks do too.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_MEMORYSYSTEM_H
#define CCJS_HW_MEMORYSYSTEM_H

#include "hw/CacheSim.h"
#include "hw/HwConfig.h"

namespace ccjs {

/// Outcome of one memory access, for timing and energy accounting.
struct MemAccessResult {
  bool L1Hit = false;
  bool L2Hit = false; ///< Meaningful only when !L1Hit.
  bool TlbMiss = false;
  /// Extra latency beyond a pipelined L1 hit, before overlap scaling.
  unsigned ExtraLatency = 0;
};

class MemorySystem {
public:
  explicit MemorySystem(const HwConfig &Cfg)
      : Cfg(Cfg),
        Dl1(CacheSim::fromCapacity(Cfg.Dl1SizeKB * 1024, Cfg.Dl1Ways,
                                   Cfg.LineBytes)),
        L2(CacheSim::fromCapacity(Cfg.L2SizeKB * 1024, Cfg.L2Ways,
                                  Cfg.LineBytes)),
        Dtlb(Cfg.DtlbEntries / Cfg.DtlbWays, Cfg.DtlbWays, Cfg.PageBytes) {
    // repeatAccess() relies on "same cache line => same page".
    CCJS_ASSERT(Cfg.LineBytes <= Cfg.PageBytes,
                "cache lines must not span pages");
  }

  MemAccessResult access(uint64_t Addr) {
    MemAccessResult R;
    R.TlbMiss = !Dtlb.access(Addr);
    if (R.TlbMiss)
      R.ExtraLatency += Cfg.TlbMissPenalty;
    R.L1Hit = Dl1.access(Addr);
    if (!R.L1Hit) {
      R.L2Hit = L2.access(Addr);
      R.ExtraLatency += (R.L2Hit ? Cfg.L2Latency : Cfg.MemLatency) -
                        Cfg.L1LoadLatency;
    }
    return R;
  }

  /// Accounts an access the caller has proven to target the same DL1
  /// line as the immediately preceding access. That line sat at MRU in
  /// the DL1 since then, and (lines never span pages) its page sat at
  /// MRU in the DTLB, so this is exactly what access() would compute —
  /// a DTLB hit plus a DL1 hit with zero extra latency and no
  /// replacement-state change — minus the tag searches.
  MemAccessResult repeatAccess() {
    Dtlb.countRepeatHit();
    Dl1.countRepeatHit();
    MemAccessResult R;
    R.L1Hit = true;
    return R;
  }

  const CacheSim &dl1() const { return Dl1; }
  const CacheSim &l2() const { return L2; }
  const CacheSim &dtlb() const { return Dtlb; }

  /// Mutable access for profile-snapshot restore only.
  CacheSim &dl1() { return Dl1; }
  CacheSim &l2() { return L2; }
  CacheSim &dtlb() { return Dtlb; }

  void resetStats() {
    Dl1.resetStats();
    L2.resetStats();
    Dtlb.resetStats();
  }

private:
  const HwConfig &Cfg;
  CacheSim Dl1;
  CacheSim L2;
  CacheSim Dtlb;
};

} // namespace ccjs

#endif // CCJS_HW_MEMORYSYSTEM_H
