//===- hw/InvariantAuditor.cpp --------------------------------------------===//

#include "vm/InvariantAuditor.h"

#include "runtime/Layout.h"
#include "vm/VMState.h"

#include <cstdio>

using namespace ccjs;

namespace {

/// Effective (architecturally current) image of a Class List entry: the
/// cached copy when resident — it can be ahead of memory in profiling —
/// else the memory image.
ClassListEntry effectiveEntry(const VMState &VM, uint8_t ClassId,
                              uint8_t Line) {
  ClassListEntry E;
  if (VM.CCache.peekEntry(ClassId, Line, E))
    return E;
  return VM.CList.read(ClassId, Line);
}

/// Number of Class List lines class \p ClassId can own: the maximum over
/// its registered shapes. Audits scan only these, keeping a full audit
/// proportional to live classes rather than the 64K-entry region.
unsigned linesOfClass(const VMState &VM, uint8_t ClassId) {
  unsigned Lines = 0;
  for (ShapeId Id : VM.CList.shapesForClass(ClassId)) {
    const Shape &S = VM.Shapes.get(Id);
    unsigned L = layout::linesForSlots(S.NumSlots ? S.NumSlots : 1);
    if (L > Lines)
      Lines = L;
  }
  return Lines;
}

} // namespace

void InvariantAuditor::fail(std::string Msg) {
  ++TotalFailures;
  if (Failures.size() < MaxRecorded)
    Failures.push_back(std::move(Msg));
}

void InvariantAuditor::audit(const VMState &VM, const char *When,
                             uint32_t FuncIndex) {
  ++Audits;
  auditDeoptBounds(VM, When);
  if (VM.Config.ClassCacheEnabled) {
    std::vector<std::string> CacheFailures;
    VM.CCache.auditCoherence(CacheFailures);
    for (std::string &F : CacheFailures)
      fail(std::string(When) + ": " + F);
    auditSpeculationLists(VM, When);
    auditDescendantPropagation(VM, When);
  }
  (void)FuncIndex;
}

void InvariantAuditor::auditSpeculationLists(const VMState &VM,
                                             const char *When) {
  char Buf[192];
  // Direction 1: every non-empty FunctionList has its SpeculateMap bit set
  // and rests on a still-valid, initialized slot — the core soundness
  // condition for elision: a function with elided checks is reachable from
  // the slot it depends on until the slot breaks.
  for (const auto &[Key, Fns] : VM.CList.functionLists()) {
    if (Fns.empty())
      continue; // Drained by a past invalidation.
    uint8_t ClassId, Line, Pos;
    ClassList::decodeSlotKey(Key, ClassId, Line, Pos);
    ClassListEntry E = effectiveEntry(VM, ClassId, Line);
    uint8_t Bit = uint8_t(1) << Pos;
    if (!(E.SpeculateMap & Bit)) {
      std::snprintf(Buf, sizeof(Buf),
                    "%s: %zu dependent function(s) on (%u,%u,%u) but "
                    "SpeculateMap bit is clear",
                    When, Fns.size(), ClassId, Line, Pos);
      fail(Buf);
    }
    if (!(E.InitMap & Bit) || !(E.ValidMap & Bit)) {
      std::snprintf(Buf, sizeof(Buf),
                    "%s: speculation on (%u,%u,%u) rests on a slot that is "
                    "not initialized+valid (I=%02x V=%02x)",
                    When, ClassId, Line, Pos, E.InitMap, E.ValidMap);
      fail(Buf);
    }
  }
  // Direction 2: every set SpeculateMap bit has at least one dependent
  // function recorded — otherwise a future mismatch raises an exception
  // that deoptimizes nobody, i.e. the bit leaked.
  for (unsigned ClassId = 0; ClassId < UntrackedClassId; ++ClassId) {
    unsigned Lines = linesOfClass(VM, static_cast<uint8_t>(ClassId));
    for (unsigned Line = 0; Line < Lines; ++Line) {
      ClassListEntry E = effectiveEntry(VM, static_cast<uint8_t>(ClassId),
                                        static_cast<uint8_t>(Line));
      if (E.SpeculateMap == 0)
        continue;
      for (unsigned Pos = 1; Pos <= 7; ++Pos) {
        if (!(E.SpeculateMap & (uint8_t(1) << Pos)))
          continue;
        if (VM.CList
                .functionsFor(static_cast<uint8_t>(ClassId),
                              static_cast<uint8_t>(Line),
                              static_cast<uint8_t>(Pos))
                .empty()) {
          std::snprintf(Buf, sizeof(Buf),
                        "%s: SpeculateMap bit set on (%u,%u,%u) with no "
                        "dependent functions",
                        When, ClassId, Line, Pos);
          fail(Buf);
        }
      }
    }
  }
}

void InvariantAuditor::auditDescendantPropagation(const VMState &VM,
                                                  const char *When) {
  // For every registered parent→child transition edge: any ValidMap bit
  // cleared on the parent must be cleared on the child for the lines the
  // child inherited (children have at least the parent's slots, so a value
  // that broke monomorphism on the parent flowed into the child's slot
  // too). Walking single edges covers whole chains transitively.
  char Buf[160];
  for (unsigned ClassId = 0; ClassId < UntrackedClassId; ++ClassId) {
    for (ShapeId Id : VM.CList.shapesForClass(static_cast<uint8_t>(ClassId))) {
      const Shape &P = VM.Shapes.get(Id);
      unsigned ParentLines = layout::linesForSlots(P.NumSlots ? P.NumSlots : 1);
      for (const auto &[Name, ChildId] : P.Transitions) {
        const Shape &C = VM.Shapes.get(ChildId);
        if (C.ClassId >= UntrackedClassId)
          continue;
        for (unsigned Line = 0; Line < ParentLines; ++Line) {
          ClassListEntry Pe = effectiveEntry(VM, static_cast<uint8_t>(ClassId),
                                             static_cast<uint8_t>(Line));
          ClassListEntry Ce = effectiveEntry(VM, C.ClassId,
                                             static_cast<uint8_t>(Line));
          uint8_t Missed = static_cast<uint8_t>(~Pe.ValidMap) & Ce.ValidMap &
                           0xFE; // Positions 1..7.
          if (Missed) {
            std::snprintf(Buf, sizeof(Buf),
                          "%s: invalidation of class %u line %u (V=%02x) did "
                          "not reach descendant class %u (V=%02x, missed "
                          "bits %02x)",
                          When, ClassId, Line, Pe.ValidMap, C.ClassId,
                          Ce.ValidMap, Missed);
            fail(Buf);
          }
        }
      }
    }
  }
}

void InvariantAuditor::auditDeoptBounds(const VMState &VM, const char *When) {
  char Buf[160];
  for (size_t F = 0; F < VM.Funcs.size(); ++F) {
    const FunctionInfo &FI = VM.Funcs[F];
    if (FI.DeoptCount > VM.Config.MaxDeoptsPerFunction) {
      std::snprintf(Buf, sizeof(Buf),
                    "%s: function %zu DeoptCount %u exceeds "
                    "MaxDeoptsPerFunction %u",
                    When, F, FI.DeoptCount, VM.Config.MaxDeoptsPerFunction);
      fail(Buf);
    }
    if (FI.DeoptCount >= VM.Config.MaxDeoptsPerFunction && !FI.OptDisabled) {
      std::snprintf(Buf, sizeof(Buf),
                    "%s: function %zu hit the deopt bound (%u) but "
                    "optimization was not disabled",
                    When, F, FI.DeoptCount);
      fail(Buf);
    }
    if (FI.OptDisabled && FI.OptValid) {
      std::snprintf(Buf, sizeof(Buf),
                    "%s: function %zu is OptDisabled yet holds valid "
                    "optimized code",
                    When, F);
      fail(Buf);
    }
    if (FI.OptValid && !FI.Opt) {
      std::snprintf(Buf, sizeof(Buf),
                    "%s: function %zu claims valid optimized code but has "
                    "none",
                    When, F);
      fail(Buf);
    }
  }
}
