//===- hw/ClassCache.cpp --------------------------------------------------===//

#include "hw/ClassCache.h"

#include "support/Assert.h"

#include <cassert>

using namespace ccjs;

ClassCache::ClassCache(ClassList &List, unsigned Entries, unsigned Ways)
    : List(List), NumSets(Entries / Ways), Ways(Ways),
      Entries(Entries) {
  assert(Entries % Ways == 0 && "entries must divide evenly into ways");
  assert((NumSets & (NumSets - 1)) == 0 && "sets must be a power of two");
}

// The set index must mix ClassID and Line: most entries have Line 0, so
// indexing by the key's low bits alone would put every class's first line
// in one set.
static unsigned setIndexFor(uint8_t ClassId, uint8_t Line,
                            unsigned NumSets) {
  return (ClassId ^ (unsigned(Line) * 41u)) & (NumSets - 1);
}

ClassCache::CacheEntry *ClassCache::findCached(uint8_t ClassId, uint8_t Line) {
  uint16_t Tag = uint16_t(ClassId) << 8 | Line;
  unsigned Set = setIndexFor(ClassId, Line, NumSets);
  CacheEntry *Base = &Entries[size_t(Set) * Ways];
  for (unsigned W = 0; W < Ways; ++W)
    if (Base[W].ValidEntry && Base[W].Tag == Tag)
      return &Base[W];
  return nullptr;
}

unsigned ClassCache::lookup(uint8_t ClassId, uint8_t Line,
                            ClassCacheResult &R) {
  uint16_t Tag = uint16_t(ClassId) << 8 | Line;
  unsigned Set = setIndexFor(ClassId, Line, NumSets);
  CacheEntry *Base = &Entries[size_t(Set) * Ways];
  for (unsigned W = 0; W < Ways; ++W) {
    if (Base[W].ValidEntry && Base[W].Tag == Tag) {
      // Move to MRU position.
      CacheEntry Hit = Base[W];
      for (unsigned I = W; I > 0; --I)
        Base[I] = Base[I - 1];
      Base[0] = Hit;
      return 0;
    }
  }

  // Miss: evict LRU (writeback if dirty), refill from the Class List.
  ++Misses;
  R.Hit = false;
  CacheEntry &Victim = Base[Ways - 1];
  if (Victim.ValidEntry && Victim.Dirty) {
    List.write(static_cast<uint8_t>(Victim.Tag >> 8),
               static_cast<uint8_t>(Victim.Tag & 0xFF), Victim.Data);
    R.WritebackAddr = List.entryAddr(static_cast<uint8_t>(Victim.Tag >> 8),
                                     static_cast<uint8_t>(Victim.Tag & 0xFF));
    ++Writebacks;
  }
  for (unsigned I = Ways - 1; I > 0; --I)
    Base[I] = Base[I - 1];
  Base[0].ValidEntry = true;
  Base[0].Dirty = false;
  Base[0].Tag = Tag;
  Base[0].Data = List.read(ClassId, Line);
  R.FillAddr = List.entryAddr(ClassId, Line);
  return 0;
}

ClassCacheResult ClassCache::accessStore(uint8_t ContainerClass, uint8_t Line,
                                         uint8_t Pos, uint8_t ValueClass) {
  assert(Pos >= 1 && Pos <= 7 && "property position must be 1..7");
  ++Accesses;
  ClassCacheResult R;
  (void)lookup(ContainerClass, Line, R);
  // After lookup the entry sits at the MRU way of its set.
  unsigned Set = setIndexFor(ContainerClass, Line, NumSets);
  CacheEntry &E = Entries[size_t(Set) * Ways];
  ClassListEntry &D = E.Data;
  uint8_t Bit = uint8_t(1) << Pos;

  if (!(D.InitMap & Bit)) {
    // First store to this property: profile the value class.
    D.InitMap |= Bit;
    D.Props[Pos - 1] = ValueClass;
    E.Dirty = true;
    return R;
  }
  if (D.Props[Pos - 1] == ValueClass)
    return R; // Matches the profile; nothing to do.

  // Mismatch: the property is no longer monomorphic.
  if (D.ValidMap & Bit) {
    D.ValidMap &= ~Bit;
    E.Dirty = true;
    R.ValidCleared = true;
    if (D.SpeculateMap & Bit) {
      // At least one function was optimized assuming monomorphism: raise
      // the HW exception. The exception routine clears the bit.
      D.SpeculateMap &= ~Bit;
      R.Exception = true;
      ++Exceptions;
    }
  }
  return R;
}

int ClassCache::monomorphicClassAt(uint8_t ClassId, uint8_t Line,
                                   uint8_t Pos) const {
  assert(Pos >= 1 && Pos <= 7 && "property position must be 1..7");
  if (ClassId >= UntrackedClassId)
    return -1;
  // The compiler reads through the cache when the entry is resident (the
  // cached copy may be dirtier than memory).
  ClassListEntry D;
  if (const CacheEntry *E = const_cast<ClassCache *>(this)->findCached(ClassId,
                                                                       Line))
    D = E->Data;
  else
    D = List.read(ClassId, Line);
  uint8_t Bit = uint8_t(1) << Pos;
  if ((D.InitMap & Bit) && (D.ValidMap & Bit))
    return D.Props[Pos - 1];
  return -1;
}

void ClassCache::setSpeculate(uint8_t ClassId, uint8_t Line, uint8_t Pos) {
  assert(Pos >= 1 && Pos <= 7 && "property position must be 1..7");
  uint8_t Bit = uint8_t(1) << Pos;
  ClassListEntry D = List.read(ClassId, Line);
  if (CacheEntry *E = findCached(ClassId, Line)) {
    E->Data.SpeculateMap |= Bit;
    E->Dirty = true;
    D = E->Data;
  }
  D.SpeculateMap |= Bit;
  List.write(ClassId, Line, D);
}

void ClassCache::syncInvalidatedEntry(uint8_t ClassId, uint8_t Line) {
  if (CacheEntry *E = findCached(ClassId, Line)) {
    // The Class List already holds the invalidated image; adopt it.
    E->Data = List.read(ClassId, Line);
    E->Dirty = false;
  }
}

void ClassCache::writebackClass(uint8_t ClassId) {
  for (CacheEntry &E : Entries) {
    if (!E.ValidEntry || !E.Dirty ||
        static_cast<uint8_t>(E.Tag >> 8) != ClassId)
      continue;
    List.write(ClassId, static_cast<uint8_t>(E.Tag & 0xFF), E.Data);
    E.Dirty = false;
  }
}

void ClassCache::flushDirty() {
  for (CacheEntry &E : Entries) {
    if (!E.ValidEntry || !E.Dirty)
      continue;
    List.write(static_cast<uint8_t>(E.Tag >> 8),
               static_cast<uint8_t>(E.Tag & 0xFF), E.Data);
    E.Dirty = false;
  }
}

unsigned ClassCache::storageBits() const {
  // Tag bits: the 16-bit (ClassID, Line) key minus the set-index bits.
  unsigned SetBits = 0;
  for (unsigned S = NumSets; S > 1; S >>= 1)
    ++SetBits;
  unsigned TagBits = 16 - SetBits;
  // Per entry: valid + dirty + tag + 3 bitmaps + 7 property bytes.
  unsigned PerEntry = 1 + 1 + TagBits + 3 * 8 + 7 * 8;
  return PerEntry * static_cast<unsigned>(Entries.size());
}
