//===- hw/ClassCache.cpp --------------------------------------------------===//

#include "hw/ClassCache.h"

#include "support/Assert.h"
#include "support/FaultInjector.h"

#include <cstdio>
#include <cstring>

using namespace ccjs;

ClassCache::ClassCache(ClassList &List, unsigned Entries, unsigned Ways)
    : List(List), NumSets(Entries / Ways), Ways(Ways),
      Entries(Entries) {
  CCJS_ASSERT(Ways >= 1 && Entries >= Ways, "degenerate class cache geometry");
  CCJS_ASSERT(Entries % Ways == 0, "entries must divide evenly into ways");
  CCJS_ASSERT((NumSets & (NumSets - 1)) == 0, "sets must be a power of two");
}

// The set index must mix ClassID and Line: most entries have Line 0, so
// indexing by the key's low bits alone would put every class's first line
// in one set.
static unsigned setIndexFor(uint8_t ClassId, uint8_t Line,
                            unsigned NumSets) {
  return (ClassId ^ (unsigned(Line) * 41u)) & (NumSets - 1);
}

ClassCache::CacheEntry *ClassCache::findCached(uint8_t ClassId, uint8_t Line) {
  uint16_t Tag = uint16_t(ClassId) << 8 | Line;
  unsigned Set = setIndexFor(ClassId, Line, NumSets);
  CacheEntry *Base = &Entries[size_t(Set) * Ways];
  for (unsigned W = 0; W < Ways; ++W)
    if (Base[W].ValidEntry && Base[W].Tag == Tag)
      return &Base[W];
  return nullptr;
}

unsigned ClassCache::lookup(uint8_t ClassId, uint8_t Line,
                            ClassCacheResult &R) {
  uint16_t Tag = uint16_t(ClassId) << 8 | Line;
  unsigned Set = setIndexFor(ClassId, Line, NumSets);
  CacheEntry *Base = &Entries[size_t(Set) * Ways];
  for (unsigned W = 0; W < Ways; ++W) {
    if (Base[W].ValidEntry && Base[W].Tag == Tag) {
      // Move to MRU position.
      CacheEntry Hit = Base[W];
      for (unsigned I = W; I > 0; --I)
        Base[I] = Base[I - 1];
      Base[0] = Hit;
      return 0;
    }
  }

  // Miss: evict LRU (writeback if dirty), refill from the Class List.
  ++Misses;
  R.Hit = false;
  CacheEntry &Victim = Base[Ways - 1];
  if (Victim.ValidEntry && Victim.Dirty) {
    List.write(static_cast<uint8_t>(Victim.Tag >> 8),
               static_cast<uint8_t>(Victim.Tag & 0xFF), Victim.Data);
    R.WritebackAddr = List.entryAddr(static_cast<uint8_t>(Victim.Tag >> 8),
                                     static_cast<uint8_t>(Victim.Tag & 0xFF));
    ++Writebacks;
  }
  for (unsigned I = Ways - 1; I > 0; --I)
    Base[I] = Base[I - 1];
  Base[0].ValidEntry = true;
  Base[0].Dirty = false;
  Base[0].Tag = Tag;
  Base[0].Data = List.read(ClassId, Line);
  R.FillAddr = List.entryAddr(ClassId, Line);
  return 0;
}

ClassCacheResult ClassCache::accessStore(uint8_t ContainerClass, uint8_t Line,
                                         uint8_t Pos, uint8_t ValueClass) {
  CCJS_ASSERT(Pos >= 1 && Pos <= 7, "property position must be 1..7");
  ++Accesses;
  // Chaos: forcibly evict the target entry before the lookup. The dirty
  // image is written back first, so only the timing changes (a guaranteed
  // miss/refill), never the profile contents.
  if (FaultInj && FaultInj->fire(FaultPoint::CcForcedEviction)) {
    if (CacheEntry *E = findCached(ContainerClass, Line)) {
      if (E->Dirty) {
        List.write(ContainerClass, Line, E->Data);
        ++Writebacks;
      }
      E->ValidEntry = false;
      E->Dirty = false;
    }
  }
  ClassCacheResult R;
  (void)lookup(ContainerClass, Line, R);
  // After lookup the entry sits at the MRU way of its set.
  unsigned Set = setIndexFor(ContainerClass, Line, NumSets);
  CacheEntry &E = Entries[size_t(Set) * Ways];
  ClassListEntry &D = E.Data;
  uint8_t Bit = uint8_t(1) << Pos;

  if (!(D.InitMap & Bit)) {
    // First store to this property: profile the value class.
    D.InitMap |= Bit;
    D.Props[Pos - 1] = ValueClass;
    E.Dirty = true;
    return R;
  }
  if (D.Props[Pos - 1] == ValueClass)
    return R; // Matches the profile; nothing to do.

  // Mismatch: the property is no longer monomorphic.
  if (D.ValidMap & Bit) {
    D.ValidMap &= ~Bit;
    E.Dirty = true;
    R.ValidCleared = true;
    if (D.SpeculateMap & Bit) {
      // At least one function was optimized assuming monomorphism: raise
      // the HW exception. The exception routine clears the bit.
      D.SpeculateMap &= ~Bit;
      R.Exception = true;
      ++Exceptions;
    }
  }
  return R;
}

int ClassCache::monomorphicClassAt(uint8_t ClassId, uint8_t Line,
                                   uint8_t Pos) const {
  CCJS_ASSERT(Pos >= 1 && Pos <= 7, "property position must be 1..7");
  if (ClassId >= UntrackedClassId)
    return -1;
  // The compiler reads through the cache when the entry is resident (the
  // cached copy may be dirtier than memory).
  ClassListEntry D;
  if (const CacheEntry *E = const_cast<ClassCache *>(this)->findCached(ClassId,
                                                                       Line))
    D = E->Data;
  else
    D = List.read(ClassId, Line);
  uint8_t Bit = uint8_t(1) << Pos;
  if ((D.InitMap & Bit) && (D.ValidMap & Bit))
    return D.Props[Pos - 1];
  return -1;
}

void ClassCache::setSpeculate(uint8_t ClassId, uint8_t Line, uint8_t Pos) {
  CCJS_ASSERT(Pos >= 1 && Pos <= 7, "property position must be 1..7");
  uint8_t Bit = uint8_t(1) << Pos;
  ClassListEntry D = List.read(ClassId, Line);
  if (CacheEntry *E = findCached(ClassId, Line)) {
    E->Data.SpeculateMap |= Bit;
    E->Dirty = true;
    D = E->Data;
  }
  D.SpeculateMap |= Bit;
  List.write(ClassId, Line, D);
}

void ClassCache::syncInvalidatedEntry(uint8_t ClassId, uint8_t Line) {
  if (CacheEntry *E = findCached(ClassId, Line)) {
    // The Class List already holds the invalidated image; adopt it.
    E->Data = List.read(ClassId, Line);
    E->Dirty = false;
  }
}

void ClassCache::writebackClass(uint8_t ClassId) {
  for (CacheEntry &E : Entries) {
    if (!E.ValidEntry || !E.Dirty ||
        static_cast<uint8_t>(E.Tag >> 8) != ClassId)
      continue;
    List.write(ClassId, static_cast<uint8_t>(E.Tag & 0xFF), E.Data);
    E.Dirty = false;
  }
}

void ClassCache::flushDirty() {
  for (CacheEntry &E : Entries) {
    if (!E.ValidEntry || !E.Dirty)
      continue;
    List.write(static_cast<uint8_t>(E.Tag >> 8),
               static_cast<uint8_t>(E.Tag & 0xFF), E.Data);
    E.Dirty = false;
  }
}

void ClassCache::invalidateAll() {
  flushDirty();
  for (CacheEntry &E : Entries)
    E.ValidEntry = false;
}

void ClassCache::forEachDirty(
    const std::function<void(uint8_t, uint8_t, const ClassListEntry &)> &Fn)
    const {
  for (const CacheEntry &E : Entries)
    if (E.ValidEntry && E.Dirty)
      Fn(static_cast<uint8_t>(E.Tag >> 8), static_cast<uint8_t>(E.Tag & 0xFF),
         E.Data);
}

bool ClassCache::peekEntry(uint8_t ClassId, uint8_t Line, ClassListEntry &Out,
                           bool *DirtyOut) const {
  uint16_t Tag = uint16_t(ClassId) << 8 | Line;
  unsigned Set = setIndexFor(ClassId, Line, NumSets);
  const CacheEntry *Base = &Entries[size_t(Set) * Ways];
  for (unsigned W = 0; W < Ways; ++W) {
    if (Base[W].ValidEntry && Base[W].Tag == Tag) {
      Out = Base[W].Data;
      if (DirtyOut)
        *DirtyOut = Base[W].Dirty;
      return true;
    }
  }
  return false;
}

void ClassCache::auditCoherence(std::vector<std::string> &Failures) const {
  char Buf[160];
  for (const CacheEntry &E : Entries) {
    if (!E.ValidEntry)
      continue;
    uint8_t ClassId = static_cast<uint8_t>(E.Tag >> 8);
    uint8_t Line = static_cast<uint8_t>(E.Tag & 0xFF);
    ClassListEntry M = List.read(ClassId, Line);
    const ClassListEntry &C = E.Data;
    auto Fail = [&](const char *What) {
      std::snprintf(Buf, sizeof(Buf),
                    "class cache (%u,%u) %s: cached "
                    "I=%02x V=%02x S=%02x vs memory I=%02x V=%02x S=%02x%s",
                    ClassId, Line, What, C.InitMap, C.ValidMap, C.SpeculateMap,
                    M.InitMap, M.ValidMap, M.SpeculateMap,
                    E.Dirty ? " (dirty)" : "");
      Failures.push_back(Buf);
    };
    if (!E.Dirty) {
      // A clean entry must be an exact copy of memory: every memory writer
      // either syncs resident copies or only targets unregistered classes.
      if (C.InitMap != M.InitMap || C.ValidMap != M.ValidMap ||
          C.SpeculateMap != M.SpeculateMap)
        Fail("clean entry diverges from memory");
      else if (std::memcmp(C.Props, M.Props, sizeof(C.Props)) != 0)
        Fail("clean entry props diverge from memory");
      continue;
    }
    // A dirty entry may only be ahead of memory in profiling: extra InitMap
    // bits and their Props. ValidMap and SpeculateMap changes are pushed
    // through the invalidation service synchronously, so at any audit
    // boundary they must agree.
    if (M.InitMap & ~C.InitMap)
      Fail("memory initialized a position the cached entry has not");
    if (C.ValidMap != M.ValidMap)
      Fail("dirty entry ValidMap diverges from memory");
    if (C.SpeculateMap != M.SpeculateMap)
      Fail("dirty entry SpeculateMap diverges from memory");
    for (unsigned Pos = 1; Pos <= 7; ++Pos) {
      uint8_t Bit = uint8_t(1) << Pos;
      if ((M.InitMap & Bit) && (C.InitMap & Bit) &&
          M.Props[Pos - 1] != C.Props[Pos - 1]) {
        Fail("profiled class diverges for an initialized position");
        break;
      }
    }
  }
}

unsigned ClassCache::storageBits() const {
  // Tag bits: the 16-bit (ClassID, Line) key minus the set-index bits.
  unsigned SetBits = 0;
  for (unsigned S = NumSets; S > 1; S >>= 1)
    ++SetBits;
  unsigned TagBits = 16 - SetBits;
  // Per entry: valid + dirty + tag + 3 bitmaps + 7 property bytes.
  unsigned PerEntry = 1 + 1 + TagBits + 3 * 8 + 7 * 8;
  return PerEntry * static_cast<unsigned>(Entries.size());
}
