//===- hw/BranchPredictor.h - gshare branch predictor -----------*- C++ -*-===//
///
/// \file
/// A hashed bimodal predictor: the branch site indexes a table of 2-bit
/// saturating counters. Check branches are almost never taken, so they
/// predict (near) perfectly — exactly the behaviour the paper's overhead
/// analysis assumes: the cost of a check is its instructions and its map
/// load, not mispredictions. A global-history (gshare) scheme is
/// deliberately avoided: with the short histories a model this size can
/// afford, removing check branches perturbs the history alignment of the
/// remaining branches and destructive aliasing dominates the measurement —
/// an artifact a Nehalem-class predictor does not exhibit.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_BRANCHPREDICTOR_H
#define CCJS_HW_BRANCHPREDICTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccjs {

class BranchPredictor {
public:
  explicit BranchPredictor(unsigned TableBits = 12)
      : TableMask((1u << TableBits) - 1),
        Counters(size_t(1) << TableBits, 1) {}

  /// Predicts and updates for a branch at \p Site with outcome \p Taken.
  /// Returns true when the prediction was correct.
  ///
  /// The update is written branch-free on purpose: the natural if-chain
  /// branches on the *simulated* outcome, which is data-dependent and
  /// poorly predictable by the *host* CPU, so the model itself pays a
  /// host mispredict per hard-to-predict simulated branch. The clamped
  /// arithmetic below computes the exact same saturating transition
  /// (+1 toward 3 when taken, -1 toward 0 when not; no-op when already
  /// saturated in the outcome's direction) but compiles to cmov/min/max,
  /// leaving every counter value, Branches and Mispredicts tally
  /// bit-identical to the branching form.
  bool predict(uint32_t Site, bool Taken) {
    ++Branches;
    // Fibonacci hash spreads site ids across the table.
    unsigned Index = (Site * 2654435761u >> 16) & TableMask;
    uint8_t C = Counters[Index];
    bool Predicted = C >= 2;
    int Next = int(C) + (Taken ? 1 : -1);
    Next = Next < 0 ? 0 : Next;
    Next = Next > 3 ? 3 : Next;
    Counters[Index] = static_cast<uint8_t>(Next);
    bool Correct = Predicted == Taken;
    Mispredicts += !Correct;
    return Correct;
  }

  uint64_t branches() const { return Branches; }
  uint64_t mispredicts() const { return Mispredicts; }

  /// Clears counters; predictor state (history, counters) persists.
  void resetStats() { Branches = Mispredicts = 0; }

  /// Warm-state capture for profile snapshots: the saturating-counter
  /// table only (Branches/Mispredicts are per-request stats).
  const std::vector<uint8_t> &counters() const { return Counters; }
  /// Restores a captured table; rejects a size mismatch untouched.
  bool restoreCounters(const std::vector<uint8_t> &NewCounters) {
    if (NewCounters.size() != Counters.size())
      return false;
    Counters = NewCounters;
    return true;
  }

private:
  unsigned TableMask;
  std::vector<uint8_t> Counters;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;
};

} // namespace ccjs

#endif // CCJS_HW_BRANCHPREDICTOR_H
