//===- hw/ExecContext.h - Machine event sink & timing -----------*- C++ -*-===//
///
/// \file
/// The central accounting object of the simulation. Both execution tiers
/// expand their work into machine-level events (ALU ops, loads, stores,
/// branches, Class Cache requests); the ExecContext counts them per
/// category, drives the memory hierarchy and branch predictor, and
/// accumulates stall cycles.
///
/// Events are split into two buckets: *optimized code* (categories Checks,
/// Tags/Untags, Math Assumptions, Other Optimized) and *rest of code*
/// (baseline tier, IC stubs, runtime helpers), matching how the paper
/// reports "optimized code" vs "whole application" results.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_EXECCONTEXT_H
#define CCJS_HW_EXECCONTEXT_H

#include "hw/BranchPredictor.h"
#include "hw/ClassCache.h"
#include "hw/EventBatch.h"
#include "hw/HwConfig.h"
#include "hw/MemorySystem.h"
#include "profile/Categories.h"
#include "support/Assert.h"
#include "support/Trace.h"

#include <bit>

namespace ccjs {

/// Hardware event counters for one bucket (optimized / rest).
struct HwBucketCounters {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t TlbMisses = 0;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;
  uint64_t CcAccesses = 0;
  uint64_t CcMisses = 0;
  uint64_t CcExceptions = 0;
  double StallCycles = 0;
};

class ExecContext {
public:
  explicit ExecContext(const HwConfig &Cfg, ClassCache *CC = nullptr)
      : Cfg(Cfg), Mem(Cfg), CC(CC), InvIssueWidth(1.0 / Cfg.IssueWidth),
        LineShift(static_cast<unsigned>(std::countr_zero(Cfg.LineBytes))) {
    // A zero width would silently yield infinite cycles; the reciprocal
    // is exact for the power-of-two widths in use, so multiplying in
    // cyclesFor is bit-identical to the old per-call division.
    CCJS_ASSERT(Cfg.IssueWidth >= 1, "issue width must be at least 1");
    // The category->bucket map never changes; resolving it to pointers
    // once removes a compare from every event primitive. Buckets has
    // stable addresses for the ExecContext's lifetime (resetStats
    // reassigns contents, not storage).
    for (unsigned I = 0; I < NumInstrCategories; ++I)
      BucketOf[I] = &Buckets[static_cast<InstrCategory>(I) ==
                                     InstrCategory::RestOfCode
                                 ? 1
                                 : 0];
  }

  //===--------------------------------------------------------------------===//
  // Event primitives
  //===--------------------------------------------------------------------===//

  /// \p N non-memory instructions.
  void alu(InstrCategory C, unsigned N = 1, bool AfterObjLoad = false) {
    Instrs.add(C, N, AfterObjLoad);
  }

  void load(InstrCategory C, uint64_t Addr, bool AfterObjLoad = false) {
    Instrs.add(C, 1, AfterObjLoad);
    HwBucketCounters &B = bucket(C);
    ++B.Loads;
    memAccess(B, Addr);
  }

  void store(InstrCategory C, uint64_t Addr, bool AfterObjLoad = false) {
    Instrs.add(C, 1, AfterObjLoad);
    HwBucketCounters &B = bucket(C);
    ++B.Stores;
    memAccess(B, Addr);
  }

  void branch(InstrCategory C, uint32_t Site, bool Taken,
              bool AfterObjLoad = false) {
    Instrs.add(C, 1, AfterObjLoad);
    HwBucketCounters &B = bucket(C);
    ++B.Branches;
    if (!Predictor.predict(Site, Taken)) {
      ++B.Mispredicts;
      B.StallCycles += Cfg.BranchMispredictPenalty;
    }
  }

  /// Class Cache request issued in parallel with a property/elements store
  /// (the store itself must be emitted separately). Free on a hit; a miss
  /// charges the Class List refill (and dirty writeback) as memory traffic.
  ClassCacheResult classCacheStore(InstrCategory C, uint8_t ContainerClass,
                                   uint8_t Line, uint8_t Pos,
                                   uint8_t ValueClass) {
    assert(CC && "Class Cache not attached to this configuration");
    HwBucketCounters &B = bucket(C);
    ++B.CcAccesses;
    ClassCacheResult R = CC->accessStore(ContainerClass, Line, Pos,
                                         ValueClass);
    if (!R.Hit) {
      ++B.CcMisses;
      if (R.WritebackAddr) {
        ++B.Stores;
        memAccess(B, R.WritebackAddr);
      }
      ++B.Loads;
      memAccess(B, R.FillAddr);
    }
    if (R.Exception) {
      ++B.CcExceptions;
      B.StallCycles += Cfg.ClassCacheExceptionFlush;
    }
    // Host-side observation only (null test when tracing is off): every
    // Class Cache request funnels through here, so this one site covers
    // hit/miss/exception events for both tiers.
    if (Trace) {
      Trace->record(R.Hit ? TraceEventKind::CcHit : TraceEventKind::CcMiss,
                    ContainerClass, Line, Pos,
                    R.Hit ? 0 : (R.WritebackAddr ? 1 : 0));
      if (R.Exception)
        Trace->record(TraceEventKind::CcException, ContainerClass, Line,
                      Pos);
    }
    return R;
  }

  /// Replays a precomputed superinstruction event template through the
  /// primitives above, in template order. Load/Store/Branch events consume
  /// one entry of \p Operands each (addresses, or branch site + outcome);
  /// Alu events consume none. Because every event funnels through the same
  /// code paths as unfused execution, the caches, TLB, branch predictor and
  /// instruction counters observe a byte-identical stream — the template
  /// only elides the per-op dispatch that produced the calls.
  void chargeBatch(const BatchEvent *Evs, unsigned NumEvs,
                   const BatchOperand *Operands) {
    for (unsigned I = 0; I < NumEvs; ++I) {
      const BatchEvent &E = Evs[I];
      switch (E.Kind) {
      case BatchEvKind::Alu:
        alu(E.Cat, E.N, E.AfterObjLoad);
        break;
      case BatchEvKind::Load:
        load(E.Cat, Operands->AddrOrSite, E.AfterObjLoad);
        ++Operands;
        break;
      case BatchEvKind::Store:
        store(E.Cat, Operands->AddrOrSite, E.AfterObjLoad);
        ++Operands;
        break;
      case BatchEvKind::Branch:
        branch(E.Cat, static_cast<uint32_t>(Operands->AddrOrSite),
               Operands->Taken, E.AfterObjLoad);
        ++Operands;
        break;
      }
    }
  }

  void chargeBatch(const EventBatch &B, const BatchOperand *Operands) {
    chargeBatch(B.Evs, B.NumEvs, Operands);
  }

  /// Lazy-BBV block-version materialization cost: tag projection plus one
  /// abstract walk over the block's \p BlockOps ops (a generic fallback
  /// skips the walk). Charged to the runtime bucket like compilation —
  /// deterministic in its inputs, so BBV stats/cycles reproduce exactly
  /// across runs and dispatch modes.
  void chargeBbvSpecialization(bool Generic, unsigned BlockOps) {
    alu(InstrCategory::RestOfCode, Generic ? 20 : 40 + 6 * BlockOps);
  }

  ClassCache *classCache() { return CC; }

  /// Attaches the trace recorder (null = tracing off, the default).
  void setTrace(TraceRecorder *T) { Trace = T; }

  //===--------------------------------------------------------------------===//
  // Results
  //===--------------------------------------------------------------------===//

  const InstrCounters &instrs() const { return Instrs; }
  MemorySystem &memory() { return Mem; }
  const MemorySystem &memory() const { return Mem; }
  const BranchPredictor &predictor() const { return Predictor; }
  /// Mutable access for profile-snapshot restore only.
  BranchPredictor &predictor() { return Predictor; }

  /// Warm-state capture for profile snapshots: the one-entry same-line
  /// memo that fronts the memory hierarchy.
  uint64_t lastLine() const { return LastLine; }
  void setLastLine(uint64_t Line) { LastLine = Line; }

  const HwBucketCounters &optimizedBucket() const { return Buckets[0]; }
  const HwBucketCounters &restBucket() const { return Buckets[1]; }

  /// Simulated cycles for the optimized-code bucket, the rest bucket and
  /// the whole application.
  double optimizedCycles() const {
    return cyclesFor(Instrs.optimizedTotal(), Buckets[0]);
  }
  double restCycles() const {
    uint64_t RestInstr =
        Instrs.PerCategory[static_cast<unsigned>(InstrCategory::RestOfCode)];
    return cyclesFor(RestInstr, Buckets[1]);
  }
  double totalCycles() const { return optimizedCycles() + restCycles(); }

  const HwConfig &config() const { return Cfg; }

  /// Tracks accesses to one address region (the engine registers the
  /// Class List region, so its memory traffic can be reported).
  void setRegionOfInterest(uint64_t Lo, uint64_t Hi) {
    RoiLo = Lo;
    RoiHi = Hi;
  }
  uint64_t roiAccesses() const { return RoiAccesses; }
  uint64_t roiMisses() const { return RoiMisses; }

  /// Zeroes all counters (instructions, buckets, cache/TLB/predictor/Class
  /// Cache statistics) while keeping the microarchitectural state warm —
  /// the paper's steady-state protocol measures the 10th iteration only.
  void resetStats() {
    Instrs = InstrCounters();
    Buckets[0] = HwBucketCounters();
    Buckets[1] = HwBucketCounters();
    Mem.resetStats();
    Predictor.resetStats();
    if (CC)
      CC->resetStats();
  }

private:
  HwBucketCounters &bucket(InstrCategory C) {
    return *BucketOf[static_cast<unsigned>(C)];
  }

  void memAccess(HwBucketCounters &B, uint64_t Addr) {
    // One-entry memo: an access to the same DL1 line as the previous
    // access is a guaranteed DTLB + DL1 MRU hit (every data access of
    // both tiers and the Class Cache refills funnel through here, and
    // nothing flushes these caches), so no miss counter can move and
    // ExtraLatency is zero. Only the access tallies and the ROI access
    // count advance — bit-identical to the full lookup.
    uint64_t Line = Addr >> LineShift;
    if (Line == LastLine) {
      Mem.repeatAccess();
      if (Addr >= RoiLo && Addr < RoiHi)
        ++RoiAccesses;
      return;
    }
    LastLine = Line;
    MemAccessResult R = Mem.access(Addr);
    if (Addr >= RoiLo && Addr < RoiHi) {
      ++RoiAccesses;
      if (!R.L1Hit)
        ++RoiMisses;
    }
    if (!R.L1Hit)
      ++B.L1Misses;
    if (!R.L1Hit && !R.L2Hit)
      ++B.L2Misses;
    if (R.TlbMiss)
      ++B.TlbMisses;
    if (R.ExtraLatency)
      B.StallCycles += R.ExtraLatency * Cfg.StallOverlap;
  }

  double cyclesFor(uint64_t InstrCount, const HwBucketCounters &B) const {
    return static_cast<double>(InstrCount) * InvIssueWidth + B.StallCycles;
  }

  const HwConfig &Cfg;
  MemorySystem Mem;
  BranchPredictor Predictor;
  ClassCache *CC;
  TraceRecorder *Trace = nullptr;
  InstrCounters Instrs;
  HwBucketCounters Buckets[2]; // [0] optimized, [1] rest.
  HwBucketCounters *BucketOf[NumInstrCategories];
  double InvIssueWidth;
  unsigned LineShift;
  // Sentinel: no address shifted right by LineShift produces all-ones.
  uint64_t LastLine = ~uint64_t(0);
  uint64_t RoiLo = 0, RoiHi = 0;
  uint64_t RoiAccesses = 0, RoiMisses = 0;
};

} // namespace ccjs

#endif // CCJS_HW_EXECCONTEXT_H
