//===- hw/ClassCache.h - The Class Cache (paper section 4.2.1.3) -*- C++ -*-===//
///
/// \file
/// The Class Cache: a small set-associative hardware cache of Class List
/// entries, accessed in parallel with the L1 on every movStoreClassCache /
/// movStoreClassCacheArray instruction. On a hit the access is free; on a
/// miss the entry is refilled from the Class List in memory (like a TLB
/// miss), writing back a dirty victim.
///
/// The access implements the paper's protocol: first store to a property
/// initializes its profile; a mismatching store clears the ValidMap bit
/// (never to be set again) and, when the SpeculateMap bit was set, raises a
/// hardware exception so the runtime can deoptimize the dependent
/// functions.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_CLASSCACHE_H
#define CCJS_HW_CLASSCACHE_H

#include "hw/ClassList.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ccjs {

class FaultInjector;

/// Outcome of one Class Cache store request.
struct ClassCacheResult {
  bool Hit = true;
  /// The ValidMap bit of the target slot was cleared by this request.
  bool ValidCleared = false;
  /// A HW exception was raised (ValidCleared with SpeculateMap set).
  bool Exception = false;
  /// Simulated address of the Class List entry fetched on a miss (0 if
  /// none); used for timing.
  uint64_t FillAddr = 0;
  /// Simulated address of a dirty victim written back (0 if none).
  uint64_t WritebackAddr = 0;
};

class ClassCache {
public:
  ClassCache(ClassList &List, unsigned Entries, unsigned Ways);

  /// Handles a movStoreClassCache / movStoreClassCacheArray request:
  /// the store targets property position \p Pos of line \p Line of an
  /// object of class \p ContainerClass, writing a value of class
  /// \p ValueClass (SmiClassId for SMIs).
  ClassCacheResult accessStore(uint8_t ContainerClass, uint8_t Line,
                               uint8_t Pos, uint8_t ValueClass);

  //===--------------------------------------------------------------------===//
  // Runtime/compiler-side operations (write-through to the Class List)
  //===--------------------------------------------------------------------===//

  /// Profile query used by the optimizing compiler: returns the profiled
  /// value class when (ClassId, Line, Pos) is initialized and still
  /// monomorphic, or -1.
  int monomorphicClassAt(uint8_t ClassId, uint8_t Line, uint8_t Pos) const;

  /// Marks the slot as speculated-on (paper: sets the SpeculateMap bit).
  void setSpeculate(uint8_t ClassId, uint8_t Line, uint8_t Pos);

  /// Applies an externally initiated invalidation (descendant propagation)
  /// to any cached copy. The Class List itself is updated by the caller.
  void syncInvalidatedEntry(uint8_t ClassId, uint8_t Line);

  /// Writes every dirty entry back to the Class List.
  void flushDirty();

  /// Writes back the dirty entries of one class (the runtime synchronizes
  /// before copying a parent's profile into a freshly created class).
  void writebackClass(uint8_t ClassId);

  /// Writes back every dirty entry and invalidates the whole cache (used
  /// when the engine is reloaded with a new program: stale entries must not
  /// alias the new program's class ids).
  void invalidateAll();

  //===--------------------------------------------------------------------===//
  // Chaos engine hooks
  //===--------------------------------------------------------------------===//

  /// Attaches the chaos-engine fault injector (null to detach). When armed,
  /// accessStore consults the CcForcedEviction point and evicts the target
  /// entry (writing back dirty data) before the lookup, forcing the
  /// miss/refill path.
  void setFaultInjector(FaultInjector *FI) { FaultInj = FI; }

  /// Side-effect-free copy of the cached image of (ClassId, Line) without
  /// touching LRU order or statistics. Returns false when not resident.
  bool peekEntry(uint8_t ClassId, uint8_t Line, ClassListEntry &Out,
                 bool *DirtyOut = nullptr) const;

  /// Profile-snapshot capture: invokes \p Fn for every resident dirty
  /// entry (cache ahead of the Class List memory image). Read-only — the
  /// capture overlays the would-be writebacks onto its *copy* of simulated
  /// memory, because flushing for real would clear Dirty bits and change
  /// the engine's later writeback charges.
  void forEachDirty(
      const std::function<void(uint8_t ClassId, uint8_t Line,
                               const ClassListEntry &E)> &Fn) const;

  /// Invariant audit: checks every resident entry against the Class List
  /// memory image (clean entries must match exactly; dirty entries may only
  /// be ahead of memory in InitMap/Props profiling, never divergent in
  /// ValidMap/SpeculateMap at an audit boundary). Appends one message per
  /// violation to \p Failures.
  void auditCoherence(std::vector<std::string> &Failures) const;

  // Statistics.
  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }
  uint64_t exceptions() const { return Exceptions; }
  uint64_t writebacks() const { return Writebacks; }
  double hitRate() const {
    return Accesses == 0 ? 1.0
                         : 1.0 - static_cast<double>(Misses) / Accesses;
  }

  /// Total state bits of the structure (paper section 5.4: <1.5KB).
  unsigned storageBits() const;

  /// Clears counters; cached entries persist.
  void resetStats() { Accesses = Misses = Exceptions = Writebacks = 0; }

private:
  struct CacheEntry {
    bool ValidEntry = false;
    bool Dirty = false;
    uint16_t Tag = 0; // (ClassId << 8) | Line.
    ClassListEntry Data;
  };

  /// Finds (ClassId, Line) in the cache, refilling on miss. Returns the
  /// way index within the set.
  unsigned lookup(uint8_t ClassId, uint8_t Line, ClassCacheResult &R);

  CacheEntry *findCached(uint8_t ClassId, uint8_t Line);

  ClassList &List;
  unsigned NumSets, Ways;
  std::vector<CacheEntry> Entries; // Set-major; way 0 is MRU.
  FaultInjector *FaultInj = nullptr;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
  uint64_t Exceptions = 0;
  uint64_t Writebacks = 0;
};

} // namespace ccjs

#endif // CCJS_HW_CLASSCACHE_H
