//===- hw/ClassList.cpp ---------------------------------------------------===//

#include "hw/ClassList.h"

#include "runtime/Layout.h"
#include "support/Assert.h"

using namespace ccjs;

ClassList::ClassList(SimMemory &Mem) : Mem(Mem), ClassShapes(256) {
  RegionAddr = Mem.allocate(uint64_t(NumEntries) * EntryBytes, 64);
}

ClassListEntry ClassList::read(uint8_t ClassId, uint8_t Line) const {
  uint64_t A = entryAddr(ClassId, Line);
  ClassListEntry E;
  E.InitMap = Mem.read8(A + 0);
  E.ValidMap = Mem.read8(A + 1);
  E.SpeculateMap = Mem.read8(A + 2);
  for (unsigned I = 0; I < 7; ++I)
    E.Props[I] = Mem.read8(A + 4 + I);
  return E;
}

void ClassList::write(uint8_t ClassId, uint8_t Line, const ClassListEntry &E) {
  uint64_t A = entryAddr(ClassId, Line);
  Mem.write8(A + 0, E.InitMap);
  Mem.write8(A + 1, E.ValidMap);
  Mem.write8(A + 2, E.SpeculateMap);
  for (unsigned I = 0; I < 7; ++I)
    Mem.write8(A + 4 + I, E.Props[I]);
}

void ClassList::encodeEntry(const ClassListEntry &E, uint8_t *Out) {
  Out[0] = E.InitMap;
  Out[1] = E.ValidMap;
  Out[2] = E.SpeculateMap;
  for (unsigned I = 0; I < 7; ++I)
    Out[4 + I] = E.Props[I];
}

void ClassList::bootstrapExisting(const ShapeTable &Shapes) {
  for (ShapeId Id = 0; Id < Shapes.size(); ++Id)
    onShapeCreated(Shapes, Id);
}

void ClassList::onShapeCreated(const ShapeTable &Shapes, ShapeId Id) {
  const Shape &S = Shapes.get(Id);
  if (S.ClassId >= UntrackedClassId)
    return; // Saturated ids share entries; never profiled for speculation.
  ClassShapes[S.ClassId].push_back(Id);

  unsigned Lines = layout::linesForSlots(S.NumSlots ? S.NumSlots : 1);
  unsigned ParentLines = 0;
  bool InheritFromParent =
      S.Parent != InvalidShape &&
      Shapes.get(S.Parent).ClassId < UntrackedClassId;
  if (InheritFromParent) {
    const Shape &P = Shapes.get(S.Parent);
    ParentLines = layout::linesForSlots(P.NumSlots ? P.NumSlots : 1);
  }
  for (unsigned L = 0; L < Lines; ++L) {
    ClassListEntry E;
    if (InheritFromParent && L < ParentLines) {
      // Profile inheritance: constructor-assigned properties keep their
      // profile across the transition chain. (Lines the parent never had
      // start fresh.)
      E = read(Shapes.get(S.Parent).ClassId, static_cast<uint8_t>(L));
      E.SpeculateMap = 0; // Dependencies are per hidden class.
    }
    write(S.ClassId, static_cast<uint8_t>(L), E);
  }
}

void ClassList::addFunctionDependency(uint8_t ClassId, uint8_t Line,
                                      uint8_t Pos, uint32_t FuncIndex) {
  CCJS_ASSERT(ClassId < UntrackedClassId,
              "cannot speculate on untracked hidden classes");
  std::vector<uint32_t> &Fns = FunctionLists[slotKey(ClassId, Line, Pos)];
  for (uint32_t F : Fns)
    if (F == FuncIndex)
      return;
  Fns.push_back(FuncIndex);
}

const std::vector<uint32_t> &ClassList::functionsFor(uint8_t ClassId,
                                                     uint8_t Line,
                                                     uint8_t Pos) const {
  static const std::vector<uint32_t> Empty;
  auto It = FunctionLists.find(slotKey(ClassId, Line, Pos));
  return It == FunctionLists.end() ? Empty : It->second;
}

const std::vector<ShapeId> &ClassList::shapesForClass(uint8_t ClassId) const {
  return ClassShapes[ClassId];
}

void ClassList::clearSpeculations() {
  FunctionLists.clear();
  for (unsigned ClassId = 0; ClassId < ClassShapes.size(); ++ClassId) {
    if (ClassShapes[ClassId].empty())
      continue;
    // Every line an entry of this class could have been written at.
    for (unsigned Line = 0; Line < 256; ++Line) {
      ClassListEntry E = read(static_cast<uint8_t>(ClassId),
                              static_cast<uint8_t>(Line));
      if (E.SpeculateMap == 0)
        continue;
      E.SpeculateMap = 0;
      write(static_cast<uint8_t>(ClassId), static_cast<uint8_t>(Line), E);
    }
  }
}

void ClassList::invalidateSlot(uint8_t ClassId, uint8_t Line, uint8_t Pos,
                               std::vector<uint32_t> &Deopt,
                               std::vector<std::pair<uint8_t, uint8_t>>
                                   &Touched) {
  ClassListEntry E = read(ClassId, Line);
  uint8_t Bit = uint8_t(1) << Pos;
  // The host-side FunctionList is authoritative for dependents: the entry's
  // SpeculateMap bit may already have been cleared by the Class Cache (the
  // exception path synchronizes the cached image to memory before this walk
  // runs), but the dependent functions still must be deoptimized exactly
  // once.
  auto It = FunctionLists.find(slotKey(ClassId, Line, Pos));
  bool HasDependents = It != FunctionLists.end() && !It->second.empty();
  if (!(E.ValidMap & Bit) && !(E.SpeculateMap & Bit) && !HasDependents)
    return; // Already invalid and dependency-free.
  E.ValidMap &= ~Bit;
  E.SpeculateMap &= ~Bit;
  if (HasDependents) {
    Deopt.insert(Deopt.end(), It->second.begin(), It->second.end());
    It->second.clear();
  }
  write(ClassId, Line, E);
  Touched.emplace_back(ClassId, Line);
}

std::vector<uint32_t> ClassList::invalidateWithDescendants(
    const ShapeTable &Shapes, uint8_t ClassId, uint8_t Line, uint8_t Pos,
    std::vector<std::pair<uint8_t, uint8_t>> &Touched) {
  std::vector<uint32_t> Deopt;
  invalidateSlot(ClassId, Line, Pos, Deopt, Touched);

  // Objects that later transitioned to descendant classes carry the same
  // slot; their profiles inherited the now-broken fact.
  std::vector<ShapeId> Work = ClassShapes[ClassId];
  while (!Work.empty()) {
    ShapeId Id = Work.back();
    Work.pop_back();
    const Shape &S = Shapes.get(Id);
    for (const auto &[Name, Child] : S.Transitions) {
      const Shape &C = Shapes.get(Child);
      if (C.ClassId < UntrackedClassId)
        invalidateSlot(C.ClassId, Line, Pos, Deopt, Touched);
      Work.push_back(Child);
    }
  }
  return Deopt;
}

std::string ClassList::dumpClass(
    uint8_t ClassId, unsigned Lines,
    const std::function<std::string(uint8_t)> &ClassNamer,
    const std::function<std::string(uint32_t)> &FuncNamer) const {
  auto Bits = [](uint8_t B) {
    std::string S(8, '0');
    for (unsigned I = 0; I < 8; ++I)
      if (B & (1u << (7 - I)))
        S[I] = '1';
    return S;
  };

  std::string Out;
  for (unsigned L = 0; L < Lines; ++L) {
    ClassListEntry E = read(ClassId, static_cast<uint8_t>(L));
    Out += ClassNamer(ClassId) + ", line " + std::to_string(L) +
           ": InitMap=" + Bits(E.InitMap) + " ValidMap=" + Bits(E.ValidMap) +
           " SpeculateMap=" + Bits(E.SpeculateMap);
    Out += " Props=[";
    for (unsigned P = 0; P < 7; ++P) {
      if (P)
        Out += ", ";
      unsigned Pos = P + 1;
      if (E.InitMap & (1u << Pos))
        Out += ClassNamer(E.Props[P]);
      else
        Out += "-";
    }
    Out += "]";
    for (unsigned Pos = 0; Pos < 8; ++Pos) {
      const std::vector<uint32_t> &Fns =
          functionsFor(ClassId, static_cast<uint8_t>(L),
                       static_cast<uint8_t>(Pos));
      if (Fns.empty())
        continue;
      Out += " pos" + std::to_string(Pos) + ":{";
      for (size_t I = 0; I < Fns.size(); ++I) {
        if (I)
          Out += ", ";
        Out += FuncNamer(Fns[I]);
      }
      Out += "}";
    }
    Out += "\n";
  }
  return Out;
}
