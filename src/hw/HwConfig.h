//===- hw/HwConfig.h - Microarchitecture configuration ---------*- C++ -*-===//
///
/// \file
/// Simulated micro-architecture configuration, mirroring the paper's
/// Table 2 (a Nehalem-like core) plus the constants of our event-driven
/// timing and energy models.
///
/// The timing model is deliberately simpler than MARSS: instructions retire
/// at the issue width, memory stalls come from real set-associative cache
/// and TLB simulations, and branch penalties from a real gshare predictor.
/// An overlap factor stands in for the latency-hiding of the 128-entry
/// out-of-order window. See DESIGN.md for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_HWCONFIG_H
#define CCJS_HW_HWCONFIG_H

namespace ccjs {

struct HwConfig {
  // Core (paper Table 2).
  unsigned IssueWidth = 4;
  unsigned InstrQueue = 36;  ///< Documented; folded into StallOverlap.
  unsigned WindowSize = 128; ///< Documented; folded into StallOverlap.
  unsigned OutstandingLoadStores = 10;

  // Memory hierarchy (paper Table 2).
  unsigned LineBytes = 64;
  unsigned Dl1SizeKB = 32;
  unsigned Dl1Ways = 8;
  unsigned Il1SizeKB = 32; ///< Documented; instruction fetch is not modeled.
  unsigned Il1Ways = 4;
  unsigned L2SizeKB = 256;
  unsigned L2Ways = 8;
  unsigned ItlbEntries = 128;
  unsigned DtlbEntries = 256;
  unsigned DtlbWays = 4;
  unsigned PageBytes = 4096;

  // Latencies (cycles).
  unsigned L1LoadLatency = 2; ///< Hidden by the pipeline on a hit.
  unsigned L2Latency = 12;
  unsigned MemLatency = 150;
  unsigned TlbMissPenalty = 30;
  unsigned BranchMispredictPenalty = 14;

  /// Fraction of a miss's extra latency that the out-of-order window fails
  /// to hide (1.0 = fully exposed, 0 = fully hidden).
  double StallOverlap = 0.4;

  // Class Cache (paper Table 2: 128 entries, 2-way).
  unsigned ClassCacheEntries = 128;
  unsigned ClassCacheWays = 2;
  /// Instructions executed by the runtime exception routine that
  /// deoptimizes the offending functions.
  unsigned ClassCacheExceptionCost = 600;
  /// Pipeline flush cycles charged when the HW exception fires.
  unsigned ClassCacheExceptionFlush = 40;

  //===--------------------------------------------------------------------===//
  // Energy model constants (pJ per event / per cycle), CACTI/McPAT-flavored
  // magnitudes for a 32nm Nehalem-class core.
  //===--------------------------------------------------------------------===//
  double AluOpPJ = 0.9;       ///< Average non-memory instruction energy.
  double L1AccessPJ = 2.3;    ///< DL1 read/write.
  double L2AccessPJ = 16.0;
  double MemAccessPJ = 180.0;
  double TlbAccessPJ = 0.6;
  double BranchPJ = 0.4;      ///< Predictor lookup/update.
  double ClassCachePJ = 0.35; ///< 1.5KB, 2-way structure (CACTI estimate).
  double LeakagePJPerCycle = 320.0; ///< ~1W static at ~3GHz.
};

} // namespace ccjs

#endif // CCJS_HW_HWCONFIG_H
