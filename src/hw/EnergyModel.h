//===- hw/EnergyModel.h - McPAT/CACTI-style energy model --------*- C++ -*-===//
///
/// \file
/// Energy accounting: dynamic energy per event class plus leakage per
/// cycle, with constants of CACTI/McPAT magnitude for the simulated core
/// (see HwConfig). The paper measures energy with McPAT and the Class
/// Cache with CACTI (section 5.2); this model reproduces how its savings
/// arise — fewer executed instructions (dynamic energy) and fewer cycles
/// (leakage energy).
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_ENERGYMODEL_H
#define CCJS_HW_ENERGYMODEL_H

#include "hw/ExecContext.h"

namespace ccjs {

struct EnergyBreakdown {
  double CorePJ = 0;
  double L1PJ = 0;
  double L2PJ = 0;
  double MemPJ = 0;
  double ClassCachePJ = 0;
  double LeakagePJ = 0;
  double total() const {
    return CorePJ + L1PJ + L2PJ + MemPJ + ClassCachePJ + LeakagePJ;
  }
};

class EnergyModel {
public:
  /// Energy for one bucket's events over \p Cycles simulated cycles.
  static EnergyBreakdown compute(const HwConfig &Cfg, uint64_t InstrCount,
                                 const HwBucketCounters &B, double Cycles) {
    EnergyBreakdown E;
    E.CorePJ = InstrCount * Cfg.AluOpPJ + B.Branches * Cfg.BranchPJ;
    E.L1PJ = (B.Loads + B.Stores) * (Cfg.L1AccessPJ + Cfg.TlbAccessPJ);
    E.L2PJ = B.L1Misses * Cfg.L2AccessPJ;
    E.MemPJ = B.L2Misses * Cfg.MemAccessPJ;
    E.ClassCachePJ = B.CcAccesses * Cfg.ClassCachePJ;
    E.LeakagePJ = Cycles * Cfg.LeakagePJPerCycle;
    return E;
  }

  /// Whole-application energy of an execution context.
  static EnergyBreakdown total(const ExecContext &Ctx) {
    const HwConfig &Cfg = Ctx.config();
    EnergyBreakdown Opt =
        compute(Cfg, Ctx.instrs().optimizedTotal(), Ctx.optimizedBucket(),
                Ctx.optimizedCycles());
    EnergyBreakdown Rest = compute(
        Cfg,
        Ctx.instrs()
            .PerCategory[static_cast<unsigned>(InstrCategory::RestOfCode)],
        Ctx.restBucket(), Ctx.restCycles());
    EnergyBreakdown Sum;
    Sum.CorePJ = Opt.CorePJ + Rest.CorePJ;
    Sum.L1PJ = Opt.L1PJ + Rest.L1PJ;
    Sum.L2PJ = Opt.L2PJ + Rest.L2PJ;
    Sum.MemPJ = Opt.MemPJ + Rest.MemPJ;
    Sum.ClassCachePJ = Opt.ClassCachePJ + Rest.ClassCachePJ;
    Sum.LeakagePJ = Opt.LeakagePJ + Rest.LeakagePJ;
    return Sum;
  }

  /// Optimized-code-only energy of an execution context.
  static EnergyBreakdown optimizedOnly(const ExecContext &Ctx) {
    return compute(Ctx.config(), Ctx.instrs().optimizedTotal(),
                   Ctx.optimizedBucket(), Ctx.optimizedCycles());
  }

  /// CACTI-style storage estimate of the Class Cache in bytes.
  static double classCacheBytes(const ClassCache &CC) {
    return CC.storageBits() / 8.0;
  }
};

} // namespace ccjs

#endif // CCJS_HW_ENERGYMODEL_H
