//===- hw/ClassList.h - The Class List (paper section 4.2.1.1) --*- C++ -*-===//
///
/// \file
/// The Class List: a software-maintained structure in simulated memory
/// with one entry per (ClassID, cache line) recording, for each property
/// position of that line, whether it has been initialized (InitMap),
/// whether it is still monomorphic (ValidMap), whether speculative
/// optimizations depend on it (SpeculateMap), and the profiled ClassID of
/// its values (Prop1..Prop7). A special register points at the region and
/// entries are indexed by concatenating ClassID and Line.
///
/// The per-property FunctionList (functions speculatively optimized on the
/// property) is kept host-side, as the runtime would keep it in unmanaged
/// memory.
///
/// Two protocol details the paper leaves implicit are made explicit here
/// (see DESIGN.md):
///   * when a hidden class is created by a property transition, its Class
///     List entries inherit the parent's profile, so constructor-assigned
///     properties are profiled at the final class of the object;
///   * when a ValidMap bit is cleared, the invalidation is propagated to
///     the entries of all descendant hidden classes (objects that
///     transitioned through the writing class carry the offending value).
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_CLASSLIST_H
#define CCJS_HW_CLASSLIST_H

#include "runtime/Shape.h"
#include "runtime/SimMemory.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccjs {

/// In-memory image of one Class List entry (16 simulated bytes).
struct ClassListEntry {
  uint8_t InitMap = 0;
  /// All properties start monomorphic (paper: initialized to 11111111).
  uint8_t ValidMap = 0xFF;
  uint8_t SpeculateMap = 0;
  uint8_t Props[7] = {0, 0, 0, 0, 0, 0, 0};
};

class ClassList {
public:
  static constexpr unsigned EntryBytes = 16;
  static constexpr unsigned NumEntries = 1u << 16; // ClassID x Line.

  explicit ClassList(SimMemory &Mem);

  /// Simulated address of the entry for (ClassID, Line); the hardware uses
  /// this for miss refills and writebacks.
  uint64_t entryAddr(uint8_t ClassId, uint8_t Line) const {
    return RegionAddr + (uint64_t(ClassId) << 8 | Line) * EntryBytes;
  }

  ClassListEntry read(uint8_t ClassId, uint8_t Line) const;
  void write(uint8_t ClassId, uint8_t Line, const ClassListEntry &E);

  //===--------------------------------------------------------------------===//
  // Runtime-side services
  //===--------------------------------------------------------------------===//

  /// Registers a newly created hidden class and copies its parent's profile
  /// into its entries (profile inheritance).
  void onShapeCreated(const ShapeTable &Shapes, ShapeId Id);

  /// Records that \p FuncIndex was speculatively optimized assuming
  /// (ClassId, Line, Pos) is monomorphic.
  void addFunctionDependency(uint8_t ClassId, uint8_t Line, uint8_t Pos,
                             uint32_t FuncIndex);

  /// Functions that depend on the slot; used by the exception routine.
  const std::vector<uint32_t> &functionsFor(uint8_t ClassId, uint8_t Line,
                                            uint8_t Pos) const;

  /// Host-side dependency lists, keyed by slotKey (ClassId<<16|Line<<8|Pos).
  /// Exposed read-only for the invariant auditor, which cross-checks every
  /// non-empty list against the SpeculateMap bit of its slot.
  const std::unordered_map<uint32_t, std::vector<uint32_t>> &
  functionLists() const {
    return FunctionLists;
  }

  static void decodeSlotKey(uint32_t Key, uint8_t &ClassId, uint8_t &Line,
                            uint8_t &Pos) {
    ClassId = static_cast<uint8_t>(Key >> 16);
    Line = static_cast<uint8_t>(Key >> 8);
    Pos = static_cast<uint8_t>(Key);
  }

  /// Drops every function dependency and clears all SpeculateMap bits of
  /// registered classes. Used when the engine is reloaded with a new
  /// program: dependency lists hold function indices of the old module, and
  /// a stale entry would deoptimize (or index out of bounds in) the new
  /// function table. The caller must synchronize/invalidate Class Cache
  /// copies first.
  void clearSpeculations();

  /// Clears the ValidMap bit of (ClassId, Line, Pos) in this entry and in
  /// the entries of every descendant hidden class, collecting all dependent
  /// functions whose SpeculateMap bit was set (they must be deoptimized).
  /// The caller must also invalidate any Class Cache copies; the touched
  /// (classId, line) pairs are appended to \p Touched.
  std::vector<uint32_t>
  invalidateWithDescendants(const ShapeTable &Shapes, uint8_t ClassId,
                            uint8_t Line, uint8_t Pos,
                            std::vector<std::pair<uint8_t, uint8_t>> &Touched);

  /// All hidden classes registered under a ClassID (more than one only when
  /// the 8-bit id space saturated).
  const std::vector<ShapeId> &shapesForClass(uint8_t ClassId) const;

  /// Initializes Class List entries for shapes that existed before this
  /// Class List was attached (the well-known root shapes).
  void bootstrapExisting(const ShapeTable &Shapes);

  /// Encodes \p E into \p Out (EntryBytes bytes) with the exact byte
  /// layout read()/write() use against simulated memory; bytes the
  /// protocol never writes (3, 11..15) are left untouched. Used by the
  /// profile-snapshot capture to overlay dirty Class Cache entries onto
  /// its copy of the memory image.
  static void encodeEntry(const ClassListEntry &E, uint8_t *Out);

  /// Profile-snapshot access: the ClassID -> registered-shapes index.
  /// Entry *images* live in simulated memory and travel with the SimMemory
  /// capture; this host-side index must be restored alongside them.
  const std::vector<std::vector<ShapeId>> &classShapes() const {
    return ClassShapes;
  }
  void restoreClassShapes(std::vector<std::vector<ShapeId>> Shapes) {
    ClassShapes = std::move(Shapes);
  }

  /// Pretty-prints the entries of \p ClassId for the paper's Table 1.
  /// \p ClassNamer and \p FuncNamer map ids to display names.
  std::string
  dumpClass(uint8_t ClassId, unsigned Lines,
            const std::function<std::string(uint8_t)> &ClassNamer,
            const std::function<std::string(uint32_t)> &FuncNamer) const;

private:
  void invalidateSlot(uint8_t ClassId, uint8_t Line, uint8_t Pos,
                      std::vector<uint32_t> &Deopt,
                      std::vector<std::pair<uint8_t, uint8_t>> &Touched);

  SimMemory &Mem;
  uint64_t RegionAddr;
  std::unordered_map<uint32_t, std::vector<uint32_t>> FunctionLists;
  std::vector<std::vector<ShapeId>> ClassShapes; // Indexed by ClassID.

  static uint32_t slotKey(uint8_t ClassId, uint8_t Line, uint8_t Pos) {
    return uint32_t(ClassId) << 16 | uint32_t(Line) << 8 | Pos;
  }
};

} // namespace ccjs

#endif // CCJS_HW_CLASSLIST_H
