//===- hw/EventBatch.h - Precomputed machine-event templates ----*- C++ -*-===//
///
/// \file
/// A superinstruction charges its simulated cost as one replay of a
/// precomputed event template instead of a run of individual ExecContext
/// calls. The template fixes everything that is static per compiled
/// instruction — event kind and order, instruction category, the
/// after-object-load attribution bit, coalesced ALU counts — while the
/// dynamic operands (memory addresses, branch sites and outcomes) are
/// supplied at execution time, in template order.
///
/// The replay contract (ExecContext::chargeBatch) is byte-identity: the
/// caches, TLB, branch predictor and instruction counters observe exactly
/// the event stream the unfused op sequence would have produced. The only
/// transformation templates are allowed to bake in is coalescing *adjacent*
/// ALU events of the same category and attribution into one event with a
/// summed count — provably identical because InstrCounters::add is a pair
/// of `+= N` accumulations and ALU events touch no other machine state.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_HW_EVENTBATCH_H
#define CCJS_HW_EVENTBATCH_H

#include "profile/Categories.h"

#include <cstdint>

namespace ccjs {

enum class BatchEvKind : uint8_t {
  Alu,    ///< N non-memory instructions; consumes no operand.
  Load,   ///< One load; consumes an address operand.
  Store,  ///< One store; consumes an address operand.
  Branch, ///< One branch; consumes a site+taken operand.
};

/// One event of a template. Alu events carry a (possibly coalesced)
/// instruction count; Load/Store/Branch events always count one
/// instruction and take their dynamic half from the operand stream.
struct BatchEvent {
  BatchEvKind Kind = BatchEvKind::Alu;
  InstrCategory Cat = InstrCategory::OtherOptimized;
  bool AfterObjLoad = false;
  uint16_t N = 1;
};

/// Dynamic operand for one Load/Store/Branch event: the address, or the
/// branch-predictor site id plus the taken outcome.
struct BatchOperand {
  uint64_t AddrOrSite = 0;
  bool Taken = false;
};

/// A per-superinstruction template: at most the events of a fused triple.
/// Stored by value in OptCode's side table and indexed via the fused op's
/// Aux field, so replay is one indexed load away from the handler.
struct EventBatch {
  static constexpr unsigned MaxEvents = 6;
  BatchEvent Evs[MaxEvents] = {};
  uint8_t NumEvs = 0;

  /// Appends an event, coalescing adjacent same-category/same-attribution
  /// ALU events (the only rewrite the byte-identity argument permits).
  void append(BatchEvent E) {
    if (E.Kind == BatchEvKind::Alu && NumEvs > 0) {
      BatchEvent &Last = Evs[NumEvs - 1];
      if (Last.Kind == BatchEvKind::Alu && Last.Cat == E.Cat &&
          Last.AfterObjLoad == E.AfterObjLoad) {
        Last.N = static_cast<uint16_t>(Last.N + E.N);
        return;
      }
    }
    Evs[NumEvs++] = E;
  }
};

} // namespace ccjs

#endif // CCJS_HW_EVENTBATCH_H
