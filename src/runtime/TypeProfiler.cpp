//===- runtime/TypeProfiler.cpp -------------------------------------------===//

#include "runtime/TypeProfiler.h"

using namespace ccjs;

ObjectLoadCounters TypeProfiler::summarize() const {
  ObjectLoadCounters Out;
  Out.FirstLineLoads = FirstLineLoads;
  Out.TotalPropertyLoads = TotalPropertyLoads;
  for (const auto &[Key, Count] : Loads) {
    bool IsElements = (Key >> 63) != 0;
    auto It = Profiles.find(Key);
    bool Mono = It != Profiles.end() && It->second.Initialized &&
                !It->second.Polymorphic;
    if (IsElements) {
      (Mono ? Out.MonomorphicElements : Out.NonMonomorphicElements) += Count;
    } else {
      (Mono ? Out.MonomorphicProperty : Out.NonMonomorphicProperty) += Count;
    }
  }
  return Out;
}
