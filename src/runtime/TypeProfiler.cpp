//===- runtime/TypeProfiler.cpp -------------------------------------------===//

#include "runtime/TypeProfiler.h"

using namespace ccjs;

ObjectLoadCounters TypeProfiler::summarize() const {
  ObjectLoadCounters Out;
  Out.FirstLineLoads = FirstLineLoads;
  Out.TotalPropertyLoads = TotalPropertyLoads;
  Loads.forEach([&](uint64_t Key, uint64_t Count) {
    bool IsElements = (Key >> 63) != 0;
    const LocProfile *P = Profiles.find(Key);
    bool Mono = P && P->Initialized && !P->Polymorphic;
    if (IsElements) {
      (Mono ? Out.MonomorphicElements : Out.NonMonomorphicElements) += Count;
    } else {
      (Mono ? Out.MonomorphicProperty : Out.NonMonomorphicProperty) += Count;
    }
  });
  return Out;
}
