//===- runtime/Shape.cpp --------------------------------------------------===//

#include "runtime/Shape.h"

#include <cassert>

using namespace ccjs;

ShapeTable::ShapeTable() {
  PlainRoot = createShape(ObjectKind::Plain, InvalidShape, 0);
  ArrayRoot = createShape(ObjectKind::Plain, InvalidShape, 0);
  HeapNumber = createShape(ObjectKind::HeapNumber, InvalidShape, 0);
  StringS = createShape(ObjectKind::String, InvalidShape, 0);
  FunctionS = createShape(ObjectKind::Function, InvalidShape, 0);
  UndefinedS = createShape(ObjectKind::Oddball, InvalidShape, 0);
  NullS = createShape(ObjectKind::Oddball, InvalidShape, 0);
  TrueS = createShape(ObjectKind::Oddball, InvalidShape, 0);
  FalseS = createShape(ObjectKind::Oddball, InvalidShape, 0);
}

ShapeId ShapeTable::createShape(ObjectKind Kind, ShapeId Parent,
                                InternedString Name) {
  Shape S;
  S.Id = static_cast<ShapeId>(Shapes.size());
  S.Kind = Kind;
  // ClassIDs are consecutive 8-bit numbers; 0xFE saturates (untracked) and
  // 0xFF encodes SMI. The paper reports at most 32 hidden classes for all
  // but two benchmarks, so saturation is rare.
  S.ClassId = NextClassId < UntrackedClassId
                  ? static_cast<uint8_t>(NextClassId++)
                  : UntrackedClassId;
  if (Parent != InvalidShape) {
    const Shape &P = Shapes[Parent];
    S.Parent = Parent;
    S.AddedName = Name;
    S.SlotOf = P.SlotOf;
    S.NumSlots = P.NumSlots;
    if (Name != 0) {
      assert(!S.SlotOf.count(Name) && "property already present in shape");
      S.SlotOf.emplace(Name, S.NumSlots);
      ++S.NumSlots;
    }
  }
  if (Kind == ObjectKind::Plain)
    ++NumPlain;
  Shapes.push_back(std::move(S));
  ShapeId Id = Shapes.back().Id;
  if (Trace)
    Trace->record(TraceEventKind::ShapeCreated, Shapes.back().ClassId, 0, 0,
                  Id, Parent);
  if (Metrics) {
    ++Metrics->counter("shapes_created");
    if (Kind == ObjectKind::Plain)
      ++Metrics->counter("shapes_created_plain");
  }
  if (CreationHook)
    CreationHook(Id);
  return Id;
}

ShapeId ShapeTable::transition(ShapeId Parent, InternedString Name) {
  assert(Name != 0 && "cannot transition on the empty property name");
  Shape &P = Shapes[Parent];
  auto It = P.Transitions.find(Name);
  if (It != P.Transitions.end())
    return It->second;
  ShapeId Child = createShape(Shapes[Parent].Kind, Parent, Name);
  // Note: createShape may invalidate P by reallocating Shapes.
  Shapes[Parent].Transitions.emplace(Name, Child);
  return Child;
}

ShapeId ShapeTable::rootForConstructor(uint32_t FuncIndex) {
  auto It = ConstructorRoots.find(FuncIndex);
  if (It != ConstructorRoots.end())
    return It->second;
  ShapeId Root = createShape(ObjectKind::Plain, InvalidShape, 0);
  ConstructorRoots.emplace(FuncIndex, Root);
  return Root;
}

ShapeId ShapeTable::rootForArraySite(uint64_t SiteKey) {
  auto It = ArraySiteRoots.find(SiteKey);
  if (It != ArraySiteRoots.end())
    return It->second;
  ShapeId Root = createShape(ObjectKind::Plain, InvalidShape, 0);
  ArraySiteRoots.emplace(SiteKey, Root);
  return Root;
}
