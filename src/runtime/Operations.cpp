//===- runtime/Operations.cpp ---------------------------------------------===//

#include "runtime/Operations.h"

#include "support/Assert.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ccjs;

bool ccjs::toBoolean(const Heap &H, Value V) {
  switch (H.kindOf(V)) {
  case ValueKind::Smi:
    return V.asSmi() != 0;
  case ValueKind::HeapNumber: {
    double D = H.heapNumberValue(V.asPointer());
    return D != 0 && !std::isnan(D);
  }
  case ValueKind::String:
    return H.stringLength(V.asPointer()) != 0;
  case ValueKind::Undefined:
  case ValueKind::Null:
    return false;
  case ValueKind::Boolean:
    return V == H.trueValue();
  case ValueKind::Function:
  case ValueKind::Object:
    return true;
  }
  CCJS_UNREACHABLE("unknown value kind");
}

double ccjs::toNumber(const Heap &H, Value V) {
  switch (H.kindOf(V)) {
  case ValueKind::Smi:
    return V.asSmi();
  case ValueKind::HeapNumber:
    return H.heapNumberValue(V.asPointer());
  case ValueKind::String: {
    std::string S = H.stringContents(V.asPointer());
    if (S.empty())
      return 0;
    char *End = nullptr;
    double D = std::strtod(S.c_str(), &End);
    while (End && *End == ' ')
      ++End;
    if (!End || *End != '\0')
      return std::nan("");
    return D;
  }
  case ValueKind::Undefined:
    return std::nan("");
  case ValueKind::Null:
    return 0;
  case ValueKind::Boolean:
    return V == H.trueValue() ? 1 : 0;
  case ValueKind::Function:
  case ValueKind::Object:
    return std::nan("");
  }
  CCJS_UNREACHABLE("unknown value kind");
}

int32_t ccjs::toInt32(double D) {
  if (std::isnan(D) || std::isinf(D))
    return 0;
  // ECMAScript ToInt32: modulo 2^32 into the signed range.
  double M = std::fmod(std::trunc(D), 4294967296.0);
  if (M < 0)
    M += 4294967296.0;
  uint32_t U = static_cast<uint32_t>(M);
  return static_cast<int32_t>(U);
}

std::string ccjs::numberToString(double D) {
  if (std::isnan(D))
    return "NaN";
  if (std::isinf(D))
    return D > 0 ? "Infinity" : "-Infinity";
  if (D == std::floor(D) && std::fabs(D) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", D);
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.12g", D);
  return Buf;
}

std::string ccjs::toStringValue(const Heap &H, Value V) {
  switch (H.kindOf(V)) {
  case ValueKind::Smi:
    return numberToString(V.asSmi());
  case ValueKind::HeapNumber:
    return numberToString(H.heapNumberValue(V.asPointer()));
  case ValueKind::String:
    return H.stringContents(V.asPointer());
  case ValueKind::Undefined:
    return "undefined";
  case ValueKind::Null:
    return "null";
  case ValueKind::Boolean:
    return V == H.trueValue() ? "true" : "false";
  case ValueKind::Function:
    return "function";
  case ValueKind::Object:
    return "[object Object]";
  }
  CCJS_UNREACHABLE("unknown value kind");
}

const char *ccjs::typeofString(const Heap &H, Value V) {
  switch (H.kindOf(V)) {
  case ValueKind::Smi:
  case ValueKind::HeapNumber:
    return "number";
  case ValueKind::String:
    return "string";
  case ValueKind::Undefined:
    return "undefined";
  case ValueKind::Boolean:
    return "boolean";
  case ValueKind::Function:
    return "function";
  case ValueKind::Null:
  case ValueKind::Object:
    return "object";
  }
  CCJS_UNREACHABLE("unknown value kind");
}

static bool isNumberKind(ValueKind K) {
  return K == ValueKind::Smi || K == ValueKind::HeapNumber;
}

bool ccjs::strictEquals(const Heap &H, Value A, Value B) {
  if (A == B) {
    // Identical heap numbers / SMIs still need the NaN rule.
    if (H.kindOf(A) == ValueKind::HeapNumber)
      return !std::isnan(H.heapNumberValue(A.asPointer()));
    return true;
  }
  ValueKind KA = H.kindOf(A), KB = H.kindOf(B);
  if (isNumberKind(KA) && isNumberKind(KB))
    return toNumber(H, A) == toNumber(H, B);
  if (KA == ValueKind::String && KB == ValueKind::String)
    return H.stringContents(A.asPointer()) == H.stringContents(B.asPointer());
  return false;
}

bool ccjs::looseEquals(const Heap &H, Value A, Value B) {
  ValueKind KA = H.kindOf(A), KB = H.kindOf(B);
  bool NullishA = KA == ValueKind::Undefined || KA == ValueKind::Null;
  bool NullishB = KB == ValueKind::Undefined || KB == ValueKind::Null;
  if (NullishA || NullishB)
    return NullishA && NullishB;
  if (KA == ValueKind::String && isNumberKind(KB))
    return toNumber(H, A) == toNumber(H, B);
  if (isNumberKind(KA) && KB == ValueKind::String)
    return toNumber(H, A) == toNumber(H, B);
  if (KA == ValueKind::Boolean || KB == ValueKind::Boolean)
    return toNumber(H, A) == toNumber(H, B);
  return strictEquals(H, A, B);
}

Value ccjs::genericBinary(Heap &H, BinaryOp Op, Value A, Value B) {
  switch (Op) {
  case BinaryOp::Add: {
    if (H.isString(A) || H.isString(B))
      return H.allocString(toStringValue(H, A) + toStringValue(H, B));
    return H.number(toNumber(H, A) + toNumber(H, B));
  }
  case BinaryOp::Sub:
    return H.number(toNumber(H, A) - toNumber(H, B));
  case BinaryOp::Mul:
    return H.number(toNumber(H, A) * toNumber(H, B));
  case BinaryOp::Div:
    return H.number(toNumber(H, A) / toNumber(H, B));
  case BinaryOp::Mod:
    return H.number(std::fmod(toNumber(H, A), toNumber(H, B)));
  case BinaryOp::BitAnd:
    return Value::makeSmi(toInt32(toNumber(H, A)) & toInt32(toNumber(H, B)));
  case BinaryOp::BitOr:
    return Value::makeSmi(toInt32(toNumber(H, A)) | toInt32(toNumber(H, B)));
  case BinaryOp::BitXor:
    return Value::makeSmi(toInt32(toNumber(H, A)) ^ toInt32(toNumber(H, B)));
  case BinaryOp::Shl:
    return Value::makeSmi(toInt32(toNumber(H, A))
                          << (toInt32(toNumber(H, B)) & 31));
  case BinaryOp::Sar:
    return Value::makeSmi(toInt32(toNumber(H, A)) >>
                          (toInt32(toNumber(H, B)) & 31));
  case BinaryOp::Shr: {
    uint32_t U = static_cast<uint32_t>(toInt32(toNumber(H, A)));
    uint32_t Shifted = U >> (toInt32(toNumber(H, B)) & 31);
    // JS >>> yields an unsigned 32-bit result, which may not fit a SMI.
    return H.number(static_cast<double>(Shifted));
  }
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: {
    if (H.isString(A) && H.isString(B)) {
      int Cmp = H.stringContents(A.asPointer())
                    .compare(H.stringContents(B.asPointer()));
      switch (Op) {
      case BinaryOp::Lt:
        return H.boolean(Cmp < 0);
      case BinaryOp::Le:
        return H.boolean(Cmp <= 0);
      case BinaryOp::Gt:
        return H.boolean(Cmp > 0);
      default:
        return H.boolean(Cmp >= 0);
      }
    }
    double X = toNumber(H, A), Y = toNumber(H, B);
    switch (Op) {
    case BinaryOp::Lt:
      return H.boolean(X < Y);
    case BinaryOp::Le:
      return H.boolean(X <= Y);
    case BinaryOp::Gt:
      return H.boolean(X > Y);
    default:
      return H.boolean(X >= Y);
    }
  }
  case BinaryOp::Eq:
    return H.boolean(looseEquals(H, A, B));
  case BinaryOp::Ne:
    return H.boolean(!looseEquals(H, A, B));
  case BinaryOp::StrictEq:
    return H.boolean(strictEquals(H, A, B));
  case BinaryOp::StrictNe:
    return H.boolean(!strictEquals(H, A, B));
  }
  CCJS_UNREACHABLE("unknown binary op");
}

Value ccjs::genericUnary(Heap &H, UnaryOp Op, Value V) {
  switch (Op) {
  case UnaryOp::Neg:
    return H.number(-toNumber(H, V));
  case UnaryOp::Plus:
    return H.number(toNumber(H, V));
  case UnaryOp::Not:
    return H.boolean(!toBoolean(H, V));
  case UnaryOp::BitNot:
    return Value::makeSmi(~toInt32(toNumber(H, V)));
  case UnaryOp::Typeof:
    return H.allocString(typeofString(H, V));
  }
  CCJS_UNREACHABLE("unknown unary op");
}
