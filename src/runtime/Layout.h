//===- runtime/Layout.h - Object memory layout -----------------*- C++ -*-===//
///
/// \file
/// Memory layout of heap objects in the simulated address space, following
/// the paper (sections 3.1 and 4.2.1) and V8:
///
///   word 0: header = shape descriptor address (low 40 bits)
///           | in-object slot capacity (byte 5)
///           | ClassID (byte 6) | relative cache line (byte 7)
///   word 1: overflow properties array pointer (0 when none)
///   word 2: elements array pointer (0 when none)
///   word 3: elements length
///   words 4..7 and words 1..7 of subsequent lines: in-object property slots
///
/// Objects are 64-byte (cache line) aligned, and *every* line of a
/// multi-line object repeats the header tag bytes with its own line number,
/// exactly as the paper's Class Cache requires (Figure 4). The paper's text
/// is inconsistent about whether the elements pointer is word 2 or 3 and
/// whether its Class List field is Prop2 or position 3; we use 0-based word
/// positions throughout: the elements-array class profile lives at
/// (line 0, position 2).
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_LAYOUT_H
#define CCJS_RUNTIME_LAYOUT_H

#include <cassert>
#include <cstdint>

namespace ccjs {

namespace layout {

inline constexpr uint64_t CacheLineBytes = 64;
inline constexpr unsigned WordsPerLine = 8;
/// In-object slots available in the first line (positions 4..7).
inline constexpr unsigned Line0Slots = 4;
/// In-object slots available in each subsequent line (positions 1..7).
inline constexpr unsigned LineNSlots = 7;

/// Word position (0-based, within line 0) holding the overflow properties
/// array pointer.
inline constexpr unsigned PropsPointerPos = 1;
/// Word position holding the elements array pointer; also the Class List /
/// Class Cache property position used for elements-array class profiles.
inline constexpr unsigned ElementsPointerPos = 2;
/// Word position holding the elements length.
inline constexpr unsigned ElementsLengthPos = 3;

/// Location of an in-object slot: cache line index and word position.
struct SlotLocation {
  uint8_t Line;
  uint8_t Pos;
};

/// Maps an in-object slot index to its (line, position).
inline SlotLocation slotLocation(uint32_t Slot) {
  if (Slot < Line0Slots)
    return {0, static_cast<uint8_t>(4 + Slot)};
  uint32_t Rest = Slot - Line0Slots;
  return {static_cast<uint8_t>(1 + Rest / LineNSlots),
          static_cast<uint8_t>(1 + Rest % LineNSlots)};
}

/// Number of cache lines needed for \p Slots in-object slots.
inline uint32_t linesForSlots(uint32_t Slots) {
  if (Slots <= Line0Slots)
    return 1;
  return 1 + (Slots - Line0Slots + LineNSlots - 1) / LineNSlots;
}

/// In-object slots available in an object spanning \p Lines cache lines.
inline uint32_t slotsForLines(uint32_t Lines) {
  assert(Lines >= 1);
  return Line0Slots + (Lines - 1) * LineNSlots;
}

/// Byte offset of an in-object slot from the object base.
inline uint64_t slotByteOffset(uint32_t Slot) {
  SlotLocation Loc = slotLocation(Slot);
  return Loc.Line * CacheLineBytes + Loc.Pos * 8;
}

//===----------------------------------------------------------------------===//
// Header word encoding
//===----------------------------------------------------------------------===//

/// Builds a header word from a shape descriptor address (must fit 40 bits),
/// the in-object capacity, the 8-bit ClassID and the relative line number.
inline uint64_t makeHeader(uint64_t DescAddr, uint8_t CapacitySlots,
                           uint8_t ClassId, uint8_t Line) {
  assert(DescAddr < (uint64_t(1) << 40) &&
         "shape descriptor address exceeds 40 bits");
  return DescAddr | (uint64_t(CapacitySlots) << 40) |
         (uint64_t(ClassId) << 48) | (uint64_t(Line) << 56);
}

inline uint64_t headerDescAddr(uint64_t Header) {
  return Header & ((uint64_t(1) << 40) - 1);
}
inline uint8_t headerCapacity(uint64_t Header) {
  return static_cast<uint8_t>(Header >> 40);
}
inline uint8_t headerClassId(uint64_t Header) {
  return static_cast<uint8_t>(Header >> 48);
}
inline uint8_t headerLine(uint64_t Header) {
  return static_cast<uint8_t>(Header >> 56);
}

} // namespace layout

} // namespace ccjs

#endif // CCJS_RUNTIME_LAYOUT_H
