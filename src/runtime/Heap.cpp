//===- runtime/Heap.cpp ---------------------------------------------------===//

#include "runtime/Heap.h"

#include "support/Assert.h"
#include "support/FaultInjector.h"

#include <cmath>

using namespace ccjs;
using namespace ccjs::layout;

Heap::Heap(SimMemory &Mem, ShapeTable &Shapes, StringInterner &Names)
    : Mem(Mem), Shapes(Shapes), Names(Names) {
  auto AllocOddball = [&](ShapeId Shape) {
    uint64_t Addr = Mem.allocate(8, 8);
    Mem.write64(Addr, makeHeader(ShapeTable::descriptorAddr(Shape), 0,
                                 Shapes.get(Shape).ClassId, 0));
    return Value::makePointer(Addr);
  };
  UndefinedV = AllocOddball(Shapes.undefinedShape());
  NullV = AllocOddball(Shapes.nullShape());
  TrueV = AllocOddball(Shapes.trueShape());
  FalseV = AllocOddball(Shapes.falseShape());
  EmptyStringV = allocString("");
}

void Heap::writeHeaders(uint64_t ObjAddr, ShapeId Shape,
                        uint32_t CapacitySlots) {
  uint32_t Lines = linesForSlots(CapacitySlots == 0 ? 1 : CapacitySlots);
  uint64_t Desc = ShapeTable::descriptorAddr(Shape);
  uint8_t ClassId = Shapes.get(Shape).ClassId;
  for (uint32_t L = 0; L < Lines; ++L)
    Mem.write64(ObjAddr + L * CacheLineBytes,
                makeHeader(Desc, static_cast<uint8_t>(CapacitySlots), ClassId,
                           static_cast<uint8_t>(L)));
}

void Heap::maybeInjectAllocPressure() {
  if (FaultInj && FaultInj->fire(FaultPoint::AllocPressure)) {
    // 1..8 dead cache lines; not counted in HeapStats (no program-visible
    // allocation happened, the layout just shifted).
    uint64_t Lines = 1 + FaultInj->auxRandom() % 8;
    Mem.allocate(Lines * CacheLineBytes, CacheLineBytes);
  }
}

Value Heap::allocObject(ShapeId Shape, uint32_t CapacitySlots) {
  maybeInjectAllocPressure();
  if (CapacitySlots > 200)
    CapacitySlots = 200; // Keep the capacity byte in range.
  uint32_t Lines = linesForSlots(CapacitySlots == 0 ? 1 : CapacitySlots);
  CapacitySlots = slotsForLines(Lines); // Round up to whole lines.
  uint64_t Bytes = Lines * CacheLineBytes;
  uint64_t Addr = Mem.allocate(Bytes, CacheLineBytes);
  writeHeaders(Addr, Shape, CapacitySlots);

  // Initialize in-object slots to undefined so reads of declared-but-unset
  // properties behave.
  for (uint32_t S = 0; S < CapacitySlots; ++S)
    Mem.write64(Addr + slotByteOffset(S), UndefinedV.bits());

  ++Stats.ObjectsAllocated;
  Stats.ObjectBytes += Bytes;
  if (Lines > 1) {
    ++Stats.MultiLineObjects;
    Stats.ExtraHeaderBytes += (Lines - 1) * 8;
  }
  return Value::makePointer(Addr);
}

Value Heap::allocArray(uint32_t Length, ShapeId Shape) {
  if (Shape == InvalidShape)
    Shape = Shapes.arrayRoot();
  Value Arr = allocObject(Shape, 0);
  uint64_t Addr = Arr.asPointer();
  if (Length > 0) {
    ensureElementsCapacity(Addr, int64_t(Length) - 1);
    Mem.write64(Addr + ElementsLengthPos * 8, Length);
  }
  return Arr;
}

Value Heap::allocHeapNumber(double D) {
  maybeInjectAllocPressure();
  uint64_t Addr = Mem.allocate(16, 8);
  Mem.write64(Addr, makeHeader(
                        ShapeTable::descriptorAddr(Shapes.heapNumberShape()),
                        0, Shapes.get(Shapes.heapNumberShape()).ClassId, 0));
  uint64_t Bits;
  std::memcpy(&Bits, &D, 8);
  Mem.write64(Addr + 8, Bits);
  ++Stats.HeapNumbersAllocated;
  return Value::makePointer(Addr);
}

Value Heap::allocString(std::string_view Text) {
  uint64_t Bytes = 16 + ((Text.size() + 7) & ~size_t(7));
  uint64_t Addr = Mem.allocate(Bytes, 8);
  Mem.write64(Addr,
              makeHeader(ShapeTable::descriptorAddr(Shapes.stringShape()), 0,
                         Shapes.get(Shapes.stringShape()).ClassId, 0));
  Mem.write64(Addr + 8, Text.size());
  for (size_t I = 0; I < Text.size(); ++I)
    Mem.write8(Addr + 16 + I, static_cast<uint8_t>(Text[I]));
  ++Stats.StringsAllocated;
  return Value::makePointer(Addr);
}

Value Heap::allocFunction(uint32_t FuncIndex) {
  uint64_t Addr = Mem.allocate(16, 8);
  Mem.write64(Addr,
              makeHeader(ShapeTable::descriptorAddr(Shapes.functionShape()), 0,
                         Shapes.get(Shapes.functionShape()).ClassId, 0));
  Mem.write64(Addr + 8, FuncIndex);
  return Value::makePointer(Addr);
}

Value Heap::number(double D) {
  if (D == std::floor(D) && !std::isinf(D) && Value::fitsSmi(int64_t(D)) &&
      !(D == 0 && std::signbit(D)))
    return Value::makeSmi(static_cast<int32_t>(D));
  return allocHeapNumber(D);
}

ValueKind Heap::kindOf(Value V) const {
  if (V.isSmi())
    return ValueKind::Smi;
  ShapeId S = shapeOfValue(V);
  if (S == Shapes.heapNumberShape())
    return ValueKind::HeapNumber;
  if (S == Shapes.stringShape())
    return ValueKind::String;
  if (S == Shapes.functionShape())
    return ValueKind::Function;
  if (S == Shapes.undefinedShape())
    return ValueKind::Undefined;
  if (S == Shapes.nullShape())
    return ValueKind::Null;
  if (S == Shapes.trueShape() || S == Shapes.falseShape())
    return ValueKind::Boolean;
  return ValueKind::Object;
}

//===----------------------------------------------------------------------===//
// Named properties
//===----------------------------------------------------------------------===//

uint64_t Heap::slotAddress(uint64_t ObjAddr, uint32_t Slot,
                           bool *InObject) const {
  uint32_t Capacity = capacityOf(ObjAddr);
  if (Slot < Capacity) {
    if (InObject)
      *InObject = true;
    return ObjAddr + slotByteOffset(Slot);
  }
  if (InObject)
    *InObject = false;
  uint64_t Props = Mem.read64(ObjAddr + PropsPointerPos * 8);
  assert(Props != 0 && "overflow slot without properties array");
  return Props + 8 + uint64_t(Slot - Capacity) * 8;
}

Value Heap::getSlot(uint64_t ObjAddr, uint32_t Slot) const {
  return Value::fromBits(Mem.read64(slotAddress(ObjAddr, Slot, nullptr)));
}

void Heap::setSlot(uint64_t ObjAddr, uint32_t Slot, Value V) {
  Mem.write64(slotAddress(ObjAddr, Slot, nullptr), V.bits());
}

void Heap::ensurePropsCapacity(uint64_t ObjAddr, uint32_t NeededOverflow) {
  uint64_t Props = Mem.read64(ObjAddr + PropsPointerPos * 8);
  uint64_t OldCap = Props ? Mem.read64(Props) : 0;
  if (NeededOverflow <= OldCap)
    return;
  uint64_t NewCap = OldCap ? OldCap * 2 : 4;
  if (NewCap < NeededOverflow)
    NewCap = NeededOverflow;
  uint64_t NewProps = Mem.allocate(8 + NewCap * 8, 8);
  Mem.write64(NewProps, NewCap);
  for (uint64_t I = 0; I < NewCap; ++I)
    Mem.write64(NewProps + 8 + I * 8,
                I < OldCap ? Mem.read64(Props + 8 + I * 8)
                           : UndefinedV.bits());
  Mem.write64(ObjAddr + PropsPointerPos * 8, NewProps);
}

uint32_t Heap::addProperty(uint64_t ObjAddr, InternedString Name, Value V) {
  ShapeId Old = shapeOf(ObjAddr);
  assert(Shapes.get(Old).Kind == ObjectKind::Plain &&
         "properties can only be added to plain objects");
  ShapeId New = Shapes.transition(Old, Name);
  uint32_t Slot = Shapes.get(New).NumSlots - 1;
  uint32_t Capacity = capacityOf(ObjAddr);
  if (Slot >= Capacity)
    ensurePropsCapacity(ObjAddr, Slot - Capacity + 1);
  // Update the map (and the ClassID tag bytes of every line) before the
  // property store, so the Class Cache profiles the store against the
  // destination hidden class.
  writeHeaders(ObjAddr, New, Capacity);
  setSlot(ObjAddr, Slot, V);
  return Slot;
}

//===----------------------------------------------------------------------===//
// Elements
//===----------------------------------------------------------------------===//

void Heap::ensureElementsCapacity(uint64_t ObjAddr, int64_t Index) {
  assert(Index >= 0 && "negative element index");
  uint64_t Elems = elementsPointer(ObjAddr);
  uint64_t OldCap = Elems ? Mem.read64(Elems) : 0;
  if (uint64_t(Index) < OldCap)
    return;
  uint64_t NewCap = OldCap ? OldCap * 2 : 8;
  if (NewCap < uint64_t(Index) + 1)
    NewCap = uint64_t(Index) + 1;
  uint64_t NewElems = Mem.allocate(8 + NewCap * 8, 8);
  Mem.write64(NewElems, NewCap);
  for (uint64_t I = 0; I < NewCap; ++I)
    Mem.write64(NewElems + 8 + I * 8,
                I < OldCap ? Mem.read64(Elems + 8 + I * 8)
                           : UndefinedV.bits());
  Mem.write64(ObjAddr + ElementsPointerPos * 8, NewElems);
}

Value Heap::getElement(uint64_t ObjAddr, int64_t Index) const {
  if (Index < 0 || Index >= elementsLength(ObjAddr))
    return UndefinedV;
  return Value::fromBits(Mem.read64(elementAddress(ObjAddr,
                                                   uint32_t(Index))));
}

bool Heap::setElement(uint64_t ObjAddr, int64_t Index, Value V) {
  assert(Index >= 0 && "negative element index");
  bool Slow = false;
  uint64_t Elems = elementsPointer(ObjAddr);
  uint64_t Cap = Elems ? Mem.read64(Elems) : 0;
  if (uint64_t(Index) >= Cap) {
    ensureElementsCapacity(ObjAddr, Index);
    Slow = true;
  }
  if (Index >= elementsLength(ObjAddr)) {
    Mem.write64(ObjAddr + ElementsLengthPos * 8, uint64_t(Index) + 1);
    Slow = true;
  }
  Mem.write64(elementAddress(ObjAddr, uint32_t(Index)), V.bits());
  return Slow;
}

//===----------------------------------------------------------------------===//
// Strings & slack tracking
//===----------------------------------------------------------------------===//

std::string Heap::stringContents(uint64_t Addr) const {
  uint32_t Len = stringLength(Addr);
  std::string Out;
  Out.reserve(Len);
  for (uint32_t I = 0; I < Len; ++I)
    Out += static_cast<char>(Mem.read8(Addr + 16 + I));
  return Out;
}

uint32_t Heap::constructorCapacityHint(uint32_t FuncIndex) const {
  auto It = ConstructorSlotHints.find(FuncIndex);
  // First instance: a generous two-line guess (V8-style slack).
  if (It == ConstructorSlotHints.end())
    return slotsForLines(2);
  return It->second;
}

void Heap::observeConstructed(uint32_t FuncIndex, uint32_t Slots) {
  uint32_t &Hint = ConstructorSlotHints[FuncIndex];
  if (Slots > Hint)
    Hint = Slots;
}
