//===- runtime/TypeProfiler.h - Monomorphism instrumentation ---*- C++ -*-===//
///
/// \file
/// Host-side instrumentation of stores and loads, independent of the Class
/// Cache hardware. It records, for every (hidden class, slot) and for every
/// hidden class's elements array, whether the stored values kept a single
/// type over the whole run, and tallies load accesses per location.
///
/// This is the ground truth behind Figure 3 (fraction of object load
/// accesses that target monomorphic properties / elements arrays) and the
/// first-line statistic of section 5.3.4. It exists in every engine
/// configuration, including the baseline without the proposed hardware.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_TYPEPROFILER_H
#define CCJS_RUNTIME_TYPEPROFILER_H

#include "profile/Categories.h"
#include "runtime/Shape.h"
#include "support/FlatMap.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ccjs {

class TypeProfiler {
public:
  /// Sentinel "class of value" for SMIs (exact hidden classes are ShapeIds).
  static constexpr uint32_t SmiClass = ~uint32_t(0);

  void recordPropertyStore(ShapeId Holder, uint32_t Slot,
                           uint32_t ValueClass) {
    record(profileFor(propKey(Holder, Slot)), ValueClass);
  }

  void recordElementStore(ShapeId Holder, uint32_t ValueClass) {
    record(profileFor(elemKey(Holder)), ValueClass);
  }

  void recordPropertyLoad(ShapeId Holder, uint32_t Slot, bool FirstLine) {
    bumpLoad(propKey(Holder, Slot));
    ++TotalPropertyLoads;
    if (FirstLine)
      ++FirstLineLoads;
  }

  void recordElementLoad(ShapeId Holder) { bumpLoad(elemKey(Holder)); }

  /// True when the location has seen stores of exactly one value class.
  bool isPropertyMonomorphic(ShapeId Holder, uint32_t Slot) const {
    const LocProfile *P = Profiles.find(propKey(Holder, Slot));
    return P && P->Initialized && !P->Polymorphic;
  }
  bool isElementsMonomorphic(ShapeId Holder) const {
    const LocProfile *P = Profiles.find(elemKey(Holder));
    return P && P->Initialized && !P->Polymorphic;
  }

  /// Classifies every recorded load against the final monomorphism state
  /// (paper Figure 3 is computed over the whole execution).
  ObjectLoadCounters summarize() const;

  /// Clears load tallies (steady-state measurement); store profiles —
  /// the monomorphism ground truth — persist.
  void resetLoadCounts() {
    Loads.clear();
    FirstLineLoads = 0;
    TotalPropertyLoads = 0;
  }

  /// One store-profile record, for profile snapshots.
  struct SavedProfile {
    uint64_t Key = 0;
    uint8_t Initialized = 0;
    uint8_t Polymorphic = 0;
    uint32_t FirstClass = 0;
  };

  /// Captures every store profile, sorted by key so the serialized form
  /// is canonical (FlatMap64 iteration order depends on insertion order).
  std::vector<SavedProfile> captureProfiles() const {
    std::vector<SavedProfile> Out;
    Out.reserve(Profiles.size());
    Profiles.forEach([&Out](uint64_t Key, const LocProfile &P) {
      Out.push_back({Key, static_cast<uint8_t>(P.Initialized),
                     static_cast<uint8_t>(P.Polymorphic), P.FirstClass});
    });
    std::sort(Out.begin(), Out.end(),
              [](const SavedProfile &A, const SavedProfile &B) {
                return A.Key < B.Key;
              });
    return Out;
  }

  /// Seeds the store-profile table from a snapshot. Only valid on a fresh
  /// profiler; preallocates to the serialized size (no rehash churn).
  void restoreProfiles(const std::vector<SavedProfile> &Saved) {
    Profiles.reserve(Saved.size());
    for (const SavedProfile &S : Saved) {
      LocProfile &P = Profiles[S.Key];
      P.Initialized = S.Initialized != 0;
      P.Polymorphic = S.Polymorphic != 0;
      P.FirstClass = S.FirstClass;
    }
  }

private:
  struct LocProfile {
    bool Initialized = false;
    bool Polymorphic = false;
    uint32_t FirstClass = 0;
  };

  static void record(LocProfile &P, uint32_t ValueClass) {
    if (!P.Initialized) {
      P.Initialized = true;
      P.FirstClass = ValueClass;
    } else if (P.FirstClass != ValueClass) {
      P.Polymorphic = true;
    }
  }

  // Element keys use the high bit; slot keys pack (shape, slot).
  static uint64_t propKey(ShapeId Holder, uint32_t Slot) {
    return (uint64_t(Holder) << 24) | Slot;
  }
  static uint64_t elemKey(ShapeId Holder) {
    return (uint64_t(1) << 63) | Holder;
  }

  // One-entry memos over the maps: long monomorphic runs hit the same
  // key >85% of the time, and the memo turns those into one compare and
  // one increment with no hashing and no probe into a possibly
  // cache-cold table. FlatMap64 value pointers move on rehash/clear, so
  // each memo revalidates against the map's generation counter.
  uint64_t &bumpLoad(uint64_t Key) {
    if (Key == LastLoadKey && LoadsGen == Loads.generation())
      return ++*LastLoad;
    LastLoad = &Loads[Key];
    LastLoadKey = Key;
    LoadsGen = Loads.generation();
    return ++*LastLoad;
  }

  LocProfile &profileFor(uint64_t Key) {
    if (Key == LastProfileKey && ProfilesGen == Profiles.generation())
      return *LastProfile;
    LastProfile = &Profiles[Key];
    LastProfileKey = Key;
    ProfilesGen = Profiles.generation();
    return *LastProfile;
  }

  // Flat open-addressing maps: these tallies take >100M operations per
  // fig8 sweep, where std::unordered_map's bucket-chain walk dominated.
  // propKey never produces the FlatMap64 sentinel (~0): the shape id in
  // the top 40 bits would have to be 2^40-1, far beyond any real run.
  FlatMap64<LocProfile> Profiles;
  FlatMap64<uint64_t> Loads;
  uint64_t *LastLoad = nullptr;
  uint64_t LastLoadKey = FlatMap64<uint64_t>::EmptyKey;
  uint64_t LoadsGen = ~uint64_t(0);
  LocProfile *LastProfile = nullptr;
  uint64_t LastProfileKey = FlatMap64<LocProfile>::EmptyKey;
  uint64_t ProfilesGen = ~uint64_t(0);
  uint64_t FirstLineLoads = 0;
  uint64_t TotalPropertyLoads = 0;
};

} // namespace ccjs

#endif // CCJS_RUNTIME_TYPEPROFILER_H
