//===- runtime/TypeProfiler.h - Monomorphism instrumentation ---*- C++ -*-===//
///
/// \file
/// Host-side instrumentation of stores and loads, independent of the Class
/// Cache hardware. It records, for every (hidden class, slot) and for every
/// hidden class's elements array, whether the stored values kept a single
/// type over the whole run, and tallies load accesses per location.
///
/// This is the ground truth behind Figure 3 (fraction of object load
/// accesses that target monomorphic properties / elements arrays) and the
/// first-line statistic of section 5.3.4. It exists in every engine
/// configuration, including the baseline without the proposed hardware.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_TYPEPROFILER_H
#define CCJS_RUNTIME_TYPEPROFILER_H

#include "profile/Categories.h"
#include "runtime/Shape.h"

#include <cstdint>
#include <unordered_map>

namespace ccjs {

class TypeProfiler {
public:
  /// Sentinel "class of value" for SMIs (exact hidden classes are ShapeIds).
  static constexpr uint32_t SmiClass = ~uint32_t(0);

  void recordPropertyStore(ShapeId Holder, uint32_t Slot,
                           uint32_t ValueClass) {
    record(Profiles[propKey(Holder, Slot)], ValueClass);
  }

  void recordElementStore(ShapeId Holder, uint32_t ValueClass) {
    record(Profiles[elemKey(Holder)], ValueClass);
  }

  void recordPropertyLoad(ShapeId Holder, uint32_t Slot, bool FirstLine) {
    ++Loads[propKey(Holder, Slot)];
    ++TotalPropertyLoads;
    if (FirstLine)
      ++FirstLineLoads;
  }

  void recordElementLoad(ShapeId Holder) { ++Loads[elemKey(Holder)]; }

  /// True when the location has seen stores of exactly one value class.
  bool isPropertyMonomorphic(ShapeId Holder, uint32_t Slot) const {
    auto It = Profiles.find(propKey(Holder, Slot));
    return It != Profiles.end() && It->second.Initialized &&
           !It->second.Polymorphic;
  }
  bool isElementsMonomorphic(ShapeId Holder) const {
    auto It = Profiles.find(elemKey(Holder));
    return It != Profiles.end() && It->second.Initialized &&
           !It->second.Polymorphic;
  }

  /// Classifies every recorded load against the final monomorphism state
  /// (paper Figure 3 is computed over the whole execution).
  ObjectLoadCounters summarize() const;

  /// Clears load tallies (steady-state measurement); store profiles —
  /// the monomorphism ground truth — persist.
  void resetLoadCounts() {
    Loads.clear();
    FirstLineLoads = 0;
    TotalPropertyLoads = 0;
  }

private:
  struct LocProfile {
    bool Initialized = false;
    bool Polymorphic = false;
    uint32_t FirstClass = 0;
  };

  static void record(LocProfile &P, uint32_t ValueClass) {
    if (!P.Initialized) {
      P.Initialized = true;
      P.FirstClass = ValueClass;
    } else if (P.FirstClass != ValueClass) {
      P.Polymorphic = true;
    }
  }

  // Element keys use the high bit; slot keys pack (shape, slot).
  static uint64_t propKey(ShapeId Holder, uint32_t Slot) {
    return (uint64_t(Holder) << 24) | Slot;
  }
  static uint64_t elemKey(ShapeId Holder) {
    return (uint64_t(1) << 63) | Holder;
  }

  std::unordered_map<uint64_t, LocProfile> Profiles;
  std::unordered_map<uint64_t, uint64_t> Loads;
  uint64_t FirstLineLoads = 0;
  uint64_t TotalPropertyLoads = 0;
};

} // namespace ccjs

#endif // CCJS_RUNTIME_TYPEPROFILER_H
