//===- runtime/Operations.h - JS value semantics ---------------*- C++ -*-===//
///
/// \file
/// Semantic helpers implementing MiniJS value operations: coercions,
/// arithmetic on generic values, comparisons and string conversion. These
/// are the "runtime call" slow paths of both tiers.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_OPERATIONS_H
#define CCJS_RUNTIME_OPERATIONS_H

#include "frontend/Ast.h"
#include "runtime/Heap.h"
#include "runtime/Value.h"

#include <string>

namespace ccjs {

/// ECMAScript-style ToBoolean.
bool toBoolean(const Heap &H, Value V);

/// ECMAScript-style ToNumber (strings parse as decimal numbers; objects
/// coerce to NaN — MiniJS has no valueOf).
double toNumber(const Heap &H, Value V);

/// ToInt32 for bitwise operators.
int32_t toInt32(double D);

/// Formats a number the way JS does for integers and common doubles.
std::string numberToString(double D);

/// ToString for string concatenation and print().
std::string toStringValue(const Heap &H, Value V);

/// typeof operator result.
const char *typeofString(const Heap &H, Value V);

/// Loose equality (==): numbers numerically, strings by content,
/// null == undefined, otherwise identity.
bool looseEquals(const Heap &H, Value A, Value B);

/// Strict equality (===).
bool strictEquals(const Heap &H, Value A, Value B);

/// Generic binary arithmetic/comparison used by the baseline tier and by
/// deoptimized paths. Allocates (e.g. HeapNumbers, concatenated strings)
/// through \p H.
Value genericBinary(Heap &H, BinaryOp Op, Value A, Value B);

/// Generic unary operator.
Value genericUnary(Heap &H, UnaryOp Op, Value V);

} // namespace ccjs

#endif // CCJS_RUNTIME_OPERATIONS_H
