//===- runtime/Operations.h - JS value semantics ---------------*- C++ -*-===//
///
/// \file
/// Semantic helpers implementing MiniJS value operations: coercions,
/// arithmetic on generic values, comparisons and string conversion. These
/// are the "runtime call" slow paths of both tiers.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_OPERATIONS_H
#define CCJS_RUNTIME_OPERATIONS_H

#include "frontend/Ast.h"
#include "runtime/Heap.h"
#include "runtime/Value.h"

#include <string>

namespace ccjs {

/// ECMAScript-style ToBoolean.
bool toBoolean(const Heap &H, Value V);

/// ECMAScript-style ToNumber (strings parse as decimal numbers; objects
/// coerce to NaN — MiniJS has no valueOf).
double toNumber(const Heap &H, Value V);

/// ToInt32 for bitwise operators.
int32_t toInt32(double D);

/// Exact double -> element-index conversion. Returns false for NaN,
/// infinities, negatives, fractional values, and magnitudes beyond 2^53
/// (where `static_cast<int64_t>` would be undefined behavior). On success
/// \p I holds the exact integer value of \p D.
inline bool doubleToElementIndex(double D, int64_t &I) {
  if (!(D >= 0 && D < 9007199254740992.0)) // 2^53; NaN fails the compare.
    return false;
  I = static_cast<int64_t>(D);
  return static_cast<double>(I) == D;
}

/// Range guard for truncating element-store indices: true when
/// `static_cast<int64_t>(D)` is defined (finite, |D| < 2^63). Stores
/// truncate fractional indices, so exactness is not required here.
inline bool doubleIndexInCastRange(double D) {
  return D >= -9223372036854774784.0 && D <= 9223372036854774784.0;
}

/// Formats a number the way JS does for integers and common doubles.
std::string numberToString(double D);

/// ToString for string concatenation and print().
std::string toStringValue(const Heap &H, Value V);

/// typeof operator result.
const char *typeofString(const Heap &H, Value V);

/// Loose equality (==): numbers numerically, strings by content,
/// null == undefined, otherwise identity.
bool looseEquals(const Heap &H, Value A, Value B);

/// Strict equality (===).
bool strictEquals(const Heap &H, Value A, Value B);

/// Generic binary arithmetic/comparison used by the baseline tier and by
/// deoptimized paths. Allocates (e.g. HeapNumbers, concatenated strings)
/// through \p H.
Value genericBinary(Heap &H, BinaryOp Op, Value A, Value B);

/// Generic unary operator.
Value genericUnary(Heap &H, UnaryOp Op, Value V);

} // namespace ccjs

#endif // CCJS_RUNTIME_OPERATIONS_H
