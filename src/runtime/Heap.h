//===- runtime/Heap.h - Object heap ----------------------------*- C++ -*-===//
///
/// \file
/// Allocation and semantic access for all heap object kinds: plain objects
/// (with hidden-class transitions, in-object slots, overflow properties and
/// elements arrays), HeapNumbers, strings, functions and oddballs.
///
/// The heap is purely semantic: it reads and writes the simulated memory
/// but never emits timing events. The interpreter and the OptIR executor
/// decide which accesses are architecturally visible and account for them.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_HEAP_H
#define CCJS_RUNTIME_HEAP_H

#include "runtime/Layout.h"
#include "runtime/Shape.h"
#include "runtime/SimMemory.h"
#include "runtime/Value.h"
#include "support/StringInterner.h"

#include <string>
#include <string_view>
#include <unordered_map>

namespace ccjs {

class FaultInjector;

/// Classification of a value, derived from its tag and shape.
enum class ValueKind : uint8_t {
  Smi,
  HeapNumber,
  String,
  Function,
  Undefined,
  Null,
  Boolean,
  Object,
};

/// Allocation statistics (paper section 5.3.4).
struct HeapStats {
  uint64_t ObjectsAllocated = 0;
  uint64_t MultiLineObjects = 0;
  uint64_t ObjectBytes = 0;
  /// Extra bytes spent on the per-line header words that the Class Cache
  /// scheme requires for lines beyond the first.
  uint64_t ExtraHeaderBytes = 0;
  uint64_t HeapNumbersAllocated = 0;
  uint64_t StringsAllocated = 0;
};

class Heap {
public:
  Heap(SimMemory &Mem, ShapeTable &Shapes, StringInterner &Names);

  SimMemory &memory() { return Mem; }
  ShapeTable &shapes() { return Shapes; }
  StringInterner &names() { return Names; }
  const HeapStats &stats() const { return Stats; }

  /// Attaches the chaos-engine fault injector (null to detach). When armed,
  /// object and HeapNumber allocations consult the AllocPressure point and
  /// insert padding allocations first, shifting heap layout (and thus cache
  /// and TLB behaviour) the way allocation pressure would. Addresses are
  /// never observable to programs, so output must not change.
  void setFaultInjector(FaultInjector *FI) { FaultInj = FI; }

  //===--------------------------------------------------------------------===//
  // Canonical values
  //===--------------------------------------------------------------------===//

  Value undefined() const { return UndefinedV; }
  Value null() const { return NullV; }
  Value boolean(bool B) const { return B ? TrueV : FalseV; }
  Value trueValue() const { return TrueV; }
  Value falseValue() const { return FalseV; }
  Value emptyString() const { return EmptyStringV; }

  //===--------------------------------------------------------------------===//
  // Allocation
  //===--------------------------------------------------------------------===//

  /// Allocates a plain object with the given shape and in-object slot
  /// capacity (rounded up to whole cache lines). The object is cache-line
  /// aligned and every line carries the ClassID/Line tag bytes.
  Value allocObject(ShapeId Shape, uint32_t CapacitySlots);

  /// Allocates an array: a plain object with \p Shape (defaults to the
  /// generic ArrayRoot; tiers pass per-allocation-site shapes) and an
  /// elements array of \p Length (filled with undefined, length set).
  Value allocArray(uint32_t Length, ShapeId Shape = InvalidShape);

  Value allocHeapNumber(double D);
  Value allocString(std::string_view Text);
  Value allocFunction(uint32_t FuncIndex);

  /// Boxes \p D: SMI when integral and in range (excluding -0), else a
  /// HeapNumber.
  Value number(double D);

  //===--------------------------------------------------------------------===//
  // Classification
  //===--------------------------------------------------------------------===//

  ShapeId shapeOf(uint64_t ObjAddr) const {
    return ShapeTable::shapeForDescriptor(
        layout::headerDescAddr(Mem.read64(ObjAddr)));
  }
  ShapeId shapeOfValue(Value V) const {
    assert(V.isPointer() && "SMIs have no shape");
    return shapeOf(V.asPointer());
  }

  /// ClassID for Class Cache requests: SmiClassId for SMIs, else the
  /// value's hidden-class id.
  uint8_t classIdOfValue(Value V) const {
    if (V.isSmi())
      return SmiClassId;
    return Shapes.get(shapeOfValue(V)).ClassId;
  }

  ValueKind kindOf(Value V) const;

  bool isString(Value V) const { return kindOf(V) == ValueKind::String; }
  bool isHeapNumber(Value V) const {
    return kindOf(V) == ValueKind::HeapNumber;
  }
  bool isFunction(Value V) const { return kindOf(V) == ValueKind::Function; }
  bool isPlainObject(Value V) const { return kindOf(V) == ValueKind::Object; }

  //===--------------------------------------------------------------------===//
  // Named properties
  //===--------------------------------------------------------------------===//

  /// Simulated address of property slot \p Slot. \p InObject is set to
  /// false when the slot lives in the overflow properties array.
  uint64_t slotAddress(uint64_t ObjAddr, uint32_t Slot, bool *InObject) const;

  Value getSlot(uint64_t ObjAddr, uint32_t Slot) const;
  void setSlot(uint64_t ObjAddr, uint32_t Slot, Value V);

  /// Adds property \p Name (transitioning the shape) and stores \p V.
  /// Returns the slot index.
  uint32_t addProperty(uint64_t ObjAddr, InternedString Name, Value V);

  /// In-object slot capacity of the object.
  uint32_t capacityOf(uint64_t ObjAddr) const {
    return layout::headerCapacity(Mem.read64(ObjAddr));
  }

  //===--------------------------------------------------------------------===//
  // Elements
  //===--------------------------------------------------------------------===//

  uint64_t elementsPointer(uint64_t ObjAddr) const {
    return Mem.read64(ObjAddr + layout::ElementsPointerPos * 8);
  }
  int64_t elementsLength(uint64_t ObjAddr) const {
    return static_cast<int64_t>(
        Mem.read64(ObjAddr + layout::ElementsLengthPos * 8));
  }
  /// Simulated address of element \p Index (elements must exist).
  uint64_t elementAddress(uint64_t ObjAddr, uint32_t Index) const {
    return elementsPointer(ObjAddr) + 8 + uint64_t(Index) * 8;
  }

  /// Reads element \p Index; undefined when out of range.
  Value getElement(uint64_t ObjAddr, int64_t Index) const;

  /// Writes element \p Index, growing the elements array and the length as
  /// needed. Returns true when the store grew or (re)allocated the backing
  /// store (a slow path in the tiers).
  bool setElement(uint64_t ObjAddr, int64_t Index, Value V);

  //===--------------------------------------------------------------------===//
  // HeapNumbers, strings, functions
  //===--------------------------------------------------------------------===//

  double heapNumberValue(uint64_t Addr) const {
    uint64_t Bits = Mem.read64(Addr + 8);
    double D;
    std::memcpy(&D, &Bits, 8);
    return D;
  }

  /// Numeric value of a SMI or HeapNumber.
  double numberValue(Value V) const {
    if (V.isSmi())
      return V.asSmi();
    assert(isHeapNumber(V) && "value is not a number");
    return heapNumberValue(V.asPointer());
  }

  uint32_t stringLength(uint64_t Addr) const {
    return static_cast<uint32_t>(Mem.read64(Addr + 8));
  }
  /// Reads the character bytes of a string into a host std::string.
  std::string stringContents(uint64_t Addr) const;
  uint8_t stringCharAt(uint64_t Addr, uint32_t Index) const {
    return Mem.read8(Addr + 16 + Index);
  }

  uint32_t functionIndex(uint64_t Addr) const {
    return static_cast<uint32_t>(Mem.read64(Addr + 8));
  }

  //===--------------------------------------------------------------------===//
  // Constructor slack tracking
  //===--------------------------------------------------------------------===//

  /// In-object capacity to use for `new F()` allocations, learned from
  /// previously constructed instances.
  uint32_t constructorCapacityHint(uint32_t FuncIndex) const;
  /// Records the final slot count of a freshly constructed instance.
  void observeConstructed(uint32_t FuncIndex, uint32_t Slots);

  //===--------------------------------------------------------------------===//
  // Profile-snapshot capture/restore
  //===--------------------------------------------------------------------===//

  /// Slack-tracking hints (allocation sizing feedback) and the cumulative
  /// allocation statistics; both survive resetStats, so a warm-started
  /// engine must restore them to match a continuously-warmed one.
  const std::unordered_map<uint32_t, uint32_t> &constructorSlotHints() const {
    return ConstructorSlotHints;
  }
  void restoreConstructorSlotHint(uint32_t FuncIndex, uint32_t Slots) {
    ConstructorSlotHints.emplace(FuncIndex, Slots);
  }
  void restoreStats(const HeapStats &S) { Stats = S; }

private:
  /// Rewrites the header word of every line (shape transitions change the
  /// ClassID the Class Cache hardware reads from the line).
  void writeHeaders(uint64_t ObjAddr, ShapeId Shape, uint32_t CapacitySlots);

  /// Ensures the overflow properties array can hold \p NeededOverflow
  /// values.
  void ensurePropsCapacity(uint64_t ObjAddr, uint32_t NeededOverflow);

  /// Ensures the elements array can hold index \p Index.
  void ensureElementsCapacity(uint64_t ObjAddr, int64_t Index);

  /// Chaos: burns simulated address space when the AllocPressure point
  /// fires ahead of an allocation.
  void maybeInjectAllocPressure();

  SimMemory &Mem;
  ShapeTable &Shapes;
  StringInterner &Names;
  HeapStats Stats;
  FaultInjector *FaultInj = nullptr;

  Value UndefinedV, NullV, TrueV, FalseV, EmptyStringV;
  std::unordered_map<uint32_t, uint32_t> ConstructorSlotHints;
};

} // namespace ccjs

#endif // CCJS_RUNTIME_HEAP_H
