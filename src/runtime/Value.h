//===- runtime/Value.h - Tagged value representation -----------*- C++ -*-===//
///
/// \file
/// 64-bit tagged values, following the V8 scheme the paper describes
/// (section 3.3): a register holding a boxed value is either
///   * a SMI (small integer): least-significant bit 0, 32-bit payload in the
///     32 most-significant bits, or
///   * a pointer into the simulated heap: least-significant bit 1.
///
/// Doubles are boxed as HeapNumber objects; undefined/null/true/false are
/// canonical heap "oddballs", so every non-SMI value is a heap pointer.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_VALUE_H
#define CCJS_RUNTIME_VALUE_H

#include <cassert>
#include <cstdint>

namespace ccjs {

class Value {
public:
  constexpr Value() : Bits(0) {} // SMI 0.

  /// Creates a SMI value.
  static constexpr Value makeSmi(int32_t V) {
    return Value(static_cast<uint64_t>(static_cast<uint32_t>(V)) << 32);
  }

  /// Creates a tagged heap pointer. \p Addr must be at least 2-byte aligned.
  static Value makePointer(uint64_t Addr) {
    assert((Addr & 1) == 0 && "heap addresses must be aligned");
    assert(Addr != 0 && "null simulated address is reserved");
    return Value(Addr | 1);
  }

  /// Reconstructs a value from raw bits (e.g. read back from the simulated
  /// heap).
  static constexpr Value fromBits(uint64_t Bits) { return Value(Bits); }

  constexpr uint64_t bits() const { return Bits; }

  constexpr bool isSmi() const { return (Bits & 1) == 0; }
  constexpr bool isPointer() const { return (Bits & 1) != 0; }

  constexpr int32_t asSmi() const {
    assert(isSmi() && "value is not a SMI");
    return static_cast<int32_t>(Bits >> 32);
  }

  constexpr uint64_t asPointer() const {
    assert(isPointer() && "value is not a heap pointer");
    return Bits & ~uint64_t(1);
  }

  /// True when \p V fits the SMI payload.
  static constexpr bool fitsSmi(int64_t V) {
    return V >= INT32_MIN && V <= INT32_MAX;
  }

  friend constexpr bool operator==(Value A, Value B) {
    return A.Bits == B.Bits;
  }
  friend constexpr bool operator!=(Value A, Value B) {
    return A.Bits != B.Bits;
  }

private:
  explicit constexpr Value(uint64_t Bits) : Bits(Bits) {}
  uint64_t Bits;
};

} // namespace ccjs

#endif // CCJS_RUNTIME_VALUE_H
