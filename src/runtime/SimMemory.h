//===- runtime/SimMemory.h - Simulated flat memory -------------*- C++ -*-===//
///
/// \file
/// A flat simulated address space backing the JavaScript heap, the globals
/// area and the Class List region. All object data lives here at explicit
/// 64-bit "simulated addresses", which the hardware models (caches, TLB,
/// Class Cache) use for their timing behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_SIMMEMORY_H
#define CCJS_RUNTIME_SIMMEMORY_H

#include "support/Assert.h"

#include <cstdint>
#include <cstring>
#include <cstdio>
#include <vector>

namespace ccjs {

class SimMemory {
public:
  /// Simulated base address; non-zero so that address 0 can mean "null".
  static constexpr uint64_t BaseAddr = 0x10000;

  explicit SimMemory(size_t InitialCapacity = 1u << 20) {
    Data.reserve(InitialCapacity);
  }

  /// Allocates \p Bytes with the given power-of-two \p Align, growing the
  /// simulated address space as needed. Memory is zero-initialized.
  uint64_t allocate(size_t Bytes, size_t Align = 8) {
    CCJS_ASSERT(Align != 0 && (Align & (Align - 1)) == 0,
                "alignment must be a power of two");
    size_t Offset = (Data.size() + Align - 1) & ~(Align - 1);
    Data.resize(Offset + Bytes, 0);
    return BaseAddr + Offset;
  }

  uint64_t read64(uint64_t Addr) const {
    uint64_t V;
    std::memcpy(&V, slot(Addr, 8), 8);
    return V;
  }

  void write64(uint64_t Addr, uint64_t V) { std::memcpy(slot(Addr, 8), &V, 8); }

  uint8_t read8(uint64_t Addr) const { return *slot(Addr, 1); }
  void write8(uint64_t Addr, uint8_t V) { *slot(Addr, 1) = V; }

  uint16_t read16(uint64_t Addr) const {
    uint16_t V;
    std::memcpy(&V, slot(Addr, 2), 2);
    return V;
  }
  void write16(uint64_t Addr, uint16_t V) {
    std::memcpy(slot(Addr, 2), &V, 2);
  }

  /// Total simulated bytes allocated so far.
  size_t bytesAllocated() const { return Data.size(); }

  /// True when \p Addr points into allocated simulated memory.
  bool contains(uint64_t Addr) const {
    return Addr >= BaseAddr && Addr < BaseAddr + Data.size();
  }

  /// Whole-image capture for profile snapshots. The full byte vector is
  /// serialized (a continuously-warmed engine carries the same dead
  /// run-1 bytes, so selective capture would *break* byte-identity).
  const std::vector<uint8_t> &raw() const { return Data; }
  /// Replaces the simulated address space with a captured image. Only
  /// valid during engine construction, before any object references
  /// simulated addresses beyond the image.
  void restoreRaw(const std::vector<uint8_t> &Image) { Data = Image; }

private:
  uint8_t *slot(uint64_t Addr, size_t Size) {
    if (!(Addr >= BaseAddr && Addr + Size <= BaseAddr + Data.size()))
      std::fprintf(stderr,
                   "ccjs: simulated address 0x%llx (+%zu) outside the "
                   "allocated 0x%zx bytes\n",
                   (unsigned long long)Addr, Size, Data.size());
    CCJS_ASSERT(Addr >= BaseAddr && Addr + Size <= BaseAddr + Data.size(),
                "simulated address out of range");
    return Data.data() + (Addr - BaseAddr);
  }
  const uint8_t *slot(uint64_t Addr, size_t Size) const {
    CCJS_ASSERT(Addr >= BaseAddr && Addr + Size <= BaseAddr + Data.size(),
                "simulated address out of range");
    return Data.data() + (Addr - BaseAddr);
  }

  std::vector<uint8_t> Data;
};

} // namespace ccjs

#endif // CCJS_RUNTIME_SIMMEMORY_H
