//===- runtime/Shape.h - Hidden classes ------------------------*- C++ -*-===//
///
/// \file
/// Hidden classes ("shapes"), the immutable type descriptors of section 3.1:
/// each shape represents an ordered set of named properties. Adding a
/// property transitions an object to a child shape (creating it on first
/// use). Each shape carries the 8-bit ClassID the Class Cache hardware uses.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_RUNTIME_SHAPE_H
#define CCJS_RUNTIME_SHAPE_H

#include "core/Metrics.h"
#include "support/StringInterner.h"
#include "support/Trace.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace ccjs {

using ShapeId = uint32_t;
inline constexpr ShapeId InvalidShape = ~ShapeId(0);

/// ClassID encoding for SMI values (paper: 11111111).
inline constexpr uint8_t SmiClassId = 0xFF;
/// Saturation ClassID shared by shapes beyond the 8-bit id space; slots
/// holding such values are never speculated on.
inline constexpr uint8_t UntrackedClassId = 0xFE;

/// What kind of heap object a shape describes.
enum class ObjectKind : uint8_t {
  Plain,      ///< Ordinary JS object (including arrays).
  HeapNumber, ///< Boxed double.
  String,
  Function,
  Oddball, ///< undefined / null / true / false.
};

struct Shape {
  ShapeId Id = InvalidShape;
  ObjectKind Kind = ObjectKind::Plain;
  uint8_t ClassId = UntrackedClassId;
  ShapeId Parent = InvalidShape;
  /// Name and slot of the property whose addition created this shape.
  InternedString AddedName = 0;
  uint32_t NumSlots = 0;
  /// Full name -> slot map (copied from the parent chain for O(1) lookup).
  std::unordered_map<InternedString, uint32_t> SlotOf;
  /// Property-addition transitions out of this shape.
  std::unordered_map<InternedString, ShapeId> Transitions;
};

/// Owns all shapes; assigns ids, ClassIDs and descriptor addresses.
class ShapeTable {
public:
  /// Simulated address region for shape descriptors (never dereferenced,
  /// only compared by Check Map operations). Must stay below 2^40 so a
  /// descriptor address fits the header word.
  static constexpr uint64_t DescRegionBase = uint64_t(0x80) << 32;

  ShapeTable();

  const Shape &get(ShapeId Id) const { return Shapes[Id]; }
  size_t size() const { return Shapes.size(); }

  /// Number of hidden classes created for Plain objects (the paper's
  /// warm-up metric, section 5.3.1).
  size_t numPlainShapes() const { return NumPlain; }

  /// Shape descriptor address used in object headers and Check Maps.
  static uint64_t descriptorAddr(ShapeId Id) {
    return DescRegionBase + uint64_t(Id) * 64;
  }
  static ShapeId shapeForDescriptor(uint64_t Addr) {
    return static_cast<ShapeId>((Addr - DescRegionBase) / 64);
  }

  /// Returns the child shape of \p Parent extended with property \p Name,
  /// creating it on first use.
  ShapeId transition(ShapeId Parent, InternedString Name);

  /// Looks up the slot of \p Name in \p Id, if present.
  std::optional<uint32_t> lookup(ShapeId Id, InternedString Name) const {
    const Shape &S = Shapes[Id];
    auto It = S.SlotOf.find(Name);
    if (It == S.SlotOf.end())
      return std::nullopt;
    return It->second;
  }

  /// Root shape for objects created by `new F()`; one per constructor so
  /// distinct constructors produce distinct hidden classes.
  ShapeId rootForConstructor(uint32_t FuncIndex);

  /// Root shape for arrays created at a given allocation site (function
  /// index << 32 | bytecode index). Distinct sites get distinct hidden
  /// classes, modeling V8's per-site elements-kind maps: the Class Cache
  /// can then profile each array variable's elements independently.
  ShapeId rootForArraySite(uint64_t SiteKey);

  /// Installs an observer invoked for every newly created shape (used by
  /// the Class List to initialize/inherit profile entries).
  void setCreationHook(std::function<void(ShapeId)> Hook) {
    CreationHook = std::move(Hook);
  }

  /// Attaches the trace recorder: every shape creation records a
  /// ShapeCreated event (null = tracing off, the default).
  void setTrace(TraceRecorder *T) { Trace = T; }

  /// Attaches the metrics registry: shape creations bump the
  /// "shapes_created" (and, for Plain shapes, "shapes_created_plain")
  /// counters (null = metrics off, the default). Wired after construction,
  /// so the table's nine well-known shapes are not counted — the counters
  /// measure program-driven hidden-class growth only.
  void setMetrics(MetricsRegistry *M) { Metrics = M; }

  /// Profile-snapshot access: root maps and the ClassID counter.
  const std::unordered_map<uint32_t, ShapeId> &constructorRoots() const {
    return ConstructorRoots;
  }
  const std::unordered_map<uint64_t, ShapeId> &arraySiteRoots() const {
    return ArraySiteRoots;
  }
  uint32_t nextClassId() const { return NextClassId; }

  /// Appends a fully materialized shape record during snapshot restore.
  /// Bypasses createShape on purpose: no creation hook, no trace event,
  /// no metrics bump — a restored engine must match a continuously-warmed
  /// one, whose shape counters were reset after these shapes were made.
  /// \p S.Id must equal size() (records restore in creation order).
  void restoreShape(Shape S) {
    if (S.Kind == ObjectKind::Plain)
      ++NumPlain;
    Shapes.push_back(std::move(S));
  }
  /// Re-links a property transition out of an already existing shape.
  /// Snapshot restore uses this for the nine well-known shapes: they are
  /// rebuilt by the constructor, but their outgoing transitions (e.g.
  /// plainRoot -> first property) are program state.
  void restoreTransition(ShapeId From, InternedString Name, ShapeId To) {
    Shapes[From].Transitions.emplace(Name, To);
  }
  void restoreConstructorRoot(uint32_t FuncIndex, ShapeId Root) {
    ConstructorRoots.emplace(FuncIndex, Root);
  }
  void restoreArraySiteRoot(uint64_t SiteKey, ShapeId Root) {
    ArraySiteRoots.emplace(SiteKey, Root);
  }
  void restoreNextClassId(uint32_t Next) { NextClassId = Next; }

  // Well-known shapes.
  ShapeId plainRoot() const { return PlainRoot; }
  ShapeId arrayRoot() const { return ArrayRoot; }
  ShapeId heapNumberShape() const { return HeapNumber; }
  ShapeId stringShape() const { return StringS; }
  ShapeId functionShape() const { return FunctionS; }
  ShapeId undefinedShape() const { return UndefinedS; }
  ShapeId nullShape() const { return NullS; }
  ShapeId trueShape() const { return TrueS; }
  ShapeId falseShape() const { return FalseS; }

private:
  ShapeId createShape(ObjectKind Kind, ShapeId Parent, InternedString Name);

  std::vector<Shape> Shapes;
  std::function<void(ShapeId)> CreationHook;
  TraceRecorder *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;
  std::unordered_map<uint32_t, ShapeId> ConstructorRoots;
  std::unordered_map<uint64_t, ShapeId> ArraySiteRoots;
  uint32_t NextClassId = 0;
  size_t NumPlain = 0;

  ShapeId PlainRoot, ArrayRoot, HeapNumber, StringS, FunctionS;
  ShapeId UndefinedS, NullS, TrueS, FalseS;
};

} // namespace ccjs

#endif // CCJS_RUNTIME_SHAPE_H
