//===- interp/Builtins.cpp - Built-in functions ---------------------------===//

#include "interp/Interpreter.h"

#include "runtime/Operations.h"
#include "support/Assert.h"
#include "vm/Builtins.h"
#include "vm/ProfileHooks.h"

#include <cmath>
#include <cstdio>

using namespace ccjs;

static constexpr InstrCategory RC = InstrCategory::RestOfCode;

static double argNumber(VMState &VM, const Value *Args, uint32_t Argc,
                        uint32_t I) {
  return I < Argc ? toNumber(VM.Heap_, Args[I]) : std::nan("");
}

Value ccjs::callBuiltin(VMState &VM, uint32_t BuiltinIndex, Value ThisV,
                        const Value *Args, uint32_t Argc) {
  Heap &H = VM.Heap_;
  BuiltinId Id = builtinFromIndex(BuiltinIndex);
  switch (Id) {
  case BuiltinId::Print: {
    std::string Line = Argc > 0 ? toStringValue(H, Args[0]) : "";
    VM.Ctx.alu(RC, 20 + Line.size() / 4);
    VM.Output += Line;
    VM.Output += '\n';
    if (VM.EchoOutput)
      std::printf("%s\n", Line.c_str());
    return H.undefined();
  }

  // Math.* — one argument unless noted.
  case BuiltinId::MathFloor: {
    VM.Ctx.alu(RC, 8);
    return H.number(std::floor(argNumber(VM, Args, Argc, 0)));
  }
  case BuiltinId::MathCeil:
    VM.Ctx.alu(RC, 8);
    return H.number(std::ceil(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathRound: {
    VM.Ctx.alu(RC, 8);
    double D = argNumber(VM, Args, Argc, 0);
    return H.number(std::floor(D + 0.5));
  }
  case BuiltinId::MathSqrt:
    VM.Ctx.alu(RC, 12);
    return H.number(std::sqrt(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathAbs:
    VM.Ctx.alu(RC, 6);
    return H.number(std::fabs(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathMin: {
    VM.Ctx.alu(RC, 8);
    double A = argNumber(VM, Args, Argc, 0), B = argNumber(VM, Args, Argc, 1);
    return H.number(std::fmin(A, B));
  }
  case BuiltinId::MathMax: {
    VM.Ctx.alu(RC, 8);
    double A = argNumber(VM, Args, Argc, 0), B = argNumber(VM, Args, Argc, 1);
    return H.number(std::fmax(A, B));
  }
  case BuiltinId::MathPow:
    VM.Ctx.alu(RC, 25);
    return H.number(
        std::pow(argNumber(VM, Args, Argc, 0), argNumber(VM, Args, Argc, 1)));
  case BuiltinId::MathSin:
    VM.Ctx.alu(RC, 20);
    return H.number(std::sin(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathCos:
    VM.Ctx.alu(RC, 20);
    return H.number(std::cos(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathTan:
    VM.Ctx.alu(RC, 22);
    return H.number(std::tan(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathAtan:
    VM.Ctx.alu(RC, 22);
    return H.number(std::atan(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathAtan2:
    VM.Ctx.alu(RC, 24);
    return H.number(std::atan2(argNumber(VM, Args, Argc, 0),
                               argNumber(VM, Args, Argc, 1)));
  case BuiltinId::MathExp:
    VM.Ctx.alu(RC, 20);
    return H.number(std::exp(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathLog:
    VM.Ctx.alu(RC, 20);
    return H.number(std::log(argNumber(VM, Args, Argc, 0)));
  case BuiltinId::MathRandom:
    VM.Ctx.alu(RC, 10);
    return H.allocHeapNumber(VM.nextRandom());

  case BuiltinId::StringFromCharCode: {
    VM.Ctx.alu(RC, 15);
    std::string S;
    for (uint32_t I = 0; I < Argc; ++I)
      S += static_cast<char>(toInt32(toNumber(H, Args[I])) & 0xFF);
    return H.allocString(S);
  }

  // String.prototype.* (ThisV is the string receiver).
  case BuiltinId::StrCharCodeAt: {
    if (!ThisV.isPointer() || !H.isString(ThisV)) {
      VM.halt("charCodeAt on a non-string");
      return H.undefined();
    }
    uint64_t Addr = ThisV.asPointer();
    int32_t I = Argc > 0 ? toInt32(toNumber(H, Args[0])) : 0;
    VM.Ctx.alu(RC, 4);
    if (I < 0 || static_cast<uint32_t>(I) >= H.stringLength(Addr))
      return H.allocHeapNumber(std::nan(""));
    VM.Ctx.load(RC, Addr + 16 + static_cast<uint32_t>(I));
    return Value::makeSmi(H.stringCharAt(Addr, static_cast<uint32_t>(I)));
  }
  case BuiltinId::StrCharAt: {
    if (!ThisV.isPointer() || !H.isString(ThisV)) {
      VM.halt("charAt on a non-string");
      return H.undefined();
    }
    uint64_t Addr = ThisV.asPointer();
    int32_t I = Argc > 0 ? toInt32(toNumber(H, Args[0])) : 0;
    VM.Ctx.alu(RC, 10);
    if (I < 0 || static_cast<uint32_t>(I) >= H.stringLength(Addr))
      return H.emptyString();
    VM.Ctx.load(RC, Addr + 16 + static_cast<uint32_t>(I));
    char C = static_cast<char>(H.stringCharAt(Addr, static_cast<uint32_t>(I)));
    return H.allocString(std::string_view(&C, 1));
  }
  case BuiltinId::StrSubstring: {
    if (!ThisV.isPointer() || !H.isString(ThisV)) {
      VM.halt("substring on a non-string");
      return H.undefined();
    }
    std::string S = H.stringContents(ThisV.asPointer());
    int64_t Len = static_cast<int64_t>(S.size());
    int64_t A = Argc > 0 ? toInt32(toNumber(H, Args[0])) : 0;
    int64_t B = Argc > 1 ? toInt32(toNumber(H, Args[1])) : Len;
    A = std::clamp<int64_t>(A, 0, Len);
    B = std::clamp<int64_t>(B, 0, Len);
    if (A > B)
      std::swap(A, B);
    VM.Ctx.alu(RC, 12 + static_cast<unsigned>(B - A) / 4);
    return H.allocString(std::string_view(S).substr(A, B - A));
  }
  case BuiltinId::StrIndexOf: {
    if (!ThisV.isPointer() || !H.isString(ThisV)) {
      VM.halt("indexOf on a non-string");
      return H.undefined();
    }
    std::string S = H.stringContents(ThisV.asPointer());
    std::string Needle = Argc > 0 ? toStringValue(H, Args[0]) : "";
    VM.Ctx.alu(RC, 10 + S.size() / 4);
    size_t P = S.find(Needle);
    return Value::makeSmi(P == std::string::npos ? -1
                                                 : static_cast<int32_t>(P));
  }
  case BuiltinId::StrSplit: {
    if (!ThisV.isPointer() || !H.isString(ThisV)) {
      VM.halt("split on a non-string");
      return H.undefined();
    }
    std::string S = H.stringContents(ThisV.asPointer());
    std::string Sep = Argc > 0 ? toStringValue(H, Args[0]) : "";
    VM.Ctx.alu(RC, 20 + S.size() / 2);
    Value Arr = H.allocArray(0);
    uint64_t ArrAddr = Arr.asPointer();
    int64_t Count = 0;
    if (Sep.empty()) {
      for (char C : S)
        H.setElement(ArrAddr, Count++, H.allocString({&C, 1}));
    } else {
      size_t Start = 0;
      for (;;) {
        size_t P = S.find(Sep, Start);
        if (P == std::string::npos) {
          H.setElement(ArrAddr, Count++,
                       H.allocString(std::string_view(S).substr(Start)));
          break;
        }
        H.setElement(ArrAddr, Count++,
                     H.allocString(
                         std::string_view(S).substr(Start, P - Start)));
        Start = P + Sep.size();
      }
    }
    return Arr;
  }
  case BuiltinId::StrToUpperCase:
  case BuiltinId::StrToLowerCase: {
    if (!ThisV.isPointer() || !H.isString(ThisV)) {
      VM.halt("case conversion on a non-string");
      return H.undefined();
    }
    std::string S = H.stringContents(ThisV.asPointer());
    VM.Ctx.alu(RC, 8 + S.size() / 2);
    for (char &C : S)
      C = Id == BuiltinId::StrToUpperCase
              ? static_cast<char>(std::toupper(static_cast<unsigned char>(C)))
              : static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    return H.allocString(S);
  }

  // Array.prototype.* (ThisV is a plain object with elements).
  case BuiltinId::ArrPush: {
    if (!ThisV.isPointer() || !H.isPlainObject(ThisV)) {
      VM.halt("push on a non-object");
      return H.undefined();
    }
    uint64_t Addr = ThisV.asPointer();
    int64_t Len = H.elementsLength(Addr);
    VM.Ctx.alu(RC, 8);
    for (uint32_t I = 0; I < Argc; ++I) {
      H.setElement(Addr, Len, Args[I]);
      VM.Ctx.store(RC, H.elementAddress(Addr, static_cast<uint32_t>(Len)));
      profileElementsStore(VM, RC, H.shapeOf(Addr), Addr, Args[I], false);
      ++Len;
    }
    return Value::fitsSmi(Len) ? Value::makeSmi(static_cast<int32_t>(Len))
                               : H.number(static_cast<double>(Len));
  }
  case BuiltinId::ArrPop: {
    if (!ThisV.isPointer() || !H.isPlainObject(ThisV)) {
      VM.halt("pop on a non-object");
      return H.undefined();
    }
    uint64_t Addr = ThisV.asPointer();
    int64_t Len = H.elementsLength(Addr);
    VM.Ctx.alu(RC, 8);
    if (Len == 0)
      return H.undefined();
    Value V = H.getElement(Addr, Len - 1);
    VM.Ctx.load(RC, H.elementAddress(Addr, static_cast<uint32_t>(Len - 1)));
    VM.Mem.write64(Addr + layout::ElementsLengthPos * 8,
                   static_cast<uint64_t>(Len - 1));
    VM.Ctx.store(RC, Addr + layout::ElementsLengthPos * 8);
    return V;
  }
  case BuiltinId::ArrJoin: {
    if (!ThisV.isPointer() || !H.isPlainObject(ThisV)) {
      VM.halt("join on a non-object");
      return H.undefined();
    }
    uint64_t Addr = ThisV.asPointer();
    int64_t Len = H.elementsLength(Addr);
    std::string Sep = Argc > 0 ? toStringValue(H, Args[0]) : ",";
    std::string Out;
    for (int64_t I = 0; I < Len; ++I) {
      if (I)
        Out += Sep;
      VM.Ctx.load(RC, H.elementAddress(Addr, static_cast<uint32_t>(I)));
      Out += toStringValue(H, H.getElement(Addr, I));
    }
    VM.Ctx.alu(RC, 10 + Out.size() / 4);
    return H.allocString(Out);
  }
  case BuiltinId::ArrIndexOf: {
    if (!ThisV.isPointer() || !H.isPlainObject(ThisV)) {
      VM.halt("indexOf on a non-object");
      return H.undefined();
    }
    uint64_t Addr = ThisV.asPointer();
    int64_t Len = H.elementsLength(Addr);
    Value Needle = Argc > 0 ? Args[0] : H.undefined();
    for (int64_t I = 0; I < Len; ++I) {
      VM.Ctx.alu(RC, 2);
      VM.Ctx.load(RC, H.elementAddress(Addr, static_cast<uint32_t>(I)));
      if (strictEquals(H, H.getElement(Addr, I), Needle))
        return Value::makeSmi(static_cast<int32_t>(I));
    }
    return Value::makeSmi(-1);
  }

  case BuiltinId::ArrayCtor: {
    // `Array(n)` called without `new`.
    uint32_t N = Argc >= 1 && Args[0].isSmi() && Args[0].asSmi() >= 0
                     ? static_cast<uint32_t>(Args[0].asSmi())
                     : 0;
    VM.Ctx.alu(RC, 20 + N / 16);
    return H.allocArray(N);
  }

  case BuiltinId::NumBuiltins:
    break;
  }
  CCJS_UNREACHABLE("unknown builtin id");
}

//===----------------------------------------------------------------------===//
// Runtime globals
//===----------------------------------------------------------------------===//

void ccjs::installRuntimeGlobals(VMState &VM) {
  Heap &H = VM.Heap_;
  auto GlobalOf = [&](const char *Name) -> int64_t {
    auto It = VM.Module.GlobalIndexOf.find(Name);
    if (It == VM.Module.GlobalIndexOf.end())
      return -1;
    return static_cast<int64_t>(It->second);
  };
  auto Bind = [&](const char *Name, Value V) {
    int64_t Idx = GlobalOf(Name);
    if (Idx >= 0)
      VM.writeGlobal(static_cast<uint32_t>(Idx), V);
  };
  auto Fn = [&](BuiltinId Id) {
    return H.allocFunction(indexOfBuiltin(Id));
  };

  Bind("print", Fn(BuiltinId::Print));
  Bind("Array", Fn(BuiltinId::ArrayCtor));

  if (GlobalOf("Math") >= 0) {
    Value Math = H.allocObject(VM.Shapes.plainRoot(), 24);
    uint64_t Addr = Math.asPointer();
    auto Prop = [&](const char *Name, Value V) {
      H.addProperty(Addr, VM.Names.intern(Name), V);
    };
    Prop("floor", Fn(BuiltinId::MathFloor));
    Prop("ceil", Fn(BuiltinId::MathCeil));
    Prop("round", Fn(BuiltinId::MathRound));
    Prop("sqrt", Fn(BuiltinId::MathSqrt));
    Prop("abs", Fn(BuiltinId::MathAbs));
    Prop("min", Fn(BuiltinId::MathMin));
    Prop("max", Fn(BuiltinId::MathMax));
    Prop("pow", Fn(BuiltinId::MathPow));
    Prop("sin", Fn(BuiltinId::MathSin));
    Prop("cos", Fn(BuiltinId::MathCos));
    Prop("tan", Fn(BuiltinId::MathTan));
    Prop("atan", Fn(BuiltinId::MathAtan));
    Prop("atan2", Fn(BuiltinId::MathAtan2));
    Prop("exp", Fn(BuiltinId::MathExp));
    Prop("log", Fn(BuiltinId::MathLog));
    Prop("random", Fn(BuiltinId::MathRandom));
    Prop("PI", H.allocHeapNumber(3.141592653589793));
    Prop("E", H.allocHeapNumber(2.718281828459045));
    Bind("Math", Math);
  }

  if (GlobalOf("String") >= 0) {
    Value Str = H.allocObject(VM.Shapes.plainRoot(), 4);
    H.addProperty(Str.asPointer(), VM.Names.intern("fromCharCode"),
                  Fn(BuiltinId::StringFromCharCode));
    Bind("String", Str);
  }
}
