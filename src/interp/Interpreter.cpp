//===- interp/Interpreter.cpp ---------------------------------------------===//

#include "interp/Interpreter.h"

#include "frontend/Ast.h"
#include "runtime/Operations.h"
#include "support/Assert.h"
#include "vm/Builtins.h"
#include "vm/ProfileHooks.h"

#include <cmath>

using namespace ccjs;

// All baseline-tier events carry this category (paper Figure 1: everything
// outside optimized code is "rest of code").
static constexpr InstrCategory RC = InstrCategory::RestOfCode;

void ccjs::materializeConsts(VMState &VM, FunctionInfo &FI) {
  if (FI.ConstsMaterialized)
    return;
  FI.ConstPool.reserve(FI.Fn->Consts.size());
  for (const ConstEntry &C : FI.Fn->Consts)
    FI.ConstPool.push_back(C.Kind == ConstEntry::Number
                               ? VM.Heap_.number(C.Num)
                               : VM.Heap_.allocString(C.Str));
  FI.ConstsMaterialized = true;
}

static uint32_t branchSite(uint32_t FuncIndex, size_t Pc) {
  return (FuncIndex << 16) ^ static_cast<uint32_t>(Pc);
}

namespace {

/// Per-call interpreter frame.
class Frame {
public:
  Frame(VMState &VM, uint32_t FuncIndex, Value ThisV)
      : VM(VM), H(VM.Heap_), FI(VM.Funcs[FuncIndex]), F(*FI.Fn),
        FuncIndex(FuncIndex), ThisV(ThisV) {}

  Value run(std::vector<Value> &&LocalsIn, std::vector<Value> &&StackIn,
            uint32_t Pc);

private:
  // The dispatch loop exists in two host-side variants expanded from
  // interp/InterpreterLoop.inc; they run identical handler code and emit
  // identical simulated events (see support/Dispatch.h).
  Value runSwitch(size_t PC);
#if CCJS_THREADED_DISPATCH
  Value runThreaded(size_t PC);
#endif

  Value pop() {
    assert(!Stack.empty() && "operand stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  }
  Value &peek(unsigned Depth = 0) {
    assert(Stack.size() > Depth && "operand stack underflow");
    return Stack[Stack.size() - 1 - Depth];
  }
  void push(Value V) { Stack.push_back(V); }

  // Bytecode handlers that need more than a few lines.
  void doGetProp(const Instr &In);
  void doSetProp(const Instr &In);
  void doGetElem(const Instr &In);
  void doSetElem(const Instr &In);
  void doGetLength(const Instr &In);
  void doBinOp(const Instr &In, size_t Pc);
  void doCallGlobal(const Instr &In);
  void doCallMethod(const Instr &In);
  void doCallValue(const Instr &In);
  void doNew(const Instr &In);
  void doAddPropLit(const Instr &In);

  /// Pops \p Argc arguments into ArgBuf (in call order).
  const Value *popArgs(uint32_t Argc) {
    assert(Argc <= MaxArgs && "too many call arguments");
    for (uint32_t I = 0; I < Argc; ++I)
      ArgBuf[Argc - 1 - I] = pop();
    return ArgBuf;
  }

  Value invoke(uint32_t FuncIdx, Value This, const Value *Args,
               uint32_t Argc) {
    if (isBuiltinIndex(FuncIdx))
      return callBuiltin(VM, FuncIdx, This, Args, Argc);
    return VM.Invoke(VM, FuncIdx, This, Args, Argc);
  }

  /// True when \p V is a plain-object pointer; halts otherwise.
  bool requirePlainObject(Value V, const char *What) {
    if (V.isPointer() && H.isPlainObject(V))
      return true;
    VM.halt(std::string("baseline: ") + What + " on a non-object value");
    return false;
  }

  VMState &VM;
  Heap &H;
  FunctionInfo &FI;
  const BytecodeFunction &F;
  uint32_t FuncIndex;
  Value ThisV;
  std::vector<Value> Locals;
  std::vector<Value> Stack;

  static constexpr uint32_t MaxArgs = 16;
  Value ArgBuf[MaxArgs];
};

} // namespace

//===----------------------------------------------------------------------===//
// Property and element handlers
//===----------------------------------------------------------------------===//

void Frame::doGetProp(const Instr &In) {
  Value Obj = pop();
  if (!requirePlainObject(Obj, "property load")) {
    push(H.undefined());
    return;
  }
  uint64_t Addr = Obj.asPointer();
  ShapeId Shape = H.shapeOf(Addr);
  SiteFeedback &FB = FI.Feedback[In.Site];

  const PropEntry *E = FB.find(Shape);
  uint32_t Slot;
  if (E) {
    // IC hit: patched call, map load + compare, slot load.
    Slot = E->Slot;
    VM.Ctx.alu(RC, 3);
    VM.Ctx.load(RC, Addr);
    VM.Ctx.branch(RC, branchSite(FuncIndex, In.Site), false);
  } else {
    std::optional<uint32_t> Found = VM.Shapes.lookup(Shape, In.B);
    if (!Found) {
      // Missing property reads as undefined (generic lookup each time).
      VM.Ctx.alu(RC, 30);
      push(H.undefined());
      return;
    }
    Slot = *Found;
    FB.insert(Shape, static_cast<uint16_t>(Slot));
    VM.Ctx.alu(RC, 35); // Lookup routine + IC patching.
    VM.Ctx.load(RC, Addr);
  }

  bool InObject = false;
  uint64_t SlotAddr = H.slotAddress(Addr, Slot, &InObject);
  VM.Ctx.load(RC, SlotAddr);
  VM.Profiler.recordPropertyLoad(
      Shape, Slot, InObject && layout::slotLocation(Slot).Line == 0);
  push(H.getSlot(Addr, Slot));
}

void Frame::doSetProp(const Instr &In) {
  Value V = pop();
  Value Obj = pop();
  if (!requirePlainObject(Obj, "property store")) {
    push(V);
    return;
  }
  uint64_t Addr = Obj.asPointer();
  ShapeId Shape = H.shapeOf(Addr);
  SiteFeedback &FB = FI.Feedback[In.Site];

  std::optional<uint32_t> Found = VM.Shapes.lookup(Shape, In.B);
  uint32_t Slot;
  ShapeId PostShape = Shape;
  if (Found) {
    Slot = *Found;
    if (FB.find(Shape)) {
      VM.Ctx.alu(RC, 3);
      VM.Ctx.load(RC, Addr);
      VM.Ctx.branch(RC, branchSite(FuncIndex, In.Site), false);
    } else {
      FB.insert(Shape, static_cast<uint16_t>(Slot));
      VM.Ctx.alu(RC, 35);
      VM.Ctx.load(RC, Addr);
    }
    bool InObject = false;
    uint64_t SlotAddr = H.slotAddress(Addr, Slot, &InObject);
    H.setSlot(Addr, Slot, V);
    VM.Ctx.store(RC, SlotAddr);
    profilePropertyStore(VM, RC, PostShape, Slot, V, InObject);
  } else {
    // Transitioning store: new hidden class, headers rewritten.
    Slot = H.addProperty(Addr, In.B, V);
    PostShape = H.shapeOf(Addr);
    FB.insert(Shape, static_cast<uint16_t>(Slot), PostShape);
    VM.Ctx.alu(RC, 25);
    uint32_t Lines = layout::linesForSlots(H.capacityOf(Addr));
    for (uint32_t L = 0; L < Lines; ++L)
      VM.Ctx.store(RC, Addr + L * layout::CacheLineBytes);
    bool InObject = false;
    uint64_t SlotAddr = H.slotAddress(Addr, Slot, &InObject);
    VM.Ctx.store(RC, SlotAddr);
    profilePropertyStore(VM, RC, PostShape, Slot, V, InObject);
  }
  push(V);
}

void Frame::doGetElem(const Instr &In) {
  Value Idx = pop();
  Value Obj = pop();
  if (!requirePlainObject(Obj, "element load")) {
    push(H.undefined());
    return;
  }
  uint64_t Addr = Obj.asPointer();
  ShapeId Shape = H.shapeOf(Addr);
  SiteFeedback &FB = FI.Feedback[In.Site];

  // String keys fall back to a generic named lookup.
  if (Idx.isPointer() && H.isString(Idx)) {
    VM.Ctx.alu(RC, 45);
    InternedString Name = VM.Names.intern(H.stringContents(Idx.asPointer()));
    std::optional<uint32_t> Found = VM.Shapes.lookup(Shape, Name);
    FB.Megamorphic = true;
    push(Found ? H.getSlot(Addr, *Found) : H.undefined());
    return;
  }

  int64_t I;
  if (Idx.isSmi()) {
    I = Idx.asSmi();
  } else if (H.isHeapNumber(Idx)) {
    // NaN, infinities, and magnitudes >= 2^63 have no defined int64 cast;
    // like fractional indices they read as undefined.
    double D = H.heapNumberValue(Idx.asPointer());
    if (!doubleIndexInCastRange(D)) {
      push(H.undefined());
      return;
    }
    I = static_cast<int64_t>(D);
    if (D != static_cast<double>(I)) {
      push(H.undefined());
      return;
    }
  } else {
    VM.halt("baseline: non-numeric array index");
    push(H.undefined());
    return;
  }

  if (!FB.find(Shape)) {
    FB.insert(Shape, 0);
    VM.Ctx.alu(RC, 30);
  }
  // Map check, elements pointer load, bounds check, element load.
  VM.Ctx.alu(RC, 4);
  VM.Ctx.load(RC, Addr);
  VM.Ctx.load(RC, Addr + layout::ElementsPointerPos * 8);
  VM.Ctx.branch(RC, branchSite(FuncIndex, In.Site), false);

  VM.Profiler.recordElementLoad(Shape);
  if (I < 0 || I >= H.elementsLength(Addr)) {
    FB.SawOutOfBounds = true;
    push(H.undefined());
    return;
  }
  VM.Ctx.load(RC, H.elementAddress(Addr, static_cast<uint32_t>(I)));
  push(H.getElement(Addr, I));
}

void Frame::doSetElem(const Instr &In) {
  Value V = pop();
  Value Idx = pop();
  Value Obj = pop();
  if (!requirePlainObject(Obj, "element store")) {
    push(V);
    return;
  }
  uint64_t Addr = Obj.asPointer();
  ShapeId Shape = H.shapeOf(Addr);
  SiteFeedback &FB = FI.Feedback[In.Site];

  int64_t I;
  if (Idx.isSmi()) {
    I = Idx.asSmi();
  } else if (Idx.isPointer() && H.isHeapNumber(Idx)) {
    // Stores truncate fractional indices, but NaN/infinite/out-of-range
    // doubles have no defined int64 cast — treat them as non-numeric.
    double D = H.heapNumberValue(Idx.asPointer());
    if (!doubleIndexInCastRange(D)) {
      VM.halt("baseline: non-numeric array index in store");
      push(V);
      return;
    }
    I = static_cast<int64_t>(D);
  } else {
    VM.halt("baseline: non-numeric array index in store");
    push(V);
    return;
  }
  if (I < 0) {
    VM.halt("baseline: negative array index in store");
    push(V);
    return;
  }

  if (!FB.find(Shape)) {
    FB.insert(Shape, 0);
    VM.Ctx.alu(RC, 30);
  }
  VM.Ctx.alu(RC, 4);
  VM.Ctx.load(RC, Addr);
  VM.Ctx.load(RC, Addr + layout::ElementsPointerPos * 8);
  VM.Ctx.branch(RC, branchSite(FuncIndex, In.Site), false);

  bool Slow = H.setElement(Addr, I, V);
  if (Slow) {
    FB.SawOutOfBounds = true;
    VM.Ctx.alu(RC, 40); // Growth / length update path.
  }
  VM.Ctx.store(RC, H.elementAddress(Addr, static_cast<uint32_t>(I)));
  profileElementsStore(VM, RC, Shape, Addr, V,
                       /*ArrayClassIdLoaded=*/false);
  push(V);
}

void Frame::doGetLength(const Instr &In) {
  Value Obj = pop();
  SiteFeedback &FB = FI.Feedback[In.Site];
  if (Obj.isPointer() && H.isString(Obj)) {
    FB.Length = FB.Length == LengthKind::None || FB.Length == LengthKind::String
                    ? LengthKind::String
                    : LengthKind::Mixed;
    VM.Ctx.alu(RC, 2);
    VM.Ctx.load(RC, Obj.asPointer() + 8);
    push(Value::makeSmi(static_cast<int32_t>(H.stringLength(Obj.asPointer()))));
    return;
  }
  if (!requirePlainObject(Obj, "length read")) {
    push(H.undefined());
    return;
  }
  uint64_t Addr = Obj.asPointer();
  ShapeId Shape = H.shapeOf(Addr);
  // An explicit `length` property wins over the elements length.
  std::optional<uint32_t> Named =
      VM.Shapes.lookup(Shape, VM.Names.intern("length"));
  if (Named) {
    FB.Length = FB.Length == LengthKind::None ||
                        FB.Length == LengthKind::NamedSlot
                    ? LengthKind::NamedSlot
                    : LengthKind::Mixed;
    FB.LengthSlot = static_cast<uint16_t>(*Named);
    FB.insert(Shape, static_cast<uint16_t>(*Named));
    VM.Ctx.alu(RC, 3);
    VM.Ctx.load(RC, Addr);
    VM.Ctx.load(RC, H.slotAddress(Addr, *Named, nullptr));
    push(H.getSlot(Addr, *Named));
    return;
  }
  FB.Length = FB.Length == LengthKind::None ||
                      FB.Length == LengthKind::Elements
                  ? LengthKind::Elements
                  : LengthKind::Mixed;
  FB.insert(Shape, 0);
  VM.Ctx.alu(RC, 2);
  VM.Ctx.load(RC, Addr + layout::ElementsLengthPos * 8);
  int64_t Len = H.elementsLength(Addr);
  push(Value::fitsSmi(Len) ? Value::makeSmi(static_cast<int32_t>(Len))
                           : H.number(static_cast<double>(Len)));
}

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

void Frame::doBinOp(const Instr &In, size_t Pc) {
  Value B = pop();
  Value A = pop();
  SiteFeedback &FB = FI.Feedback[In.Site];
  BinaryOp Op = static_cast<BinaryOp>(In.A);

  NumberHint Seen;
  bool AStr = A.isPointer() && H.isString(A);
  bool BStr = B.isPointer() && H.isString(B);
  if (A.isSmi() && B.isSmi())
    Seen = NumberHint::Smi;
  else if ((A.isSmi() || H.isHeapNumber(A)) && (B.isSmi() || H.isHeapNumber(B)))
    Seen = NumberHint::Double;
  else if (AStr || BStr)
    Seen = NumberHint::String;
  else
    Seen = NumberHint::Generic;
  FB.Hint = mergeHint(FB.Hint, Seen);

  // Baseline arithmetic runs through a binary-op stub: tag checks, the
  // operation, result boxing.
  if (Seen == NumberHint::String && Op == BinaryOp::Add) {
    uint32_t La = AStr ? H.stringLength(A.asPointer()) : 8;
    uint32_t Lb = BStr ? H.stringLength(B.asPointer()) : 8;
    VM.Ctx.alu(RC, 12 + (La + Lb) / 4);
  } else {
    VM.Ctx.alu(RC, 7);
    VM.Ctx.branch(RC, branchSite(FuncIndex, Pc), false);
  }
  push(genericBinary(H, Op, A, B));
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

void Frame::doCallGlobal(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  uint32_t Argc = In.B;
  const Value *Args = popArgs(Argc);
  Value Callee = VM.readGlobal(static_cast<uint32_t>(In.A));
  VM.Ctx.load(RC, VM.globalAddr(static_cast<uint32_t>(In.A)));
  if (!Callee.isPointer() || !H.isFunction(Callee)) {
    VM.halt("baseline: call of a non-function global '" +
            VM.Module.GlobalNames[static_cast<uint32_t>(In.A)] + "'");
    push(H.undefined());
    return;
  }
  uint32_t Target = H.functionIndex(Callee.asPointer());
  FB.recordCallTarget(Target);
  VM.Ctx.alu(RC, 4); // Frame setup + call.
  VM.Ctx.load(RC, Callee.asPointer());
  push(invoke(Target, H.undefined(), Args, Argc));
}

void Frame::doCallMethod(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  uint32_t Argc = static_cast<uint32_t>(In.A);
  const Value *Args = popArgs(Argc);
  Value Receiver = pop();
  std::string_view Name = VM.Names.text(In.B);

  if (Receiver.isPointer() && H.isString(Receiver)) {
    static const std::pair<std::string_view, BuiltinId> StringMethods[] = {
        {"charCodeAt", BuiltinId::StrCharCodeAt},
        {"charAt", BuiltinId::StrCharAt},
        {"substring", BuiltinId::StrSubstring},
        {"indexOf", BuiltinId::StrIndexOf},
        {"split", BuiltinId::StrSplit},
        {"toUpperCase", BuiltinId::StrToUpperCase},
        {"toLowerCase", BuiltinId::StrToLowerCase},
    };
    for (const auto &[MName, Id] : StringMethods) {
      if (Name == MName) {
        FB.recordCallTarget(indexOfBuiltin(Id));
        VM.Ctx.alu(RC, 5);
        push(callBuiltin(VM, indexOfBuiltin(Id), Receiver, Args, Argc));
        return;
      }
    }
    VM.halt("baseline: unknown string method '" + std::string(Name) + "'");
    push(H.undefined());
    return;
  }

  if (!requirePlainObject(Receiver, "method call")) {
    push(H.undefined());
    return;
  }
  uint64_t Addr = Receiver.asPointer();
  ShapeId Shape = H.shapeOf(Addr);
  std::optional<uint32_t> Found = VM.Shapes.lookup(Shape, In.B);
  if (Found) {
    Value Method = H.getSlot(Addr, *Found);
    if (Method.isPointer() && H.isFunction(Method)) {
      if (FB.find(Shape)) {
        VM.Ctx.alu(RC, 3);
        VM.Ctx.load(RC, Addr);
        VM.Ctx.branch(RC, branchSite(FuncIndex, In.Site), false);
      } else {
        FB.insert(Shape, static_cast<uint16_t>(*Found));
        VM.Ctx.alu(RC, 35);
      }
      VM.Ctx.load(RC, H.slotAddress(Addr, *Found, nullptr));
      uint32_t Target = H.functionIndex(Method.asPointer());
      FB.recordCallTarget(Target);
      VM.Ctx.alu(RC, 4);
      push(invoke(Target, Receiver, Args, Argc));
      return;
    }
  }

  // Array built-ins act as methods of any plain object with elements.
  static const std::pair<std::string_view, BuiltinId> ArrayMethods[] = {
      {"push", BuiltinId::ArrPush},
      {"pop", BuiltinId::ArrPop},
      {"join", BuiltinId::ArrJoin},
      {"indexOf", BuiltinId::ArrIndexOf},
  };
  for (const auto &[MName, Id] : ArrayMethods) {
    if (Name == MName) {
      FB.recordCallTarget(indexOfBuiltin(Id));
      VM.Ctx.alu(RC, 5);
      push(callBuiltin(VM, indexOfBuiltin(Id), Receiver, Args, Argc));
      return;
    }
  }
  VM.halt("baseline: call of missing method '" + std::string(Name) + "'");
  push(H.undefined());
}

void Frame::doCallValue(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  uint32_t Argc = static_cast<uint32_t>(In.A);
  const Value *Args = popArgs(Argc);
  Value Callee = pop();
  if (!Callee.isPointer() || !H.isFunction(Callee)) {
    VM.halt("baseline: call of a non-function value");
    push(H.undefined());
    return;
  }
  uint32_t Target = H.functionIndex(Callee.asPointer());
  FB.recordCallTarget(Target);
  VM.Ctx.alu(RC, 5);
  VM.Ctx.load(RC, Callee.asPointer());
  push(invoke(Target, H.undefined(), Args, Argc));
}

void Frame::doNew(const Instr &In) {
  SiteFeedback &FB = FI.Feedback[In.Site];
  uint32_t Argc = In.B;
  const Value *Args = popArgs(Argc);
  Value Callee = VM.readGlobal(static_cast<uint32_t>(In.A));
  VM.Ctx.load(RC, VM.globalAddr(static_cast<uint32_t>(In.A)));
  if (!Callee.isPointer() || !H.isFunction(Callee)) {
    VM.halt("baseline: 'new' of a non-function global");
    push(H.undefined());
    return;
  }
  uint32_t Target = H.functionIndex(Callee.asPointer());
  FB.recordCallTarget(Target);

  if (isBuiltinIndex(Target)) {
    if (builtinFromIndex(Target) == BuiltinId::ArrayCtor) {
      uint32_t N = Argc >= 1 && Args[0].isSmi() && Args[0].asSmi() >= 0
                       ? static_cast<uint32_t>(Args[0].asSmi())
                       : 0;
      VM.Ctx.alu(RC, 20 + N / 16);
      uint64_t Site = (uint64_t(FuncIndex) << 32) |
                      static_cast<uint64_t>(&In - F.Code.data());
      Value Arr = H.allocArray(N, VM.Shapes.rootForArraySite(Site));
      VM.Ctx.store(RC, Arr.asPointer());
      push(Arr);
      return;
    }
    VM.halt("baseline: unsupported built-in constructor");
    push(H.undefined());
    return;
  }

  ShapeId Root = VM.Shapes.rootForConstructor(Target);
  uint32_t Capacity = H.constructorCapacityHint(Target);
  Value Obj = H.allocObject(Root, Capacity);
  uint64_t Addr = Obj.asPointer();
  uint32_t Lines = layout::linesForSlots(H.capacityOf(Addr));
  VM.Ctx.alu(RC, 15);
  for (uint32_t L = 0; L < Lines; ++L)
    VM.Ctx.store(RC, Addr + L * layout::CacheLineBytes);

  VM.Ctx.alu(RC, 4);
  Value Result = invoke(Target, Obj, Args, Argc);
  H.observeConstructed(Target,
                       VM.Shapes.get(H.shapeOf(Addr)).NumSlots);
  push(Result.isPointer() && H.isPlainObject(Result) ? Result : Obj);
}

void Frame::doAddPropLit(const Instr &In) {
  Value V = pop();
  Value Obj = peek();
  assert(Obj.isPointer() && H.isPlainObject(Obj) &&
         "object literal target must be a plain object");
  uint64_t Addr = Obj.asPointer();
  ShapeId Before = H.shapeOf(Addr);
  SiteFeedback &FB = FI.Feedback[In.Site];

  uint32_t Slot = H.addProperty(Addr, In.B, V);
  ShapeId After = H.shapeOf(Addr);
  FB.insert(Before, static_cast<uint16_t>(Slot), After);
  VM.Ctx.alu(RC, 12);
  VM.Ctx.store(RC, Addr); // Header rewrite (first line).
  bool InObject = false;
  uint64_t SlotAddr = H.slotAddress(Addr, Slot, &InObject);
  VM.Ctx.store(RC, SlotAddr);
  profilePropertyStore(VM, RC, After, Slot, V, InObject);
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

Value Frame::run(std::vector<Value> &&LocalsIn, std::vector<Value> &&StackIn,
                 uint32_t Pc) {
  Locals = std::move(LocalsIn);
  Locals.resize(F.NumLocals, H.undefined());
  Stack = std::move(StackIn);
  Stack.reserve(32);
#if CCJS_THREADED_DISPATCH
  // Fused mode only changes the OptIR executor; the baseline tier runs
  // its normal switch loop (OptIR fusion has no bytecode analogue).
  if (VM.Config.Dispatch == DispatchMode::Threaded)
    return runThreaded(Pc);
#endif
  return runSwitch(Pc);
}

Value Frame::runSwitch(size_t PC) {
#define CCJS_DISPATCH_THREADED 0
#include "interp/InterpreterLoop.inc"
#undef CCJS_DISPATCH_THREADED
}

#if CCJS_THREADED_DISPATCH
Value Frame::runThreaded(size_t PC) {
#define CCJS_DISPATCH_THREADED 1
#include "interp/InterpreterLoop.inc"
#undef CCJS_DISPATCH_THREADED
}
#endif

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Value ccjs::interpretCall(VMState &VM, uint32_t FuncIndex, Value ThisV,
                          const Value *Args, uint32_t Argc) {
  FunctionInfo &FI = VM.Funcs[FuncIndex];
  materializeConsts(VM, FI);
  if (++VM.CallDepth > VMState::MaxCallDepth) {
    VM.halt("stack overflow");
    --VM.CallDepth;
    return VM.Heap_.undefined();
  }
  // Budget safepoint (service mode): call entry is where the depth budget
  // can trip below the hard stack guard; instruction/heap budgets are
  // re-tested here too so loop-free call storms cannot dodge them.
  if (VM.BudgetArmed && VM.checkBudgetAt(BudgetSafepoint::CallEntry)) {
    --VM.CallDepth;
    return VM.Heap_.undefined();
  }
  std::vector<Value> Locals(FI.Fn->NumLocals, VM.Heap_.undefined());
  for (uint32_t I = 0; I < Argc && I < FI.Fn->NumParams; ++I)
    Locals[I] = Args[I];
  Frame Fr(VM, FuncIndex, ThisV);
  Value Result = Fr.run(std::move(Locals), {}, 0);
  --VM.CallDepth;
  return Result;
}

Value ccjs::interpretFrom(VMState &VM, uint32_t FuncIndex, Value ThisV,
                          std::vector<Value> &&Locals,
                          std::vector<Value> &&Stack, uint32_t Pc) {
  FunctionInfo &FI = VM.Funcs[FuncIndex];
  materializeConsts(VM, FI);
  Frame Fr(VM, FuncIndex, ThisV);
  return Fr.run(std::move(Locals), std::move(Stack), Pc);
}
