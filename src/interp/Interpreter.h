//===- interp/Interpreter.h - Baseline tier ----------------------*- C++ -*-===//
///
/// \file
/// The baseline execution tier (the Full Codegen analogue): a bytecode
/// interpreter with inline caches. Every bytecode charges the machine
/// events its compiled baseline expansion would execute (category
/// RestOfCode), collects type feedback, and — when the mechanism is
/// enabled — performs the Class Cache profiling stores.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_INTERP_INTERPRETER_H
#define CCJS_INTERP_INTERPRETER_H

#include "vm/VMState.h"

namespace ccjs {

/// Interprets a call to function \p FuncIndex from its entry.
Value interpretCall(VMState &VM, uint32_t FuncIndex, Value ThisV,
                    const Value *Args, uint32_t Argc);

/// Resumes interpretation at bytecode \p Pc with the given frame state
/// (deoptimization entry from the optimizing tier).
Value interpretFrom(VMState &VM, uint32_t FuncIndex, Value ThisV,
                    std::vector<Value> &&Locals, std::vector<Value> &&Stack,
                    uint32_t Pc);

/// Calls a built-in function (see vm/Builtins.h). \p BuiltinIndex is the
/// raw function index (BuiltinBase + id).
Value callBuiltin(VMState &VM, uint32_t BuiltinIndex, Value ThisV,
                  const Value *Args, uint32_t Argc);

/// Installs the runtime globals: print, Math, String, Array.
void installRuntimeGlobals(VMState &VM);

/// Materializes a function's constant pool into heap values.
void materializeConsts(VMState &VM, FunctionInfo &FI);

} // namespace ccjs

#endif // CCJS_INTERP_INTERPRETER_H
