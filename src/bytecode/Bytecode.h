//===- bytecode/Bytecode.h - Stack bytecode ISA -----------------*- C++ -*-===//
///
/// \file
/// The stack-machine bytecode both tiers execute from. The baseline tier
/// interprets it directly (with inline caches at the Site-carrying
/// instructions); the optimizing tier translates it, using the collected
/// feedback, into check-explicit OptIR.
///
//===----------------------------------------------------------------------===//

#ifndef CCJS_BYTECODE_BYTECODE_H
#define CCJS_BYTECODE_BYTECODE_H

#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccjs {

// The opcode list as an X-macro: the enum below, the interpreter's
// computed-goto handler table and the disassembler all expand from this
// single list, so they cannot fall out of order with each other.
//
// Field meaning per group:
// - Constants and simple loads: A = constant pool index / SMI immediate.
// - Locals and globals: A = slot index. StLocal/StGlobal pop.
// - Operators: A = BinaryOp/UnaryOp enum value; BinOp carries a feedback
//   site.
// - Control flow: A = absolute target index. JumpLoop is a back edge and
//   feeds on-stack-replacement hotness; JumpIf* pop the condition.
// - Property access: B = interned property name. Stack effects:
//     GetProp:  [obj] -> [value]          SetProp: [obj, value] -> [value]
//     GetElem:  [obj, index] -> [value]   SetElem: [obj, index, v] -> [v]
//     GetLength:[obj] -> [length]
// - Literals: CreateObject: A = in-object capacity hint. CreateArray:
//   A = initial length. AddPropLit (B = name) pops the value, keeping the
//   object; StElemInit (A = index) pops the value, keeping the array.
// - Calls: CallGlobal: A = global index of callee, B = argc.
//   CallMethod: A = argc, B = method name; stack [obj, args...].
//   CallValue: A = argc; stack [callee, args...].
//   New: A = global index of constructor, B = argc.
// - Return pops the result.
#define CCJS_FOR_EACH_OPCODE(X)                                                \
  X(LdaConst)                                                                  \
  X(LdaSmi)                                                                    \
  X(LdaUndefined)                                                              \
  X(LdaNull)                                                                   \
  X(LdaTrue)                                                                   \
  X(LdaFalse)                                                                  \
  X(LdaThis)                                                                   \
  X(LdLocal)                                                                   \
  X(StLocal)                                                                   \
  X(LdGlobal)                                                                  \
  X(StGlobal)                                                                  \
  X(Pop)                                                                       \
  X(Dup)                                                                       \
  X(BinOp)                                                                     \
  X(UnaOp)                                                                     \
  X(Jump)                                                                      \
  X(JumpLoop)                                                                  \
  X(JumpIfFalse)                                                               \
  X(JumpIfTrue)                                                                \
  X(GetProp)                                                                   \
  X(SetProp)                                                                   \
  X(GetElem)                                                                   \
  X(SetElem)                                                                   \
  X(GetLength)                                                                 \
  X(CreateObject)                                                              \
  X(CreateArray)                                                               \
  X(AddPropLit)                                                                \
  X(StElemInit)                                                                \
  X(CallGlobal)                                                                \
  X(CallMethod)                                                                \
  X(CallValue)                                                                 \
  X(New)                                                                       \
  X(Return)

enum class Opcode : uint8_t {
#define CCJS_OPCODE_ENUMERATOR(Name) Name,
  CCJS_FOR_EACH_OPCODE(CCJS_OPCODE_ENUMERATOR)
#undef CCJS_OPCODE_ENUMERATOR
};

inline constexpr unsigned NumOpcodes = 0
#define CCJS_OPCODE_COUNT(Name) +1
    CCJS_FOR_EACH_OPCODE(CCJS_OPCODE_COUNT)
#undef CCJS_OPCODE_COUNT
    ;

/// One bytecode instruction. Field meaning depends on the opcode (see the
/// Opcode comments); Site indexes the function's feedback vector.
struct Instr {
  Opcode Op;
  int32_t A = 0;
  uint32_t B = 0;
  uint16_t Site = 0;
};

/// A compile-time constant (materialized into heap Values at load time).
struct ConstEntry {
  enum KindTy : uint8_t { Number, String } Kind;
  double Num = 0;
  std::string Str;
};

struct BytecodeFunction {
  std::string Name;
  uint32_t Index = 0;
  uint32_t NumParams = 0;
  uint32_t NumLocals = 0; ///< Includes parameters.
  std::vector<Instr> Code;
  std::vector<ConstEntry> Consts;
  uint16_t NumSites = 0;
};

/// A compiled program: the function table (entry 0 is the top-level
/// script) plus the global name table.
struct BytecodeModule {
  std::vector<BytecodeFunction> Functions;
  std::vector<std::string> GlobalNames;
  std::unordered_map<std::string, uint32_t> GlobalIndexOf;

  uint32_t globalIndex(const std::string &Name) {
    auto It = GlobalIndexOf.find(Name);
    if (It != GlobalIndexOf.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(GlobalNames.size());
    GlobalNames.push_back(Name);
    GlobalIndexOf.emplace(Name, Idx);
    return Idx;
  }
};

/// Renders one function's bytecode for debugging and tests.
std::string disassemble(const BytecodeFunction &F, const StringInterner &Names);

} // namespace ccjs

#endif // CCJS_BYTECODE_BYTECODE_H
