//===- bytecode/Compiler.cpp ----------------------------------------------===//

#include "bytecode/Compiler.h"

#include "support/Assert.h"

#include <cmath>
#include <unordered_map>

using namespace ccjs;

/// SMI range check for number literals (kept out of Value.h to avoid the
/// include).
static bool fitsSmiLiteral(double D) {
  return D >= -2147483648.0 && D <= 2147483647.0;
}

namespace {

/// Compiles one function body (or the top-level script) to bytecode.
class FunctionCompiler {
public:
  FunctionCompiler(BytecodeModule &Mod, StringInterner &Names,
                   bool IsTopLevel)
      : Mod(Mod), Names(Names), IsTopLevel(IsTopLevel) {}

  bool failed() const { return Failed; }
  const std::string &error() const { return ErrorMsg; }

  BytecodeFunction compile(std::string Name,
                           const std::vector<std::string> &Params,
                           const std::vector<const Stmt *> &Body);

private:
  struct LoopContext {
    std::vector<size_t> BreakJumps;
    std::vector<size_t> ContinueJumps;
  };

  void fail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      ErrorMsg = Msg;
    }
  }

  size_t emit(Opcode Op, int32_t A = 0, uint32_t B = 0) {
    F.Code.push_back(Instr{Op, A, B, 0});
    return F.Code.size() - 1;
  }
  size_t emitSited(Opcode Op, int32_t A = 0, uint32_t B = 0) {
    F.Code.push_back(Instr{Op, A, B, newSite()});
    return F.Code.size() - 1;
  }
  uint16_t newSite() { return F.NumSites++; }
  void patchTo(size_t JumpIdx, size_t Target) {
    F.Code[JumpIdx].A = static_cast<int32_t>(Target);
  }
  size_t here() const { return F.Code.size(); }

  uint32_t newTemp() { return F.NumLocals++; }

  int lookupLocal(const std::string &Name) const {
    auto It = LocalOf.find(Name);
    return It == LocalOf.end() ? -1 : static_cast<int>(It->second);
  }

  uint32_t constNumber(double D);
  uint32_t constString(const std::string &S);

  void hoistVars(const Stmt &S);
  void compileStmt(const Stmt &S);
  void compileExpr(const Expr &E);
  void compileAssign(const AssignExpr &A);
  void compileUpdate(const UpdateExpr &U);
  void compileCall(const CallExpr &C);
  void storeVar(const std::string &Name);
  void loadVar(const std::string &Name);

  BytecodeModule &Mod;
  StringInterner &Names;
  bool IsTopLevel;
  BytecodeFunction F;
  std::unordered_map<std::string, uint32_t> LocalOf;
  std::unordered_map<double, uint32_t> NumConsts;
  std::unordered_map<std::string, uint32_t> StrConsts;
  std::vector<LoopContext> Loops;
  bool Failed = false;
  std::string ErrorMsg;
};

} // namespace

uint32_t FunctionCompiler::constNumber(double D) {
  auto It = NumConsts.find(D);
  if (It != NumConsts.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(F.Consts.size());
  F.Consts.push_back(ConstEntry{ConstEntry::Number, D, {}});
  NumConsts.emplace(D, Idx);
  return Idx;
}

uint32_t FunctionCompiler::constString(const std::string &S) {
  auto It = StrConsts.find(S);
  if (It != StrConsts.end())
    return It->second;
  uint32_t Idx = static_cast<uint32_t>(F.Consts.size());
  F.Consts.push_back(ConstEntry{ConstEntry::String, 0, S});
  StrConsts.emplace(S, Idx);
  return Idx;
}

void FunctionCompiler::hoistVars(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::VarDecl:
    for (const auto &[Name, Init] : static_cast<const VarDeclStmt &>(S).Decls)
      if (!IsTopLevel && !LocalOf.count(Name))
        LocalOf.emplace(Name, F.NumLocals++);
    return;
  case StmtKind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Body)
      hoistVars(*Child);
    return;
  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    hoistVars(*If.Then);
    if (If.Else)
      hoistVars(*If.Else);
    return;
  }
  case StmtKind::While:
    hoistVars(*static_cast<const WhileStmt &>(S).Body);
    return;
  case StmtKind::DoWhile:
    hoistVars(*static_cast<const DoWhileStmt &>(S).Body);
    return;
  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    if (For.Init)
      hoistVars(*For.Init);
    hoistVars(*For.Body);
    return;
  }
  default:
    return;
  }
}

BytecodeFunction
FunctionCompiler::compile(std::string Name,
                          const std::vector<std::string> &Params,
                          const std::vector<const Stmt *> &Body) {
  F.Name = std::move(Name);
  F.NumParams = static_cast<uint32_t>(Params.size());
  for (const std::string &P : Params)
    LocalOf.emplace(P, F.NumLocals++);
  for (const Stmt *S : Body)
    hoistVars(*S);
  for (const Stmt *S : Body) {
    if (Failed)
      break;
    compileStmt(*S);
  }
  emit(Opcode::LdaUndefined);
  emit(Opcode::Return);
  return std::move(F);
}

void FunctionCompiler::loadVar(const std::string &Name) {
  int Local = lookupLocal(Name);
  if (Local >= 0)
    emit(Opcode::LdLocal, Local);
  else
    emit(Opcode::LdGlobal, static_cast<int32_t>(Mod.globalIndex(Name)));
}

void FunctionCompiler::storeVar(const std::string &Name) {
  int Local = lookupLocal(Name);
  if (Local >= 0)
    emit(Opcode::StLocal, Local);
  else
    emit(Opcode::StGlobal, static_cast<int32_t>(Mod.globalIndex(Name)));
}

void FunctionCompiler::compileStmt(const Stmt &S) {
  if (Failed)
    return;
  switch (S.Kind) {
  case StmtKind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Body)
      compileStmt(*Child);
    return;
  case StmtKind::VarDecl: {
    for (const auto &[Name, Init] :
         static_cast<const VarDeclStmt &>(S).Decls) {
      if (!Init)
        continue;
      compileExpr(*Init);
      storeVar(Name);
    }
    return;
  }
  case StmtKind::ExprStmt:
    compileExpr(*static_cast<const ExprStmt &>(S).E);
    emit(Opcode::Pop);
    return;
  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    compileExpr(*If.Cond);
    size_t ToElse = emit(Opcode::JumpIfFalse);
    compileStmt(*If.Then);
    if (If.Else) {
      size_t ToEnd = emit(Opcode::Jump);
      patchTo(ToElse, here());
      compileStmt(*If.Else);
      patchTo(ToEnd, here());
    } else {
      patchTo(ToElse, here());
    }
    return;
  }
  case StmtKind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    size_t Head = here();
    compileExpr(*W.Cond);
    size_t Exit = emit(Opcode::JumpIfFalse);
    Loops.push_back({});
    compileStmt(*W.Body);
    LoopContext Ctx = std::move(Loops.back());
    Loops.pop_back();
    for (size_t J : Ctx.ContinueJumps)
      patchTo(J, here());
    emit(Opcode::JumpLoop, static_cast<int32_t>(Head));
    patchTo(Exit, here());
    for (size_t J : Ctx.BreakJumps)
      patchTo(J, here());
    return;
  }
  case StmtKind::DoWhile: {
    const auto &D = static_cast<const DoWhileStmt &>(S);
    size_t Head = here();
    Loops.push_back({});
    compileStmt(*D.Body);
    LoopContext Ctx = std::move(Loops.back());
    Loops.pop_back();
    for (size_t J : Ctx.ContinueJumps)
      patchTo(J, here());
    compileExpr(*D.Cond);
    size_t Exit = emit(Opcode::JumpIfFalse);
    emit(Opcode::JumpLoop, static_cast<int32_t>(Head));
    patchTo(Exit, here());
    for (size_t J : Ctx.BreakJumps)
      patchTo(J, here());
    return;
  }
  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    if (For.Init)
      compileStmt(*For.Init);
    size_t Head = here();
    size_t Exit = 0;
    bool HasCond = For.Cond != nullptr;
    if (HasCond) {
      compileExpr(*For.Cond);
      Exit = emit(Opcode::JumpIfFalse);
    }
    Loops.push_back({});
    compileStmt(*For.Body);
    LoopContext Ctx = std::move(Loops.back());
    Loops.pop_back();
    for (size_t J : Ctx.ContinueJumps)
      patchTo(J, here());
    if (For.Step) {
      compileExpr(*For.Step);
      emit(Opcode::Pop);
    }
    emit(Opcode::JumpLoop, static_cast<int32_t>(Head));
    if (HasCond)
      patchTo(Exit, here());
    for (size_t J : Ctx.BreakJumps)
      patchTo(J, here());
    return;
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    if (R.Value)
      compileExpr(*R.Value);
    else
      emit(Opcode::LdaUndefined);
    emit(Opcode::Return);
    return;
  }
  case StmtKind::Break: {
    if (Loops.empty()) {
      fail("'break' outside of a loop");
      return;
    }
    Loops.back().BreakJumps.push_back(emit(Opcode::Jump));
    return;
  }
  case StmtKind::Continue: {
    if (Loops.empty()) {
      fail("'continue' outside of a loop");
      return;
    }
    Loops.back().ContinueJumps.push_back(emit(Opcode::Jump));
    return;
  }
  case StmtKind::FunctionDecl:
    // Handled at the program level; nothing to emit here.
    return;
  }
  CCJS_UNREACHABLE("unknown statement kind");
}

void FunctionCompiler::compileAssign(const AssignExpr &A) {
  const Expr &Target = *A.Target;
  if (Target.Kind == ExprKind::Ident) {
    const std::string &Name = static_cast<const IdentExpr &>(Target).Name;
    if (A.IsCompound) {
      loadVar(Name);
      compileExpr(*A.Value);
      emitSited(Opcode::BinOp, static_cast<int32_t>(A.Op));
    } else {
      compileExpr(*A.Value);
    }
    emit(Opcode::Dup);
    storeVar(Name);
    return;
  }

  if (Target.Kind == ExprKind::Member) {
    const auto &M = static_cast<const MemberExpr &>(Target);
    uint32_t Name = Names.intern(M.Property);
    compileExpr(*M.Object);
    if (!A.IsCompound) {
      compileExpr(*A.Value);
      emitSited(Opcode::SetProp, 0, Name);
      return;
    }
    uint32_t TObj = newTemp();
    emit(Opcode::StLocal, TObj);
    emit(Opcode::LdLocal, TObj);
    emit(Opcode::LdLocal, TObj);
    emitSited(Opcode::GetProp, 0, Name);
    compileExpr(*A.Value);
    emitSited(Opcode::BinOp, static_cast<int32_t>(A.Op));
    emitSited(Opcode::SetProp, 0, Name);
    return;
  }

  if (Target.Kind == ExprKind::Index) {
    const auto &I = static_cast<const IndexExpr &>(Target);
    compileExpr(*I.Object);
    compileExpr(*I.Index);
    if (!A.IsCompound) {
      compileExpr(*A.Value);
      emitSited(Opcode::SetElem);
      return;
    }
    uint32_t TObj = newTemp(), TIdx = newTemp();
    emit(Opcode::StLocal, TIdx);
    emit(Opcode::StLocal, TObj);
    emit(Opcode::LdLocal, TObj);
    emit(Opcode::LdLocal, TIdx);
    emit(Opcode::LdLocal, TObj);
    emit(Opcode::LdLocal, TIdx);
    emitSited(Opcode::GetElem);
    compileExpr(*A.Value);
    emitSited(Opcode::BinOp, static_cast<int32_t>(A.Op));
    emitSited(Opcode::SetElem);
    return;
  }
  fail("invalid assignment target");
}

void FunctionCompiler::compileUpdate(const UpdateExpr &U) {
  BinaryOp Op = U.IsIncrement ? BinaryOp::Add : BinaryOp::Sub;
  const Expr &Target = *U.Target;

  if (Target.Kind == ExprKind::Ident) {
    const std::string &Name = static_cast<const IdentExpr &>(Target).Name;
    loadVar(Name);
    if (U.IsPrefix) {
      emit(Opcode::LdaSmi, 1);
      emitSited(Opcode::BinOp, static_cast<int32_t>(Op));
      emit(Opcode::Dup);
      storeVar(Name);
    } else {
      emit(Opcode::Dup);
      emit(Opcode::LdaSmi, 1);
      emitSited(Opcode::BinOp, static_cast<int32_t>(Op));
      storeVar(Name);
    }
    return;
  }

  if (Target.Kind == ExprKind::Member) {
    const auto &M = static_cast<const MemberExpr &>(Target);
    uint32_t Name = Names.intern(M.Property);
    uint32_t TObj = newTemp(), TOld = newTemp();
    compileExpr(*M.Object);
    emit(Opcode::StLocal, TObj);
    emit(Opcode::LdLocal, TObj);
    emitSited(Opcode::GetProp, 0, Name);
    emit(Opcode::StLocal, TOld);
    emit(Opcode::LdLocal, TObj);
    emit(Opcode::LdLocal, TOld);
    emit(Opcode::LdaSmi, 1);
    emitSited(Opcode::BinOp, static_cast<int32_t>(Op));
    emitSited(Opcode::SetProp, 0, Name);
    if (U.IsPrefix)
      return; // SetProp left the new value on the stack.
    emit(Opcode::Pop);
    emit(Opcode::LdLocal, TOld);
    return;
  }

  if (Target.Kind == ExprKind::Index) {
    const auto &I = static_cast<const IndexExpr &>(Target);
    uint32_t TObj = newTemp(), TIdx = newTemp(), TOld = newTemp();
    compileExpr(*I.Object);
    emit(Opcode::StLocal, TObj);
    compileExpr(*I.Index);
    emit(Opcode::StLocal, TIdx);
    emit(Opcode::LdLocal, TObj);
    emit(Opcode::LdLocal, TIdx);
    emitSited(Opcode::GetElem);
    emit(Opcode::StLocal, TOld);
    emit(Opcode::LdLocal, TObj);
    emit(Opcode::LdLocal, TIdx);
    emit(Opcode::LdLocal, TOld);
    emit(Opcode::LdaSmi, 1);
    emitSited(Opcode::BinOp, static_cast<int32_t>(Op));
    emitSited(Opcode::SetElem);
    if (U.IsPrefix)
      return;
    emit(Opcode::Pop);
    emit(Opcode::LdLocal, TOld);
    return;
  }
  fail("invalid increment/decrement target");
}

void FunctionCompiler::compileCall(const CallExpr &C) {
  const Expr &Callee = *C.Callee;

  if (Callee.Kind == ExprKind::Member) {
    const auto &M = static_cast<const MemberExpr &>(Callee);
    compileExpr(*M.Object);
    for (const ExprPtr &Arg : C.Args)
      compileExpr(*Arg);
    emitSited(Opcode::CallMethod, static_cast<int32_t>(C.Args.size()),
              Names.intern(M.Property));
    return;
  }

  if (Callee.Kind == ExprKind::Ident) {
    const std::string &Name = static_cast<const IdentExpr &>(Callee).Name;
    if (lookupLocal(Name) < 0) {
      for (const ExprPtr &Arg : C.Args)
        compileExpr(*Arg);
      emitSited(Opcode::CallGlobal,
                static_cast<int32_t>(Mod.globalIndex(Name)),
                static_cast<uint32_t>(C.Args.size()));
      return;
    }
  }

  // Function value call (local variable, property result, etc.).
  compileExpr(Callee);
  for (const ExprPtr &Arg : C.Args)
    compileExpr(*Arg);
  emitSited(Opcode::CallValue, static_cast<int32_t>(C.Args.size()));
}

void FunctionCompiler::compileExpr(const Expr &E) {
  if (Failed)
    return;
  switch (E.Kind) {
  case ExprKind::NumberLit: {
    double D = static_cast<const NumberLitExpr &>(E).Value;
    if (D == std::floor(D) && fitsSmiLiteral(D))
      emit(Opcode::LdaSmi, static_cast<int32_t>(D));
    else
      emit(Opcode::LdaConst, static_cast<int32_t>(constNumber(D)));
    return;
  }
  case ExprKind::StringLit:
    emit(Opcode::LdaConst,
         static_cast<int32_t>(
             constString(static_cast<const StringLitExpr &>(E).Value)));
    return;
  case ExprKind::BoolLit:
    emit(static_cast<const BoolLitExpr &>(E).Value ? Opcode::LdaTrue
                                                   : Opcode::LdaFalse);
    return;
  case ExprKind::NullLit:
    emit(Opcode::LdaNull);
    return;
  case ExprKind::UndefinedLit:
    emit(Opcode::LdaUndefined);
    return;
  case ExprKind::ThisExpr:
    emit(Opcode::LdaThis);
    return;
  case ExprKind::Ident:
    loadVar(static_cast<const IdentExpr &>(E).Name);
    return;
  case ExprKind::Assign:
    compileAssign(static_cast<const AssignExpr &>(E));
    return;
  case ExprKind::Conditional: {
    const auto &C = static_cast<const ConditionalExpr &>(E);
    compileExpr(*C.Cond);
    size_t ToElse = emit(Opcode::JumpIfFalse);
    compileExpr(*C.Then);
    size_t ToEnd = emit(Opcode::Jump);
    patchTo(ToElse, here());
    compileExpr(*C.Else);
    patchTo(ToEnd, here());
    return;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    compileExpr(*B.Lhs);
    compileExpr(*B.Rhs);
    emitSited(Opcode::BinOp, static_cast<int32_t>(B.Op));
    return;
  }
  case ExprKind::Logical: {
    const auto &L = static_cast<const LogicalExpr &>(E);
    compileExpr(*L.Lhs);
    emit(Opcode::Dup);
    size_t Short = emit(L.Op == LogicalOp::Or ? Opcode::JumpIfTrue
                                              : Opcode::JumpIfFalse);
    emit(Opcode::Pop);
    compileExpr(*L.Rhs);
    patchTo(Short, here());
    return;
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    compileExpr(*U.Operand);
    // Sited so the optimizing tier can record SMI-negation deopt reasons.
    emitSited(Opcode::UnaOp, static_cast<int32_t>(U.Op));
    return;
  }
  case ExprKind::Update:
    compileUpdate(static_cast<const UpdateExpr &>(E));
    return;
  case ExprKind::Call:
    compileCall(static_cast<const CallExpr &>(E));
    return;
  case ExprKind::New: {
    const auto &N = static_cast<const NewExpr &>(E);
    assert(N.Callee->Kind == ExprKind::Ident &&
           "parser only allows `new Ident(...)`");
    const std::string &Name =
        static_cast<const IdentExpr &>(*N.Callee).Name;
    for (const ExprPtr &Arg : N.Args)
      compileExpr(*Arg);
    emitSited(Opcode::New, static_cast<int32_t>(Mod.globalIndex(Name)),
              static_cast<uint32_t>(N.Args.size()));
    return;
  }
  case ExprKind::Member: {
    const auto &M = static_cast<const MemberExpr &>(E);
    compileExpr(*M.Object);
    if (M.Property == "length")
      emitSited(Opcode::GetLength);
    else
      emitSited(Opcode::GetProp, 0, Names.intern(M.Property));
    return;
  }
  case ExprKind::Index: {
    const auto &I = static_cast<const IndexExpr &>(E);
    compileExpr(*I.Object);
    compileExpr(*I.Index);
    emitSited(Opcode::GetElem);
    return;
  }
  case ExprKind::ObjectLit: {
    const auto &O = static_cast<const ObjectLitExpr &>(E);
    emit(Opcode::CreateObject,
         static_cast<int32_t>(O.Properties.size()));
    for (const auto &[Key, ValueExpr] : O.Properties) {
      compileExpr(*ValueExpr);
      emitSited(Opcode::AddPropLit, 0, Names.intern(Key));
    }
    return;
  }
  case ExprKind::ArrayLit: {
    const auto &A = static_cast<const ArrayLitExpr &>(E);
    emit(Opcode::CreateArray, static_cast<int32_t>(A.Elements.size()));
    for (size_t I = 0; I < A.Elements.size(); ++I) {
      compileExpr(*A.Elements[I]);
      emit(Opcode::StElemInit, static_cast<int32_t>(I));
    }
    return;
  }
  }
  CCJS_UNREACHABLE("unknown expression kind");
}

//===----------------------------------------------------------------------===//
// Program compilation
//===----------------------------------------------------------------------===//

CompileResult ccjs::compileProgram(const Program &Prog,
                                   StringInterner &Names) {
  CompileResult Result;
  BytecodeModule &Mod = Result.Module;

  // Pass 1: assign function indices (entry function is index 0) and global
  // slots for function names.
  std::vector<const FunctionDeclStmt *> Decls;
  std::vector<const Stmt *> TopLevel;
  Mod.Functions.emplace_back(); // Reserve slot 0 for the entry function.
  for (const StmtPtr &S : Prog.Body) {
    if (S->Kind == StmtKind::FunctionDecl) {
      const auto *Fn = static_cast<const FunctionDeclStmt *>(S.get());
      Decls.push_back(Fn);
      Mod.globalIndex(Fn->Name);
      Mod.Functions.emplace_back();
    } else {
      TopLevel.push_back(S.get());
    }
  }

  // Pass 2: compile every function.
  for (size_t I = 0; I < Decls.size(); ++I) {
    const FunctionDeclStmt *Fn = Decls[I];
    FunctionCompiler FC(Mod, Names, /*IsTopLevel=*/false);
    std::vector<const Stmt *> Body;
    for (const StmtPtr &S : Fn->Body->Body)
      Body.push_back(S.get());
    BytecodeFunction Compiled = FC.compile(Fn->Name, Fn->Params, Body);
    if (FC.failed()) {
      Result.Ok = false;
      Result.Error = "in function '" + Fn->Name + "': " + FC.error();
      return Result;
    }
    Compiled.Index = static_cast<uint32_t>(I + 1);
    Mod.Functions[I + 1] = std::move(Compiled);
  }

  // Entry function: top-level statements; its vars are globals.
  FunctionCompiler FC(Mod, Names, /*IsTopLevel=*/true);
  BytecodeFunction Entry = FC.compile("<main>", {}, TopLevel);
  if (FC.failed()) {
    Result.Ok = false;
    Result.Error = "at top level: " + FC.error();
    return Result;
  }
  Entry.Index = 0;
  Mod.Functions[0] = std::move(Entry);
  return Result;
}
